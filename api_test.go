package cachecraft

import (
	"testing"
)

func quickCfg() Config {
	cfg := QuickConfig()
	cfg.AccessesPerSM = 300
	return cfg
}

func TestWorkloadsAndSchemesEnumerations(t *testing.T) {
	if len(Workloads()) != 10 {
		t.Fatalf("workloads = %v", Workloads())
	}
	s := Schemes()
	if len(s) != 4 || s[0] != "none" || s[3] != "cachecraft" {
		t.Fatalf("schemes = %v", s)
	}
}

func TestVersionAndFingerprint(t *testing.T) {
	if Version() == "" {
		t.Fatal("empty simulator version")
	}
	a := Fingerprint(DefaultConfig(), "stream", "cachecraft")
	if len(a) != 64 {
		t.Fatalf("fingerprint %q is not a hex sha256", a)
	}
	if a != Fingerprint(DefaultConfig(), "stream", "cachecraft") {
		t.Fatal("fingerprint not deterministic")
	}
	if a == Fingerprint(DefaultConfig(), "stream", "none") {
		t.Fatal("fingerprint ignores the scheme")
	}
	cfg := DefaultConfig()
	cfg.Seed++
	if a == Fingerprint(cfg, "stream", "cachecraft") {
		t.Fatal("fingerprint ignores the configuration")
	}
}

func TestRunPublicAPI(t *testing.T) {
	res, err := Run(quickCfg(), "stream", "cachecraft")
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "stream" || res.Scheme != "cachecraft" {
		t.Fatalf("result not labeled: %q/%q", res.Workload, res.Scheme)
	}
	if res.IPC <= 0 || res.Cycles == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

// TestRunAllMatchesSerialRuns: the parallel batch API must return the
// same results, in the same order, as serial Run calls over the grid.
func TestRunAllMatchesSerialRuns(t *testing.T) {
	workloads := []string{"stream", "scan"}
	schemes := []string{"none", "cachecraft"}
	batch, err := RunAll(quickCfg(), workloads, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(workloads)*len(schemes) {
		t.Fatalf("got %d results, want %d", len(batch), len(workloads)*len(schemes))
	}
	i := 0
	for _, wl := range workloads {
		for _, s := range schemes {
			got := batch[i]
			i++
			if got.Workload != wl || got.Scheme != s {
				t.Fatalf("result %d is %s/%s, want %s/%s (order must be deterministic)",
					i-1, got.Workload, got.Scheme, wl, s)
			}
			want, err := Run(quickCfg(), wl, s)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cycles != want.Cycles || got.Instructions != want.Instructions {
				t.Fatalf("%s/%s: parallel result diverged: cycles %d/%d, instructions %d/%d",
					wl, s, got.Cycles, want.Cycles, got.Instructions, want.Instructions)
			}
		}
	}
}

func TestRunAllRejectsUnknownScheme(t *testing.T) {
	if _, err := RunAll(quickCfg(), []string{"stream"}, []string{"nope"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := RunAll(quickCfg(), []string{"nope"}, []string{"none"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	if _, err := Run(quickCfg(), "nope", "none"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(quickCfg(), "stream", "nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunCacheCraftOptions(t *testing.T) {
	opt := DefaultOptions()
	opt.Reconstruct = false
	opt.UseRC = false
	opt.WBuf = false
	res, err := RunCacheCraft(quickCfg(), "scan", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.ControllerSt.Get("reconstruct_sectors") != 0 {
		t.Fatal("reconstruction ran while disabled")
	}
	if res.ControllerSt.Get("red_rc_hits") != 0 {
		t.Fatal("RC hit while disabled")
	}
	// Without RC and write buffer, writebacks must RMW like the naive
	// controller.
	if res.ControllerSt.Get("red_rmw") == 0 {
		t.Fatal("expected RMWs with RC and write buffer disabled")
	}
}

func TestPublicCodecs(t *testing.T) {
	for _, build := range []func() (SectorCodec, error){
		NewSECDED6472, NewRS3632, NewRS3432,
	} {
		codec, err := build()
		if err != nil {
			t.Fatal(err)
		}
		sector := make([]byte, codec.SectorBytes())
		for i := range sector {
			sector[i] = byte(i * 3)
		}
		red := codec.Encode(sector)
		if len(red) != codec.RedundancyBytes() {
			t.Fatalf("%s: redundancy size %d", codec.Name(), len(red))
		}
		if res := codec.Decode(sector, red); res != CodecOK {
			t.Fatalf("%s: clean decode = %v", codec.Name(), res)
		}
		sector[0] ^= 1
		if res := codec.Decode(sector, red); res != CodecCorrected {
			t.Fatalf("%s: single-bit decode = %v", codec.Name(), res)
		}
	}
}

func TestPublicTaggedCodec(t *testing.T) {
	codec, err := NewTaggedCodec(32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32)
	tag := []byte{0x3}
	parity := codec.Encode(data, tag)
	if got := codec.Check(data, parity, tag); got != TagOK {
		t.Fatalf("matching tag = %v", got)
	}
	if got := codec.Check(data, parity, []byte{0x4}); got != TagMismatch {
		t.Fatalf("wrong tag = %v", got)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossSchemeInstructionParity is the protection-transparency
// invariant at the public API level: all schemes retire identical work.
func TestCrossSchemeInstructionParity(t *testing.T) {
	for _, wl := range []string{"stream", "histogram", "bfs"} {
		var want uint64
		for i, s := range Schemes() {
			res, err := Run(quickCfg(), wl, s)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = res.Instructions
				continue
			}
			if res.Instructions != want {
				t.Fatalf("%s/%s retired %d, want %d", wl, s, res.Instructions, want)
			}
		}
	}
}

func TestPublicSECDAECAndChipkill(t *testing.T) {
	daec, err := NewSECDAEC6472()
	if err != nil {
		t.Fatal(err)
	}
	sector := make([]byte, 32)
	red := daec.Encode(sector)
	sector[0] ^= 0b11 // adjacent double
	if res := daec.Decode(sector, red); res != CodecCorrected {
		t.Fatalf("secdaec adjacent double = %v", res)
	}
	ck, err := NewChipkill()
	if err != nil {
		t.Fatal(err)
	}
	red = ck.Encode(sector)
	for _, p := range ck.DeviceSymbols(3) {
		if p < 32 {
			sector[p] ^= 0x55
		} else {
			red[p-32] ^= 0x55
		}
	}
	if res := ck.DecodeWithDeadDevice(sector, red, 3); res != CodecCorrected {
		t.Fatalf("chipkill dead device = %v", res)
	}
}
