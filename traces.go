package cachecraft

import (
	"io"

	"cachecraft/internal/gpu"
	"cachecraft/internal/schemes"
	"cachecraft/internal/trace"
)

// Trace recording and replay: the simulator's workloads are an interface,
// so externally-captured access traces plug in alongside the built-in
// synthetic generators.

// Access is one warp-level memory instruction (up to 32 thread addresses).
type Access = trace.Access

// Workload is a finite stream of warp accesses for one SM.
type Workload = trace.Workload

// WorkloadSource supplies one workload per SM for RunCustom.
type WorkloadSource = gpu.WorkloadSource

// BuildWorkload constructs one SM's slice of a named synthetic workload
// (for recording or inspection).
func BuildWorkload(name string, smID, numSMs int, seed int64, accesses int, footprint uint64) (Workload, error) {
	return trace.Build(name, trace.Params{
		SMID:           smID,
		NumSMs:         numSMs,
		Seed:           seed,
		Accesses:       accesses,
		FootprintBytes: footprint,
	})
}

// RecordTrace serializes a workload's access stream to the compact binary
// trace format, returning the number of accesses written.
func RecordTrace(w Workload, out io.Writer) (int, error) {
	return trace.Record(w, out)
}

// NewTraceReplayer opens a serialized trace as a Workload. footprint
// declares the logical extent the trace's addresses live in.
func NewTraceReplayer(name string, r io.Reader, footprint uint64) (Workload, error) {
	return trace.NewReplayer(name, r, footprint)
}

// RunCustom simulates caller-supplied workloads (one per SM) under the
// named protection scheme.
func RunCustom(cfg Config, scheme string, src WorkloadSource) (Result, error) {
	factory, err := schemes.ByName(scheme)
	if err != nil {
		return Result{}, err
	}
	m, err := gpu.NewFromSource(cfg, src, factory)
	if err != nil {
		return Result{}, err
	}
	res, err := m.Run()
	if err != nil {
		return Result{}, err
	}
	res.Workload = "custom"
	res.Scheme = scheme
	return res, nil
}
