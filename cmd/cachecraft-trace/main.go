// cachecraft-trace records built-in workloads to the binary trace format
// and replays trace files through the simulator — the bridge for bringing
// externally-captured GPU traces into the protection study.
//
// Usage:
//
//	cachecraft-trace -record spmv -out /tmp/spmv        # writes spmv.sm0.cct … spmv.sm15.cct
//	cachecraft-trace -replay /tmp/spmv -scheme cachecraft
package main

import (
	"flag"
	"fmt"
	"os"

	"cachecraft"
)

func main() {
	var (
		record    = flag.String("record", "", "workload to record")
		replay    = flag.String("replay", "", "trace file prefix to replay")
		out       = flag.String("out", "trace", "output prefix for -record")
		scheme    = flag.String("scheme", "cachecraft", "protection scheme for -replay")
		accesses  = flag.Int("accesses", 0, "accesses per SM (0 = config default)")
		quick     = flag.Bool("quick", false, "use the scaled-down configuration")
		footprint = flag.Int64("footprint-mb", 0, "declared footprint for -replay (0 = config default)")
	)
	flag.Parse()

	cfg := cachecraft.DefaultConfig()
	if *quick {
		cfg = cachecraft.QuickConfig()
	}
	if *accesses > 0 {
		cfg.AccessesPerSM = *accesses
	}

	switch {
	case *record != "":
		doRecord(cfg, *record, *out)
	case *replay != "":
		fp := cfg.FootprintBytes
		if *footprint > 0 {
			fp = uint64(*footprint) << 20
		}
		doReplay(cfg, *replay, *scheme, fp)
	default:
		fmt.Fprintln(os.Stderr, "cachecraft-trace: need -record or -replay")
		os.Exit(2)
	}
}

func doRecord(cfg cachecraft.Config, workload, prefix string) {
	total := 0
	for sm := 0; sm < cfg.NumSMs; sm++ {
		w, err := cachecraft.BuildWorkload(workload, sm, cfg.NumSMs, cfg.Seed,
			cfg.AccessesPerSM, cfg.FootprintBytes)
		if err != nil {
			fatal(err)
		}
		path := fmt.Sprintf("%s.sm%d.cct", prefix, sm)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		n, err := cachecraft.RecordTrace(w, f)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		total += n
	}
	fmt.Printf("recorded %d accesses across %d SMs to %s.sm*.cct\n",
		total, cfg.NumSMs, prefix)
}

func doReplay(cfg cachecraft.Config, prefix, scheme string, footprint uint64) {
	res, err := cachecraft.RunCustom(cfg, scheme,
		func(smID, numSMs int) (cachecraft.Workload, error) {
			path := fmt.Sprintf("%s.sm%d.cct", prefix, smID)
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			// The machine drains each workload fully before the run ends;
			// the file handle lives for the process lifetime, which is fine
			// for a CLI.
			return cachecraft.NewTraceReplayer(path, f, footprint)
		})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed under %s: %d cycles, IPC %.3f, DRAM %v\n",
		scheme, res.Cycles, res.IPC, res.DRAMBytes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cachecraft-trace:", err)
	os.Exit(1)
}
