// cachecraft-worker is the pull side of the sweep cluster: it polls a
// coordinator (cachecraft-serve -coordinator) for leases — batches of
// fingerprint-keyed simulation cells — runs them through a local
// bench.Runner, pushes each result back the moment it finishes, and
// heartbeats to keep its leases alive. Kill a worker at any point: its
// leases expire, the coordinator re-queues the unfinished cells, and the
// surviving workers pick them up. See docs/CLUSTER.md.
//
// Usage:
//
//	cachecraft-worker -coordinator http://host:8344
//	cachecraft-worker -coordinator http://host:8344 -j 8 -store /var/tmp/cachecraft -store-max-bytes 1073741824
//	cachecraft-worker -coordinator http://host:8344 -name rack3-gpu0 -audit
//	cachecraft-worker -coordinator http://host:8344 -debug-addr 127.0.0.1:6061
//
// Cells carry their full GPU configuration, so a worker needs no
// agreement with the coordinator beyond the simulator revision (enforced
// at lease time — a mismatched worker exits rather than poison the
// content-addressed store). A local -store lets a worker answer
// re-leased cells from disk without re-simulating, and -store-max-bytes
// keeps that cache from growing without bound.
//
// -debug-addr opens a side listener with net/http/pprof, the worker's
// own /metrics exposition (the same runner families cachecraft-serve
// reports), and /healthz. The same metric snapshot also rides every
// lease poll and heartbeat, so the coordinator's /metrics re-exports it
// per worker even when the debug listener is off.
//
// Start order does not matter: the worker waits for the coordinator
// with capped backoff (bounded by -startup-timeout, default forever),
// so workers may be launched first or survive a coordinator restart.
// -chaos injects deterministic faults (crashes, partitions, latency)
// for recovery drills; never set it in production.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/chaos"
	"cachecraft/internal/cluster"
	"cachecraft/internal/config"
	"cachecraft/internal/obs"
	"cachecraft/internal/store"
	"cachecraft/internal/version"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL (required), e.g. http://host:8344")
		name        = flag.String("name", "", "worker name for leases and metrics (default <hostname>-<pid>)")
		jobs        = flag.Int("j", runtime.NumCPU(), "max simulations running concurrently")
		batch       = flag.Int("batch", 0, "max cells per lease (0 = same as -j)")
		poll        = flag.Duration("poll", 2*time.Second, "max idle-poll backoff between empty lease polls")
		storeDir    = flag.String("store", "", "local persistent result store directory (empty = none)")
		storeMax    = flag.Int64("store-max-bytes", 0, "prune the local store's oldest records beyond this many bytes (0 = unbounded)")
		auditOn     = flag.Bool("audit", false, "run every simulation under the invariant-audit layer")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof, /metrics, and /healthz on this extra address (empty = off)")
		quiet       = flag.Bool("quiet", false, "suppress per-lease progress logs")
		startupWait = flag.Duration("startup-timeout", 0, "max time to wait for the coordinator to come up (0 = wait forever)")
		chaosSpec   = flag.String("chaos", "", "fault-injection spec, e.g. 'seed=7;worker.exec:crash:0.05;worker.complete:partition:0.1' (testing only)")
	)
	flag.Parse()
	log.SetPrefix("cachecraft-worker: ")
	log.SetFlags(log.LstdFlags)
	if *coordinator == "" {
		log.Fatal("-coordinator is required")
	}

	// The base config is a placeholder: leased cells register their own
	// configuration under their fingerprint before running.
	r := bench.NewRunner(config.Default())
	r.SetWorkers(*jobs)
	r.SetAudit(*auditOn)
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		r.SetStore(st)
		log.Printf("local result store at %s", st.Dir())
		stop := st.StartAutoPrune(*storeMax, time.Minute, log.Printf)
		defer stop()
	}

	// The registry backs both the -debug-addr /metrics exposition and the
	// snapshots attached to every lease poll and heartbeat, which the
	// coordinator re-exports under per-worker-labelled families.
	reg := obs.NewRegistry()
	bench.RegisterRunnerMetrics(reg, r)

	inj, err := chaos.ParseSpec(*chaosSpec)
	if err != nil {
		log.Fatal(err)
	}
	if inj != nil {
		log.Printf("CHAOS ENABLED (seed=%d): faults will be injected on purpose", inj.Seed())
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		Coordinator: *coordinator,
		Name:        *name,
		Runner:      r,
		Batch:       *batch,
		PollMax:     *poll,
		Registry:    reg,
		Logger:      logger,
		Chaos:       inj,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *debugAddr != "" {
		// A dedicated mux, mirroring cachecraft-serve's -debug-addr: the
		// worker has no public listener at all, so this stays bindable to
		// loopback while the control-plane traffic flows outbound only.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.HandleFunc("GET /metrics", func(wr http.ResponseWriter, _ *http.Request) {
			wr.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(wr)
		})
		dmux.HandleFunc("GET /healthz", func(wr http.ResponseWriter, _ *http.Request) {
			wr.Header().Set("Content-Type", "text/plain; charset=utf-8")
			wr.Write([]byte("ok\n"))
		})
		go func() {
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
		log.Printf("pprof and /metrics on http://%s/", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Wait out a coordinator that is not up yet: fleet bring-up has no
	// ordering constraint, and a worker that outlives a coordinator
	// restart re-enters the same loop via its lease polls.
	waitCtx := ctx
	if *startupWait > 0 {
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithTimeout(ctx, *startupWait)
		defer cancel()
	}
	if err := cluster.AwaitCoordinator(waitCtx, cluster.NewClient(*coordinator), log.Printf); err != nil {
		if errors.Is(err, context.Canceled) {
			return
		}
		log.Fatal(err)
	}

	log.Printf("%s worker %q polling %s (workers=%d)", version.String(), w.Name(), *coordinator, *jobs)
	err = w.Run(ctx)
	switch {
	case errors.Is(err, context.Canceled):
		st := r.Stats()
		log.Printf("signal received; exiting (ran %d sims, %d store hits, %d memo hits)",
			st.Runs, st.StoreHits, st.MemoHits)
	case err != nil:
		log.Fatal(err)
	}
}
