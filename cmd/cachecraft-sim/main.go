// cachecraft-sim runs one (workload, protection-scheme) simulation on the
// configured GPU and prints timing, traffic, and controller statistics.
//
// Usage:
//
//	cachecraft-sim -workload spmv -scheme cachecraft
//	cachecraft-sim -workload histogram -scheme inline-naive -accesses 4000
//	cachecraft-sim -workload stream -scheme cachecraft -timeline run.json
//	cachecraft-sim -list
//
// With -timeline the run is sampled by the time-resolved probe layer and
// the probe tracks are written to the named file: ".json" gets Chrome
// trace-event JSON loadable at https://ui.perfetto.dev, any other
// extension gets NDJSON readable by cachecraft-report. The timeline is a
// side channel — stdout output is identical with or without it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cachecraft"
	"cachecraft/internal/stats"
)

func main() {
	var (
		workload  = flag.String("workload", "stream", "workload name (see -list)")
		scheme    = flag.String("scheme", "cachecraft", "protection scheme (see -list)")
		accesses  = flag.Int("accesses", 0, "warp accesses per SM (0 = config default)")
		footprint = flag.Int64("footprint-mb", 0, "workload footprint in MiB (0 = default)")
		seed      = flag.Int64("seed", 0, "workload seed (0 = default)")
		l2MiB     = flag.Int("l2-mib", 0, "L2 capacity in MiB (0 = default)")
		layoutStr = flag.String("layout", "", "inline-ECC layout: linear or row-local (default from config)")
		quick     = flag.Bool("quick", false, "use the scaled-down test configuration")
		auditOn   = flag.Bool("audit", false, "run under the invariant-audit layer (fails on any violation)")
		timeline  = flag.String("timeline", "", "write a time-resolved probe timeline to this file (.json = Chrome trace events, else NDJSON)")
		tlWindow  = flag.Uint64("timeline-window", 1000, "probe sampling window in cycles for -timeline")
		list      = flag.Bool("list", false, "list workloads and schemes, then exit")
		verbose   = flag.Bool("v", false, "dump all counters")
		jsonOut   = flag.Bool("json", false, "emit the full result as JSON")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(cachecraft.Workloads(), " "))
		fmt.Println("schemes:  ", strings.Join(cachecraft.Schemes(), " "))
		return
	}

	cfg := cachecraft.DefaultConfig()
	if *quick {
		cfg = cachecraft.QuickConfig()
	}
	if *accesses > 0 {
		cfg.AccessesPerSM = *accesses
	}
	if *footprint > 0 {
		cfg.FootprintBytes = uint64(*footprint) << 20
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *l2MiB > 0 {
		cfg.L2.SizeBytes = *l2MiB << 20
	}
	if *layoutStr != "" {
		cfg.Layout = *layoutStr
	}

	var (
		res cachecraft.Result
		err error
	)
	if *timeline != "" {
		var probes *cachecraft.Probes
		res, probes, err = cachecraft.RunProbed(cfg, *workload, *scheme, *tlWindow, *auditOn)
		if err == nil {
			tl := cachecraft.NewTimeline()
			tl.AddCell(*workload+"/"+*scheme, probes)
			if werr := tl.WriteFile(*timeline); werr != nil {
				fmt.Fprintln(os.Stderr, "cachecraft-sim: timeline:", werr)
				os.Exit(1)
			}
		}
	} else if *auditOn {
		res, err = cachecraft.RunAudited(cfg, *workload, *scheme)
	} else {
		res, err = cachecraft.Run(cfg, *workload, *scheme)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachecraft-sim:", err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "cachecraft-sim:", err)
			os.Exit(1)
		}
		return
	}

	t := stats.NewTable(fmt.Sprintf("%s under %s", *workload, *scheme), "metric", "value")
	t.AddRow("cycles", fmt.Sprintf("%d", res.Cycles))
	t.AddRow("instructions", fmt.Sprintf("%d", res.Instructions))
	t.AddRow("IPC", fmt.Sprintf("%.3f", res.IPC))
	t.AddRow("L1 hit rate", fmt.Sprintf("%.3f", res.L1HitRate))
	t.AddRow("L2 hit rate", fmt.Sprintf("%.3f", res.L2HitRate))
	t.AddRow("avg DRAM latency", fmt.Sprintf("%.0f cy", res.AvgMemLatency))
	t.AddRow("DRAM bus utilization", fmt.Sprintf("%.3f", res.BusUtilization))
	for _, class := range []string{"demand", "redundancy", "writeback", "rmw", "reconstruct"} {
		t.AddRow("bytes "+class, fmt.Sprintf("%d", res.DRAMBytes[class]))
	}
	rowTotal := res.DRAMRowHits + res.DRAMRowMisses + res.DRAMRowConfl
	if rowTotal > 0 {
		t.AddRow("DRAM row-hit rate", fmt.Sprintf("%.3f", float64(res.DRAMRowHits)/float64(rowTotal)))
	}
	t.Render(os.Stdout)

	if *verbose {
		fmt.Println("\n-- machine counters --")
		fmt.Print(res.Machine)
		fmt.Println("-- controller counters --")
		fmt.Print(res.ControllerSt)
		fmt.Println("-- L2 counters --")
		fmt.Print(res.L2Stats)
		fmt.Println("-- DRAM counters --")
		fmt.Print(res.DRAMStats)
	}
}
