// cachecraft-serve runs the simulation harness as a long-running HTTP
// service with a persistent, content-addressed result cache: repeat
// requests for a simulation that has already run — in this process or any
// earlier one sharing -store — are answered from the cache without
// simulating.
//
// Usage:
//
//	cachecraft-serve -addr :8344 -store /var/tmp/cachecraft
//	cachecraft-serve -quick -j 4 -max-inflight 8
//	cachecraft-serve -quick -debug-addr 127.0.0.1:6060   # pprof side listener
//	cachecraft-serve -coordinator -store /var/tmp/cachecraft   # sweep cluster head
//
// Endpoints: POST /v1/simulate, POST /v1/sweep (NDJSON stream),
// GET /v1/results/{fingerprint} (ETag/If-None-Match), GET /healthz,
// GET /metrics. Saturation (beyond -max-inflight running plus -queue
// waiting) returns 429 with a Retry-After header. Each response carries
// an X-Request-Id (echoed if the client sent one) that also appears in
// the structured access log on stderr. SIGINT/SIGTERM drains gracefully:
// the listener closes, in-flight requests finish (up to -drain), then the
// process exits after logging a final summary taken from the same metrics
// registry /metrics serves.
//
// With -coordinator the server additionally mounts the cluster control
// plane (POST /v1/cluster/sweep streaming the same NDJSON format as
// /v1/sweep, plus /v1/cluster/lease, /complete, /heartbeat) and shards
// submitted grids across cachecraft-worker processes with leases,
// retries, and straggler re-dispatch; see docs/CLUSTER.md. With
// -store-max-bytes the result store is pruned (oldest records first)
// once a minute so long-running deployments don't grow disks unboundedly.
//
// Robustness knobs (docs/CLUSTER.md, "Failure modes & recovery"):
// -journal points the coordinator at an append-only crash-recovery log —
// kill -9 the process mid-sweep, restart it with the same -journal, and
// resubmitted sweeps resume with every already-finished cell answered
// from the journal, byte-identical. -quarantine-after pulls poison cells
// (ones that keep killing workers) out of circulation. -breaker-threshold
// / -breaker-cooldown govern the store's circuit breaker: a sick disk
// degrades the store to compute-only instead of failing sweeps. -chaos
// injects deterministic faults for drills; never set it in production.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/chaos"
	"cachecraft/internal/cluster"
	"cachecraft/internal/config"
	"cachecraft/internal/obs"
	"cachecraft/internal/serve"
	"cachecraft/internal/store"
	"cachecraft/internal/version"
)

func main() {
	var (
		addr      = flag.String("addr", ":8344", "listen address")
		storeDir  = flag.String("store", "", "persistent result store directory (empty = in-memory only)")
		quick     = flag.Bool("quick", false, "use the scaled-down configuration (fast, not meaningful)")
		jobs      = flag.Int("j", runtime.NumCPU(), "max simulations running concurrently")
		inflight  = flag.Int("max-inflight", runtime.NumCPU(), "max simulation-bearing requests in flight before queueing")
		queue     = flag.Int("queue", 0, "max queued requests beyond -max-inflight before 429 (0 = 2x max-inflight)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown grace period")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this extra address (empty = off)")
		quiet     = flag.Bool("quiet", false, "suppress per-request access logs")

		coordinator = flag.Bool("coordinator", false, "mount the sweep-cluster control plane (/v1/cluster/*)")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "coordinator: lease lifetime without a heartbeat")
		retryBudget = flag.Int("retry-budget", 5, "coordinator: dispatch attempts per cell before terminal failure")
		storeMax    = flag.Int64("store-max-bytes", 0, "prune the store's oldest records beyond this many bytes (0 = unbounded)")

		journalPath = flag.String("journal", "", "coordinator: crash-recovery sweep journal file (empty = no journal)")
		quarantine  = flag.Int("quarantine-after", 3, "coordinator: consecutive crash-like failures before a cell is quarantined as poison")
		brkThresh   = flag.Int("breaker-threshold", 8, "store: consecutive I/O errors before the circuit breaker opens (0 = breaker off)")
		brkCooldown = flag.Duration("breaker-cooldown", 3*time.Second, "store: how long the breaker stays open before probing the disk again")
		chaosSpec   = flag.String("chaos", "", "fault-injection spec, e.g. 'seed=7;store.put:error:0.1;serve.request:latency:0.05,delay=20ms' (testing only)")
	)
	flag.Parse()
	log.SetPrefix("cachecraft-serve: ")
	log.SetFlags(log.LstdFlags)

	base := config.Default()
	if *quick {
		base = config.Quick()
	}
	r := bench.NewRunner(base)
	r.SetWorkers(*jobs)

	inj, err := chaos.ParseSpec(*chaosSpec)
	if err != nil {
		log.Fatal(err)
	}
	if inj != nil {
		log.Printf("CHAOS ENABLED (seed=%d): faults will be injected on purpose", inj.Seed())
	}

	// One registry for the whole process: the HTTP layer and (in
	// coordinator mode) the cluster share a /metrics exposition.
	reg := obs.NewRegistry()
	var st *store.Store
	if *storeDir != "" {
		if st, err = store.Open(*storeDir); err != nil {
			log.Fatal(err)
		}
		log.Printf("result store at %s", st.Dir())
		st.SetChaos(inj)
		if *brkThresh > 0 {
			st.SetBreaker(*brkThresh, *brkCooldown)
			bench.RegisterStoreMetrics(reg, st)
		}
		stop := st.StartAutoPrune(*storeMax, time.Minute, log.Printf)
		defer stop()
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	var accessLog *slog.Logger
	if !*quiet {
		accessLog = logger
	}
	var co *cluster.Coordinator
	if *coordinator {
		var jnl *cluster.Journal
		if *journalPath != "" {
			if jnl, err = cluster.OpenJournal(*journalPath); err != nil {
				log.Fatal(err)
			}
			defer jnl.Close()
			log.Printf("sweep journal at %s (%d entries replayed, %d torn/corrupt lines skipped)",
				jnl.Path(), len(jnl.Replayed()), jnl.Skipped())
		}
		co = cluster.New(cluster.Options{
			Base:            base,
			Store:           st,
			Registry:        reg,
			LeaseTTL:        *leaseTTL,
			MaxAttempts:     *retryBudget,
			QuarantineAfter: *quarantine,
			Journal:         jnl,
			Logger:          logger,
		})
		defer co.Close()
		log.Printf("coordinator mode: lease-ttl=%s retry-budget=%d quarantine-after=%d",
			*leaseTTL, *retryBudget, *quarantine)
	}
	srv := serve.New(serve.Options{
		Base:        base,
		Runner:      r,
		Store:       st,
		MaxInFlight: *inflight,
		MaxQueue:    *queue,
		Registry:    reg,
		Logger:      accessLog,
		Coordinator: co,
		Chaos:       inj,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *debugAddr != "" {
		// A dedicated mux so pprof never rides the public listener: the
		// main handler counts and rate-limits paper traffic, the debug
		// listener stays bindable to loopback only.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
		log.Printf("pprof on http://%s/debug/pprof/", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("signal received; draining for up to %s", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
			hs.Close()
		}
	}()

	log.Printf("%s listening on %s (workers=%d, max-inflight=%d)", version.String(), *addr, *jobs, *inflight)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// The shutdown summary is a snapshot of the same registry /metrics
	// renders, so the two can never disagree about what this process did.
	snap := srv.Registry().Snapshot()
	attrs := make([]slog.Attr, 0, 8)
	for _, name := range snap.Names() {
		attrs = append(attrs, slog.Uint64(name, snap.Get(name)))
	}
	logger.LogAttrs(context.Background(), slog.LevelInfo, "drained", attrs...)
}
