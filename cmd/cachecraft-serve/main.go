// cachecraft-serve runs the simulation harness as a long-running HTTP
// service with a persistent, content-addressed result cache: repeat
// requests for a simulation that has already run — in this process or any
// earlier one sharing -store — are answered from the cache without
// simulating.
//
// Usage:
//
//	cachecraft-serve -addr :8344 -store /var/tmp/cachecraft
//	cachecraft-serve -quick -j 4 -max-inflight 8
//
// Endpoints: POST /v1/simulate, POST /v1/sweep (NDJSON stream),
// GET /v1/results/{fingerprint} (ETag/If-None-Match), GET /healthz,
// GET /metrics. Saturation (beyond -max-inflight running plus -queue
// waiting) returns 429. SIGINT/SIGTERM drains gracefully: the listener
// closes, in-flight requests finish (up to -drain), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/config"
	"cachecraft/internal/serve"
	"cachecraft/internal/store"
	"cachecraft/internal/version"
)

func main() {
	var (
		addr     = flag.String("addr", ":8344", "listen address")
		storeDir = flag.String("store", "", "persistent result store directory (empty = in-memory only)")
		quick    = flag.Bool("quick", false, "use the scaled-down configuration (fast, not meaningful)")
		jobs     = flag.Int("j", runtime.NumCPU(), "max simulations running concurrently")
		inflight = flag.Int("max-inflight", runtime.NumCPU(), "max simulation-bearing requests in flight before queueing")
		queue    = flag.Int("queue", 0, "max queued requests beyond -max-inflight before 429 (0 = 2x max-inflight)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown grace period")
	)
	flag.Parse()
	log.SetPrefix("cachecraft-serve: ")
	log.SetFlags(log.LstdFlags)

	base := config.Default()
	if *quick {
		base = config.Quick()
	}
	r := bench.NewRunner(base)
	r.SetWorkers(*jobs)

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			log.Fatal(err)
		}
		log.Printf("result store at %s", st.Dir())
	}

	srv := serve.New(serve.Options{
		Base:        base,
		Runner:      r,
		Store:       st,
		MaxInFlight: *inflight,
		MaxQueue:    *queue,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("signal received; draining for up to %s", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
			hs.Close()
		}
	}()

	log.Printf("%s listening on %s (workers=%d, max-inflight=%d)", version.String(), *addr, *jobs, *inflight)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	stats := r.Stats()
	log.Printf("drained; runs=%d memo-hits=%d dedups=%d store-hits=%d store-misses=%d",
		stats.Runs, stats.MemoHits, stats.Dedups, stats.StoreHits, stats.StoreMisses)
}
