// cachecraft-ecc exercises the raw ECC codecs from the command line:
// encode data, inject faults, decode, and run reliability campaigns.
//
// Usage:
//
//	cachecraft-ecc -codec rs36 -demo                 # encode/corrupt/decode walkthrough
//	cachecraft-ecc -codec secded -campaign -trials 5000
//	cachecraft-ecc -tagged -demo                     # memory-tagging walkthrough
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"cachecraft"
	"cachecraft/internal/ecc"
	"cachecraft/internal/faults"
	"cachecraft/internal/stats"
)

func main() {
	var (
		codecName = flag.String("codec", "rs36", "codec: secded, secdaec, rs36, rs34, chipkill")
		demo      = flag.Bool("demo", false, "run an encode/corrupt/decode walkthrough")
		tagged    = flag.Bool("tagged", false, "demonstrate the tagged (memory-safety) codec")
		campaign  = flag.Bool("campaign", false, "run fault-injection campaigns")
		trials    = flag.Int("trials", 10000, "campaign trials per fault model")
		seed      = flag.Int64("seed", 1, "rng seed")
	)
	flag.Parse()

	if *tagged {
		taggedDemo(*seed)
		return
	}

	codec, err := buildCodec(*codecName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachecraft-ecc:", err)
		os.Exit(1)
	}

	switch {
	case *demo:
		runDemo(codec, *seed)
	case *campaign:
		runCampaign(codec, *trials, *seed)
	default:
		fmt.Printf("codec %s: %dB sectors, %dB redundancy (ratio %.4f)\n",
			codec.Name(), codec.SectorBytes(), codec.RedundancyBytes(),
			float64(codec.RedundancyBytes())/float64(codec.SectorBytes()))
		fmt.Println("use -demo, -campaign, or -tagged")
	}
}

func buildCodec(name string) (cachecraft.SectorCodec, error) {
	switch name {
	case "secded":
		return cachecraft.NewSECDED6472()
	case "secdaec":
		return cachecraft.NewSECDAEC6472()
	case "rs36":
		return cachecraft.NewRS3632()
	case "rs34":
		return cachecraft.NewRS3432()
	case "chipkill":
		return cachecraft.NewChipkill()
	default:
		return nil, fmt.Errorf("unknown codec %q (secded, secdaec, rs36, rs34, chipkill)", name)
	}
}

func runDemo(codec cachecraft.SectorCodec, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	sector := make([]byte, codec.SectorBytes())
	rng.Read(sector)
	red := codec.Encode(sector)
	fmt.Printf("codec: %s\nsector: %x\nredundancy: %x\n", codec.Name(), sector, red)

	clean := codec.Decode(sector, red)
	fmt.Printf("clean decode: %s\n", clean)

	bit := rng.Intn(codec.SectorBytes() * 8)
	sector[bit/8] ^= 1 << (bit % 8)
	fmt.Printf("flipped bit %d → decode: %s\n", bit, codec.Decode(sector, red))

	pos := rng.Intn(codec.SectorBytes())
	old := sector[pos]
	sector[pos] ^= 0xff
	fmt.Printf("corrupted byte %d (%#02x→%#02x) → decode: %s\n",
		pos, old, sector[pos], codec.Decode(sector, red))
}

func runCampaign(codec cachecraft.SectorCodec, trials int, seed int64) {
	injectors := []struct {
		name string
		inj  faults.Injector
	}{
		{"1 bit", faults.BitFlips(1)},
		{"2 bits", faults.BitFlips(2)},
		{"3 bits", faults.BitFlips(3)},
		{"4-bit burst", faults.Burst(4)},
		{"8-bit burst", faults.Burst(8)},
		{"1 chip", faults.ChipError()},
		{"2 chips", faults.DoubleChipError()},
	}
	t := stats.NewTable(fmt.Sprintf("%s, %d trials per fault", codec.Name(), trials),
		"fault", "corrected", "detected", "miscorrected", "silent-bad", "SDC")
	for _, in := range injectors {
		rep := faults.Campaign{Codec: codec.(ecc.SectorCodec), Trials: trials, Seed: seed}.Run(in.name, in.inj)
		t.AddRow(in.name,
			fmt.Sprintf("%.4f", rep.Rate(faults.Corrected)),
			fmt.Sprintf("%.4f", rep.Rate(faults.Detected)),
			fmt.Sprintf("%.4f", rep.Rate(faults.Miscorrected)),
			fmt.Sprintf("%.4f", rep.Rate(faults.SilentBad)),
			fmt.Sprintf("%.4f", rep.SDCRate()))
	}
	t.Render(os.Stdout)
}

func taggedDemo(seed int64) {
	codec, err := cachecraft.NewTaggedCodec(32, 4, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachecraft-ecc:", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 32)
	rng.Read(data)
	tag := []byte{0x5}
	parity := codec.Encode(data, tag)
	fmt.Printf("codec: %s\nstored tag: %#02x (not written to memory!)\n", codec.Name(), tag[0])

	fmt.Printf("check with correct tag:  %s\n", codec.Check(data, parity, tag))
	fmt.Printf("check with wrong tag:    %s\n", codec.Check(data, parity, []byte{0x6}))

	data[3] ^= 0x40
	fmt.Printf("bit error + correct tag: %s\n", codec.Check(data, parity, tag))
}
