// cachecraft-report reads a probe timeline written by cachecraft-sim or
// cachecraft-sweep (-timeline FILE, NDJSON form) and prints phase
// summaries: where each tracked metric leaves its warmup transient, its
// warmup vs steady-state level, and any redundancy-traffic bursts — the
// time-resolved behavior CacheCraft's end-of-run aggregates hide.
//
// Usage:
//
//	cachecraft-report fig4.ndjson
//	cachecraft-report -series hit_rate fig4.ndjson   # only matching tracks
//	cachecraft-report -bursts dram.bytes.redundancy fig4.ndjson
//	cachecraft-report -cluster http://host:8344      # live cluster health
//
// With -cluster the command instead queries a running coordinator's
// /v1/cluster/status and prints a health summary: cell progress, active
// workers, how many cells the coordinator replayed from its sweep
// journal after a restart, and any quarantined poison cells with their
// failure histories.
//
// Chrome trace-event (.json) timelines are for Perfetto; this command
// reads the NDJSON form.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cachecraft/internal/cluster"
	"cachecraft/internal/obs"
	"cachecraft/internal/stats"
)

func main() {
	var (
		seriesFilter = flag.String("series", "", "only summarize series whose name contains this substring")
		burstSeries  = flag.String("bursts", "dram.bytes.redundancy", "series to scan for traffic bursts (empty = skip)")
		csv          = flag.Bool("csv", false, "emit tables as CSV")
		clusterURL   = flag.String("cluster", "", "coordinator base URL: report live cluster health instead of a timeline")
	)
	flag.Parse()
	if *clusterURL != "" {
		if flag.NArg() != 0 {
			fail("-cluster takes no timeline argument")
		}
		clusterReport(*clusterURL, *csv)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cachecraft-report [flags] TIMELINE.ndjson")
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	tl, err := obs.ReadNDJSON(f)
	f.Close()
	if err != nil {
		fail("%v", err)
	}
	cells := tl.Cells()
	if len(cells) == 0 {
		fail("timeline %s holds no probe cells (was it written with .json? that form is for Perfetto)", flag.Arg(0))
	}

	var out = os.Stdout
	render := func(t *stats.Table) {
		if *csv {
			t.Render(stats.CSVWriter{Writer: out})
		} else {
			t.Render(out)
		}
	}

	for _, cell := range cells {
		t := stats.NewTable(fmt.Sprintf("phases — %s", cell.Label),
			"series", "samples", "warmup end", "warmup mean", "steady mean")
		rows := 0
		for _, sd := range cell.Series {
			if *seriesFilter != "" && !strings.Contains(sd.Name, *seriesFilter) {
				continue
			}
			ph, ok := obs.AnalyzePhases(sd)
			if !ok {
				continue
			}
			t.AddRow(sd.Name,
				fmt.Sprintf("%d", ph.Samples),
				fmt.Sprintf("%d cy", ph.WarmupEnd),
				fmt.Sprintf("%.4g", ph.WarmupMean),
				fmt.Sprintf("%.4g", ph.SteadyMean))
			rows++
		}
		if rows > 0 {
			render(t)
			fmt.Fprintln(out)
		}

		if *burstSeries == "" {
			continue
		}
		for _, sd := range cell.Series {
			if sd.Name != *burstSeries {
				continue
			}
			bursts := obs.DetectBursts(sd)
			if len(bursts) == 0 {
				fmt.Fprintf(out, "%s: no %s bursts (baseline holds)\n\n", cell.Label, sd.Name)
				continue
			}
			bt := stats.NewTable(fmt.Sprintf("bursts — %s — %s", cell.Label, sd.Name),
				"start", "end", "peak", "baseline")
			for _, b := range bursts {
				bt.AddRow(
					fmt.Sprintf("%d cy", b.StartCycle),
					fmt.Sprintf("%d cy", b.EndCycle),
					fmt.Sprintf("%.4g", b.Peak),
					fmt.Sprintf("%.4g", b.Baseline))
			}
			render(bt)
			fmt.Fprintln(out)
		}
	}
}

// clusterReport renders a coordinator's /v1/cluster/status: overall cell
// progress (including journal-replayed and quarantined counts), the
// worker fleet, and one row per quarantined poison cell with the failure
// history that condemned it.
func clusterReport(url string, csv bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := cluster.NewClient(url).Status(ctx)
	if err != nil {
		fail("%v", err)
	}
	out := os.Stdout
	render := func(t *stats.Table) {
		if csv {
			t.Render(stats.CSVWriter{Writer: out})
		} else {
			t.Render(out)
		}
		fmt.Fprintln(out)
	}

	sum := stats.NewTable(fmt.Sprintf("cluster — %s (up %s)", url, (time.Duration(st.UptimeMs)*time.Millisecond).Round(time.Second)),
		"pending", "leased", "done", "failed", "quarantined", "journal replayed", "active leases")
	sum.AddRow(
		fmt.Sprintf("%d", st.PendingCells),
		fmt.Sprintf("%d", st.LeasedCells),
		fmt.Sprintf("%d", st.DoneCells),
		fmt.Sprintf("%d", st.FailedCells),
		fmt.Sprintf("%d", st.QuarantinedCells),
		fmt.Sprintf("%d", st.JournalReplayedCells),
		fmt.Sprintf("%d", st.ActiveLeases))
	render(sum)

	if len(st.Workers) > 0 {
		wt := stats.NewTable("workers", "name", "live", "last seen", "leases", "completed", "cells/s")
		for _, w := range st.Workers {
			live := "yes"
			if !w.Live {
				live = "NO"
			}
			wt.AddRow(w.Name, live,
				(time.Duration(w.LastSeenMs) * time.Millisecond).Round(time.Millisecond).String(),
				fmt.Sprintf("%d", w.ActiveLeases),
				fmt.Sprintf("%d", w.CellsCompleted),
				fmt.Sprintf("%.2f", w.CellsPerSec))
		}
		render(wt)
	}

	if len(st.Quarantined) > 0 {
		qt := stats.NewTable("quarantined poison cells", "workload", "scheme", "fingerprint", "failures")
		for _, q := range st.Quarantined {
			qt.AddRow(q.Workload, q.Scheme, q.Fingerprint, fmt.Sprintf("%d", len(q.History)))
		}
		render(qt)
		for _, q := range st.Quarantined {
			fmt.Fprintf(out, "%s/%s %s:\n", q.Workload, q.Scheme, q.Fingerprint)
			for _, h := range q.History {
				fmt.Fprintf(out, "  %s\n", h)
			}
			fmt.Fprintf(out, "  -> %s\n\n", q.Error)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cachecraft-report: "+format+"\n", args...)
	os.Exit(1)
}
