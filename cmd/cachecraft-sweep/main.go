// cachecraft-sweep regenerates the evaluation's tables and figures. Each
// experiment prints the same rows/series the paper-style evaluation
// reports; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded outputs.
//
// Usage:
//
//	cachecraft-sweep -list
//	cachecraft-sweep -run fig4
//	cachecraft-sweep -run all            # the full evaluation (slow)
//	cachecraft-sweep -run fig4 -quick    # scaled-down smoke version
//	cachecraft-sweep -run all -j 8       # at most 8 concurrent simulations
//	cachecraft-sweep -run all -store DIR # persist results; warm re-runs simulate nothing
//	cachecraft-sweep -run all -progress  # live cell counts + ETA on stderr
//	cachecraft-sweep -run fig4 -trace-out spans.ndjson
//	cachecraft-sweep -run fig4 -timeline fig4.json       # Perfetto trace (probe counter tracks)
//	cachecraft-sweep -run fig4 -timeline fig4.ndjson     # cachecraft-report input
//	cachecraft-sweep -run all -remote http://coordinator:8344  # shard across a cluster
//
// Simulations fan out across a bounded worker pool (-j, default
// runtime.NumCPU()). Workload generation is deterministic per (seed, SM),
// so stdout is byte-identical for every -j value — and, with -store, for
// warm re-runs that simulate nothing at all; per-experiment wall times,
// runner statistics, and -progress lines go to stderr, and -trace-out
// spans and -timeline probe tracks go to their named files, so none of
// them disturb that guarantee.
//
// With -remote, cells whose workload and scheme are registered names are
// materialized by a sweep cluster (cachecraft-serve -coordinator plus
// cachecraft-worker fleet; see docs/CLUSTER.md) instead of simulating
// here; custom ablation variants still run locally. The simulator is
// deterministic and cells are content-addressed, so stdout remains
// byte-identical to a fully local run — the startup handshake enforces
// matching simulator revisions to keep that guarantee honest.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/cluster"
	"cachecraft/internal/config"
	"cachecraft/internal/obs"
	"cachecraft/internal/stats"
	"cachecraft/internal/store"
)

func main() {
	var (
		runID    = flag.String("run", "", "experiment id to run, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "use the scaled-down configuration (fast, not meaningful)")
		csv      = flag.Bool("csv", false, "emit tables as CSV (for plotting)")
		jobs     = flag.Int("j", runtime.NumCPU(), "max simulations running concurrently")
		storeDir = flag.String("store", "", "persistent result store directory (empty = none)")
		progress = flag.Bool("progress", false, "report live cell progress and ETA on stderr")
		traceOut = flag.String("trace-out", "", "write per-cell NDJSON trace spans to this file")
		timeline = flag.String("timeline", "", "write a time-resolved probe timeline to this file (.json = Chrome trace events for Perfetto, else NDJSON for cachecraft-report)")
		tlWindow = flag.Uint64("timeline-window", 1000, "probe sampling window in cycles for -timeline")
		auditOn  = flag.Bool("audit", false, "run every simulation under the invariant-audit layer")
		remote   = flag.String("remote", "", "cluster coordinator base URL; standard cells run on the cluster (empty = all local)")

		brkThresh   = flag.Int("breaker-threshold", 8, "store: consecutive I/O errors before the circuit breaker opens (0 = breaker off)")
		brkCooldown = flag.Duration("breaker-cooldown", 3*time.Second, "store: how long the breaker stays open before probing the disk again")
	)
	flag.Parse()

	if *list || *runID == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}

	base := config.Default()
	if *quick {
		base = config.Quick()
	}
	r := bench.NewRunner(base)
	r.SetWorkers(*jobs)
	r.SetAudit(*auditOn)

	// cleanup runs before every exit so trace output is never truncated.
	var cleanup []func()
	exit := func(code int) {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
		os.Exit(code)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cachecraft-sweep: "+format+"\n", args...)
		exit(1)
	}

	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fail("%v", err)
		}
		// A sick disk must never sink a sweep: past the breaker threshold
		// the store degrades to compute-only (misses, no persistence) and
		// the run finishes on the simulator alone — stdout is unchanged
		// either way because store results are byte-identical to fresh
		// computation.
		if *brkThresh > 0 {
			st.SetBreaker(*brkThresh, *brkCooldown)
		}
		r.SetStore(st)
	}
	if *remote != "" {
		cl := cluster.NewClient(*remote)
		// Fail fast on an unreachable or revision-mismatched coordinator
		// instead of silently simulating the whole grid locally.
		if err := cl.Ping(context.Background()); err != nil {
			fail("%v", err)
		}
		r.SetRemote(cl)
	}
	// -trace-out and -timeline share one tracer: spans tee to the NDJSON
	// file and the timeline's duration track. Probe output goes only to
	// the timeline file, so stdout stays byte-identical either way.
	var tl *obs.Timeline
	if *timeline != "" {
		tl = obs.NewTimeline()
		r.SetProbes(*tlWindow, func(s bench.Spec, p *obs.Probes) {
			tl.AddCell(s.CfgID+"/"+s.Workload+"/"+s.Variant, p)
		})
		cleanup = append(cleanup, func() {
			if err := tl.WriteFile(*timeline); err != nil {
				fmt.Fprintf(os.Stderr, "cachecraft-sweep: timeline: %v\n", err)
			}
		})
	}
	var exporters []obs.Exporter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail("%v", err)
		}
		bw := bufio.NewWriter(f)
		exporters = append(exporters, obs.NewNDJSONExporter(bw))
		cleanup = append(cleanup, func() {
			if err := bw.Flush(); err == nil {
				err = f.Close()
				if err != nil {
					fmt.Fprintf(os.Stderr, "cachecraft-sweep: trace-out: %v\n", err)
				}
			} else {
				f.Close()
				fmt.Fprintf(os.Stderr, "cachecraft-sweep: trace-out: %v\n", err)
			}
		})
	}
	if tl != nil {
		exporters = append(exporters, tl)
	}
	if len(exporters) == 1 {
		r.SetTracer(obs.NewTracer(exporters[0]))
	} else if len(exporters) > 1 {
		r.SetTracer(obs.NewTracer(obs.Tee(exporters...)))
	}
	if *progress {
		cleanup = append(cleanup, startProgress(r))
	}

	var out io.Writer = os.Stdout
	if *csv {
		out = stats.CSVWriter{Writer: os.Stdout}
	}
	run := func(e bench.Experiment) {
		start := time.Now()
		before := r.Stats()
		fmt.Printf("\n### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(r, base, out); err != nil {
			fail("%s: %v", e.ID, err)
		}
		// Deterministic accounting on stdout, wall time and runner stats
		// on stderr: stdout stays byte-identical across -j values,
		// across cold vs warm -store runs, and across local vs -remote
		// execution. A "result" is a distinct simulation materialized by
		// running it, by a store hit, or by a cluster fetch, so the
		// count does not depend on where results came from.
		after := r.Stats()
		results := func(s bench.Stats) int { return s.Runs + s.StoreHits + s.RemoteHits }
		fmt.Printf("\n[%s: %d new results; %d cached total]\n",
			e.ID, results(after)-results(before), results(after))
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n",
			e.ID, time.Since(start).Seconds())
		fmt.Fprintf(os.Stderr, "[%s stats: +%d sims, +%d memo hits, +%d dedups, +%d store hits, +%d store misses, +%d remote hits]\n",
			e.ID, after.Runs-before.Runs, after.MemoHits-before.MemoHits,
			after.Dedups-before.Dedups, after.StoreHits-before.StoreHits,
			after.StoreMisses-before.StoreMisses, after.RemoteHits-before.RemoteHits)
	}

	if *runID == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		exit(0)
	}
	e, err := bench.ByID(*runID)
	if err != nil {
		fail("%v", err)
	}
	run(e)
	exit(0)
}

// startProgress reports live cell progress on stderr once a second:
// cells finished vs started, where results are coming from, and an ETA
// extrapolated from the average time per finished cell. It returns a stop
// function that halts the reporter and prints one final line.
func startProgress(r *bench.Runner) (stop func()) {
	start := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	line := func() string {
		s := r.Stats()
		elapsed := time.Since(start)
		out := fmt.Sprintf("[progress] cells %d/%d (sims %d, store hits %d, memo %d, remote %d) elapsed %s",
			s.Finished, s.Started, s.Runs, s.StoreHits, s.MemoHits, s.RemoteHits,
			elapsed.Round(time.Second))
		if s.Finished > 0 && s.Started > s.Finished {
			per := elapsed / time.Duration(s.Finished)
			eta := per * time.Duration(s.Started-s.Finished)
			out += fmt.Sprintf(" eta ~%s", eta.Round(time.Second))
		}
		return out
	}
	go func() {
		defer close(finished)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Fprintln(os.Stderr, line())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		fmt.Fprintln(os.Stderr, line())
	}
}
