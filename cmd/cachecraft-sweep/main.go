// cachecraft-sweep regenerates the evaluation's tables and figures. Each
// experiment prints the same rows/series the paper-style evaluation
// reports; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded outputs.
//
// Usage:
//
//	cachecraft-sweep -list
//	cachecraft-sweep -run fig4
//	cachecraft-sweep -run all            # the full evaluation (slow)
//	cachecraft-sweep -run fig4 -quick    # scaled-down smoke version
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/config"
	"cachecraft/internal/stats"
)

func main() {
	var (
		runID = flag.String("run", "", "experiment id to run, or 'all'")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		quick = flag.Bool("quick", false, "use the scaled-down configuration (fast, not meaningful)")
		csv   = flag.Bool("csv", false, "emit tables as CSV (for plotting)")
	)
	flag.Parse()

	if *list || *runID == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}

	base := config.Default()
	if *quick {
		base = config.Quick()
	}
	r := bench.NewRunner(base)

	var out io.Writer = os.Stdout
	if *csv {
		out = stats.CSVWriter{Writer: os.Stdout}
	}
	run := func(e bench.Experiment) {
		start := time.Now()
		fmt.Printf("\n### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(r, base, out); err != nil {
			fmt.Fprintf(os.Stderr, "cachecraft-sweep: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s done in %.1fs; %d simulations cached]\n",
			e.ID, time.Since(start).Seconds(), r.Runs())
	}

	if *runID == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, err := bench.ByID(*runID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachecraft-sweep:", err)
		os.Exit(1)
	}
	run(e)
}
