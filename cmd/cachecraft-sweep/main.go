// cachecraft-sweep regenerates the evaluation's tables and figures. Each
// experiment prints the same rows/series the paper-style evaluation
// reports; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded outputs.
//
// Usage:
//
//	cachecraft-sweep -list
//	cachecraft-sweep -run fig4
//	cachecraft-sweep -run all            # the full evaluation (slow)
//	cachecraft-sweep -run fig4 -quick    # scaled-down smoke version
//	cachecraft-sweep -run all -j 8       # at most 8 concurrent simulations
//	cachecraft-sweep -run all -store DIR # persist results; warm re-runs simulate nothing
//
// Simulations fan out across a bounded worker pool (-j, default
// runtime.NumCPU()). Workload generation is deterministic per (seed, SM),
// so stdout is byte-identical for every -j value — and, with -store, for
// warm re-runs that simulate nothing at all; per-experiment wall times
// and runner statistics go to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/config"
	"cachecraft/internal/stats"
	"cachecraft/internal/store"
)

func main() {
	var (
		runID    = flag.String("run", "", "experiment id to run, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "use the scaled-down configuration (fast, not meaningful)")
		csv      = flag.Bool("csv", false, "emit tables as CSV (for plotting)")
		jobs     = flag.Int("j", runtime.NumCPU(), "max simulations running concurrently")
		storeDir = flag.String("store", "", "persistent result store directory (empty = none)")
	)
	flag.Parse()

	if *list || *runID == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}

	base := config.Default()
	if *quick {
		base = config.Quick()
	}
	r := bench.NewRunner(base)
	r.SetWorkers(*jobs)
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cachecraft-sweep:", err)
			os.Exit(1)
		}
		r.SetStore(st)
	}

	var out io.Writer = os.Stdout
	if *csv {
		out = stats.CSVWriter{Writer: os.Stdout}
	}
	run := func(e bench.Experiment) {
		start := time.Now()
		before := r.Stats()
		fmt.Printf("\n### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(r, base, out); err != nil {
			fmt.Fprintf(os.Stderr, "cachecraft-sweep: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		// Deterministic accounting on stdout, wall time and runner stats
		// on stderr: stdout stays byte-identical across -j values and
		// across cold vs warm -store runs. A "result" is a distinct
		// simulation materialized either by running it or by a store hit,
		// so the count does not depend on where results came from.
		after := r.Stats()
		results := func(s bench.Stats) int { return s.Runs + s.StoreHits }
		fmt.Printf("\n[%s: %d new results; %d cached total]\n",
			e.ID, results(after)-results(before), results(after))
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n",
			e.ID, time.Since(start).Seconds())
		fmt.Fprintf(os.Stderr, "[%s stats: +%d sims, +%d memo hits, +%d dedups, +%d store hits, +%d store misses]\n",
			e.ID, after.Runs-before.Runs, after.MemoHits-before.MemoHits,
			after.Dedups-before.Dedups, after.StoreHits-before.StoreHits,
			after.StoreMisses-before.StoreMisses)
	}

	if *runID == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, err := bench.ByID(*runID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachecraft-sweep:", err)
		os.Exit(1)
	}
	run(e)
}
