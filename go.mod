module cachecraft

go 1.22
