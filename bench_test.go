// Benchmark harness: one benchmark per table and figure of the
// evaluation. Each benchmark regenerates its table/figure through the
// shared memoized runner, so figures that reuse the same simulations
// (performance, traffic, energy) pay for each simulation exactly once per
// `go test -bench` invocation; the printed tables are the reproduction
// artifacts recorded in EXPERIMENTS.md.
//
// Set CACHECRAFT_BENCH_QUICK=1 to run the whole harness on the
// scaled-down configuration (fast smoke run; numbers not meaningful).
package cachecraft

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"

	"cachecraft/internal/bench"
	"cachecraft/internal/config"
)

var experimentState struct {
	once    sync.Once
	base    config.GPU
	runner  *bench.Runner
	printed map[string]bool
	mu      sync.Mutex
}

func experimentRunner() (*bench.Runner, config.GPU) {
	experimentState.once.Do(func() {
		base := config.Default()
		if os.Getenv("CACHECRAFT_BENCH_QUICK") != "" {
			base = config.Quick()
			base.AccessesPerSM = 300
		}
		experimentState.base = base
		experimentState.runner = bench.NewRunner(base)
		experimentState.printed = make(map[string]bool)
	})
	return experimentState.runner, experimentState.base
}

// runExperiment regenerates one experiment. The first b.N iteration does
// the real work (simulations are memoized across all benchmarks); the
// table is printed once per experiment id.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, base := experimentRunner()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var out bytes.Buffer
	for i := 0; i < b.N; i++ {
		out.Reset()
		if err := e.Run(r, base, &out); err != nil {
			b.Fatal(err)
		}
	}
	experimentState.mu.Lock()
	if !experimentState.printed[id] {
		experimentState.printed[id] = true
		fmt.Printf("\n%s\n", out.String())
	}
	experimentState.mu.Unlock()
	b.ReportMetric(float64(r.Runs()), "total_sims")
}

func BenchmarkTable1_Config(b *testing.B)           { runExperiment(b, "table1") }
func BenchmarkTable2_Workloads(b *testing.B)        { runExperiment(b, "table2") }
func BenchmarkFig4_Performance(b *testing.B)        { runExperiment(b, "fig4") }
func BenchmarkFig5_Traffic(b *testing.B)            { runExperiment(b, "fig5") }
func BenchmarkFig6_RedundancyCoverage(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig7_ReconstructionUse(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig8_Sensitivity(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkFig9_Ablation(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkFig10_Energy(b *testing.B)            { runExperiment(b, "fig10") }
func BenchmarkFig11_Geometry(b *testing.B)          { runExperiment(b, "fig11") }
func BenchmarkFig12_Writes(b *testing.B)            { runExperiment(b, "fig12") }
func BenchmarkTable3_Reliability(b *testing.B)      { runExperiment(b, "table3") }
func BenchmarkFig13_Replacement(b *testing.B)       { runExperiment(b, "fig13") }
func BenchmarkFig14_SeedStability(b *testing.B)     { runExperiment(b, "fig14") }
func BenchmarkFig15_ErrorStorms(b *testing.B)       { runExperiment(b, "fig15") }
func BenchmarkFig16_Headroom(b *testing.B)          { runExperiment(b, "fig16") }
