// Package cachecraft is the public API of the CacheCraft reproduction: a
// trace-driven GPU memory-hierarchy simulator for studying memory
// protection (inline ECC) schemes, the CacheCraft reconstructed-caching
// controller itself, and the bit-level ECC codecs the protection story
// rests on.
//
// # Quick start
//
//	cfg := cachecraft.DefaultConfig()
//	res, err := cachecraft.Run(cfg, "stream", "cachecraft")
//	if err != nil { ... }
//	fmt.Println(res.IPC, res.DRAMBytes["redundancy"])
//
// Run simulates one (workload, protection scheme) pair on the configured
// GPU and returns timing and traffic results. Workloads() and Schemes()
// enumerate the available choices. For ablations, build a custom
// CacheCraft with Options and RunCacheCraft.
//
// The underlying subsystem packages live in internal/; this package is the
// stable surface.
package cachecraft

import (
	"context"

	"cachecraft/internal/bench"
	"cachecraft/internal/config"
	"cachecraft/internal/core"
	"cachecraft/internal/gpu"
	"cachecraft/internal/layout"
	"cachecraft/internal/obs"
	"cachecraft/internal/schemes"
	"cachecraft/internal/store"
	"cachecraft/internal/trace"
	"cachecraft/internal/version"
)

// Config is the simulated GPU configuration (Table 1 of the evaluation).
type Config = config.GPU

// Result is the outcome of one simulation run: cycles, instructions, IPC,
// and DRAM traffic broken down by class.
type Result = gpu.Result

// Options configures the CacheCraft controller's four mechanisms
// (reconstruction, redundancy cache, predictor, write buffer).
type Options = core.Options

// Geometry describes the inline-ECC protection granularity.
type Geometry = layout.Geometry

// DefaultConfig returns the evaluation's baseline GPU configuration.
func DefaultConfig() Config { return config.Default() }

// QuickConfig returns a scaled-down configuration suitable for tests and
// smoke runs; absolute numbers are not meaningful at this scale.
func QuickConfig() Config { return config.Quick() }

// DefaultOptions returns the full CacheCraft configuration (all four
// mechanisms enabled).
func DefaultOptions() Options { return core.DefaultOptions() }

// Version reports the simulator identity (module and simulation-semantics
// revision, e.g. "cachecraft@r4"). It is baked into every persistent-store
// fingerprint, so results produced by an older simulator revision are
// never served as cache hits.
func Version() string { return version.String() }

// Fingerprint returns the canonical content address of one simulation:
// a hex SHA-256 over (Version(), the full configuration, workload,
// scheme). It is the key under which cachecraft-sweep -store and
// cachecraft-serve persist results, and the {fingerprint} path segment of
// the service's GET /v1/results endpoint. See docs/MODEL.md for the
// canonicalization rules.
func Fingerprint(cfg Config, workload, scheme string) string {
	return store.Fingerprint(cfg, workload, scheme)
}

// Workloads lists the available synthetic workloads.
func Workloads() []string { return trace.Names() }

// Schemes lists the protection schemes in evaluation order: none,
// inline-naive, ecc-cache, cachecraft.
func Schemes() []string { return schemes.All() }

// Run simulates the named workload under the named protection scheme.
func Run(cfg Config, workload, scheme string) (Result, error) {
	factory, err := schemes.ByName(scheme)
	if err != nil {
		return Result{}, err
	}
	m, err := gpu.New(cfg, workload, factory)
	if err != nil {
		return Result{}, err
	}
	res, err := m.Run()
	if err != nil {
		return Result{}, err
	}
	res.Workload = workload
	res.Scheme = scheme
	return res, nil
}

// RunAudited is Run with the invariant-audit layer armed: the simulation
// executes under internal/audit's checker, which verifies byte
// conservation, MSHR pairing, tick monotonicity, DRAM scheduling
// legality, and full end-of-sim drain as it runs. Auditing changes no
// simulated timing — a clean audited run returns exactly Run's result —
// but a run that violates an invariant fails with an error naming the
// first violated rule. See docs/MODEL.md ("Invariants & auditing").
func RunAudited(cfg Config, workload, scheme string) (Result, error) {
	factory, err := schemes.ByName(scheme)
	if err != nil {
		return Result{}, err
	}
	m, err := gpu.New(cfg, workload, factory)
	if err != nil {
		return Result{}, err
	}
	m.EnableAudit()
	res, err := m.Run()
	if err != nil {
		return Result{}, err
	}
	res.Workload = workload
	res.Scheme = scheme
	return res, nil
}

// Probes is a simulation's time-resolved probe set: cycle-sampled series
// (SM issue rate, DRAM bandwidth by traffic class, per-bank L2 hit rate,
// reconstructed-line fill and hit rates, join latency, and more) taken
// at a fixed sampling window. Export it through a Timeline; see
// docs/OBSERVABILITY.md for the track catalog.
type Probes = obs.Probes

// Timeline collects probe sets (and tracer spans) for export as NDJSON
// or Chrome trace-event JSON loadable in Perfetto.
type Timeline = obs.Timeline

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return obs.NewTimeline() }

// RunProbed is Run with the time-resolved probe layer attached, sampling
// every probe track at the given window (in cycles; 0 uses a 1-cycle
// window). With audited set, the invariant-audit layer is armed as well —
// the two observers use separate hooks and compose. Probes never
// schedule simulator events, so the returned Result is identical to
// Run's; the returned probe set is already flushed and ready for
// Timeline.AddCell or Snapshot.
func RunProbed(cfg Config, workload, scheme string, window uint64, audited bool) (Result, *Probes, error) {
	factory, err := schemes.ByName(scheme)
	if err != nil {
		return Result{}, nil, err
	}
	m, err := gpu.New(cfg, workload, factory)
	if err != nil {
		return Result{}, nil, err
	}
	p := obs.NewProbes(window)
	m.SetProbes(p)
	if audited {
		m.EnableAudit()
	}
	res, err := m.Run()
	if err != nil {
		return Result{}, nil, err
	}
	p.Flush()
	res.Workload = workload
	res.Scheme = scheme
	return res, p, nil
}

// RunAll simulates every (workload, scheme) pair in the cross product,
// fanning the independent simulations out across a worker pool bounded by
// runtime.NumCPU(). Each simulation is deterministic (workload generation
// is seeded per (seed, SM) with no shared mutable state), so the returned
// results are byte-identical to running the pairs serially. Results come
// back in deterministic order: workloads major, schemes minor. The first
// failure cancels outstanding work and is returned.
func RunAll(cfg Config, workloads, schemes []string) ([]Result, error) {
	r := bench.NewRunner(cfg)
	specs := make([]bench.Spec, 0, len(workloads)*len(schemes))
	for _, wl := range workloads {
		for _, s := range schemes {
			specs = append(specs, bench.Spec{CfgID: "base", Workload: wl, Variant: s})
		}
	}
	if err := r.Prefetch(context.Background(), specs); err != nil {
		return nil, err
	}
	out := make([]Result, len(specs))
	for i, s := range specs {
		res, err := r.Result(s)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// RunCacheCraft simulates the workload under a CacheCraft controller built
// with explicit options (for ablation and sensitivity studies).
func RunCacheCraft(cfg Config, workload string, opt Options) (Result, error) {
	m, err := gpu.New(cfg, workload, schemes.CacheCraftWith(opt))
	if err != nil {
		return Result{}, err
	}
	res, err := m.Run()
	if err != nil {
		return Result{}, err
	}
	res.Workload = workload
	res.Scheme = "cachecraft"
	return res, nil
}
