package ecc

import "fmt"

// Chipkill is a device-aware Reed–Solomon organization: the codeword's
// symbols are striped round-robin across DRAM devices, so one device owns
// n/devices symbols. A whole-device failure is then a burst of symbol
// errors at *known* positions once the failing device is identified, and
// the code's erasure capability (n-k erasures) recovers it even when the
// error count exceeds the blind correction radius t=(n-k)/2.
//
// With the repository default RS(36,32) over 9 devices, each device owns 4
// symbols: a dead device is 4 erasures — exactly the code's budget — so
// full chipkill-correct costs no extra redundancy beyond the 1/8 ratio,
// but only once the device is identified (e.g. by scrubbing or repeated
// detections). Blind decoding of a dead device is only guaranteed to
// *detect*.
type Chipkill struct {
	rs      *RS
	devices int
}

// NewChipkill builds a chipkill organization: sectorBytes data symbols,
// paritySyms parity symbols, striped over devices. Every device must own
// at most n-k symbols (else a dead device exceeds the erasure budget) and
// the stripe must divide evenly.
func NewChipkill(sectorBytes, paritySyms, devices int) (*Chipkill, error) {
	rs, err := NewRS(sectorBytes+paritySyms, sectorBytes)
	if err != nil {
		return nil, err
	}
	n := rs.N()
	if devices <= 0 || n%devices != 0 {
		return nil, fmt.Errorf("ecc: %d devices do not evenly stripe %d symbols", devices, n)
	}
	perDevice := n / devices
	if perDevice > rs.ParitySymbols() {
		return nil, fmt.Errorf("ecc: device owns %d symbols but the code can only erase %d",
			perDevice, rs.ParitySymbols())
	}
	return &Chipkill{rs: rs, devices: devices}, nil
}

// Name identifies the organization, e.g. "chipkill-rs-36/32x9".
func (c *Chipkill) Name() string {
	return fmt.Sprintf("chipkill-rs-%d/%d x%d", c.rs.N(), c.rs.K(), c.devices)
}

// SectorBytes reports the protected data size.
func (c *Chipkill) SectorBytes() int { return c.rs.K() }

// RedundancyBytes reports parity bytes per sector.
func (c *Chipkill) RedundancyBytes() int { return c.rs.ParitySymbols() }

// Devices reports the stripe width.
func (c *Chipkill) Devices() int { return c.devices }

// DeviceSymbols lists the codeword positions owned by a device.
func (c *Chipkill) DeviceSymbols(dev int) []int {
	if dev < 0 || dev >= c.devices {
		return nil
	}
	out := make([]int, 0, c.rs.N()/c.devices)
	for p := dev; p < c.rs.N(); p += c.devices {
		out = append(out, p)
	}
	return out
}

// Encode computes the parity for a sector.
func (c *Chipkill) Encode(sector []byte) []byte { return c.rs.Encode(sector) }

// EncodeInto appends the sector's parity bytes to dst and returns the
// extended slice; it does not allocate when dst has capacity.
func (c *Chipkill) EncodeInto(dst, sector []byte) []byte { return c.rs.EncodeInto(dst, sector) }

// Decode is blind decoding (no failed-device knowledge): corrects up to
// t random symbol errors.
func (c *Chipkill) Decode(sector, redundancy []byte) Result {
	return c.rs.Decode(sector, redundancy)
}

// DecodeInto is Decode under the allocation-free-decode naming shared by
// all sector codecs; the no-error path performs no allocation.
func (c *Chipkill) DecodeInto(sector, redundancy []byte) Result {
	return c.rs.Decode(sector, redundancy)
}

// DecodeWithDeadDevice decodes knowing device dev has failed: its symbol
// positions are treated as erasures, which recovers a whole-device loss
// (plus any budget left over for additional errors).
func (c *Chipkill) DecodeWithDeadDevice(sector, redundancy []byte, dev int) Result {
	positions := c.DeviceSymbols(dev)
	if positions == nil {
		return Detected
	}
	res, _ := c.rs.DecodeErasures(sector, redundancy, positions)
	return res
}

var _ SectorCodec = (*Chipkill)(nil)
