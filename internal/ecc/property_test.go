package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for every RS geometry in a sweep, any error pattern within the
// correction radius decodes back to the original word.
func TestRSPropertyCorrectWithinRadius(t *testing.T) {
	geometries := [][2]int{
		{18, 16}, {34, 32}, {36, 32}, {40, 32}, {72, 64}, {255, 239},
	}
	rng := rand.New(rand.NewSource(77))
	for _, g := range geometries {
		rs, err := NewRS(g[0], g[1])
		if err != nil {
			t.Fatal(err)
		}
		tCap := rs.T()
		for trial := 0; trial < 100; trial++ {
			data := make([]byte, rs.K())
			rng.Read(data)
			parity := rs.Encode(data)
			d := append([]byte(nil), data...)
			p := append([]byte(nil), parity...)
			nErr := 0
			if tCap > 0 {
				nErr = rng.Intn(tCap + 1)
			}
			for _, pos := range rng.Perm(rs.N())[:nErr] {
				mag := byte(rng.Intn(255) + 1)
				if pos < rs.K() {
					d[pos] ^= mag
				} else {
					p[pos-rs.K()] ^= mag
				}
			}
			res := rs.Decode(d, p)
			if nErr == 0 && res != OK {
				t.Fatalf("RS(%d,%d): clean word decoded %v", g[0], g[1], res)
			}
			if nErr > 0 && res != Corrected {
				t.Fatalf("RS(%d,%d): %d errors decoded %v", g[0], g[1], nErr, res)
			}
			if !bytes.Equal(d, data) || !bytes.Equal(p, parity) {
				t.Fatalf("RS(%d,%d): word not restored", g[0], g[1])
			}
		}
	}
}

// Property: erasures up to the full budget always recover, for several
// geometries.
func TestRSPropertyErasuresWithinBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for _, g := range [][2]int{{36, 32}, {40, 32}, {72, 64}} {
		rs, err := NewRS(g[0], g[1])
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 100; trial++ {
			data := make([]byte, rs.K())
			rng.Read(data)
			parity := rs.Encode(data)
			d := append([]byte(nil), data...)
			p := append([]byte(nil), parity...)
			s := rng.Intn(rs.ParitySymbols() + 1)
			positions := rng.Perm(rs.N())[:s]
			for _, pos := range positions {
				mag := byte(rng.Intn(256)) // may be zero: an intact "erasure"
				if pos < rs.K() {
					d[pos] ^= mag
				} else {
					p[pos-rs.K()] ^= mag
				}
			}
			res, _ := rs.DecodeErasures(d, p, positions)
			if res == Detected {
				t.Fatalf("RS(%d,%d): %d erasures rejected", g[0], g[1], s)
			}
			if !bytes.Equal(d, data) || !bytes.Equal(p, parity) {
				t.Fatalf("RS(%d,%d): erasure decode wrong", g[0], g[1])
			}
		}
	}
}

// Property: SEC-DED across a width sweep corrects every single-bit error
// and detects every double (sampled).
func TestSECDEDPropertyWidthSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, bits := range []int{8, 16, 24, 32, 48, 64, 96, 128} {
		c := NewSECDED(bits)
		data := make([]byte, bits/8)
		rng.Read(data)
		chk := c.Encode(data)
		total := bits + c.CheckBits()
		for b1 := 0; b1 < total; b1++ {
			d := append([]byte(nil), data...)
			k := append([]byte(nil), chk...)
			flipAt(d, k, bits, b1)
			if res := c.Decode(d, k); res != Corrected {
				t.Fatalf("width %d: bit %d → %v", bits, b1, res)
			}
			if !bytes.Equal(d, data) || !bytes.Equal(k, chk) {
				t.Fatalf("width %d: bit %d not restored", bits, b1)
			}
		}
		for trial := 0; trial < 200; trial++ {
			b1, b2 := rng.Intn(total), rng.Intn(total)
			if b1 == b2 {
				continue
			}
			d := append([]byte(nil), data...)
			k := append([]byte(nil), chk...)
			flipAt(d, k, bits, b1)
			flipAt(d, k, bits, b2)
			if res := c.Decode(d, k); res != Detected {
				t.Fatalf("width %d: bits (%d,%d) → %v", bits, b1, b2, res)
			}
		}
	}
}

func flipAt(data, chk []byte, dataBits, bit int) {
	if bit < dataBits {
		flipBit(data, bit)
	} else {
		flipBit(chk, bit-dataBits)
	}
}

// Property: the tagged codec's alias-freedom holds for arbitrary data and
// arbitrary wrong tags (quick-checked).
func TestTaggedPropertyAliasFree(t *testing.T) {
	tc, err := NewTagged(32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data [32]byte, stored, asserted byte) bool {
		parity := tc.Encode(data[:], []byte{stored})
		res := tc.Check(data[:], parity, []byte{asserted})
		if stored == asserted {
			return res == TagOK
		}
		return res == TagMismatch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
