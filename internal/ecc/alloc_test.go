package ecc

import (
	"math/rand"
	"testing"
)

// TestEncodeDecodeIntoZeroAllocs pins the allocation-free codec contract:
// EncodeInto with a pre-sized destination and DecodeInto on a clean
// codeword must not allocate, for every sector codec.
func TestEncodeDecodeIntoZeroAllocs(t *testing.T) {
	secded, err := NewSECDEDSector(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	secdaec, err := NewSECDAECSector(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRSSector(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	chipkill, err := NewChipkill(32, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range []SectorCodec{secded, secdaec, rs, chipkill} {
		t.Run(codec.Name(), func(t *testing.T) {
			sector := make([]byte, codec.SectorBytes())
			rand.New(rand.NewSource(7)).Read(sector)
			red := codec.Encode(sector)
			dst := make([]byte, 0, codec.RedundancyBytes())
			allocs := testing.AllocsPerRun(200, func() {
				dst = codec.EncodeInto(dst[:0], sector)
				if res := codec.DecodeInto(sector, red); res != OK {
					t.Fatalf("clean decode = %v", res)
				}
			})
			if allocs != 0 {
				t.Fatalf("EncodeInto+DecodeInto allocated %.1f times per op, want 0", allocs)
			}
		})
	}
}

// TestTaggedEncodeIntoZeroAllocs covers the tagged codec, whose encode
// feeds the virtual tag++data word segment-wise instead of concatenating.
func TestTaggedEncodeIntoZeroAllocs(t *testing.T) {
	codec, err := NewTagged(32, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32)
	rand.New(rand.NewSource(7)).Read(data)
	tag := []byte{0xA5, 0x3C}
	want := codec.Encode(data, tag)
	dst := make([]byte, 0, codec.ParityBytes())
	allocs := testing.AllocsPerRun(200, func() {
		dst = codec.EncodeInto(dst[:0], data, tag)
	})
	if allocs != 0 {
		t.Fatalf("Tagged.EncodeInto allocated %.1f times per op, want 0", allocs)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatal("EncodeInto parity differs from Encode")
		}
	}
}

// TestEncodeIntoMatchesEncode cross-checks the append-style API against
// the allocating wrapper on random sectors, including appending after
// existing bytes.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	secded, _ := NewSECDEDSector(32, 64)
	secdaec, _ := NewSECDAECSector(32, 64)
	rs, _ := NewRSSector(32, 4)
	chipkill, _ := NewChipkill(32, 4, 9)
	rng := rand.New(rand.NewSource(11))
	for _, codec := range []SectorCodec{secded, secdaec, rs, chipkill} {
		for trial := 0; trial < 50; trial++ {
			sector := make([]byte, codec.SectorBytes())
			rng.Read(sector)
			want := codec.Encode(sector)
			prefix := []byte{0xEE, 0xFF}
			got := codec.EncodeInto(append([]byte(nil), prefix...), sector)
			if len(got) != len(prefix)+len(want) {
				t.Fatalf("%s: EncodeInto length %d, want %d", codec.Name(), len(got), len(prefix)+len(want))
			}
			for i := range prefix {
				if got[i] != prefix[i] {
					t.Fatalf("%s: EncodeInto clobbered existing bytes", codec.Name())
				}
			}
			for i := range want {
				if got[len(prefix)+i] != want[i] {
					t.Fatalf("%s: trial %d redundancy byte %d differs", codec.Name(), trial, i)
				}
			}
		}
	}
}
