package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSECDEDGeometry72_64(t *testing.T) {
	c := NewSECDED(64)
	if c.DataBits() != 64 {
		t.Fatalf("data bits = %d", c.DataBits())
	}
	if c.CheckBits() != 8 {
		t.Fatalf("check bits = %d, want 8 (the classic 72,64 code)", c.CheckBits())
	}
	if c.CheckBytes() != 1 {
		t.Fatalf("check bytes = %d", c.CheckBytes())
	}
}

func TestSECDEDRoundTrip(t *testing.T) {
	c := NewSECDED(64)
	f := func(data [8]byte) bool {
		chk := c.Encode(data[:])
		d := data
		return c.Decode(d[:], chk) == OK && d == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSECDEDCorrectsEverySingleBitError(t *testing.T) {
	c := NewSECDED(64)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 8)
	rng.Read(data)
	chk := c.Encode(data)

	// Every data-bit flip.
	for bit := 0; bit < 64; bit++ {
		d := append([]byte(nil), data...)
		k := append([]byte(nil), chk...)
		flipBit(d, bit)
		if res := c.Decode(d, k); res != Corrected {
			t.Fatalf("data bit %d: result %v, want corrected", bit, res)
		}
		if !bytes.Equal(d, data) {
			t.Fatalf("data bit %d: not restored", bit)
		}
	}
	// Every check-bit flip.
	for bit := 0; bit < c.CheckBits(); bit++ {
		d := append([]byte(nil), data...)
		k := append([]byte(nil), chk...)
		flipBit(k, bit)
		if res := c.Decode(d, k); res != Corrected {
			t.Fatalf("check bit %d: result %v, want corrected", bit, res)
		}
		if !bytes.Equal(d, data) || !bytes.Equal(k, chk) {
			t.Fatalf("check bit %d: not restored", bit)
		}
	}
}

func TestSECDEDDetectsEveryDoubleBitError(t *testing.T) {
	c := NewSECDED(64)
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 8)
	rng.Read(data)
	chk := c.Encode(data)
	total := 64 + c.CheckBits()

	flip := func(d, k []byte, bit int) {
		if bit < 64 {
			flipBit(d, bit)
		} else {
			flipBit(k, bit-64)
		}
	}
	for b1 := 0; b1 < total; b1++ {
		for b2 := b1 + 1; b2 < total; b2++ {
			d := append([]byte(nil), data...)
			k := append([]byte(nil), chk...)
			flip(d, k, b1)
			flip(d, k, b2)
			if res := c.Decode(d, k); res != Detected {
				t.Fatalf("bits (%d,%d): result %v, want detected", b1, b2, res)
			}
		}
	}
}

func TestSECDEDNonStandardWidths(t *testing.T) {
	for _, bits := range []int{8, 16, 32, 128} {
		c := NewSECDED(bits)
		data := make([]byte, bits/8)
		for i := range data {
			data[i] = byte(i*37 + 1)
		}
		chk := c.Encode(data)
		if res := c.Decode(data, chk); res != OK {
			t.Fatalf("width %d: clean decode = %v", bits, res)
		}
		// Single-bit correction across widths.
		for bit := 0; bit < bits; bit += 7 {
			d := append([]byte(nil), data...)
			k := append([]byte(nil), chk...)
			flipBit(d, bit)
			if res := c.Decode(d, k); res != Corrected {
				t.Fatalf("width %d bit %d: %v", bits, bit, res)
			}
		}
	}
}

func TestSECDEDInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSECDED(0) must panic")
		}
	}()
	NewSECDED(0)
}

func TestSECDEDSectorGeometry(t *testing.T) {
	s, err := NewSECDEDSector(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s.SectorBytes() != 32 || s.RedundancyBytes() != 4 {
		t.Fatalf("geometry %d/%d, want 32/4", s.SectorBytes(), s.RedundancyBytes())
	}
	if RedundancyRatio(s) != 0.125 {
		t.Fatalf("ratio = %v, want 1/8", RedundancyRatio(s))
	}
	if s.Name() != "secded-72/64" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestSECDEDSectorRejectsBadGeometry(t *testing.T) {
	if _, err := NewSECDEDSector(32, 60); err == nil {
		t.Fatal("non-byte-aligned word width must be rejected")
	}
	if _, err := NewSECDEDSector(32, 72); err == nil {
		t.Fatal("word width not dividing the sector must be rejected")
	}
}

func TestSECDEDSectorRoundTripAndCorrection(t *testing.T) {
	s, err := NewSECDEDSector(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	sector := make([]byte, 32)
	rng.Read(sector)
	red := s.Encode(sector)
	orig := append([]byte(nil), sector...)

	if res := s.Decode(sector, red); res != OK {
		t.Fatalf("clean decode = %v", res)
	}
	// One bit error in each word simultaneously is still correctable
	// because the words are independent codewords.
	for w := 0; w < 4; w++ {
		flipBit(sector, w*64+w*3)
	}
	if res := s.Decode(sector, red); res != Corrected {
		t.Fatalf("per-word errors: %v", res)
	}
	if !bytes.Equal(sector, orig) {
		t.Fatal("sector not restored")
	}
	// Two bit errors in one word are detected.
	flipBit(sector, 0)
	flipBit(sector, 1)
	if res := s.Decode(sector, red); res != Detected {
		t.Fatalf("double error: %v", res)
	}
}

func TestSECDEDSectorWrongSizePanics(t *testing.T) {
	s, _ := NewSECDEDSector(32, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong sector size must panic")
		}
	}()
	s.Encode(make([]byte, 16))
}

func TestBitHelpers(t *testing.T) {
	b := make([]byte, 2)
	setBit(b, 3, 1)
	if getBit(b, 3) != 1 {
		t.Fatal("setBit/getBit mismatch")
	}
	setBit(b, 3, 0)
	if getBit(b, 3) != 0 {
		t.Fatal("clearing via setBit failed")
	}
	flipBit(b, 11)
	if getBit(b, 11) != 1 || b[1] != 0x08 {
		t.Fatalf("flipBit wrong: %v", b)
	}
}
