package ecc

import (
	"bytes"
	"math/rand"
	"testing"
)

func mustTagged(t *testing.T, dataLen, parity, tag int) *Tagged {
	t.Helper()
	tc, err := NewTagged(dataLen, parity, tag)
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

func TestTaggedRejectsOversizedTag(t *testing.T) {
	// 4 parity symbols correct at most 2 errors; a 3-symbol tag could not
	// be alias-free.
	if _, err := NewTagged(32, 4, 3); err == nil {
		t.Fatal("tagSyms > parity/2 must be rejected")
	}
	if _, err := NewTagged(32, 4, 0); err == nil {
		t.Fatal("zero tag symbols must be rejected")
	}
}

func TestTaggedGeometry(t *testing.T) {
	tc := mustTagged(t, 32, 4, 2)
	if tc.DataBytes() != 32 || tc.ParityBytes() != 4 || tc.TagBytes() != 2 {
		t.Fatalf("geometry %d/%d/%d", tc.DataBytes(), tc.ParityBytes(), tc.TagBytes())
	}
	if tc.Name() != "aft-rs-38/32+t2" {
		t.Fatalf("name = %q", tc.Name())
	}
}

func TestTaggedMatchingTagClean(t *testing.T) {
	tc := mustTagged(t, 32, 4, 2)
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i)
	}
	tag := []byte{0xaa, 0x55}
	parity := tc.Encode(data, tag)
	if res := tc.Check(data, parity, tag); res != TagOK {
		t.Fatalf("check = %v, want tag-ok", res)
	}
}

func TestTaggedEveryMismatchedTagIsDetected(t *testing.T) {
	// Alias-freedom over an exhaustive 1-byte tag space: every wrong tag
	// must be flagged as TagMismatch (never TagOK, never silently
	// "corrected" into the data).
	tc := mustTagged(t, 32, 4, 1)
	rng := rand.New(rand.NewSource(20))
	data := make([]byte, 32)
	rng.Read(data)
	orig := append([]byte(nil), data...)
	storedTag := []byte{0x3c}
	parity := tc.Encode(data, storedTag)

	for wrong := 0; wrong < 256; wrong++ {
		if byte(wrong) == storedTag[0] {
			continue
		}
		d := append([]byte(nil), data...)
		p := append([]byte(nil), parity...)
		res := tc.Check(d, p, []byte{byte(wrong)})
		if res != TagMismatch {
			t.Fatalf("tag %#x: %v, want tag-mismatch", wrong, res)
		}
		if !bytes.Equal(d, orig) || !bytes.Equal(p, parity) {
			t.Fatalf("tag %#x: buffers mutated on mismatch", wrong)
		}
	}
}

func TestTaggedTwoSymbolTagMismatch(t *testing.T) {
	tc := mustTagged(t, 32, 4, 2)
	rng := rand.New(rand.NewSource(21))
	data := make([]byte, 32)
	rng.Read(data)
	tag := []byte{1, 2}
	parity := tc.Encode(data, tag)

	for trial := 0; trial < 300; trial++ {
		wrong := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		if bytes.Equal(wrong, tag) {
			continue
		}
		res := tc.Check(data, parity, wrong)
		if res != TagMismatch {
			t.Fatalf("wrong tag %v: %v", wrong, res)
		}
	}
}

func TestTaggedCorrectsDataErrorUnderMatchingTag(t *testing.T) {
	tc := mustTagged(t, 32, 4, 1) // t=2: one data error + valid tag decodes
	rng := rand.New(rand.NewSource(22))
	data := make([]byte, 32)
	rng.Read(data)
	orig := append([]byte(nil), data...)
	tag := []byte{0x7}
	parity := tc.Encode(data, tag)

	for pos := 0; pos < 32; pos++ {
		d := append([]byte(nil), data...)
		p := append([]byte(nil), parity...)
		d[pos] ^= 0x81
		res := tc.Check(d, p, tag)
		if res != TagOKCorrected {
			t.Fatalf("pos %d: %v", pos, res)
		}
		if !bytes.Equal(d, orig) {
			t.Fatalf("pos %d: data not restored", pos)
		}
	}
}

func TestTaggedParityErrorUnderMatchingTag(t *testing.T) {
	tc := mustTagged(t, 32, 4, 1)
	data := make([]byte, 32)
	tag := []byte{0x9}
	parity := tc.Encode(data, tag)
	p := append([]byte(nil), parity...)
	p[2] ^= 0x10
	if res := tc.Check(data, p, tag); res != TagOKCorrected {
		t.Fatalf("parity error: %v", res)
	}
	if !bytes.Equal(p, parity) {
		t.Fatal("parity not restored")
	}
}

func TestTaggedMismatchPlusDataErrorNotSilent(t *testing.T) {
	// A wrong tag (1 symbol) plus a data error (1 symbol) = 2 symbol
	// errors, within t=2: the decoder locates both and must classify as
	// mismatch because one location is the tag position.
	tc := mustTagged(t, 32, 4, 1)
	rng := rand.New(rand.NewSource(23))
	data := make([]byte, 32)
	rng.Read(data)
	tag := []byte{0x5}
	parity := tc.Encode(data, tag)

	for trial := 0; trial < 200; trial++ {
		d := append([]byte(nil), data...)
		p := append([]byte(nil), parity...)
		d[rng.Intn(32)] ^= byte(rng.Intn(255) + 1)
		res := tc.Check(d, p, []byte{byte(tag[0] ^ byte(rng.Intn(255)+1))})
		if res != TagMismatch && res != TagUncorrectable {
			t.Fatalf("trial %d: %v — a safety violation leaked through", trial, res)
		}
	}
}

func TestTaggedUncorrectable(t *testing.T) {
	tc := mustTagged(t, 32, 4, 1)
	rng := rand.New(rand.NewSource(24))
	data := make([]byte, 32)
	rng.Read(data)
	tag := []byte{0xe}
	parity := tc.Encode(data, tag)

	silent := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		d := append([]byte(nil), data...)
		p := append([]byte(nil), parity...)
		for _, pos := range rng.Perm(32)[:4] { // 4 errors > t=2
			d[pos] ^= byte(rng.Intn(255) + 1)
		}
		res := tc.Check(d, p, tag)
		if res == TagOK {
			silent++
		}
	}
	if silent != 0 {
		t.Fatalf("%d/%d quadruple errors decoded as clean", silent, trials)
	}
}

func TestTaggedWrongBufferSizesPanic(t *testing.T) {
	tc := mustTagged(t, 32, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("short data must panic")
		}
	}()
	tc.Encode(make([]byte, 5), []byte{1})
}
