package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustRS(t *testing.T, n, k int) *RS {
	t.Helper()
	rs, err := NewRS(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestRSRejectsBadParameters(t *testing.T) {
	for _, nk := range [][2]int{{256, 32}, {10, 10}, {10, 12}, {4, 0}} {
		if _, err := NewRS(nk[0], nk[1]); err == nil {
			t.Fatalf("RS(%d,%d) must be rejected", nk[0], nk[1])
		}
	}
}

func TestRSCleanRoundTrip(t *testing.T) {
	rs := mustRS(t, 36, 32)
	f := func(data [32]byte) bool {
		parity := rs.Encode(data[:])
		d := data
		return rs.Decode(d[:], parity) == OK && d == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRSSyndromesZeroForCodeword(t *testing.T) {
	rs := mustRS(t, 36, 32)
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i * 7)
	}
	parity := rs.Encode(data)
	if _, any := rs.Syndromes(data, parity); any {
		t.Fatal("valid codeword has nonzero syndrome")
	}
}

func TestRSCorrectsSingleSymbolEverywhere(t *testing.T) {
	rs := mustRS(t, 36, 32)
	rng := rand.New(rand.NewSource(10))
	data := make([]byte, 32)
	rng.Read(data)
	parity := rs.Encode(data)

	for pos := 0; pos < 36; pos++ {
		for _, mag := range []byte{1, 0x80, 0xff} {
			d := append([]byte(nil), data...)
			p := append([]byte(nil), parity...)
			if pos < 32 {
				d[pos] ^= mag
			} else {
				p[pos-32] ^= mag
			}
			if res := rs.Decode(d, p); res != Corrected {
				t.Fatalf("pos %d mag %#x: %v", pos, mag, res)
			}
			if !bytes.Equal(d, data) || !bytes.Equal(p, parity) {
				t.Fatalf("pos %d mag %#x: not restored", pos, mag)
			}
		}
	}
}

func TestRSCorrectsDoubleSymbolErrors(t *testing.T) {
	rs := mustRS(t, 36, 32) // t = 2
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 32)
	rng.Read(data)
	parity := rs.Encode(data)

	for trial := 0; trial < 500; trial++ {
		p1 := rng.Intn(36)
		p2 := rng.Intn(36)
		for p2 == p1 {
			p2 = rng.Intn(36)
		}
		m1 := byte(rng.Intn(255) + 1)
		m2 := byte(rng.Intn(255) + 1)
		d := append([]byte(nil), data...)
		p := append([]byte(nil), parity...)
		corrupt := func(pos int, mag byte) {
			if pos < 32 {
				d[pos] ^= mag
			} else {
				p[pos-32] ^= mag
			}
		}
		corrupt(p1, m1)
		corrupt(p2, m2)
		if res := rs.Decode(d, p); res != Corrected {
			t.Fatalf("trial %d (%d,%d): %v", trial, p1, p2, res)
		}
		if !bytes.Equal(d, data) || !bytes.Equal(p, parity) {
			t.Fatalf("trial %d: not restored", trial)
		}
	}
}

func TestRSDetectsBeyondCapability(t *testing.T) {
	rs := mustRS(t, 36, 32) // t = 2; 3 random errors must never be "corrected" silently
	rng := rand.New(rand.NewSource(12))
	data := make([]byte, 32)
	rng.Read(data)
	parity := rs.Encode(data)

	detected, miscorrected := 0, 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		d := append([]byte(nil), data...)
		p := append([]byte(nil), parity...)
		positions := rng.Perm(36)[:3]
		for _, pos := range positions {
			mag := byte(rng.Intn(255) + 1)
			if pos < 32 {
				d[pos] ^= mag
			} else {
				p[pos-32] ^= mag
			}
		}
		res := rs.Decode(d, p)
		switch res {
		case Detected:
			detected++
		case Corrected:
			// A triple error may alias into a different valid codeword's
			// correction radius; the decode then "succeeds" but yields wrong
			// data. Count miscorrections; they must be rare but cannot be
			// zero for RS beyond distance.
			if !bytes.Equal(d, data) {
				miscorrected++
			}
		case OK:
			t.Fatalf("trial %d: triple error decoded as clean", trial)
		}
	}
	if detected < trials*9/10 {
		t.Fatalf("only %d/%d triple errors detected (miscorrected %d)", detected, trials, miscorrected)
	}
}

func TestRSErasuresOnly(t *testing.T) {
	rs := mustRS(t, 36, 32) // 4 parity: up to 4 erasures
	rng := rand.New(rand.NewSource(13))
	data := make([]byte, 32)
	rng.Read(data)
	parity := rs.Encode(data)

	for nerase := 1; nerase <= 4; nerase++ {
		d := append([]byte(nil), data...)
		p := append([]byte(nil), parity...)
		positions := rng.Perm(36)[:nerase]
		for _, pos := range positions {
			if pos < 32 {
				d[pos] ^= 0x5a
			} else {
				p[pos-32] ^= 0x5a
			}
		}
		res, fixed := rs.DecodeErasures(d, p, positions)
		if res != Corrected {
			t.Fatalf("%d erasures: %v", nerase, res)
		}
		if len(fixed) != nerase {
			t.Fatalf("%d erasures: corrected %d positions", nerase, len(fixed))
		}
		if !bytes.Equal(d, data) || !bytes.Equal(p, parity) {
			t.Fatalf("%d erasures: not restored", nerase)
		}
	}
}

func TestRSErasurePlusError(t *testing.T) {
	rs := mustRS(t, 36, 32) // 2e+s <= 4: one unknown error + two erasures
	rng := rand.New(rand.NewSource(14))
	data := make([]byte, 32)
	rng.Read(data)
	parity := rs.Encode(data)

	for trial := 0; trial < 200; trial++ {
		d := append([]byte(nil), data...)
		p := append([]byte(nil), parity...)
		perm := rng.Perm(36)
		erasures := perm[:2]
		errPos := perm[2]
		corrupt := func(pos int, mag byte) {
			if pos < 32 {
				d[pos] ^= mag
			} else {
				p[pos-32] ^= mag
			}
		}
		corrupt(erasures[0], byte(rng.Intn(255)+1))
		corrupt(erasures[1], byte(rng.Intn(255)+1))
		corrupt(errPos, byte(rng.Intn(255)+1))
		res, _ := rs.DecodeErasures(d, p, erasures)
		if res != Corrected {
			t.Fatalf("trial %d: %v", trial, res)
		}
		if !bytes.Equal(d, data) || !bytes.Equal(p, parity) {
			t.Fatalf("trial %d: not restored", trial)
		}
	}
}

func TestRSErasedButIntactPositions(t *testing.T) {
	// Erasure positions whose symbols are actually correct must decode
	// cleanly (magnitude zero) and not be reported as corrected.
	rs := mustRS(t, 36, 32)
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i)
	}
	parity := rs.Encode(data)
	d := append([]byte(nil), data...)
	p := append([]byte(nil), parity...)
	res, fixed := rs.DecodeErasures(d, p, []int{3, 7})
	if res != OK {
		t.Fatalf("result %v, want OK (clean word)", res)
	}
	if len(fixed) != 0 {
		t.Fatalf("clean erasure decode corrected %v", fixed)
	}
}

func TestRSTooManyErasures(t *testing.T) {
	rs := mustRS(t, 36, 32)
	data := make([]byte, 32)
	parity := rs.Encode(data)
	data[0] ^= 1
	res, _ := rs.DecodeErasures(data, parity, []int{0, 1, 2, 3, 4})
	if res != Detected {
		t.Fatalf("5 erasures with 4 parity: %v, want detected", res)
	}
}

func TestRSInvalidErasurePosition(t *testing.T) {
	rs := mustRS(t, 36, 32)
	data := make([]byte, 32)
	parity := rs.Encode(data)
	data[0] ^= 1
	if res, _ := rs.DecodeErasures(data, parity, []int{99}); res != Detected {
		t.Fatal("out-of-range erasure must be rejected as Detected")
	}
}

func TestRSSector(t *testing.T) {
	s, err := NewRSSector(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "rs-36/32" {
		t.Fatalf("name = %q", s.Name())
	}
	if s.SectorBytes() != 32 || s.RedundancyBytes() != 4 {
		t.Fatalf("geometry %d/%d", s.SectorBytes(), s.RedundancyBytes())
	}
	sector := make([]byte, 32)
	for i := range sector {
		sector[i] = byte(255 - i)
	}
	red := s.Encode(sector)
	sector[5] ^= 0xff
	if res := s.Decode(sector, red); res != Corrected {
		t.Fatalf("decode = %v", res)
	}
	if sector[5] != 255-5 {
		t.Fatal("sector not restored")
	}
}

func TestRSSector1of16Geometry(t *testing.T) {
	// RS(34,32): 2 parity bytes per 32B sector = 1/16 ratio, t=1.
	s, err := NewRSSector(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if RedundancyRatio(s) != 0.0625 {
		t.Fatalf("ratio = %v, want 1/16", RedundancyRatio(s))
	}
	sector := make([]byte, 32)
	red := s.Encode(sector)
	sector[0] ^= 0x42
	if res := s.Decode(sector, red); res != Corrected {
		t.Fatalf("single symbol under 1/16 code: %v", res)
	}
}

func TestRSLargeCode(t *testing.T) {
	// A whole-line code: RS(255, 223), t=16 — the CCSDS classic.
	rs := mustRS(t, 255, 223)
	rng := rand.New(rand.NewSource(15))
	data := make([]byte, 223)
	rng.Read(data)
	parity := rs.Encode(data)
	d := append([]byte(nil), data...)
	p := append([]byte(nil), parity...)
	for _, pos := range rng.Perm(255)[:16] {
		if pos < 223 {
			d[pos] ^= byte(rng.Intn(255) + 1)
		} else {
			p[pos-223] ^= byte(rng.Intn(255) + 1)
		}
	}
	if res := rs.Decode(d, p); res != Corrected {
		t.Fatalf("t=16 correction failed: %v", res)
	}
	if !bytes.Equal(d, data) {
		t.Fatal("large code not restored")
	}
}
