package ecc

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), the conventional choice for memory and storage Reed–Solomon
// codes. Log/antilog tables are built once at package init.

const gfPoly = 0x11d

var (
	gfExp [512]byte // antilog table, doubled to avoid a mod in gfMul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfAdd adds two field elements (XOR in characteristic 2).
func gfAdd(a, b byte) byte { return a ^ b }

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b; b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ecc: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a nonzero element.
func gfInv(a byte) byte {
	if a == 0 {
		panic("ecc: inverse of zero in GF(256)")
	}
	return gfExp[255-int(gfLog[a])]
}

// gfPow returns a**n for field element a.
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(gfLog[a]) * n) % 255
	if l < 0 {
		l += 255
	}
	return gfExp[l]
}

// gfAlpha returns alpha**n, the n-th power of the primitive element.
func gfAlpha(n int) byte {
	l := n % 255
	if l < 0 {
		l += 255
	}
	return gfExp[l]
}

// polyEval evaluates the polynomial p (coefficients in descending degree
// order: p[0] is the highest-degree term) at x using Horner's method.
func polyEval(p []byte, x byte) byte {
	var y byte
	for _, c := range p {
		y = gfMul(y, x) ^ c
	}
	return y
}

// polyMul multiplies two polynomials in descending-degree order.
func polyMul(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			out[i+j] ^= gfMul(ca, cb)
		}
	}
	return out
}
