package ecc

import (
	"testing"
	"testing/quick"
)

func TestGFTablesConsistent(t *testing.T) {
	for i := 1; i < 256; i++ {
		if gfExp[gfLog[byte(i)]] != byte(i) {
			t.Fatalf("exp(log(%d)) = %d", i, gfExp[gfLog[byte(i)]])
		}
	}
	// alpha^255 == 1.
	if gfExp[255] != gfExp[0] {
		t.Fatal("exp table does not wrap at 255")
	}
}

func TestGFMulProperties(t *testing.T) {
	mulComm := func(a, b byte) bool { return gfMul(a, b) == gfMul(b, a) }
	if err := quick.Check(mulComm, nil); err != nil {
		t.Fatal("multiplication not commutative:", err)
	}
	mulAssoc := func(a, b, c byte) bool {
		return gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}
	if err := quick.Check(mulAssoc, nil); err != nil {
		t.Fatal("multiplication not associative:", err)
	}
	distrib := func(a, b, c byte) bool {
		return gfMul(a, gfAdd(b, c)) == gfAdd(gfMul(a, b), gfMul(a, c))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Fatal("distributivity fails:", err)
	}
}

func TestGFIdentityAndZero(t *testing.T) {
	for i := 0; i < 256; i++ {
		b := byte(i)
		if gfMul(b, 1) != b {
			t.Fatalf("%d * 1 != %d", b, b)
		}
		if gfMul(b, 0) != 0 {
			t.Fatalf("%d * 0 != 0", b)
		}
	}
}

func TestGFInverse(t *testing.T) {
	for i := 1; i < 256; i++ {
		b := byte(i)
		if gfMul(b, gfInv(b)) != 1 {
			t.Fatalf("%d * inv(%d) != 1", b, b)
		}
	}
}

func TestGFInverseOfZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gfInv(0) must panic")
		}
	}()
	gfInv(0)
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gfDiv(x, 0) must panic")
		}
	}()
	gfDiv(3, 0)
}

func TestGFDiv(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return gfMul(gfDiv(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFPow(t *testing.T) {
	if gfPow(0, 0) != 1 {
		t.Fatal("x^0 must be 1 even for x=0 by convention")
	}
	if gfPow(0, 5) != 0 {
		t.Fatal("0^n must be 0 for n>0")
	}
	for i := 1; i < 20; i++ {
		want := byte(1)
		for j := 0; j < i; j++ {
			want = gfMul(want, 3)
		}
		if got := gfPow(3, i); got != want {
			t.Fatalf("3^%d = %d, want %d", i, got, want)
		}
	}
}

func TestGFAlphaPeriodicity(t *testing.T) {
	for n := -300; n < 600; n++ {
		if gfAlpha(n) != gfAlpha(n+255) {
			t.Fatalf("alpha^%d != alpha^%d", n, n+255)
		}
	}
	if gfAlpha(0) != 1 {
		t.Fatal("alpha^0 must be 1")
	}
}

func TestPolyEvalDescending(t *testing.T) {
	// p(x) = 2x^2 + 3x + 1 at x=1 → 2^3^1 = 0 (XOR in GF(2^8)).
	p := []byte{2, 3, 1}
	if got := polyEval(p, 1); got != 0 {
		t.Fatalf("eval = %d, want 0", got)
	}
	if got := polyEval(p, 0); got != 1 {
		t.Fatalf("eval at 0 = %d, want constant 1", got)
	}
}

func TestPolyMulMatchesEval(t *testing.T) {
	f := func(a, b [3]byte, x byte) bool {
		prod := polyMul(a[:], b[:])
		return polyEval(prod, x) == gfMul(polyEval(a[:], x), polyEval(b[:], x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolyAscHelpers(t *testing.T) {
	f := func(a, b [4]byte, x byte) bool {
		prod := polyMulAsc(a[:], b[:])
		return polyEvalAsc(prod, x) == gfMul(polyEvalAsc(a[:], x), polyEvalAsc(b[:], x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrimAsc(t *testing.T) {
	if got := trimAsc([]byte{1, 2, 0, 0}); len(got) != 2 {
		t.Fatalf("trim = %v", got)
	}
	if got := trimAsc([]byte{0, 0}); len(got) != 1 {
		t.Fatalf("trim all-zero = %v, want constant term kept", got)
	}
}
