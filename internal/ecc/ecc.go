// Package ecc implements the error-correcting codes used for GPU memory
// protection in this repository, bit-for-bit: a parametric Hamming SEC-DED
// code, a Reed–Solomon code over GF(2^8) with error and erasure decoding,
// and a tagged variant of Reed–Solomon in the style of Alias-Free Tagged
// ECC (Sullivan et al., ISCA 2023) that embeds a memory-safety tag in the
// code space at zero storage cost.
//
// The codecs are functional (they transform real bytes); the timing
// simulator uses only their geometry (redundancy ratio, granule coverage).
// The fault-injection harness in internal/faults exercises them to produce
// the reliability table.
package ecc

import "fmt"

// Result classifies the outcome of a decode.
type Result int

const (
	// OK means the codeword carried no detectable error.
	OK Result = iota
	// Corrected means an error was detected and corrected in place.
	Corrected
	// Detected means an uncorrectable error was detected; data is suspect.
	Detected
)

// String renders the result for logs and tables.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// SectorCodec protects a fixed-size memory sector with fixed-size
// redundancy. Implementations interleave one or more underlying codewords
// across the sector.
type SectorCodec interface {
	// Name identifies the codec in configuration and tables.
	Name() string
	// SectorBytes is the protected data size.
	SectorBytes() int
	// RedundancyBytes is the redundancy size per sector.
	RedundancyBytes() int
	// Encode computes the redundancy for a sector. len(sector) must equal
	// SectorBytes; the returned slice has RedundancyBytes bytes.
	Encode(sector []byte) []byte
	// EncodeInto appends the sector's redundancy to dst and returns the
	// extended slice. It performs no allocation when dst already has
	// RedundancyBytes of spare capacity; Encode is a thin wrapper over it.
	EncodeInto(dst, sector []byte) []byte
	// Decode verifies sector against redundancy, correcting both in place
	// when possible.
	Decode(sector, redundancy []byte) Result
	// DecodeInto is the allocation-free decode implementation behind
	// Decode: per-sector calls on clean (error-free) codewords allocate
	// nothing; locating an actual error may allocate scratch.
	DecodeInto(sector, redundancy []byte) Result
}

// RedundancyRatio reports redundancy bytes per data byte for a codec, e.g.
// 0.125 for a 1/8 code.
func RedundancyRatio(c SectorCodec) float64 {
	return float64(c.RedundancyBytes()) / float64(c.SectorBytes())
}
