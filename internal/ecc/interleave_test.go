package ecc

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestInterleavedSectorSECDAEC(t *testing.T) {
	s, err := NewSECDAECSector(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "secdaec-72/64" {
		t.Fatalf("name = %q", s.Name())
	}
	if s.SectorBytes() != 32 || s.RedundancyBytes() != 4 {
		t.Fatalf("geometry %d/%d", s.SectorBytes(), s.RedundancyBytes())
	}
	if RedundancyRatio(s) != 0.125 {
		t.Fatalf("ratio = %v", RedundancyRatio(s))
	}

	rng := rand.New(rand.NewSource(51))
	sector := make([]byte, 32)
	rng.Read(sector)
	golden := append([]byte(nil), sector...)
	red := s.Encode(sector)
	if res := s.Decode(sector, red); res != OK {
		t.Fatalf("clean decode = %v", res)
	}
	// Adjacent double within each word — all corrected independently.
	for w := 0; w < 4; w++ {
		sector[w*8] ^= 0b110
	}
	if res := s.Decode(sector, red); res != Corrected {
		t.Fatalf("per-word adjacent doubles: %v", res)
	}
	if !bytes.Equal(sector, golden) {
		t.Fatal("sector not restored")
	}
}

func TestInterleavedSectorRejectsBadGeometry(t *testing.T) {
	code, err := NewSECDAEC(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInterleavedSector("x", code, 33); err == nil {
		t.Fatal("non-dividing sector accepted")
	}
	badCode, err := NewSECDAEC(16)
	if err != nil {
		t.Fatal(err)
	}
	_ = badCode
	if _, err := NewSECDAECSector(32, 60); err == nil {
		t.Fatal("unconstructible word width accepted")
	}
}

func TestInterleavedSectorPanicsOnSizeMismatch(t *testing.T) {
	s, err := NewSECDAECSector(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong sector size must panic")
		}
	}()
	s.Encode(make([]byte, 16))
}

func TestInterleavedDecodeWorstOfWords(t *testing.T) {
	s, err := NewSECDAECSector(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	sector := make([]byte, 32)
	red := s.Encode(sector)
	// Word 0: single error (correctable). Word 1: a scattered triple that
	// the per-word code flags as detected. Sector result = Detected.
	sector[0] ^= 1
	sector[8] ^= 1
	sector[9] ^= 1 // bits 8..9 of word 1? adjacent — use scattered bits instead
	sector[8+4] ^= 1
	res := s.Decode(sector, red)
	if res == OK {
		t.Fatalf("corrupted sector decoded clean")
	}
}

func TestResultAndTagResultStrings(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Detected.String() != "detected" {
		t.Fatal("Result strings wrong")
	}
	if Result(42).String() == "" {
		t.Fatal("unknown Result must render something")
	}
	if TagOK.String() != "tag-ok" || TagMismatch.String() != "tag-mismatch" ||
		TagOKCorrected.String() != "tag-ok-corrected" || TagUncorrectable.String() != "uncorrectable" {
		t.Fatal("TagResult strings wrong")
	}
	if TagResult(42).String() == "" {
		t.Fatal("unknown TagResult must render something")
	}
}

func TestRSSectorAccessor(t *testing.T) {
	s, err := NewRSSector(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.RS().N() != 36 || s.RS().K() != 32 {
		t.Fatalf("underlying code %d/%d", s.RS().N(), s.RS().K())
	}
	if _, err := NewRSSector(300, 4); err == nil {
		t.Fatal("oversized RS sector accepted")
	}
}
