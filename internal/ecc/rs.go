package ecc

import "fmt"

// RS is a systematic Reed–Solomon code over GF(2^8). A codeword is k data
// symbols followed by n-k parity symbols; the code corrects e symbol errors
// and s symbol erasures whenever 2e+s <= n-k (so up to t=(n-k)/2 errors
// with no erasures).
//
// Symbol-grain correction is what gives memory codes their chipkill-style
// behaviour: all bits of one device map to one symbol, so a whole-chip
// failure is a single symbol error.
type RS struct {
	n, k int
	gen  []byte // generator polynomial, descending degree, monic
	// encTbl[f*p : (f+1)*p] is gen[1:] scaled by field element f: the whole
	// feedback step of the LFSR encoder for one data symbol, precomputed so
	// Encode does one table row XOR per symbol instead of p multiplies.
	encTbl []byte
}

// NewRS constructs an (n,k) Reed–Solomon code. n must be at most 255 and
// greater than k.
func NewRS(n, k int) (*RS, error) {
	if n > 255 || k <= 0 || k >= n {
		return nil, fmt.Errorf("ecc: invalid RS(%d,%d)", n, k)
	}
	// Generator g(x) = Π_{i=0}^{n-k-1} (x - alpha^i).
	gen := []byte{1}
	for i := 0; i < n-k; i++ {
		gen = polyMul(gen, []byte{1, gfAlpha(i)})
	}
	p := n - k
	encTbl := make([]byte, 256*p)
	for f := 1; f < 256; f++ {
		row := encTbl[f*p : (f+1)*p]
		for j := 0; j < p; j++ {
			row[j] = gfMul(gen[j+1], byte(f))
		}
	}
	return &RS{n: n, k: k, gen: gen, encTbl: encTbl}, nil
}

// N reports the codeword length in symbols.
func (r *RS) N() int { return r.n }

// K reports the data length in symbols.
func (r *RS) K() int { return r.k }

// ParitySymbols reports n-k.
func (r *RS) ParitySymbols() int { return r.n - r.k }

// T reports the guaranteed symbol-error correction capability with no
// erasures.
func (r *RS) T() int { return (r.n - r.k) / 2 }

// Encode computes the parity symbols for data (len k) as the remainder of
// data·x^(n-k) divided by the generator polynomial.
func (r *RS) Encode(data []byte) []byte {
	if len(data) != r.k {
		panic(fmt.Sprintf("ecc: RS encode len %d, want %d", len(data), r.k))
	}
	return r.EncodeInto(make([]byte, 0, r.n-r.k), data)
}

// EncodeInto appends the parity symbols for data (len k) to dst and
// returns the extended slice. It does not allocate when dst has capacity.
func (r *RS) EncodeInto(dst, data []byte) []byte {
	if len(data) != r.k {
		panic(fmt.Sprintf("ecc: RS encode len %d, want %d", len(data), r.k))
	}
	base := len(dst)
	p := r.n - r.k
	for i := 0; i < p; i++ {
		dst = append(dst, 0)
	}
	rem := dst[base:]
	r.encodeBody(rem, data, nil)
	return dst
}

// encodeBody runs the LFSR division over segments a then b, accumulating
// the remainder into rem (len n-k, zeroed by the caller). Two segments let
// the tagged codec feed tag++data without concatenating.
func (r *RS) encodeBody(rem []byte, a, b []byte) {
	p := r.n - r.k
	feed := func(data []byte) {
		for _, d := range data {
			factor := d ^ rem[0]
			copy(rem, rem[1:])
			rem[p-1] = 0
			if factor != 0 {
				row := r.encTbl[int(factor)*p:]
				for j := 0; j < p; j++ {
					rem[j] ^= row[j]
				}
			}
		}
	}
	feed(a)
	feed(b)
}

// Syndromes computes the n-k syndromes of the codeword (data ++ parity) and
// reports whether any is nonzero. Symbol index i carries weight
// alpha^{(n-1-i)·j} in syndrome j; a zero vector means a valid codeword.
func (r *RS) Syndromes(data, parity []byte) ([]byte, bool) {
	syn := make([]byte, r.n-r.k)
	any := r.syndromesInto(syn, data, parity)
	return syn, any
}

// syndromesInto evaluates the codeword data++parity at the first n-k
// powers of alpha without materializing the concatenation, writing into
// syn (len n-k) and reporting whether any syndrome is nonzero.
func (r *RS) syndromesInto(syn []byte, data, parity []byte) bool {
	any := false
	for i := range syn {
		x := gfAlpha(i)
		var y byte
		for _, c := range data {
			y = gfMul(y, x) ^ c
		}
		for _, c := range parity {
			y = gfMul(y, x) ^ c
		}
		syn[i] = y
		if y != 0 {
			any = true
		}
	}
	return any
}

// Decode verifies data (len k) against parity (len n-k), correcting up to T
// symbol errors in place.
func (r *RS) Decode(data, parity []byte) Result {
	res, _ := r.DecodeErasures(data, parity, nil)
	return res
}

// DecodeErasures decodes with known erasure positions (indices into the
// full codeword: 0..k-1 are data symbols, k..n-1 parity symbols). It
// corrects e errors and s erasures whenever 2e+s <= n-k and returns the
// corrected symbol indices (erasure positions that needed no change are not
// reported).
func (r *RS) DecodeErasures(data, parity []byte, erasures []int) (Result, []int) {
	if len(data) != r.k || len(parity) != r.n-r.k {
		panic("ecc: RS decode buffer size mismatch")
	}
	p := r.n - r.k
	// The syndrome buffer lives on the stack so the no-error path — the
	// overwhelmingly common one — does not allocate at all.
	var synBuf [255]byte
	syn := synBuf[:p]
	if !r.syndromesInto(syn, data, parity) {
		return OK, nil
	}
	if len(erasures) > p {
		return Detected, nil
	}
	// From here on an error is being located; allocation is fine.
	cw := make([]byte, 0, r.n)
	cw = append(cw, data...)
	cw = append(cw, parity...)

	// Erasure locator Γ(x) = Π (1 + X_l·x) with X_l = alpha^{n-1-idx},
	// ascending coefficient order, Γ[0] = 1.
	gamma := []byte{1}
	for _, idx := range erasures {
		if idx < 0 || idx >= r.n {
			return Detected, nil
		}
		x := gfAlpha(r.n - 1 - idx)
		gamma = polyMulAsc(gamma, []byte{1, x})
	}

	lambda := berlekampMassey(syn, gamma, len(erasures))
	lambda = trimAsc(lambda)
	nerrs := len(lambda) - 1 // total located positions incl. erasures
	if nerrs == 0 || 2*(nerrs-len(erasures))+len(erasures) > p {
		return Detected, nil
	}

	// Chien search over all symbol indices.
	positions := make([]int, 0, nerrs)
	for i := 0; i < r.n; i++ {
		xinv := gfAlpha(-(r.n - 1 - i))
		if polyEvalAsc(lambda, xinv) == 0 {
			positions = append(positions, i)
		}
	}
	if len(positions) != nerrs {
		return Detected, nil
	}

	// Forney: Ω(x) = S(x)·Λ(x) mod x^p; e_l = X_l·Ω(X_l⁻¹)/Λ'(X_l⁻¹).
	omega := polyMulAsc(syn[:p], lambda)
	if len(omega) > p {
		omega = omega[:p]
	}
	deriv := polyDerivAsc(lambda)
	corrected := make([]int, 0, nerrs)
	for _, pos := range positions {
		x := gfAlpha(r.n - 1 - pos)
		xinv := gfInv(x)
		den := polyEvalAsc(deriv, xinv)
		if den == 0 {
			return Detected, nil
		}
		mag := gfMul(x, gfDiv(polyEvalAsc(omega, xinv), den))
		if mag != 0 {
			cw[pos] ^= mag
			corrected = append(corrected, pos)
		}
	}

	// Re-verify: if syndromes remain nonzero the error exceeded capability
	// and the "correction" would have been a miscorrection.
	if r.syndromesInto(syn, cw[:r.k], cw[r.k:]) {
		return Detected, nil
	}
	copy(data, cw[:r.k])
	copy(parity, cw[r.k:])
	return Corrected, corrected
}

// berlekampMassey runs the errors-and-erasures Berlekamp–Massey iteration:
// it is seeded with the erasure locator gamma and processes syndromes
// starting after the erasure count, returning the combined locator Λ(x) in
// ascending order.
func berlekampMassey(syn []byte, gamma []byte, nErasures int) []byte {
	lambda := make([]byte, len(gamma))
	copy(lambda, gamma)
	prev := make([]byte, len(gamma))
	copy(prev, gamma)
	for k := nErasures; k < len(syn); k++ {
		// Discrepancy Δ = Σ_j Λ_j · S_{k-j}.
		delta := syn[k]
		for j := 1; j < len(lambda) && j <= k; j++ {
			delta ^= gfMul(lambda[j], syn[k-j])
		}
		// prev ← x·prev.
		prev = append([]byte{0}, prev...)
		if delta == 0 {
			continue
		}
		if len(prev) > len(lambda) {
			next := scaleAsc(prev, delta)
			prev = scaleAsc(lambda, gfInv(delta))
			lambda = next
			// Fall through to add delta·prev (= old lambda) below.
		}
		lambda = addAsc(lambda, scaleAsc(prev, delta))
	}
	return lambda
}

func scaleAsc(p []byte, c byte) []byte {
	out := make([]byte, len(p))
	for i, v := range p {
		out[i] = gfMul(v, c)
	}
	return out
}

func addAsc(a, b []byte) []byte {
	size := len(a)
	if len(b) > size {
		size = len(b)
	}
	out := make([]byte, size)
	copy(out, a)
	for i, v := range b {
		out[i] ^= v
	}
	return out
}

// trimAsc removes trailing zero coefficients (the high-degree end in
// ascending order), keeping at least the constant term.
func trimAsc(p []byte) []byte {
	end := len(p)
	for end > 1 && p[end-1] == 0 {
		end--
	}
	return p[:end]
}

// polyMulAsc multiplies polynomials with ascending-order coefficients.
func polyMulAsc(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			out[i+j] ^= gfMul(ca, cb)
		}
	}
	return out
}

// polyEvalAsc evaluates an ascending-order polynomial at x.
func polyEvalAsc(p []byte, x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = gfMul(y, x) ^ p[i]
	}
	return y
}

// polyDerivAsc returns the formal derivative of an ascending-order
// polynomial; in characteristic 2 the even-power terms vanish.
func polyDerivAsc(p []byte) []byte {
	if len(p) <= 1 {
		return []byte{0}
	}
	out := make([]byte, len(p)-1)
	for i := 1; i < len(p); i++ {
		if i%2 == 1 {
			out[i-1] = p[i]
		}
	}
	return out
}

// RSSector adapts an RS code to the SectorCodec interface: the sector's
// bytes are the data symbols of a single codeword.
type RSSector struct {
	rs *RS
}

// NewRSSector builds a sector codec protecting sectorBytes with
// paritySymbols parity bytes in one RS codeword.
func NewRSSector(sectorBytes, paritySymbols int) (*RSSector, error) {
	rs, err := NewRS(sectorBytes+paritySymbols, sectorBytes)
	if err != nil {
		return nil, err
	}
	return &RSSector{rs: rs}, nil
}

// RS exposes the underlying code (for the tagged variant and tests).
func (s *RSSector) RS() *RS { return s.rs }

// Name identifies the codec, e.g. "rs-36/32".
func (s *RSSector) Name() string { return fmt.Sprintf("rs-%d/%d", s.rs.n, s.rs.k) }

// SectorBytes reports the protected sector size.
func (s *RSSector) SectorBytes() int { return s.rs.k }

// RedundancyBytes reports parity bytes per sector.
func (s *RSSector) RedundancyBytes() int { return s.rs.ParitySymbols() }

// Encode computes the parity bytes for the sector.
func (s *RSSector) Encode(sector []byte) []byte { return s.rs.Encode(sector) }

// EncodeInto appends the sector's parity bytes to dst and returns the
// extended slice; it does not allocate when dst has capacity.
func (s *RSSector) EncodeInto(dst, sector []byte) []byte { return s.rs.EncodeInto(dst, sector) }

// Decode verifies and corrects the sector in place.
func (s *RSSector) Decode(sector, redundancy []byte) Result {
	return s.rs.Decode(sector, redundancy)
}

// DecodeInto is Decode under the allocation-free-decode naming shared by
// all sector codecs; the no-error path performs no allocation.
func (s *RSSector) DecodeInto(sector, redundancy []byte) Result {
	return s.rs.Decode(sector, redundancy)
}

var _ SectorCodec = (*RSSector)(nil)
