package ecc

import (
	"bytes"
	"math/rand"
	"testing"
)

func mustSECDAEC(t *testing.T, k int) *SECDAEC {
	t.Helper()
	c, err := NewSECDAEC(k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSECDAECConstructs(t *testing.T) {
	for _, k := range []int{8, 16, 32, 64, 128} {
		c := mustSECDAEC(t, k)
		if c.DataBits() != k {
			t.Fatalf("k=%d: data bits %d", k, c.DataBits())
		}
		if c.CheckBits() < 4 {
			t.Fatalf("k=%d: implausibly few check bits %d", k, c.CheckBits())
		}
		t.Logf("SEC-DAEC(%d): %d check bits", k, c.CheckBits())
	}
	if _, err := NewSECDAEC(0); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewSECDAEC(1000); err == nil {
		t.Fatal("oversized width accepted")
	}
}

func TestSECDAECCleanRoundTrip(t *testing.T) {
	c := mustSECDAEC(t, 64)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, 8)
		rng.Read(data)
		chk := c.Encode(data)
		d := append([]byte(nil), data...)
		if res := c.Decode(d, chk); res != OK {
			t.Fatalf("clean decode = %v", res)
		}
		if !bytes.Equal(d, data) {
			t.Fatal("clean decode mutated data")
		}
	}
}

func TestSECDAECCorrectsEverySingleBit(t *testing.T) {
	c := mustSECDAEC(t, 64)
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 8)
	rng.Read(data)
	chk := c.Encode(data)
	total := c.DataBits() + c.CheckBits()
	for bit := 0; bit < total; bit++ {
		d := append([]byte(nil), data...)
		k := append([]byte(nil), chk...)
		daecFlip(c, d, k, bit)
		if res := c.Decode(d, k); res != Corrected {
			t.Fatalf("bit %d: %v", bit, res)
		}
		if !bytes.Equal(d, data) || !bytes.Equal(k, chk) {
			t.Fatalf("bit %d: not restored", bit)
		}
	}
}

func TestSECDAECCorrectsEveryAdjacentDouble(t *testing.T) {
	c := mustSECDAEC(t, 64)
	rng := rand.New(rand.NewSource(43))
	data := make([]byte, 8)
	rng.Read(data)
	chk := c.Encode(data)
	total := c.DataBits() + c.CheckBits()
	for bit := 0; bit+1 < total; bit++ {
		d := append([]byte(nil), data...)
		k := append([]byte(nil), chk...)
		daecFlip(c, d, k, bit)
		daecFlip(c, d, k, bit+1)
		if res := c.Decode(d, k); res != Corrected {
			t.Fatalf("adjacent pair (%d,%d): %v", bit, bit+1, res)
		}
		if !bytes.Equal(d, data) || !bytes.Equal(k, chk) {
			t.Fatalf("pair (%d,%d): not restored", bit, bit+1)
		}
	}
}

func TestSECDAECNonAdjacentDoublesNeverMiscorrectSilentlyToOK(t *testing.T) {
	// Non-adjacent doubles are beyond the design point: they may alias to
	// a single or adjacent-pair syndrome (miscorrection), but they must
	// never produce syndrome zero (silent pass-through).
	c := mustSECDAEC(t, 64)
	rng := rand.New(rand.NewSource(44))
	data := make([]byte, 8)
	rng.Read(data)
	chk := c.Encode(data)
	total := c.DataBits() + c.CheckBits()
	detected, miscorrected := 0, 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		b1 := rng.Intn(total)
		b2 := rng.Intn(total)
		if b1 == b2 || b1+1 == b2 || b2+1 == b1 {
			continue
		}
		d := append([]byte(nil), data...)
		k := append([]byte(nil), chk...)
		daecFlip(c, d, k, b1)
		daecFlip(c, d, k, b2)
		switch c.Decode(d, k) {
		case OK:
			t.Fatalf("pair (%d,%d): silent pass-through", b1, b2)
		case Detected:
			detected++
		case Corrected:
			miscorrected++
		}
	}
	if detected == 0 {
		t.Fatal("no non-adjacent doubles detected at all")
	}
	t.Logf("non-adjacent doubles: %d detected, %d miscorrected", detected, miscorrected)
}

func TestSECDAECBeatsSECDEDOnAdjacentFaults(t *testing.T) {
	// The headline comparison: at comparable redundancy, SEC-DED only
	// *detects* adjacent doubles while SEC-DAEC corrects them.
	daec := mustSECDAEC(t, 64)
	ded := NewSECDED(64)
	rng := rand.New(rand.NewSource(45))
	data := make([]byte, 8)
	rng.Read(data)
	chkA := daec.Encode(data)
	chkB := ded.Encode(data)

	for bit := 0; bit+1 < 64; bit++ {
		dA := append([]byte(nil), data...)
		kA := append([]byte(nil), chkA...)
		daecFlip(daec, dA, kA, bit)
		daecFlip(daec, dA, kA, bit+1)
		if res := daec.Decode(dA, kA); res != Corrected {
			t.Fatalf("SEC-DAEC failed adjacent pair at %d: %v", bit, res)
		}

		dB := append([]byte(nil), data...)
		kB := append([]byte(nil), chkB...)
		flipBit(dB, bit)
		flipBit(dB, bit+1)
		if res := ded.Decode(dB, kB); res != Detected {
			t.Fatalf("SEC-DED unexpectedly %v on adjacent pair at %d", res, bit)
		}
	}
}

func TestSECDAECDeterministicConstruction(t *testing.T) {
	a := mustSECDAEC(t, 64)
	b := mustSECDAEC(t, 64)
	if a.CheckBits() != b.CheckBits() {
		t.Fatal("nondeterministic check width")
	}
	for i := range a.cols {
		if a.cols[i] != b.cols[i] {
			t.Fatalf("column %d differs", i)
		}
	}
}

func daecFlip(c *SECDAEC, data, chk []byte, bit int) {
	if bit < c.DataBits() {
		flipBit(data, bit)
	} else {
		flipBit(chk, bit-c.DataBits())
	}
}
