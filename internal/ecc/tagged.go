package ecc

import "fmt"

// Tagged implements an Alias-Free Tagged ECC in the style of Implicit
// Memory Tagging (Sullivan et al., ISCA 2023): a memory-safety tag is
// folded into the ECC code space at zero storage cost. The tag symbols are
// treated as virtual data symbols of a Reed–Solomon codeword — they
// participate in parity generation but are never stored. On read, the
// checker re-inserts the pointer's asserted tag; a tag mismatch surfaces as
// symbol errors at the (known) virtual positions, which the decoder can
// distinguish from real data errors.
//
// Alias-freedom here means: in the absence of data errors, any tag mismatch
// produces a nonzero syndrome and is attributed to the tag — it is never
// silently "corrected" into the data. That holds whenever tagSyms <= T of
// the underlying code, because a pure tag mismatch is then within the
// code's correction radius and locates exactly at the virtual positions.
type Tagged struct {
	rs      *RS
	tagSyms int
	dataLen int
}

// TagResult classifies the outcome of a tagged check.
type TagResult int

const (
	// TagOK: no error, asserted tag matches the stored tag.
	TagOK TagResult = iota
	// TagOKCorrected: a data/parity error was corrected; the tag matches.
	TagOKCorrected
	// TagMismatch: the asserted tag provably differs from the stored tag
	// (memory-safety violation detected).
	TagMismatch
	// TagUncorrectable: errors exceed the code's capability; neither the
	// data nor the tag comparison is trustworthy.
	TagUncorrectable
)

// String renders the result for logs and tables.
func (t TagResult) String() string {
	switch t {
	case TagOK:
		return "tag-ok"
	case TagOKCorrected:
		return "tag-ok-corrected"
	case TagMismatch:
		return "tag-mismatch"
	case TagUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("TagResult(%d)", int(t))
	}
}

// NewTagged builds a tagged codec for dataLen-byte blocks with paritySyms
// stored parity bytes and tagSyms virtual tag bytes. tagSyms must not
// exceed the code's error-correction capability (paritySyms/2), which is
// what guarantees alias-free tag-mismatch identification.
func NewTagged(dataLen, paritySyms, tagSyms int) (*Tagged, error) {
	if tagSyms <= 0 {
		return nil, fmt.Errorf("ecc: tagged codec needs at least one tag symbol")
	}
	if tagSyms > paritySyms/2 {
		return nil, fmt.Errorf("ecc: %d tag symbols exceed correction capability of %d parity symbols",
			tagSyms, paritySyms)
	}
	rs, err := NewRS(tagSyms+dataLen+paritySyms, tagSyms+dataLen)
	if err != nil {
		return nil, err
	}
	return &Tagged{rs: rs, tagSyms: tagSyms, dataLen: dataLen}, nil
}

// Name identifies the codec, e.g. "aft-rs-38/32+t2".
func (t *Tagged) Name() string {
	return fmt.Sprintf("aft-rs-%d/%d+t%d", t.rs.n, t.dataLen, t.tagSyms)
}

// DataBytes reports the protected block size.
func (t *Tagged) DataBytes() int { return t.dataLen }

// ParityBytes reports the stored redundancy per block.
func (t *Tagged) ParityBytes() int { return t.rs.ParitySymbols() }

// TagBytes reports the virtual tag width.
func (t *Tagged) TagBytes() int { return t.tagSyms }

// Encode computes the stored parity for (tag, data). The tag is not stored;
// only the returned parity bytes are.
func (t *Tagged) Encode(data, tag []byte) []byte {
	return t.EncodeInto(make([]byte, 0, t.rs.ParitySymbols()), data, tag)
}

// EncodeInto appends the stored parity for (tag, data) to dst and returns
// the extended slice. The tag++data virtual word is fed to the encoder
// segment by segment, so no concatenation buffer is built and the call
// does not allocate when dst has capacity.
func (t *Tagged) EncodeInto(dst, data, tag []byte) []byte {
	if len(data) != t.dataLen || len(tag) != t.tagSyms {
		panic(fmt.Sprintf("ecc: tagged codec wants %dB data and %dB tag, got %dB/%dB",
			t.dataLen, t.tagSyms, len(data), len(tag)))
	}
	base := len(dst)
	for i := 0; i < t.rs.ParitySymbols(); i++ {
		dst = append(dst, 0)
	}
	t.rs.encodeBody(dst[base:], tag, data)
	return dst
}

// Check verifies data and parity under an asserted tag, correcting
// correctable data/parity errors in place.
func (t *Tagged) Check(data, parity, assertedTag []byte) TagResult {
	virtual := t.virtualWord(data, assertedTag)
	// Decode against copies: corrections made under a wrong tag assumption
	// must not leak back into the caller's buffers.
	parityCopy := make([]byte, len(parity))
	copy(parityCopy, parity)
	res, positions := t.rs.DecodeErasures(virtual, parityCopy, nil)
	switch res {
	case OK:
		return TagOK
	case Detected:
		return TagUncorrectable
	}
	// Corrected: if any corrected position falls in the virtual tag region
	// the stored tag differs from the asserted one.
	mismatch := false
	for _, pos := range positions {
		if pos < t.tagSyms {
			mismatch = true
			break
		}
	}
	if mismatch {
		// Do not commit corrections made under a wrong tag assumption; the
		// access is a safety violation and must not return "fixed" data.
		return TagMismatch
	}
	copy(data, virtual[t.tagSyms:])
	copy(parity, parityCopy)
	return TagOKCorrected
}

// virtualWord builds the tag++data virtual data word.
func (t *Tagged) virtualWord(data, tag []byte) []byte {
	if len(data) != t.dataLen || len(tag) != t.tagSyms {
		panic(fmt.Sprintf("ecc: tagged codec wants %dB data and %dB tag, got %dB/%dB",
			t.dataLen, t.tagSyms, len(data), len(tag)))
	}
	virtual := make([]byte, 0, t.tagSyms+t.dataLen)
	virtual = append(virtual, tag...)
	virtual = append(virtual, data...)
	return virtual
}
