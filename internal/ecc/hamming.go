package ecc

import "fmt"

// SECDED is a parametric extended-Hamming code: single-error-correcting,
// double-error-detecting over an arbitrary data width. The classic layout
// places check bits at power-of-two positions 1,2,4,... of the codeword and
// adds one overall parity bit for double-error detection.
//
// For 64 data bits this is the ubiquitous (72,64) SEC-DED used in DRAM
// interfaces: 8 check bits per 8 data bytes, a 1/8 redundancy ratio.
type SECDED struct {
	k       int   // data bits
	r       int   // Hamming check bits (excluding overall parity)
	n       int   // codeword bits excluding overall parity = k + r
	dataPos []int // codeword position (1-based) of each data bit

	// Per-byte syndrome tables: entry [b][v] folds a whole byte of input
	// into the syndrome at once instead of testing eight bits. The low 31
	// bits carry the syndrome XOR, bit 31 the overall-parity XOR.
	dataTbl [][256]uint32
	chkTbl  [][256]uint32
}

// synParity packs an overall-parity flip into a table entry.
const synParity = 1 << 31

// NewSECDED builds a SEC-DED code for the given number of data bits.
// It panics if dataBits is not positive; code construction is static
// configuration, not runtime input.
func NewSECDED(dataBits int) *SECDED {
	if dataBits <= 0 {
		panic(fmt.Sprintf("ecc: invalid SECDED data width %d", dataBits))
	}
	r := 0
	for (1 << r) < dataBits+r+1 {
		r++
	}
	n := dataBits + r
	c := &SECDED{k: dataBits, r: r, n: n, dataPos: make([]int, 0, dataBits)}
	for pos := 1; pos <= n; pos++ {
		if pos&(pos-1) != 0 { // not a power of two → data position
			c.dataPos = append(c.dataPos, pos)
		}
	}
	c.buildTables()
	return c
}

// buildTables precomputes the per-byte syndrome folds for data bytes and
// check bytes.
func (c *SECDED) buildTables() {
	c.dataTbl = make([][256]uint32, (c.k+7)/8)
	for b := range c.dataTbl {
		for v := 0; v < 256; v++ {
			var e uint32
			for j := 0; j < 8; j++ {
				i := b*8 + j
				if i < c.k && v>>j&1 == 1 {
					e ^= uint32(c.dataPos[i]) ^ synParity
				}
			}
			c.dataTbl[b][v] = e
		}
	}
	c.chkTbl = make([][256]uint32, c.CheckBytes())
	for b := range c.chkTbl {
		for v := 0; v < 256; v++ {
			var e uint32
			for j := 0; j < 8; j++ {
				i := b*8 + j
				if v>>j&1 == 0 {
					continue
				}
				if i < c.r {
					e ^= uint32(1)<<i ^ synParity
				} else if i == c.r {
					e ^= synParity // overall parity bit
				}
			}
			c.chkTbl[b][v] = e
		}
	}
}

// DataBits reports the data width in bits.
func (c *SECDED) DataBits() int { return c.k }

// CheckBits reports the number of redundancy bits including the overall
// parity bit.
func (c *SECDED) CheckBits() int { return c.r + 1 }

// CheckBytes reports the redundancy storage in whole bytes.
func (c *SECDED) CheckBytes() int { return (c.CheckBits() + 7) / 8 }

func getBit(b []byte, i int) int { return int(b[i>>3]>>(uint(i)&7)) & 1 }
func flipBit(b []byte, i int)    { b[i>>3] ^= 1 << (uint(i) & 7) }
func setBit(b []byte, i, v int)  { b[i>>3] = b[i>>3]&^(1<<(uint(i)&7)) | byte(v)<<(uint(i)&7) }

// Encode computes the check bits for data, which must hold at least
// DataBits bits. The returned slice has CheckBytes bytes: Hamming check bit
// i in bit position i, overall parity in bit position r.
func (c *SECDED) Encode(data []byte) []byte {
	return c.EncodeInto(make([]byte, 0, c.CheckBytes()), data)
}

// EncodeInto appends the check bytes for data to dst and returns the
// extended slice. It does not allocate when dst has capacity.
func (c *SECDED) EncodeInto(dst, data []byte) []byte {
	if len(data)*8 < c.k {
		panic(fmt.Sprintf("ecc: SECDED encode needs %d bits, got %d", c.k, len(data)*8))
	}
	base := len(dst)
	for i := 0; i < c.CheckBytes(); i++ {
		dst = append(dst, 0)
	}
	check := dst[base:]
	syn, overall := c.synFromData(data, check)
	// Solve for check bits so the syndrome becomes zero: check bit i covers
	// exactly the positions with bit i set, and sits at position 2^i which
	// has only bit i set, so each check bit independently cancels one
	// syndrome bit.
	for i := 0; i < c.r; i++ {
		if (syn>>i)&1 == 1 {
			setBit(check, i, 1)
			overall ^= 1
		}
	}
	if overall == 1 {
		setBit(check, c.r, 1)
	}
	return dst
}

// synFromData folds the data and current check bits into the Hamming
// syndrome and overall parity, one table-indexed byte at a time. Bits
// beyond DataBits (in data) or the overall parity bit (in check) are
// ignored, matching the bit-addressed definition of the code.
func (c *SECDED) synFromData(data, check []byte) (syn int, overall int) {
	var e uint32
	for b := range c.dataTbl {
		e ^= c.dataTbl[b][data[b]]
	}
	for b := range c.chkTbl {
		e ^= c.chkTbl[b][check[b]]
	}
	return int(e &^ synParity), int(e >> 31)
}

// Decode verifies data against check, correcting a single-bit error in
// either in place. It reports OK, Corrected, or Detected (double error).
func (c *SECDED) Decode(data, check []byte) Result { return c.DecodeInto(data, check) }

// DecodeInto is the allocation-free decode implementation backing Decode.
func (c *SECDED) DecodeInto(data, check []byte) Result {
	if len(data)*8 < c.k || len(check) < c.CheckBytes() {
		panic("ecc: SECDED decode buffer too small")
	}
	syn, overall := c.synFromData(data, check)
	switch {
	case syn == 0 && overall == 0:
		return OK
	case syn == 0 && overall == 1:
		// The overall parity bit itself flipped.
		flipBit(check, c.r)
		return Corrected
	case overall == 1:
		// Single error at codeword position syn.
		if syn > c.n {
			return Detected // syndrome points outside the codeword
		}
		if syn&(syn-1) == 0 {
			// Power-of-two position → a check bit flipped.
			bit := 0
			for 1<<bit != syn {
				bit++
			}
			flipBit(check, bit)
			return Corrected
		}
		// Data position: find its index.
		idx := c.dataIndex(syn)
		flipBit(data, idx)
		return Corrected
	default:
		// Nonzero syndrome with even parity: double-bit error.
		return Detected
	}
}

// dataIndex maps a non-power-of-two codeword position to its data bit index.
func (c *SECDED) dataIndex(pos int) int {
	// Count non-power-of-two positions below pos: pos-1 minus the number of
	// powers of two < pos... the direct loop is clearer and this is not on
	// the simulator hot path.
	idx := 0
	for p := 1; p < pos; p++ {
		if p&(p-1) != 0 {
			idx++
		}
	}
	return idx
}

// SECDEDSector protects a sector by interleaving independent (k,k+r+1)
// SEC-DED codewords over consecutive k-bit words. With 64-bit words and
// 32-byte sectors this is 4 interleaved (72,64) codewords: 4 redundancy
// bytes per sector, a 1/8 ratio, and tolerance of one bit error per 8-byte
// word.
type SECDEDSector struct {
	code       *SECDED
	sectorSize int
	words      int
	wordBytes  int
}

// NewSECDEDSector builds a sector codec over sectorBytes-byte sectors using
// wordBits-wide SEC-DED codewords. wordBits must divide sectorBytes*8 and
// be byte-aligned.
func NewSECDEDSector(sectorBytes, wordBits int) (*SECDEDSector, error) {
	if wordBits%8 != 0 {
		return nil, fmt.Errorf("ecc: word width %d is not byte aligned", wordBits)
	}
	if (sectorBytes*8)%wordBits != 0 {
		return nil, fmt.Errorf("ecc: word width %d does not divide sector %dB", wordBits, sectorBytes)
	}
	return &SECDEDSector{
		code:       NewSECDED(wordBits),
		sectorSize: sectorBytes,
		words:      sectorBytes * 8 / wordBits,
		wordBytes:  wordBits / 8,
	}, nil
}

// Name identifies the codec, e.g. "secded-72/64".
func (s *SECDEDSector) Name() string {
	return fmt.Sprintf("secded-%d/%d", s.code.k+s.code.CheckBits(), s.code.k)
}

// SectorBytes reports the protected sector size.
func (s *SECDEDSector) SectorBytes() int { return s.sectorSize }

// RedundancyBytes reports redundancy bytes per sector.
func (s *SECDEDSector) RedundancyBytes() int { return s.words * s.code.CheckBytes() }

// Encode computes per-word check bytes, concatenated in word order.
func (s *SECDEDSector) Encode(sector []byte) []byte {
	return s.EncodeInto(make([]byte, 0, s.RedundancyBytes()), sector)
}

// EncodeInto appends the sector's check bytes to dst and returns the
// extended slice; it does not allocate when dst has capacity.
func (s *SECDEDSector) EncodeInto(dst, sector []byte) []byte {
	if len(sector) != s.sectorSize {
		panic(fmt.Sprintf("ecc: sector size %d, want %d", len(sector), s.sectorSize))
	}
	for w := 0; w < s.words; w++ {
		dst = s.code.EncodeInto(dst, sector[w*s.wordBytes:(w+1)*s.wordBytes])
	}
	return dst
}

// Decode verifies each word, correcting in place. The sector result is the
// worst per-word result (Detected > Corrected > OK).
func (s *SECDEDSector) Decode(sector, redundancy []byte) Result {
	return s.DecodeInto(sector, redundancy)
}

// DecodeInto is the allocation-free decode implementation backing Decode.
func (s *SECDEDSector) DecodeInto(sector, redundancy []byte) Result {
	if len(sector) != s.sectorSize || len(redundancy) != s.RedundancyBytes() {
		panic("ecc: SECDEDSector decode buffer size mismatch")
	}
	worst := OK
	cb := s.code.CheckBytes()
	for w := 0; w < s.words; w++ {
		word := sector[w*s.wordBytes : (w+1)*s.wordBytes]
		chk := redundancy[w*cb : (w+1)*cb]
		if r := s.code.DecodeInto(word, chk); r > worst {
			worst = r
		}
	}
	return worst
}

var _ SectorCodec = (*SECDEDSector)(nil)
