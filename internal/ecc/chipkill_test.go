package ecc

import (
	"bytes"
	"math/rand"
	"testing"
)

func mustChipkill(t *testing.T) *Chipkill {
	t.Helper()
	c, err := NewChipkill(32, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChipkillGeometry(t *testing.T) {
	c := mustChipkill(t)
	if c.SectorBytes() != 32 || c.RedundancyBytes() != 4 || c.Devices() != 9 {
		t.Fatalf("geometry %d/%d x%d", c.SectorBytes(), c.RedundancyBytes(), c.Devices())
	}
	if c.Name() != "chipkill-rs-36/32 x9" {
		t.Fatalf("name = %q", c.Name())
	}
	// 36 symbols / 9 devices = 4 symbols each, disjoint and complete.
	seen := map[int]bool{}
	for d := 0; d < 9; d++ {
		syms := c.DeviceSymbols(d)
		if len(syms) != 4 {
			t.Fatalf("device %d owns %d symbols", d, len(syms))
		}
		for _, p := range syms {
			if seen[p] {
				t.Fatalf("symbol %d owned twice", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != 36 {
		t.Fatalf("coverage %d/36", len(seen))
	}
	if c.DeviceSymbols(-1) != nil || c.DeviceSymbols(9) != nil {
		t.Fatal("out-of-range device must return nil")
	}
}

func TestChipkillRejectsBadStripes(t *testing.T) {
	if _, err := NewChipkill(32, 4, 7); err == nil {
		t.Fatal("non-dividing stripe accepted")
	}
	if _, err := NewChipkill(32, 4, 4); err == nil {
		t.Fatal("9-symbol devices exceed the 4-erasure budget but were accepted")
	}
	if _, err := NewChipkill(32, 4, 0); err == nil {
		t.Fatal("zero devices accepted")
	}
}

// killDevice corrupts every symbol a device owns.
func killDevice(c *Chipkill, rng *rand.Rand, sector, red []byte, dev int) {
	for _, p := range c.DeviceSymbols(dev) {
		var b *byte
		if p < len(sector) {
			b = &sector[p]
		} else {
			b = &red[p-len(sector)]
		}
		old := *b
		for *b == old {
			*b = byte(rng.Intn(256))
		}
	}
}

func TestChipkillRecoversAnyDeadDevice(t *testing.T) {
	c := mustChipkill(t)
	rng := rand.New(rand.NewSource(31))
	golden := make([]byte, 32)
	rng.Read(golden)
	parity := c.Encode(golden)

	for dev := 0; dev < 9; dev++ {
		sector := append([]byte(nil), golden...)
		red := append([]byte(nil), parity...)
		killDevice(c, rng, sector, red, dev)
		if res := c.DecodeWithDeadDevice(sector, red, dev); res != Corrected {
			t.Fatalf("device %d: %v", dev, res)
		}
		if !bytes.Equal(sector, golden) || !bytes.Equal(red, parity) {
			t.Fatalf("device %d: not restored", dev)
		}
	}
}

func TestChipkillBlindDecodeDetectsDeadDevice(t *testing.T) {
	// Without the device identity, 4 symbol errors exceed t=2: the decode
	// must never silently succeed with wrong data.
	c := mustChipkill(t)
	rng := rand.New(rand.NewSource(32))
	golden := make([]byte, 32)
	rng.Read(golden)
	parity := c.Encode(golden)

	silent := 0
	for trial := 0; trial < 500; trial++ {
		sector := append([]byte(nil), golden...)
		red := append([]byte(nil), parity...)
		killDevice(c, rng, sector, red, rng.Intn(9))
		res := c.Decode(sector, red)
		if res == OK {
			silent++
		}
		if res == Corrected && !bytes.Equal(sector, golden) {
			// Miscorrection is possible beyond distance but must be rare.
			silent++
		}
	}
	if silent > 5 {
		t.Fatalf("%d/500 dead devices slipped past blind decode", silent)
	}
}

// TestChipkillWrongDeadDeviceHintCanMiscorrect documents a fundamental
// property of erasure decoding, not a bug: when the full n-k erasure
// budget points at *intact* positions while the real errors sit
// elsewhere, the decoder is free to rewrite the "erased" symbols into a
// different valid codeword and the verify pass cannot catch it. This is
// exactly why production chipkill identifies failed devices carefully
// (scrub confirmation, repeated-detection thresholds) before trusting
// erasure pointers.
func TestChipkillWrongDeadDeviceHintCanMiscorrect(t *testing.T) {
	c := mustChipkill(t)
	rng := rand.New(rand.NewSource(33))
	golden := make([]byte, 32)
	rng.Read(golden)
	parity := c.Encode(golden)

	miscorrected := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		sector := append([]byte(nil), golden...)
		red := append([]byte(nil), parity...)
		dead := rng.Intn(9)
		killDevice(c, rng, sector, red, dead)
		wrong := (dead + 1 + rng.Intn(7)) % 9
		if res := c.DecodeWithDeadDevice(sector, red, wrong); res == Corrected &&
			!bytes.Equal(sector, golden) {
			miscorrected++
		}
	}
	if miscorrected == 0 {
		t.Fatal("expected wrong erasure hints to miscorrect sometimes — " +
			"if this stops happening, the decoder is over-rejecting")
	}
}

func TestChipkillSectorCodecInterfaceCleanPath(t *testing.T) {
	c := mustChipkill(t)
	sector := make([]byte, 32)
	for i := range sector {
		sector[i] = byte(i)
	}
	red := c.Encode(sector)
	if res := c.Decode(sector, red); res != OK {
		t.Fatalf("clean decode = %v", res)
	}
	sector[7] ^= 0x20
	if res := c.Decode(sector, red); res != Corrected {
		t.Fatalf("single error = %v", res)
	}
}
