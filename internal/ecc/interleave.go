package ecc

import "fmt"

// WordCode is a fixed-width binary block code over whole bytes — the shape
// shared by SECDED and SECDAEC — used to build sector codecs by
// interleaving independent codewords across a sector.
type WordCode interface {
	DataBits() int
	CheckBytes() int
	Encode(data []byte) []byte
	Decode(data, check []byte) Result
	// EncodeInto appends the check bytes to dst without allocating when dst
	// has capacity; DecodeInto is the allocation-free decode behind Decode.
	EncodeInto(dst, data []byte) []byte
	DecodeInto(data, check []byte) Result
}

// InterleavedSector protects a sector with consecutive independent
// codewords of an underlying word code.
type InterleavedSector struct {
	name       string
	code       WordCode
	sectorSize int
	words      int
	wordBytes  int
}

// NewInterleavedSector builds a sector codec over sectorBytes-byte sectors
// from the given word code. The word width must be byte-aligned and divide
// the sector.
func NewInterleavedSector(name string, code WordCode, sectorBytes int) (*InterleavedSector, error) {
	bits := code.DataBits()
	if bits%8 != 0 {
		return nil, fmt.Errorf("ecc: word width %d is not byte aligned", bits)
	}
	if (sectorBytes*8)%bits != 0 {
		return nil, fmt.Errorf("ecc: word width %d does not divide sector %dB", bits, sectorBytes)
	}
	return &InterleavedSector{
		name:       name,
		code:       code,
		sectorSize: sectorBytes,
		words:      sectorBytes * 8 / bits,
		wordBytes:  bits / 8,
	}, nil
}

// Name identifies the codec.
func (s *InterleavedSector) Name() string { return s.name }

// SectorBytes reports the protected sector size.
func (s *InterleavedSector) SectorBytes() int { return s.sectorSize }

// RedundancyBytes reports redundancy bytes per sector.
func (s *InterleavedSector) RedundancyBytes() int { return s.words * s.code.CheckBytes() }

// Encode computes per-word check bytes, concatenated in word order.
func (s *InterleavedSector) Encode(sector []byte) []byte {
	return s.EncodeInto(make([]byte, 0, s.RedundancyBytes()), sector)
}

// EncodeInto appends the sector's check bytes to dst and returns the
// extended slice; it does not allocate when dst has capacity.
func (s *InterleavedSector) EncodeInto(dst, sector []byte) []byte {
	if len(sector) != s.sectorSize {
		panic(fmt.Sprintf("ecc: sector size %d, want %d", len(sector), s.sectorSize))
	}
	for w := 0; w < s.words; w++ {
		dst = s.code.EncodeInto(dst, sector[w*s.wordBytes:(w+1)*s.wordBytes])
	}
	return dst
}

// Decode verifies each word, correcting in place; the sector result is the
// worst per-word result.
func (s *InterleavedSector) Decode(sector, redundancy []byte) Result {
	return s.DecodeInto(sector, redundancy)
}

// DecodeInto is the allocation-free decode implementation backing Decode.
func (s *InterleavedSector) DecodeInto(sector, redundancy []byte) Result {
	if len(sector) != s.sectorSize || len(redundancy) != s.RedundancyBytes() {
		panic("ecc: interleaved decode buffer size mismatch")
	}
	worst := OK
	cb := s.code.CheckBytes()
	for w := 0; w < s.words; w++ {
		word := sector[w*s.wordBytes : (w+1)*s.wordBytes]
		chk := redundancy[w*cb : (w+1)*cb]
		if r := s.code.DecodeInto(word, chk); r > worst {
			worst = r
		}
	}
	return worst
}

// NewSECDAECSector builds the SEC-DAEC organization over 32B sectors with
// 64-bit words: adjacent-double correction at SEC-DED-class redundancy.
func NewSECDAECSector(sectorBytes, wordBits int) (*InterleavedSector, error) {
	code, err := NewSECDAEC(wordBits)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("secdaec-%d/%d", wordBits+code.CheckBits(), wordBits)
	return NewInterleavedSector(name, code, sectorBytes)
}

var (
	_ SectorCodec = (*InterleavedSector)(nil)
	_ WordCode    = (*SECDAEC)(nil)
	_ WordCode    = (*SECDED)(nil)
)
