package ecc

import "fmt"

// SECDAEC is a single-error-correcting, double-ADJACENT-error-correcting
// binary code (the SEC-DAEC family; cf. SEC-BADAEC, Song et al., IEEE
// Access 2022). DRAM faults cluster: beam studies show multi-bit upsets
// are overwhelmingly in physically adjacent cells, so correcting adjacent
// pairs at SEC-DED-like redundancy captures most double-bit faults that
// SEC-DED can only detect.
//
// Construction: an H-matrix whose columns are chosen so that all single
// columns and all XORs of adjacent column pairs are distinct and nonzero.
// The decoder maps a syndrome to "no error", "flip bit i", "flip bits
// i,i+1", or "detected".
type SECDAEC struct {
	k       int      // data bits
	r       int      // check bits
	n       int      // total bits
	cols    []uint32 // H-matrix column per codeword position
	actions map[uint32]daecAction

	// Per-byte syndrome tables: [b][v] is the XOR of the H-columns selected
	// by byte value v at byte offset b of the data (resp. check) bits.
	dataTbl [][256]uint32
	chkTbl  [][256]uint32
}

type daecAction struct {
	first  int
	second int // -1 for single-bit corrections
}

// NewSECDAEC constructs a code for the given data width, searching for the
// smallest check width (starting from the SEC-DED width) that admits an
// adjacent-unique column assignment.
func NewSECDAEC(dataBits int) (*SECDAEC, error) {
	if dataBits <= 0 || dataBits > 256 {
		return nil, fmt.Errorf("ecc: unsupported SEC-DAEC width %d", dataBits)
	}
	minR := 0
	for (1 << minR) < dataBits+minR+1 {
		minR++
	}
	for r := minR; r <= minR+4; r++ {
		if c := buildSECDAEC(dataBits, r); c != nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("ecc: no SEC-DAEC construction found for %d data bits", dataBits)
}

// buildSECDAEC greedily assigns columns: data positions first (arbitrary
// non-unit values), then the check positions as unit vectors, verifying
// the adjacent-pair uniqueness constraints as it goes.
func buildSECDAEC(k, r int) *SECDAEC {
	n := k + r
	used := make(map[uint32]bool) // syndromes already spoken for
	cols := make([]uint32, 0, n)

	// The check region is fixed up front: unit-vector columns at positions
	// k..n-1. Reserve their syndromes AND their internal adjacency pairs
	// (e_j ^ e_{j+1}) before any data column is chosen, so the data greedy
	// can never consume a value the check region needs.
	for j := 0; j < r; j++ {
		used[1<<j] = true
	}
	for j := 0; j+1 < r; j++ {
		used[(1<<j)^(1<<(j+1))] = true
	}

	fits := func(c uint32, last bool) bool {
		if c == 0 || used[c] {
			return false
		}
		if len(cols) > 0 {
			pair := cols[len(cols)-1] ^ c
			if pair == 0 || used[pair] {
				return false
			}
		}
		if last {
			// The boundary pair with the first check column (e_0 = 1).
			pair := c ^ 1
			if pair == 0 || used[pair] {
				return false
			}
		}
		return true
	}
	place := func(c uint32) {
		if len(cols) > 0 {
			used[cols[len(cols)-1]^c] = true
		}
		used[c] = true
		cols = append(cols, c)
	}

	// Data columns: scan candidate values in a fixed pseudo-shuffled order
	// (odd multiplier walk) for determinism without adversarial clustering.
	limit := uint32(1) << r
	for i := 0; i < k; i++ {
		placed := false
		for step := uint32(1); step < limit; step++ {
			c := (step*2654435761 + 97) % limit
			if fits(c, i == k-1) {
				place(c)
				placed = true
				break
			}
		}
		if !placed {
			return nil
		}
	}
	// Check columns: everything was pre-reserved, so placement is only
	// bookkeeping (record the boundary and internal pair values as used —
	// they already are — and append the columns).
	for j := 0; j < r; j++ {
		c := uint32(1) << j
		used[cols[len(cols)-1]^c] = true
		cols = append(cols, c)
	}

	code := &SECDAEC{k: k, r: r, n: n, cols: cols, actions: make(map[uint32]daecAction)}
	for i, c := range cols {
		code.actions[c] = daecAction{first: i, second: -1}
	}
	for i := 0; i+1 < n; i++ {
		code.actions[cols[i]^cols[i+1]] = daecAction{first: i, second: i + 1}
	}
	code.buildTables()
	return code
}

// buildTables precomputes the per-byte H-column folds.
func (c *SECDAEC) buildTables() {
	c.dataTbl = make([][256]uint32, (c.k+7)/8)
	for b := range c.dataTbl {
		for v := 0; v < 256; v++ {
			var s uint32
			for j := 0; j < 8; j++ {
				if i := b*8 + j; i < c.k && v>>j&1 == 1 {
					s ^= c.cols[i]
				}
			}
			c.dataTbl[b][v] = s
		}
	}
	c.chkTbl = make([][256]uint32, c.CheckBytes())
	for b := range c.chkTbl {
		for v := 0; v < 256; v++ {
			var s uint32
			for j := 0; j < 8; j++ {
				if i := b*8 + j; i < c.r && v>>j&1 == 1 {
					s ^= c.cols[c.k+i]
				}
			}
			c.chkTbl[b][v] = s
		}
	}
}

// DataBits reports the data width.
func (c *SECDAEC) DataBits() int { return c.k }

// CheckBits reports the redundancy width.
func (c *SECDAEC) CheckBits() int { return c.r }

// CheckBytes reports redundancy storage in whole bytes.
func (c *SECDAEC) CheckBytes() int { return (c.r + 7) / 8 }

// syndrome folds data and check bits through the H-matrix, one
// table-indexed byte at a time.
func (c *SECDAEC) syndrome(data, check []byte) uint32 {
	var s uint32
	for b := range c.dataTbl {
		s ^= c.dataTbl[b][data[b]]
	}
	for b := range c.chkTbl {
		s ^= c.chkTbl[b][check[b]]
	}
	return s
}

// Encode computes the check bits for data (at least DataBits bits).
func (c *SECDAEC) Encode(data []byte) []byte {
	return c.EncodeInto(make([]byte, 0, c.CheckBytes()), data)
}

// EncodeInto appends the check bytes for data to dst and returns the
// extended slice; it does not allocate when dst has capacity.
func (c *SECDAEC) EncodeInto(dst, data []byte) []byte {
	if len(data)*8 < c.k {
		panic(fmt.Sprintf("ecc: SEC-DAEC encode needs %d bits, got %d", c.k, len(data)*8))
	}
	base := len(dst)
	for i := 0; i < c.CheckBytes(); i++ {
		dst = append(dst, 0)
	}
	check := dst[base:]
	s := c.syndrome(data, check)
	// Check columns are unit vectors, so check bit j cancels syndrome bit j.
	for j := 0; j < c.r; j++ {
		if s&(1<<j) != 0 {
			setBit(check, j, 1)
		}
	}
	return dst
}

// Decode verifies and corrects in place: any single-bit error, any
// double-adjacent-bit error. Other patterns with unknown syndromes are
// detected.
func (c *SECDAEC) Decode(data, check []byte) Result { return c.DecodeInto(data, check) }

// DecodeInto is the allocation-free decode implementation backing Decode.
func (c *SECDAEC) DecodeInto(data, check []byte) Result {
	if len(data)*8 < c.k || len(check) < c.CheckBytes() {
		panic("ecc: SEC-DAEC decode buffer too small")
	}
	s := c.syndrome(data, check)
	if s == 0 {
		return OK
	}
	act, ok := c.actions[s]
	if !ok {
		return Detected
	}
	c.flip(data, check, act.first)
	if act.second >= 0 {
		c.flip(data, check, act.second)
	}
	return Corrected
}

func (c *SECDAEC) flip(data, check []byte, pos int) {
	if pos < c.k {
		flipBit(data, pos)
	} else {
		flipBit(check, pos-c.k)
	}
}
