package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// TimelineCell is one simulation's worth of probe tracks, labelled with
// the cell that produced it (typically "config/workload/scheme").
type TimelineCell struct {
	Label  string       `json:"label"`
	Series []SeriesData `json:"series"`
}

// Timeline collects probe snapshots and trace spans from a run (or a
// whole sweep) for export as NDJSON or Chrome trace-event JSON. It is
// safe for concurrent use: bench fans cells out across workers, and the
// span tracer exports from whichever goroutine ends the span. Timeline
// implements Exporter so one tracer can feed both a -trace-out file and
// the timeline.
type Timeline struct {
	mu    sync.Mutex
	cells []TimelineCell
	spans []SpanData
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// AddCell flushes p and records its snapshot under the given label.
// Cells with no observations are still recorded (an empty track list
// says "this cell ran with probes on and saw nothing").
func (t *Timeline) AddCell(label string, p *Probes) {
	p.Flush()
	cell := TimelineCell{Label: label, Series: p.Snapshot()}
	t.mu.Lock()
	t.cells = append(t.cells, cell)
	t.mu.Unlock()
}

// ExportSpan implements Exporter, collecting duration events for the
// trace-event export.
func (t *Timeline) ExportSpan(d SpanData) {
	t.mu.Lock()
	t.spans = append(t.spans, d)
	t.mu.Unlock()
}

// Cells returns the collected cells sorted by label. Completion order
// across sweep workers is scheduling-dependent; sorting keeps every
// export stable for identical inputs.
func (t *Timeline) Cells() []TimelineCell {
	t.mu.Lock()
	out := append([]TimelineCell(nil), t.cells...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Spans returns the collected spans in arrival order.
func (t *Timeline) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanData(nil), t.spans...)
}

// timelineLine is one NDJSON record: exactly one of Series or Span is
// set. Cell labels the series' owning cell; span lines leave it empty.
type timelineLine struct {
	Cell   string      `json:"cell,omitempty"`
	Series *SeriesData `json:"series,omitempty"`
	Span   *SpanData   `json:"span,omitempty"`
}

// WriteNDJSON writes the timeline as newline-delimited JSON: one line
// per (cell, series) pair, then one line per span. This is the format
// cachecraft-report reads back.
func (t *Timeline) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, cell := range t.Cells() {
		for i := range cell.Series {
			if err := enc.Encode(timelineLine{Cell: cell.Label, Series: &cell.Series[i]}); err != nil {
				return err
			}
		}
	}
	for _, sp := range t.Spans() {
		sp := sp
		if err := enc.Encode(timelineLine{Span: &sp}); err != nil {
			return err
		}
	}
	return nil
}

// ReadNDJSON parses a timeline previously written with WriteNDJSON.
func ReadNDJSON(r io.Reader) (*Timeline, error) {
	t := NewTimeline()
	byLabel := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for n := 1; sc.Scan(); n++ {
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var line timelineLine
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			return nil, fmt.Errorf("timeline line %d: %w", n, err)
		}
		switch {
		case line.Series != nil:
			idx, ok := byLabel[line.Cell]
			if !ok {
				idx = len(t.cells)
				byLabel[line.Cell] = idx
				t.cells = append(t.cells, TimelineCell{Label: line.Cell})
			}
			t.cells[idx].Series = append(t.cells[idx].Series, *line.Series)
		case line.Span != nil:
			t.spans = append(t.spans, *line.Span)
		default:
			return nil, fmt.Errorf("timeline line %d: neither series nor span", n)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// TraceEvent is one Chrome trace-event record, the subset of the format
// Perfetto and chrome://tracing load: "C" counter samples (probe
// tracks), "X" complete events (tracer spans), and "M" metadata (track
// naming). Timestamps are microseconds by convention; probe counters
// map one simulated cycle to one microsecond so the cycle axis survives
// the unit.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the JSON-object form of a Chrome trace. Perfetto accepts
// either a bare event array or this object; the object form lets us
// carry the unit convention in otherData.
type TraceFile struct {
	TraceEvents     []TraceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// spanPid is the synthetic "process" that holds wall-clock tracer spans,
// keeping them off the simulated-cycle counter tracks (the two use
// different time bases).
const spanPid = 0

// TraceEvents renders the timeline as Chrome trace events: one process
// per cell carrying its probe counter tracks (ts = simulated cycle), and
// one process of wall-clock span durations (ts = microseconds since the
// trace epoch, one thread row per trace id).
func (t *Timeline) TraceEvents() TraceFile {
	var events []TraceEvent
	for ci, cell := range t.Cells() {
		pid := ci + 1
		events = append(events, TraceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": cell.Label},
		})
		for _, sd := range cell.Series {
			mode, err := ProbeModeByName(sd.Mode)
			if err != nil {
				mode = Sum
			}
			for _, s := range sd.Samples {
				events = append(events, TraceEvent{
					Name: sd.Name, Ph: "C", Ts: float64(s.Cycle), Pid: pid,
					Args: map[string]any{"value": s.Value(mode)},
				})
			}
		}
	}
	spans := t.Spans()
	if len(spans) > 0 {
		events = append(events, TraceEvent{
			Name: "process_name", Ph: "M", Pid: spanPid,
			Args: map[string]any{"name": "spans (wall clock)"},
		})
	}
	// Span timestamps are absolute wall-clock micros; rebase to the
	// earliest span so the track starts near zero, and give each trace id
	// its own thread row in first-seen order.
	var epoch int64
	for i, sp := range spans {
		if i == 0 || sp.Start < epoch {
			epoch = sp.Start
		}
	}
	tids := make(map[string]int)
	for _, sp := range spans {
		tid, ok := tids[sp.Trace]
		if !ok {
			tid = len(tids) + 1
			tids[sp.Trace] = tid
		}
		args := map[string]any{"trace": sp.Trace, "span": sp.Span}
		if sp.Parent != "" {
			args["parent"] = sp.Parent
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		events = append(events, TraceEvent{
			Name: sp.Name, Ph: "X",
			Ts:  float64(sp.Start - epoch),
			Dur: float64(sp.Dur),
			Pid: spanPid, Tid: tid,
			Args: args,
		})
	}
	return TraceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"format": "cachecraft timeline",
			"units":  "counter tracks: ts is simulated cycles; span track: ts is wall-clock microseconds",
		},
	}
}

// WriteTraceEvents writes the timeline as a Chrome trace JSON object,
// loadable at https://ui.perfetto.dev (or chrome://tracing).
func (t *Timeline) WriteTraceEvents(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.TraceEvents())
}

// WriteFile writes the timeline to path, choosing the format from the
// extension: ".json" gets Chrome trace events (for Perfetto), anything
// else gets NDJSON (for cachecraft-report).
func (t *Timeline) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if strings.HasSuffix(path, ".json") {
		err = t.WriteTraceEvents(bw)
	} else {
		err = t.WriteNDJSON(bw)
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Tee fans spans out to several exporters, so one tracer can feed both
// an NDJSON span file and a timeline.
func Tee(exps ...Exporter) Exporter { return teeExporter(exps) }

type teeExporter []Exporter

func (t teeExporter) ExportSpan(d SpanData) {
	for _, e := range t {
		e.ExportSpan(d)
	}
}
