package obs

import "sort"

// Phase analysis condenses a probe track into the two questions the
// paper's temporal argument turns on: when does the metric settle
// (warmup vs steady state), and where does it burst (redundancy traffic
// spikes). Both are pure functions of SeriesData, so cachecraft-report
// can run them on a timeline file long after the simulation is gone.

// PhaseSummary splits a series at the cycle where it first settles near
// its steady-state level and reports the mean on each side.
type PhaseSummary struct {
	Series      string  // track name
	Samples     int     // total samples analyzed
	WarmupEnd   uint64  // first cycle of the steady phase
	WarmupMean  float64 // mean sample value before WarmupEnd
	SteadyMean  float64 // mean sample value from WarmupEnd on
	WarmupCount int     // samples in the warmup phase
	SteadyCount int     // samples in the steady phase
}

// AnalyzePhases computes a warmup/steady split for the series. The
// steady level is estimated from the final half of the samples; the
// warmup boundary is the first sample within 10% (or an absolute 0.02,
// whichever is looser) of that level. It reports ok=false when the
// series has fewer than 4 samples — too short to call anything steady.
func AnalyzePhases(d SeriesData) (PhaseSummary, bool) {
	vals := d.Values()
	n := len(vals)
	if n < 4 {
		return PhaseSummary{Series: d.Name, Samples: n}, false
	}
	steady := mean(vals[n/2:])
	tol := 0.1 * abs(steady)
	if tol < 0.02 {
		tol = 0.02
	}
	boundary := n / 2 // never later than the estimation region's start
	for i, v := range vals[:n/2] {
		if abs(v-steady) <= tol {
			boundary = i
			break
		}
	}
	out := PhaseSummary{
		Series:      d.Name,
		Samples:     n,
		WarmupEnd:   d.Samples[boundary].Cycle,
		WarmupMean:  mean(vals[:boundary]),
		SteadyMean:  mean(vals[boundary:]),
		WarmupCount: boundary,
		SteadyCount: n - boundary,
	}
	return out, true
}

// Burst is a contiguous run of samples well above the series' typical
// level.
type Burst struct {
	StartCycle uint64  // first bursting sample's cycle
	EndCycle   uint64  // first cycle after the last bursting sample
	Peak       float64 // highest sample value inside the burst
	Baseline   float64 // the series' median sample value
}

// DetectBursts finds runs of samples exceeding twice the series'
// median — the redundancy-traffic signature CacheCraft's reconstructed
// caching is meant to flatten. A series whose median is zero (mostly
// idle) uses half its peak as the threshold instead, so a single spike
// on a quiet track still registers.
func DetectBursts(d SeriesData) []Burst {
	vals := d.Values()
	if len(vals) == 0 {
		return nil
	}
	med := median(vals)
	threshold := 2 * med
	if med == 0 {
		peak := 0.0
		for _, v := range vals {
			if v > peak {
				peak = v
			}
		}
		if peak == 0 {
			return nil
		}
		threshold = peak / 2
	}
	var bursts []Burst
	open := false
	for i, v := range vals {
		s := d.Samples[i]
		if v > threshold {
			if !open {
				bursts = append(bursts, Burst{StartCycle: s.Cycle, Baseline: med})
				open = true
			}
			b := &bursts[len(bursts)-1]
			if v > b.Peak {
				b.Peak = v
			}
			b.EndCycle = s.Cycle + d.Window
		} else {
			open = false
		}
	}
	return bursts
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

func median(vs []float64) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
