// Package obs is the repository's telemetry layer: a concurrent metrics
// registry that renders Prometheus text exposition, and a lightweight span
// tracer with an NDJSON exporter (trace.go). It depends only on the
// standard library and internal/stats, so every layer of the system — the
// simulator, the evaluation harness, the HTTP service — can report through
// the same substrate without pulling in third-party clients.
//
// The registry is pull-based: instruments are registered once (Counter,
// Gauge, Histogram, and their label-carrying Vec forms), mutated from any
// goroutine, and rendered on demand with WritePrometheus. Values owned by
// other subsystems (e.g. bench.Runner's accounting) are exposed through
// CounterFunc/GaugeFunc collectors that sample at render time, so the
// exposition can never drift from the owner's source of truth.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"cachecraft/internal/stats"
)

// DefBuckets are the default latency histogram bounds, in seconds. They
// span sub-millisecond warm cache hits through multi-second cold
// simulations.
var DefBuckets = []float64{.001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments (or with a negative delta decrements) the gauge.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over float64 samples (typically
// seconds), safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; implicit +Inf bucket follows
	counts []uint64  // len(bounds)+1
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[idx]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the total of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts (ending with the +Inf total),
// the sample sum, and the sample count.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.count
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (metric, label values) time series.
type series struct {
	labels []string // values aligned with the family's label keys
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name: HELP/TYPE metadata plus its series (or a
// sampling function for externally-owned values).
type family struct {
	name      string
	help      string
	kind      metricKind
	labelKeys []string
	buckets   []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	order  []string // series keys in registration order (rendering sorts)

	counterFn func() uint64  // CounterFunc families
	gaugeFn   func() float64 // GaugeFunc families
}

// Registry holds metric families and renders them as Prometheus text
// exposition. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register returns the family for name, creating it on first use. A
// re-registration must agree on kind and label keys; a mismatch is a
// programming error and panics.
func (r *Registry) register(name, help string, kind metricKind, labelKeys []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labelKeys, labelKeys) {
			panic(fmt.Sprintf("obs: conflicting registration of %q", name))
		}
		return f
	}
	f := &family{
		name:      name,
		help:      help,
		kind:      kind,
		labelKeys: append([]string(nil), labelKeys...),
		buckets:   append([]float64(nil), buckets...),
		series:    make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the series for the given label values, creating it on first
// use. Arity must match the family's label keys.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labelKeys), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: append([]string(nil), values...)}
	switch f.kind {
	case counterKind:
		s.c = &Counter{}
	case gaugeKind:
		s.g = &Gauge{}
	case histogramKind:
		bounds := append([]float64(nil), f.buckets...)
		sort.Float64s(bounds)
		s.h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, counterKind, nil, nil).get(nil).c
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, gaugeKind, nil, nil).get(nil).g
}

// Histogram registers (or fetches) an unlabelled histogram with the given
// bucket upper bounds (DefBuckets if none are given).
func (r *Registry) Histogram(name, help string, buckets ...float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return r.register(name, help, histogramKind, nil, buckets).get(nil).h
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a counter family keyed by the given label names.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, counterKind, labelKeys, nil)}
}

// With returns the counter for the given label values (created on first
// use). Arity must match the registered label keys.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).c }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family keyed by the given label names.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, gaugeKind, labelKeys, nil)}
}

// With returns the gauge for the given label values (created on first
// use). Arity must match the registered label keys.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).g }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family keyed by the given label
// names, with the given bucket upper bounds (DefBuckets if nil).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, histogramKind, labelKeys, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).h }

// CounterFunc registers a counter whose value is sampled from fn at render
// time — for monotonic values owned by another subsystem. The name must
// not already be registered.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.fams[name]; ok {
		panic(fmt.Sprintf("obs: conflicting registration of %q", name))
	}
	r.fams[name] = &family{name: name, help: help, kind: counterKind, counterFn: fn}
}

// GaugeFunc registers a gauge sampled from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.fams[name]; ok {
		panic(fmt.Sprintf("obs: conflicting registration of %q", name))
	}
	r.fams[name] = &family{name: name, help: help, kind: gaugeKind, gaugeFn: fn}
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries snapshots a family's series in label-value order.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		out = append(out, f.series[key])
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].labels, "\x00") < strings.Join(out[j].labels, "\x00")
	})
	return out
}

// labelString renders {k1="v1",...} for the given keys/values, with an
// optional extra pair appended (used for histogram le labels). It returns
// "" when there are no labels at all.
func labelString(keys, values []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabel(values[i]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format
// (version 0.0.4), which defines exactly three escapes inside label
// values: backslash, double-quote, and line feed. Anything else — tabs,
// high bytes — passes through verbatim; Go's %q must not be used here
// because it both invents escapes the format does not define and
// double-escapes any pre-escaped backslash.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with one # HELP
// and # TYPE line, series sorted by label values, histograms with
// cumulative le buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		switch {
		case f.counterFn != nil:
			fmt.Fprintf(w, "%s %d\n", f.name, f.counterFn())
		case f.gaugeFn != nil:
			fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gaugeFn()))
		default:
			for _, s := range f.sortedSeries() {
				switch f.kind {
				case counterKind:
					fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labelKeys, s.labels, "", ""), s.c.Value())
				case gaugeKind:
					fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labelKeys, s.labels, "", ""), s.g.Value())
				case histogramKind:
					cum, sum, count := s.h.snapshot()
					for i, c := range cum {
						le := "+Inf"
						if i < len(s.h.bounds) {
							le = formatFloat(s.h.bounds[i])
						}
						fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labelKeys, s.labels, "le", le), c)
					}
					fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labelKeys, s.labels, "", ""), formatFloat(sum))
					fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labelKeys, s.labels, "", ""), count)
				}
			}
		}
	}
}

// Snapshot flattens the registry into a stats.Counters set: one entry per
// counter/gauge series (negative gauges clamp to zero, since Counters is
// unsigned) and one <name>_count entry per histogram series. Func-backed
// collectors are sampled, so a snapshot agrees with a concurrent
// WritePrometheus render. Families merge into the result via
// stats.Counters.Merge, preserving name order.
func (r *Registry) Snapshot() *stats.Counters {
	out := stats.NewCounters()
	for _, f := range r.sortedFamilies() {
		out.Merge(f.snapshotCounters())
	}
	return out
}

func (f *family) snapshotCounters() *stats.Counters {
	c := stats.NewCounters()
	switch {
	case f.counterFn != nil:
		c.Set(f.name, f.counterFn())
	case f.gaugeFn != nil:
		c.Set(f.name, clampUint(f.gaugeFn()))
	default:
		for _, s := range f.sortedSeries() {
			ls := labelString(f.labelKeys, s.labels, "", "")
			switch f.kind {
			case counterKind:
				c.Set(f.name+ls, s.c.Value())
			case gaugeKind:
				v := s.g.Value()
				if v < 0 {
					v = 0
				}
				c.Set(f.name+ls, uint64(v))
			case histogramKind:
				c.Set(f.name+"_count"+ls, s.h.Count())
			}
		}
	}
	return c
}

func clampUint(v float64) uint64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return uint64(v)
}
