package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func unmarshalFile(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

func readFileNDJSON(path string) (*Timeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadNDJSON(f)
}

func sampleTimeline() *Timeline {
	tl := NewTimeline()
	p := NewProbes(100)
	sum := p.Series("dram.bytes.demand", Sum)
	mean := p.Series("l2.bank0.hit_rate", Mean)
	for cy := uint64(0); cy < 1000; cy += 7 {
		sum.Add(cy, 32)
		mean.Add(cy, float64(cy%2))
	}
	tl.AddCell("base/stream/cachecraft", p)

	q := NewProbes(100)
	q.Series("sm.issue", Sum).Add(5, 4)
	tl.AddCell("base/scan/none", q)

	tl.ExportSpan(SpanData{
		Trace: "t1", Span: "s1", Name: "simulate",
		Start: 1_000_000, Dur: 2500,
		Attrs: map[string]any{"workload": "stream"},
	})
	tl.ExportSpan(SpanData{
		Trace: "t1", Span: "s2", Parent: "s1", Name: "store.put",
		Start: 1_002_000, Dur: 40,
	})
	return tl
}

// TestNDJSONRoundTrip: WriteNDJSON → ReadNDJSON reproduces every cell
// (sorted by label — the canonical order) and every span.
func TestNDJSONRoundTrip(t *testing.T) {
	tl := sampleTimeline()
	var buf bytes.Buffer
	if err := tl.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Cells(), tl.Cells(); !reflect.DeepEqual(got, want) {
		t.Fatalf("cells round-tripped as\n%+v\nwant\n%+v", got, want)
	}
	gotSpans, wantSpans := back.Spans(), tl.Spans()
	if len(gotSpans) != len(wantSpans) {
		t.Fatalf("spans = %d, want %d", len(gotSpans), len(wantSpans))
	}
	for i := range gotSpans {
		if gotSpans[i].Span != wantSpans[i].Span || gotSpans[i].Name != wantSpans[i].Name ||
			gotSpans[i].Start != wantSpans[i].Start || gotSpans[i].Dur != wantSpans[i].Dur {
			t.Fatalf("span %d round-tripped as %+v, want %+v", i, gotSpans[i], wantSpans[i])
		}
	}
}

// TestTraceEventSchemaRoundTrip: the exported bytes must parse back as a
// Chrome trace-event JSON object whose every event is well-formed — the
// schema contract Perfetto relies on.
func TestTraceEventSchemaRoundTrip(t *testing.T) {
	tl := sampleTimeline()
	var buf bytes.Buffer
	if err := tl.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var back TraceFile
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(back.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	named := map[int]bool{} // pids carrying a process_name metadata event
	var counters, spans int
	for i, ev := range back.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" {
				t.Fatalf("event %d: metadata %q, want process_name", i, ev.Name)
			}
			if name, _ := ev.Args["name"].(string); name == "" {
				t.Fatalf("event %d: process_name without a name arg: %+v", i, ev)
			}
			named[ev.Pid] = true
		case "C":
			counters++
			if _, ok := ev.Args["value"]; !ok {
				t.Fatalf("event %d: counter without a value arg: %+v", i, ev)
			}
			if !named[ev.Pid] {
				t.Fatalf("event %d: counter on unnamed pid %d", i, ev.Pid)
			}
			if ev.Pid == spanPid {
				t.Fatalf("event %d: counter on the span pid", i)
			}
		case "X":
			spans++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("event %d: negative span timing: %+v", i, ev)
			}
			if ev.Pid != spanPid {
				t.Fatalf("event %d: span on pid %d, want %d", i, ev.Pid, spanPid)
			}
		default:
			t.Fatalf("event %d: unknown phase %q", i, ev.Ph)
		}
	}
	if counters == 0 || spans != 2 {
		t.Fatalf("exported %d counters and %d spans, want >0 and 2", counters, spans)
	}
	// The earliest span is rebased to the trace epoch.
	var minTs = -1.0
	for _, ev := range back.TraceEvents {
		if ev.Ph == "X" && (minTs < 0 || ev.Ts < minTs) {
			minTs = ev.Ts
		}
	}
	if minTs != 0 {
		t.Fatalf("earliest span ts = %v, want 0 (rebased to epoch)", minTs)
	}
}

// TestWriteFilePicksFormatByExtension: .json means Chrome trace events,
// anything else means NDJSON.
func TestWriteFilePicksFormatByExtension(t *testing.T) {
	tl := sampleTimeline()
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "tl.json")
	if err := tl.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := unmarshalFile(jsonPath, &tf); err != nil {
		t.Fatalf(".json file is not a trace-event object: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal(".json file holds no trace events")
	}

	ndPath := filepath.Join(dir, "tl.ndjson")
	if err := tl.WriteFile(ndPath); err != nil {
		t.Fatal(err)
	}
	back, err := readFileNDJSON(ndPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells()) != 2 {
		t.Fatalf("ndjson file holds %d cells, want 2", len(back.Cells()))
	}
}

// TestDeterministicExportAcrossAddOrder: cells are sorted by label at
// export, so sweep completion order cannot change the file bytes.
func TestDeterministicExportAcrossAddOrder(t *testing.T) {
	build := func(reverse bool) []byte {
		tl := NewTimeline()
		labels := []string{"a/stream/none", "b/scan/none"}
		if reverse {
			labels[0], labels[1] = labels[1], labels[0]
		}
		for _, lab := range labels {
			p := NewProbes(10)
			p.Series("sm.issue", Sum).Add(1, 1)
			tl.AddCell(lab, p)
		}
		var buf bytes.Buffer
		if err := tl.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(false), build(true)) {
		t.Fatal("export bytes depend on cell arrival order")
	}
}
