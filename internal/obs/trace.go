package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an int attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Uint64 builds a uint64 attribute.
func Uint64(k string, v uint64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a bool attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// SpanData is the exported form of a finished span: one NDJSON line.
type SpanData struct {
	Trace  string         `json:"trace"`
	Span   string         `json:"span"`
	Parent string         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Start  int64          `json:"start_us"` // wall clock, microseconds since epoch
	Dur    int64          `json:"dur_us"`   // monotonic duration, microseconds
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Exporter receives finished spans. Implementations must be safe for
// concurrent use.
type Exporter interface {
	ExportSpan(SpanData)
}

// NDJSONExporter writes one JSON object per span, newline-delimited.
type NDJSONExporter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewNDJSONExporter wraps w. The exporter serializes writes, so w needs no
// locking of its own.
func NewNDJSONExporter(w io.Writer) *NDJSONExporter {
	return &NDJSONExporter{w: w}
}

// ExportSpan writes the span as one JSON line. Encoding errors are
// dropped: telemetry must never fail the traced operation.
func (e *NDJSONExporter) ExportSpan(d SpanData) {
	e.mu.Lock()
	defer e.mu.Unlock()
	enc := json.NewEncoder(e.w)
	_ = enc.Encode(d)
}

// Tracer creates spans and hands finished ones to its exporter. A nil
// *Tracer is a valid no-op tracer: Start returns the context unchanged and
// a nil span, and every *Span method is nil-safe, so instrumented hot
// paths pay only a nil check when tracing is off.
type Tracer struct {
	exp  Exporter
	base uint64
	seq  atomic.Uint64
}

// NewTracer builds a tracer exporting to exp. A nil exporter yields a
// usable tracer that discards spans (useful in tests).
func NewTracer(exp Exporter) *Tracer {
	return &Tracer{exp: exp, base: processID}
}

// processID distinguishes IDs across processes writing to a shared sink.
var processID = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}()

func (t *Tracer) newID() string {
	return fmt.Sprintf("%08x-%06x", uint32(t.base), t.seq.Add(1))
}

// NewID returns a short random hex ID, suitable for request IDs.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", processID)
	}
	return hex.EncodeToString(b[:])
}

// Span is one timed operation. Spans are created by Tracer.Start and
// exported by End. All methods are nil-safe.
type Span struct {
	t       *Tracer
	traceID string
	id      string
	parent  string
	name    string
	start   time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

type spanCtxKey struct{}

// SpanFromContext returns the span stored in ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// ContextWithSpan returns ctx carrying sp as the current span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// Start begins a span named name, parented to the span in ctx (if any),
// and returns a derived context carrying the new span. On a nil tracer it
// returns ctx unchanged and a nil span.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sp := &Span{t: t, id: t.newID(), name: name, start: time.Now()}
	if parent := SpanFromContext(ctx); parent != nil {
		sp.traceID = parent.traceID
		sp.parent = parent.id
	} else {
		sp.traceID = t.newID()
	}
	sp.SetAttr(attrs...)
	return ContextWithSpan(ctx, sp), sp
}

// SetAttr adds annotations to the span. No-op on a nil or ended span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, len(attrs))
	}
	for _, a := range attrs {
		s.attrs[a.Key] = a.Value
	}
}

// End finishes the span and exports it. Safe to call on a nil span; a
// second End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	if s.t.exp == nil {
		return
	}
	s.t.exp.ExportSpan(SpanData{
		Trace:  s.traceID,
		Span:   s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start.UnixMicro(),
		Dur:    dur.Microseconds(),
		Attrs:  attrs,
	})
}
