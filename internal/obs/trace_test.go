package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func readSpans(t *testing.T, buf *bytes.Buffer) []SpanData {
	t.Helper()
	var out []SpanData
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var d SpanData
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad NDJSON span line %q: %v", sc.Text(), err)
		}
		out = append(out, d)
	}
	return out
}

func TestSpanExportNDJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewNDJSONExporter(&buf))

	ctx, root := tr.Start(context.Background(), "cell",
		String("workload", "stream"), Int("sms", 4))
	_, child := tr.Start(ctx, "simulate")
	time.Sleep(time.Millisecond)
	child.SetAttr(Bool("ok", true))
	child.End()
	root.End()

	spans := readSpans(t, &buf)
	if len(spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(spans))
	}
	// Children export before parents (End order).
	c, r := spans[0], spans[1]
	if c.Name != "simulate" || r.Name != "cell" {
		t.Fatalf("span order/names wrong: %q then %q", c.Name, r.Name)
	}
	if c.Trace != r.Trace {
		t.Fatalf("child trace %q != root trace %q", c.Trace, r.Trace)
	}
	if c.Parent != r.Span {
		t.Fatalf("child parent %q != root span id %q", c.Parent, r.Span)
	}
	if r.Parent != "" {
		t.Fatalf("root has parent %q", r.Parent)
	}
	if c.Dur < 0 || r.Dur < c.Dur {
		t.Fatalf("durations inconsistent: child %dus, root %dus", c.Dur, r.Dur)
	}
	if r.Attrs["workload"] != "stream" || r.Attrs["sms"] != float64(4) {
		t.Fatalf("root attrs = %v", r.Attrs)
	}
	if c.Attrs["ok"] != true {
		t.Fatalf("child attrs = %v", c.Attrs)
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	ctx2, sp := tr.Start(ctx, "anything", String("k", "v"))
	if ctx2 != ctx {
		t.Fatal("nil tracer modified the context")
	}
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	// Every span method must be a safe no-op on nil.
	sp.SetAttr(Int("n", 1))
	sp.End()
	sp.End()
	if got := SpanFromContext(ctx2); got != nil {
		t.Fatalf("nil tracer leaked a span into the context: %v", got)
	}
}

func TestDoubleEndExportsOnce(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewNDJSONExporter(&buf))
	_, sp := tr.Start(context.Background(), "once")
	sp.End()
	sp.End()
	if n := len(readSpans(t, &buf)); n != 1 {
		t.Fatalf("double End exported %d spans, want 1", n)
	}
}

func TestSeparateRootsGetSeparateTraces(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewNDJSONExporter(&buf))
	_, a := tr.Start(context.Background(), "a")
	_, b := tr.Start(context.Background(), "b")
	a.End()
	b.End()
	spans := readSpans(t, &buf)
	if spans[0].Trace == spans[1].Trace {
		t.Fatalf("independent roots share trace id %q", spans[0].Trace)
	}
	if spans[0].Span == spans[1].Span {
		t.Fatalf("span ids collide: %q", spans[0].Span)
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewNDJSONExporter(&buf))
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ctx, root := tr.Start(context.Background(), "root")
				_, child := tr.Start(ctx, "child")
				child.SetAttr(Int("j", j))
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	if n := len(readSpans(t, &buf)); n != 32*100*2 {
		t.Fatalf("exported %d spans, want %d", n, 32*100*2)
	}
}

func TestNewIDIsUniqueEnough(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 || strings.ContainsAny(id, " {}\"") {
			t.Fatalf("malformed id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}
