package obs

import (
	"bufio"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second family").Add(7)
	c := r.CounterVec("a_total", "first family", "endpoint", "code")
	c.With("sweep", "200").Add(2)
	c.With("simulate", "200").Inc()
	g := r.Gauge("depth", "a gauge")
	g.Set(3)

	var buf strings.Builder
	r.WritePrometheus(&buf)
	want := `# HELP a_total first family
# TYPE a_total counter
a_total{endpoint="simulate",code="200"} 1
a_total{endpoint="sweep",code="200"} 2
# HELP b_total second family
# TYPE b_total counter
b_total 7
# HELP depth a gauge
# TYPE depth gauge
depth 3
`
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)

	var buf strings.Builder
	r.WritePrometheus(&buf)
	want := `# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 2
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 10.6
lat_seconds_count 4
`
	if buf.String() != want {
		t.Fatalf("histogram exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
	if h.Count() != 4 || h.Sum() != 10.6 {
		t.Fatalf("count/sum = %d/%v", h.Count(), h.Sum())
	}
}

// TestHistogramEdgeExposition pins the exposition of the two degenerate
// histogram shapes: a histogram that has observed nothing (all-zero
// cumulative buckets, zero sum and count) and one with a single
// observation (every bucket at or above it reads 1, and +Inf equals
// _count). Both are required by the 0.0.4 text format — scrapers divide
// by _count and difference adjacent buckets, so a missing series or a
// non-cumulative rendering silently corrupts rates.
func TestHistogramEdgeExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_seconds", "never observed", 0.1, 1)
	r.Histogram("single_seconds", "observed once", 0.1, 1).Observe(0.5)

	var buf strings.Builder
	r.WritePrometheus(&buf)
	want := `# HELP empty_seconds never observed
# TYPE empty_seconds histogram
empty_seconds_bucket{le="0.1"} 0
empty_seconds_bucket{le="1"} 0
empty_seconds_bucket{le="+Inf"} 0
empty_seconds_sum 0
empty_seconds_count 0
# HELP single_seconds observed once
# TYPE single_seconds histogram
single_seconds_bucket{le="0.1"} 0
single_seconds_bucket{le="1"} 1
single_seconds_bucket{le="+Inf"} 1
single_seconds_sum 0.5
single_seconds_count 1
`
	if buf.String() != want {
		t.Fatalf("edge-histogram exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
	parseExposition(t, buf.String())
}

// TestLabelValueEscaping pins the three escapes the text format defines
// inside label values — backslash, double-quote, and line feed — and
// nothing else. The old renderer pre-replaced newlines and then quoted
// with %q, double-escaping the backslash (rendering \\n instead of \n)
// and inventing escapes like \t that the format does not define.
func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("esc_total", "escaping", "path")
	c.With("a\nb").Inc()
	c.With(`back\slash`).Add(2)
	c.With(`quo"te`).Add(3)
	c.With("tab\there").Add(4)

	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`esc_total{path="a\nb"} 1`,
		`esc_total{path="back\\slash"} 2`,
		`esc_total{path="quo\"te"} 3`,
		"esc_total{path=\"tab\there\"} 4", // tab passes through verbatim
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, `\\n`) {
		t.Fatalf("newline double-escaped:\n%s", out)
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.CounterFunc("sampled_total", "sampled", func() uint64 { return n })
	r.GaugeFunc("inflight", "live", func() float64 { return 2.5 })
	n = 41

	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE sampled_total counter\nsampled_total 41\n",
		"# TYPE inflight gauge\ninflight 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "x but different")
}

// parseExposition is a minimal exposition-format validator: every sample
// line must be preceded by HELP and TYPE for its family, and each series
// (name + label set, for the base metric name) must appear exactly once.
// It returns the series keys in output order.
func parseExposition(t *testing.T, text string) []string {
	t.Helper()
	help := map[string]bool{}
	typed := map[string]string{}
	seen := map[string]bool{}
	var order []string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			help[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch f[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment %q", line)
		}
		// Sample line: name{labels} value | name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		key := line[:sp]
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
			}
		}
		if !help[base] || typed[base] == "" {
			t.Fatalf("sample %q has no preceding HELP/TYPE for %q", line, base)
		}
		if seen[key] {
			t.Fatalf("duplicate series %q", key)
		}
		seen[key] = true
		order = append(order, key)
	}
	return order
}

func TestExpositionParsesAndIsStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "runs").Add(3)
	r.CounterVec("req_total", "requests", "endpoint").With("simulate").Inc()
	r.HistogramVec("req_seconds", "latency", []float64{0.1, 1}, "endpoint").With("sweep").Observe(0.2)
	r.GaugeFunc("queue", "depth", func() float64 { return 1 })

	var a, b strings.Builder
	r.WritePrometheus(&a)
	order := parseExposition(t, a.String())
	if len(order) == 0 {
		t.Fatal("no samples rendered")
	}
	r.WritePrometheus(&b)
	if a.String() != b.String() {
		t.Fatalf("two renders of an unchanged registry differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestSnapshotMatchesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "runs").Add(5)
	r.CounterVec("req_total", "requests", "endpoint").With("sweep").Add(2)
	g := r.Gauge("temp", "can go negative")
	g.Set(-4)
	r.Histogram("lat_seconds", "latency", 1).Observe(0.5)
	r.CounterFunc("fn_total", "sampled", func() uint64 { return 9 })

	snap := r.Snapshot()
	for name, want := range map[string]uint64{
		"runs_total":                  5,
		`req_total{endpoint="sweep"}`: 2,
		"temp":                        0, // clamped: Counters is unsigned
		"lat_seconds_count":           1,
		"fn_total":                    9,
	} {
		if got := snap.Get(name); got != want {
			t.Fatalf("snapshot[%s] = %d, want %d\n%s", name, got, want, snap)
		}
	}
	if names := snap.Names(); len(names) != 5 {
		t.Fatalf("snapshot has %d entries, want 5: %v", len(names), names)
	}
}

// TestRegistryRace hammers counters, gauges, histograms, and the renderer
// from 32 goroutines; run under -race this is the concurrency contract.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("ops_total", "ops", "kind")
	g := r.Gauge("level", "level")
	hv := r.HistogramVec("dur_seconds", "durations", []float64{0.001, 0.01, 0.1}, "kind")
	r.GaugeFunc("fn", "fn", func() float64 { return float64(g.Value()) })

	const goroutines = 32
	const iters = 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kind := fmt.Sprintf("k%d", i%4)
			for j := 0; j < iters; j++ {
				cv.With(kind).Inc()
				g.Add(1)
				hv.With(kind).Observe(float64(j) / 1e4)
				if j%100 == 0 {
					var sink strings.Builder
					r.WritePrometheus(&sink)
					r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()

	var total uint64
	for i := 0; i < 4; i++ {
		total += cv.With(fmt.Sprintf("k%d", i)).Value()
	}
	if total != goroutines*iters {
		t.Fatalf("lost increments: %d, want %d", total, goroutines*iters)
	}
	if g.Value() != goroutines*iters {
		t.Fatalf("gauge = %d, want %d", g.Value(), goroutines*iters)
	}
	var h uint64
	for i := 0; i < 4; i++ {
		h += hv.With(fmt.Sprintf("k%d", i)).Count()
	}
	if h != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", h, goroutines*iters)
	}
}

func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("worker_leases", "live leases by worker", "worker")
	v.With("w1").Add(2)
	v.With("w2").Add(1)
	v.With("w1").Add(-1)
	// Same label value resolves to the same gauge, so deltas accumulate.
	if got := v.With("w1").Value(); got != 1 {
		t.Fatalf("w1 = %d, want 1", got)
	}
	var buf strings.Builder
	r.WritePrometheus(&buf)
	want := `# HELP worker_leases live leases by worker
# TYPE worker_leases gauge
worker_leases{worker="w1"} 1
worker_leases{worker="w2"} 1
`
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}
