package obs

import (
	"fmt"
	"sync"
)

// ProbeMode selects how a Series condenses the observations that land in
// one sampling window into a single sample value.
type ProbeMode int

const (
	// Sum reports the total of all values observed in the window —
	// bytes moved, requests issued, lines filled.
	Sum ProbeMode = iota
	// Mean reports the average of all values observed in the window —
	// hit rates (Add 1 for a hit, 0 for a miss), occupancies, latencies.
	Mean
)

// String returns the wire name of the mode ("sum" or "mean").
func (m ProbeMode) String() string {
	if m == Mean {
		return "mean"
	}
	return "sum"
}

// ProbeModeByName is the inverse of ProbeMode.String.
func ProbeModeByName(s string) (ProbeMode, error) {
	switch s {
	case "sum":
		return Sum, nil
	case "mean":
		return Mean, nil
	}
	return 0, fmt.Errorf("unknown probe mode %q", s)
}

// Sample is one condensed sampling window. Cycle is the window's start
// cycle; Sum and Count are the raw accumulators, so samples can be merged
// losslessly during decimation and the mode-appropriate value recomputed
// at any time.
type Sample struct {
	Cycle uint64  `json:"cycle"`
	Sum   float64 `json:"sum"`
	Count uint64  `json:"count"`
}

// Value reports the sample under the given mode: the window total for
// Sum, the per-observation average for Mean (0 when the window is empty).
func (s Sample) Value(mode ProbeMode) float64 {
	if mode == Mean {
		if s.Count == 0 {
			return 0
		}
		return s.Sum / float64(s.Count)
	}
	return s.Sum
}

// DefaultProbeDepth is the per-series sample capacity. The buffer is
// preallocated once; when a run outlives depth windows, adjacent samples
// merge pairwise and the window doubles, so a series of any run length
// costs a fixed amount of memory and its Add path never allocates.
const DefaultProbeDepth = 512

// Series is one probe track: a preallocated sample buffer fed by
// synchronous Add calls at component probe points. Observations falling
// in the same window accumulate into one pending sample; a window closes
// when an observation arrives for a later cycle (cycles at probe points
// are monotonically non-decreasing — the event engine runs in cycle
// order) or when Flush is called.
//
// All methods are nil-safe: components hold *Series fields that stay nil
// when probes are off, so the off cost is one predictable branch per
// probe point — the same contract internal/audit's hooks follow.
//
// Series is not safe for concurrent use; each simulation owns its Probes.
type Series struct {
	name    string
	mode    ProbeMode
	base    uint64 // configured window, cycles
	window  uint64 // current window after decimation (base × 2^k)
	samples []Sample
	cur     Sample
	curEnd  uint64 // first cycle outside the pending window
	open    bool   // cur holds observations
}

// Name reports the series' registered name.
func (s *Series) Name() string { return s.name }

// Mode reports the series' aggregation mode.
func (s *Series) Mode() ProbeMode { return s.mode }

// Add records one observation at the given cycle. Nil-safe and
// allocation-free: the sample buffer is preallocated and decimation
// merges in place.
func (s *Series) Add(cycle uint64, v float64) {
	if s == nil {
		return
	}
	if s.open && cycle >= s.curEnd {
		s.closeWindow()
	}
	if !s.open {
		start := cycle - cycle%s.window
		s.cur = Sample{Cycle: start}
		s.curEnd = start + s.window
		s.open = true
	}
	s.cur.Sum += v
	s.cur.Count++
}

// closeWindow appends the pending sample, decimating first if the buffer
// is full.
func (s *Series) closeWindow() {
	if len(s.samples) == cap(s.samples) {
		s.decimate()
	}
	s.samples = append(s.samples, s.cur)
	s.open = false
}

// decimate halves the buffer by merging adjacent sample pairs (sums and
// counts add; the pair keeps the first sample's cycle) and doubles the
// window. The merge is a pure function of the samples already taken, so
// two identical runs decimate identically — downsampling cannot break
// the determinism guarantee.
func (s *Series) decimate() {
	n := len(s.samples)
	half := (n + 1) / 2
	for i := 0; i < half; i++ {
		m := s.samples[2*i]
		if 2*i+1 < n {
			o := s.samples[2*i+1]
			m.Sum += o.Sum
			m.Count += o.Count
		}
		s.samples[i] = m
	}
	s.samples = s.samples[:half]
	s.window *= 2
}

// Flush closes the pending window, if any. Call once at end of run; a
// series that never observed anything flushes to zero samples.
func (s *Series) Flush() {
	if s == nil || !s.open {
		return
	}
	s.closeWindow()
}

// Snapshot returns the series' data for export. The samples slice is
// copied so the caller may outlive the Series.
func (s *Series) Snapshot() SeriesData {
	out := SeriesData{
		Name:       s.name,
		Mode:       s.mode.String(),
		Window:     s.window,
		BaseWindow: s.base,
		Samples:    append([]Sample(nil), s.samples...),
	}
	return out
}

// SeriesData is the exportable form of one probe track. Window is the
// effective cycles-per-sample after any decimation; BaseWindow is the
// window the probes were configured with.
type SeriesData struct {
	Name       string   `json:"name"`
	Mode       string   `json:"mode"`
	Window     uint64   `json:"window"`
	BaseWindow uint64   `json:"base_window"`
	Samples    []Sample `json:"samples"`
}

// Values reports the mode-adjusted value of every sample, in order.
func (d SeriesData) Values() []float64 {
	mode, err := ProbeModeByName(d.Mode)
	if err != nil {
		mode = Sum
	}
	out := make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.Value(mode)
	}
	return out
}

// Probes is a simulation's set of probe tracks, created once before the
// run and handed to components via their SetProbes hooks. Registration
// is guarded by a mutex (bench fans simulations out across goroutines,
// and each simulation registers its series at construction time), but
// Series.Add itself is unsynchronized — each engine is single-threaded.
type Probes struct {
	window uint64
	depth  int

	mu     sync.Mutex
	names  []string
	series map[string]*Series
}

// NewProbes returns an empty probe set sampling at the given window (in
// cycles, minimum 1) with DefaultProbeDepth samples per series.
func NewProbes(window uint64) *Probes {
	return NewProbesDepth(window, DefaultProbeDepth)
}

// NewProbesDepth is NewProbes with an explicit per-series sample
// capacity (minimum 2, so decimation always makes room).
func NewProbesDepth(window uint64, depth int) *Probes {
	if window == 0 {
		window = 1
	}
	if depth < 2 {
		depth = 2
	}
	return &Probes{window: window, depth: depth, series: make(map[string]*Series)}
}

// Window reports the configured sampling window in cycles.
func (p *Probes) Window() uint64 {
	if p == nil {
		return 0
	}
	return p.window
}

// Series returns the track registered under name, creating it on first
// use. Re-registering an existing name returns the same Series; the mode
// must match. Nil-safe: a nil Probes returns a nil Series, whose Add is
// a no-op — components can wire probes unconditionally.
func (p *Probes) Series(name string, mode ProbeMode) *Series {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.series[name]; ok {
		if s.mode != mode {
			panic(fmt.Sprintf("obs: probe series %q re-registered as %v, was %v", name, mode, s.mode))
		}
		return s
	}
	s := &Series{
		name:    name,
		mode:    mode,
		base:    p.window,
		window:  p.window,
		samples: make([]Sample, 0, p.depth),
	}
	p.series[name] = s
	p.names = append(p.names, name)
	return s
}

// Flush closes every series' pending window. Call once after the run.
func (p *Probes) Flush() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, name := range p.names {
		p.series[name].Flush()
	}
}

// Snapshot returns every series' data in registration order, skipping
// series that never observed anything (a probe point that never fired
// adds no track to the timeline).
func (p *Probes) Snapshot() []SeriesData {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SeriesData, 0, len(p.names))
	for _, name := range p.names {
		s := p.series[name]
		if len(s.samples) == 0 && !s.open {
			continue
		}
		out = append(out, s.Snapshot())
	}
	return out
}
