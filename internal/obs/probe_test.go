package obs

import (
	"reflect"
	"testing"
)

// TestWindowLongerThanRun: every observation lands in the first window,
// so the run produces exactly one sample, stamped at the window start.
func TestWindowLongerThanRun(t *testing.T) {
	p := NewProbes(1_000_000)
	s := p.Series("x", Sum)
	for cy := uint64(0); cy < 500; cy++ {
		s.Add(cy, 2)
	}
	p.Flush()
	d := s.Snapshot()
	if len(d.Samples) != 1 {
		t.Fatalf("samples = %d, want 1 (window outlives the run)", len(d.Samples))
	}
	if got := d.Samples[0]; got.Cycle != 0 || got.Sum != 1000 || got.Count != 500 {
		t.Fatalf("sample = %+v, want {Cycle:0 Sum:1000 Count:500}", got)
	}
	if d.Window != d.BaseWindow {
		t.Fatalf("window %d decimated from base %d with only one sample", d.Window, d.BaseWindow)
	}
}

// TestZeroSampleFlush: a series that never observed anything flushes to
// nothing and is dropped from the snapshot; a nil series is a no-op at
// every method.
func TestZeroSampleFlush(t *testing.T) {
	p := NewProbes(100)
	p.Series("never", Mean)
	touched := p.Series("touched", Sum)
	touched.Add(7, 1)
	p.Flush()
	p.Flush() // double flush must not duplicate the closed window
	snap := p.Snapshot()
	if len(snap) != 1 || snap[0].Name != "touched" {
		t.Fatalf("snapshot = %+v, want only the touched series", snap)
	}
	if len(snap[0].Samples) != 1 {
		t.Fatalf("double flush produced %d samples, want 1", len(snap[0].Samples))
	}

	var nilSeries *Series
	nilSeries.Add(1, 1) // must not panic
	nilSeries.Flush()
	var nilProbes *Probes
	if s := nilProbes.Series("x", Sum); s != nil {
		t.Fatal("nil Probes minted a non-nil Series")
	}
	nilProbes.Flush()
	if snap := nilProbes.Snapshot(); snap != nil {
		t.Fatalf("nil Probes snapshot = %v", snap)
	}
	if w := nilProbes.Window(); w != 0 {
		t.Fatalf("nil Probes window = %d", w)
	}
}

// feed drives one deterministic synthetic trace into a fresh series and
// returns its flushed snapshot.
func feed(window uint64, depth int, n uint64) SeriesData {
	p := NewProbesDepth(window, depth)
	s := p.Series("x", Sum)
	for cy := uint64(0); cy < n; cy++ {
		s.Add(cy, float64(cy%13))
	}
	p.Flush()
	return s.Snapshot()
}

// TestDownsamplingDeterminism pins decimation: identical observation
// streams snapshot identically, mass is conserved across merges, the
// effective window is base × 2^k, sample cycles stay strictly
// increasing and window-aligned, and the buffer never exceeds depth.
func TestDownsamplingDeterminism(t *testing.T) {
	const window, depth, n = 10, 16, 10_000
	a := feed(window, depth, n)
	b := feed(window, depth, n)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical runs snapshot differently:\n%+v\n%+v", a, b)
	}
	if len(a.Samples) > depth {
		t.Fatalf("%d samples exceed depth %d", len(a.Samples), depth)
	}
	if a.Window <= a.BaseWindow {
		t.Fatalf("run of %d cycles at window %d depth %d never decimated (window %d)",
			n, window, depth, a.Window)
	}
	for k := a.Window; k > a.BaseWindow; k /= 2 {
		if k%2 != 0 {
			t.Fatalf("window %d is not base × 2^k (base %d)", a.Window, a.BaseWindow)
		}
	}
	var sum float64
	var count uint64
	for i, s := range a.Samples {
		sum += s.Sum
		count += s.Count
		if i > 0 && s.Cycle <= a.Samples[i-1].Cycle {
			t.Fatalf("sample cycles not increasing: %d then %d", a.Samples[i-1].Cycle, s.Cycle)
		}
		if s.Cycle%a.BaseWindow != 0 {
			t.Fatalf("sample cycle %d not aligned to base window %d", s.Cycle, a.BaseWindow)
		}
	}
	var want float64
	for cy := uint64(0); cy < n; cy++ {
		want += float64(cy % 13)
	}
	if sum != want || count != n {
		t.Fatalf("decimation lost mass: sum %v count %d, want %v %d", sum, count, want, n)
	}
}

// TestModeMismatchPanics: re-registering a series under a different
// aggregation mode is a wiring bug and must fail loudly.
func TestModeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mode mismatch did not panic")
		}
	}()
	p := NewProbes(10)
	p.Series("x", Sum)
	p.Series("x", Mean)
}

// TestSeriesAddZeroAllocs pins the probes-on hot path: after
// construction, Add never allocates — closing windows and decimating
// included — and the nil (probes-off) path is allocation-free too.
func TestSeriesAddZeroAllocs(t *testing.T) {
	p := NewProbesDepth(4, 8)
	s := p.Series("x", Sum)
	var cy uint64
	allocs := testing.AllocsPerRun(10_000, func() {
		s.Add(cy, 1)
		cy += 3 // crosses windows and forces repeated decimation
	})
	if allocs != 0 {
		t.Fatalf("Series.Add allocated %.1f times per op, want 0", allocs)
	}
	var nilSeries *Series
	allocs = testing.AllocsPerRun(1000, func() { nilSeries.Add(1, 1) })
	if allocs != 0 {
		t.Fatalf("nil Series.Add allocated %.1f times per op, want 0", allocs)
	}
}

// TestMeanMode: Mean series report per-observation averages per window.
func TestMeanMode(t *testing.T) {
	p := NewProbes(10)
	s := p.Series("hit_rate", Mean)
	// Window [0,10): 3 hits of 4 accesses. Window [10,20): 1 of 2.
	s.Add(1, 1)
	s.Add(2, 1)
	s.Add(3, 0)
	s.Add(4, 1)
	s.Add(12, 0)
	s.Add(13, 1)
	p.Flush()
	got := s.Snapshot().Values()
	want := []float64{0.75, 0.5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mean values = %v, want %v", got, want)
	}
}
