// Package schemes maps scheme names to protection-controller factories,
// joining the baselines in internal/protect with CacheCraft in
// internal/core.
package schemes

import (
	"fmt"
	"sort"

	"cachecraft/internal/core"
	"cachecraft/internal/protect"
)

var registry = map[string]protect.Factory{
	"none":         protect.NewNone,
	"inline-naive": protect.NewInlineNaive,
	"ecc-cache":    protect.NewECCCache,
	"cachecraft":   core.NewFactory(core.DefaultOptions()),
	// ideal is the analysis upper bound (free redundancy); it is not part
	// of All() because it is not a buildable design.
	"ideal": protect.NewIdeal,
}

// Names lists the registered schemes in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All lists the schemes in evaluation order (unprotected baseline first).
func All() []string {
	return []string{"none", "inline-naive", "ecc-cache", "cachecraft"}
}

// ByName returns the factory for a scheme, or an error for unknown names.
func ByName(name string) (protect.Factory, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("schemes: unknown scheme %q (have %v)", name, Names())
	}
	return f, nil
}

// CacheCraftWith returns a CacheCraft factory with explicit options — used
// by the ablation and sensitivity benches.
func CacheCraftWith(opt core.Options) protect.Factory {
	return core.NewFactory(opt)
}
