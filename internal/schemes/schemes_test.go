package schemes

import (
	"testing"

	"cachecraft/internal/core"
)

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestAllOrder(t *testing.T) {
	all := All()
	want := []string{"none", "inline-naive", "ecc-cache", "cachecraft"}
	if len(all) != len(want) {
		t.Fatalf("All() = %v", all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("All()[%d] = %q, want %q", i, all[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		f, err := ByName(n)
		if err != nil || f == nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestCacheCraftWith(t *testing.T) {
	if CacheCraftWith(core.DefaultOptions()) == nil {
		t.Fatal("nil factory")
	}
}
