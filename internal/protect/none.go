package protect

import (
	"cachecraft/internal/mem"
	"cachecraft/internal/sim"
)

// none is the unprotected baseline: reads fetch exactly the demanded
// sectors, writes go straight to DRAM with byte masking, and no redundancy
// traffic exists.
type none struct {
	env *Env
}

// NewNone builds the unprotected baseline controller.
func NewNone(env *Env) Scheme { return &none{env: env} }

// Name identifies the scheme.
func (s *none) Name() string { return "none" }

// ReadMiss fetches each requested sector and completes when all arrive.
func (s *none) ReadMiss(now sim.Cycle, lineAddr uint64, mask uint64, class mem.Class, done func(sim.Cycle)) {
	geo := s.env.Map.Geometry()
	join := joinN(s.env, now, sectorCount(geo, mask), done)
	for sec := 0; sec < geo.SectorsPerLine(); sec++ {
		if mask&(1<<sec) == 0 {
			continue
		}
		s.env.DRAM.Submit(now, mem.Request{
			Addr:  s.env.Map.DataPhys(lineAddr + uint64(sec*geo.SectorBytes)),
			Bytes: geo.SectorBytes,
			Class: class,
			Done:  join,
		})
	}
}

// Writeback writes each dirty sector; DRAM write masking handles partial
// coverage, so no reads are needed.
func (s *none) Writeback(now sim.Cycle, lineAddr uint64, dirtyMask uint64) {
	geo := s.env.Map.Geometry()
	base := lineAddr &^ RedTag
	for sec := 0; sec < geo.SectorsPerLine(); sec++ {
		if dirtyMask&(1<<sec) == 0 {
			continue
		}
		s.env.DRAM.Submit(now, mem.Request{
			Addr:  s.env.Map.DataPhys(base + uint64(sec*geo.SectorBytes)),
			Write: true,
			Bytes: geo.SectorBytes,
			Class: mem.Writeback,
		})
	}
}

// NeedsRMWFetch is false: masked DRAM writes need no read.
func (s *none) NeedsRMWFetch() bool { return false }

// Drain has nothing to flush.
func (s *none) Drain(sim.Cycle) {}

var _ Scheme = (*none)(nil)
