package protect

import (
	"cachecraft/internal/mem"
	"cachecraft/internal/sim"
)

// ideal is the analysis upper bound: redundancy handling is free (as if
// an infinite, zero-latency redundancy cache existed), so the only
// protection costs that remain are the ones no redundancy-side mechanism
// can remove — the decode latency and the fetch-before-partial-write that
// ECC's loss of DRAM write masking forces. The gap between a real scheme
// and ideal is the redundancy-traffic headroom left on the table; the gap
// between ideal and none is the floor cost of inline protection itself.
type ideal struct {
	env *Env
}

// NewIdeal builds the free-redundancy upper-bound controller.
func NewIdeal(env *Env) Scheme { return &ideal{env: env} }

// Name identifies the scheme.
func (s *ideal) Name() string { return "ideal" }

// ReadMiss fetches only the demanded sectors; the redundancy is assumed
// resident, so the read pays just the decode.
func (s *ideal) ReadMiss(now sim.Cycle, lineAddr uint64, mask uint64, class mem.Class, done func(sim.Cycle)) {
	env := s.env
	geo := env.Map.Geometry()
	finish := func(at sim.Cycle) { env.FinishDecode(at, lineAddr, done) }
	join := joinN(env, now, sectorCount(geo, mask), finish)
	for sec := 0; sec < geo.SectorsPerLine(); sec++ {
		if mask&(1<<sec) == 0 {
			continue
		}
		env.DRAM.Submit(now, mem.Request{
			Addr:  env.Map.DataPhys(lineAddr + uint64(sec*geo.SectorBytes)),
			Bytes: geo.SectorBytes,
			Class: class,
			Done:  join,
		})
	}
}

// Writeback writes the dirty data sectors; redundancy updates are free.
func (s *ideal) Writeback(now sim.Cycle, lineAddr uint64, dirtyMask uint64) {
	env := s.env
	geo := env.Map.Geometry()
	base := lineAddr &^ RedTag
	for sec := 0; sec < geo.SectorsPerLine(); sec++ {
		if dirtyMask&(1<<sec) == 0 {
			continue
		}
		env.DRAM.Submit(now, mem.Request{
			Addr:  env.Map.DataPhys(base + uint64(sec*geo.SectorBytes)),
			Write: true,
			Bytes: geo.SectorBytes,
			Class: mem.Writeback,
		})
	}
}

// NeedsRMWFetch is true: even an infinite redundancy cache cannot restore
// DRAM write masking — the old sector data is still needed to recompute
// the sector's check bytes on a partial write.
func (s *ideal) NeedsRMWFetch() bool { return true }

// Drain has nothing to flush.
func (s *ideal) Drain(sim.Cycle) {}

var _ Scheme = (*ideal)(nil)
