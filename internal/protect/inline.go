package protect

import (
	"cachecraft/internal/mem"
	"cachecraft/internal/sim"
)

// inlineNaive is inline ECC with no redundancy caching: the worst case the
// title's problem statement describes. Every read miss issues a second
// DRAM access for the granule's redundancy block; every writeback pays a
// read-modify-write of the redundancy block (ECC disables DRAM write
// masking, and the block packs check bytes for eight sectors, so a partial
// update must read the old block first).
type inlineNaive struct {
	env *Env
}

// NewInlineNaive builds the uncached inline-ECC baseline.
func NewInlineNaive(env *Env) Scheme { return &inlineNaive{env: env} }

// Name identifies the scheme.
func (s *inlineNaive) Name() string { return "inline-naive" }

// ReadMiss fetches the demanded data sectors plus the covering redundancy
// block, and completes after ECC decode when both have arrived. A 128B
// line sits inside one 256B+ granule, so one redundancy fetch suffices.
func (s *inlineNaive) ReadMiss(now sim.Cycle, lineAddr uint64, mask uint64, class mem.Class, done func(sim.Cycle)) {
	geo := s.env.Map.Geometry()
	env := s.env
	finish := func(at sim.Cycle) {
		env.FinishDecode(at, lineAddr, done)
	}
	join := joinN(env, now, sectorCount(geo, mask)+1, finish)
	for sec := 0; sec < geo.SectorsPerLine(); sec++ {
		if mask&(1<<sec) == 0 {
			continue
		}
		env.DRAM.Submit(now, mem.Request{
			Addr:  env.Map.DataPhys(lineAddr + uint64(sec*geo.SectorBytes)),
			Bytes: geo.SectorBytes,
			Class: class,
			Done:  join,
		})
	}
	env.Stats.Inc("red_reads_dram")
	env.DRAM.Submit(now, mem.Request{
		Addr:  env.Map.RedundancyAddr(lineAddr),
		Bytes: geo.RedBlockBytes,
		Class: mem.Redundancy,
		Done:  join,
	})
}

// Writeback writes the dirty data sectors and performs the redundancy
// read-modify-write: read the old block, then write the merged block.
// When the writeback covers the entire granule the old block is not
// needed, but the naive controller has no cross-writeback visibility and a
// 128B line can never cover a 256B granule, so it always reads.
func (s *inlineNaive) Writeback(now sim.Cycle, lineAddr uint64, dirtyMask uint64) {
	env := s.env
	geo := env.Map.Geometry()
	lineAddr &^= RedTag
	for sec := 0; sec < geo.SectorsPerLine(); sec++ {
		if dirtyMask&(1<<sec) == 0 {
			continue
		}
		env.DRAM.Submit(now, mem.Request{
			Addr:  env.Map.DataPhys(lineAddr + uint64(sec*geo.SectorBytes)),
			Write: true,
			Bytes: geo.SectorBytes,
			Class: mem.Writeback,
		})
	}
	redAddr := env.Map.RedundancyAddr(lineAddr)
	env.Stats.Inc("red_rmw")
	env.DRAM.Submit(now, mem.Request{
		Addr:  redAddr,
		Bytes: geo.RedBlockBytes,
		Class: mem.RMW,
		Done: func(at sim.Cycle) {
			env.DRAM.Submit(at+env.DecodeLat, mem.Request{
				Addr:  redAddr,
				Write: true,
				Bytes: geo.RedBlockBytes,
				Class: mem.Redundancy,
			})
		},
	})
}

// NeedsRMWFetch is true: partial-sector stores must read the old sector
// because write masking is unavailable under ECC.
func (s *inlineNaive) NeedsRMWFetch() bool { return true }

// Drain has nothing to flush.
func (s *inlineNaive) Drain(sim.Cycle) {}

var _ Scheme = (*inlineNaive)(nil)
