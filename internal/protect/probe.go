package protect

import (
	"cachecraft/internal/mem"
	"cachecraft/internal/obs"
	"cachecraft/internal/sim"
)

// WrapProbed decorates a scheme so every ReadMiss's join latency — the
// cycles between the controller issuing the miss and the scheme's
// (possibly multi-leg) completion joining back — lands in the given
// probe series (Mean mode). Like WrapAudited, the wrapper preserves the
// inner scheme's ReconstructionObserver capability so predictor feedback
// keeps flowing when the scheme is CacheCraft; the two wrappers compose
// in either order.
//
// The wrapper allocates one closure per ReadMiss. That is fine: probes
// on is an explicitly requested observability mode, and the probes-off
// path never sees the wrapper at all (the machine only wraps when a
// probe set is attached).
func WrapProbed(s Scheme, join *obs.Series) Scheme {
	p := &probedScheme{inner: s, join: join}
	if ro, ok := s.(ReconstructionObserver); ok {
		return &probedObserver{probedScheme: p, ro: ro}
	}
	return p
}

type probedScheme struct {
	inner Scheme
	join  *obs.Series
}

func (p *probedScheme) Name() string { return p.inner.Name() }

func (p *probedScheme) ReadMiss(now sim.Cycle, lineAddr uint64, mask uint64, class mem.Class, done func(sim.Cycle)) {
	p.inner.ReadMiss(now, lineAddr, mask, class, func(at sim.Cycle) {
		p.join.Add(uint64(at), float64(at-now))
		done(at)
	})
}

func (p *probedScheme) Writeback(now sim.Cycle, lineAddr uint64, dirtyMask uint64) {
	p.inner.Writeback(now, lineAddr, dirtyMask)
}

func (p *probedScheme) NeedsRMWFetch() bool { return p.inner.NeedsRMWFetch() }

func (p *probedScheme) Drain(now sim.Cycle) { p.inner.Drain(now) }

// probedObserver adds ReconstructionObserver forwarding for schemes that
// implement it (CacheCraft).
type probedObserver struct {
	*probedScheme
	ro ReconstructionObserver
}

func (p *probedObserver) ReconstructedUse(addr uint64, used bool) {
	p.ro.ReconstructedUse(addr, used)
}

var (
	_ Scheme                 = (*probedScheme)(nil)
	_ Scheme                 = (*probedObserver)(nil)
	_ ReconstructionObserver = (*probedObserver)(nil)
)
