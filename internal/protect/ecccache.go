package protect

import (
	"cachecraft/internal/mem"
	"cachecraft/internal/sim"
)

// eccCache is the production-style baseline: redundancy blocks are cached
// in the L2 alongside data, tagged into a disjoint address space (RedTag).
// Redundancy locality is captured — at the price of L2 capacity contention
// with demand data — and redundancy writebacks are coalesced in the L2 the
// same way data writebacks are.
type eccCache struct {
	env     *Env
	pending map[uint64]*redFetch // outstanding redundancy fetches by tagged address
}

type redFetch struct {
	waiters []func(sim.Cycle)
	dirty   bool
}

// NewECCCache builds the L2-redundancy-caching baseline.
func NewECCCache(env *Env) Scheme {
	return &eccCache{env: env, pending: make(map[uint64]*redFetch)}
}

// Name identifies the scheme.
func (s *eccCache) Name() string { return "ecc-cache" }

// redReady arranges for ready to run as soon as the redundancy block
// covering lineAddr is available: immediately on an L2 hit, or when the
// (possibly already outstanding) DRAM fetch returns.
func (s *eccCache) redReady(now sim.Cycle, lineAddr uint64, markDirty bool, ready func(sim.Cycle)) {
	env := s.env
	tagged := RedTag | env.Map.RedundancyAddr(lineAddr)
	if env.L2.Present(tagged) {
		env.Stats.Inc("red_l2_hits")
		if markDirty {
			env.L2.MarkDirty(tagged)
		}
		env.Eng.At(now, ready)
		return
	}
	if f, ok := s.pending[tagged]; ok {
		env.Stats.Inc("red_merged")
		f.dirty = f.dirty || markDirty
		f.waiters = append(f.waiters, ready)
		return
	}
	f := &redFetch{waiters: []func(sim.Cycle){ready}, dirty: markDirty}
	s.pending[tagged] = f
	env.Stats.Inc("red_reads_dram")
	class := mem.Redundancy
	if markDirty {
		class = mem.RMW // a write-allocate fetch exists only to merge new checks
	}
	env.DRAM.Submit(now, mem.Request{
		Addr:  tagged &^ RedTag,
		Bytes: env.Map.Geometry().RedBlockBytes,
		Class: class,
		Done: func(at sim.Cycle) {
			delete(s.pending, tagged)
			env.L2.Insert(at, tagged, f.dirty)
			for _, w := range f.waiters {
				w(at)
			}
		},
	})
}

// ReadMiss fetches the demanded sectors and waits for the redundancy block
// (L2 or DRAM), completing after decode.
func (s *eccCache) ReadMiss(now sim.Cycle, lineAddr uint64, mask uint64, class mem.Class, done func(sim.Cycle)) {
	env := s.env
	geo := env.Map.Geometry()
	finish := func(at sim.Cycle) { env.FinishDecode(at, lineAddr, done) }
	join := joinN(env, now, sectorCount(geo, mask)+1, finish)
	for sec := 0; sec < geo.SectorsPerLine(); sec++ {
		if mask&(1<<sec) == 0 {
			continue
		}
		env.DRAM.Submit(now, mem.Request{
			Addr:  env.Map.DataPhys(lineAddr + uint64(sec*geo.SectorBytes)),
			Bytes: geo.SectorBytes,
			Class: class,
			Done:  join,
		})
	}
	s.redReady(now, lineAddr, false, join)
}

// Writeback writes dirty data sectors and folds the redundancy update into
// the cached block (allocating it if needed). Evicted dirty redundancy
// lines come back through this method carrying RedTag and are plain
// writes.
func (s *eccCache) Writeback(now sim.Cycle, lineAddr uint64, dirtyMask uint64) {
	env := s.env
	geo := env.Map.Geometry()
	if lineAddr&RedTag != 0 {
		base := lineAddr &^ RedTag
		for sec := 0; sec < geo.SectorsPerLine(); sec++ {
			if dirtyMask&(1<<sec) == 0 {
				continue
			}
			env.Stats.Inc("red_writebacks")
			env.DRAM.Submit(now, mem.Request{
				Addr:  base + uint64(sec*geo.SectorBytes),
				Write: true,
				Bytes: geo.SectorBytes,
				Class: mem.Redundancy,
			})
		}
		return
	}
	for sec := 0; sec < geo.SectorsPerLine(); sec++ {
		if dirtyMask&(1<<sec) == 0 {
			continue
		}
		env.DRAM.Submit(now, mem.Request{
			Addr:  env.Map.DataPhys(lineAddr + uint64(sec*geo.SectorBytes)),
			Write: true,
			Bytes: geo.SectorBytes,
			Class: mem.Writeback,
		})
	}
	s.redReady(now, lineAddr, true, func(sim.Cycle) {})
}

// NeedsRMWFetch is true under ECC.
func (s *eccCache) NeedsRMWFetch() bool { return true }

// Drain has nothing controller-side to flush: dirty redundancy lives in
// the L2 and drains with the machine's cache flush.
func (s *eccCache) Drain(sim.Cycle) {}

var _ Scheme = (*eccCache)(nil)
