package protect

import (
	"cachecraft/internal/mem"
	"cachecraft/internal/sim"
)

// SchemeSink observes controller-level events for the invariant-audit
// layer: every ReadMiss issued (with its completion), every Writeback, and
// the end-of-sim Drain. internal/audit.Checker implements it.
type SchemeSink interface {
	// ReadMissIssued records a controller read and returns a token that
	// identifies it to ReadMissDone.
	ReadMissIssued(now sim.Cycle, lineAddr uint64, mask uint64, class mem.Class) uint64
	// ReadMissDone records the (exactly-once) completion of a read.
	ReadMissDone(at sim.Cycle, token uint64)
	// WritebackIssued records a writeback handed to the controller.
	WritebackIssued(now sim.Cycle, lineAddr uint64, dirtyMask uint64)
	// DrainIssued records the end-of-sim drain call.
	DrainIssued(now sim.Cycle)
}

// WrapAudited decorates a scheme so every Scheme-interface call is
// reported to the sink before being forwarded. The wrapper preserves the
// inner scheme's ReconstructionObserver capability so predictor feedback
// keeps flowing when the scheme is CacheCraft.
func WrapAudited(s Scheme, sink SchemeSink) Scheme {
	a := &auditedScheme{inner: s, sink: sink}
	if ro, ok := s.(ReconstructionObserver); ok {
		return &auditedObserver{auditedScheme: a, ro: ro}
	}
	return a
}

type auditedScheme struct {
	inner Scheme
	sink  SchemeSink
}

func (a *auditedScheme) Name() string { return a.inner.Name() }

func (a *auditedScheme) ReadMiss(now sim.Cycle, lineAddr uint64, mask uint64, class mem.Class, done func(sim.Cycle)) {
	token := a.sink.ReadMissIssued(now, lineAddr, mask, class)
	a.inner.ReadMiss(now, lineAddr, mask, class, func(at sim.Cycle) {
		a.sink.ReadMissDone(at, token)
		done(at)
	})
}

func (a *auditedScheme) Writeback(now sim.Cycle, lineAddr uint64, dirtyMask uint64) {
	a.sink.WritebackIssued(now, lineAddr, dirtyMask)
	a.inner.Writeback(now, lineAddr, dirtyMask)
}

func (a *auditedScheme) NeedsRMWFetch() bool { return a.inner.NeedsRMWFetch() }

func (a *auditedScheme) Drain(now sim.Cycle) {
	a.sink.DrainIssued(now)
	a.inner.Drain(now)
}

// auditedObserver adds ReconstructionObserver forwarding for schemes that
// implement it (CacheCraft).
type auditedObserver struct {
	*auditedScheme
	ro ReconstructionObserver
}

func (a *auditedObserver) ReconstructedUse(addr uint64, used bool) {
	a.ro.ReconstructedUse(addr, used)
}

var (
	_ Scheme                 = (*auditedScheme)(nil)
	_ Scheme                 = (*auditedObserver)(nil)
	_ ReconstructionObserver = (*auditedObserver)(nil)
)
