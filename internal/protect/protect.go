// Package protect defines the memory-protection controller interface that
// sits between the L2 cache and DRAM, and implements the three baseline
// schemes the paper-style evaluation compares against:
//
//   - none: no protection; every miss is a plain data fetch.
//   - inline-naive: inline ECC with no redundancy caching; every miss pays
//     a second DRAM access for the redundancy block, and every writeback
//     pays a redundancy read-modify-write.
//   - ecc-cache: the production-style baseline; redundancy blocks are
//     cached in the L2 itself, trading L2 capacity for redundancy reuse.
//
// CacheCraft itself lives in internal/core and implements the same Scheme
// interface.
package protect

import (
	"math/bits"

	"cachecraft/internal/dram"
	"cachecraft/internal/layout"
	"cachecraft/internal/mem"
	"cachecraft/internal/sim"
	"cachecraft/internal/stats"
)

// RedTag marks redundancy-block addresses in the cache hierarchy's address
// space so they can never collide with logical data addresses.
const RedTag uint64 = 1 << 62

// CacheSide is the controller's view of the L2: it can probe for and
// insert lines (redundancy blocks for the ecc-cache scheme, reconstructed
// sibling sectors for CacheCraft). Inserts are clean unless dirty is set;
// evictions triggered by inserts flow back to the controller as
// writebacks.
type CacheSide interface {
	// Present reports whether the sector holding addr is valid in the L2.
	Present(addr uint64) bool
	// Pending reports whether the sector is already being fetched.
	Pending(addr uint64) bool
	// Insert places a sector into the L2 (allocating its line as needed).
	Insert(now sim.Cycle, addr uint64, dirty bool)
	// InsertReconstructed places a clean sector into the L2 and tracks
	// whether it is referenced before eviction, reporting the outcome to a
	// scheme that implements ReconstructionObserver.
	InsertReconstructed(now sim.Cycle, addr uint64)
	// MarkDirty marks a present sector dirty; it must be present.
	MarkDirty(addr uint64)
}

// ReconstructionObserver is implemented by schemes (CacheCraft) that want
// per-sector feedback on whether reconstructed inserts were useful.
type ReconstructionObserver interface {
	// ReconstructedUse reports that the reconstructed sector at addr was
	// referenced before eviction (used) or evicted untouched (!used).
	ReconstructedUse(addr uint64, used bool)
}

// Env is everything a controller needs from the machine.
type Env struct {
	Eng   *sim.Engine
	DRAM  *dram.DRAM
	Map   layout.Mapper
	L2    CacheSide
	Stats *stats.Counters
	// DecodeLat is the ECC decode/verify latency added to protected reads.
	DecodeLat sim.Cycle
	// ErrorRatePPM injects deterministic correctable errors into protected
	// reads: roughly this many per million granule decodes flag a
	// corrected error, costing ErrorPenalty extra cycles and a scrub
	// write. Zero disables injection.
	ErrorRatePPM int
	// ErrorPenalty is the extra correction latency per flagged decode
	// (default 32 when zero and injection is enabled).
	ErrorPenalty sim.Cycle
}

// errorAt deterministically decides whether the decode of the granule at
// lineAddr observes a correctable error (a hash in place of randomness so
// runs stay reproducible and schemes see identical error placement).
func (e *Env) errorAt(lineAddr uint64) bool {
	if e.ErrorRatePPM <= 0 {
		return false
	}
	h := e.Map.GranuleBase(lineAddr)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h%1_000_000 < uint64(e.ErrorRatePPM)
}

// FinishDecode schedules done after the ECC decode of lineAddr's granule:
// the base decode latency, plus — when error injection marks this granule
// — a correction penalty and a scrub write of the corrected sector.
func (e *Env) FinishDecode(now sim.Cycle, lineAddr uint64, done func(sim.Cycle)) {
	lat := e.DecodeLat
	if e.errorAt(lineAddr) {
		penalty := e.ErrorPenalty
		if penalty == 0 {
			penalty = 32
		}
		lat += penalty
		e.Stats.Inc("corrected_errors")
		e.Stats.Inc("scrub_writes")
		geo := e.Map.Geometry()
		e.DRAM.Submit(now, mem.Request{
			Addr:  e.Map.DataPhys(e.Map.GranuleBase(lineAddr)),
			Write: true,
			Bytes: geo.SectorBytes,
			Class: mem.Writeback,
		})
	}
	if lat == 0 {
		// A zero-latency decode completes inline. Routing it through the
		// event queue would not cost cycles, but it would reorder the
		// completion behind other events already scheduled for this cycle,
		// perturbing DRAM arbitration — a zero-cost decode must be a true
		// no-op, indistinguishable from no decode stage at all.
		done(now)
		return
	}
	e.Eng.At(now+lat, done)
}

// Scheme is a memory-protection controller. Line addresses are logical
// data addresses unless they carry RedTag.
type Scheme interface {
	// Name identifies the scheme in tables.
	Name() string
	// ReadMiss fetches the sectors in mask of the 128B line at lineAddr.
	// class is mem.Demand for ordinary misses or mem.RMW for
	// fetch-before-partial-write. done runs once, when the requested
	// sectors are ready to fill (after ECC verification).
	ReadMiss(now sim.Cycle, lineAddr uint64, mask uint64, class mem.Class, done func(sim.Cycle))
	// Writeback retires dirty sectors of an evicted line (fire and
	// forget). Redundancy lines carry RedTag.
	Writeback(now sim.Cycle, lineAddr uint64, dirtyMask uint64)
	// NeedsRMWFetch reports whether a partial-sector store must fetch the
	// old sector contents first (true whenever ECC disables DRAM write
	// masking).
	NeedsRMWFetch() bool
	// Drain flushes any internal write buffers at end of simulation.
	Drain(now sim.Cycle)
}

// Factory builds a scheme against a machine environment.
type Factory func(env *Env) Scheme

// sectorsOf enumerates the sector addresses selected by mask within a
// line, using the mapper's geometry. It allocates; hot paths iterate the
// mask bits directly and size join counters with sectorCount.
func sectorsOf(geo layout.Geometry, lineAddr uint64, mask uint64) []uint64 {
	out := make([]uint64, 0, geo.SectorsPerLine())
	for s := 0; s < geo.SectorsPerLine(); s++ {
		if mask&(1<<s) != 0 {
			out = append(out, lineAddr+uint64(s*geo.SectorBytes))
		}
	}
	return out
}

// sectorCount reports how many in-line sectors mask selects — the length
// sectorsOf would return, without materializing the slice.
func sectorCount(geo layout.Geometry, mask uint64) int {
	return bits.OnesCount64(mask & (uint64(1)<<geo.SectorsPerLine() - 1))
}

// joinN invokes done once after n completions have been observed; if n is
// zero it fires immediately at now.
func joinN(env *Env, now sim.Cycle, n int, done func(sim.Cycle)) func(sim.Cycle) {
	if n == 0 {
		env.Eng.At(now, done)
		return func(sim.Cycle) {}
	}
	remaining := n
	return func(at sim.Cycle) {
		remaining--
		if remaining == 0 {
			done(at)
		}
	}
}
