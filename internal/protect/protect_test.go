package protect

import (
	"testing"

	"cachecraft/internal/dram"
	"cachecraft/internal/layout"
	"cachecraft/internal/mem"
	"cachecraft/internal/sim"
	"cachecraft/internal/stats"
)

// fakeL2 is a minimal CacheSide for controller unit tests.
type fakeL2 struct {
	present map[uint64]bool
	dirty   map[uint64]bool
	inserts []uint64
	recon   []uint64
}

func newFakeL2() *fakeL2 {
	return &fakeL2{present: map[uint64]bool{}, dirty: map[uint64]bool{}}
}

func (f *fakeL2) Present(addr uint64) bool { return f.present[addr] }
func (f *fakeL2) Pending(addr uint64) bool { return false }
func (f *fakeL2) Insert(now sim.Cycle, addr uint64, dirty bool) {
	f.present[addr] = true
	if dirty {
		f.dirty[addr] = true
	}
	f.inserts = append(f.inserts, addr)
}
func (f *fakeL2) InsertReconstructed(now sim.Cycle, addr uint64) {
	f.Insert(now, addr, false)
	f.recon = append(f.recon, addr)
}
func (f *fakeL2) MarkDirty(addr uint64) { f.dirty[addr] = true }

func testEnv(t *testing.T) (*Env, *sim.Engine, *fakeL2) {
	t.Helper()
	eng := sim.NewEngine()
	mapper, err := layout.NewLinearMapper(64<<20, layout.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	l2 := newFakeL2()
	cfg := dram.DefaultConfig()
	cfg.Channels = 2
	env := &Env{
		Eng:       eng,
		DRAM:      dram.New(eng, cfg),
		Map:       mapper,
		L2:        l2,
		Stats:     stats.NewCounters(),
		DecodeLat: 8,
	}
	return env, eng, l2
}

func drain(eng *sim.Engine) { eng.Run(1 << 30) }

func TestNoneReadFetchesOnlyDemand(t *testing.T) {
	env, eng, _ := testEnv(t)
	s := NewNone(env)
	done := false
	s.ReadMiss(0, 0, 0b0011, mem.Demand, func(sim.Cycle) { done = true })
	drain(eng)
	if !done {
		t.Fatal("read never completed")
	}
	if env.DRAM.Stats.Get("bytes_demand") != 64 {
		t.Fatalf("demand bytes = %d, want 64", env.DRAM.Stats.Get("bytes_demand"))
	}
	if env.DRAM.Stats.Get("bytes_redundancy") != 0 {
		t.Fatal("none must not fetch redundancy")
	}
	if s.NeedsRMWFetch() {
		t.Fatal("none must not need RMW fetches")
	}
}

func TestNoneWritebackWritesDirtySectors(t *testing.T) {
	env, eng, _ := testEnv(t)
	s := NewNone(env)
	s.Writeback(0, 0, 0b1010)
	drain(eng)
	if env.DRAM.Stats.Get("bytes_writeback") != 64 {
		t.Fatalf("writeback bytes = %d", env.DRAM.Stats.Get("bytes_writeback"))
	}
}

func TestInlineNaiveReadAddsRedundancy(t *testing.T) {
	env, eng, _ := testEnv(t)
	s := NewInlineNaive(env)
	var doneAt sim.Cycle
	s.ReadMiss(0, 0, 0b0001, mem.Demand, func(at sim.Cycle) { doneAt = at })
	drain(eng)
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	if env.DRAM.Stats.Get("bytes_demand") != 32 {
		t.Fatalf("demand bytes = %d", env.DRAM.Stats.Get("bytes_demand"))
	}
	if env.DRAM.Stats.Get("bytes_redundancy") != 32 {
		t.Fatalf("redundancy bytes = %d, want one block", env.DRAM.Stats.Get("bytes_redundancy"))
	}
	if !s.NeedsRMWFetch() {
		t.Fatal("inline ECC must need RMW fetches")
	}
}

func TestInlineNaiveDecodeLatencyApplied(t *testing.T) {
	env, eng, _ := testEnv(t)
	naive := NewInlineNaive(env)
	var naiveDone sim.Cycle
	naive.ReadMiss(0, 0, 1, mem.Demand, func(at sim.Cycle) { naiveDone = at })
	drain(eng)

	env2, eng2, _ := testEnv(t)
	none := NewNone(env2)
	var noneDone sim.Cycle
	none.ReadMiss(0, 0, 1, mem.Demand, func(at sim.Cycle) { noneDone = at })
	drain(eng2)

	if naiveDone <= noneDone {
		t.Fatalf("protected read (%d) must be slower than unprotected (%d)", naiveDone, noneDone)
	}
}

func TestInlineNaiveWritebackDoesRMW(t *testing.T) {
	env, eng, _ := testEnv(t)
	s := NewInlineNaive(env)
	s.Writeback(0, 0, 0b0001)
	drain(eng)
	if env.Stats.Get("red_rmw") != 1 {
		t.Fatalf("rmw count = %d", env.Stats.Get("red_rmw"))
	}
	if env.DRAM.Stats.Get("bytes_rmw") != 32 {
		t.Fatalf("rmw read bytes = %d", env.DRAM.Stats.Get("bytes_rmw"))
	}
	// Data write + red write.
	if env.DRAM.Stats.Get("bytes_written") != 64 {
		t.Fatalf("written bytes = %d, want data+red", env.DRAM.Stats.Get("bytes_written"))
	}
}

func TestECCCacheHitAvoidsRedundancyFetch(t *testing.T) {
	env, eng, l2 := testEnv(t)
	s := NewECCCache(env)
	tagged := RedTag | env.Map.RedundancyAddr(0)
	l2.present[tagged] = true

	s.ReadMiss(0, 0, 0b0001, mem.Demand, func(sim.Cycle) {})
	drain(eng)
	if env.DRAM.Stats.Get("bytes_redundancy") != 0 {
		t.Fatal("redundancy fetched despite L2 hit")
	}
	if env.Stats.Get("red_l2_hits") != 1 {
		t.Fatalf("red_l2_hits = %d", env.Stats.Get("red_l2_hits"))
	}
}

func TestECCCacheMissInsertsIntoL2(t *testing.T) {
	env, eng, l2 := testEnv(t)
	s := NewECCCache(env)
	s.ReadMiss(0, 0, 0b0001, mem.Demand, func(sim.Cycle) {})
	drain(eng)
	tagged := RedTag | env.Map.RedundancyAddr(0)
	if !l2.present[tagged] {
		t.Fatal("redundancy block not inserted into L2")
	}
	if env.DRAM.Stats.Get("bytes_redundancy") != 32 {
		t.Fatalf("redundancy bytes = %d", env.DRAM.Stats.Get("bytes_redundancy"))
	}
}

func TestECCCacheConcurrentMissesMerge(t *testing.T) {
	env, eng, _ := testEnv(t)
	s := NewECCCache(env)
	// Two misses in the same granule share one redundancy fetch.
	completions := 0
	s.ReadMiss(0, 0, 0b0001, mem.Demand, func(sim.Cycle) { completions++ })
	s.ReadMiss(0, 128, 0b0001, mem.Demand, func(sim.Cycle) { completions++ })
	drain(eng)
	if completions != 2 {
		t.Fatalf("completions = %d", completions)
	}
	if got := env.Stats.Get("red_reads_dram"); got != 1 {
		t.Fatalf("redundancy reads = %d, want 1 (merged)", got)
	}
	if env.Stats.Get("red_merged") != 1 {
		t.Fatalf("red_merged = %d", env.Stats.Get("red_merged"))
	}
}

func TestECCCacheWritebackMarksCachedRedDirty(t *testing.T) {
	env, eng, l2 := testEnv(t)
	s := NewECCCache(env)
	tagged := RedTag | env.Map.RedundancyAddr(0)
	l2.present[tagged] = true
	s.Writeback(0, 0, 0b0001)
	drain(eng)
	if !l2.dirty[tagged] {
		t.Fatal("cached redundancy not marked dirty")
	}
	// Only the data write goes to DRAM.
	if env.DRAM.Stats.Get("bytes_written") != 32 {
		t.Fatalf("written = %d", env.DRAM.Stats.Get("bytes_written"))
	}
}

func TestECCCacheWritebackAllocatesRedWhenAbsent(t *testing.T) {
	env, eng, l2 := testEnv(t)
	s := NewECCCache(env)
	s.Writeback(0, 0, 0b0001)
	drain(eng)
	tagged := RedTag | env.Map.RedundancyAddr(0)
	if !l2.present[tagged] || !l2.dirty[tagged] {
		t.Fatal("redundancy not write-allocated dirty")
	}
	if env.DRAM.Stats.Get("bytes_rmw") != 32 {
		t.Fatalf("rmw bytes = %d", env.DRAM.Stats.Get("bytes_rmw"))
	}
}

func TestECCCacheEvictedRedLineWritesBack(t *testing.T) {
	env, eng, _ := testEnv(t)
	s := NewECCCache(env)
	redLine := RedTag | env.Map.RedundancyAddr(0) // treat as evicted dirty line
	s.Writeback(0, redLine-redLine%128, 0b0001)
	drain(eng)
	if env.Stats.Get("red_writebacks") != 1 {
		t.Fatalf("red writebacks = %d", env.Stats.Get("red_writebacks"))
	}
	if env.DRAM.Stats.Get("bytes_written") != 32 {
		t.Fatalf("written = %d", env.DRAM.Stats.Get("bytes_written"))
	}
}

func TestSchemeNames(t *testing.T) {
	env, _, _ := testEnv(t)
	if NewNone(env).Name() != "none" {
		t.Fatal("none name")
	}
	if NewInlineNaive(env).Name() != "inline-naive" {
		t.Fatal("inline name")
	}
	if NewECCCache(env).Name() != "ecc-cache" {
		t.Fatal("ecc-cache name")
	}
}

func TestJoinNZero(t *testing.T) {
	env, eng, _ := testEnv(t)
	ran := false
	joinN(env, 5, 0, func(sim.Cycle) { ran = true })
	drain(eng)
	if !ran {
		t.Fatal("joinN(0) must fire immediately")
	}
}

func TestSectorsOf(t *testing.T) {
	geo := layout.DefaultGeometry()
	got := sectorsOf(geo, 256, 0b1001)
	if len(got) != 2 || got[0] != 256 || got[1] != 256+96 {
		t.Fatalf("sectorsOf = %v", got)
	}
}

func TestErrorInjectionDeterministicAndRateBounded(t *testing.T) {
	env, _, _ := testEnv(t)
	env.ErrorRatePPM = 100000 // 10%
	hits := 0
	const granules = 2000
	for g := 0; g < granules; g++ {
		if env.errorAt(uint64(g) * 256) {
			hits++
		}
	}
	// Deterministic repeat.
	hits2 := 0
	for g := 0; g < granules; g++ {
		if env.errorAt(uint64(g) * 256) {
			hits2++
		}
	}
	if hits != hits2 {
		t.Fatal("error placement not deterministic")
	}
	frac := float64(hits) / granules
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("10%% rate produced %.3f", frac)
	}
	// Lines of the same granule agree.
	if env.errorAt(0) != env.errorAt(128) {
		t.Fatal("granule halves disagree on error placement")
	}
}

func TestFinishDecodeAddsPenaltyAndScrub(t *testing.T) {
	env, eng, _ := testEnv(t)
	env.ErrorRatePPM = 1_000_000 // every granule errors
	env.ErrorPenalty = 100
	var doneAt sim.Cycle
	env.FinishDecode(10, 0, func(at sim.Cycle) { doneAt = at })
	drain(eng)
	if doneAt != 10+env.DecodeLat+100 {
		t.Fatalf("done at %d, want %d", doneAt, 10+env.DecodeLat+100)
	}
	if env.Stats.Get("corrected_errors") != 1 || env.Stats.Get("scrub_writes") != 1 {
		t.Fatalf("error accounting: %s", env.Stats)
	}
	if env.DRAM.Stats.Get("bytes_written") != 32 {
		t.Fatalf("scrub write bytes = %d", env.DRAM.Stats.Get("bytes_written"))
	}
}

func TestFinishDecodeCleanPath(t *testing.T) {
	env, eng, _ := testEnv(t)
	var doneAt sim.Cycle
	env.FinishDecode(10, 0, func(at sim.Cycle) { doneAt = at })
	drain(eng)
	if doneAt != 10+env.DecodeLat {
		t.Fatalf("done at %d", doneAt)
	}
	if env.Stats.Get("corrected_errors") != 0 {
		t.Fatal("phantom error")
	}
}

func TestIdealReadPaysOnlyDemandAndDecode(t *testing.T) {
	env, eng, _ := testEnv(t)
	s := NewIdeal(env)
	if s.Name() != "ideal" {
		t.Fatal("name")
	}
	var doneAt sim.Cycle
	s.ReadMiss(0, 0, 0b0001, mem.Demand, func(at sim.Cycle) { doneAt = at })
	drain(eng)
	if env.DRAM.Stats.Get("bytes_redundancy") != 0 {
		t.Fatal("ideal must not move redundancy")
	}
	// Compare against none: exactly DecodeLat slower.
	env2, eng2, _ := testEnv(t)
	var noneAt sim.Cycle
	NewNone(env2).ReadMiss(0, 0, 0b0001, mem.Demand, func(at sim.Cycle) { noneAt = at })
	drain(eng2)
	if doneAt != noneAt+env.DecodeLat {
		t.Fatalf("ideal done %d, none %d, want decode-only gap %d", doneAt, noneAt, env.DecodeLat)
	}
}

func TestIdealWritebackIsDataOnlyButKeepsRMWFetch(t *testing.T) {
	env, eng, _ := testEnv(t)
	s := NewIdeal(env)
	s.Writeback(0, 0, 0b0011)
	drain(eng)
	if env.DRAM.Stats.Get("bytes_written") != 64 {
		t.Fatalf("written = %d", env.DRAM.Stats.Get("bytes_written"))
	}
	if env.DRAM.Stats.Get("bytes_redundancy")+env.DRAM.Stats.Get("bytes_rmw") != 0 {
		t.Fatal("ideal wrote redundancy")
	}
	if !s.NeedsRMWFetch() {
		t.Fatal("even ideal cannot avoid fetch-on-partial-write under ECC")
	}
}
