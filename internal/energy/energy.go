// Package energy estimates memory-system dynamic energy from simulation
// event counts. The model is parametric and first-order: per-activate and
// per-32B-transfer DRAM energies, per-access SRAM energies. Absolute
// joules are not the point — the *relative* energy of protection schemes
// (extra DRAM transfers, extra cache lookups) is.
package energy

import "cachecraft/internal/gpu"

// Model holds per-event energies in picojoules. Defaults approximate
// GDDR6-class DRAM and on-chip SRAM figures from public literature.
type Model struct {
	DRAMActivatePJ float64 // per row activation (ACT+PRE pair)
	DRAMReadPJ     float64 // per 32B read burst
	DRAMWritePJ    float64 // per 32B write burst
	L1AccessPJ     float64 // per L1 lookup
	L2AccessPJ     float64 // per L2 lookup
	RCAccessPJ     float64 // per redundancy-cache lookup
	XbarPJ         float64 // per 32B crossed
}

// Default returns the reference energy model.
func Default() Model {
	return Model{
		DRAMActivatePJ: 900,
		DRAMReadPJ:     400,
		DRAMWritePJ:    420,
		L1AccessPJ:     8,
		L2AccessPJ:     25,
		RCAccessPJ:     6,
		XbarPJ:         12,
	}
}

// Breakdown is the per-component energy in nanojoules.
type Breakdown struct {
	DRAMActivate float64
	DRAMTransfer float64
	Caches       float64
	Xbar         float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.DRAMActivate + b.DRAMTransfer + b.Caches + b.Xbar
}

// Evaluate computes the energy breakdown for one simulation result.
func (m Model) Evaluate(res gpu.Result) Breakdown {
	dramStats := res.DRAMStats
	activates := float64(dramStats.Get("row_misses") + dramStats.Get("row_conflicts"))
	reads32 := float64(dramStats.Get("bytes_read")) / 32
	writes32 := float64(dramStats.Get("bytes_written")) / 32

	l1 := float64(res.Machine.Get("l1_hits") + res.Machine.Get("l1_misses"))
	l2 := float64(res.L2Stats.Get("accesses"))
	rc := float64(res.ControllerSt.Get("red_rc_hits") + res.ControllerSt.Get("red_reads_dram"))

	// Crossbar: demand data both directions approximated by sector
	// requests plus responses.
	xbar32 := float64(res.Machine.Get("sector_requests")) * 2

	return Breakdown{
		DRAMActivate: activates * m.DRAMActivatePJ / 1000,
		DRAMTransfer: (reads32*m.DRAMReadPJ + writes32*m.DRAMWritePJ) / 1000,
		Caches:       (l1*m.L1AccessPJ + l2*m.L2AccessPJ + rc*m.RCAccessPJ) / 1000,
		Xbar:         xbar32 * m.XbarPJ / 1000,
	}
}
