package energy

import (
	"testing"

	"cachecraft/internal/config"
	"cachecraft/internal/gpu"
	"cachecraft/internal/protect"
)

func run(t *testing.T, scheme protect.Factory) gpu.Result {
	t.Helper()
	cfg := config.Quick()
	cfg.AccessesPerSM = 300
	m, err := gpu.New(cfg, "scan", scheme)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEnergyPositiveAndDecomposed(t *testing.T) {
	res := run(t, protect.NewNone)
	b := Default().Evaluate(res)
	if b.Total() <= 0 {
		t.Fatal("zero energy")
	}
	if b.DRAMTransfer <= 0 || b.Caches <= 0 || b.Xbar <= 0 {
		t.Fatalf("missing components: %+v", b)
	}
	sum := b.DRAMActivate + b.DRAMTransfer + b.Caches + b.Xbar
	if sum != b.Total() {
		t.Fatal("total must equal the sum of components")
	}
}

func TestProtectionCostsEnergy(t *testing.T) {
	none := Default().Evaluate(run(t, protect.NewNone))
	naive := Default().Evaluate(run(t, protect.NewInlineNaive))
	if naive.Total() <= none.Total() {
		t.Fatalf("inline ECC (%f nJ) must cost more energy than none (%f nJ)",
			naive.Total(), none.Total())
	}
}

func TestModelScalesLinearly(t *testing.T) {
	res := run(t, protect.NewNone)
	m := Default()
	base := m.Evaluate(res)
	m.DRAMReadPJ *= 2
	m.DRAMWritePJ *= 2
	m.DRAMActivatePJ *= 2
	doubled := m.Evaluate(res)
	wantDRAM := 2 * (base.DRAMActivate + base.DRAMTransfer)
	gotDRAM := doubled.DRAMActivate + doubled.DRAMTransfer
	if diff := gotDRAM - wantDRAM; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("DRAM energy did not scale: %f vs %f", gotDRAM, wantDRAM)
	}
}
