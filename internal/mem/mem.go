// Package mem defines the memory request types shared between the cache
// hierarchy, the protection controllers, and the DRAM model.
package mem

import (
	"fmt"

	"cachecraft/internal/sim"
)

// Class labels why a DRAM access exists, for the traffic-breakdown figures.
type Class int

const (
	// Demand: data requested by the running program.
	Demand Class = iota
	// Redundancy: ECC redundancy-block traffic added by protection.
	Redundancy
	// Writeback: dirty evictions from the cache hierarchy.
	Writeback
	// RMW: extra reads forced by partial-codeword writes
	// (read-modify-write of the protection granule).
	RMW
	// Reconstruct: sibling-sector reads added by CacheCraft's granule
	// reconstruction (overfetch turned into prefetch).
	Reconstruct
	numClasses
)

// String renders the class label used in stats counters.
func (c Class) String() string {
	switch c {
	case Demand:
		return "demand"
	case Redundancy:
		return "redundancy"
	case Writeback:
		return "writeback"
	case RMW:
		return "rmw"
	case Reconstruct:
		return "reconstruct"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists all traffic classes in presentation order.
func Classes() []Class {
	return []Class{Demand, Redundancy, Writeback, RMW, Reconstruct}
}

// Request is one DRAM access. Addr is a physical byte address; Bytes is the
// transfer size (a sector or redundancy block). Done, if non-nil, runs when
// the access completes (reads deliver data then; writes complete when
// accepted by the bank).
type Request struct {
	Addr  uint64
	Write bool
	Bytes int
	Class Class
	Done  func(now sim.Cycle)
}

// String renders the request for debugging.
func (r Request) String() string {
	op := "R"
	if r.Write {
		op = "W"
	}
	return fmt.Sprintf("%s %#x %dB %s", op, r.Addr, r.Bytes, r.Class)
}
