package mem

import (
	"strings"
	"testing"
)

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		Demand:      "demand",
		Redundancy:  "redundancy",
		Writeback:   "writeback",
		RMW:         "rmw",
		Reconstruct: "reconstruct",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d renders %q, want %q", int(c), c.String(), s)
		}
	}
	if !strings.Contains(Class(99).String(), "99") {
		t.Fatal("unknown class should render its number")
	}
}

func TestClassesCoverAll(t *testing.T) {
	cs := Classes()
	if len(cs) != int(numClasses) {
		t.Fatalf("Classes() has %d entries, want %d", len(cs), int(numClasses))
	}
	seen := map[Class]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatalf("duplicate class %v", c)
		}
		seen[c] = true
	}
}

func TestRequestString(t *testing.T) {
	r := Request{Addr: 0x1000, Bytes: 32, Class: Demand}
	if got := r.String(); got != "R 0x1000 32B demand" {
		t.Fatalf("read renders %q", got)
	}
	w := Request{Addr: 0x40, Write: true, Bytes: 32, Class: Writeback}
	if got := w.String(); got != "W 0x40 32B writeback" {
		t.Fatalf("write renders %q", got)
	}
}
