package config

import "testing"

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Quick().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*GPU)
	}{
		{"zero SMs", func(g *GPU) { g.NumSMs = 0 }},
		{"zero outstanding", func(g *GPU) { g.MaxOutstanding = 0 }},
		{"l2 not divisible by banks", func(g *GPU) { g.L2Banks = 7 }},
		{"unknown layout", func(g *GPU) { g.Layout = "diagonal" }},
		{"zero accesses", func(g *GPU) { g.AccessesPerSM = 0 }},
		{"zero footprint", func(g *GPU) { g.FootprintBytes = 0 }},
		{"zero max cycles", func(g *GPU) { g.MaxCycles = 0 }},
		{"bad L1", func(g *GPU) { g.L1.LineBytes = 100 }},
		{"bad bank size", func(g *GPU) { g.L2.SizeBytes = 3 << 20 }}, // 3MiB/8 banks → 24576 sets? not pow2
		{"bad dram", func(g *GPU) { g.DRAM.Channels = 0 }},
		{"bad geometry", func(g *GPU) { g.Geometry.GranuleBytes = 100 }},
	}
	for _, m := range mutations {
		g := Default()
		m.mut(&g)
		if err := g.Validate(); err == nil {
			t.Fatalf("%s: accepted", m.name)
		}
	}
}

func TestBuildMapperBothLayouts(t *testing.T) {
	g := Default()
	for _, lay := range []string{"linear", "row-local"} {
		g.Layout = lay
		m, err := g.BuildMapper()
		if err != nil {
			t.Fatalf("%s: %v", lay, err)
		}
		if m.Name() != lay {
			t.Fatalf("mapper %q for layout %q", m.Name(), lay)
		}
		if m.ProtectedBytes() < g.FootprintBytes {
			t.Fatalf("%s: protected %d < footprint %d", lay, m.ProtectedBytes(), g.FootprintBytes)
		}
	}
	g.Layout = "nope"
	if _, err := g.BuildMapper(); err == nil {
		t.Fatal("unknown layout accepted by BuildMapper")
	}
}

func TestQuickIsSmallerThanDefault(t *testing.T) {
	d, q := Default(), Quick()
	if q.NumSMs >= d.NumSMs || q.AccessesPerSM >= d.AccessesPerSM ||
		q.FootprintBytes >= d.FootprintBytes {
		t.Fatal("Quick must be strictly smaller than Default")
	}
}
