// Package config holds the simulated GPU configuration (the evaluation's
// Table 1) and named presets used by the benchmark harness.
package config

import (
	"fmt"

	"cachecraft/internal/cache"
	"cachecraft/internal/dram"
	"cachecraft/internal/layout"
	"cachecraft/internal/sim"
)

// GPU is the full machine configuration.
type GPU struct {
	// Cores.
	NumSMs         int
	MaxOutstanding int // in-flight warp accesses per SM
	L1             cache.Config
	L1MSHRs        int
	L1MSHRTargets  int
	L1Latency      sim.Cycle

	// Interconnect: per-endpoint port bandwidth plus a shared bisection
	// limit per direction.
	XbarPortBytesPerCycle int
	XbarReqBytesPerCycle  int
	XbarRespBytesPerCycle int
	XbarLatency           sim.Cycle

	// Shared L2.
	L2            cache.Config // aggregate size; split evenly across banks
	L2Banks       int
	L2MSHRs       int // per bank
	L2MSHRTargets int
	L2Latency     sim.Cycle

	// Memory and protection.
	DRAM        dram.Config
	MemoryBytes uint64
	Geometry    layout.Geometry
	Layout      string // "linear" or "row-local"
	DecodeLat   sim.Cycle
	// ErrorRatePPM injects deterministic correctable errors into protected
	// decodes (per million granules); ErrorPenalty is the extra latency
	// each costs. Zero disables injection.
	ErrorRatePPM int
	ErrorPenalty sim.Cycle

	// Workload sizing.
	AccessesPerSM  int
	FootprintBytes uint64
	Seed           int64

	// Safety valve for the event loop.
	MaxCycles sim.Cycle
}

// Default is the evaluation's baseline configuration (Table 1): a
// mid-size GDDR6 GPU with 16 SMs, 2 MiB sectored L2, and a 1/8 inline-ECC
// carve-out.
func Default() GPU {
	return GPU{
		NumSMs:         16,
		MaxOutstanding: 24,
		L1: cache.Config{
			Name:        "l1",
			SizeBytes:   32 << 10,
			Ways:        4,
			LineBytes:   128,
			SectorBytes: 32,
			Repl:        cache.LRU,
		},
		L1MSHRs:       32,
		L1MSHRTargets: 16,
		L1Latency:     28,

		XbarPortBytesPerCycle: 64,
		XbarReqBytesPerCycle:  256,
		XbarRespBytesPerCycle: 256,
		XbarLatency:           20,

		L2: cache.Config{
			Name:        "l2",
			SizeBytes:   2 << 20,
			Ways:        16,
			LineBytes:   128,
			SectorBytes: 32,
			Repl:        cache.LRU,
			HashSets:    true,
		},
		L2Banks:       8,
		L2MSHRs:       48,
		L2MSHRTargets: 16,
		L2Latency:     90,

		DRAM:        dram.DefaultConfig(),
		MemoryBytes: 256 << 20,
		Geometry:    layout.DefaultGeometry(),
		Layout:      "linear",
		DecodeLat:   8,

		AccessesPerSM:  2000,
		FootprintBytes: 48 << 20,
		Seed:           42,

		MaxCycles: 50_000_000,
	}
}

// Validate checks the configuration for consistency.
func (g GPU) Validate() error {
	switch {
	case g.NumSMs <= 0 || g.MaxOutstanding <= 0:
		return fmt.Errorf("config: SM parameters must be positive")
	case g.L2Banks <= 0 || g.L2.SizeBytes%g.L2Banks != 0:
		return fmt.Errorf("config: L2 size %d not divisible by %d banks", g.L2.SizeBytes, g.L2Banks)
	case g.Layout != "linear" && g.Layout != "row-local":
		return fmt.Errorf("config: unknown layout %q", g.Layout)
	case g.AccessesPerSM <= 0 || g.FootprintBytes == 0:
		return fmt.Errorf("config: workload sizing must be positive")
	case g.MaxCycles == 0:
		return fmt.Errorf("config: MaxCycles must be positive")
	case g.XbarPortBytesPerCycle <= 0:
		return fmt.Errorf("config: crossbar port bandwidth must be positive")
	}
	if err := g.L1.Validate(); err != nil {
		return err
	}
	bank := g.L2
	bank.SizeBytes /= g.L2Banks
	if err := bank.Validate(); err != nil {
		return err
	}
	if err := g.DRAM.Validate(); err != nil {
		return err
	}
	if err := g.Geometry.Validate(); err != nil {
		return err
	}
	return nil
}

// BuildMapper constructs the inline-ECC layout the configuration names.
func (g GPU) BuildMapper() (layout.Mapper, error) {
	switch g.Layout {
	case "linear":
		return layout.NewLinearMapper(g.MemoryBytes, g.Geometry)
	case "row-local":
		return layout.NewRowLocalMapper(g.MemoryBytes, g.DRAM.RowBytes, g.Geometry)
	default:
		return nil, fmt.Errorf("config: unknown layout %q", g.Layout)
	}
}

// Quick returns a scaled-down configuration for unit tests: fewer SMs,
// fewer accesses, smaller footprint. Relative scheme behaviour is
// preserved; absolute numbers are not meaningful.
func Quick() GPU {
	g := Default()
	g.NumSMs = 4
	g.AccessesPerSM = 800
	g.FootprintBytes = 8 << 20
	g.MemoryBytes = 64 << 20
	g.L2.SizeBytes = 512 << 10
	return g
}
