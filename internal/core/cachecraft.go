// Package core implements CacheCraft, the reconstructed-caching memory
// protection controller this repository reproduces. The controller turns
// the traffic that inline ECC forces on the memory system into useful
// cache contents instead of discarding it:
//
//   - Granule reconstruction (R): a demand miss needs its granule's
//     redundancy block anyway, and the granule's sibling sectors sit in
//     the same DRAM row; CacheCraft fetches them on the open row and
//     inserts them into the L2, converting protection overfetch into
//     prefetch.
//   - Redundancy cache (RC): a small dedicated cache for redundancy
//     blocks, capturing the 1-block-covers-8-sectors spatial reuse without
//     stealing L2 capacity from demand data.
//   - Reuse predictor (P): a region-indexed saturating-counter table that
//     learns whether reconstructed sectors get used before eviction and
//     throttles reconstruction for pollution-prone regions.
//   - Write-coalescing buffer (W): redundancy updates from writebacks are
//     buffered per block; once every sector of a granule has been written
//     the block can be written blind, eliminating the redundancy
//     read-modify-write.
//
// The mechanisms are independently toggleable for the ablation study
// (Fig. 9).
package core

import (
	"math/bits"
	"sort"

	"cachecraft/internal/cache"
	"cachecraft/internal/mem"
	"cachecraft/internal/protect"
	"cachecraft/internal/sim"
)

// Options configures CacheCraft. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// Reconstruct enables granule reconstruction (R).
	Reconstruct bool
	// UseRC enables the dedicated redundancy cache (RC).
	UseRC bool
	// Predictor enables the reconstruction reuse predictor (P); without it
	// reconstruction is always on (when Reconstruct is).
	Predictor bool
	// WBuf enables the write-coalescing buffer (W).
	WBuf bool

	// RC geometry.
	RCSizeBytes int
	RCWays      int
	// RCLatency is the redundancy-cache hit latency.
	RCLatency sim.Cycle

	// Predictor geometry: regions of 2^PredRegionBits bytes map onto a
	// table of PredEntries two-bit counters.
	PredRegionBits int
	PredEntries    int

	// Write buffer geometry.
	WBufEntries int
	// WBufTimeout flushes a partially-coalesced entry after this many
	// cycles.
	WBufTimeout sim.Cycle
}

// DefaultOptions returns the full CacheCraft configuration used by the
// main evaluation: all four mechanisms on, 64 KiB RC, 64-entry write
// buffer.
func DefaultOptions() Options {
	return Options{
		Reconstruct:    true,
		UseRC:          true,
		Predictor:      true,
		WBuf:           true,
		RCSizeBytes:    64 << 10,
		RCWays:         16,
		RCLatency:      8,
		PredRegionBits: 14,
		PredEntries:    1024,
		WBufEntries:    64,
		WBufTimeout:    2000,
	}
}

// NewFactory returns a protect.Factory building CacheCraft controllers
// with the given options.
func NewFactory(opt Options) protect.Factory {
	return func(env *protect.Env) protect.Scheme { return New(env, opt) }
}

// CacheCraft is the controller. It implements protect.Scheme and
// protect-side reconstruction feedback.
type CacheCraft struct {
	env *protect.Env
	opt Options

	rc         *cache.Cache
	pendingRed map[uint64]*redFetch

	// reconInFlight tracks reconstruction fetches by sector address; a
	// demand miss arriving while its sector is already being reconstructed
	// merges with the fetch instead of duplicating it.
	reconInFlight map[uint64][]func(sim.Cycle)

	pred       []uint8
	sampleTick uint64

	wbuf    map[uint64]*wbufEntry
	wbufGen uint64
}

type redFetch struct {
	waiters []func(sim.Cycle)
}

type wbufEntry struct {
	mask uint64 // granule sectors whose checks are known
	gen  uint64 // generation for timeout validation
}

// New builds a CacheCraft controller.
func New(env *protect.Env, opt Options) *CacheCraft {
	c := &CacheCraft{
		env:           env,
		opt:           opt,
		pendingRed:    make(map[uint64]*redFetch),
		reconInFlight: make(map[uint64][]func(sim.Cycle)),
		wbuf:          make(map[uint64]*wbufEntry),
	}
	if opt.UseRC {
		c.rc = cache.New(cache.Config{
			Name:        "rc",
			SizeBytes:   opt.RCSizeBytes,
			Ways:        opt.RCWays,
			LineBytes:   env.Map.Geometry().RedBlockBytes,
			SectorBytes: env.Map.Geometry().RedBlockBytes,
			Repl:        cache.LRU,
		})
	}
	if opt.Predictor {
		n := opt.PredEntries
		if n <= 0 {
			n = 1024
		}
		c.pred = make([]uint8, n)
		for i := range c.pred {
			c.pred[i] = predMax // optimistic start: reconstruct until proven wasteful
		}
	}
	return c
}

// Name identifies the scheme.
func (c *CacheCraft) Name() string { return "cachecraft" }

// RC exposes the redundancy cache for tests and stats (nil when disabled).
func (c *CacheCraft) RC() *cache.Cache { return c.rc }

// taggedRed returns the RedTag-qualified redundancy block address covering
// a data address.
func (c *CacheCraft) taggedRed(dataAddr uint64) uint64 {
	return protect.RedTag | c.env.Map.RedundancyAddr(dataAddr)
}

// granuleSectorIndex converts a data sector address to its index within
// its granule.
func (c *CacheCraft) granuleSectorIndex(sa uint64) int {
	geo := c.env.Map.Geometry()
	return int((sa - c.env.Map.GranuleBase(sa)) / uint64(geo.SectorBytes))
}

// --- Redundancy read path -------------------------------------------------

// redReady invokes ready once the redundancy block covering lineAddr is
// available, trying the write buffer, the RC, and DRAM in that order.
// neededMask is the granule-sector mask the caller must verify (for write
// buffer forwarding).
func (c *CacheCraft) redReady(now sim.Cycle, lineAddr uint64, neededMask uint64, ready func(sim.Cycle)) {
	env := c.env
	tagged := c.taggedRed(lineAddr)

	// Forward from the write buffer when it already holds the needed
	// checks (they are newer than DRAM's).
	if c.opt.WBuf {
		if e, ok := c.wbuf[tagged]; ok && e.mask&neededMask == neededMask {
			env.Stats.Inc("red_wbuf_fwd")
			env.Eng.At(now, ready)
			return
		}
	}
	if c.opt.UseRC {
		if c.rc.Access(tagged, false) == cache.Hit {
			env.Stats.Inc("red_rc_hits")
			env.Eng.At(now+c.opt.RCLatency, ready)
			return
		}
	}
	if f, ok := c.pendingRed[tagged]; ok {
		env.Stats.Inc("red_merged")
		f.waiters = append(f.waiters, ready)
		return
	}
	f := &redFetch{waiters: []func(sim.Cycle){ready}}
	c.pendingRed[tagged] = f
	env.Stats.Inc("red_reads_dram")
	env.DRAM.Submit(now, mem.Request{
		Addr:  tagged &^ protect.RedTag,
		Bytes: env.Map.Geometry().RedBlockBytes,
		Class: mem.Redundancy,
		Done: func(at sim.Cycle) {
			delete(c.pendingRed, tagged)
			c.insertRC(at, tagged, false)
			for _, w := range f.waiters {
				w(at)
			}
		},
	})
}

// insertRC fills a redundancy block into the RC, writing back any dirty
// victim.
func (c *CacheCraft) insertRC(now sim.Cycle, tagged uint64, dirty bool) {
	if !c.opt.UseRC {
		return
	}
	var dmask uint64
	if dirty {
		dmask = 1
	}
	if ev := c.rc.Fill(tagged, 1, dmask); ev != nil && ev.DirtyMask != 0 {
		c.env.Stats.Inc("red_rc_dirty_evictions")
		c.env.DRAM.Submit(now, mem.Request{
			Addr:  ev.LineAddr &^ protect.RedTag,
			Write: true,
			Bytes: c.env.Map.Geometry().RedBlockBytes,
			Class: mem.Redundancy,
		})
	}
}

// --- Reconstruction -------------------------------------------------------

// predIndex maps a data address to its predictor slot.
func (c *CacheCraft) predIndex(addr uint64) int {
	bits := c.opt.PredRegionBits
	if bits <= 0 {
		bits = 14
	}
	return int((addr >> uint(bits)) % uint64(len(c.pred)))
}

// predMax is the saturating-counter ceiling; only saturated regions
// reconstruct. Waste decrements twice as fast as use increments, so mixed
// regions stay off — extra traffic on a saturated memory system costs
// more than a missed prefetch saves.
const predMax = 3

// shouldReconstruct consults the predictor (always true when disabled).
// Regions predicted useless still reconstruct on a 1-in-8 sample so the
// predictor can relearn when a phase change brings locality back.
func (c *CacheCraft) shouldReconstruct(addr uint64) bool {
	if !c.opt.Reconstruct {
		return false
	}
	if !c.opt.Predictor {
		return true
	}
	return c.pred[c.predIndex(addr)] >= predMax
}

// shouldProbe rate-limits exploratory reconstruction for predicted-off
// regions: a 1-in-64 sample of a single sector keeps the predictor able to
// relearn at negligible traffic cost.
func (c *CacheCraft) shouldProbe() bool {
	c.sampleTick++
	return c.sampleTick&63 == 0
}

// ReconstructedUse receives usage feedback from the L2: used is true when
// a reconstructed sector was referenced before eviction.
func (c *CacheCraft) ReconstructedUse(addr uint64, used bool) {
	if used {
		c.env.Stats.Inc("reconstruct_used")
	} else {
		c.env.Stats.Inc("reconstruct_wasted")
	}
	if !c.opt.Predictor {
		return
	}
	i := c.predIndex(addr)
	if used {
		if c.pred[i] < predMax {
			c.pred[i]++
		}
		return
	}
	// Waste is punished harder than use is rewarded.
	if c.pred[i] >= 2 {
		c.pred[i] -= 2
	} else {
		c.pred[i] = 0
	}
}

// reconstruct fetches the granule's sibling sectors that are neither
// cached nor in flight and inserts them into the L2 as reconstructed
// sectors. Only the demanded line and the granule's forward lines are
// considered: access streams overwhelmingly walk forward, and backward
// siblings of a mid-granule miss are mostly dead weight. In probe mode
// only the first eligible sector is fetched (predictor exploration).
func (c *CacheCraft) reconstruct(now sim.Cycle, lineAddr uint64, demandMask uint64, probe bool) {
	env := c.env
	geo := env.Map.Geometry()
	gbase := env.Map.GranuleBase(lineAddr)
	spl := geo.SectorsPerLine()
	for s := 0; s < geo.SectorsPerGranule(); s++ {
		sa := gbase + uint64(s*geo.SectorBytes)
		if sa < lineAddr {
			continue // backward sibling: skip
		}
		// Skip the demanded sectors themselves.
		if sa < lineAddr+uint64(geo.LineBytes) {
			idx := int(sa-lineAddr) / geo.SectorBytes
			if idx < spl && demandMask&(1<<idx) != 0 {
				continue
			}
		}
		if env.L2.Present(sa) || env.L2.Pending(sa) {
			continue
		}
		if _, ok := c.reconInFlight[sa]; ok {
			continue
		}
		env.Stats.Inc("reconstruct_sectors")
		c.reconInFlight[sa] = nil
		env.DRAM.Submit(now, mem.Request{
			Addr:  env.Map.DataPhys(sa),
			Bytes: geo.SectorBytes,
			Class: mem.Reconstruct,
			Done: func(at sim.Cycle) {
				waiters := c.reconInFlight[sa]
				delete(c.reconInFlight, sa)
				if len(waiters) > 0 {
					// A demand miss merged with this fetch. Traffic-wise
					// this is neutral (the demand would have fetched the
					// sector anyway), so it does NOT train the predictor —
					// only genuine later-use is evidence that prefetching
					// the granule was worth extra bandwidth.
					env.Stats.Inc("reconstruct_merged")
					env.L2.Insert(at, sa, false)
					for _, w := range waiters {
						w(at)
					}
					return
				}
				env.L2.InsertReconstructed(at, sa)
			},
		})
		if probe {
			return
		}
	}
}

// --- Scheme interface -----------------------------------------------------

// ReadMiss fetches the demanded sectors, obtains the covering redundancy
// (write buffer / RC / DRAM), optionally reconstructs the rest of the
// granule, and completes after decode.
func (c *CacheCraft) ReadMiss(now sim.Cycle, lineAddr uint64, mask uint64, class mem.Class, done func(sim.Cycle)) {
	env := c.env
	geo := env.Map.Geometry()
	spl := geo.SectorsPerLine()
	mask &= uint64(1)<<spl - 1
	neededMask := uint64(0)
	for s := 0; s < spl; s++ {
		if mask&(1<<s) != 0 {
			neededMask |= 1 << c.granuleSectorIndex(lineAddr+uint64(s*geo.SectorBytes))
		}
	}
	finish := func(at sim.Cycle) { env.FinishDecode(at, lineAddr, done) }
	remaining := bits.OnesCount64(mask) + 1
	join := func(at sim.Cycle) {
		remaining--
		if remaining == 0 {
			finish(at)
		}
	}
	for s := 0; s < spl; s++ {
		if mask&(1<<s) == 0 {
			continue
		}
		sa := lineAddr + uint64(s*geo.SectorBytes)
		if waiters, ok := c.reconInFlight[sa]; ok {
			// The sector is already on its way as a reconstruction; merge.
			c.reconInFlight[sa] = append(waiters, join)
			continue
		}
		env.DRAM.Submit(now, mem.Request{
			Addr:  env.Map.DataPhys(sa),
			Bytes: geo.SectorBytes,
			Class: class,
			Done:  join,
		})
	}
	c.redReady(now, lineAddr, neededMask, join)
	if class == mem.Demand && c.opt.Reconstruct {
		switch {
		case c.shouldReconstruct(lineAddr):
			c.reconstruct(now, lineAddr, mask, false)
		case c.shouldProbe():
			c.reconstruct(now, lineAddr, mask, true)
		}
	}
}

// Writeback writes dirty data sectors and coalesces the redundancy update
// through the RC and the write buffer.
func (c *CacheCraft) Writeback(now sim.Cycle, lineAddr uint64, dirtyMask uint64) {
	env := c.env
	geo := env.Map.Geometry()
	if lineAddr&protect.RedTag != 0 {
		// CacheCraft never inserts redundancy into the L2, but stay safe
		// against future wiring: write tagged lines straight out.
		for s := 0; s < geo.SectorsPerLine(); s++ {
			if dirtyMask&(1<<s) != 0 {
				env.DRAM.Submit(now, mem.Request{
					Addr:  (lineAddr &^ protect.RedTag) + uint64(s*geo.SectorBytes),
					Write: true,
					Bytes: geo.SectorBytes,
					Class: mem.Redundancy,
				})
			}
		}
		return
	}
	var writtenMask uint64
	for s := 0; s < geo.SectorsPerLine(); s++ {
		if dirtyMask&(1<<s) == 0 {
			continue
		}
		sa := lineAddr + uint64(s*geo.SectorBytes)
		writtenMask |= 1 << c.granuleSectorIndex(sa)
		env.DRAM.Submit(now, mem.Request{
			Addr:  env.Map.DataPhys(sa),
			Write: true,
			Bytes: geo.SectorBytes,
			Class: mem.Writeback,
		})
	}
	if writtenMask != 0 {
		c.redUpdate(now, lineAddr, writtenMask)
	}
}

// redUpdate folds new check bytes for the given granule sectors into the
// redundancy block, avoiding the read-modify-write whenever possible.
func (c *CacheCraft) redUpdate(now sim.Cycle, lineAddr uint64, writtenMask uint64) {
	env := c.env
	geo := env.Map.Geometry()
	tagged := c.taggedRed(lineAddr)
	fullMask := uint64(1)<<geo.SectorsPerGranule() - 1

	// A cached copy absorbs the update in place.
	if c.opt.UseRC && c.rc.Access(tagged, true) == cache.Hit {
		env.Stats.Inc("red_wb_rc_hits")
		return
	}
	if c.opt.WBuf {
		e, ok := c.wbuf[tagged]
		if !ok {
			if len(c.wbuf) >= c.wbufEntriesMax() {
				c.flushOldest(now)
			}
			c.wbufGen++
			e = &wbufEntry{gen: c.wbufGen}
			c.wbuf[tagged] = e
			gen := e.gen
			env.Eng.At(now+c.wbufTimeout(), func(at sim.Cycle) {
				if cur, ok := c.wbuf[tagged]; ok && cur.gen == gen {
					env.Stats.Inc("red_wbuf_timeout")
					c.flushEntry(at, tagged, cur)
				}
			})
		}
		e.mask |= writtenMask
		if e.mask == fullMask {
			// Every check byte of the block is known: write it blind.
			delete(c.wbuf, tagged)
			env.Stats.Inc("red_blind_writes")
			env.DRAM.Submit(now, mem.Request{
				Addr:  tagged &^ protect.RedTag,
				Write: true,
				Bytes: geo.RedBlockBytes,
				Class: mem.Redundancy,
			})
		}
		return
	}
	if c.opt.UseRC {
		// Allocate into the RC via a fetch, then merge there.
		env.Stats.Inc("red_rmw")
		env.DRAM.Submit(now, mem.Request{
			Addr:  tagged &^ protect.RedTag,
			Bytes: geo.RedBlockBytes,
			Class: mem.RMW,
			Done: func(at sim.Cycle) {
				c.insertRC(at, tagged, true)
			},
		})
		return
	}
	// No RC, no write buffer: naive read-modify-write.
	env.Stats.Inc("red_rmw")
	env.DRAM.Submit(now, mem.Request{
		Addr:  tagged &^ protect.RedTag,
		Bytes: geo.RedBlockBytes,
		Class: mem.RMW,
		Done: func(at sim.Cycle) {
			env.DRAM.Submit(at+env.DecodeLat, mem.Request{
				Addr:  tagged &^ protect.RedTag,
				Write: true,
				Bytes: geo.RedBlockBytes,
				Class: mem.Redundancy,
			})
		},
	})
}

func (c *CacheCraft) wbufEntriesMax() int {
	if c.opt.WBufEntries <= 0 {
		return 64
	}
	return c.opt.WBufEntries
}

func (c *CacheCraft) wbufTimeout() sim.Cycle {
	if c.opt.WBufTimeout <= 0 {
		return 2000
	}
	return c.opt.WBufTimeout
}

// flushOldest evicts the lowest-generation write-buffer entry.
func (c *CacheCraft) flushOldest(now sim.Cycle) {
	var oldestAddr uint64
	var oldest *wbufEntry
	for a, e := range c.wbuf {
		if oldest == nil || e.gen < oldest.gen {
			oldest, oldestAddr = e, a
		}
	}
	if oldest != nil {
		c.env.Stats.Inc("red_wbuf_overflow")
		c.flushEntry(now, oldestAddr, oldest)
	}
}

// flushEntry retires a partially-coalesced entry: the unknown check bytes
// must be read back (read-modify-write) before the block can be written.
func (c *CacheCraft) flushEntry(now sim.Cycle, tagged uint64, e *wbufEntry) {
	delete(c.wbuf, tagged)
	env := c.env
	geo := env.Map.Geometry()
	env.Stats.Inc("red_rmw")
	env.DRAM.Submit(now, mem.Request{
		Addr:  tagged &^ protect.RedTag,
		Bytes: geo.RedBlockBytes,
		Class: mem.RMW,
		Done: func(at sim.Cycle) {
			env.DRAM.Submit(at+env.DecodeLat, mem.Request{
				Addr:  tagged &^ protect.RedTag,
				Write: true,
				Bytes: geo.RedBlockBytes,
				Class: mem.Redundancy,
			})
		},
	})
}

// NeedsRMWFetch is true under ECC.
func (c *CacheCraft) NeedsRMWFetch() bool { return true }

// Drain flushes the write buffer and writes back dirty RC lines.
func (c *CacheCraft) Drain(now sim.Cycle) {
	// Flush in address order, not map order: iteration order would vary
	// run to run, reordering the drain's DRAM requests and making row-hit
	// counts and latency histograms nondeterministic.
	addrs := make([]uint64, 0, len(c.wbuf))
	for tagged := range c.wbuf {
		addrs = append(addrs, tagged)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, tagged := range addrs {
		c.flushEntry(now, tagged, c.wbuf[tagged])
	}
	if c.rc != nil {
		geo := c.env.Map.Geometry()
		c.rc.Walk(func(lineAddr uint64, vmask, dmask uint64) {
			if dmask != 0 {
				c.env.DRAM.Submit(now, mem.Request{
					Addr:  lineAddr &^ protect.RedTag,
					Write: true,
					Bytes: geo.RedBlockBytes,
					Class: mem.Redundancy,
				})
				c.rc.CleanSector(lineAddr)
			}
		})
	}
}

var _ protect.Scheme = (*CacheCraft)(nil)
