package core

import (
	"reflect"
	"testing"

	"cachecraft/internal/dram"
	"cachecraft/internal/layout"
	"cachecraft/internal/mem"
	"cachecraft/internal/protect"
	"cachecraft/internal/sim"
	"cachecraft/internal/stats"
)

// fakeL2 is a minimal protect.CacheSide for controller unit tests.
type fakeL2 struct {
	present map[uint64]bool
	dirty   map[uint64]bool
	recon   []uint64
}

func newFakeL2() *fakeL2 {
	return &fakeL2{present: map[uint64]bool{}, dirty: map[uint64]bool{}}
}

func (f *fakeL2) Present(addr uint64) bool { return f.present[addr] }
func (f *fakeL2) Pending(addr uint64) bool { return false }
func (f *fakeL2) Insert(now sim.Cycle, addr uint64, dirty bool) {
	f.present[addr] = true
	if dirty {
		f.dirty[addr] = true
	}
}
func (f *fakeL2) InsertReconstructed(now sim.Cycle, addr uint64) {
	f.Insert(now, addr, false)
	f.recon = append(f.recon, addr)
}
func (f *fakeL2) MarkDirty(addr uint64) { f.dirty[addr] = true }

func testEnv(t *testing.T) (*protect.Env, *sim.Engine, *fakeL2) {
	t.Helper()
	eng := sim.NewEngine()
	mapper, err := layout.NewLinearMapper(64<<20, layout.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	l2 := newFakeL2()
	cfg := dram.DefaultConfig()
	cfg.Channels = 2
	env := &protect.Env{
		Eng:       eng,
		DRAM:      dram.New(eng, cfg),
		Map:       mapper,
		L2:        l2,
		Stats:     stats.NewCounters(),
		DecodeLat: 8,
	}
	return env, eng, l2
}

func drain(eng *sim.Engine) { eng.Run(1 << 30) }

func TestReadMissFetchesDemandPlusRedundancy(t *testing.T) {
	env, eng, _ := testEnv(t)
	opt := DefaultOptions()
	opt.Reconstruct = false
	c := New(env, opt)
	done := false
	c.ReadMiss(0, 0, 0b0001, mem.Demand, func(sim.Cycle) { done = true })
	drain(eng)
	if !done {
		t.Fatal("read never completed")
	}
	if env.DRAM.Stats.Get("bytes_demand") != 32 {
		t.Fatalf("demand = %d", env.DRAM.Stats.Get("bytes_demand"))
	}
	if env.DRAM.Stats.Get("bytes_redundancy") != 32 {
		t.Fatalf("redundancy = %d", env.DRAM.Stats.Get("bytes_redundancy"))
	}
}

func TestRCHitSkipsRedundancyFetch(t *testing.T) {
	env, eng, _ := testEnv(t)
	opt := DefaultOptions()
	opt.Reconstruct = false
	c := New(env, opt)
	// First miss populates the RC; second miss in the same granule hits.
	c.ReadMiss(0, 0, 0b0001, mem.Demand, func(sim.Cycle) {})
	drain(eng)
	c.ReadMiss(eng.Now(), 128, 0b0001, mem.Demand, func(sim.Cycle) {})
	drain(eng)
	if env.Stats.Get("red_rc_hits") != 1 {
		t.Fatalf("rc hits = %d", env.Stats.Get("red_rc_hits"))
	}
	if env.Stats.Get("red_reads_dram") != 1 {
		t.Fatalf("red reads = %d, want 1", env.Stats.Get("red_reads_dram"))
	}
}

func TestReconstructionFetchesForwardSiblingsOnly(t *testing.T) {
	env, eng, l2 := testEnv(t)
	opt := DefaultOptions()
	opt.Predictor = false // always reconstruct
	c := New(env, opt)
	// Miss on the granule's SECOND line: no forward siblings exist, so no
	// reconstruction.
	c.ReadMiss(0, 128, 0b1111, mem.Demand, func(sim.Cycle) {})
	drain(eng)
	if len(l2.recon) != 0 {
		t.Fatalf("backward reconstruction happened: %v", l2.recon)
	}
	// Miss on the FIRST line reconstructs the second line's sectors.
	c.ReadMiss(eng.Now(), 256, 0b1111, mem.Demand, func(sim.Cycle) {})
	drain(eng)
	if len(l2.recon) != 4 {
		t.Fatalf("reconstructed %d sectors, want 4 (the sibling line)", len(l2.recon))
	}
	for _, sa := range l2.recon {
		if sa < 256+128 || sa >= 512 {
			t.Fatalf("reconstructed sector %#x outside the sibling line", sa)
		}
	}
}

func TestReconstructionSkipsPresentSectors(t *testing.T) {
	env, eng, l2 := testEnv(t)
	opt := DefaultOptions()
	opt.Predictor = false
	c := New(env, opt)
	l2.present[128] = true // first sibling sector already cached
	c.ReadMiss(0, 0, 0b1111, mem.Demand, func(sim.Cycle) {})
	drain(eng)
	if len(l2.recon) != 3 {
		t.Fatalf("reconstructed %d, want 3 (one already present)", len(l2.recon))
	}
}

func TestDemandMergesWithInflightReconstruction(t *testing.T) {
	env, eng, l2 := testEnv(t)
	opt := DefaultOptions()
	opt.Predictor = false
	c := New(env, opt)
	c.ReadMiss(0, 0, 0b1111, mem.Demand, func(sim.Cycle) {}) // reconstructs line 128
	// Demand for line 128 arrives while the reconstruction is in flight.
	done := false
	c.ReadMiss(1, 128, 0b1111, mem.Demand, func(sim.Cycle) { done = true })
	drain(eng)
	if !done {
		t.Fatal("merged demand never completed")
	}
	if env.Stats.Get("reconstruct_merged") != 4 {
		t.Fatalf("merged = %d, want 4 sectors", env.Stats.Get("reconstruct_merged"))
	}
	// The merged sectors must not have been fetched twice: demand bytes
	// cover only line 0's four sectors.
	if env.DRAM.Stats.Get("bytes_demand") != 128 {
		t.Fatalf("demand bytes = %d, want 128", env.DRAM.Stats.Get("bytes_demand"))
	}
	_ = l2
}

func TestPredictorLearnsWaste(t *testing.T) {
	env, _, _ := testEnv(t)
	c := New(env, DefaultOptions())
	addr := uint64(0x10000)
	if !c.shouldReconstruct(addr) {
		t.Fatal("predictor should start on (optimistic)")
	}
	c.ReconstructedUse(addr, false)
	if c.shouldReconstruct(addr) {
		t.Fatal("one wasted event should turn the region off (waste is punished 2x)")
	}
	// Recovery takes more used events than the waste cost.
	c.ReconstructedUse(addr, true)
	if c.shouldReconstruct(addr) {
		t.Fatal("one used event must not re-enable yet")
	}
	c.ReconstructedUse(addr, true)
	if !c.shouldReconstruct(addr) {
		t.Fatal("two used events should saturate the region back on")
	}
}

func TestPredictorSamplingProbes(t *testing.T) {
	env, _, _ := testEnv(t)
	c := New(env, DefaultOptions())
	probes := 0
	for i := 0; i < 640; i++ {
		if c.shouldProbe() {
			probes++
		}
	}
	if probes != 10 {
		t.Fatalf("probes = %d, want 1 in 64", probes)
	}
}

func TestWriteBufferBlindWriteOnFullGranule(t *testing.T) {
	env, eng, _ := testEnv(t)
	opt := DefaultOptions()
	opt.Reconstruct = false
	opt.UseRC = false // force the write-buffer path
	c := New(env, opt)
	// Write back both lines of granule 0 → all 8 sectors known → blind
	// write, no RMW.
	c.Writeback(0, 0, 0b1111)
	c.Writeback(0, 128, 0b1111)
	drain(eng)
	if env.Stats.Get("red_blind_writes") != 1 {
		t.Fatalf("blind writes = %d", env.Stats.Get("red_blind_writes"))
	}
	if env.Stats.Get("red_rmw") != 0 {
		t.Fatalf("rmw = %d, want 0", env.Stats.Get("red_rmw"))
	}
	// 8 data sector writes + 1 redundancy write.
	if env.DRAM.Stats.Get("bytes_written") != 8*32+32 {
		t.Fatalf("written = %d", env.DRAM.Stats.Get("bytes_written"))
	}
}

func TestWriteBufferTimeoutFlushesViaRMW(t *testing.T) {
	env, eng, _ := testEnv(t)
	opt := DefaultOptions()
	opt.Reconstruct = false
	opt.UseRC = false
	opt.WBufTimeout = 100
	c := New(env, opt)
	c.Writeback(0, 0, 0b0001) // partial granule
	drain(eng)
	if env.Stats.Get("red_wbuf_timeout") != 1 {
		t.Fatalf("timeouts = %d", env.Stats.Get("red_wbuf_timeout"))
	}
	if env.Stats.Get("red_rmw") != 1 {
		t.Fatalf("rmw = %d, want 1 after timeout", env.Stats.Get("red_rmw"))
	}
}

func TestWriteBufferOverflowFlushesOldest(t *testing.T) {
	env, eng, _ := testEnv(t)
	opt := DefaultOptions()
	opt.Reconstruct = false
	opt.UseRC = false
	opt.WBufEntries = 2
	opt.WBufTimeout = 1 << 20
	c := New(env, opt)
	for g := uint64(0); g < 3; g++ {
		c.Writeback(0, g*256, 0b0001)
	}
	if env.Stats.Get("red_wbuf_overflow") != 1 {
		t.Fatalf("overflows = %d", env.Stats.Get("red_wbuf_overflow"))
	}
	drain(eng)
}

func TestWriteBufferForwardsToReads(t *testing.T) {
	env, eng, _ := testEnv(t)
	opt := DefaultOptions()
	opt.Reconstruct = false
	opt.UseRC = false
	opt.WBufTimeout = 1 << 20
	c := New(env, opt)
	c.Writeback(0, 0, 0b1111) // sectors 0-3 of granule known
	done := false
	c.ReadMiss(1, 0, 0b0001, mem.Demand, func(sim.Cycle) { done = true })
	drain(eng)
	if !done {
		t.Fatal("read never completed")
	}
	if env.Stats.Get("red_wbuf_fwd") != 1 {
		t.Fatalf("wbuf forwards = %d", env.Stats.Get("red_wbuf_fwd"))
	}
	if env.Stats.Get("red_reads_dram") != 0 {
		t.Fatalf("red reads = %d, want 0 (forwarded)", env.Stats.Get("red_reads_dram"))
	}
}

func TestRCWritebackMerge(t *testing.T) {
	env, eng, _ := testEnv(t)
	opt := DefaultOptions()
	opt.Reconstruct = false
	c := New(env, opt)
	// Populate the RC via a read, then a writeback to the same granule
	// merges in place with no DRAM redundancy traffic.
	c.ReadMiss(0, 0, 0b0001, mem.Demand, func(sim.Cycle) {})
	drain(eng)
	before := env.DRAM.Stats.Get("bytes_written")
	c.Writeback(eng.Now(), 0, 0b0001)
	drain(eng)
	if env.Stats.Get("red_wb_rc_hits") != 1 {
		t.Fatalf("rc wb hits = %d", env.Stats.Get("red_wb_rc_hits"))
	}
	// Only the data sector write reached DRAM so far.
	if got := env.DRAM.Stats.Get("bytes_written") - before; got != 32 {
		t.Fatalf("written delta = %d, want 32", got)
	}
}

func TestDrainFlushesDirtyRCAndWBuf(t *testing.T) {
	env, eng, _ := testEnv(t)
	opt := DefaultOptions()
	opt.Reconstruct = false
	opt.WBufTimeout = 1 << 20
	c := New(env, opt)
	// Dirty RC entry (read then writeback-merge).
	c.ReadMiss(0, 0, 0b0001, mem.Demand, func(sim.Cycle) {})
	drain(eng)
	c.Writeback(eng.Now(), 0, 0b0001)
	// Pending write-buffer entry for a different granule (RC miss).
	c.Writeback(eng.Now(), 1024, 0b0001)
	before := env.DRAM.Stats.Get("bytes_redundancy")
	c.Drain(eng.Now())
	drain(eng)
	// Drain writes the dirty RC block and RMWs the partial wbuf entry
	// (one red read + one red write).
	after := env.DRAM.Stats.Get("bytes_redundancy")
	if after-before < 64 {
		t.Fatalf("drain moved only %d redundancy bytes", after-before)
	}
	if env.Stats.Get("red_rmw") != 1 {
		t.Fatalf("rmw = %d", env.Stats.Get("red_rmw"))
	}
}

func TestNoRCNoWBufFallsBackToNaiveRMW(t *testing.T) {
	env, eng, _ := testEnv(t)
	c := New(env, Options{}) // everything off
	c.Writeback(0, 0, 0b0001)
	drain(eng)
	if env.Stats.Get("red_rmw") != 1 {
		t.Fatalf("rmw = %d", env.Stats.Get("red_rmw"))
	}
	if env.DRAM.Stats.Get("bytes_redundancy") != 32 {
		t.Fatalf("red write bytes = %d", env.DRAM.Stats.Get("bytes_redundancy"))
	}
}

func TestRedTagWritebackGoesStraightOut(t *testing.T) {
	env, eng, _ := testEnv(t)
	c := New(env, DefaultOptions())
	c.Writeback(0, protect.RedTag|4096, 0b0001)
	drain(eng)
	if env.DRAM.Stats.Get("bytes_redundancy") != 32 {
		t.Fatalf("red bytes = %d", env.DRAM.Stats.Get("bytes_redundancy"))
	}
}

func TestNameAndInterfaces(t *testing.T) {
	env, _, _ := testEnv(t)
	c := New(env, DefaultOptions())
	if c.Name() != "cachecraft" {
		t.Fatalf("name = %q", c.Name())
	}
	if !c.NeedsRMWFetch() {
		t.Fatal("cachecraft is an ECC scheme; RMW fetch required")
	}
	var _ protect.ReconstructionObserver = c
	if c.RC() == nil {
		t.Fatal("RC enabled but nil")
	}
	opt := DefaultOptions()
	opt.UseRC = false
	if New(env, opt).RC() != nil {
		t.Fatal("RC disabled but non-nil")
	}
}

func TestReconstruct1of16GranuleForwardLines(t *testing.T) {
	eng := sim.NewEngine()
	mapper, err := layout.NewLinearMapper(64<<20, layout.Geometry1of16())
	if err != nil {
		t.Fatal(err)
	}
	l2 := newFakeL2()
	dcfg := dram.DefaultConfig()
	dcfg.Channels = 2
	env := &protect.Env{
		Eng:       eng,
		DRAM:      dram.New(eng, dcfg),
		Map:       mapper,
		L2:        l2,
		Stats:     stats.NewCounters(),
		DecodeLat: 8,
	}
	opt := DefaultOptions()
	opt.Predictor = false
	c := New(env, opt)
	// 512B granule = 4 lines; a miss on line 1 (offset 128) reconstructs
	// lines 2 and 3 only (8 sectors), never line 0.
	c.ReadMiss(0, 128, 0b1111, mem.Demand, func(sim.Cycle) {})
	eng.Run(1 << 30)
	if len(l2.recon) != 8 {
		t.Fatalf("reconstructed %d sectors, want 8", len(l2.recon))
	}
	for _, sa := range l2.recon {
		if sa < 256 || sa >= 512 {
			t.Fatalf("reconstructed %#x outside forward lines", sa)
		}
	}
}

func TestRedundancyDirtyRCDrainsOnce(t *testing.T) {
	env, eng, _ := testEnv(t)
	opt := DefaultOptions()
	opt.Reconstruct = false
	c := New(env, opt)
	// Dirty the RC entry via read + writeback-merge, then drain twice:
	// the block must be written exactly once.
	c.ReadMiss(0, 0, 0b0001, mem.Demand, func(sim.Cycle) {})
	drain(eng)
	c.Writeback(eng.Now(), 0, 0b0001)
	before := env.DRAM.Stats.Get("bytes_redundancy")
	c.Drain(eng.Now())
	c.Drain(eng.Now())
	drain(eng)
	if got := env.DRAM.Stats.Get("bytes_redundancy") - before; got != 32 {
		t.Fatalf("drain wrote %d redundancy bytes, want exactly one block", got)
	}
}

func TestWBufTimeoutGenerationGuard(t *testing.T) {
	// An entry flushed by a full-granule blind write must not be flushed
	// again by its stale timeout event.
	env, eng, _ := testEnv(t)
	opt := DefaultOptions()
	opt.Reconstruct = false
	opt.UseRC = false
	opt.WBufTimeout = 50
	c := New(env, opt)
	c.Writeback(0, 0, 0b1111)
	c.Writeback(1, 128, 0b1111) // completes the granule → blind write
	drain(eng)                  // the stale timeout fires here
	if env.Stats.Get("red_blind_writes") != 1 {
		t.Fatalf("blind writes = %d", env.Stats.Get("red_blind_writes"))
	}
	if env.Stats.Get("red_wbuf_timeout") != 0 {
		t.Fatalf("stale timeout flushed: %d", env.Stats.Get("red_wbuf_timeout"))
	}
	if env.Stats.Get("red_rmw") != 0 {
		t.Fatalf("rmw = %d, want 0", env.Stats.Get("red_rmw"))
	}
}

// drainOrderHook records the address of every DRAM request submitted
// while attached (dram.Hook).
type drainOrderHook struct{ addrs []uint64 }

func (h *drainOrderHook) Submitted(_ sim.Cycle, req mem.Request, _, _ int, _ int64) {
	h.addrs = append(h.addrs, req.Addr)
}
func (h *drainOrderHook) Serviced(sim.Cycle, mem.Request, int, int, int64, int64, sim.Cycle) {}
func (h *drainOrderHook) Refreshed(sim.Cycle, int)                                           {}

// TestCacheCraftDrainDeterministic is the regression test for the
// map-order drain bug: Drain used to iterate the write buffer directly,
// flushing entries in Go's randomized map order, so the drain phase's
// DRAM request sequence — and with it row-hit counters and the latency
// histogram — varied between identical runs. The drain must flush in
// ascending address order, identically every run.
func TestCacheCraftDrainDeterministic(t *testing.T) {
	run := func() []uint64 {
		env, eng, _ := testEnv(t)
		opt := Options{WBuf: true, WBufEntries: 256, WBufTimeout: 1 << 20}
		c := New(env, opt)
		// One partially-written granule per iteration, far enough apart to
		// be distinct redundancy blocks; none reach the full-granule mask,
		// so all stay buffered until Drain.
		for i := 0; i < 48; i++ {
			c.Writeback(sim.Cycle(i), uint64(i)*4096, 0b0001)
		}
		hook := &drainOrderHook{}
		env.DRAM.SetHook(hook)
		c.Drain(eng.Now())
		return hook.addrs
	}
	a := run()
	if len(a) != 48 {
		t.Fatalf("drain submitted %d requests, want 48", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			t.Fatalf("drain order not ascending at %d: %#x then %#x", i, a[i-1], a[i])
		}
	}
	b := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical drains submitted different orders:\n%v\nvs\n%v", a, b)
	}
}
