package cache

import "fmt"

// MSHR is a miss status holding register file: it tracks outstanding line
// fills and merges requests to sectors that are already being fetched, so a
// burst of misses to one line costs one memory access. T is the caller's
// per-request bookkeeping payload, returned when the fill completes.
type MSHR[T any] struct {
	entries    map[uint64]*mshrEntry[T]
	maxEntries int
	maxTargets int
}

type mshrEntry[T any] struct {
	pendingMask uint64 // sectors requested from the next level
	targets     []T
}

// NewMSHR builds an MSHR file with the given entry and per-entry target
// limits.
func NewMSHR[T any](maxEntries, maxTargets int) *MSHR[T] {
	if maxEntries <= 0 || maxTargets <= 0 {
		panic(fmt.Sprintf("cache: invalid MSHR geometry %d/%d", maxEntries, maxTargets))
	}
	return &MSHR[T]{
		entries:    make(map[uint64]*mshrEntry[T]),
		maxEntries: maxEntries,
		maxTargets: maxTargets,
	}
}

// Result classifies an Allocate outcome.
type MSHRResult int

const (
	// MSHRNew: a new entry was created; the caller must issue the fetch.
	MSHRNew MSHRResult = iota
	// MSHRMerged: an existing entry absorbed the request; no fetch needed
	// for already-pending sectors, but the caller must fetch any sectors
	// newly added to the pending mask (see the returned fetch mask).
	MSHRMerged
	// MSHRFull: no entry or target space; the requester must stall.
	MSHRFull
)

// String renders the result.
func (r MSHRResult) String() string {
	switch r {
	case MSHRNew:
		return "new"
	case MSHRMerged:
		return "merged"
	case MSHRFull:
		return "full"
	default:
		return fmt.Sprintf("MSHRResult(%d)", int(r))
	}
}

// Allocate registers a miss on lineAddr for the given sector mask,
// attaching target for completion callback. It returns the sectors the
// caller must actually fetch (those not already pending).
func (m *MSHR[T]) Allocate(lineAddr uint64, sectorMask uint64, target T) (MSHRResult, uint64) {
	if e, ok := m.entries[lineAddr]; ok {
		if len(e.targets) >= m.maxTargets {
			return MSHRFull, 0
		}
		fetch := sectorMask &^ e.pendingMask
		e.pendingMask |= sectorMask
		e.targets = append(e.targets, target)
		return MSHRMerged, fetch
	}
	if len(m.entries) >= m.maxEntries {
		return MSHRFull, 0
	}
	m.entries[lineAddr] = &mshrEntry[T]{pendingMask: sectorMask, targets: []T{target}}
	return MSHRNew, sectorMask
}

// Pending reports the pending sector mask for a line (0 when no entry).
func (m *MSHR[T]) Pending(lineAddr uint64) uint64 {
	if e, ok := m.entries[lineAddr]; ok {
		return e.pendingMask
	}
	return 0
}

// Complete retires the entry for lineAddr and returns its targets in
// arrival order. Completing an absent entry returns nil.
func (m *MSHR[T]) Complete(lineAddr uint64) []T {
	e, ok := m.entries[lineAddr]
	if !ok {
		return nil
	}
	delete(m.entries, lineAddr)
	return e.targets
}

// InFlight reports the number of live entries.
func (m *MSHR[T]) InFlight() int { return len(m.entries) }

// Full reports whether a new entry can be allocated.
func (m *MSHR[T]) Full() bool { return len(m.entries) >= m.maxEntries }
