// Package cache implements the sectored set-associative cache used for the
// GPU L1s, the shared L2, and CacheCraft's dedicated redundancy cache, plus
// the MSHR (miss status holding register) file that merges outstanding
// misses.
//
// The cache is a tag store only: the repository's simulator is
// trace-driven, so no data bytes flow through it. Lines are divided into
// sectors with independent valid and dirty bits — a GPU L2 fills at sector
// (32B) grain even though tags cover a full 128B line.
package cache

import (
	"fmt"

	"cachecraft/internal/obs"
	"cachecraft/internal/stats"
)

// Policy selects the replacement policy.
type Policy int

const (
	// LRU evicts the least recently used way.
	LRU Policy = iota
	// SRRIP is static re-reference interval prediction (2-bit), which
	// resists thrashing better than LRU for streaming fills.
	SRRIP
)

// String renders the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case SRRIP:
		return "srrip"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config sizes a cache.
type Config struct {
	Name        string
	SizeBytes   int
	Ways        int
	LineBytes   int
	SectorBytes int
	Repl        Policy
	// HashSets XOR-folds the line number into the set index, the standard
	// GPU L2 defense against power-of-two stride conflict thrashing.
	HashSets bool
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 || c.SectorBytes <= 0:
		return fmt.Errorf("cache %q: sizes must be positive", c.Name)
	case c.LineBytes%c.SectorBytes != 0:
		return fmt.Errorf("cache %q: line %dB not a multiple of sector %dB", c.Name, c.LineBytes, c.SectorBytes)
	case c.LineBytes/c.SectorBytes > 64:
		return fmt.Errorf("cache %q: more than 64 sectors per line", c.Name)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache %q: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

const maxRRPV = 3 // 2-bit SRRIP

type line struct {
	tag    uint64
	valid  bool
	vmask  uint64 // per-sector valid bits
	dmask  uint64 // per-sector dirty bits
	stamp  uint64 // LRU timestamp
	rrpv   uint8  // SRRIP re-reference prediction value
	pinned bool
}

// Cache is a sectored set-associative tag store. It is not safe for
// concurrent use; the simulator is single-threaded by design.
type Cache struct {
	cfg            Config
	sets           [][]line
	setsMask       uint64
	setBits        uint
	sectorsPerLine int
	clock          uint64
	Stats          *stats.Counters

	// Time-resolved probe hooks (nil = off, one branch per access/fill).
	// The tag store itself is clockless — the replacement clock counts
	// accesses, not cycles — so the owner supplies the cycle source.
	prNow  func() uint64
	prHit  *obs.Series // Mean: 1 per hit, 0 per miss or sector miss
	prFill *obs.Series // Sum: sector/line fills per window

	// Pre-resolved counter handles for the per-access hot path. They
	// resolve lazily so the Stats creation order still follows first touch.
	stAccesses       stats.Handle
	stHits           stats.Handle
	stMisses         stats.Handle
	stSectorMisses   stats.Handle
	stSectorFills    stats.Handle
	stLineFills      stats.Handle
	stEvictions      stats.Handle
	stDirtyEvictions stats.Handle
}

// Outcome classifies a lookup.
type Outcome int

const (
	// Miss: the line's tag is absent.
	Miss Outcome = iota
	// SectorMiss: the tag is present but the requested sector is invalid.
	SectorMiss
	// Hit: the sector is present.
	Hit
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case SectorMiss:
		return "sector-miss"
	case Hit:
		return "hit"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Eviction describes a victim line removed by a fill.
type Eviction struct {
	LineAddr  uint64
	ValidMask uint64 // sectors that were present
	DirtyMask uint64 // sectors that must be written back
}

// New builds an empty cache. It panics on an invalid configuration, which
// is static setup, not runtime input.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	sets := make([][]line, numSets)
	backing := make([]line, numSets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
		for w := range sets[i] {
			sets[i][w].rrpv = maxRRPV
		}
	}
	setBits := uint(0)
	for 1<<setBits < numSets {
		setBits++
	}
	if setBits == 0 {
		setBits = 1 // avoid zero shifts in the hash fold
	}
	c := &Cache{
		cfg:            cfg,
		sets:           sets,
		setsMask:       uint64(numSets - 1),
		setBits:        setBits,
		sectorsPerLine: cfg.LineBytes / cfg.SectorBytes,
		Stats:          stats.NewCounters(),
	}
	c.stAccesses = c.Stats.Handle("accesses")
	c.stHits = c.Stats.Handle("hits")
	c.stMisses = c.Stats.Handle("misses")
	c.stSectorMisses = c.Stats.Handle("sector_misses")
	c.stSectorFills = c.Stats.Handle("sector_fills")
	c.stLineFills = c.Stats.Handle("line_fills")
	c.stEvictions = c.Stats.Handle("evictions")
	c.stDirtyEvictions = c.Stats.Handle("dirty_evictions")
	return c
}

// Config reports the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SectorsPerLine reports the line's sector count.
func (c *Cache) SectorsPerLine() int { return c.sectorsPerLine }

// LineAddr aligns an address down to its line base.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr - addr%uint64(c.cfg.LineBytes)
}

// SectorIndex reports which sector of its line the address falls in.
func (c *Cache) SectorIndex(addr uint64) int {
	return int(addr % uint64(c.cfg.LineBytes) / uint64(c.cfg.SectorBytes))
}

// SectorMask returns the single-sector mask for addr.
func (c *Cache) SectorMask(addr uint64) uint64 { return 1 << c.SectorIndex(addr) }

// setAndTag maps an address to its set index and tag. The tag is the full
// line number (simulation spends no storage on tags, and it keeps the
// mapping trivially invertible under set hashing).
func (c *Cache) setAndTag(addr uint64) (set uint64, tag uint64) {
	lineNum := addr / uint64(c.cfg.LineBytes)
	idx := lineNum
	if c.cfg.HashSets {
		idx ^= idx >> c.setBits
		idx ^= idx >> (2 * c.setBits)
		idx ^= idx >> (4 * c.setBits)
	}
	return idx & c.setsMask, lineNum
}

func (c *Cache) findWay(set uint64, tag uint64) int {
	for w := range c.sets[set] {
		if c.sets[set][w].valid && c.sets[set][w].tag == tag {
			return w
		}
	}
	return -1
}

// Probe reports the lookup outcome without touching replacement state or
// statistics.
func (c *Cache) Probe(addr uint64) Outcome {
	set, tag := c.setAndTag(addr)
	w := c.findWay(set, tag)
	if w < 0 {
		return Miss
	}
	if c.sets[set][w].vmask&c.SectorMask(addr) == 0 {
		return SectorMiss
	}
	return Hit
}

// SetProbes attaches time-resolved probe series: hit observes every
// Access outcome (Mean mode: 1 hit, 0 miss), fill observes every fill
// that brought in new sectors (Sum mode). now supplies the simulated
// cycle, since the tag store has no clock of its own. Any series may be
// nil; passing all nil (the default state) keeps the hot path at one
// branch per call.
func (c *Cache) SetProbes(now func() uint64, hit, fill *obs.Series) {
	c.prNow = now
	c.prHit = hit
	c.prFill = fill
}

// Access performs a lookup for a read or write, updating replacement state
// and statistics. A write hit marks the sector dirty. Writes to absent
// sectors are misses (the cache is write-allocate: the controller fills and
// then calls MarkDirty).
func (c *Cache) Access(addr uint64, write bool) Outcome {
	set, tag := c.setAndTag(addr)
	c.clock++
	c.stAccesses.Inc()
	w := c.findWay(set, tag)
	if w < 0 {
		c.stMisses.Inc()
		if c.prHit != nil {
			c.prHit.Add(c.prNow(), 0)
		}
		return Miss
	}
	ln := &c.sets[set][w]
	if ln.vmask&c.SectorMask(addr) == 0 {
		c.stSectorMisses.Inc()
		if c.prHit != nil {
			c.prHit.Add(c.prNow(), 0)
		}
		return SectorMiss
	}
	ln.stamp = c.clock
	ln.rrpv = 0
	if write {
		ln.dmask |= c.SectorMask(addr)
	}
	c.stHits.Inc()
	if c.prHit != nil {
		c.prHit.Add(c.prNow(), 1)
	}
	return Hit
}

// Fill inserts the given sectors of a line, allocating (and possibly
// evicting) as needed. dirty sectors in dirtyMask are marked dirty. The
// returned eviction is non-nil when a valid line with dirty sectors was
// displaced. Filling sectors that are already present leaves their dirty
// bits intact (a fill never cleans newer data).
func (c *Cache) Fill(lineAddr uint64, sectorMask, dirtyMask uint64) *Eviction {
	var ev Eviction
	if c.FillInto(lineAddr, sectorMask, dirtyMask, &ev) {
		return &ev
	}
	return nil
}

// FillInto is Fill writing any victim into ev (which callers can keep on
// the stack and reuse); it reports whether a valid line was displaced. ev
// is left unchanged when the fill evicts nothing.
func (c *Cache) FillInto(lineAddr uint64, sectorMask, dirtyMask uint64, ev *Eviction) bool {
	if lineAddr%uint64(c.cfg.LineBytes) != 0 {
		panic(fmt.Sprintf("cache %q: misaligned fill %#x", c.cfg.Name, lineAddr))
	}
	set, tag := c.setAndTag(lineAddr)
	c.clock++
	w := c.findWay(set, tag)
	if w >= 0 {
		ln := &c.sets[set][w]
		newSectors := sectorMask &^ ln.vmask
		ln.vmask |= sectorMask
		ln.dmask |= dirtyMask & sectorMask
		ln.stamp = c.clock
		if newSectors != 0 {
			c.stSectorFills.Inc()
			if c.prFill != nil {
				c.prFill.Add(c.prNow(), 1)
			}
		}
		return false
	}
	victim := c.chooseVictim(set)
	ln := &c.sets[set][victim]
	evicted := false
	if ln.valid {
		c.stEvictions.Inc()
		evicted = true
		*ev = Eviction{
			LineAddr:  c.lineAddrOf(set, ln.tag),
			ValidMask: ln.vmask,
			DirtyMask: ln.dmask,
		}
		if ln.dmask != 0 {
			c.stDirtyEvictions.Inc()
		}
	}
	*ln = line{
		tag:   tag,
		valid: true,
		vmask: sectorMask,
		dmask: dirtyMask & sectorMask,
		stamp: c.clock,
		rrpv:  maxRRPV - 1, // SRRIP long re-reference insertion
	}
	c.stLineFills.Inc()
	if c.prFill != nil {
		c.prFill.Add(c.prNow(), 1)
	}
	return evicted
}

func (c *Cache) lineAddrOf(_ uint64, tag uint64) uint64 {
	return tag * uint64(c.cfg.LineBytes)
}

func (c *Cache) chooseVictim(set uint64) int {
	ways := c.sets[set]
	// Prefer an invalid way.
	for w := range ways {
		if !ways[w].valid {
			return w
		}
	}
	switch c.cfg.Repl {
	case SRRIP:
		for {
			for w := range ways {
				if !ways[w].pinned && ways[w].rrpv >= maxRRPV {
					return w
				}
			}
			aged := false
			for w := range ways {
				if !ways[w].pinned && ways[w].rrpv < maxRRPV {
					ways[w].rrpv++
					aged = true
				}
			}
			if !aged {
				// Everything pinned: fall back to way 0 to guarantee progress.
				return 0
			}
		}
	default: // LRU
		victim := -1
		var oldest uint64
		for w := range ways {
			if ways[w].pinned {
				continue
			}
			if victim < 0 || ways[w].stamp < oldest {
				victim = w
				oldest = ways[w].stamp
			}
		}
		if victim < 0 {
			victim = 0
		}
		return victim
	}
}

// MarkDirty sets the dirty bit for addr's sector; the sector must be
// present.
func (c *Cache) MarkDirty(addr uint64) {
	set, tag := c.setAndTag(addr)
	w := c.findWay(set, tag)
	if w < 0 || c.sets[set][w].vmask&c.SectorMask(addr) == 0 {
		panic(fmt.Sprintf("cache %q: MarkDirty on absent sector %#x", c.cfg.Name, addr))
	}
	c.sets[set][w].dmask |= c.SectorMask(addr)
}

// CleanSector clears the dirty bit for addr's sector if present (used when
// a writeback completes or a coalescing buffer absorbs the sector).
func (c *Cache) CleanSector(addr uint64) {
	set, tag := c.setAndTag(addr)
	if w := c.findWay(set, tag); w >= 0 {
		c.sets[set][w].dmask &^= c.SectorMask(addr)
	}
}

// InvalidateLine drops a line, returning its dirty mask (0 if absent or
// clean).
func (c *Cache) InvalidateLine(lineAddr uint64) uint64 {
	set, tag := c.setAndTag(lineAddr)
	w := c.findWay(set, tag)
	if w < 0 {
		return 0
	}
	d := c.sets[set][w].dmask
	c.sets[set][w] = line{rrpv: maxRRPV}
	return d
}

// ValidMask reports the valid-sector mask of a line (0 if absent).
func (c *Cache) ValidMask(lineAddr uint64) uint64 {
	set, tag := c.setAndTag(lineAddr)
	if w := c.findWay(set, tag); w >= 0 {
		return c.sets[set][w].vmask
	}
	return 0
}

// DirtyMask reports the dirty-sector mask of a line (0 if absent).
func (c *Cache) DirtyMask(lineAddr uint64) uint64 {
	set, tag := c.setAndTag(lineAddr)
	if w := c.findWay(set, tag); w >= 0 {
		return c.sets[set][w].dmask
	}
	return 0
}

// CheckConsistency verifies the tag store's structural invariants: every
// dirty bit covers a valid sector, valid lines hold at least one valid
// sector, invalid ways carry no sector state, and no mask uses bits beyond
// the line's sector count. It returns the first violation found, or nil.
// The invariant-audit layer calls it at end of simulation.
func (c *Cache) CheckConsistency() error {
	limit := uint64(1)<<c.sectorsPerLine - 1
	for s := range c.sets {
		for w := range c.sets[s] {
			ln := &c.sets[s][w]
			if !ln.valid {
				if ln.vmask != 0 || ln.dmask != 0 {
					return fmt.Errorf("cache %q: invalid way set %d way %d carries masks v=%#x d=%#x",
						c.cfg.Name, s, w, ln.vmask, ln.dmask)
				}
				continue
			}
			addr := c.lineAddrOf(uint64(s), ln.tag)
			switch {
			case ln.vmask == 0:
				return fmt.Errorf("cache %q: valid line %#x has no valid sectors", c.cfg.Name, addr)
			case ln.vmask&^limit != 0 || ln.dmask&^limit != 0:
				return fmt.Errorf("cache %q: line %#x mask exceeds %d sectors (v=%#x d=%#x)",
					c.cfg.Name, addr, c.sectorsPerLine, ln.vmask, ln.dmask)
			case ln.dmask&^ln.vmask != 0:
				return fmt.Errorf("cache %q: line %#x dirty sectors not valid (v=%#x d=%#x)",
					c.cfg.Name, addr, ln.vmask, ln.dmask)
			}
		}
	}
	return nil
}

// Walk visits every valid line (for drain/flush at end of simulation).
func (c *Cache) Walk(visit func(lineAddr uint64, vmask, dmask uint64)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			ln := &c.sets[s][w]
			if ln.valid {
				visit(c.lineAddrOf(uint64(s), ln.tag), ln.vmask, ln.dmask)
			}
		}
	}
}
