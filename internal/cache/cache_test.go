package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{
		Name:        "t",
		SizeBytes:   16 * 1024,
		Ways:        4,
		LineBytes:   128,
		SectorBytes: 32,
		Repl:        LRU,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Config{
		{Name: "a", SizeBytes: 0, Ways: 4, LineBytes: 128, SectorBytes: 32},
		{Name: "b", SizeBytes: 16384, Ways: 4, LineBytes: 100, SectorBytes: 32},
		{Name: "c", SizeBytes: 16384, Ways: 3, LineBytes: 128, SectorBytes: 32}, // 42.66 sets
		{Name: "d", SizeBytes: 24576, Ways: 4, LineBytes: 128, SectorBytes: 32}, // 48 sets, not pow2
		{Name: "e", SizeBytes: 16384, Ways: 4, LineBytes: 128, SectorBytes: 1},  // >64 sectors
	}
	for _, cfg := range bads {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %q accepted: %+v", cfg.Name, cfg)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(testConfig())
	addr := uint64(0x1000)
	if got := c.Access(addr, false); got != Miss {
		t.Fatalf("cold access = %v", got)
	}
	c.Fill(c.LineAddr(addr), c.SectorMask(addr), 0)
	if got := c.Access(addr, false); got != Hit {
		t.Fatalf("after fill = %v", got)
	}
	// A different sector of the same line is a sector miss.
	if got := c.Access(addr+32, false); got != SectorMiss {
		t.Fatalf("other sector = %v", got)
	}
	if c.Stats.Get("hits") != 1 || c.Stats.Get("misses") != 1 || c.Stats.Get("sector_misses") != 1 {
		t.Fatalf("stats: %s", c.Stats)
	}
}

func TestSectorGeometryHelpers(t *testing.T) {
	c := New(testConfig())
	if c.SectorsPerLine() != 4 {
		t.Fatalf("sectors/line = %d", c.SectorsPerLine())
	}
	if c.LineAddr(0x1234) != 0x1200 {
		t.Fatalf("LineAddr = %#x", c.LineAddr(0x1234))
	}
	if c.SectorIndex(0x1234) != 1 {
		t.Fatalf("SectorIndex = %d", c.SectorIndex(0x1234))
	}
	if c.SectorMask(0x1234) != 0b0010 {
		t.Fatalf("SectorMask = %#b", c.SectorMask(0x1234))
	}
}

func TestWriteMarksDirtyAndEvictionReportsIt(t *testing.T) {
	cfg := testConfig()
	c := New(cfg)
	addr := uint64(0)
	c.Fill(0, 0b0001, 0)
	if got := c.Access(addr, true); got != Hit {
		t.Fatalf("write hit = %v", got)
	}
	if c.DirtyMask(0) != 0b0001 {
		t.Fatalf("dirty mask = %#b", c.DirtyMask(0))
	}
	// Fill conflicting lines until this one is evicted; the eviction must
	// carry the dirty mask. Same set = same line number modulo numSets.
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	stride := uint64(numSets * cfg.LineBytes)
	var ev *Eviction
	for i := 1; (ev == nil || ev.DirtyMask == 0) && i <= cfg.Ways+1; i++ {
		ev = c.Fill(uint64(i)*stride, 0b1111, 0)
	}
	if ev == nil || ev.DirtyMask == 0 {
		t.Fatal("no dirty eviction after overfilling the set")
	}
	if ev.LineAddr != 0 || ev.DirtyMask != 0b0001 || ev.ValidMask != 0b0001 {
		t.Fatalf("eviction = %+v", ev)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	cfg := testConfig()
	c := New(cfg)
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	stride := uint64(numSets * cfg.LineBytes)
	// Fill 4 ways of set 0.
	for i := 0; i < 4; i++ {
		c.Fill(uint64(i)*stride, 0b1111, 0)
	}
	// Touch lines 0,1,2 — line 3 is now LRU.
	for i := 0; i < 3; i++ {
		c.Access(uint64(i)*stride, false)
	}
	c.Fill(4*stride, 0b1111, 0)
	if c.ValidMask(3*stride) != 0 {
		t.Fatal("line 3 should have been the LRU victim")
	}
	for i := 0; i < 3; i++ {
		if c.ValidMask(uint64(i)*stride) == 0 {
			t.Fatalf("recently used line %d was evicted", i)
		}
	}
}

func TestSRRIPResistsStreaming(t *testing.T) {
	cfg := testConfig()
	cfg.Repl = SRRIP
	c := New(cfg)
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	stride := uint64(numSets * cfg.LineBytes)
	// A hot line, re-referenced between streaming fills.
	hot := uint64(0)
	c.Fill(hot, 0b1111, 0)
	c.Access(hot, false) // promote to rrpv=0
	for i := 1; i <= 16; i++ {
		c.Fill(uint64(i)*stride, 0b1111, 0)
		c.Access(hot, false)
	}
	if c.ValidMask(hot) == 0 {
		t.Fatal("SRRIP evicted the hot line during a streaming sweep")
	}
}

func TestFillMergeKeepsDirty(t *testing.T) {
	c := New(testConfig())
	c.Fill(0, 0b0001, 0b0001) // dirty fill (write-allocate)
	c.Fill(0, 0b0011, 0)      // later clean fill must not clean sector 0
	if c.DirtyMask(0) != 0b0001 {
		t.Fatalf("dirty mask = %#b, want 0b0001", c.DirtyMask(0))
	}
	if c.ValidMask(0) != 0b0011 {
		t.Fatalf("valid mask = %#b, want 0b0011", c.ValidMask(0))
	}
}

func TestDirtyMaskLimitedToFilledSectors(t *testing.T) {
	c := New(testConfig())
	c.Fill(0, 0b0001, 0b1111) // dirty mask wider than fill mask
	if c.DirtyMask(0) != 0b0001 {
		t.Fatalf("dirty leaked beyond filled sectors: %#b", c.DirtyMask(0))
	}
}

func TestMisalignedFillPanics(t *testing.T) {
	c := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned fill must panic")
		}
	}()
	c.Fill(32, 1, 0)
}

func TestMarkDirtyAndClean(t *testing.T) {
	c := New(testConfig())
	c.Fill(0, 0b0001, 0)
	c.MarkDirty(0)
	if c.DirtyMask(0) != 0b0001 {
		t.Fatal("MarkDirty failed")
	}
	c.CleanSector(0)
	if c.DirtyMask(0) != 0 {
		t.Fatal("CleanSector failed")
	}
	// Cleaning an absent sector is a no-op.
	c.CleanSector(0x100000)
}

func TestMarkDirtyAbsentPanics(t *testing.T) {
	c := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("MarkDirty on absent sector must panic")
		}
	}()
	c.MarkDirty(0x4000)
}

func TestInvalidateLine(t *testing.T) {
	c := New(testConfig())
	c.Fill(0, 0b0011, 0b0010)
	if d := c.InvalidateLine(0); d != 0b0010 {
		t.Fatalf("invalidate returned %#b", d)
	}
	if c.Probe(0) != Miss {
		t.Fatal("line still present after invalidate")
	}
	if d := c.InvalidateLine(0x8000); d != 0 {
		t.Fatal("invalidating absent line must return 0")
	}
}

func TestWalkVisitsAllValidLines(t *testing.T) {
	c := New(testConfig())
	addrs := []uint64{0, 0x1000, 0x2000}
	for _, a := range addrs {
		c.Fill(a, 0b1111, 0b0001)
	}
	seen := map[uint64]bool{}
	c.Walk(func(lineAddr, vmask, dmask uint64) {
		seen[lineAddr] = true
		if vmask != 0b1111 || dmask != 0b0001 {
			t.Fatalf("walk masks %#b/%#b", vmask, dmask)
		}
	})
	if len(seen) != len(addrs) {
		t.Fatalf("walk visited %d lines, want %d", len(seen), len(addrs))
	}
}

// Property: valid sectors only ever come from fills; a hit never appears
// without a preceding fill covering that sector, and dirty ⊆ valid.
func TestCacheInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(testConfig())
		filled := map[uint64]bool{} // sector-granular ground truth (may be stale after eviction)
		for op := 0; op < 2000; op++ {
			addr := uint64(rng.Intn(256)) * 32
			switch rng.Intn(3) {
			case 0:
				out := c.Access(addr, rng.Intn(2) == 0)
				if out == Hit && !filled[addr] {
					return false // hit fabricated from nowhere
				}
			case 1:
				mask := uint64(rng.Intn(15) + 1)
				la := c.LineAddr(addr)
				c.Fill(la, mask, 0)
				for s := 0; s < 4; s++ {
					if mask&(1<<s) != 0 {
						filled[la+uint64(s*32)] = true
					}
				}
			case 2:
				la := c.LineAddr(addr)
				c.InvalidateLine(la)
				for s := 0; s < 4; s++ {
					delete(filled, la+uint64(s*32))
				}
			}
			// dirty ⊆ valid for the touched line.
			la := c.LineAddr(addr)
			if c.DirtyMask(la)&^c.ValidMask(la) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRMergeAndComplete(t *testing.T) {
	m := NewMSHR[int](4, 4)
	res, fetch := m.Allocate(0x100, 0b0001, 1)
	if res != MSHRNew || fetch != 0b0001 {
		t.Fatalf("first allocate: %v %#b", res, fetch)
	}
	// Same sector merges with no new fetch.
	res, fetch = m.Allocate(0x100, 0b0001, 2)
	if res != MSHRMerged || fetch != 0 {
		t.Fatalf("same-sector merge: %v %#b", res, fetch)
	}
	// New sector merges and requests the extra fetch.
	res, fetch = m.Allocate(0x100, 0b0010, 3)
	if res != MSHRMerged || fetch != 0b0010 {
		t.Fatalf("new-sector merge: %v %#b", res, fetch)
	}
	if m.Pending(0x100) != 0b0011 {
		t.Fatalf("pending = %#b", m.Pending(0x100))
	}
	targets := m.Complete(0x100)
	if len(targets) != 3 || targets[0] != 1 || targets[1] != 2 || targets[2] != 3 {
		t.Fatalf("targets = %v", targets)
	}
	if m.InFlight() != 0 {
		t.Fatal("entry not retired")
	}
	if m.Complete(0x100) != nil {
		t.Fatal("completing absent entry must return nil")
	}
}

func TestMSHRCapacityLimits(t *testing.T) {
	m := NewMSHR[int](2, 2)
	m.Allocate(0x100, 1, 0)
	m.Allocate(0x200, 1, 0)
	if res, _ := m.Allocate(0x300, 1, 0); res != MSHRFull {
		t.Fatalf("entry overflow: %v", res)
	}
	if !m.Full() {
		t.Fatal("Full() should report true")
	}
	// Target overflow on an existing entry.
	m.Allocate(0x100, 1, 1)
	if res, _ := m.Allocate(0x100, 1, 2); res != MSHRFull {
		t.Fatalf("target overflow: %v", res)
	}
}

func TestMSHRInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid MSHR geometry must panic")
		}
	}()
	NewMSHR[int](0, 1)
}

func TestStringersAndAccessors(t *testing.T) {
	if LRU.String() != "lru" || SRRIP.String() != "srrip" {
		t.Fatal("policy strings")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy must render")
	}
	if Miss.String() != "miss" || SectorMiss.String() != "sector-miss" || Hit.String() != "hit" {
		t.Fatal("outcome strings")
	}
	if Outcome(9).String() == "" {
		t.Fatal("unknown outcome must render")
	}
	c := New(testConfig())
	if c.Config().Name != "t" {
		t.Fatal("Config accessor")
	}
	if MSHRNew.String() != "new" || MSHRMerged.String() != "merged" || MSHRFull.String() != "full" {
		t.Fatal("mshr result strings")
	}
	if MSHRResult(9).String() == "" {
		t.Fatal("unknown mshr result must render")
	}
}

func TestMSHRPendingMask(t *testing.T) {
	m := NewMSHR[int](4, 4)
	if m.Pending(0x100) != 0 {
		t.Fatal("absent entry must report zero pending")
	}
	m.Allocate(0x100, 0b0110, 1)
	if m.Pending(0x100) != 0b0110 {
		t.Fatalf("pending = %#b", m.Pending(0x100))
	}
}
