package cache

import "testing"

func hashedConfig() Config {
	cfg := testConfig()
	cfg.HashSets = true
	return cfg
}

func TestHashedSetsStillRoundTrip(t *testing.T) {
	c := New(hashedConfig())
	addrs := []uint64{0, 0x1000, 0x2340, 0xABCD00, 1 << 30}
	for _, a := range addrs {
		la := c.LineAddr(a)
		c.Fill(la, 0b1111, 0)
		if c.Probe(a) != Hit {
			t.Fatalf("addr %#x not found after fill", a)
		}
	}
	// Eviction addresses must be reconstructible (Walk sees true line
	// addresses).
	seen := map[uint64]bool{}
	c.Walk(func(lineAddr uint64, _, _ uint64) { seen[lineAddr] = true })
	for _, a := range addrs {
		if !seen[c.LineAddr(a)] {
			t.Fatalf("walk missed %#x", c.LineAddr(a))
		}
	}
}

func TestHashedSetsSpreadPowerOfTwoStrides(t *testing.T) {
	// With a 4 KiB stride and plain indexing, every line lands in a
	// handful of sets; hashing must spread them so the cache holds far
	// more of them.
	plain := New(testConfig())
	hashed := New(hashedConfig())
	// 100 lines fit comfortably in the 128-line cache; with a 4 KiB
	// stride the plain index maps them all to one set.
	const stride = 4096
	const lines = 100
	for i := 0; i < lines; i++ {
		plain.Fill(uint64(i*stride), 0b1111, 0)
		hashed.Fill(uint64(i*stride), 0b1111, 0)
	}
	countResident := func(c *Cache) int {
		n := 0
		for i := 0; i < lines; i++ {
			if c.Probe(uint64(i*stride)) == Hit {
				n++
			}
		}
		return n
	}
	p, h := countResident(plain), countResident(hashed)
	if h <= p {
		t.Fatalf("hashing did not help: plain %d resident, hashed %d", p, h)
	}
	if h < lines*3/4 {
		t.Fatalf("hashed cache retains only %d/%d strided lines", h, lines)
	}
}

func TestHashedEvictionWritebackAddressCorrect(t *testing.T) {
	cfg := hashedConfig()
	cfg.SizeBytes = cfg.LineBytes * cfg.Ways // a single set
	c := New(cfg)
	// Fill ways+1 lines; the eviction's LineAddr must be one of the
	// inserted addresses (tags must invert correctly under hashing).
	inserted := map[uint64]bool{}
	var ev *Eviction
	for i := 0; ev == nil && i < 1000; i++ {
		a := uint64(i) * uint64(cfg.LineBytes)
		inserted[a] = true
		ev = c.Fill(a, 1, 1)
	}
	if ev == nil {
		t.Fatal("no eviction from a single-set cache")
	}
	if !inserted[ev.LineAddr] {
		t.Fatalf("evicted address %#x was never inserted", ev.LineAddr)
	}
}
