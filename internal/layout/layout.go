// Package layout implements the inline-ECC address organization: how a GPU
// without dedicated ECC storage carves redundancy out of ordinary DRAM
// capacity, and how a data address maps to the redundancy block that
// protects it.
//
// Two organizations are provided. LinearMapper reserves a contiguous
// carve-out at the top of physical memory (the simplest production
// arrangement). RowLocalMapper reserves the tail of every DRAM row, so a
// redundancy access lands in the same row as the data it covers and usually
// rides an already-open row buffer.
package layout

import "fmt"

// Geometry describes the protection granularity.
type Geometry struct {
	// SectorBytes is the memory access grain (GPU sector), typically 32.
	SectorBytes int
	// LineBytes is the cache line size, typically 128.
	LineBytes int
	// GranuleBytes is the protection granule: the span of data covered by
	// one redundancy block. A demand miss anywhere in a granule needs that
	// granule's redundancy block.
	GranuleBytes int
	// RedBlockBytes is the size of one redundancy block as stored and
	// fetched, typically one sector (32B).
	RedBlockBytes int
}

// Validate checks internal consistency.
func (g Geometry) Validate() error {
	switch {
	case g.SectorBytes <= 0 || g.LineBytes <= 0 || g.GranuleBytes <= 0 || g.RedBlockBytes <= 0:
		return fmt.Errorf("layout: geometry fields must be positive: %+v", g)
	case g.LineBytes%g.SectorBytes != 0:
		return fmt.Errorf("layout: line %dB not a multiple of sector %dB", g.LineBytes, g.SectorBytes)
	case g.GranuleBytes%g.LineBytes != 0:
		return fmt.Errorf("layout: granule %dB not a multiple of line %dB", g.GranuleBytes, g.LineBytes)
	case g.RedBlockBytes > g.GranuleBytes:
		return fmt.Errorf("layout: redundancy block %dB exceeds granule %dB", g.RedBlockBytes, g.GranuleBytes)
	}
	return nil
}

// RedundancyRatio is redundancy bytes per data byte (e.g. 0.125).
func (g Geometry) RedundancyRatio() float64 {
	return float64(g.RedBlockBytes) / float64(g.GranuleBytes)
}

// SectorsPerGranule reports how many access-grain sectors one redundancy
// block covers.
func (g Geometry) SectorsPerGranule() int { return g.GranuleBytes / g.SectorBytes }

// SectorsPerLine reports the line's sector count.
func (g Geometry) SectorsPerLine() int { return g.LineBytes / g.SectorBytes }

// Mapper translates logical data addresses (what the workload and caches
// see) to physical DRAM addresses and to the redundancy blocks that protect
// them. Data and redundancy physical ranges never overlap.
type Mapper interface {
	// Name identifies the layout in configuration and tables.
	Name() string
	// Geometry reports the protection geometry.
	Geometry() Geometry
	// ProtectedBytes is the usable data capacity after the carve-out.
	ProtectedBytes() uint64
	// CarveoutBytes is the capacity consumed by redundancy.
	CarveoutBytes() uint64
	// DataPhys converts a logical data address to its physical address.
	DataPhys(dataAddr uint64) uint64
	// RedundancyAddr returns the physical address of the redundancy block
	// covering the given logical data address.
	RedundancyAddr(dataAddr uint64) uint64
	// GranuleBase returns the logical base address of the protection
	// granule containing dataAddr.
	GranuleBase(dataAddr uint64) uint64
}

// LinearMapper places all redundancy in a contiguous region above the
// protected data: phys data = identity, redundancy block i at
// carveoutBase + i*RedBlockBytes.
type LinearMapper struct {
	geo       Geometry
	dataBytes uint64
	carveBase uint64
}

// NewLinearMapper builds a linear carve-out layout over totalBytes of
// physical memory. totalBytes must split exactly into whole granules plus
// their redundancy.
func NewLinearMapper(totalBytes uint64, geo Geometry) (*LinearMapper, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	unit := uint64(geo.GranuleBytes + geo.RedBlockBytes)
	granules := totalBytes / unit
	if granules == 0 {
		return nil, fmt.Errorf("layout: %d bytes cannot hold one granule+redundancy unit (%d)", totalBytes, unit)
	}
	dataBytes := granules * uint64(geo.GranuleBytes)
	return &LinearMapper{geo: geo, dataBytes: dataBytes, carveBase: dataBytes}, nil
}

// Name identifies the layout.
func (m *LinearMapper) Name() string { return "linear" }

// Geometry reports the protection geometry.
func (m *LinearMapper) Geometry() Geometry { return m.geo }

// ProtectedBytes is the usable data capacity.
func (m *LinearMapper) ProtectedBytes() uint64 { return m.dataBytes }

// CarveoutBytes is the redundancy capacity.
func (m *LinearMapper) CarveoutBytes() uint64 {
	return m.dataBytes / uint64(m.geo.GranuleBytes) * uint64(m.geo.RedBlockBytes)
}

// DataPhys is the identity for a linear layout.
func (m *LinearMapper) DataPhys(dataAddr uint64) uint64 {
	m.checkData(dataAddr)
	return dataAddr
}

// RedundancyAddr maps granule i to carve-out block i.
func (m *LinearMapper) RedundancyAddr(dataAddr uint64) uint64 {
	m.checkData(dataAddr)
	granule := dataAddr / uint64(m.geo.GranuleBytes)
	return m.carveBase + granule*uint64(m.geo.RedBlockBytes)
}

// GranuleBase aligns down to the granule boundary.
func (m *LinearMapper) GranuleBase(dataAddr uint64) uint64 {
	m.checkData(dataAddr)
	return dataAddr - dataAddr%uint64(m.geo.GranuleBytes)
}

func (m *LinearMapper) checkData(addr uint64) {
	if addr >= m.dataBytes {
		panic(fmt.Sprintf("layout: data address %#x beyond protected capacity %#x", addr, m.dataBytes))
	}
}

// RowLocalMapper reserves the tail of every DRAM row for the redundancy of
// the data in that row. The logical data space is dense; physical rows
// interleave payload and redundancy.
type RowLocalMapper struct {
	geo          Geometry
	rowBytes     uint64
	payloadBytes uint64 // data bytes per row
	redPerRow    uint64 // redundancy bytes reserved per row
	dataBytes    uint64
}

// NewRowLocalMapper builds a row-local layout: each rowBytes-sized DRAM row
// holds payload granules followed by their redundancy blocks.
func NewRowLocalMapper(totalBytes uint64, rowBytes int, geo Geometry) (*RowLocalMapper, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if rowBytes <= 0 || uint64(rowBytes) > totalBytes {
		return nil, fmt.Errorf("layout: bad row size %d", rowBytes)
	}
	unit := uint64(geo.GranuleBytes + geo.RedBlockBytes)
	granulesPerRow := uint64(rowBytes) / unit
	if granulesPerRow == 0 {
		return nil, fmt.Errorf("layout: row %dB cannot hold one granule+redundancy unit (%d)", rowBytes, unit)
	}
	payload := granulesPerRow * uint64(geo.GranuleBytes)
	rows := totalBytes / uint64(rowBytes)
	return &RowLocalMapper{
		geo:          geo,
		rowBytes:     uint64(rowBytes),
		payloadBytes: payload,
		redPerRow:    granulesPerRow * uint64(geo.RedBlockBytes),
		dataBytes:    rows * payload,
	}, nil
}

// Name identifies the layout.
func (m *RowLocalMapper) Name() string { return "row-local" }

// Geometry reports the protection geometry.
func (m *RowLocalMapper) Geometry() Geometry { return m.geo }

// ProtectedBytes is the usable data capacity.
func (m *RowLocalMapper) ProtectedBytes() uint64 { return m.dataBytes }

// CarveoutBytes is the redundancy capacity.
func (m *RowLocalMapper) CarveoutBytes() uint64 {
	return m.dataBytes / m.payloadBytes * m.redPerRow
}

// DataPhys spreads the dense logical space over the payload region of each
// physical row.
func (m *RowLocalMapper) DataPhys(dataAddr uint64) uint64 {
	m.checkData(dataAddr)
	row := dataAddr / m.payloadBytes
	off := dataAddr % m.payloadBytes
	return row*m.rowBytes + off
}

// RedundancyAddr places granule g's redundancy in the tail of its own row.
func (m *RowLocalMapper) RedundancyAddr(dataAddr uint64) uint64 {
	m.checkData(dataAddr)
	row := dataAddr / m.payloadBytes
	off := dataAddr % m.payloadBytes
	granuleInRow := off / uint64(m.geo.GranuleBytes)
	return row*m.rowBytes + m.payloadBytes + granuleInRow*uint64(m.geo.RedBlockBytes)
}

// GranuleBase aligns down to the granule boundary; granules never span rows
// because the payload is a whole number of granules.
func (m *RowLocalMapper) GranuleBase(dataAddr uint64) uint64 {
	m.checkData(dataAddr)
	return dataAddr - dataAddr%uint64(m.geo.GranuleBytes)
}

func (m *RowLocalMapper) checkData(addr uint64) {
	if addr >= m.dataBytes {
		panic(fmt.Sprintf("layout: data address %#x beyond protected capacity %#x", addr, m.dataBytes))
	}
}

var (
	_ Mapper = (*LinearMapper)(nil)
	_ Mapper = (*RowLocalMapper)(nil)
)

// DefaultGeometry is the repository-wide default: 32B sectors, 128B lines,
// 256B protection granules, 32B redundancy blocks — a 1/8 redundancy ratio
// matching a (72,64)-per-word SEC-DED or RS(36,32) organization.
func DefaultGeometry() Geometry {
	return Geometry{SectorBytes: 32, LineBytes: 128, GranuleBytes: 256, RedBlockBytes: 32}
}

// Geometry1of16 halves the redundancy ratio: one 32B redundancy block
// covers 512B, matching an RS(34,32)-style organization.
func Geometry1of16() Geometry {
	return Geometry{SectorBytes: 32, LineBytes: 128, GranuleBytes: 512, RedBlockBytes: 32}
}
