package layout

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	good := DefaultGeometry()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Geometry{
		{SectorBytes: 0, LineBytes: 128, GranuleBytes: 256, RedBlockBytes: 32},
		{SectorBytes: 32, LineBytes: 100, GranuleBytes: 256, RedBlockBytes: 32},
		{SectorBytes: 32, LineBytes: 128, GranuleBytes: 192, RedBlockBytes: 32},
		{SectorBytes: 32, LineBytes: 128, GranuleBytes: 128, RedBlockBytes: 256},
	}
	for i, g := range bads {
		if err := g.Validate(); err == nil {
			t.Fatalf("bad geometry %d accepted: %+v", i, g)
		}
	}
}

func TestGeometryDerived(t *testing.T) {
	g := DefaultGeometry()
	if g.RedundancyRatio() != 0.125 {
		t.Fatalf("ratio = %v", g.RedundancyRatio())
	}
	if g.SectorsPerGranule() != 8 {
		t.Fatalf("sectors/granule = %d", g.SectorsPerGranule())
	}
	if g.SectorsPerLine() != 4 {
		t.Fatalf("sectors/line = %d", g.SectorsPerLine())
	}
	if Geometry1of16().RedundancyRatio() != 0.0625 {
		t.Fatal("1/16 geometry ratio wrong")
	}
}

const testMem = 1 << 26 // 64 MiB

func mappers(t *testing.T) []Mapper {
	t.Helper()
	lin, err := NewLinearMapper(testMem, DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	row, err := NewRowLocalMapper(testMem, 2048, DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	return []Mapper{lin, row}
}

func TestCapacityAccounting(t *testing.T) {
	for _, m := range mappers(t) {
		data := m.ProtectedBytes()
		carve := m.CarveoutBytes()
		if data == 0 || carve == 0 {
			t.Fatalf("%s: zero capacity", m.Name())
		}
		if data+carve > testMem {
			t.Fatalf("%s: data %d + carve %d exceeds memory %d", m.Name(), data, carve, testMem)
		}
		ratio := float64(carve) / float64(data)
		if ratio != 0.125 {
			t.Fatalf("%s: carve ratio %v, want 0.125", m.Name(), ratio)
		}
	}
}

func TestDataAndRedundancyRangesDisjoint(t *testing.T) {
	for _, m := range mappers(t) {
		m := m
		geo := m.Geometry()
		redSeen := make(map[uint64]bool)
		// Walk every sector of the first 1 MiB and a tail slice.
		walk := func(start, end uint64) {
			for a := start; a < end; a += uint64(geo.SectorBytes) {
				phys := m.DataPhys(a)
				red := m.RedundancyAddr(a)
				if phys == red {
					t.Fatalf("%s: data %#x maps onto its redundancy %#x", m.Name(), a, red)
				}
				redSeen[red] = true
			}
		}
		walk(0, 1<<20)
		walk(m.ProtectedBytes()-1<<16, m.ProtectedBytes())
		// No data physical address may collide with any seen redundancy
		// address.
		for a := uint64(0); a < 1<<20; a += uint64(geo.SectorBytes) {
			if redSeen[m.DataPhys(a)] {
				t.Fatalf("%s: data phys %#x collides with redundancy space", m.Name(), m.DataPhys(a))
			}
		}
	}
}

func TestRedundancySharedExactlyPerGranule(t *testing.T) {
	for _, m := range mappers(t) {
		geo := m.Geometry()
		spg := uint64(geo.SectorsPerGranule())
		// All sectors of one granule share a redundancy block; adjacent
		// granules use different blocks.
		for g := uint64(0); g < 64; g++ {
			base := g * uint64(geo.GranuleBytes)
			want := m.RedundancyAddr(base)
			for s := uint64(0); s < spg; s++ {
				a := base + s*uint64(geo.SectorBytes)
				if m.RedundancyAddr(a) != want {
					t.Fatalf("%s: sector %d of granule %d has different redundancy", m.Name(), s, g)
				}
				if m.GranuleBase(a) != base {
					t.Fatalf("%s: granule base of %#x = %#x, want %#x", m.Name(), a, m.GranuleBase(a), base)
				}
			}
			next := m.RedundancyAddr(base + uint64(geo.GranuleBytes))
			if next == want {
				t.Fatalf("%s: granules %d and %d share a redundancy block", m.Name(), g, g+1)
			}
		}
	}
}

func TestDataPhysInjective(t *testing.T) {
	for _, m := range mappers(t) {
		m := m
		f := func(a, b uint32) bool {
			geo := m.Geometry()
			x := (uint64(a) * uint64(geo.SectorBytes)) % m.ProtectedBytes()
			y := (uint64(b) * uint64(geo.SectorBytes)) % m.ProtectedBytes()
			if x == y {
				return true
			}
			return m.DataPhys(x) != m.DataPhys(y)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
}

func TestRowLocalRedundancySameRow(t *testing.T) {
	const rowBytes = 2048
	m, err := NewRowLocalMapper(testMem, rowBytes, DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 1<<20; a += 32 {
		dataRow := m.DataPhys(a) / rowBytes
		redRow := m.RedundancyAddr(a) / rowBytes
		if dataRow != redRow {
			t.Fatalf("addr %#x: data row %d, redundancy row %d", a, dataRow, redRow)
		}
	}
}

func TestLinearRedundancyInCarveout(t *testing.T) {
	m, err := NewLinearMapper(testMem, DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 1<<20; a += 32 {
		if red := m.RedundancyAddr(a); red < m.ProtectedBytes() {
			t.Fatalf("redundancy %#x inside the data region", red)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, m := range mappers(t) {
		m := m
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: out-of-range data address must panic", m.Name())
				}
			}()
			m.DataPhys(m.ProtectedBytes())
		}()
	}
}

func TestConstructorRejections(t *testing.T) {
	if _, err := NewLinearMapper(100, DefaultGeometry()); err == nil {
		t.Fatal("tiny memory must be rejected")
	}
	if _, err := NewRowLocalMapper(testMem, 64, DefaultGeometry()); err == nil {
		t.Fatal("row smaller than granule+red must be rejected")
	}
	if _, err := NewRowLocalMapper(testMem, 0, DefaultGeometry()); err == nil {
		t.Fatal("zero row size must be rejected")
	}
	bad := Geometry{SectorBytes: 32, LineBytes: 100, GranuleBytes: 256, RedBlockBytes: 32}
	if _, err := NewLinearMapper(testMem, bad); err == nil {
		t.Fatal("invalid geometry must be rejected by the linear mapper")
	}
	if _, err := NewRowLocalMapper(testMem, 2048, bad); err == nil {
		t.Fatal("invalid geometry must be rejected by the row-local mapper")
	}
}

func TestGranuleBaseAligned(t *testing.T) {
	for _, m := range mappers(t) {
		m := m
		f := func(raw uint32) bool {
			geo := m.Geometry()
			a := (uint64(raw) * 32) % m.ProtectedBytes()
			base := m.GranuleBase(a)
			return base%uint64(geo.GranuleBytes) == 0 && base <= a && a-base < uint64(geo.GranuleBytes)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
}

func TestRowLocal1of16Geometry(t *testing.T) {
	m, err := NewRowLocalMapper(testMem, 2048, Geometry1of16())
	if err != nil {
		t.Fatal(err)
	}
	// Carve ratio must match the geometry's redundancy ratio.
	ratio := float64(m.CarveoutBytes()) / float64(m.ProtectedBytes())
	if ratio != 0.0625 {
		t.Fatalf("carve ratio = %v, want 1/16", ratio)
	}
	// Redundancy still lands in the same row.
	for a := uint64(0); a < 1<<18; a += 32 {
		if m.DataPhys(a)/2048 != m.RedundancyAddr(a)/2048 {
			t.Fatalf("addr %#x: redundancy in a different row", a)
		}
	}
}

func TestGranuleCoverageIsCompleteAndDisjoint(t *testing.T) {
	// Every redundancy block covers exactly SectorsPerGranule sectors, and
	// blocks partition the data space.
	for _, m := range mappers(t) {
		geo := m.Geometry()
		coverage := map[uint64]int{}
		limit := uint64(1 << 18)
		for a := uint64(0); a < limit; a += uint64(geo.SectorBytes) {
			coverage[m.RedundancyAddr(a)]++
		}
		for red, n := range coverage {
			if n != geo.SectorsPerGranule() {
				t.Fatalf("%s: block %#x covers %d sectors, want %d",
					m.Name(), red, n, geo.SectorsPerGranule())
			}
		}
	}
}
