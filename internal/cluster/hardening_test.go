// Worker-hardening satellites: startup with no coordinator yet, and RPC
// budgets that keep a sick coordinator from wedging a worker.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/cluster"
	"cachecraft/internal/config"
	"cachecraft/internal/obs"
	"cachecraft/internal/serve"
	"cachecraft/internal/store"
)

// TestAwaitCoordinatorOutlivesLateStart pins the fleet bring-up
// contract: a worker process started before its coordinator waits with
// capped backoff and proceeds the moment the coordinator appears —
// start order is an operational non-constraint.
func TestAwaitCoordinatorOutlivesLateStart(t *testing.T) {
	// Reserve an address, then free it so the first pings fail with
	// connection-refused — exactly what a not-yet-started coordinator
	// looks like.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	waitErr := make(chan error, 1)
	go func() {
		waitErr <- cluster.AwaitCoordinator(ctx, cluster.NewClient("http://"+addr), t.Logf)
	}()

	// Let a few refused attempts happen before the coordinator shows up.
	time.Sleep(300 * time.Millisecond)
	select {
	case err := <-waitErr:
		t.Fatalf("AwaitCoordinator returned %v before any coordinator existed", err)
	default:
	}
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Options{Base: quickBase(), Store: st, MaxInFlight: 2, MaxQueue: 4,
		Registry: obs.NewRegistry()})
	ts := &httptest.Server{Listener: l2, Config: &http.Server{Handler: srv.Handler()}}
	ts.Start()
	defer ts.Close()

	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("AwaitCoordinator after late start: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("AwaitCoordinator never noticed the coordinator starting")
	}
}

func TestAwaitCoordinatorVersionMismatchIsFatal(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok cachecraft@r0-other-build")
	}))
	defer ts.Close()
	start := time.Now()
	err := cluster.AwaitCoordinator(context.Background(), cluster.NewClient(ts.URL), nil)
	if !errors.Is(err, cluster.ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	// Fatal means no retry loop: the mismatch must return on the first
	// attempt, not after the backoff schedule.
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("mismatch took %s to surface; AwaitCoordinator retried a fatal error", waited)
	}
}

// TestHungHeartbeatsDoNotWedgeTheSweep: the coordinator's heartbeat
// endpoint hangs forever (sick network, half-dead peer). The TTL-derived
// per-call budget aborts each hung renewal, and the sweep still
// completes because result pushes are independent of heartbeat health.
func TestHungHeartbeatsDoNotWedgeTheSweep(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newClusterServer(t, quickBase(), cluster.Options{
		LeaseTTL: 500 * time.Millisecond,
	}, st)
	// Front the real server with a proxy that swallows heartbeats.
	hang := make(chan struct{})
	defer close(hang)
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cluster/heartbeat" {
			<-hang
			return
		}
		r2 := r.Clone(r.Context())
		r2.RequestURI = ""
		u := *r.URL
		u.Scheme = "http"
		u.Host = ts.Listener.Addr().String()
		r2.URL = &u
		resp, err := http.DefaultTransport.RoundTrip(r2)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32*1024)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
			}
			if rerr != nil {
				return
			}
		}
	}))
	defer proxy.Close()

	r := bench.NewRunner(config.Default())
	r.SetWorkers(2)
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		Coordinator: proxy.URL, Name: "hb-hung", Runner: r, PollMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w.Run(wctx)
	}()
	defer func() {
		wcancel()
		select {
		case <-workerDone:
		case <-time.After(10 * time.Second):
			t.Error("worker did not exit after cancel: a hung heartbeat is wedging shutdown")
		}
	}()

	resp := postSweep(t, ts.URL, `{"workloads":["stream"],"schemes":["none","cachecraft"]}`)
	defer resp.Body.Close()
	records, errLines, trailer := readStream(t, resp.Body)
	if trailer == nil || !trailer.Done || len(errLines) != 0 || len(records) != 2 {
		t.Fatalf("sweep under hung heartbeats: records=%d errors=%v trailer=%+v",
			len(records), errLines, trailer)
	}
}
