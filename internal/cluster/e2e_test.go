// End-to-end tests for the sweep cluster: a real serve.Server with the
// coordinator mounted, real Workers polling over HTTP, and the client
// paths (streaming sweep, bench.Remote) driven against them. This is an
// external test package because internal/serve imports internal/cluster.
package cluster_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/cluster"
	"cachecraft/internal/config"
	"cachecraft/internal/obs"
	"cachecraft/internal/serve"
	"cachecraft/internal/store"
)

func quickBase() config.GPU {
	cfg := config.Quick()
	cfg.AccessesPerSM = 300
	return cfg
}

// newClusterServer stands up a serve.Server with the coordinator mounted,
// exactly as `cachecraft-serve -coordinator` wires it.
func newClusterServer(t *testing.T, base config.GPU, copt cluster.Options, st *store.Store) (*httptest.Server, *cluster.Coordinator) {
	t.Helper()
	copt.Base = base
	copt.Store = st
	if copt.Registry == nil {
		copt.Registry = obs.NewRegistry()
	}
	co := cluster.New(copt)
	t.Cleanup(co.Close)
	srv := serve.New(serve.Options{
		Base: base, Store: st, MaxInFlight: 4, MaxQueue: 8,
		Registry: copt.Registry, Coordinator: co,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, co
}

// startWorker launches an in-process Worker against the coordinator URL
// and returns a stop function that cancels it and waits for exit —
// cancelling mid-lease is exactly how the tests model a worker dying.
func startWorker(t *testing.T, url, name string) (stop func()) {
	t.Helper()
	r := bench.NewRunner(config.Default())
	r.SetWorkers(2)
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		Coordinator: url,
		Name:        name,
		Runner:      r,
		PollMax:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	stop = func() {
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return stop
}

type streamLine struct {
	Done        bool   `json:"done"`
	Cells       int    `json:"cells"`
	Errors      int    `json:"errors"`
	Error       string `json:"error"`
	Workload    string `json:"workload"`
	Scheme      string `json:"scheme"`
	Fingerprint string `json:"fingerprint"`
}

// readStream consumes a cluster sweep response: record lines and error
// lines keyed by workload/scheme, plus the trailer (nil if absent).
func readStream(t *testing.T, body io.Reader) (records, errLines map[string]string, trailer *streamLine) {
	t.Helper()
	records, errLines = map[string]string{}, map[string]string{}
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if trailer != nil {
			t.Fatalf("line after trailer: %s", sc.Text())
		}
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Text())
		}
		switch {
		case line.Done:
			tr := line
			trailer = &tr
		case line.Error != "":
			key := line.Workload + "/" + line.Scheme
			if _, dup := errLines[key]; dup {
				t.Fatalf("duplicate error line for %s", key)
			}
			errLines[key] = line.Error
		default:
			var rec store.Record
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("bad record line: %v\n%s", err, sc.Text())
			}
			key := rec.Workload + "/" + rec.Scheme
			if _, dup := records[key]; dup {
				t.Fatalf("duplicate record for %s", key)
			}
			records[key] = rec.Fingerprint
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return records, errLines, trailer
}

func metricsText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func postSweep(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/cluster/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestClusterSweepEndToEnd(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newClusterServer(t, quickBase(), cluster.Options{}, st)
	startWorker(t, ts.URL, "w1")
	startWorker(t, ts.URL, "w2")

	resp := postSweep(t, ts.URL, `{"workloads":["stream","scan"],"schemes":["none","ecc-cache"]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	records, errLines, trailer := readStream(t, resp.Body)
	if len(errLines) != 0 {
		t.Fatalf("error lines: %v", errLines)
	}
	if len(records) != 4 {
		t.Fatalf("records = %v, want 4 cells", records)
	}
	if trailer == nil || trailer.Cells != 4 || trailer.Errors != 0 {
		t.Fatalf("trailer = %+v", trailer)
	}
	// Every record becomes durable in the store under its fingerprint.
	// Persistence deliberately happens after the outcome is published (a
	// slow disk must not stall the stream), so allow it to trail briefly.
	for key, fp := range records {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, ok := st.Get(fp); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("cell %s (fp %s) not persisted", key, fp)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// A second identical sweep is answered from the store: no new leases.
	m1 := metricsText(t, ts.URL)
	resp2 := postSweep(t, ts.URL, `{"workloads":["stream","scan"],"schemes":["none","ecc-cache"]}`)
	defer resp2.Body.Close()
	rec2, _, tr2 := readStream(t, resp2.Body)
	if len(rec2) != 4 || tr2 == nil {
		t.Fatalf("warm sweep: %v, %+v", rec2, tr2)
	}
	m2 := metricsText(t, ts.URL)
	pick := func(text, name string) string {
		for _, ln := range strings.Split(text, "\n") {
			if strings.HasPrefix(ln, name+" ") {
				return ln
			}
		}
		return name + " <absent>"
	}
	if a, b := pick(m1, "cachecraft_cluster_cells_leased_total"), pick(m2, "cachecraft_cluster_cells_leased_total"); a != b {
		t.Fatalf("warm sweep leased new cells: %q -> %q", a, b)
	}
}

// TestClusterSweepSurvivesWorkerDeath is the ISSUE's failure drill: a
// worker takes a lease and dies (no heartbeat, no complete). The lease
// expires, the cells re-queue, a healthy worker finishes them, and the
// client still sees exactly one line per cell plus the trailer — with the
// retries visible in /metrics and no cell errors counted.
func TestClusterSweepSurvivesWorkerDeath(t *testing.T) {
	ts, _ := newClusterServer(t, quickBase(), cluster.Options{
		LeaseTTL:    150 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		// Speculation off so completion must come from expiry + retry —
		// the failure path under test — not from a straggler duplicate.
		DisableSpeculation: true,
	}, nil)

	// Start the stream first so the cells exist to be leased.
	resp := postSweep(t, ts.URL, `{"workloads":["stream","scan"],"schemes":["none","ecc-cache"]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}

	// The "victim" leases two cells at the protocol level and dies on the
	// spot: no heartbeat, no complete, exactly like a SIGKILLed process.
	var grant cluster.LeaseGrant
	deadline := time.Now().Add(5 * time.Second)
	for len(grant.Cells) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim never got a lease")
		}
		lr, err := http.Post(ts.URL+"/v1/cluster/lease", "application/json",
			strings.NewReader(`{"worker":"victim","max":2}`))
		if err != nil {
			t.Fatal(err)
		}
		if lr.StatusCode == http.StatusOK {
			if err := json.NewDecoder(lr.Body).Decode(&grant); err != nil {
				t.Fatal(err)
			}
		}
		io.Copy(io.Discard, lr.Body)
		lr.Body.Close()
		if len(grant.Cells) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}

	startWorker(t, ts.URL, "survivor")

	records, errLines, trailer := readStream(t, resp.Body)
	if len(errLines) != 0 {
		t.Fatalf("error lines after recovery: %v", errLines)
	}
	if len(records) != 4 {
		t.Fatalf("records = %v, want 4", records)
	}
	if trailer == nil || trailer.Cells != 4 || trailer.Errors != 0 {
		t.Fatalf("trailer = %+v", trailer)
	}

	m := metricsText(t, ts.URL)
	for _, want := range []string{
		"cachecraft_cluster_leases_expired_total 1",
		"cachecraft_cluster_cells_retried_total 2",
		"cachecraft_sweep_cell_errors_total 0",
		"cachecraft_cluster_cells_failed_total 0",
	} {
		if !strings.Contains(m, want+"\n") {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestClusterStreamErrorCountsOncePerCell: a grid whose every simulation
// fails burns the full retry budget per cell, but the client receives
// exactly one error line per cell and the shared
// cachecraft_sweep_cell_errors_total counts cells, not attempts.
func TestClusterStreamErrorCountsOncePerCell(t *testing.T) {
	base := quickBase()
	base.MaxCycles = 1 // every simulation fails to converge
	ts, _ := newClusterServer(t, base, cluster.Options{
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
	}, nil)
	startWorker(t, ts.URL, "w1")

	resp := postSweep(t, ts.URL, `{"workloads":["stream","scan"],"schemes":["none"]}`)
	defer resp.Body.Close()
	records, errLines, trailer := readStream(t, resp.Body)
	if len(records) != 0 {
		t.Fatalf("records from a failing grid: %v", records)
	}
	if len(errLines) != 2 {
		t.Fatalf("error lines = %v, want one per cell", errLines)
	}
	for key, msg := range errLines {
		if !strings.Contains(msg, "after 2 attempts") || !strings.Contains(msg, "converge") {
			t.Errorf("cell %s: error %q does not carry attempts and cause", key, msg)
		}
	}
	if trailer == nil || trailer.Cells != 2 || trailer.Errors != 2 {
		t.Fatalf("trailer = %+v", trailer)
	}
	m := metricsText(t, ts.URL)
	for _, want := range []string{
		"cachecraft_sweep_cell_errors_total 2", // cells, not the 4 attempts
		"cachecraft_cluster_cells_failed_total 2",
		"cachecraft_cluster_cells_retried_total 2",
	} {
		if !strings.Contains(m, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}

// TestRemoteRunnerByteIdenticalToLocal is the tentpole's determinism
// contract: the same experiment rendered through a remote-backed runner
// (serve + coordinator + two in-process workers) produces byte-identical
// output to a purely local run, with every cell materialized remotely.
func TestRemoteRunnerByteIdenticalToLocal(t *testing.T) {
	base := quickBase()
	exp, err := bench.ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}

	var local bytes.Buffer
	lr := bench.NewRunner(base)
	lr.SetWorkers(4)
	if err := exp.Run(lr, base, &local); err != nil {
		t.Fatal(err)
	}

	ts, _ := newClusterServer(t, base, cluster.Options{}, nil)
	startWorker(t, ts.URL, "w1")
	startWorker(t, ts.URL, "w2")
	client := cluster.NewClient(ts.URL)
	if err := client.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}

	var remote bytes.Buffer
	rr := bench.NewRunner(base)
	rr.SetWorkers(4)
	rr.SetRemote(client)
	if err := exp.Run(rr, base, &remote); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(local.Bytes(), remote.Bytes()) {
		t.Fatalf("remote output differs from local:\n--- local ---\n%s\n--- remote ---\n%s",
			local.String(), remote.String())
	}
	st := rr.Stats()
	if st.Runs != 0 {
		t.Fatalf("remote runner simulated %d cells locally", st.Runs)
	}
	if st.RemoteHits == 0 {
		t.Fatal("no cells materialized remotely")
	}
}

func TestClientPingRejectsForeignServer(t *testing.T) {
	wrong := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok cachecraft@r0-other\n")
	}))
	t.Cleanup(wrong.Close)
	if err := cluster.NewClient(wrong.URL).Ping(context.Background()); err == nil {
		t.Fatal("Ping accepted a revision-mismatched coordinator")
	}
	down := httptest.NewServer(nil)
	down.Close()
	if err := cluster.NewClient(down.URL).Ping(context.Background()); err == nil {
		t.Fatal("Ping accepted an unreachable coordinator")
	}
}

func TestLeaseEndpointContract(t *testing.T) {
	ts, _ := newClusterServer(t, quickBase(), cluster.Options{}, nil)

	// Empty queue: 204 with an integer Retry-After hint.
	resp, err := http.Post(ts.URL+"/v1/cluster/lease", "application/json",
		strings.NewReader(`{"worker":"w1","max":4}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idle lease poll: status %d, want 204", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("204 without Retry-After hint")
	}

	// Version fencing: a mismatched worker is refused with 409.
	resp, err = http.Post(ts.URL+"/v1/cluster/lease", "application/json",
		strings.NewReader(`{"worker":"w1","max":4,"sim":"cachecraft@r0-other"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched worker: status %d, want 409", resp.StatusCode)
	}

	// Anonymous workers are rejected.
	resp, err = http.Post(ts.URL+"/v1/cluster/lease", "application/json",
		strings.NewReader(`{"max":4}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("anonymous worker: status %d, want 400", resp.StatusCode)
	}

	// Heartbeating an unknown lease reports 410 Gone.
	resp, err = http.Post(ts.URL+"/v1/cluster/heartbeat", "application/json",
		strings.NewReader(`{"lease_id":"no-such-lease"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("unknown heartbeat: status %d, want 410", resp.StatusCode)
	}
}
