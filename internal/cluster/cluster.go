// Package cluster shards a sweep grid across worker processes over HTTP.
//
// The coordinator side expands sweep requests into fingerprint-keyed
// cells (one per configuration × workload × scheme), skips cells the
// persistent store already holds, and hands the rest out as leases —
// batches of cells with a deadline — to workers that poll for work.
// Workers run their cells through a local bench.Runner, push each result
// back as it completes, and heartbeat to keep their leases alive. A lease
// that expires (worker death) or a cell a worker reports as failed is
// re-queued with capped exponential backoff until a retry budget is
// exhausted; when the pending queue drains, still-leased stragglers are
// speculatively re-dispatched to idle workers and the first result wins.
//
// First-result-wins is safe because cells are content-addressed: a cell's
// fingerprint covers the simulator revision, the full configuration, the
// workload, and the scheme, and the simulator is deterministic, so two
// workers computing the same fingerprint produce byte-identical records.
// Duplicated work is wasted time, never wrong answers. docs/CLUSTER.md
// documents the protocol, the failure matrix, and this determinism
// argument in full.
//
// Wire endpoints (mounted into internal/serve by Coordinator.Register):
//
//	POST /v1/cluster/sweep      grid → NDJSON records + {"done":true} trailer
//	POST /v1/cluster/lease      worker polls for a batch of cells
//	POST /v1/cluster/complete   worker pushes per-cell results
//	POST /v1/cluster/heartbeat  worker renews a lease deadline
package cluster

import (
	"cachecraft/internal/config"
	"cachecraft/internal/schemes"
	"cachecraft/internal/store"
	"cachecraft/internal/trace"
)

// Cell is one simulation the cluster must materialize. The configuration
// travels in full (it is plain data), so workers need no out-of-band
// agreement about sweep parameters; the fingerprint is the cell's
// identity everywhere — queue key, store address, and the join point for
// duplicate results.
type Cell struct {
	Fingerprint string     `json:"fingerprint"`
	Config      config.GPU `json:"config"`
	Workload    string     `json:"workload"`
	Scheme      string     `json:"scheme"`
}

// NewCell builds a cell with its canonical fingerprint.
func NewCell(cfg config.GPU, workload, scheme string) Cell {
	return Cell{
		Fingerprint: store.Fingerprint(cfg, workload, scheme),
		Config:      cfg,
		Workload:    workload,
		Scheme:      scheme,
	}
}

// Expressible reports whether a (workload, scheme) pair can travel over
// the cluster protocol: both must be registered names, because workers
// reconstruct the scheme from its name. Custom in-process variants
// (bench.Runner.AddVariant closures) are not expressible and run locally.
func Expressible(workload, scheme string) bool {
	return nameIn(workload, trace.Names()) && nameIn(scheme, schemes.All())
}

func nameIn(name string, all []string) bool {
	for _, n := range all {
		if n == name {
			return true
		}
	}
	return false
}

// SweepRequest is the body of POST /v1/cluster/sweep. Empty lists default
// to the full registered sets; a nil Config uses the coordinator's base
// configuration, so the endpoint accepts exactly the grids /v1/sweep does
// plus configuration overrides (sensitivity sweeps).
type SweepRequest struct {
	Workloads []string    `json:"workloads"`
	Schemes   []string    `json:"schemes"`
	Config    *config.GPU `json:"config,omitempty"`
}

// LeaseRequest is the body of POST /v1/cluster/lease.
type LeaseRequest struct {
	// Worker names the polling worker (metrics label, straggler
	// re-dispatch identity). Required.
	Worker string `json:"worker"`
	// Max bounds how many cells the worker wants (clamped to [1, 256]).
	Max int `json:"max"`
	// Sim is the worker's version.String(). A mismatch is refused with
	// 409: a mixed-revision cluster would poison the content-addressed
	// store with records no one can look up.
	Sim string `json:"sim"`
	// Metrics is an optional snapshot of the worker's metrics registry
	// (obs.Registry.Snapshot flattened to name → value). Polls carry it
	// too — not just heartbeats — so an idle worker stays visible on the
	// coordinator's /metrics and /v1/cluster/status.
	Metrics map[string]uint64 `json:"metrics,omitempty"`
}

// LeaseGrant is the 200 response to a lease poll. A poll that finds no
// work gets 204 with a Retry-After header instead.
type LeaseGrant struct {
	LeaseID string `json:"lease_id"`
	// TTLMs is the lease lifetime in milliseconds; heartbeats reset it.
	TTLMs int64  `json:"ttl_ms"`
	Cells []Cell `json:"cells"`
}

// HeartbeatRequest is the body of POST /v1/cluster/heartbeat. An expired
// or unknown lease answers 410 Gone; the worker's cells are already being
// re-dispatched and it should finish quietly (its results are still
// accepted — first result wins).
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
	// Worker names the heartbeating worker so the coordinator can track
	// liveness without resolving the lease first. Optional: old workers
	// omit it and the coordinator falls back to the lease's holder.
	Worker string `json:"worker,omitempty"`
	// Metrics is an optional snapshot of the worker's metrics registry;
	// the coordinator re-exports it under per-worker-labelled
	// cachecraft_worker_* families on its own /metrics.
	Metrics map[string]uint64 `json:"metrics,omitempty"`
}

// CellResult is one element of a complete push: either a full record
// (success) or a fingerprint plus error (failure).
type CellResult struct {
	Record      *store.Record `json:"record,omitempty"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// CompleteRequest is the body of POST /v1/cluster/complete. Results for
// cells that are already done (a straggler losing the first-result-wins
// race) or for leases that no longer hold the cell are counted in Ignored
// rather than erroring, so workers never need to care whether they won.
type CompleteRequest struct {
	LeaseID string       `json:"lease_id"`
	Worker  string       `json:"worker"`
	Results []CellResult `json:"results"`
}

// CompleteResponse reports how a complete push was applied.
type CompleteResponse struct {
	Accepted int `json:"accepted"`
	Ignored  int `json:"ignored"`
}

// WorkerStatus is one worker's row in a cluster status response. A worker
// is Live while its last contact (lease poll, heartbeat, or complete
// push) is within three lease TTLs; after that it is presumed dead and
// its leases are being reaped.
type WorkerStatus struct {
	Name string `json:"name"`
	Live bool   `json:"live"`
	// LastSeenMs is milliseconds since the worker last contacted the
	// coordinator.
	LastSeenMs int64 `json:"last_seen_ms"`
	// ActiveLeases counts leases the worker currently holds;
	// OldestLeaseMs is the age of the oldest (0 when none).
	ActiveLeases  int   `json:"active_leases"`
	OldestLeaseMs int64 `json:"oldest_lease_ms"`
	// CellsCompleted counts results this worker delivered first;
	// CellsPerSec is that count over the worker's time in the cluster.
	CellsCompleted uint64  `json:"cells_completed"`
	CellsPerSec    float64 `json:"cells_per_sec"`
}

// QuarantinedCell is one poison cell's row in a status response: the
// cell's identity, its stable terminal error, and the failure history
// ("worker: cause" lines, oldest first) that condemned it.
type QuarantinedCell struct {
	Fingerprint string   `json:"fingerprint"`
	Workload    string   `json:"workload"`
	Scheme      string   `json:"scheme"`
	Error       string   `json:"error"`
	History     []string `json:"history,omitempty"`
}

// StatusResponse is the body of GET /v1/cluster/status: a point-in-time
// picture of queue depth and worker fleet health. Workers are sorted by
// name and quarantined cells by workload/scheme/fingerprint for stable
// output.
type StatusResponse struct {
	UptimeMs         int64 `json:"uptime_ms"`
	PendingCells     int   `json:"pending_cells"`
	LeasedCells      int   `json:"leased_cells"`
	DoneCells        int   `json:"done_cells"`
	FailedCells      int   `json:"failed_cells"`
	QuarantinedCells int   `json:"quarantined_cells"`
	ActiveLeases     int   `json:"active_leases"`
	// JournalReplayedCells counts cells this coordinator restored from
	// its sweep journal at startup (0 without a journal).
	JournalReplayedCells uint64            `json:"journal_replayed_cells"`
	Workers              []WorkerStatus    `json:"workers"`
	Quarantined          []QuarantinedCell `json:"quarantined,omitempty"`
}
