// Package cluster shards a sweep grid across worker processes over HTTP.
//
// The coordinator side expands sweep requests into fingerprint-keyed
// cells (one per configuration × workload × scheme), skips cells the
// persistent store already holds, and hands the rest out as leases —
// batches of cells with a deadline — to workers that poll for work.
// Workers run their cells through a local bench.Runner, push each result
// back as it completes, and heartbeat to keep their leases alive. A lease
// that expires (worker death) or a cell a worker reports as failed is
// re-queued with capped exponential backoff until a retry budget is
// exhausted; when the pending queue drains, still-leased stragglers are
// speculatively re-dispatched to idle workers and the first result wins.
//
// First-result-wins is safe because cells are content-addressed: a cell's
// fingerprint covers the simulator revision, the full configuration, the
// workload, and the scheme, and the simulator is deterministic, so two
// workers computing the same fingerprint produce byte-identical records.
// Duplicated work is wasted time, never wrong answers. docs/CLUSTER.md
// documents the protocol, the failure matrix, and this determinism
// argument in full.
//
// Wire endpoints (mounted into internal/serve by Coordinator.Register):
//
//	POST /v1/cluster/sweep      grid → NDJSON records + {"done":true} trailer
//	POST /v1/cluster/lease      worker polls for a batch of cells
//	POST /v1/cluster/complete   worker pushes per-cell results
//	POST /v1/cluster/heartbeat  worker renews a lease deadline
package cluster

import (
	"cachecraft/internal/config"
	"cachecraft/internal/schemes"
	"cachecraft/internal/store"
	"cachecraft/internal/trace"
)

// Cell is one simulation the cluster must materialize. The configuration
// travels in full (it is plain data), so workers need no out-of-band
// agreement about sweep parameters; the fingerprint is the cell's
// identity everywhere — queue key, store address, and the join point for
// duplicate results.
type Cell struct {
	Fingerprint string     `json:"fingerprint"`
	Config      config.GPU `json:"config"`
	Workload    string     `json:"workload"`
	Scheme      string     `json:"scheme"`
}

// NewCell builds a cell with its canonical fingerprint.
func NewCell(cfg config.GPU, workload, scheme string) Cell {
	return Cell{
		Fingerprint: store.Fingerprint(cfg, workload, scheme),
		Config:      cfg,
		Workload:    workload,
		Scheme:      scheme,
	}
}

// Expressible reports whether a (workload, scheme) pair can travel over
// the cluster protocol: both must be registered names, because workers
// reconstruct the scheme from its name. Custom in-process variants
// (bench.Runner.AddVariant closures) are not expressible and run locally.
func Expressible(workload, scheme string) bool {
	return nameIn(workload, trace.Names()) && nameIn(scheme, schemes.All())
}

func nameIn(name string, all []string) bool {
	for _, n := range all {
		if n == name {
			return true
		}
	}
	return false
}

// SweepRequest is the body of POST /v1/cluster/sweep. Empty lists default
// to the full registered sets; a nil Config uses the coordinator's base
// configuration, so the endpoint accepts exactly the grids /v1/sweep does
// plus configuration overrides (sensitivity sweeps).
type SweepRequest struct {
	Workloads []string    `json:"workloads"`
	Schemes   []string    `json:"schemes"`
	Config    *config.GPU `json:"config,omitempty"`
}

// LeaseRequest is the body of POST /v1/cluster/lease.
type LeaseRequest struct {
	// Worker names the polling worker (metrics label, straggler
	// re-dispatch identity). Required.
	Worker string `json:"worker"`
	// Max bounds how many cells the worker wants (clamped to [1, 256]).
	Max int `json:"max"`
	// Sim is the worker's version.String(). A mismatch is refused with
	// 409: a mixed-revision cluster would poison the content-addressed
	// store with records no one can look up.
	Sim string `json:"sim"`
}

// LeaseGrant is the 200 response to a lease poll. A poll that finds no
// work gets 204 with a Retry-After header instead.
type LeaseGrant struct {
	LeaseID string `json:"lease_id"`
	// TTLMs is the lease lifetime in milliseconds; heartbeats reset it.
	TTLMs int64  `json:"ttl_ms"`
	Cells []Cell `json:"cells"`
}

// HeartbeatRequest is the body of POST /v1/cluster/heartbeat. An expired
// or unknown lease answers 410 Gone; the worker's cells are already being
// re-dispatched and it should finish quietly (its results are still
// accepted — first result wins).
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// CellResult is one element of a complete push: either a full record
// (success) or a fingerprint plus error (failure).
type CellResult struct {
	Record      *store.Record `json:"record,omitempty"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// CompleteRequest is the body of POST /v1/cluster/complete. Results for
// cells that are already done (a straggler losing the first-result-wins
// race) or for leases that no longer hold the cell are counted in Ignored
// rather than erroring, so workers never need to care whether they won.
type CompleteRequest struct {
	LeaseID string       `json:"lease_id"`
	Worker  string       `json:"worker"`
	Results []CellResult `json:"results"`
}

// CompleteResponse reports how a complete push was applied.
type CompleteResponse struct {
	Accepted int `json:"accepted"`
	Ignored  int `json:"ignored"`
}
