package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"cachecraft/internal/config"
	"cachecraft/internal/gpu"
	"cachecraft/internal/store"
	"cachecraft/internal/version"
)

// Client drives a cluster coordinator from the consumer side. It
// implements bench.Remote, so a bench.Runner with SetRemote(client)
// transparently materializes expressible cells on the cluster: results
// are deterministic and content-addressed, so a remote run's output is
// byte-identical to a local one — only the machines doing the simulating
// change.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the coordinator at base (e.g.
// "http://host:8344").
func NewClient(base string) *Client {
	hc := &http.Client{}
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		// A sweep fans out one streaming request per cell; keep the
		// connections reusable instead of thrashing the default two
		// idle conns per host.
		tc := t.Clone()
		tc.MaxIdleConnsPerHost = 64
		hc.Transport = tc
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Can implements bench.Remote: only registered workload and scheme names
// travel over the wire (custom in-process variants run locally).
func (c *Client) Can(workload, scheme string) bool {
	return Expressible(workload, scheme)
}

// Ping verifies the coordinator is reachable and runs the same simulator
// revision as this process. A revision mismatch is fatal for callers that
// promise byte-identical output, so it is an error, not a warning.
func (c *Client) Ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: coordinator unreachable: %w", err)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: coordinator healthz: HTTP %d", resp.StatusCode)
	}
	want := "ok " + version.String()
	if got := strings.TrimSpace(string(body)); got != want {
		// Wrap the sentinel so callers (AwaitCoordinator, worker startup)
		// can tell "retry until it comes up" from "retrying cannot help".
		return fmt.Errorf("cluster: coordinator says %q, this process is %q: %w", got, want, ErrVersionMismatch)
	}
	return nil
}

// AwaitCoordinator pings the coordinator with capped exponential backoff
// until it answers healthily, ctx ends, or the coordinator turns out to
// run a different simulator revision (fatal — waiting cannot fix it).
// Workers call this at startup so fleet bring-up has no ordering
// constraint: workers started before the coordinator simply wait for it,
// exactly as they would ride out a mid-run coordinator restart. logf
// (optional) receives one line per failed attempt.
func AwaitCoordinator(ctx context.Context, c *Client, logf func(format string, args ...any)) error {
	backoff := 250 * time.Millisecond
	for attempt := 1; ; attempt++ {
		pingCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		err := c.Ping(pingCtx)
		cancel()
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrVersionMismatch):
			return err
		case ctx.Err() != nil:
			return fmt.Errorf("cluster: waiting for coordinator: %w", ctx.Err())
		}
		if logf != nil {
			logf("coordinator not ready (attempt %d): %v; retrying in %s", attempt, err, backoff)
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("cluster: waiting for coordinator: %w", ctx.Err())
		case <-t.C:
		}
		backoff = bump(backoff, 5*time.Second)
	}
}

// Status fetches the coordinator's point-in-time cluster status: queue
// depth, worker fleet health, journal-replay count, and quarantined
// cells. cachecraft-report's -cluster mode renders this.
func (c *Client) Status(ctx context.Context) (StatusResponse, error) {
	var st StatusResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/cluster/status", nil)
	if err != nil {
		return st, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return st, fmt.Errorf("cluster: status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return st, fmt.Errorf("cluster: status: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("cluster: status: %w", err)
	}
	return st, nil
}

// Run implements bench.Remote: it submits a single-cell sweep and decodes
// the one streamed record. Saturation (429) backs off as the Retry-After
// header asks and retries; an error line or a truncated stream is an
// error the runner will recover from by simulating locally.
func (c *Client) Run(ctx context.Context, cfg config.GPU, workload, scheme string) (gpu.Result, error) {
	req := SweepRequest{Workloads: []string{workload}, Schemes: []string{scheme}, Config: &cfg}
	raw, err := json.Marshal(req)
	if err != nil {
		return gpu.Result{}, err
	}
	backoff := time.Second
	for attempt := 0; ; attempt++ {
		res, retry, err := c.runOnce(ctx, raw)
		if err == nil {
			return res, nil
		}
		if !retry || attempt >= 4 || ctx.Err() != nil {
			return gpu.Result{}, err
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return gpu.Result{}, ctx.Err()
		case <-t.C:
		}
		backoff *= 2
	}
}

// runOnce performs one sweep request; retry reports whether the failure
// is a saturation signal worth waiting out.
func (c *Client) runOnce(ctx context.Context, body []byte) (gpu.Result, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/cluster/sweep", bytes.NewReader(body))
	if err != nil {
		return gpu.Result{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return gpu.Result{}, false, fmt.Errorf("cluster: sweep: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusTooManyRequests {
		wait := retryAfterSeconds(resp.Header)
		if wait < 1 {
			wait = 1
		}
		return gpu.Result{}, true, fmt.Errorf("cluster: coordinator saturated (retry after %ds)", wait)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return gpu.Result{}, false, fmt.Errorf("cluster: sweep: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Done        bool   `json:"done"`
			Error       string `json:"error"`
			Fingerprint string `json:"fingerprint"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return gpu.Result{}, false, fmt.Errorf("cluster: bad stream line: %w", err)
		}
		switch {
		case probe.Error != "":
			return gpu.Result{}, false, fmt.Errorf("cluster: remote cell failed: %s", probe.Error)
		case probe.Done:
			return gpu.Result{}, false, fmt.Errorf("cluster: stream ended without a record")
		case probe.Fingerprint != "":
			var rec store.Record
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				return gpu.Result{}, false, fmt.Errorf("cluster: bad record line: %w", err)
			}
			if rec.Sim != version.String() {
				return gpu.Result{}, false, fmt.Errorf("cluster: record from simulator revision %q, want %q",
					rec.Sim, version.String())
			}
			return rec.Result, false, nil
		}
	}
	if err := sc.Err(); err != nil {
		return gpu.Result{}, false, fmt.Errorf("cluster: stream: %w", err)
	}
	return gpu.Result{}, false, fmt.Errorf("cluster: stream truncated before any record")
}
