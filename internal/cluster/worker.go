package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/chaos"
	"cachecraft/internal/obs"
	"cachecraft/internal/store"
	"cachecraft/internal/version"
)

// ErrVersionMismatch reports that the coordinator refused this worker
// because it runs a different simulator revision. It is fatal: polling
// again cannot help until one side is upgraded.
var ErrVersionMismatch = errors.New("cluster: simulator revision mismatch with coordinator")

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8344".
	Coordinator string
	// Name identifies this worker in leases and metrics (default
	// "<hostname>-<pid>").
	Name string
	// Runner executes leased cells. Its worker pool bounds concurrent
	// simulations; its store (if any) lets the worker answer re-leased
	// cells from local disk without re-simulating.
	Runner *bench.Runner
	// Batch is the most cells requested per lease (default: the
	// runner's worker-pool size, so one lease keeps the pool full).
	Batch int
	// PollMax caps the idle-poll backoff (default 2s). The backoff
	// starts small and doubles while no work arrives; a Retry-After
	// hint from the coordinator (204 or 429) overrides it.
	PollMax time.Duration
	// HTTPClient overrides the default client (tests, timeouts).
	HTTPClient *http.Client
	// Registry, when set, is snapshotted onto every lease poll and
	// heartbeat so the coordinator can re-export this worker's metrics
	// under per-worker-labelled families on its own /metrics. Optional:
	// without it the worker reports liveness only.
	Registry *obs.Registry
	// Chaos injects faults into the worker's RPC paths (lease,
	// heartbeat, complete — errors and partitions look like connection
	// failures, latency delays the call) and into cell execution
	// (SiteWorkerExec: an injected error fails the cell, an injected
	// crash abandons the whole lease as a killed process would). Nil is
	// chaos off at zero cost.
	Chaos *chaos.Injector
	// Logger reports lease churn and push failures (nil = silent).
	Logger *slog.Logger
}

// Worker is the pull side of the cluster: poll a lease, simulate its
// cells through the local runner, stream results back as each finishes,
// heartbeat until the lease's work is done. Create with NewWorker; Run
// blocks until the context ends.
type Worker struct {
	opt WorkerOptions
	hc  *http.Client
}

// NewWorker validates options and fills defaults.
func NewWorker(opt WorkerOptions) (*Worker, error) {
	if opt.Coordinator == "" {
		return nil, fmt.Errorf("cluster: worker needs a coordinator URL")
	}
	if opt.Runner == nil {
		return nil, fmt.Errorf("cluster: worker needs a runner")
	}
	if opt.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opt.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opt.Batch <= 0 {
		opt.Batch = opt.Runner.Workers()
	}
	if opt.PollMax <= 0 {
		opt.PollMax = 2 * time.Second
	}
	hc := opt.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Worker{opt: opt, hc: hc}, nil
}

// Name reports the worker's lease/metrics identity.
func (w *Worker) Name() string { return w.opt.Name }

// Run polls for leases and processes them until ctx ends. Transient
// coordinator failures back off and retry; a simulator-revision mismatch
// returns ErrVersionMismatch.
func (w *Worker) Run(ctx context.Context) error {
	const idleMin = 50 * time.Millisecond
	idle := idleMin
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, hint, err := w.lease(ctx)
		switch {
		case errors.Is(err, ErrVersionMismatch):
			return err
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("lease poll: %v", err)
			sleepCtx(ctx, idle)
			idle = bump(idle, w.opt.PollMax)
		case grant == nil:
			d := hint
			if d <= 0 {
				d = idle
				idle = bump(idle, w.opt.PollMax)
			}
			sleepCtx(ctx, d)
		default:
			idle = idleMin
			w.process(ctx, grant)
		}
	}
}

func bump(d, max time.Duration) time.Duration {
	d *= 2
	if d > max {
		d = max
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// process runs every cell of one lease through the local runner,
// heartbeating in the background and pushing each result the moment it
// is ready (batching whatever finished in the meantime). Everything
// under the lease shares leaseCtx, so a chaos-injected crash cancels
// the whole claim at once — heartbeats stop, sims abort, pushes cease —
// and the coordinator sees exactly what a kill -9 would leave behind.
func (w *Worker) process(ctx context.Context, grant *LeaseGrant) {
	leaseCtx, cancelLease := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeat(leaseCtx, grant)
	}()
	defer func() {
		cancelLease()
		hbWG.Wait()
	}()

	results := make(chan CellResult)
	var wg sync.WaitGroup
	for _, cell := range grant.Cells {
		wg.Add(1)
		go func(cell Cell) {
			defer wg.Done()
			res, crashed := w.runCell(leaseCtx, cell)
			if crashed {
				w.logf("chaos: injected crash on %s; abandoning lease %s", cell.Fingerprint, grant.LeaseID)
				cancelLease()
				return
			}
			select {
			case results <- res:
			case <-leaseCtx.Done():
			}
		}(cell)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	for res := range results {
		batch := []CellResult{res}
	drain:
		for {
			select {
			case more, ok := <-results:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		if leaseCtx.Err() != nil {
			return // crashed mid-lease; nothing more gets pushed
		}
		w.complete(leaseCtx, grant, batch)
	}
}

// runCell executes one leased cell. The cell's fingerprint doubles as its
// runner config id, so identical cells re-leased later hit the memo (or
// the worker's local store) instead of re-simulating. crashed reports a
// chaos-injected worker crash: the caller abandons the entire lease.
func (w *Worker) runCell(ctx context.Context, cell Cell) (res CellResult, crashed bool) {
	if d := w.opt.Chaos.Fault(chaos.SiteWorkerExec, cell.Fingerprint); d.Crash {
		return CellResult{}, true
	} else if d.Err != nil {
		d.Sleep()
		return CellResult{Fingerprint: cell.Fingerprint, Error: d.Err.Error()}, false
	} else {
		d.Sleep()
	}
	w.opt.Runner.AddConfig(cell.Fingerprint, cell.Config)
	out, err := w.opt.Runner.ResultCtx(ctx, bench.Spec{
		CfgID:    cell.Fingerprint,
		Workload: cell.Workload,
		Variant:  cell.Scheme,
	})
	if err != nil {
		return CellResult{Fingerprint: cell.Fingerprint, Error: err.Error()}, false
	}
	return CellResult{Record: &store.Record{
		Fingerprint: cell.Fingerprint,
		Sim:         version.String(),
		Workload:    cell.Workload,
		Scheme:      cell.Scheme,
		Result:      out,
	}}, false
}

// heartbeat renews the lease every TTL/3 until the lease's work is done
// or the coordinator reports the lease gone (410) — after which the
// worker keeps computing quietly: results are accepted first-wins even
// without a live lease. Each renewal gets a timeout derived from the
// lease TTL: a renewal still in flight when half the TTL is gone has
// already lost its purpose, and an unbounded hang here would silently
// stop the renewals that keep the lease alive.
func (w *Worker) heartbeat(ctx context.Context, grant *LeaseGrant) {
	ttl := time.Duration(grant.TTLMs) * time.Millisecond
	every := ttl / 3
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	budget := rpcBudget(ttl/2, time.Second)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		hbCtx, cancel := context.WithTimeout(ctx, budget)
		code, _, err := w.post(hbCtx, "/v1/cluster/heartbeat", HeartbeatRequest{
			LeaseID: grant.LeaseID,
			Worker:  w.opt.Name,
			Metrics: w.snapshot(),
		}, nil)
		cancel()
		switch {
		case ctx.Err() != nil:
			return
		case err != nil:
			w.logf("heartbeat: %v", err) // transient; keep ticking
		case code == http.StatusGone:
			w.logf("lease %s expired under us; finishing without it", grant.LeaseID)
			return
		}
	}
}

// rpcBudget is a lease-TTL-derived per-call timeout with a floor: the
// TTL scales the budget on real deployments while the floor keeps tiny
// test TTLs from making every call time out.
func rpcBudget(fromTTL, floor time.Duration) time.Duration {
	if fromTTL < floor {
		return floor
	}
	return fromTTL
}

// lease polls for work: (grant, 0, nil) on success, (nil, hint, nil) when
// there is none (hint = Retry-After), or an error.
func (w *Worker) lease(ctx context.Context) (*LeaseGrant, time.Duration, error) {
	var grant LeaseGrant
	code, hdr, err := w.post(ctx, "/v1/cluster/lease", LeaseRequest{
		Worker:  w.opt.Name,
		Max:     w.opt.Batch,
		Sim:     version.String(),
		Metrics: w.snapshot(),
	}, &grant)
	switch {
	case err != nil:
		return nil, 0, err
	case code == http.StatusOK:
		if len(grant.Cells) == 0 {
			return nil, 0, nil
		}
		return &grant, 0, nil
	case code == http.StatusNoContent, code == http.StatusTooManyRequests:
		return nil, time.Duration(retryAfterSeconds(hdr)) * time.Second, nil
	case code == http.StatusConflict:
		return nil, 0, ErrVersionMismatch
	default:
		return nil, 0, fmt.Errorf("cluster: lease poll: HTTP %d", code)
	}
}

// complete pushes a batch of results, retrying transient failures. A push
// that ultimately fails is only logged: the lease will expire and the
// coordinator re-dispatches, so results are never silently lost — just
// recomputed. Each attempt is bounded by a TTL-derived timeout so a
// push into a hung socket cannot outlive the lease it reports under.
func (w *Worker) complete(ctx context.Context, grant *LeaseGrant, batch []CellResult) {
	req := CompleteRequest{LeaseID: grant.LeaseID, Worker: w.opt.Name, Results: batch}
	budget := rpcBudget(time.Duration(grant.TTLMs)*time.Millisecond, 2*time.Second)
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt < 4; attempt++ {
		pushCtx, cancel := context.WithTimeout(ctx, budget)
		code, hdr, err := w.post(pushCtx, "/v1/cluster/complete", req, nil)
		cancel()
		switch {
		case ctx.Err() != nil:
			return
		case err == nil && code == http.StatusOK:
			return
		case err == nil && code == http.StatusTooManyRequests:
			// Back off as the coordinator asks (satellite contract:
			// 429s carry Retry-After precisely so workers can do this).
			if ra := retryAfterSeconds(hdr); ra > 0 {
				sleepCtx(ctx, time.Duration(ra)*time.Second)
				continue
			}
		case err == nil:
			w.logf("complete: HTTP %d", code)
		default:
			w.logf("complete: %v", err)
		}
		sleepCtx(ctx, backoff)
		backoff = bump(backoff, 2*time.Second)
	}
	w.logf("dropping %d results after repeated push failures (lease expiry will re-dispatch)", len(batch))
}

// rpcSites maps RPC paths to their chaos sites, so a fault schedule can
// target (say) heartbeats without touching result pushes.
var rpcSites = map[string]chaos.Site{
	"/v1/cluster/lease":     chaos.SiteWorkerLease,
	"/v1/cluster/heartbeat": chaos.SiteWorkerHeartbeat,
	"/v1/cluster/complete":  chaos.SiteWorkerComplete,
}

// post sends one JSON request and decodes a JSON body into out (when out
// is non-nil and the status is 200). Chaos faults fire before the wire:
// an injected error or partition is indistinguishable from a connection
// failure, injected latency stalls the call inside whatever context
// budget the caller imposed.
func (w *Worker) post(ctx context.Context, path string, body, out any) (int, http.Header, error) {
	if site, ok := rpcSites[path]; ok {
		if err := w.opt.Chaos.Inject(site, w.opt.Name); err != nil {
			return 0, nil, fmt.Errorf("cluster: %s: %w", path, err)
		}
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.Coordinator+path, bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, resp.Header, fmt.Errorf("cluster: decode %s response: %w", path, err)
		}
	}
	return resp.StatusCode, resp.Header, nil
}

// snapshot flattens the worker's registry to the name → value map the
// wire protocol carries; nil when no registry was configured. Polls
// carry it too — not just heartbeats — so an idle worker's families
// stay fresh on the coordinator.
func (w *Worker) snapshot() map[string]uint64 {
	if w.opt.Registry == nil {
		return nil
	}
	c := w.opt.Registry.Snapshot()
	names := c.Names()
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		out[n] = c.Get(n)
	}
	return out
}

func (w *Worker) logf(format string, args ...any) {
	if w.opt.Logger != nil {
		w.opt.Logger.Info("worker " + w.opt.Name + ": " + fmt.Sprintf(format, args...))
	}
}
