package cluster

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cachecraft/internal/obs"
	"cachecraft/internal/version"
)

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j := openTestJournal(t, path)
	if got := len(j.Replayed()); got != 0 {
		t.Fatalf("fresh journal replayed %d entries", got)
	}
	want := []JournalEntry{
		{Op: JournalDone, Fingerprint: "fp1", Workload: "stream", Scheme: "none",
			Sim: version.String(), Sum: "abc", Body: []byte(`{"k":1}`)},
		{Op: JournalFailed, Fingerprint: "fp2", Workload: "stream", Scheme: "park",
			Sim: version.String(), Error: "cluster: cell failed after 3 attempts: boom"},
		{Op: JournalQuarantined, Fingerprint: "fp3", Workload: "scan", Scheme: "none",
			Sim: version.String(), Error: "quarantined", History: []string{"w1: lease expired", "w2: lease expired"}},
	}
	if err := j.Append(want[0]); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(want[1], want[2]); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openTestJournal(t, path)
	got := j2.Replayed()
	if len(got) != len(want) || j2.Skipped() != 0 {
		t.Fatalf("replayed %d entries (skipped %d), want %d", len(got), j2.Skipped(), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Fingerprint != want[i].Fingerprint ||
			got[i].Error != want[i].Error || string(got[i].Body) != string(want[i].Body) {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if len(got[2].History) != 2 || got[2].History[0] != "w1: lease expired" {
		t.Fatalf("quarantine history = %v", got[2].History)
	}
	// The reopened journal appends where the old one left off.
	if err := j2.Append(JournalEntry{Op: JournalDone, Fingerprint: "fp4", Sim: version.String()}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if j3 := openTestJournal(t, path); len(j3.Replayed()) != 4 {
		t.Fatalf("after reopen+append: %d entries, want 4", len(j3.Replayed()))
	}
}

// TestJournalTornTailIsDropped pins crash semantics: a half-written last
// line (the write the crash interrupted) and anything after a corrupted
// line are dropped, while every intact prefix entry survives.
func TestJournalTornTailIsDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j := openTestJournal(t, path)
	for _, fp := range []string{"fp1", "fp2", "fp3"} {
		if err := j.Append(JournalEntry{Op: JournalDone, Fingerprint: fp, Sim: version.String()}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last line in half, as a crash mid-append would.
	torn := data[:len(data)-20]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, path)
	if got := len(j2.Replayed()); got != 2 {
		t.Fatalf("torn tail: replayed %d, want 2", got)
	}
	if j2.Skipped() != 1 {
		t.Fatalf("torn tail: skipped %d, want 1", j2.Skipped())
	}

	// Flip a byte inside the first line's body: replay must stop before
	// it, trusting nothing at or after the corruption.
	corrupt := append([]byte{}, data...)
	corrupt[30] ^= 0x40
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	j3 := openTestJournal(t, path)
	if got := len(j3.Replayed()); got != 0 {
		t.Fatalf("corrupt first line: replayed %d, want 0", got)
	}
	if j3.Skipped() != 3 {
		t.Fatalf("corrupt first line: skipped %d, want 3", j3.Skipped())
	}
}

// TestCoordinatorResumesFromJournal is the tentpole's in-process pin: a
// coordinator completes and fails cells, dies (Close), and its successor
// — same journal, fresh process state — answers the re-submitted grid
// entirely from the journal: identical bytes, identical error strings,
// and zero dispatches.
func TestCoordinatorResumesFromJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j := openTestJournal(t, path)
	c1 := newTestCoordinator(t, Options{Journal: j, MaxAttempts: 1, DisableSpeculation: true})
	good, bad := testCell("none"), testCell("cachecraft")
	for _, cell := range []Cell{good, bad} {
		if err := c1.Submit(cell); err != nil {
			t.Fatal(err)
		}
	}
	grant := c1.Lease("w1", 2)
	if grant == nil || len(grant.Cells) != 2 {
		t.Fatalf("grant = %+v", grant)
	}
	c1.Complete(CompleteRequest{LeaseID: grant.LeaseID, Worker: "w1", Results: []CellResult{
		resultFor(good),
		{Fingerprint: bad.Fingerprint, Error: "division by zero in scheme"},
	}})
	out1good := mustWait(t, c1, good.Fingerprint)
	out1bad := mustWait(t, c1, bad.Fingerprint)
	if out1good.Err != "" || out1bad.Err == "" {
		t.Fatalf("first life outcomes: %+v / %+v", out1good, out1bad)
	}
	c1.Close()
	j.Close()

	reg := obs.NewRegistry()
	j2 := openTestJournal(t, path)
	c2 := newTestCoordinator(t, Options{Journal: j2, Registry: reg, DisableSpeculation: true})
	// The resumed sweep re-submits the same grid...
	for _, cell := range []Cell{good, bad} {
		if err := c2.Submit(cell); err != nil {
			t.Fatal(err)
		}
	}
	// ...and both cells answer instantly, with no worker and no dispatch.
	out2good := mustWait(t, c2, good.Fingerprint)
	out2bad := mustWait(t, c2, bad.Fingerprint)
	if string(out2good.Body) != string(out1good.Body) || out2good.Sum != out1good.Sum {
		t.Fatal("replayed success differs from the original bytes")
	}
	if out2bad.Err != out1bad.Err {
		t.Fatalf("replayed failure %q, want %q", out2bad.Err, out1bad.Err)
	}
	if g := c2.Lease("w1", 8); g != nil {
		t.Fatalf("resumed coordinator dispatched work: %+v (want zero recomputation)", g)
	}
	st := c2.Status()
	if st.DoneCells != 1 || st.FailedCells != 1 || st.JournalReplayedCells != 2 {
		t.Fatalf("status = %+v", st)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "cachecraft_journal_replayed_cells_total 2") {
		t.Error("metrics missing cachecraft_journal_replayed_cells_total 2")
	}
}

// TestJournalReplayFencesForeignRevisions: entries written by another
// simulator build must not resurrect — their fingerprints can never be
// asked for again, and replaying them would hide that the cells need
// recomputing under the new revision.
func TestJournalReplayFencesForeignRevisions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j := openTestJournal(t, path)
	if err := j.Append(
		JournalEntry{Op: JournalDone, Fingerprint: "fp-old", Workload: "stream", Scheme: "none",
			Sim: "cachecraft@r0-stale", Sum: "s", Body: []byte(`{}`)},
		JournalEntry{Op: JournalDone, Fingerprint: "fp-new", Workload: "stream", Scheme: "none",
			Sim: version.String(), Sum: "s", Body: []byte(`{}`)},
	); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2 := openTestJournal(t, path)
	c := newTestCoordinator(t, Options{Journal: j2})
	c.mu.Lock()
	_, oldOK := c.cells["fp-old"]
	_, newOK := c.cells["fp-new"]
	c.mu.Unlock()
	if oldOK || !newOK {
		t.Fatalf("replay: stale=%v current=%v, want stale fenced and current restored", oldOK, newOK)
	}
}

// TestWriteAheadOrdering pins the WAL property the byte-identity
// guarantee rests on: by the time a waiting client can observe a
// success, its entry is already fsynced in the journal.
func TestWriteAheadOrdering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j := openTestJournal(t, path)
	c := newTestCoordinator(t, Options{Journal: j})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	grant := c.Lease("w1", 1)
	if grant == nil {
		t.Fatal("no grant")
	}
	c.Complete(CompleteRequest{LeaseID: grant.LeaseID, Worker: "w1",
		Results: []CellResult{resultFor(cell)}})
	out := mustWait(t, c, cell.Fingerprint)
	// The instant Wait returns, a reopened journal must already hold the
	// exact published bytes — no flush, no Close, no grace period.
	j2 := openTestJournal(t, path)
	entries := j2.Replayed()
	if len(entries) != 1 {
		t.Fatalf("journal holds %d entries at publish time, want 1", len(entries))
	}
	if entries[0].Op != JournalDone || string(entries[0].Body) != string(out.Body) || entries[0].Sum != out.Sum {
		t.Fatalf("journal entry %+v does not match the published outcome", entries[0])
	}
}

func TestQuarantineAfterCrashLikeFailuresAcrossWorkers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j := openTestJournal(t, path)
	reg := obs.NewRegistry()
	c := newTestCoordinator(t, Options{
		Journal: j, Registry: reg,
		LeaseTTL: 40 * time.Millisecond, MaxAttempts: 10, QuarantineAfter: 2,
		DisableSpeculation: true,
	})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	// Two distinct workers take the cell and die (no heartbeat, no
	// complete): two crash-like failures in a row trip the poison rule.
	for i, worker := range []string{"w1", "w2"} {
		var g *LeaseGrant
		deadline := time.Now().Add(5 * time.Second)
		for g == nil {
			if time.Now().After(deadline) {
				t.Fatalf("attempt %d never granted", i)
			}
			g = c.Lease(worker, 1)
			if g == nil {
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	out := mustWait(t, c, cell.Fingerprint)
	if !out.Quarantined || !strings.Contains(out.Err, "quarantined") {
		t.Fatalf("outcome = %+v, want quarantine", out)
	}
	st := c.Status()
	if st.QuarantinedCells != 1 || st.FailedCells != 0 || len(st.Quarantined) != 1 {
		t.Fatalf("status = %+v", st)
	}
	q := st.Quarantined[0]
	if q.Fingerprint != cell.Fingerprint || len(q.History) != 2 ||
		!strings.Contains(q.History[0], "w1") || !strings.Contains(q.History[1], "w2") {
		t.Fatalf("quarantine row = %+v", q)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "cachecraft_cells_quarantined_total 1") {
		t.Error("metrics missing cachecraft_cells_quarantined_total 1")
	}
	// A quarantined cell never circulates again.
	if g := c.Lease("w3", 1); g != nil {
		t.Fatalf("quarantined cell re-granted: %+v", g)
	}

	// The quarantine survives a restart, history and all.
	c.Close()
	j.Close()
	j2 := openTestJournal(t, path)
	c2 := newTestCoordinator(t, Options{Journal: j2})
	out2, err := c2.Wait(mustCtx(t), cell.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Quarantined || out2.Err != out.Err {
		t.Fatalf("replayed quarantine = %+v, want %+v", out2, out)
	}
	if st2 := c2.Status(); st2.QuarantinedCells != 1 || len(st2.Quarantined[0].History) != 2 {
		t.Fatalf("replayed status = %+v", st2)
	}
}

func mustCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestQuarantineNeedsDistinctWorkers: one flapping host repeatedly
// losing the same cell must not condemn it — the retry budget, not the
// poison rule, decides its fate.
func TestQuarantineNeedsDistinctWorkers(t *testing.T) {
	c := newTestCoordinator(t, Options{
		LeaseTTL: 30 * time.Millisecond, MaxAttempts: 3, QuarantineAfter: 2,
		DisableSpeculation: true,
	})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var g *LeaseGrant
		deadline := time.Now().Add(5 * time.Second)
		for g == nil {
			if time.Now().After(deadline) {
				t.Fatalf("attempt %d never granted", i)
			}
			g = c.Lease("flappy", 1)
			if g == nil {
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	out := mustWait(t, c, cell.Fingerprint)
	if out.Quarantined {
		t.Fatalf("single-worker failures quarantined the cell: %+v", out)
	}
	if !strings.Contains(out.Err, "after 3 attempts") {
		t.Fatalf("outcome = %+v, want retry-budget failure", out)
	}
}

// TestReportedErrorsDoNotQuarantine: a worker that survives and reports
// the cell's error is evidence the cell is merely wrong, not poison —
// only crash-like disappearances count toward quarantine.
func TestReportedErrorsDoNotQuarantine(t *testing.T) {
	c := newTestCoordinator(t, Options{
		MaxAttempts: 3, QuarantineAfter: 2, DisableSpeculation: true,
	})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	for i, worker := range []string{"w1", "w2", "w3"} {
		var g *LeaseGrant
		deadline := time.Now().Add(5 * time.Second)
		for g == nil {
			if time.Now().After(deadline) {
				t.Fatalf("attempt %d never granted", i)
			}
			g = c.Lease(worker, 1)
			if g == nil {
				time.Sleep(2 * time.Millisecond)
			}
		}
		c.Complete(CompleteRequest{LeaseID: g.LeaseID, Worker: worker,
			Results: []CellResult{{Fingerprint: cell.Fingerprint, Error: "bad math"}}})
	}
	out := mustWait(t, c, cell.Fingerprint)
	if out.Quarantined {
		t.Fatalf("reported errors quarantined the cell: %+v", out)
	}
	if !strings.Contains(out.Err, "after 3 attempts") || !strings.Contains(out.Err, "bad math") {
		t.Fatalf("outcome = %+v", out)
	}
}
