package cluster

import "cachecraft/internal/obs"

// metrics is the coordinator's instrument set. Queue and lease totals are
// plain counters incremented at the state transitions that own them;
// point-in-time populations (pending/leased cells, live workers) are
// sampling gauges so the exposition can never drift from coordinator
// state. The worker label is operator-assigned (one value per worker
// process), so its cardinality is the fleet size, not request volume.
//
// The stream-error counter shares serve's cachecraft_sweep_cell_errors_total
// family — both the local and the cluster sweep stream report terminal
// cell failures on one metric, and a cell that fails on one worker but
// succeeds on a retry contributes nothing.
type metrics struct {
	queued          *obs.Counter    // cells entered into the pending queue
	leased          *obs.Counter    // cells handed out in leases (incl. redispatch)
	redispatched    *obs.Counter    // speculative straggler duplicates handed out
	retried         *obs.Counter    // cells re-queued after failure or expiry
	expired         *obs.Counter    // leases reaped past their deadline
	failed          *obs.Counter    // cells terminally failed (budget exhausted)
	storeSkips      *obs.Counter    // submitted cells answered from the store
	quarantined     *obs.Counter    // cells condemned by the poison-cell rule
	journalReplayed *obs.Counter    // cells restored from the journal at startup
	completed       *obs.CounterVec // cells completed, by worker
	workerLeases    *obs.GaugeVec   // live leases, by worker
	leaseSeconds    *obs.Histogram  // lease grant → first accepted result
	streamErrors    *obs.Counter    // shared with serve: terminal error lines streamed
}

func newMetrics(reg *obs.Registry, c *Coordinator) *metrics {
	m := &metrics{}
	m.queued = reg.Counter("cachecraft_cluster_cells_queued_total",
		"Cells entered into the coordinator's pending queue (store hits are skipped, not queued).")
	m.leased = reg.Counter("cachecraft_cluster_cells_leased_total",
		"Cells handed out to workers in leases, including speculative re-dispatches.")
	m.redispatched = reg.Counter("cachecraft_cluster_cells_redispatched_total",
		"Straggler cells speculatively handed to a second worker while the first still holds a lease.")
	m.retried = reg.Counter("cachecraft_cluster_cells_retried_total",
		"Cells re-queued with backoff after a worker failure or lease expiry.")
	m.expired = reg.Counter("cachecraft_cluster_leases_expired_total",
		"Leases reaped because no heartbeat arrived before the deadline.")
	m.failed = reg.Counter("cachecraft_cluster_cells_failed_total",
		"Cells that exhausted their retry budget and failed terminally.")
	m.storeSkips = reg.Counter("cachecraft_cluster_store_skips_total",
		"Submitted cells answered directly from the persistent store without dispatch.")
	m.quarantined = reg.Counter("cachecraft_cells_quarantined_total",
		"Cells quarantined as poison after consecutive crash-like failures across distinct workers.")
	m.journalReplayed = reg.Counter("cachecraft_journal_replayed_cells_total",
		"Completed cells restored from the sweep journal when this coordinator started.")
	m.completed = reg.CounterVec("cachecraft_cluster_cells_completed_total",
		"Cells completed successfully, by the worker whose result was accepted.", "worker")
	m.workerLeases = reg.GaugeVec("cachecraft_cluster_worker_active_leases",
		"Live leases currently held, by worker.", "worker")
	m.leaseSeconds = reg.Histogram("cachecraft_cluster_lease_seconds",
		"Seconds from lease grant to each accepted result under that lease.")
	// Same family serve registers for the local sweep stream; the
	// registry dedupes by name, so both streams count into one series.
	m.streamErrors = reg.Counter("cachecraft_sweep_cell_errors_total",
		"Sweep cells that failed mid-stream and were reported as NDJSON error lines.")
	reg.GaugeFunc("cachecraft_cluster_pending_cells",
		"Cells waiting (or backing off) for a lease.",
		func() float64 { p, _ := c.countCells(); return float64(p) })
	reg.GaugeFunc("cachecraft_cluster_leased_cells",
		"Cells currently held by at least one live lease.",
		func() float64 { _, l := c.countCells(); return float64(l) })
	reg.GaugeFunc("cachecraft_cluster_active_workers",
		"Distinct workers currently holding live leases.",
		func() float64 { w, _ := c.countWorkers(); return float64(w) })
	reg.GaugeFunc("cachecraft_cluster_active_leases",
		"Live leases across all workers.",
		func() float64 { _, l := c.countWorkers(); return float64(l) })
	// Fleet liveness, sampled from the worker-contact history: known is
	// every worker ever heard from (polls count, so an idle worker is
	// known), live is the subset seen within three lease TTLs. known -
	// live is the dead-worker count an operator alerts on.
	reg.GaugeFunc("cachecraft_cluster_known_workers",
		"Workers that have ever contacted this coordinator (lease poll, heartbeat, or result push).",
		func() float64 { k, _ := c.countKnown(); return float64(k) })
	reg.GaugeFunc("cachecraft_cluster_live_workers",
		"Known workers heard from within the liveness horizon (3x lease TTL).",
		func() float64 { _, l := c.countKnown(); return float64(l) })
	return m
}
