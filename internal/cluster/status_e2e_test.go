// End-to-end coverage for the fleet-observability surface added with the
// probe/timeline PR: GET /v1/cluster/status, the known/live worker
// gauges, and the per-worker-labelled cachecraft_worker_* families the
// coordinator re-exports from worker snapshots — including their
// behavior when a worker dies mid-lease.
package cluster_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/cluster"
	"cachecraft/internal/config"
	"cachecraft/internal/obs"
)

// startWorkerWithRegistry is startWorker plus a metrics registry, so the
// worker's snapshots ride its lease polls and heartbeats.
func startWorkerWithRegistry(t *testing.T, url, name string) (stop func()) {
	t.Helper()
	r := bench.NewRunner(config.Default())
	r.SetWorkers(2)
	reg := obs.NewRegistry()
	bench.RegisterRunnerMetrics(reg, r)
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		Coordinator: url,
		Name:        name,
		Runner:      r,
		PollMax:     50 * time.Millisecond,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	stop = func() {
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return stop
}

func getStatus(t *testing.T, url string) cluster.StatusResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("status content type %q", ct)
	}
	var st cluster.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func workerByName(st cluster.StatusResponse, name string) (cluster.WorkerStatus, bool) {
	for _, w := range st.Workers {
		if w.Name == name {
			return w, true
		}
	}
	return cluster.WorkerStatus{}, false
}

// TestClusterStatusEndToEnd drives a grid through a registry-carrying
// worker and checks the whole fleet-observability surface: the status
// JSON accounts for every cell and credits the worker's completions, the
// coordinator /metrics carries the known/live gauges and the re-exported
// per-worker families, and an idle worker (poll traffic only) is still
// visible.
func TestClusterStatusEndToEnd(t *testing.T) {
	ts, _ := newClusterServer(t, quickBase(), cluster.Options{}, nil)

	// Before any contact: empty fleet, zero cells, uptime ticking.
	st := getStatus(t, ts.URL)
	if len(st.Workers) != 0 || st.PendingCells+st.LeasedCells+st.DoneCells+st.FailedCells != 0 {
		t.Fatalf("fresh coordinator status = %+v", st)
	}

	startWorkerWithRegistry(t, ts.URL, "w1")
	resp := postSweep(t, ts.URL, `{"workloads":["stream","scan"],"schemes":["none","ecc-cache"]}`)
	defer resp.Body.Close()
	records, errLines, trailer := readStream(t, resp.Body)
	if len(records) != 4 || len(errLines) != 0 || trailer == nil {
		t.Fatalf("sweep: records=%v errs=%v trailer=%+v", records, errLines, trailer)
	}

	st = getStatus(t, ts.URL)
	if st.DoneCells != 4 || st.PendingCells != 0 || st.FailedCells != 0 {
		t.Fatalf("post-sweep status = %+v, want 4 done", st)
	}
	if st.UptimeMs < 0 {
		t.Fatalf("uptime = %d", st.UptimeMs)
	}
	w1, ok := workerByName(st, "w1")
	if !ok {
		t.Fatalf("worker w1 missing from status: %+v", st.Workers)
	}
	if !w1.Live {
		t.Fatal("w1 not live immediately after completing a sweep")
	}
	if w1.CellsCompleted != 4 {
		t.Fatalf("w1 completed = %d, want 4", w1.CellsCompleted)
	}
	if w1.CellsPerSec <= 0 {
		t.Fatalf("w1 cells/sec = %v, want > 0", w1.CellsPerSec)
	}

	// The worker's registry snapshot rides its polls, so the coordinator
	// re-exports runner families labelled by worker. The poll loop runs
	// continuously; allow a poll cycle for the post-completion snapshot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := metricsText(t, ts.URL)
		if strings.Contains(m, `cachecraft_worker_sim_runs_total{worker="w1"} 4`) &&
			strings.Contains(m, "cachecraft_cluster_known_workers 1") &&
			strings.Contains(m, "cachecraft_cluster_live_workers 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("per-worker families never appeared on /metrics:\n%s", m)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterStatusSurvivesWorkerChurn reuses the death drill: a victim
// leases cells with a metrics snapshot attached and dies silently. The
// status report must keep the victim (not live, lease reaped), keep its
// last-reported metric values on /metrics, and show the survivor both
// live and credited with the recovered cells.
func TestClusterStatusSurvivesWorkerChurn(t *testing.T) {
	const ttl = 100 * time.Millisecond
	ts, _ := newClusterServer(t, quickBase(), cluster.Options{
		LeaseTTL:           ttl,
		BackoffBase:        time.Millisecond,
		BackoffCap:         5 * time.Millisecond,
		DisableSpeculation: true,
	}, nil)

	resp := postSweep(t, ts.URL, `{"workloads":["stream","scan"],"schemes":["none","ecc-cache"]}`)
	defer resp.Body.Close()

	// The victim leases at the protocol level — snapshot attached — and
	// dies on the spot: no heartbeat, no complete, a SIGKILLed process.
	var grant cluster.LeaseGrant
	deadline := time.Now().Add(5 * time.Second)
	for len(grant.Cells) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim never got a lease")
		}
		lr, err := http.Post(ts.URL+"/v1/cluster/lease", "application/json",
			strings.NewReader(`{"worker":"victim","max":2,"metrics":{"cachecraft_sim_runs_total":7}}`))
		if err != nil {
			t.Fatal(err)
		}
		if lr.StatusCode == http.StatusOK {
			if err := json.NewDecoder(lr.Body).Decode(&grant); err != nil {
				t.Fatal(err)
			}
		}
		io.Copy(io.Discard, lr.Body)
		lr.Body.Close()
		if len(grant.Cells) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}

	st := getStatus(t, ts.URL)
	if v, ok := workerByName(st, "victim"); !ok || !v.Live || v.ActiveLeases != 1 {
		t.Fatalf("victim right after leasing = %+v (found %v)", v, ok)
	}

	startWorkerWithRegistry(t, ts.URL, "survivor")
	records, errLines, trailer := readStream(t, resp.Body)
	if len(records) != 4 || len(errLines) != 0 || trailer == nil || trailer.Errors != 0 {
		t.Fatalf("recovery sweep: records=%v errs=%v trailer=%+v", records, errLines, trailer)
	}

	// Past three lease TTLs of silence the victim drops out of liveness —
	// but stays known, with its last metric snapshot still exported.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st = getStatus(t, ts.URL)
		v, ok := workerByName(st, "victim")
		if !ok {
			t.Fatalf("victim forgotten: %+v", st.Workers)
		}
		if !v.Live && v.ActiveLeases == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim still live after %s of silence: %+v", 3*ttl, v)
		}
		time.Sleep(20 * time.Millisecond)
	}
	sv, ok := workerByName(st, "survivor")
	if !ok || !sv.Live {
		t.Fatalf("survivor = %+v (found %v)", sv, ok)
	}
	if sv.CellsCompleted != 4 {
		t.Fatalf("survivor completed = %d, want all 4 recovered cells", sv.CellsCompleted)
	}
	if st.DoneCells != 4 || st.FailedCells != 0 {
		t.Fatalf("cells after recovery = %+v", st)
	}

	m := metricsText(t, ts.URL)
	if !strings.Contains(m, `cachecraft_worker_sim_runs_total{worker="victim"} 7`) {
		t.Fatalf("victim's last snapshot gone from /metrics:\n%s", m)
	}
	if !strings.Contains(m, `cachecraft_worker_sim_runs_total{worker="survivor"}`) {
		t.Fatalf("survivor has no re-exported families:\n%s", m)
	}
	if !strings.Contains(m, "cachecraft_cluster_known_workers 2") ||
		!strings.Contains(m, "cachecraft_cluster_live_workers 1") {
		t.Fatalf("known/live gauges wrong after churn:\n%s", m)
	}
}
