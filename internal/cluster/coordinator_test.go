package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"cachecraft/internal/config"
	"cachecraft/internal/gpu"
	"cachecraft/internal/obs"
	"cachecraft/internal/sim"
	"cachecraft/internal/store"
	"cachecraft/internal/version"
)

// newTestCoordinator builds a coordinator with fast timers so expiry and
// backoff are observable in test time, not operator time.
func newTestCoordinator(t *testing.T, opt Options) *Coordinator {
	t.Helper()
	if opt.LeaseTTL == 0 {
		opt.LeaseTTL = 100 * time.Millisecond
	}
	if opt.BackoffBase == 0 {
		opt.BackoffBase = time.Millisecond
	}
	if opt.BackoffCap == 0 {
		opt.BackoffCap = 5 * time.Millisecond
	}
	if opt.Base.NumSMs == 0 {
		opt.Base = config.Quick()
	}
	c := New(opt)
	t.Cleanup(c.Close)
	return c
}

func testCell(scheme string) Cell {
	return NewCell(config.Quick(), "stream", scheme)
}

func resultFor(cell Cell) CellResult {
	return CellResult{Record: &store.Record{
		Fingerprint: cell.Fingerprint,
		Sim:         version.String(),
		Workload:    cell.Workload,
		Scheme:      cell.Scheme,
		Result:      gpu.Result{Workload: cell.Workload, Scheme: cell.Scheme, Cycles: sim.Cycle(1234)},
	}}
}

func mustWait(t *testing.T, c *Coordinator, fp string) Outcome {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := c.Wait(ctx, fp)
	if err != nil {
		t.Fatalf("Wait(%s): %v", fp, err)
	}
	return out
}

func TestSubmitLeaseComplete(t *testing.T) {
	c := newTestCoordinator(t, Options{})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(cell); err != nil {
		t.Fatalf("re-submitting a known cell must join, not error: %v", err)
	}

	grant := c.Lease("w1", 8)
	if grant == nil || len(grant.Cells) != 1 {
		t.Fatalf("grant = %+v, want 1 cell", grant)
	}
	if grant.Cells[0].Fingerprint != cell.Fingerprint {
		t.Fatalf("leased %s, want %s", grant.Cells[0].Fingerprint, cell.Fingerprint)
	}
	// The cell is held: a second worker polling an empty queue may only
	// get it speculatively, never from the pending queue (covered below).
	resp := c.Complete(CompleteRequest{LeaseID: grant.LeaseID, Worker: "w1",
		Results: []CellResult{resultFor(cell)}})
	if resp.Accepted != 1 || resp.Ignored != 0 {
		t.Fatalf("complete = %+v", resp)
	}
	out := mustWait(t, c, cell.Fingerprint)
	if out.Err != "" || len(out.Body) == 0 || out.Sum == "" {
		t.Fatalf("outcome = %+v", out)
	}

	// A straggler pushing the same cell later loses quietly.
	resp = c.Complete(CompleteRequest{LeaseID: "stale", Worker: "w2",
		Results: []CellResult{resultFor(cell)}})
	if resp.Accepted != 0 || resp.Ignored != 1 {
		t.Fatalf("duplicate complete = %+v", resp)
	}
}

func TestSubmitSkipsStoreResidentCells(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cell := testCell("none")
	rec := *resultFor(cell).Record
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	c := newTestCoordinator(t, Options{Store: st})
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	// Completes without any worker existing.
	out := mustWait(t, c, cell.Fingerprint)
	if out.Err != "" || len(out.Body) == 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if grant := c.Lease("w1", 8); grant != nil {
		t.Fatalf("store-resident cell was dispatched: %+v", grant)
	}
}

func TestCompleteRejectsForeignRecords(t *testing.T) {
	c := newTestCoordinator(t, Options{})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	grant := c.Lease("w1", 1)
	if grant == nil {
		t.Fatal("no grant")
	}
	stale := resultFor(cell)
	stale.Record.Sim = "cachecraft@r0-stale"
	wrongWL := resultFor(cell)
	wrongWL.Record.Workload = "scan"
	resp := c.Complete(CompleteRequest{LeaseID: grant.LeaseID, Worker: "w1",
		Results: []CellResult{stale, wrongWL, {}}})
	if resp.Accepted != 0 || resp.Ignored != 3 {
		t.Fatalf("complete = %+v, want all ignored", resp)
	}
	select {
	case <-time.After(10 * time.Millisecond):
	case <-func() chan struct{} { c.mu.Lock(); defer c.mu.Unlock(); return c.cells[cell.Fingerprint].doneCh }():
		t.Fatal("cell completed from a rejected record")
	}
}

// TestLeaseExpiryRequeuesWithBackoff: a dead worker's lease expires, the
// cell is re-queued (after its backoff) and re-granted to another worker,
// and an error the dead worker pushes late — under the expired lease —
// does not consume a second attempt from the retry budget.
func TestLeaseExpiryRequeuesWithBackoff(t *testing.T) {
	// Speculation off: the re-grant below must come from lease expiry, not
	// from a straggler duplicate handed out while g1 was still live.
	c := newTestCoordinator(t, Options{
		LeaseTTL: 50 * time.Millisecond, MaxAttempts: 2, DisableSpeculation: true,
	})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	g1 := c.Lease("dead", 1)
	if g1 == nil {
		t.Fatal("no grant")
	}
	// No heartbeat: wait out TTL + backoff, then poll until re-granted.
	var g2 *LeaseGrant
	deadline := time.Now().Add(5 * time.Second)
	for g2 == nil {
		if time.Now().After(deadline) {
			t.Fatal("expired cell never re-granted")
		}
		time.Sleep(10 * time.Millisecond)
		g2 = c.Lease("live", 1)
	}
	if g2.LeaseID == g1.LeaseID {
		t.Fatal("same lease re-granted")
	}

	// The dead worker wakes up and reports failure under its old lease:
	// the reaper already charged that attempt, so this must not push the
	// cell to its MaxAttempts=2 terminal failure.
	resp := c.Complete(CompleteRequest{LeaseID: g1.LeaseID, Worker: "dead",
		Results: []CellResult{{Fingerprint: cell.Fingerprint, Error: "boom"}}})
	if resp.Accepted != 0 || resp.Ignored != 1 {
		t.Fatalf("late error = %+v, want ignored", resp)
	}

	resp = c.Complete(CompleteRequest{LeaseID: g2.LeaseID, Worker: "live",
		Results: []CellResult{resultFor(cell)}})
	if resp.Accepted != 1 {
		t.Fatalf("live complete = %+v", resp)
	}
	if out := mustWait(t, c, cell.Fingerprint); out.Err != "" {
		t.Fatalf("cell failed despite a successful retry: %q", out.Err)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	c := newTestCoordinator(t, Options{MaxAttempts: 2})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	for attempt := 1; ; attempt++ {
		var grant *LeaseGrant
		deadline := time.Now().Add(5 * time.Second)
		for grant == nil {
			if time.Now().After(deadline) {
				t.Fatalf("attempt %d never granted", attempt)
			}
			grant = c.Lease("w1", 1)
			if grant == nil {
				time.Sleep(2 * time.Millisecond) // backoff gate
			}
		}
		resp := c.Complete(CompleteRequest{LeaseID: grant.LeaseID, Worker: "w1",
			Results: []CellResult{{Fingerprint: cell.Fingerprint, Error: "synthetic failure"}}})
		if resp.Accepted != 1 {
			t.Fatalf("attempt %d: complete = %+v", attempt, resp)
		}
		if attempt == 2 {
			break
		}
	}
	out := mustWait(t, c, cell.Fingerprint)
	if out.Err == "" || !strings.Contains(out.Err, "after 2 attempts") ||
		!strings.Contains(out.Err, "synthetic failure") {
		t.Fatalf("terminal outcome = %+v", out)
	}
	if grant := c.Lease("w1", 1); grant != nil {
		t.Fatalf("terminally failed cell re-granted: %+v", grant)
	}
}

func TestFailedCellWaitsOutBackoffBeforeRedispatch(t *testing.T) {
	c := newTestCoordinator(t, Options{
		MaxAttempts: 5, BackoffBase: 80 * time.Millisecond, BackoffCap: time.Second,
		DisableSpeculation: true,
	})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	grant := c.Lease("w1", 1)
	if grant == nil {
		t.Fatal("no grant")
	}
	start := time.Now()
	c.Complete(CompleteRequest{LeaseID: grant.LeaseID, Worker: "w1",
		Results: []CellResult{{Fingerprint: cell.Fingerprint, Error: "transient"}}})
	if g := c.Lease("w1", 1); g != nil {
		t.Fatalf("cell re-granted %s after failure, inside its backoff window", time.Since(start))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := c.Lease("w1", 1); g != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cell never re-granted after backoff")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if waited := time.Since(start); waited < 80*time.Millisecond {
		t.Fatalf("re-granted after %s, before the 80ms backoff", waited)
	}
}

// TestStragglerSpeculation: with the queue drained, an idle worker gets a
// duplicate of a cell another worker still holds; whichever result lands
// first wins and the loser is ignored.
func TestStragglerSpeculation(t *testing.T) {
	c := newTestCoordinator(t, Options{LeaseTTL: 5 * time.Second})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	g1 := c.Lease("slow", 1)
	if g1 == nil {
		t.Fatal("no grant")
	}
	// The holder itself never gets a speculative duplicate of its own cell.
	if g := c.Lease("slow", 1); g != nil {
		t.Fatalf("holder speculated onto itself: %+v", g)
	}
	g2 := c.Lease("fast", 1)
	if g2 == nil || len(g2.Cells) != 1 || g2.Cells[0].Fingerprint != cell.Fingerprint {
		t.Fatalf("speculative grant = %+v", g2)
	}
	// With two live holders, a third worker gets nothing.
	if g := c.Lease("third", 1); g != nil {
		t.Fatalf("over-speculated: %+v", g)
	}

	resp := c.Complete(CompleteRequest{LeaseID: g2.LeaseID, Worker: "fast",
		Results: []CellResult{resultFor(cell)}})
	if resp.Accepted != 1 {
		t.Fatalf("winner = %+v", resp)
	}
	resp = c.Complete(CompleteRequest{LeaseID: g1.LeaseID, Worker: "slow",
		Results: []CellResult{resultFor(cell)}})
	if resp.Accepted != 0 || resp.Ignored != 1 {
		t.Fatalf("loser = %+v, want ignored", resp)
	}
	if out := mustWait(t, c, cell.Fingerprint); out.Err != "" {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestSpeculationDisabled(t *testing.T) {
	c := newTestCoordinator(t, Options{DisableSpeculation: true, LeaseTTL: 5 * time.Second})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	if g := c.Lease("slow", 1); g == nil {
		t.Fatal("no grant")
	}
	if g := c.Lease("fast", 1); g != nil {
		t.Fatalf("speculation disabled but granted: %+v", g)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	c := newTestCoordinator(t, Options{LeaseTTL: 60 * time.Millisecond, DisableSpeculation: true})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	grant := c.Lease("w1", 1)
	if grant == nil {
		t.Fatal("no grant")
	}
	// Renew across several TTL windows; the cell must never re-queue.
	for i := 0; i < 6; i++ {
		time.Sleep(20 * time.Millisecond)
		if !c.Heartbeat(grant.LeaseID) {
			t.Fatalf("heartbeat %d: lease lost despite renewal", i)
		}
		if g := c.Lease("w2", 1); g != nil {
			t.Fatalf("heartbeated lease's cell re-granted: %+v", g)
		}
	}
	// Stop heartbeating: the lease expires and heartbeats start failing.
	time.Sleep(200 * time.Millisecond)
	if c.Heartbeat(grant.LeaseID) {
		t.Fatal("heartbeat succeeded on an expired lease")
	}
}

func TestWaitUnblocksOnContextAndClose(t *testing.T) {
	c := New(Options{Base: config.Quick()})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Wait(ctx, cell.Fingerprint); err != context.DeadlineExceeded {
		t.Fatalf("Wait under cancelled ctx: %v", err)
	}
	if _, err := c.Wait(context.Background(), "no-such-cell"); err == nil {
		t.Fatal("Wait on unknown cell must error")
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Wait(context.Background(), cell.Fingerprint)
		errCh <- err
	}()
	c.Close()
	select {
	case err := <-errCh:
		if err != ErrClosed {
			t.Fatalf("Wait after Close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock waiter")
	}
}

func TestSubmitValidation(t *testing.T) {
	c := newTestCoordinator(t, Options{})
	if err := c.Submit(Cell{Workload: "stream", Scheme: "none"}); err == nil {
		t.Fatal("cell without fingerprint accepted")
	}
	bad := NewCell(config.Quick(), "stream", "none")
	bad.Workload = "no-such-workload"
	if err := c.Submit(bad); err == nil {
		t.Fatal("inexpressible cell accepted")
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCoordinator(t, Options{Registry: reg, DisableSpeculation: true})
	cell := testCell("none")
	if err := c.Submit(cell); err != nil {
		t.Fatal(err)
	}
	grant := c.Lease("w1", 1)
	if grant == nil {
		t.Fatal("no grant")
	}
	c.Complete(CompleteRequest{LeaseID: grant.LeaseID, Worker: "w1",
		Results: []CellResult{resultFor(cell)}})
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"cachecraft_cluster_cells_queued_total 1",
		"cachecraft_cluster_cells_leased_total 1",
		`cachecraft_cluster_cells_completed_total{worker="w1"} 1`,
		`cachecraft_cluster_worker_active_leases{worker="w1"} 0`,
		"cachecraft_cluster_pending_cells 0",
		"cachecraft_cluster_leased_cells 0",
		"cachecraft_sweep_cell_errors_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
