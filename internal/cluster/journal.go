package cluster

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal op codes: one per terminal cell outcome. A cell appears in the
// journal only once it can never change again, so replay is a pure merge
// — no undo records, no in-progress states to reconcile.
const (
	// JournalDone records a successfully completed cell with its
	// canonical record bytes.
	JournalDone = "done"
	// JournalFailed records a cell that exhausted its retry budget.
	JournalFailed = "failed"
	// JournalQuarantined records a poison cell pulled from circulation.
	JournalQuarantined = "quarantined"
)

// JournalEntry is one terminal cell outcome as persisted in the sweep
// journal. Done entries carry the record's canonical body bytes and
// checksum (exactly what the coordinator streams and what the store
// would hold), so replay restores a cell without re-encoding anything;
// failed and quarantined entries carry the error message verbatim, so a
// resumed sweep streams byte-identical error lines.
type JournalEntry struct {
	Op          string `json:"op"`
	Fingerprint string `json:"fingerprint"`
	Workload    string `json:"workload,omitempty"`
	Scheme      string `json:"scheme,omitempty"`
	// Sim fences replay: entries written by a different simulator
	// revision are skipped, mirroring the store's revision check.
	Sim  string          `json:"sim"`
	Sum  string          `json:"sum,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
	// Error is the terminal error message (failed/quarantined).
	Error string `json:"error,omitempty"`
	// History lists the failure events that led to quarantine, oldest
	// first, as "worker: cause" strings.
	History []string `json:"history,omitempty"`
}

// journalLine is the on-disk framing: one NDJSON line per entry, the
// entry body wrapped with its own SHA-256 — the store's envelope shape
// applied to a log. The checksum is what lets replay distinguish "torn
// tail from the crash we are recovering from" (expected, stop there)
// from "complete but corrupt line" (also just stop: everything after a
// bad line is suspect).
type journalLine struct {
	Sum  string          `json:"sum"`
	Body json.RawMessage `json:"body"`
}

// Journal is the coordinator's crash-recovery log: an append-only,
// checksummed NDJSON file of terminal cell outcomes, fsynced on every
// append. OpenJournal replays whatever a previous process left behind;
// Coordinator.New merges those entries so a restarted coordinator
// answers already-finished cells instantly instead of recomputing them.
//
// The journal is an optimization, never a source of truth the system
// cannot live without: losing an entry (crash between publish and
// append, a corrupt tail) only means the deterministic simulator runs
// that cell again. That asymmetry is why append errors degrade to a log
// line rather than failing the sweep.
type Journal struct {
	path string

	mu       sync.Mutex
	f        *os.File
	replayed []JournalEntry
	skipped  int
}

// OpenJournal opens (creating if absent) the journal at path, replays
// every intact entry already on disk, and positions the file for
// appends. Replay stops at the first corrupt or torn line — everything
// before it is trustworthy, everything after it is not — and reports
// the dropped remainder via Skipped.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: journal: %w", err)
	}
	j := &Journal{path: path, f: f}
	// Scan with a generous line cap: a done entry embeds a full record
	// body, but records are small (counters and floats, no traces).
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	lines := 0
	for sc.Scan() {
		lines++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var jl journalLine
		if err := json.Unmarshal(line, &jl); err != nil {
			break
		}
		h := sha256.Sum256(jl.Body)
		if hex.EncodeToString(h[:]) != jl.Sum {
			break
		}
		var e JournalEntry
		if err := json.Unmarshal(jl.Body, &e); err != nil {
			break
		}
		if e.Fingerprint == "" {
			break
		}
		j.replayed = append(j.replayed, e)
	}
	// Count the line that broke the loop plus everything after it.
	j.skipped = lines - len(j.replayed)
	for sc.Scan() {
		j.skipped++
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: journal %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("cluster: journal %s: %w", path, err)
	}
	return j, nil
}

// Replayed returns the entries recovered when the journal was opened,
// in append order. The slice is owned by the journal; callers must not
// mutate it.
func (j *Journal) Replayed() []JournalEntry { return j.replayed }

// Skipped reports how many trailing lines replay dropped as torn or
// corrupt.
func (j *Journal) Skipped() int { return j.skipped }

// Path reports the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append writes the entries as checksummed NDJSON lines and fsyncs
// once for the whole batch. When Append returns nil the entries will
// survive a crash; the coordinator calls it before publishing a success
// to waiting clients, which is what makes a restarted coordinator's
// output byte-identical. Nil-receiver safe: a coordinator without a
// journal appends into the void.
func (j *Journal) Append(entries ...JournalEntry) error {
	if j == nil || len(entries) == 0 {
		return nil
	}
	var buf bytes.Buffer
	for _, e := range entries {
		body, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("cluster: journal encode %s: %w", e.Fingerprint, err)
		}
		h := sha256.Sum256(body)
		line, err := json.Marshal(journalLine{Sum: hex.EncodeToString(h[:]), Body: body})
		if err != nil {
			return fmt.Errorf("cluster: journal encode %s: %w", e.Fingerprint, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("cluster: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("cluster: journal fsync: %w", err)
	}
	return nil
}

// Close closes the journal file. Append after Close fails.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
