package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"cachecraft/internal/config"
	"cachecraft/internal/obs"
	"cachecraft/internal/store"
	"cachecraft/internal/version"
)

// ErrClosed reports that the coordinator has shut down; waiting clients
// unblock with it instead of hanging on cells no one will run.
var ErrClosed = errors.New("cluster: coordinator closed")

// Options configures a Coordinator.
type Options struct {
	// Base is the default GPU configuration for sweep requests that do
	// not override it.
	Base config.GPU
	// Store is the durable result cache (optional). Cells already in the
	// store are answered without dispatching; completed cells are
	// persisted into it.
	Store *store.Store
	// Registry receives the coordinator's metrics (a fresh one is
	// created when nil). Pass the serving process's registry so cluster
	// counters appear on the same /metrics exposition.
	Registry *obs.Registry
	// LeaseTTL is how long a lease lives without a heartbeat
	// (default 15s). Expired leases re-queue their unfinished cells.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one cell may be dispatched
	// before it fails terminally (default 5). Lease expiry and reported
	// failures both consume attempts.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the capped exponential backoff a
	// re-queued cell waits before redispatch (defaults 250ms and 5s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// DisableSpeculation turns off straggler re-dispatch (on by
	// default): when the pending queue is empty, an idle worker may be
	// handed a copy of a cell another worker is still running — first
	// result wins, which fingerprints make safe.
	DisableSpeculation bool
	// Journal is the crash-recovery log (optional). Terminal cell
	// outcomes are appended and fsynced — successes before they are
	// published to waiting clients — and New merges whatever a previous
	// process journaled, so a restarted coordinator resumes a sweep
	// with zero recomputation of finished cells.
	Journal *Journal
	// QuarantineAfter is how many consecutive crash-like failures
	// (lease expiries, not worker-reported errors) across at least two
	// distinct workers mark a cell as poison and quarantine it
	// (default 3). Quarantine is terminal: the cell stops consuming
	// workers and reports a stable error instead of blocking the sweep.
	QuarantineAfter int
	// Logger reports persist failures and lease churn (nil = silent).
	Logger *slog.Logger
}

// cellState is one cell's lifecycle record: pending (queued, possibly
// backoff-gated by notBefore), leased (held by one or more leases — more
// than one only under straggler speculation), or done (result or terminal
// error published via doneCh). All fields are guarded by Coordinator.mu
// until doneCh closes, after which the outcome fields are immutable.
type cellState struct {
	cell        Cell
	attempts    int               // dispatch attempts consumed by failure/expiry
	notBefore   time.Time         // pending cells wait out their backoff here
	leases      map[string]string // lease id → worker currently holding the cell
	history     []failEvent       // every failed attempt, oldest first
	done        bool
	quarantined bool   // terminal via the poison-cell rule
	body        []byte // canonical record bytes (success)
	sum         string
	errMsg      string // terminal failure (attempts exhausted or quarantine)
	doneCh      chan struct{}
}

// failEvent is one failed dispatch in a cell's history. crashLike marks
// lease expiries — the worker vanished rather than reporting an error —
// which is the signature the poison-cell rule looks for: a cell that
// repeatedly kills whatever worker touches it.
type failEvent struct {
	worker    string
	crashLike bool
	line      string // "worker: cause", as shown in status and the journal
}

func (cs *cellState) historyLines() []string {
	if len(cs.history) == 0 {
		return nil
	}
	out := make([]string, len(cs.history))
	for i, ev := range cs.history {
		out[i] = ev.line
	}
	return out
}

// lease is one worker's claim on a batch of cells.
type lease struct {
	id       string
	worker   string
	cells    []string // fingerprints
	granted  time.Time
	deadline time.Time
}

// workerInfo is one worker's fleet-level history: when it was first and
// last heard from (any lease poll, heartbeat, or complete push counts as
// contact) and how many cells it delivered first. Guarded by
// Coordinator.mu. Workers are never forgotten — a dead worker stays in
// the status report marked not live, which is the interesting signal.
type workerInfo struct {
	firstSeen time.Time
	lastSeen  time.Time
	completed uint64
}

// Outcome is what a waiting client receives for one cell: the canonical
// record bytes, or a terminal error message. Quarantined marks error
// outcomes produced by the poison-cell rule rather than an exhausted
// retry budget.
type Outcome struct {
	Cell        Cell
	Body        []byte
	Sum         string
	Err         string
	Quarantined bool
}

// Coordinator owns the cluster's cell queue, leases, and results. Create
// with New; mount its HTTP surface with Register; Close on shutdown.
type Coordinator struct {
	opt Options
	m   *metrics

	start time.Time // coordinator birth, for status uptime

	mu       sync.Mutex
	cells    map[string]*cellState
	queue    []string // pending fingerprints in arrival order
	leases   map[string]*lease
	workers  map[string]*workerInfo // every worker ever heard from
	pendingJ []JournalEntry         // failure/quarantine entries awaiting append
	replayed uint64                 // cells restored from the journal at startup

	closed     chan struct{}
	closeOnce  sync.Once
	reaperDone chan struct{}
}

// New builds a coordinator and starts its lease reaper.
func New(opt Options) *Coordinator {
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 15 * time.Second
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 5
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 250 * time.Millisecond
	}
	if opt.BackoffCap <= 0 {
		opt.BackoffCap = 5 * time.Second
	}
	if opt.QuarantineAfter <= 0 {
		opt.QuarantineAfter = 3
	}
	if opt.Registry == nil {
		opt.Registry = obs.NewRegistry()
	}
	c := &Coordinator{
		opt:        opt,
		start:      time.Now(),
		cells:      make(map[string]*cellState),
		leases:     make(map[string]*lease),
		workers:    make(map[string]*workerInfo),
		closed:     make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	c.m = newMetrics(opt.Registry, c)
	c.replay()
	go c.reaper()
	return c
}

// replay merges journal entries from a previous coordinator process:
// each intact terminal outcome becomes a pre-completed cell, so a
// resumed sweep re-submitting the same grid joins finished cells
// instantly and only dispatches what the crash actually interrupted.
// Entries from a different simulator revision are fenced out (their
// fingerprints can no longer be asked for), and the first entry per
// fingerprint wins, mirroring the live first-result-wins rule.
func (c *Coordinator) replay() {
	if c.opt.Journal == nil {
		return
	}
	for _, e := range c.opt.Journal.Replayed() {
		if e.Sim != version.String() || e.Fingerprint == "" {
			continue
		}
		if _, ok := c.cells[e.Fingerprint]; ok {
			continue
		}
		cs := &cellState{
			cell:   Cell{Fingerprint: e.Fingerprint, Workload: e.Workload, Scheme: e.Scheme},
			done:   true,
			doneCh: make(chan struct{}),
		}
		switch e.Op {
		case JournalDone:
			if e.Sum == "" || len(e.Body) == 0 {
				continue
			}
			cs.body, cs.sum = e.Body, e.Sum
		case JournalFailed:
			cs.errMsg = e.Error
		case JournalQuarantined:
			cs.errMsg = e.Error
			cs.quarantined = true
			for _, line := range e.History {
				cs.history = append(cs.history, failEvent{line: line})
			}
		default:
			continue
		}
		close(cs.doneCh)
		c.cells[e.Fingerprint] = cs
		c.replayed++
		c.m.journalReplayed.Inc()
	}
	if skipped := c.opt.Journal.Skipped(); skipped > 0 {
		c.logf("journal %s: dropped %d torn or corrupt trailing lines (their cells will recompute)",
			c.opt.Journal.Path(), skipped)
	}
	if c.replayed > 0 {
		c.logf("journal %s: restored %d completed cells", c.opt.Journal.Path(), c.replayed)
	}
}

// flushJournal appends queued failure/quarantine entries outside the
// lock. Terminal failures are journaled after publication (unlike
// successes, which are journaled before): losing one to a crash only
// means the cell recomputes on resume, and the deterministic simulator
// makes the recomputed outcome equivalent.
func (c *Coordinator) flushJournal() {
	if c.opt.Journal == nil {
		return
	}
	c.mu.Lock()
	batch := c.pendingJ
	c.pendingJ = nil
	c.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if err := c.opt.Journal.Append(batch...); err != nil {
		c.logf("journal append: %v", err)
	}
}

// Close shuts the coordinator down: the reaper stops and every waiting
// client unblocks with ErrClosed. Cells and results already published
// remain readable, and any journal entries still queued are flushed so
// a clean shutdown loses nothing.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.closed) })
	<-c.reaperDone
	c.flushJournal()
}

// reaper expires leases even when no worker is polling (all workers
// dead), so waiting sweep clients still see their cells re-queued and —
// once the retry budget is gone — terminally failed rather than hanging.
// Lease, Heartbeat, and Complete also reap lazily, which is what drives
// expiry at sub-tick latency while traffic flows.
func (c *Coordinator) reaper() {
	defer close(c.reaperDone)
	interval := c.opt.LeaseTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-tick.C:
			c.mu.Lock()
			c.reapLocked(time.Now())
			c.mu.Unlock()
			c.flushJournal()
		}
	}
}

// Submit registers one cell with the cluster. Cells already known (from
// this or any concurrent sweep) are joined, cells the store already holds
// complete immediately, and everything else is queued for dispatch.
func (c *Coordinator) Submit(cell Cell) error {
	if cell.Fingerprint == "" {
		return fmt.Errorf("cluster: cell has no fingerprint")
	}
	if !Expressible(cell.Workload, cell.Scheme) {
		return fmt.Errorf("cluster: cell %s/%s is not expressible (unknown workload or scheme)",
			cell.Workload, cell.Scheme)
	}
	// Probe the store outside the lock (it reads the filesystem). A
	// record that lands between this probe and the queue insert just
	// means the cell runs once more — wasted work, not a wrong answer.
	var (
		body []byte
		sum  string
		hit  bool
	)
	if c.opt.Store != nil {
		body, sum, hit = c.opt.Store.GetRaw(cell.Fingerprint)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.cells[cell.Fingerprint]; ok {
		return nil
	}
	cs := &cellState{
		cell:   cell,
		leases: make(map[string]string),
		doneCh: make(chan struct{}),
	}
	c.cells[cell.Fingerprint] = cs
	if hit {
		cs.done, cs.body, cs.sum = true, body, sum
		close(cs.doneCh)
		c.m.storeSkips.Inc()
		return nil
	}
	c.queue = append(c.queue, cell.Fingerprint)
	c.m.queued.Inc()
	return nil
}

// Wait blocks until the given cell completes (first result wins), the
// caller's context ends, or the coordinator closes.
func (c *Coordinator) Wait(ctx context.Context, fp string) (Outcome, error) {
	c.mu.Lock()
	cs, ok := c.cells[fp]
	c.mu.Unlock()
	if !ok {
		return Outcome{}, fmt.Errorf("cluster: unknown cell %q", fp)
	}
	select {
	case <-cs.doneCh:
	case <-ctx.Done():
		return Outcome{}, ctx.Err()
	case <-c.closed:
		return Outcome{}, ErrClosed
	}
	// Outcome fields are immutable once doneCh is closed.
	return Outcome{Cell: cs.cell, Body: cs.body, Sum: cs.sum, Err: cs.errMsg, Quarantined: cs.quarantined}, nil
}

// Lease hands out up to max pending cells to the named worker, or — with
// the queue empty — speculatively re-dispatches cells other workers are
// still holding (straggler defense; first result wins). It returns nil
// when there is nothing to hand out.
func (c *Coordinator) Lease(worker string, max int) *LeaseGrant {
	grant := c.grantLease(worker, max)
	// Lazy reaping above may have terminally failed or quarantined
	// cells; make those outcomes durable before the next poll.
	c.flushJournal()
	return grant
}

func (c *Coordinator) grantLease(worker string, max int) *LeaseGrant {
	if max < 1 {
		max = 1
	}
	if max > 256 {
		max = 256
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	c.touchWorkerLocked(worker, now)

	var take []*cellState
	rest := c.queue[:0]
	for _, fp := range c.queue {
		cs := c.cells[fp]
		if cs == nil || cs.done || len(cs.leases) > 0 {
			continue // completed or re-claimed elsewhere; drop from queue
		}
		if len(take) < max && !cs.notBefore.After(now) {
			take = append(take, cs)
		} else {
			rest = append(rest, fp)
		}
	}
	c.queue = rest

	speculated := 0
	if len(take) == 0 && !c.opt.DisableSpeculation {
		for _, cs := range c.cells {
			if len(take) >= max {
				break
			}
			// Exactly one holder, and not this worker: hand out one
			// duplicate so a straggling or silently-dead worker cannot
			// stall the tail of the grid for a full lease TTL.
			if cs.done || len(cs.leases) != 1 {
				continue
			}
			if holderOf(cs) == worker {
				continue
			}
			take = append(take, cs)
			speculated++
		}
	}
	if len(take) == 0 {
		return nil
	}

	l := &lease{
		id:       obs.NewID(),
		worker:   worker,
		granted:  now,
		deadline: now.Add(c.opt.LeaseTTL),
	}
	grant := &LeaseGrant{LeaseID: l.id, TTLMs: c.opt.LeaseTTL.Milliseconds()}
	for _, cs := range take {
		l.cells = append(l.cells, cs.cell.Fingerprint)
		cs.leases[l.id] = worker
		grant.Cells = append(grant.Cells, cs.cell)
	}
	c.leases[l.id] = l
	c.m.leased.Add(uint64(len(take)))
	if speculated > 0 {
		c.m.redispatched.Add(uint64(speculated))
	}
	c.m.workerLeases.With(worker).Add(1)
	return grant
}

func holderOf(cs *cellState) string {
	for _, w := range cs.leases {
		return w
	}
	return ""
}

// Heartbeat renews a lease's deadline. It reports false for a lease that
// has already expired or been released — the worker should stop
// heartbeating and simply finish its cells (results are still accepted).
func (c *Coordinator) Heartbeat(leaseID string) bool {
	ok := c.renewLease(leaseID)
	c.flushJournal()
	return ok
}

func (c *Coordinator) renewLease(leaseID string) bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return false
	}
	l.deadline = now.Add(c.opt.LeaseTTL)
	c.touchWorkerLocked(l.worker, now)
	return true
}

// Complete applies a worker's pushed results. Successful records are
// accepted for any known, unfinished cell regardless of lease state
// (first result wins — a worker whose lease expired still did correct
// work); failures only count against leases that still hold the cell, so
// an expiry the reaper already charged cannot double-bill the retry
// budget.
//
// Write-ahead ordering: with a journal configured, successful records
// are validated under the lock, journaled and fsynced outside it, and
// only then published to waiting clients — a coordinator that crashes
// after a client saw a result is guaranteed to replay that exact result
// on restart, which is what makes a resumed sweep's stdout
// byte-identical.
func (c *Coordinator) Complete(req CompleteRequest) CompleteResponse {
	now := time.Now()
	type candidate struct {
		cs   *cellState
		rec  store.Record
		body []byte
		sum  string
	}
	var (
		resp  CompleteResponse
		puts  []store.Record
		cands []candidate
	)
	c.mu.Lock()
	c.reapLocked(now)
	c.touchWorkerLocked(req.Worker, now)
	for _, res := range req.Results {
		switch {
		case res.Record != nil:
			rec := *res.Record
			cs := c.cells[rec.Fingerprint]
			if cs == nil || cs.done || rec.Sim != version.String() ||
				rec.Workload != cs.cell.Workload || rec.Scheme != cs.cell.Scheme {
				resp.Ignored++
				continue
			}
			body, sum, err := store.EncodeRecord(rec)
			if err != nil {
				resp.Ignored++
				continue
			}
			cands = append(cands, candidate{cs: cs, rec: rec, body: body, sum: sum})
		case res.Fingerprint != "":
			cs := c.cells[res.Fingerprint]
			if cs == nil || cs.done {
				resp.Ignored++
				continue
			}
			if _, held := cs.leases[req.LeaseID]; !held {
				resp.Ignored++ // lease expired; the reaper already charged this attempt
				continue
			}
			c.failAttemptLocked(cs, req.LeaseID, req.Worker, res.Error, false, now)
			resp.Accepted++
		default:
			resp.Ignored++
		}
	}
	c.mu.Unlock()

	// WAL: fsync successes into the journal before publishing them.
	if c.opt.Journal != nil && len(cands) > 0 {
		entries := make([]JournalEntry, 0, len(cands))
		for _, cand := range cands {
			entries = append(entries, JournalEntry{
				Op:          JournalDone,
				Fingerprint: cand.rec.Fingerprint,
				Workload:    cand.rec.Workload,
				Scheme:      cand.rec.Scheme,
				Sim:         cand.rec.Sim,
				Sum:         cand.sum,
				Body:        cand.body,
			})
		}
		if err := c.opt.Journal.Append(entries...); err != nil {
			// Degrade rather than refuse the results: a lost journal
			// entry costs a recompute after a crash, never a wrong
			// answer, while rejecting finished work costs it now.
			c.logf("journal append: %v", err)
		}
	}

	c.mu.Lock()
	// The lease may have been reaped while the journal synced; re-fetch
	// so release bookkeeping cannot double-count.
	l := c.leases[req.LeaseID]
	for _, cand := range cands {
		if cand.cs.done {
			resp.Ignored++ // lost the first-result race during the fsync
			continue
		}
		c.finishLocked(cand.cs, cand.body, cand.sum, "", req.Worker)
		if l != nil {
			c.m.leaseSeconds.Observe(now.Sub(l.granted).Seconds())
		}
		if c.opt.Store != nil {
			puts = append(puts, cand.rec)
		}
		resp.Accepted++
	}
	if l != nil {
		c.maybeReleaseLocked(l)
	}
	c.mu.Unlock()
	c.flushJournal()
	// Persist outside the lock: Put does disk I/O, and a full disk must
	// not stall the control plane — a failed persist only costs a future
	// re-run.
	for _, rec := range puts {
		if err := c.opt.Store.Put(rec); err != nil {
			c.logf("persist %s: %v", rec.Fingerprint, err)
		}
	}
	return resp
}

// finishLocked publishes a cell's terminal outcome (result or error).
// Error outcomes are queued for the journal here (drained by
// flushJournal once the lock is released); success outcomes were
// already journaled by Complete before this call.
func (c *Coordinator) finishLocked(cs *cellState, body []byte, sum, errMsg, worker string) {
	cs.done = true
	cs.body, cs.sum, cs.errMsg = body, sum, errMsg
	cs.leases = nil
	switch {
	case errMsg == "":
		label := worker
		if label == "" {
			label = "unknown"
		}
		c.m.completed.With(label).Inc()
		if worker != "" {
			c.touchWorkerLocked(worker, time.Now()).completed++
		}
	case cs.quarantined:
		c.m.quarantined.Inc()
	default:
		c.m.failed.Inc()
	}
	if errMsg != "" && c.opt.Journal != nil {
		e := JournalEntry{
			Op:          JournalFailed,
			Fingerprint: cs.cell.Fingerprint,
			Workload:    cs.cell.Workload,
			Scheme:      cs.cell.Scheme,
			Sim:         version.String(),
			Error:       errMsg,
		}
		if cs.quarantined {
			e.Op = JournalQuarantined
			e.History = cs.historyLines()
		}
		c.pendingJ = append(c.pendingJ, e)
	}
	close(cs.doneCh)
}

// touchWorkerLocked records contact from a worker, creating its history
// record on first sight. A no-op for the empty name.
func (c *Coordinator) touchWorkerLocked(name string, now time.Time) *workerInfo {
	if name == "" {
		return &workerInfo{firstSeen: now, lastSeen: now}
	}
	wi := c.workers[name]
	if wi == nil {
		wi = &workerInfo{firstSeen: now}
		c.workers[name] = wi
	}
	wi.lastSeen = now
	return wi
}

// ReportWorker records contact from the named worker and mirrors its
// metrics snapshot — obs.Registry.Snapshot flattened to name → value —
// into the coordinator's registry as per-worker-labelled gauge families:
// a worker-side cachecraft_sim_runs_total re-exports here as
// cachecraft_worker_sim_runs_total{worker="name"}. Gauges are Set, not
// added, so repeated snapshots are idempotent and the coordinator's
// /metrics always shows each worker's latest values. Snapshot entries
// that carry label strings (they contain '{') or are not legal
// Prometheus identifiers are skipped. A nil snapshot reports liveness
// only.
func (c *Coordinator) ReportWorker(name string, snap map[string]uint64) {
	if name == "" {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.touchWorkerLocked(name, now)
	c.mu.Unlock()
	for metric, v := range snap {
		fam := "cachecraft_worker_" + strings.TrimPrefix(metric, "cachecraft_")
		if !validMetricName(fam) {
			continue
		}
		// GaugeVec re-registration dedupes by name, so this is a cheap
		// map lookup after the first snapshot.
		c.opt.Registry.GaugeVec(fam,
			"Worker-reported metric, re-exported per worker by the coordinator.",
			"worker").With(name).Set(int64(v))
	}
}

// validMetricName reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Status assembles the point-in-time cluster picture behind
// GET /v1/cluster/status: cell counts by lifecycle state, live lease
// count, and one row per worker ever heard from, sorted by name. A
// worker is live while its last contact is within three lease TTLs —
// past one TTL its leases are already being reaped, and past three it is
// presumed gone rather than merely slow.
func (c *Coordinator) Status() StatusResponse {
	resp := c.status()
	c.flushJournal()
	return resp
}

func (c *Coordinator) status() StatusResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)

	resp := StatusResponse{
		UptimeMs:             now.Sub(c.start).Milliseconds(),
		JournalReplayedCells: c.replayed,
		Workers:              []WorkerStatus{},
		Quarantined:          []QuarantinedCell{},
	}
	for _, cs := range c.cells {
		switch {
		case cs.done && cs.errMsg == "":
			resp.DoneCells++
		case cs.done && cs.quarantined:
			resp.QuarantinedCells++
			resp.Quarantined = append(resp.Quarantined, QuarantinedCell{
				Fingerprint: cs.cell.Fingerprint,
				Workload:    cs.cell.Workload,
				Scheme:      cs.cell.Scheme,
				Error:       cs.errMsg,
				History:     cs.historyLines(),
			})
		case cs.done:
			resp.FailedCells++
		case len(cs.leases) > 0:
			resp.LeasedCells++
		default:
			resp.PendingCells++
		}
	}
	sort.Slice(resp.Quarantined, func(i, j int) bool {
		a, b := resp.Quarantined[i], resp.Quarantined[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		return a.Fingerprint < b.Fingerprint
	})
	resp.ActiveLeases = len(c.leases)

	type leaseAgg struct {
		count  int
		oldest time.Time
	}
	byWorker := make(map[string]leaseAgg, len(c.leases))
	for _, l := range c.leases {
		agg := byWorker[l.worker]
		agg.count++
		if agg.oldest.IsZero() || l.granted.Before(agg.oldest) {
			agg.oldest = l.granted
		}
		byWorker[l.worker] = agg
	}

	liveWithin := 3 * c.opt.LeaseTTL
	for name, wi := range c.workers {
		ws := WorkerStatus{
			Name:           name,
			Live:           now.Sub(wi.lastSeen) <= liveWithin,
			LastSeenMs:     now.Sub(wi.lastSeen).Milliseconds(),
			CellsCompleted: wi.completed,
		}
		if agg, ok := byWorker[name]; ok {
			ws.ActiveLeases = agg.count
			ws.OldestLeaseMs = now.Sub(agg.oldest).Milliseconds()
		}
		if alive := now.Sub(wi.firstSeen).Seconds(); alive > 0 && wi.completed > 0 {
			ws.CellsPerSec = float64(wi.completed) / alive
		}
		resp.Workers = append(resp.Workers, ws)
	}
	sort.Slice(resp.Workers, func(i, j int) bool {
		return resp.Workers[i].Name < resp.Workers[j].Name
	})
	return resp
}

// failAttemptLocked charges one failed dispatch (worker-reported error or
// lease expiry) against a cell and decides its future: keep waiting on a
// surviving speculative holder, quarantine a suspected poison cell,
// re-queue with backoff, or fail terminally once the budget is gone.
// crashLike marks lease expiries — the worker vanished instead of
// reporting an error — which is the only failure shape the quarantine
// rule counts.
func (c *Coordinator) failAttemptLocked(cs *cellState, leaseID, worker, cause string, crashLike bool, now time.Time) {
	delete(cs.leases, leaseID)
	cs.attempts++
	if cause == "" {
		cause = "unspecified worker failure"
	}
	if worker == "" {
		worker = "unknown"
	}
	cs.history = append(cs.history, failEvent{
		worker:    worker,
		crashLike: crashLike,
		line:      worker + ": " + cause,
	})
	if len(cs.leases) > 0 {
		return // a speculative duplicate is still running; let it race
	}
	if streak, workers := c.poisonStreakLocked(cs); streak >= c.opt.QuarantineAfter && workers >= 2 {
		cs.quarantined = true
		c.logf("cell %s quarantined after %d crash-like failures across %d workers",
			cs.cell.Fingerprint, streak, workers)
		c.finishLocked(cs, nil, "",
			fmt.Sprintf("cluster: cell quarantined after %d consecutive crash-like failures (suspected poison cell)", streak), "")
		return
	}
	if cs.attempts >= c.opt.MaxAttempts {
		c.finishLocked(cs, nil, "",
			fmt.Sprintf("cluster: cell failed after %d attempts: %s", cs.attempts, cause), "")
		return
	}
	cs.notBefore = now.Add(c.backoff(cs.attempts))
	c.queue = append(c.queue, cs.cell.Fingerprint)
	c.m.retried.Inc()
}

// poisonStreakLocked measures the cell's trailing run of crash-like
// failures: its length and how many distinct workers it spans. A streak
// that long across two or more workers is the poison-cell signature —
// the cell, not any particular worker or host, is what keeps dying. The
// two-worker floor keeps one flapping host from condemning a healthy
// cell; on a single-worker fleet the retry budget (MaxAttempts) remains
// the backstop.
func (c *Coordinator) poisonStreakLocked(cs *cellState) (streak, workers int) {
	seen := make(map[string]bool)
	for i := len(cs.history) - 1; i >= 0; i-- {
		ev := cs.history[i]
		if !ev.crashLike {
			break
		}
		streak++
		seen[ev.worker] = true
	}
	return streak, len(seen)
}

// backoff is capped exponential: base, 2·base, 4·base, ... up to cap.
func (c *Coordinator) backoff(attempts int) time.Duration {
	d := c.opt.BackoffBase
	for i := 1; i < attempts && d < c.opt.BackoffCap; i++ {
		d *= 2
	}
	if d > c.opt.BackoffCap {
		d = c.opt.BackoffCap
	}
	return d
}

// maybeReleaseLocked retires a lease whose every cell is finished or
// re-assigned, so the worker-lease gauge tracks live claims, not history.
func (c *Coordinator) maybeReleaseLocked(l *lease) {
	for _, fp := range l.cells {
		cs := c.cells[fp]
		if cs == nil || cs.done {
			continue
		}
		if _, held := cs.leases[l.id]; held {
			return // still holding live work
		}
	}
	delete(c.leases, l.id)
	c.m.workerLeases.With(l.worker).Add(-1)
}

// reapLocked expires overdue leases: each unfinished cell they held is
// charged one attempt and re-queued (or terminally failed).
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if !l.deadline.Before(now) {
			continue
		}
		c.m.expired.Inc()
		c.logf("lease %s (worker %s) expired; re-queueing its cells", id, l.worker)
		for _, fp := range l.cells {
			cs := c.cells[fp]
			if cs == nil || cs.done {
				continue
			}
			if _, held := cs.leases[id]; held {
				c.failAttemptLocked(cs, id, l.worker, "lease expired (worker lost or stalled)", true, now)
			}
		}
		delete(c.leases, id)
		c.m.workerLeases.With(l.worker).Add(-1)
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logger != nil {
		c.opt.Logger.Info("cluster: " + fmt.Sprintf(format, args...))
	}
}

// countCells is the gauge sampler: pending (unleased, not done) and
// leased (held by at least one live lease) cell counts.
func (c *Coordinator) countCells() (pending, leased int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cs := range c.cells {
		switch {
		case cs.done:
		case len(cs.leases) > 0:
			leased++
		default:
			pending++
		}
	}
	return pending, leased
}

// countWorkers reports distinct workers holding live leases and the total
// live lease count.
func (c *Coordinator) countWorkers() (workers, leases int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[string]bool, len(c.leases))
	for _, l := range c.leases {
		seen[l.worker] = true
	}
	return len(seen), len(c.leases)
}

// countKnown reports workers ever heard from and the subset seen within
// the liveness horizon (3× lease TTL) — the samplers behind the
// known/live worker gauges.
func (c *Coordinator) countKnown() (known, live int) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	horizon := 3 * c.opt.LeaseTTL
	for _, wi := range c.workers {
		known++
		if now.Sub(wi.lastSeen) <= horizon {
			live++
		}
	}
	return known, live
}
