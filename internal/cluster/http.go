package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"cachecraft/internal/schemes"
	"cachecraft/internal/trace"
	"cachecraft/internal/version"
)

// Register mounts the cluster's HTTP surface on mux. The routes are
// control-plane traffic (cheap queue operations, or streams that spend
// their life waiting), so they deliberately bypass the serving layer's
// simulation limiter — a saturated simulation tier must not stop workers
// from returning finished results.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/cluster/sweep", c.handleSweep)
	mux.HandleFunc("POST /v1/cluster/lease", c.handleLease)
	mux.HandleFunc("POST /v1/cluster/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /v1/cluster/status", c.handleStatus)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// streamError is the NDJSON line for a terminally failed cell — the same
// wire shape internal/serve emits on /v1/sweep.
type streamError struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Error    string `json:"error"`
}

// streamTrailer is the completion trailer, identical to /v1/sweep's: its
// presence is the completeness signal, its absence marks a truncated
// stream. Quarantined (a subset of Errors) counts cells the poison-cell
// rule condemned; it is omitted when zero so local and cluster trailers
// stay byte-compatible on healthy sweeps.
type streamTrailer struct {
	Done        bool `json:"done"`
	Cells       int  `json:"cells"`
	Errors      int  `json:"errors"`
	Quarantined int  `json:"quarantined,omitempty"`
}

// handleSweep expands a grid into cells, submits them to the cluster, and
// streams each cell's canonical record (or terminal error line) as it
// completes, ending with a {"done":true} trailer. The NDJSON format is
// byte-compatible with POST /v1/sweep — clients need not care whether a
// grid ran locally or across a fleet.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Workloads) == 0 {
		req.Workloads = trace.Names()
	}
	if len(req.Schemes) == 0 {
		req.Schemes = schemes.All()
	}
	cfg := c.opt.Base
	if req.Config != nil {
		cfg = *req.Config
	}
	var cells []Cell
	for _, wl := range req.Workloads {
		for _, sc := range req.Schemes {
			if !Expressible(wl, sc) {
				httpError(w, http.StatusBadRequest, "unknown workload or scheme %q/%q", wl, sc)
				return
			}
			cells = append(cells, NewCell(cfg, wl, sc))
		}
	}
	for _, cell := range cells {
		if err := c.Submit(cell); err != nil {
			httpError(w, http.StatusBadRequest, "submit: %v", err)
			return
		}
	}

	ctx := r.Context()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	// Commit the 200 and flush before any cell completes: clients block on
	// response headers, and a grid whose first result is minutes away must
	// not look like a dead coordinator.
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}

	// One waiter per cell; each cell yields exactly one line because the
	// coordinator publishes exactly one outcome per fingerprint.
	outcomes := make(chan Outcome)
	var wg sync.WaitGroup
	for _, cell := range cells {
		wg.Add(1)
		go func(fp string) {
			defer wg.Done()
			out, err := c.Wait(ctx, fp)
			if err != nil {
				return // client gone or coordinator closed; nothing to stream
			}
			select {
			case outcomes <- out:
			case <-ctx.Done():
			}
		}(cell.Fingerprint)
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	streamed, failed, quarantined := 0, 0, 0
	for out := range outcomes {
		if ctx.Err() != nil {
			break
		}
		streamed++
		var line []byte
		if out.Err != "" {
			failed++
			if out.Quarantined {
				quarantined++
			}
			c.m.streamErrors.Inc()
			line, _ = json.Marshal(streamError{Workload: out.Cell.Workload, Scheme: out.Cell.Scheme, Error: out.Err})
		} else {
			line = out.Body
		}
		w.Write(line)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}
	if ctx.Err() == nil && streamed == len(cells) {
		line, _ := json.Marshal(streamTrailer{Done: true, Cells: streamed, Errors: failed, Quarantined: quarantined})
		w.Write(line)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleLease answers a worker's poll: 200 with a batch of cells, 204
// (plus a Retry-After hint) when there is nothing to do, or 409 when the
// worker runs a different simulator revision — a mixed-revision fleet
// would compute records under fingerprints no current client asks for.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "lease request names no worker")
		return
	}
	if req.Sim != "" && req.Sim != version.String() {
		httpError(w, http.StatusConflict, "simulator revision mismatch: coordinator %s, worker %s",
			version.String(), req.Sim)
		return
	}
	// Polls double as liveness and telemetry reports, so an idle worker
	// (every poll answered 204) still shows up live on /v1/cluster/status
	// with fresh cachecraft_worker_* families on /metrics.
	c.ReportWorker(req.Worker, req.Metrics)
	grant := c.Lease(req.Worker, req.Max)
	if grant == nil {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(grant)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp := c.Complete(req)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Report before resolving the lease: a worker whose lease just
	// expired is still alive, and its metrics are still current.
	c.ReportWorker(req.Worker, req.Metrics)
	if !c.Heartbeat(req.LeaseID) {
		httpError(w, http.StatusGone, "lease %q expired or unknown", req.LeaseID)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStatus answers GET /v1/cluster/status with a point-in-time
// picture of queue depth and fleet health — the JSON twin of the
// cachecraft_cluster_* metric families, shaped for humans and scripts
// rather than scrapers.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(c.Status())
}

// retryAfterSeconds parses a Retry-After header as integer seconds
// (the only form this system emits); 0 means absent or unparseable.
func retryAfterSeconds(h http.Header) int {
	n, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}
