package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errBusy reports that the service is saturated: every in-flight slot is
// taken and the wait queue is full. Handlers translate it to HTTP 429.
var errBusy = errors.New("serve: saturated")

// limiter bounds the number of simulation-bearing requests executing at
// once, with a bounded wait queue behind the in-flight slots. Requests
// beyond slots+queue are rejected immediately (errBusy) rather than
// piling up, which keeps latency under overload predictable.
type limiter struct {
	slots    chan struct{}
	waiting  atomic.Int64
	maxQueue int64
}

func newLimiter(inflight, queue int) *limiter {
	if inflight < 1 {
		inflight = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &limiter{slots: make(chan struct{}, inflight), maxQueue: int64(queue)}
}

// acquire takes an in-flight slot, waiting in the queue if necessary.
// It returns errBusy when the queue is full and ctx.Err() when the caller
// gives up while queued.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	if l.waiting.Add(1) > l.maxQueue {
		l.waiting.Add(-1)
		return errBusy
	}
	defer l.waiting.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) release() { <-l.slots }

// inflight reports how many slots are currently held.
func (l *limiter) inflight() int { return len(l.slots) }

// queued reports how many requests are waiting for a slot.
func (l *limiter) queued() int { return int(l.waiting.Load()) }
