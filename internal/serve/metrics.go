package serve

import (
	"net/http"
	"strconv"

	"cachecraft/internal/bench"
	"cachecraft/internal/obs"
)

// metrics is the server's instrument set, all owned by one obs.Registry.
// Values the runner and limiter already account for are exposed through
// sampling collectors, so /metrics (and any registry snapshot) can never
// drift from their source of truth; HTTP-layer events are counted here
// directly.
type metrics struct {
	reg *obs.Registry

	requests    *obs.CounterVec   // by endpoint, code
	latency     *obs.HistogramVec // by endpoint
	rejected    *obs.Counter
	notMod      *obs.Counter
	resultHits  *obs.Counter
	sweepErrors *obs.Counter
}

func newMetrics(reg *obs.Registry, r *bench.Runner, lim *limiter) *metrics {
	m := &metrics{reg: reg}
	m.requests = reg.CounterVec("cachecraft_http_requests_total",
		"HTTP requests served, by endpoint and status code.", "endpoint", "code")
	m.latency = reg.HistogramVec("cachecraft_http_request_seconds",
		"HTTP request latency in seconds, by endpoint.", obs.DefBuckets, "endpoint")
	m.rejected = reg.Counter("cachecraft_http_rejected_total",
		"Requests shed with 429 because every in-flight slot and queue position was taken.")
	m.notMod = reg.Counter("cachecraft_http_not_modified_total",
		"Conditional requests answered 304 against the record-checksum ETag.")
	m.resultHits = reg.Counter("cachecraft_http_result_hits_total",
		"HTTP responses served directly from stored record bytes (warm POST /v1/simulate and GET /v1/results).")
	m.sweepErrors = reg.Counter("cachecraft_sweep_cell_errors_total",
		"Sweep cells that failed mid-stream and were reported as NDJSON error lines.")

	// Runner accounting registers through the shared helper, so this
	// process and cachecraft-worker's -debug-addr listener expose
	// identical family names.
	bench.RegisterRunnerMetrics(reg, r)
	reg.GaugeFunc("cachecraft_inflight_sims",
		"Simulation-bearing requests currently holding an in-flight slot.",
		func() float64 { return float64(lim.inflight()) })
	reg.GaugeFunc("cachecraft_queue_depth",
		"Requests currently waiting for an in-flight slot.",
		func() float64 { return float64(lim.queued()) })
	return m
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.requests.With(endpoint, strconv.Itoa(code)).Inc()
	m.latency.With(endpoint).Observe(seconds)
}

// endpointOf maps a request to its metric label; unknown paths collapse
// into "other" so arbitrary URLs cannot mint unbounded label values.
func endpointOf(r *http.Request) string {
	switch {
	case r.URL.Path == "/v1/simulate":
		return "simulate"
	case r.URL.Path == "/v1/sweep":
		return "sweep"
	case len(r.URL.Path) > len("/v1/results/") && r.URL.Path[:len("/v1/results/")] == "/v1/results/":
		return "results"
	case r.URL.Path == "/v1/cluster/sweep":
		return "cluster-sweep"
	case r.URL.Path == "/v1/cluster/lease":
		return "cluster-lease"
	case r.URL.Path == "/v1/cluster/complete":
		return "cluster-complete"
	case r.URL.Path == "/v1/cluster/heartbeat":
		return "cluster-heartbeat"
	case r.URL.Path == "/v1/cluster/status":
		return "cluster-status"
	case r.URL.Path == "/healthz":
		return "healthz"
	case r.URL.Path == "/metrics":
		return "metrics"
	default:
		return "other"
	}
}

// statusWriter captures the response status and byte count while
// preserving the Flusher behaviour the NDJSON sweep stream depends on.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
