package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cachecraft/internal/obs"
	"cachecraft/internal/store"
)

func getMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}

// validateExposition checks the Prometheus text format contract: every
// sample belongs to a family announced by # HELP and # TYPE lines, each
// series appears exactly once, and histogram families render buckets with
// a terminal +Inf plus _sum and _count. It returns the series keys in
// output order and the set of family types.
func validateExposition(t *testing.T, text string) ([]string, map[string]string) {
	t.Helper()
	help := map[string]bool{}
	typed := map[string]string{}
	seen := map[string]bool{}
	var order []string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			help[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[f[0]] = f[1]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		key := line[:sp]
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suf); trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
			}
		}
		if !help[base] || typed[base] == "" {
			t.Fatalf("sample %q lacks HELP/TYPE for %q", line, base)
		}
		if seen[key] {
			t.Fatalf("duplicate series %q", key)
		}
		seen[key] = true
		order = append(order, key)
	}
	return order, typed
}

// TestMetricsExpositionIsValidPrometheus exercises several endpoints and
// then requires /metrics to be a well-formed exposition containing the
// full catalog, including at least one histogram, with stable series
// ordering across fetches.
func TestMetricsExpositionIsValidPrometheus(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, st, 4, 4)

	resp := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stream","scheme":"none"}`, nil)
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stream","scheme":"none"}`, nil)
	resp.Body.Close()
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	// Warm the metrics endpoint itself: its first scrape mints the
	// endpoint="metrics" series after responding, so the series set only
	// stabilizes from the second scrape on.
	getMetrics(t, ts.URL)

	text := getMetrics(t, ts.URL)
	order, typed := validateExposition(t, text)
	if len(order) == 0 {
		t.Fatal("empty exposition")
	}
	wantFamilies := map[string]string{
		"cachecraft_sim_runs_total":            "counter",
		"cachecraft_memo_hits_total":           "counter",
		"cachecraft_singleflight_dedups_total": "counter",
		"cachecraft_store_hits_total":          "counter",
		"cachecraft_store_misses_total":        "counter",
		"cachecraft_store_put_errors_total":    "counter",
		"cachecraft_http_requests_total":       "counter",
		"cachecraft_http_rejected_total":       "counter",
		"cachecraft_http_not_modified_total":   "counter",
		"cachecraft_http_result_hits_total":    "counter",
		"cachecraft_http_request_seconds":      "histogram",
		"cachecraft_inflight_sims":             "gauge",
		"cachecraft_queue_depth":               "gauge",
	}
	for name, kind := range wantFamilies {
		if typed[name] != kind {
			t.Fatalf("family %s has type %q, want %q\n%s", name, typed[name], kind, text)
		}
	}
	if !strings.Contains(text, `cachecraft_http_request_seconds_bucket{endpoint="simulate",le="+Inf"}`) {
		t.Fatalf("no +Inf bucket for the simulate endpoint:\n%s", text)
	}

	// Series ordering is deterministic: a second fetch must list the same
	// series in the same order (values may differ — /metrics counts itself).
	order2, _ := validateExposition(t, getMetrics(t, ts.URL))
	if strings.Join(order, "\n") != strings.Join(order2, "\n") {
		t.Fatalf("series order unstable:\n%v\nvs\n%v", order, order2)
	}
}

// TestStoreHitSplitFromHTTPResultHits: serving stored bytes over HTTP must
// not inflate the runner's store-hit counter, and vice versa.
func TestStoreHitSplitFromHTTPResultHits(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, st, 4, 4)

	// Cold simulate: one runner store miss, zero HTTP result hits.
	resp := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stream","scheme":"none"}`, nil)
	resp.Body.Close()
	// Two warm repeats + one GET by fingerprint: three HTTP result hits,
	// still zero runner store hits (the runner is never consulted).
	for i := 0; i < 2; i++ {
		resp = postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stream","scheme":"none"}`, nil)
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var rec store.Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatalf("bad warm body: %v", err)
		}
	}
	fp := store.Fingerprint(quickBase(), "stream", "none")
	gr, err := http.Get(ts.URL + "/v1/results/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()

	text := getMetrics(t, ts.URL)
	for _, want := range []string{
		"cachecraft_store_hits_total 0\n",
		"cachecraft_store_misses_total 1\n",
		"cachecraft_http_result_hits_total 3\n",
		"cachecraft_sim_runs_total 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, nil, 2, 2)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id generated")
	}

	// A client-supplied ID is echoed back, so callers can correlate.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "client-chosen-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-chosen-42" {
		t.Fatalf("echoed id = %q, want client-chosen-42", got)
	}
}

// TestAccessLogAndRequestSpans: with a Logger and Tracer configured, each
// request emits one structured log line (with the request ID and status)
// and one http.request span.
func TestAccessLogAndRequestSpans(t *testing.T) {
	var logBuf, spanBuf bytes.Buffer
	srv := New(Options{
		Base:        quickBase(),
		MaxInFlight: 2,
		MaxQueue:    2,
		Logger:      slog.New(slog.NewJSONHandler(&logBuf, nil)),
		Tracer:      obs.NewTracer(obs.NewNDJSONExporter(&spanBuf)),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatalf("access log is not one JSON line: %v\n%s", err, logBuf.String())
	}
	if entry["id"] != "trace-me" || entry["status"] != float64(200) ||
		entry["endpoint"] != "healthz" || entry["method"] != http.MethodGet {
		t.Fatalf("access log entry = %v", entry)
	}

	var span obs.SpanData
	if err := json.Unmarshal(spanBuf.Bytes(), &span); err != nil {
		t.Fatalf("span export: %v\n%s", err, spanBuf.String())
	}
	if span.Name != "http.request" || span.Attrs["request_id"] != "trace-me" ||
		span.Attrs["status"] != float64(200) {
		t.Fatalf("request span = %+v", span)
	}
}
