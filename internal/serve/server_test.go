package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"cachecraft/internal/config"
	"cachecraft/internal/store"
)

func quickBase() config.GPU {
	cfg := config.Quick()
	cfg.AccessesPerSM = 300
	return cfg
}

func newTestServer(t *testing.T, st *store.Store, maxInFlight, maxQueue int) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Options{Base: quickBase(), Store: st, MaxInFlight: maxInFlight, MaxQueue: maxQueue})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSimulateETagAnd304 is the end-to-end warm path: a first POST
// simulates and returns a record with an ETag; a repeat POST with
// If-None-Match answers 304 from the store; GET /v1/results serves the
// same record by fingerprint.
func TestSimulateETagAnd304(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, st, 4, 4)
	body := `{"workload":"stream","scheme":"none"}`

	resp := postJSON(t, ts.URL+"/v1/simulate", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold simulate: status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on simulate response")
	}
	var rec store.Record
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("bad record body: %v\n%s", err, raw)
	}
	wantFP := store.Fingerprint(quickBase(), "stream", "none")
	if rec.Fingerprint != wantFP {
		t.Fatalf("fingerprint = %s, want %s", rec.Fingerprint, wantFP)
	}
	if rec.Result.Cycles == 0 || rec.Result.IPC == 0 {
		t.Fatalf("empty result in record: %+v", rec.Result)
	}

	// Conditional repeat: 304, no body, same ETag; served from the store.
	resp = postJSON(t, ts.URL+"/v1/simulate", body, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional simulate: status %d, want 304", resp.StatusCode)
	}
	if b, _ := io.ReadAll(resp.Body); len(b) != 0 {
		t.Fatalf("304 carried a body: %q", b)
	}
	resp.Body.Close()

	// Unconditional repeat: identical bytes (stored encoding is canonical).
	resp = postJSON(t, ts.URL+"/v1/simulate", body, nil)
	raw2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(raw, raw2) {
		t.Fatalf("warm body differs from cold (status %d)", resp.StatusCode)
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatalf("ETag drifted: %s vs %s", resp.Header.Get("ETag"), etag)
	}

	// Content-addressed GET, plus its 304 path.
	resp, err = http.Get(ts.URL + "/v1/results/" + wantFP)
	if err != nil {
		t.Fatal(err)
	}
	raw3, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(raw, raw3) {
		t.Fatalf("GET /v1/results differs (status %d)", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/results/"+wantFP, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: status %d, want 304", resp.StatusCode)
	}

	// The whole warm sequence must have run exactly one simulation.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "cachecraft_sim_runs_total 1\n") {
		t.Fatalf("metrics report more than one simulation:\n%s", metrics)
	}
}

func TestSimulateValidation(t *testing.T) {
	_, ts := newTestServer(t, nil, 2, 2)
	for _, body := range []string{
		`{"workload":"nope","scheme":"none"}`,
		`{"workload":"stream","scheme":"nope"}`,
		`not json`,
	} {
		resp := postJSON(t, ts.URL+"/v1/simulate", body, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", `{"workloads":["nope"]}`, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("sweep with unknown workload: status %d, want 400", resp.StatusCode)
	}
}

func TestResultsUnknownFingerprint(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, st, 2, 2)
	resp, err := http.Get(ts.URL + "/v1/results/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestBackpressure429: with one in-flight slot held and no queue,
// simulation-bearing requests are rejected immediately with 429.
func TestBackpressure429(t *testing.T) {
	srv, ts := newTestServer(t, nil, 1, -1) // one slot, no queue
	if err := srv.lim.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.lim.release()

	resp := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stream","scheme":"none"}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	// Cluster workers parse this header as integer seconds to pace their
	// retry backoff, so "present" is not enough: it must be a positive
	// integer on every simulation-bearing endpoint.
	for _, r := range []*http.Response{resp,
		postJSON(t, ts.URL+"/v1/sweep", `{"workloads":["stream"],"schemes":["none"]}`, nil)} {
		if r != resp {
			r.Body.Close()
			if r.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("sweep under saturation: status %d, want 429", r.StatusCode)
			}
		}
		secs, err := strconv.Atoi(r.Header.Get("Retry-After"))
		if err != nil || secs < 1 {
			t.Fatalf("429 Retry-After %q: want positive integer seconds (err %v)",
				r.Header.Get("Retry-After"), err)
		}
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("429 body not an error document: %v %v", e, err)
	}

	// Health and metrics must stay reachable while saturated.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", hr.StatusCode)
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(metrics), "cachecraft_http_rejected_total 2\n") {
		t.Fatalf("rejection not counted:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "cachecraft_inflight_sims 1\n") {
		t.Fatalf("held slot not visible:\n%s", metrics)
	}
}

// TestSweepStreamsNDJSON: a sweep streams one NDJSON record per cell,
// every cell of the grid appears exactly once, and the stream ends with a
// completion trailer carrying the cell and error counts.
func TestSweepStreamsNDJSON(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, st, 4, 4)
	resp := postJSON(t, ts.URL+"/v1/sweep", `{"workloads":["stream","scan"],"schemes":["none","ecc-cache"]}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	seen := map[string]bool{}
	var trailer *sweepTrailer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if trailer != nil {
			t.Fatalf("line after trailer: %s", sc.Text())
		}
		var tr sweepTrailer
		if err := json.Unmarshal(sc.Bytes(), &tr); err == nil && tr.Done {
			trailer = &tr
			continue
		}
		var rec store.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Text())
		}
		key := rec.Workload + "/" + rec.Scheme
		if seen[key] {
			t.Fatalf("duplicate cell %s", key)
		}
		seen[key] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("cells = %v, want 4", seen)
	}
	if trailer == nil {
		t.Fatal("stream ended without a completion trailer")
	}
	if trailer.Cells != 4 || trailer.Errors != 0 {
		t.Fatalf("trailer = %+v, want 4 cells, 0 errors", *trailer)
	}
}

// TestSweepErrorLinesAndTrailer: cells that fail mid-sweep surface as
// NDJSON error lines (the stream keeps going), the completion trailer
// reports the failure count, and the failures land on the
// cachecraft_sweep_cell_errors_total metric.
func TestSweepErrorLinesAndTrailer(t *testing.T) {
	base := quickBase()
	base.MaxCycles = 1 // every simulation fails to converge
	srv := New(Options{Base: base, MaxInFlight: 4, MaxQueue: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/sweep", `{"workloads":["stream","scan"],"schemes":["none"]}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	errLines := 0
	var trailer *sweepTrailer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if trailer != nil {
			t.Fatalf("line after trailer: %s", sc.Text())
		}
		var tr sweepTrailer
		if err := json.Unmarshal(sc.Bytes(), &tr); err == nil && tr.Done {
			trailer = &tr
			continue
		}
		var se sweepError
		if err := json.Unmarshal(sc.Bytes(), &se); err != nil || se.Error == "" {
			t.Fatalf("expected error line, got: %s", sc.Text())
		}
		if !strings.Contains(se.Error, "converge") {
			t.Fatalf("error line does not carry the cause: %q", se.Error)
		}
		errLines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if errLines != 2 {
		t.Fatalf("error lines = %d, want 2", errLines)
	}
	if trailer == nil {
		t.Fatal("stream ended without a completion trailer")
	}
	if trailer.Cells != 2 || trailer.Errors != 2 {
		t.Fatalf("trailer = %+v, want 2 cells, 2 errors", *trailer)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(metrics), "cachecraft_sweep_cell_errors_total 2\n") {
		t.Fatalf("sweep cell errors not counted:\n%s", metrics)
	}
}

// TestSweepClientCancellationMidStream: a client that disconnects after
// the first record must not wedge the server — the handler unwinds, the
// limiter slot frees, and the next request succeeds.
func TestSweepClientCancellationMidStream(t *testing.T) {
	srv, ts := newTestServer(t, nil, 1, -1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep",
		strings.NewReader(`{"workloads":["stream","scan","bfs","histogram"],"schemes":["none"]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("first streamed record: %v", err)
	}
	cancel() // hang up mid-stream
	resp.Body.Close()

	// The single in-flight slot must come back; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for srv.lim.inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("limiter slot never freed after client cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp2 := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stream","scheme":"none"}`, nil)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("request after cancellation: status %d", resp2.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil, 2, 2)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok ") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}
