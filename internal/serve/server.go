// Package serve exposes the simulation harness as a long-running HTTP
// service: a content-addressed result cache (internal/store) fronting the
// memoizing, singleflighted bench.Runner. Repeat traffic for a simulation
// that has already run — in this process or any earlier one sharing the
// store directory — is answered without simulating, and conditional
// requests (If-None-Match against the record's checksum ETag) transfer no
// body at all.
//
// Endpoints:
//
//	POST /v1/simulate          one (workload, scheme) cell → record JSON
//	POST /v1/sweep             grid → NDJSON records streamed as cells finish
//	GET  /v1/results/{fp}      stored record by fingerprint (ETag/304)
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus text exposition (obs.Registry)
//
// Every request gets an X-Request-Id (generated, or echoed from the
// client's header), a per-endpoint latency observation, and — with a
// Logger configured — one structured access-log line. All counters live in
// an obs.Registry; see docs/OBSERVABILITY.md for the metric catalog.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/chaos"
	"cachecraft/internal/cluster"
	"cachecraft/internal/config"
	"cachecraft/internal/obs"
	"cachecraft/internal/schemes"
	"cachecraft/internal/store"
	"cachecraft/internal/trace"
	"cachecraft/internal/version"
)

// Options configures a Server.
type Options struct {
	// Base is the GPU configuration every request simulates against.
	Base config.GPU
	// Runner executes and memoizes simulations. If nil, a fresh runner is
	// built from Base; if Store is set it is wired beneath the runner.
	Runner *bench.Runner
	// Store is the durable result cache (optional). When present it also
	// backs GET /v1/results and lets warm requests skip the limiter.
	Store *store.Store
	// MaxInFlight bounds simulation-bearing requests executing at once
	// (default runtime.NumCPU()); MaxQueue bounds how many more may wait
	// (0 = default 2×MaxInFlight, negative = no queue). Beyond both,
	// requests get 429.
	MaxInFlight int
	MaxQueue    int
	// Registry receives the server's metrics (a fresh one is created when
	// nil). Sharing a registry lets the embedding process add its own
	// instruments to the same /metrics exposition.
	Registry *obs.Registry
	// Logger emits one structured access-log line per request (nil =
	// access logging off).
	Logger *slog.Logger
	// Tracer wraps each request in a span (nil = tracing off). The span's
	// context propagates into the runner, so traced requests show their
	// cell phases as children.
	Tracer *obs.Tracer
	// Coordinator, when set, mounts the cluster control plane
	// (/v1/cluster/sweep, /lease, /complete, /heartbeat) alongside the
	// simulation endpoints, turning this server into a sweep
	// coordinator. Pass the same Registry to both so cluster metrics
	// share this server's /metrics exposition. Cluster routes bypass
	// the in-flight limiter: they queue and collect work rather than
	// simulate, and a saturated simulation tier must never stop workers
	// from returning finished results.
	Coordinator *cluster.Coordinator
	// Chaos, when set, injects faults at the serve.request site before a
	// request reaches the mux: an error fault becomes a 503, a crash
	// fault aborts the connection mid-response (http.ErrAbortHandler),
	// and latency faults simply delay — the shapes a flaky front-end
	// actually produces. Rules can target one endpoint via Match (the
	// injection key is the request path). Nil means zero overhead.
	Chaos *chaos.Injector
}

// Server is the HTTP layer. Create with New, mount via Handler.
type Server struct {
	base   config.GPU
	runner *bench.Runner
	st     *store.Store
	lim    *limiter
	mux    *http.ServeMux
	m      *metrics
	log    *slog.Logger
	tracer *obs.Tracer
	inj    *chaos.Injector
}

// New builds a server. The runner's worker pool (bench.Runner.SetWorkers)
// bounds concurrent simulations; Options.MaxInFlight bounds concurrent
// requests, which is the backpressure surface clients see.
func New(opt Options) *Server {
	if opt.MaxInFlight <= 0 {
		opt.MaxInFlight = runtime.NumCPU()
	}
	switch {
	case opt.MaxQueue < 0:
		opt.MaxQueue = 0
	case opt.MaxQueue == 0:
		opt.MaxQueue = 2 * opt.MaxInFlight
	}
	r := opt.Runner
	if r == nil {
		r = bench.NewRunner(opt.Base)
	}
	if opt.Store != nil {
		r.SetStore(opt.Store)
	}
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		base:   opt.Base,
		runner: r,
		st:     opt.Store,
		lim:    newLimiter(opt.MaxInFlight, opt.MaxQueue),
		mux:    http.NewServeMux(),
		log:    opt.Logger,
		tracer: opt.Tracer,
		inj:    opt.Chaos,
	}
	s.m = newMetrics(reg, r, s.lim)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/results/{fingerprint}", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opt.Coordinator != nil {
		opt.Coordinator.Register(s.mux)
	}
	return s
}

// Registry exposes the server's metrics registry, e.g. for a drain-time
// snapshot that is guaranteed to agree with what /metrics last served.
func (s *Server) Registry() *obs.Registry { return s.m.reg }

// Handler returns the service's HTTP handler: the observability middleware
// (request ID, per-endpoint metrics, optional access log and span) wrapped
// around the route mux.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewID()
		}
		w.Header().Set("X-Request-Id", id)
		ep := endpointOf(r)
		ctx, span := s.tracer.Start(r.Context(), "http.request",
			obs.String("endpoint", ep),
			obs.String("method", r.Method),
			obs.String("request_id", id))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if d := s.inj.Fault(chaos.SiteServeRequest, r.URL.Path); d.Crash {
			// Abort the connection mid-request — the client sees EOF,
			// exactly as if the server process died under it.
			panic(http.ErrAbortHandler)
		} else if d.Err != nil {
			d.Sleep()
			http.Error(sw, "injected fault: "+d.Err.Error(), http.StatusServiceUnavailable)
		} else {
			d.Sleep()
			s.mux.ServeHTTP(sw, r.WithContext(ctx))
		}
		dur := time.Since(start)
		span.SetAttr(obs.Int("status", sw.code))
		span.End()
		s.m.observe(ep, sw.code, dur.Seconds())
		if s.log != nil {
			s.log.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("endpoint", ep),
				slog.Int("status", sw.code),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("dur", dur))
		}
	})
}

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
}

// SweepRequest is the body of POST /v1/sweep. Empty lists default to the
// full set of workloads / schemes.
type SweepRequest struct {
	Workloads []string `json:"workloads"`
	Schemes   []string `json:"schemes"`
}

// sweepError is the NDJSON line emitted for a cell that failed.
type sweepError struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Error    string `json:"error"`
}

// sweepTrailer is the final NDJSON line of a sweep stream that ran to
// completion. Its presence is the client's completeness signal: a stream
// that ends without a trailer was truncated (client cancellation, server
// death), whereas a trailer with a non-zero error count says the grid was
// fully attempted but some cells failed. Done is always true — the field
// exists so clients can cheaply distinguish the trailer from cell lines.
type sweepTrailer struct {
	Done   bool `json:"done"`
	Cells  int  `json:"cells"`
	Errors int  `json:"errors"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func validName(name string, all []string) bool {
	for _, n := range all {
		if n == name {
			return true
		}
	}
	return false
}

func etagFor(sum string) string { return `"` + sum + `"` }

// etagMatches implements If-None-Match against a strong ETag (weak
// comparison: a W/ prefix on the client's tag is ignored).
func etagMatches(r *http.Request, etag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, f := range strings.Split(inm, ",") {
		f = strings.TrimPrefix(strings.TrimSpace(f), "W/")
		if f == "*" || f == etag {
			return true
		}
	}
	return false
}

// writeRecord sends a record body with its ETag, honouring If-None-Match.
func (s *Server) writeRecord(w http.ResponseWriter, r *http.Request, body []byte, sum string) {
	etag := etagFor(sum)
	w.Header().Set("ETag", etag)
	if etagMatches(r, etag) {
		s.m.notMod.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	w.Write([]byte("\n"))
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if !validName(req.Workload, trace.Names()) {
		httpError(w, http.StatusBadRequest, "unknown workload %q", req.Workload)
		return
	}
	if !validName(req.Scheme, schemes.All()) {
		httpError(w, http.StatusBadRequest, "unknown scheme %q", req.Scheme)
		return
	}
	fp := store.Fingerprint(s.base, req.Workload, req.Scheme)

	// Warm path: stored bytes answer the request (possibly with a 304)
	// without touching the limiter or the runner.
	if s.st != nil {
		if body, sum, ok := s.st.GetRaw(fp); ok {
			s.m.resultHits.Inc()
			s.writeRecord(w, r, body, sum)
			return
		}
	}

	if err := s.lim.acquire(r.Context()); err != nil {
		s.reject(w, err)
		return
	}
	res, err := s.runner.ResultCtx(r.Context(), bench.Spec{CfgID: "base", Workload: req.Workload, Variant: req.Scheme})
	s.lim.release()
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing useful to write
		}
		httpError(w, http.StatusInternalServerError, "simulate: %v", err)
		return
	}
	// Prefer the persisted bytes (identical content, and proves the store
	// round-trip); fall back to encoding in-process.
	if s.st != nil {
		if body, sum, ok := s.st.GetRaw(fp); ok {
			s.writeRecord(w, r, body, sum)
			return
		}
	}
	body, sum, err := store.EncodeRecord(store.Record{
		Fingerprint: fp,
		Sim:         version.String(),
		Workload:    req.Workload,
		Scheme:      req.Scheme,
		Result:      res,
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	s.writeRecord(w, r, body, sum)
}

func (s *Server) reject(w http.ResponseWriter, err error) {
	if errors.Is(err, errBusy) {
		s.m.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "saturated: %d in flight, %d queued", s.lim.inflight(), s.lim.queued())
	}
	// Context cancellation: the client is gone, write nothing.
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Workloads) == 0 {
		req.Workloads = trace.Names()
	}
	if len(req.Schemes) == 0 {
		req.Schemes = schemes.All()
	}
	for _, wl := range req.Workloads {
		if !validName(wl, trace.Names()) {
			httpError(w, http.StatusBadRequest, "unknown workload %q", wl)
			return
		}
	}
	for _, sc := range req.Schemes {
		if !validName(sc, schemes.All()) {
			httpError(w, http.StatusBadRequest, "unknown scheme %q", sc)
			return
		}
	}
	if err := s.lim.acquire(r.Context()); err != nil {
		s.reject(w, err)
		return
	}
	defer s.lim.release()

	ctx := r.Context()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	// Fan the grid out through the runner (which bounds simulation
	// concurrency and dedups against concurrent requests) and stream each
	// cell's record the moment it completes. Producers never block on a
	// departed consumer: every send selects against ctx.
	type sweepLine struct {
		line   []byte
		failed bool
	}
	lines := make(chan sweepLine)
	var wg sync.WaitGroup
	for _, wl := range req.Workloads {
		for _, sc := range req.Schemes {
			wg.Add(1)
			go func(wl, sc string) {
				defer wg.Done()
				out := sweepLine{}
				res, err := s.runner.ResultCtx(ctx, bench.Spec{CfgID: "base", Workload: wl, Variant: sc})
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					out.line, _ = json.Marshal(sweepError{Workload: wl, Scheme: sc, Error: err.Error()})
					out.failed = true
				} else {
					out.line, _, err = store.EncodeRecord(store.Record{
						Fingerprint: store.Fingerprint(s.base, wl, sc),
						Sim:         version.String(),
						Workload:    wl,
						Scheme:      sc,
						Result:      res,
					})
					if err != nil {
						out.line, _ = json.Marshal(sweepError{Workload: wl, Scheme: sc, Error: err.Error()})
						out.failed = true
					}
				}
				select {
				case lines <- out:
				case <-ctx.Done():
				}
			}(wl, sc)
		}
	}
	go func() {
		wg.Wait()
		close(lines)
	}()
	cells, failed := 0, 0
	for out := range lines {
		if ctx.Err() != nil {
			break // client cancelled mid-stream; producers drain via ctx
		}
		cells++
		if out.failed {
			failed++
			s.m.sweepErrors.Inc()
		}
		w.Write(out.line)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Terminal trailer: only a stream the client consumed to the end gets
	// one, so its absence marks truncation and its error count reports
	// mid-stream failures that HTTP status (long since sent) cannot.
	if ctx.Err() == nil {
		line, _ := json.Marshal(sweepTrailer{Done: true, Cells: cells, Errors: failed})
		w.Write(line)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		httpError(w, http.StatusNotFound, "no store configured")
		return
	}
	fp := r.PathValue("fingerprint")
	body, sum, ok := s.st.GetRaw(fp)
	if !ok {
		httpError(w, http.StatusNotFound, "no result for fingerprint %q", fp)
		return
	}
	s.m.resultHits.Inc()
	s.writeRecord(w, r, body, sum)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok %s\n", version.String())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.reg.WritePrometheus(w)
}
