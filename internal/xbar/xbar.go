// Package xbar models the SM↔L2 interconnect as a crossbar with
// per-source injection ports, per-destination ejection ports, and a
// shared bisection-bandwidth limit. Contention therefore appears where it
// does on real GPUs: a single hot L2 bank saturates its ejection port
// long before the fabric itself saturates, and one SM cannot monopolize
// the fabric from its single injection port.
//
// All ports use byte-granular bandwidth accounting (sim.ThrottledPort),
// so small control messages share cycles instead of each burning one.
package xbar

import (
	"fmt"

	"cachecraft/internal/obs"
	"cachecraft/internal/sim"
)

// Config sizes the crossbar.
type Config struct {
	// Sources and Destinations count the endpoints (SMs and L2 banks for
	// the request network; swapped for the response network).
	Sources      int
	Destinations int
	// PortBytesPerCycle is each endpoint port's bandwidth.
	PortBytesPerCycle int
	// BisectionBytesPerCycle caps total traffic through the fabric; 0
	// means no shared limit beyond the ports.
	BisectionBytesPerCycle int
	// Latency is the fabric traversal time added to every message.
	Latency sim.Cycle
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sources <= 0 || c.Destinations <= 0 {
		return fmt.Errorf("xbar: need positive endpoint counts, got %d×%d", c.Sources, c.Destinations)
	}
	if c.PortBytesPerCycle <= 0 {
		return fmt.Errorf("xbar: port bandwidth must be positive")
	}
	if c.BisectionBytesPerCycle < 0 {
		return fmt.Errorf("xbar: negative bisection bandwidth")
	}
	return nil
}

// Crossbar is one direction of the interconnect (requests or responses).
// Ports live in contiguous value slices: Transfer touches two of them per
// message, so keeping them out of individual heap objects avoids a pointer
// chase on every hop.
type Crossbar struct {
	cfg       Config
	inject    []sim.ThrottledPort
	eject     []sim.ThrottledPort
	bisection *sim.ThrottledPort
	hook      func(at, deliver sim.Cycle, src, dst, bytes int)
	prBytes   *obs.Series
}

// SetHook installs an observer called once per Transfer with the injection
// cycle, the computed delivery cycle, and the endpoints. It exists for the
// invariant-audit layer; a nil hook (the default) costs one branch per
// transfer.
func (x *Crossbar) SetHook(fn func(at, deliver sim.Cycle, src, dst, bytes int)) {
	x.hook = fn
}

// SetProbe attaches a time-resolved byte-traffic series (Sum mode:
// bytes injected per sampling window). Link utilization is the window
// sum divided by window × bisection bandwidth. This is a separate slot
// from SetHook, which the audit layer owns, so -audit and probes
// compose. Nil (the default) costs one branch per transfer.
func (x *Crossbar) SetProbe(s *obs.Series) { x.prBytes = s }

// Latency reports the configured fabric traversal latency.
func (x *Crossbar) Latency() sim.Cycle { return x.cfg.Latency }

// New builds a crossbar. It panics on an invalid configuration (static
// setup, not runtime input).
func New(name string, cfg Config) *Crossbar {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	x := &Crossbar{
		cfg:    cfg,
		inject: make([]sim.ThrottledPort, cfg.Sources),
		eject:  make([]sim.ThrottledPort, cfg.Destinations),
	}
	for i := range x.inject {
		x.inject[i] = sim.MakeThrottledPort(fmt.Sprintf("%s-in%d", name, i), cfg.PortBytesPerCycle, 0)
	}
	for i := range x.eject {
		x.eject[i] = sim.MakeThrottledPort(fmt.Sprintf("%s-out%d", name, i), cfg.PortBytesPerCycle, 0)
	}
	if cfg.BisectionBytesPerCycle > 0 {
		x.bisection = sim.NewThrottledPort(name+"-bisect", cfg.BisectionBytesPerCycle, 0)
	}
	return x
}

// Transfer moves a message of size bytes from src to dst starting at
// cycle at, and returns its delivery cycle. The model is virtual
// cut-through: injection port, fabric bisection, and ejection port are
// charged in parallel and delivery is bounded by the most contended of
// the three, plus the fabric latency.
func (x *Crossbar) Transfer(at sim.Cycle, src, dst, bytes int) sim.Cycle {
	if src < 0 || src >= x.cfg.Sources || dst < 0 || dst >= x.cfg.Destinations {
		panic(fmt.Sprintf("xbar: endpoint out of range (%d,%d)", src, dst))
	}
	t := x.inject[src].Transfer(at, bytes)
	if x.bisection != nil {
		if tb := x.bisection.Transfer(at, bytes); tb > t {
			t = tb
		}
	}
	if te := x.eject[dst].Transfer(at, bytes); te > t {
		t = te
	}
	deliver := t + x.cfg.Latency
	if x.hook != nil {
		x.hook(at, deliver, src, dst, bytes)
	}
	if x.prBytes != nil {
		x.prBytes.Add(uint64(at), float64(bytes))
	}
	return deliver
}

// InjectUtilization reports a source port's utilization over elapsed
// cycles.
func (x *Crossbar) InjectUtilization(src int, elapsed sim.Cycle) float64 {
	return x.inject[src].Utilization(elapsed)
}

// EjectUtilization reports a destination port's utilization.
func (x *Crossbar) EjectUtilization(dst int, elapsed sim.Cycle) float64 {
	return x.eject[dst].Utilization(elapsed)
}

// TotalBytes reports all bytes moved through the fabric.
func (x *Crossbar) TotalBytes() uint64 {
	var total uint64
	for i := range x.inject {
		total += x.inject[i].BusyBytes()
	}
	return total
}
