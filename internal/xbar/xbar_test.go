package xbar

import (
	"testing"

	"cachecraft/internal/sim"
)

func testConfig() Config {
	return Config{
		Sources:                4,
		Destinations:           8,
		PortBytesPerCycle:      32,
		BisectionBytesPerCycle: 128,
		Latency:                10,
	}
}

func TestValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.Sources = 0
	if bad.Validate() == nil {
		t.Fatal("zero sources accepted")
	}
	bad = testConfig()
	bad.PortBytesPerCycle = 0
	if bad.Validate() == nil {
		t.Fatal("zero port bandwidth accepted")
	}
	bad = testConfig()
	bad.BisectionBytesPerCycle = -1
	if bad.Validate() == nil {
		t.Fatal("negative bisection accepted")
	}
}

func TestSingleTransferLatency(t *testing.T) {
	x := New("t", testConfig())
	// 32B at 32B/cy: 1 cycle inject + 1 bisect... bisection continues from
	// the same byte-time, so the message finishes its last hop at cycle 1
	// and delivers at 1+latency.
	got := x.Transfer(0, 0, 0, 32)
	if got != 11 {
		t.Fatalf("delivery at %d, want 11", got)
	}
}

func TestHotDestinationSerializes(t *testing.T) {
	cfg := testConfig()
	cfg.BisectionBytesPerCycle = 0 // isolate the ejection port
	x := New("t", cfg)
	// All four sources target destination 0 with 32B: the ejection port
	// (32 B/cy) serializes them one per cycle.
	var last sim.Cycle
	for s := 0; s < 4; s++ {
		d := x.Transfer(0, s, 0, 32)
		if d <= last {
			t.Fatalf("source %d delivered at %d, not after %d", s, d, last)
		}
		last = d
	}
	if last != sim.Cycle(4)+cfg.Latency {
		t.Fatalf("last delivery %d, want %d", last, 4+int(cfg.Latency))
	}
}

func TestSpreadDestinationsRunParallel(t *testing.T) {
	cfg := testConfig()
	cfg.BisectionBytesPerCycle = 0
	x := New("t", cfg)
	// Different sources to different destinations: all deliver at the
	// single-message time.
	for s := 0; s < 4; s++ {
		if d := x.Transfer(0, s, s, 32); d != 1+cfg.Latency {
			t.Fatalf("source %d delivered at %d", s, d)
		}
	}
}

func TestBisectionCapsAggregate(t *testing.T) {
	cfg := testConfig()
	cfg.PortBytesPerCycle = 1 << 20 // ports effectively infinite
	cfg.BisectionBytesPerCycle = 64
	cfg.Latency = 0
	x := New("t", cfg)
	// 8 messages × 64B through a 64 B/cy fabric = 8 cycles of fabric time.
	var last sim.Cycle
	for i := 0; i < 8; i++ {
		last = x.Transfer(0, i%4, i%8, 64)
	}
	if last != 8 {
		t.Fatalf("last delivery %d, want 8 (bisection-bound)", last)
	}
}

func TestSingleSourceCannotExceedItsPort(t *testing.T) {
	cfg := testConfig()
	cfg.BisectionBytesPerCycle = 1 << 20
	x := New("t", cfg)
	var last sim.Cycle
	for i := 0; i < 4; i++ {
		last = x.Transfer(0, 0, i*2, 32) // distinct destinations
	}
	// 4×32B from one 32B/cy injection port = 4 cycles + latency.
	if last != sim.Cycle(4)+cfg.Latency {
		t.Fatalf("last = %d, want %d", last, 4+int(cfg.Latency))
	}
}

func TestUtilizationAndTotals(t *testing.T) {
	x := New("t", testConfig())
	x.Transfer(0, 1, 2, 64)
	if x.TotalBytes() != 64 {
		t.Fatalf("total = %d", x.TotalBytes())
	}
	if u := x.InjectUtilization(1, 4); u != 0.5 {
		t.Fatalf("inject util = %v", u)
	}
	if u := x.EjectUtilization(2, 4); u != 0.5 {
		t.Fatalf("eject util = %v", u)
	}
	if u := x.InjectUtilization(0, 4); u != 0 {
		t.Fatalf("idle port util = %v", u)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	x := New("t", testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range endpoint must panic")
		}
	}()
	x.Transfer(0, 99, 0, 32)
}
