package audit_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	cachecraft "cachecraft"
	"cachecraft/internal/audit"
	"cachecraft/internal/bench"
	"cachecraft/internal/config"
	"cachecraft/internal/mem"
	"cachecraft/internal/schemes"
	"cachecraft/internal/sim"
	"cachecraft/internal/trace"
)

// wantRule asserts the checker recorded at least one violation of rule.
func wantRule(t *testing.T, c *audit.Checker, rule string) {
	t.Helper()
	for _, v := range c.Violations() {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("no %q violation recorded; have %v", rule, c.Violations())
}

// wantClean asserts the checker recorded nothing.
func wantClean(t *testing.T, c *audit.Checker) {
	t.Helper()
	if err := c.Err(); err != nil {
		t.Fatalf("unexpected violations: %v", err)
	}
}

func TestAuditNilCheckerIsSafe(t *testing.T) {
	var c *audit.Checker
	c.SetMSHRCapacity(4)
	c.EngineStep(1)
	if tok := c.ReadIssued(0, 0, 0x100, 1); tok != 0 {
		t.Fatalf("nil checker minted token %d", tok)
	}
	c.Delivered(1, 0, 1)
	c.StoreIssued(0, 0, 0x100, 1)
	c.ReadMissIssued(0, 0x100, 1, mem.Demand)
	c.ReadMissDone(1, 0)
	c.WritebackIssued(1, 0x100, 1)
	c.DrainIssued(1)
	c.MSHRAlloc(0, 0, 0x100, 1)
	c.MSHRFetch(0, 0, 0x100, 1)
	c.MSHRFill(0, 0, 0x100, 1)
	c.MSHRRelease(0, 0, 0x100)
	c.Submitted(0, mem.Request{Bytes: 32}, 0, 0, 3)
	c.Serviced(1, mem.Request{Bytes: 32}, 0, 0, 3, -1, 0)
	c.Refreshed(2, 0)
	c.XbarTransfer("req", 0, 1, 32, 1)
	c.CacheViolation(1, nil)
	c.BankDrained(2, 0, 0, 0)
	c.FinishSim(2, 0, 0)
	c.FinishXbar(2, "req", 0)
	if c.Err() != nil || c.Total() != 0 || c.Violations() != nil || c.ReadSectors(mem.Demand) != 0 {
		t.Fatal("nil checker reported state")
	}
}

func TestAuditTickMonotonic(t *testing.T) {
	c := audit.NewChecker()
	c.EngineStep(5)
	c.EngineStep(5) // same cycle is legal
	wantClean(t, c)
	c.EngineStep(3)
	wantRule(t, c, "tick-monotonic")
}

func TestAuditTokenLifecycle(t *testing.T) {
	c := audit.NewChecker()
	tok := c.ReadIssued(10, 2, 0x400, 0b1010)
	c.Delivered(12, tok, 0b0010)
	wantClean(t, c)
	c.Delivered(13, tok, 0b0100) // sector was never requested
	wantRule(t, c, "token-mask")

	c = audit.NewChecker()
	c.Delivered(1, 99, 1)
	wantRule(t, c, "token-unknown")

	// A token delivered twice must fail the second time: full delivery
	// retires it.
	c = audit.NewChecker()
	tok = c.StoreIssued(0, 0, 0x80, 0b1)
	c.Delivered(4, tok, 0b1)
	wantClean(t, c)
	c.Delivered(5, tok, 0b1)
	wantRule(t, c, "token-unknown")

	// Delivery before issue is time travel.
	c = audit.NewChecker()
	tok = c.ReadIssued(10, 0, 0x80, 0b1)
	c.Delivered(7, tok, 0b1)
	wantRule(t, c, "token-time")

	// Undelivered tokens surface as leaks at end of simulation.
	c = audit.NewChecker()
	c.ReadIssued(0, 1, 0x200, 0b11)
	c.FinishSim(100, 0, 0)
	wantRule(t, c, "token-leak")
}

func TestAuditSchemeCallPairing(t *testing.T) {
	c := audit.NewChecker()
	tok := c.ReadMissIssued(5, 0x1000, 0b11, mem.Demand)
	c.ReadMissDone(9, tok)
	wantClean(t, c)
	if got := c.ReadSectors(mem.Demand); got != 2 {
		t.Fatalf("ReadSectors(demand) = %d, want 2", got)
	}
	c.ReadMissDone(10, tok) // double completion
	wantRule(t, c, "scheme-done-twice")

	c = audit.NewChecker()
	tok = c.ReadMissIssued(20, 0x1000, 0b1, mem.Demand)
	c.ReadMissDone(15, tok)
	wantRule(t, c, "scheme-done-time")

	c = audit.NewChecker()
	c.ReadMissIssued(0, 0x1000, 0b1, mem.Demand)
	c.FinishSim(50, 0, 0)
	wantRule(t, c, "scheme-done-missing")

	c = audit.NewChecker()
	c.WritebackIssued(1, 0x2000, 0)
	wantRule(t, c, "scheme-writeback-mask")
}

func TestAuditMSHRRules(t *testing.T) {
	c := audit.NewChecker()
	c.MSHRAlloc(0, 1, 0x100, 1)
	c.MSHRAlloc(1, 1, 0x100, 2)
	wantRule(t, c, "mshr-double-alloc")

	c = audit.NewChecker()
	c.SetMSHRCapacity(1)
	c.MSHRAlloc(0, 0, 0x100, 1)
	c.MSHRAlloc(0, 0, 0x180, 2)
	wantRule(t, c, "mshr-capacity")

	c = audit.NewChecker()
	c.MSHRFetch(0, 0, 0x100, 0b1)
	wantRule(t, c, "mshr-fetch-unknown")

	c = audit.NewChecker()
	c.MSHRAlloc(0, 0, 0x100, 1)
	c.MSHRFetch(1, 0, 0x100, 0b11)
	c.MSHRFill(2, 0, 0x100, 0b100) // fill outside the fetched set
	wantRule(t, c, "mshr-fill-mask")

	c = audit.NewChecker()
	c.MSHRAlloc(0, 0, 0x100, 1)
	c.MSHRFetch(1, 0, 0x100, 0b11)
	c.MSHRFill(2, 0, 0x100, 0b01)
	c.MSHRRelease(3, 0, 0x100) // one fetched sector never filled
	wantRule(t, c, "mshr-release-incomplete")

	c = audit.NewChecker()
	c.MSHRRelease(0, 0, 0x100)
	wantRule(t, c, "mshr-release-unknown")

	// A never-released entry is a leak at drain.
	c = audit.NewChecker()
	c.MSHRAlloc(0, 3, 0x100, 1)
	c.BankDrained(99, 3, 1, 0)
	wantRule(t, c, "mshr-leak")
}

func TestAuditDRAMShadow(t *testing.T) {
	req := mem.Request{Addr: 0x1000, Bytes: 32, Class: mem.Demand}

	c := audit.NewChecker()
	c.Serviced(5, req, 0, 0, 3, -1, 0)
	wantRule(t, c, "dram-queue")

	c = audit.NewChecker()
	c.Submitted(0, req, 0, 0, 3)
	c.Serviced(5, req, 0, 0, 3, -1, 9) // bank busy until cycle 9
	wantRule(t, c, "dram-busy")

	// The scheduler claiming an open row the shadow never saw opened is a
	// row-state divergence.
	c = audit.NewChecker()
	c.Submitted(0, req, 0, 0, 3)
	c.Serviced(5, req, 0, 0, 3, 7, 0)
	wantRule(t, c, "dram-row-state")

	// Refresh closes rows: a post-refresh access to the same row is a miss
	// in the shadow, and a scheduler still claiming it open diverges.
	c = audit.NewChecker()
	c.Submitted(0, req, 0, 0, 3)
	c.Serviced(5, req, 0, 0, 3, -1, 0)
	c.Refreshed(6, 0)
	c.Submitted(7, req, 0, 0, 3)
	c.Serviced(8, req, 0, 0, 3, 3, 0)
	wantRule(t, c, "dram-row-state")

	c = audit.NewChecker()
	c.Submitted(0, mem.Request{Addr: 0x1000, Bytes: 0, Class: mem.Demand}, 0, 0, 3)
	wantRule(t, c, "dram-bytes")
}

func TestAuditXbarRules(t *testing.T) {
	c := audit.NewChecker()
	c.XbarTransfer("req", 10, 11, 32, 4) // delivered 3 cycles early
	wantRule(t, c, "xbar-latency")

	c = audit.NewChecker()
	c.XbarTransfer("resp", 0, 4, 64, 4)
	c.FinishXbar(9, "resp", 64)
	wantClean(t, c)
	c.FinishXbar(9, "resp", 128)
	wantRule(t, c, "xbar-bytes")
}

func TestAuditErrSummaryAndCap(t *testing.T) {
	c := audit.NewChecker()
	if c.Err() != nil {
		t.Fatal("clean checker returned an error")
	}
	for i := 0; i < 100; i++ {
		c.Delivered(sim.Cycle(i), 12345, 1)
	}
	if c.Total() != 100 {
		t.Fatalf("Total = %d, want 100", c.Total())
	}
	if len(c.Violations()) >= c.Total() {
		t.Fatalf("recording cap not applied: %d recorded", len(c.Violations()))
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "100 violations") ||
		!strings.Contains(err.Error(), "token-unknown") {
		t.Fatalf("Err() = %v", err)
	}
}

// TestAuditRunMatchesUnaudited pins the zero-observer property: auditing
// must not change simulated behaviour. An audited run and a plain run of
// the same cell return identical results, counters included.
func TestAuditRunMatchesUnaudited(t *testing.T) {
	cfg := config.Quick()
	cfg.AccessesPerSM = 400
	for _, scheme := range []string{"none", "cachecraft"} {
		plain, err := cachecraft.Run(cfg, "gemm", scheme)
		if err != nil {
			t.Fatal(err)
		}
		audited, err := cachecraft.RunAudited(cfg, "gemm", scheme)
		if err != nil {
			t.Fatalf("%s: audited run failed: %v", scheme, err)
		}
		if !reflect.DeepEqual(plain, audited) {
			t.Fatalf("%s: audited result differs from plain result:\n%+v\nvs\n%+v", scheme, plain, audited)
		}
	}
}

// TestAuditQuickGridAllSchemes runs the full workload × scheme grid at
// quick scale under the runner's audit knob. Any invariant violation in
// any cell fails the whole grid — this is the audited tier-1 job's
// backbone.
func TestAuditQuickGridAllSchemes(t *testing.T) {
	cfg := config.Quick()
	cfg.NumSMs = 2
	cfg.AccessesPerSM = 300
	r := bench.NewRunner(cfg)
	r.SetAudit(true)
	var specs []bench.Spec
	for _, wl := range trace.Names() {
		for _, s := range schemes.Names() {
			specs = append(specs, bench.Spec{CfgID: "base", Workload: wl, Variant: s})
		}
	}
	if err := r.Prefetch(context.Background(), specs); err != nil {
		t.Fatalf("audited grid failed: %v", err)
	}
	if st := r.Stats(); st.Runs != len(specs) {
		t.Fatalf("expected %d audited runs, got %d", len(specs), st.Runs)
	}
}
