// Package audit is the simulator's opt-in invariant checker. A Checker
// threads through the simulation stack via the hook points the substrate
// packages expose (sim.Engine.SetStepHook, dram.DRAM.SetHook,
// xbar.Crossbar.SetHook, protect.WrapAudited, and the gpu machine's token
// calls) and verifies, while the simulation runs:
//
//   - tick monotonicity: the event engine never steps backwards in time;
//   - transaction conservation: every sector an SM requests is delivered
//     exactly once (no losses, no duplicates), per request token;
//   - controller pairing: every protect.Scheme.ReadMiss completes exactly
//     once, never before it was issued;
//   - L2 MSHR pairing: entries allocate, fetch, fill, and release in
//     matched quadruples within the configured capacity (leaks surface at
//     drain);
//   - DRAM legality: requests are serviced only after being submitted and
//     only by ready banks, the scheduler's open-row bookkeeping matches a
//     shadow reconstruction (row hit/miss/conflict counts must agree), and
//     refresh closes rows;
//   - byte conservation: per-class DRAM byte totals and crossbar byte
//     totals must equal the sums the checker observed first-hand;
//   - full drain: at end of simulation no tokens, controller reads, MSHR
//     entries, queued DRAM requests, or undelivered engine events remain.
//
// The checker is deliberately not wired when auditing is off: every hook
// is a nil field in the substrate, so the disabled cost is one branch per
// event. A Checker serves exactly one single-threaded simulation.
package audit

import (
	"fmt"

	"cachecraft/internal/mem"
	"cachecraft/internal/sim"
	"cachecraft/internal/stats"
)

// Violation is one invariant failure, identified by a stable rule name.
type Violation struct {
	Cycle  sim.Cycle
	Rule   string
	Detail string
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %s", v.Cycle, v.Rule, v.Detail)
}

// maxRecorded bounds the violations kept verbatim; the total count keeps
// incrementing past it so a report never understates the damage.
const maxRecorded = 64

// token is one in-flight SM↔L2 transaction (read or store).
type token struct {
	kind      string
	sm        int
	line      uint64
	remaining uint64
	issued    sim.Cycle
}

// schemeCall is one outstanding protect.Scheme.ReadMiss.
type schemeCall struct {
	line   uint64
	mask   uint64
	class  mem.Class
	issued sim.Cycle
}

type mshrKey struct {
	bank int
	line uint64
}

// mshrShadow mirrors one L2 bank MSHR entry's fetch/fill progress.
type mshrShadow struct {
	fetched uint64
	filled  uint64
}

type bankKey struct {
	ch, bk int
}

// bankShadow reconstructs a DRAM bank's scheduler-visible state from the
// hook stream alone.
type bankShadow struct {
	row    int64
	queued int
}

// Checker accumulates invariant state for one simulation. All methods are
// nil-receiver safe so optional call sites need no guards.
type Checker struct {
	violations []Violation
	total      int

	// Engine.
	lastStep sim.Cycle
	stepped  bool

	// SM↔L2 tokens.
	nextToken uint64
	tokens    map[uint64]*token

	// Controller reads.
	nextCall    uint64
	calls       map[uint64]*schemeCall
	readSectors map[mem.Class]uint64

	// L2 MSHR shadow.
	mshr    map[mshrKey]*mshrShadow
	mshrCap int

	// DRAM shadow.
	banks                         map[bankKey]*bankShadow
	classBytes                    map[mem.Class]uint64
	readBytes, writeBytes         uint64
	submitted, serviced           uint64
	rowHits, rowMisses, rowConfls uint64
	refreshes                     uint64

	// Crossbars.
	xbarBytes map[string]uint64
}

// NewChecker returns an empty checker for one simulation.
func NewChecker() *Checker {
	return &Checker{
		tokens:      make(map[uint64]*token),
		calls:       make(map[uint64]*schemeCall),
		readSectors: make(map[mem.Class]uint64),
		mshr:        make(map[mshrKey]*mshrShadow),
		banks:       make(map[bankKey]*bankShadow),
		classBytes:  make(map[mem.Class]uint64),
		xbarBytes:   make(map[string]uint64),
	}
}

// SetMSHRCapacity arms the per-bank MSHR occupancy check (0 disables it).
func (c *Checker) SetMSHRCapacity(n int) {
	if c == nil {
		return
	}
	c.mshrCap = n
}

func (c *Checker) violatef(at sim.Cycle, rule, format string, args ...any) {
	c.total++
	if len(c.violations) < maxRecorded {
		c.violations = append(c.violations, Violation{
			Cycle:  at,
			Rule:   rule,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// Violations returns the recorded violations (capped at an internal limit;
// see Total for the full count).
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Total reports how many violations occurred, including any past the
// recording cap.
func (c *Checker) Total() int {
	if c == nil {
		return 0
	}
	return c.total
}

// Err summarizes the violations as an error, or nil when the simulation
// was clean.
func (c *Checker) Err() error {
	if c == nil || c.total == 0 {
		return nil
	}
	first := c.violations[0]
	if c.total == 1 {
		return fmt.Errorf("audit: 1 violation: %s", first)
	}
	return fmt.Errorf("audit: %d violations, first: %s", c.total, first)
}

// EngineStep implements the sim.Engine step hook: time must never move
// backwards.
func (c *Checker) EngineStep(at sim.Cycle) {
	if c == nil {
		return
	}
	if c.stepped && at < c.lastStep {
		c.violatef(at, "tick-monotonic", "event at cycle %d after cycle %d", at, c.lastStep)
	}
	c.lastStep = at
	c.stepped = true
}

// ReadIssued opens a read token for an SM line request.
func (c *Checker) ReadIssued(now sim.Cycle, sm int, lineAddr, mask uint64) uint64 {
	return c.open(now, "read", sm, lineAddr, mask)
}

// StoreIssued opens a store token for an SM line-store request.
func (c *Checker) StoreIssued(now sim.Cycle, sm int, lineAddr, mask uint64) uint64 {
	return c.open(now, "store", sm, lineAddr, mask)
}

func (c *Checker) open(now sim.Cycle, kind string, sm int, lineAddr, mask uint64) uint64 {
	if c == nil {
		return 0
	}
	if mask == 0 {
		c.violatef(now, "token-mask", "%s issued with empty mask for line %#x", kind, lineAddr)
	}
	c.nextToken++
	c.tokens[c.nextToken] = &token{kind: kind, sm: sm, line: lineAddr, remaining: mask, issued: now}
	return c.nextToken
}

// Delivered closes (part of) a token: the delivered sectors must still be
// outstanding, and a fully-delivered token retires.
func (c *Checker) Delivered(now sim.Cycle, tok uint64, mask uint64) {
	if c == nil {
		return
	}
	t, ok := c.tokens[tok]
	if !ok {
		c.violatef(now, "token-unknown", "delivery for unknown or retired token %d (mask %#x)", tok, mask)
		return
	}
	if mask == 0 || mask&^t.remaining != 0 {
		c.violatef(now, "token-mask",
			"%s token %d (sm %d line %#x) delivered mask %#x but %#x is outstanding",
			t.kind, tok, t.sm, t.line, mask, t.remaining)
	}
	if now < t.issued {
		c.violatef(now, "token-time", "%s token %d delivered at %d before issue at %d", t.kind, tok, now, t.issued)
	}
	t.remaining &^= mask
	if t.remaining == 0 {
		delete(c.tokens, tok)
	}
}

// ReadMissIssued implements protect.SchemeSink.
func (c *Checker) ReadMissIssued(now sim.Cycle, lineAddr uint64, mask uint64, class mem.Class) uint64 {
	if c == nil {
		return 0
	}
	if mask == 0 {
		c.violatef(now, "scheme-read-mask", "ReadMiss with empty mask for line %#x", lineAddr)
	}
	c.readSectors[class] += uint64(popcount(mask))
	c.nextCall++
	c.calls[c.nextCall] = &schemeCall{line: lineAddr, mask: mask, class: class, issued: now}
	return c.nextCall
}

// ReadMissDone implements protect.SchemeSink.
func (c *Checker) ReadMissDone(at sim.Cycle, tok uint64) {
	if c == nil {
		return
	}
	call, ok := c.calls[tok]
	if !ok {
		c.violatef(at, "scheme-done-twice", "ReadMiss completion for unknown or already-completed call %d", tok)
		return
	}
	if at < call.issued {
		c.violatef(at, "scheme-done-time",
			"ReadMiss for line %#x completed at %d before issue at %d", call.line, at, call.issued)
	}
	delete(c.calls, tok)
}

// WritebackIssued implements protect.SchemeSink.
func (c *Checker) WritebackIssued(now sim.Cycle, lineAddr uint64, dirtyMask uint64) {
	if c == nil {
		return
	}
	if dirtyMask == 0 {
		c.violatef(now, "scheme-writeback-mask", "Writeback with empty dirty mask for line %#x", lineAddr)
	}
}

// DrainIssued implements protect.SchemeSink.
func (c *Checker) DrainIssued(sim.Cycle) {}

// MSHRAlloc records a new L2 bank MSHR entry; live counts the bank's
// entries including this one.
func (c *Checker) MSHRAlloc(now sim.Cycle, bank int, lineAddr uint64, live int) {
	if c == nil {
		return
	}
	key := mshrKey{bank: bank, line: lineAddr}
	if _, ok := c.mshr[key]; ok {
		c.violatef(now, "mshr-double-alloc", "bank %d line %#x allocated twice", bank, lineAddr)
		return
	}
	if c.mshrCap > 0 && live > c.mshrCap {
		c.violatef(now, "mshr-capacity", "bank %d holds %d entries, capacity %d", bank, live, c.mshrCap)
	}
	c.mshr[key] = &mshrShadow{}
}

// MSHRFetch records sectors requested from the controller for an entry.
func (c *Checker) MSHRFetch(now sim.Cycle, bank int, lineAddr, mask uint64) {
	if c == nil {
		return
	}
	e, ok := c.mshr[mshrKey{bank: bank, line: lineAddr}]
	if !ok {
		c.violatef(now, "mshr-fetch-unknown", "bank %d fetch %#x for unallocated line %#x", bank, mask, lineAddr)
		return
	}
	if mask == 0 || mask&e.fetched != 0 {
		c.violatef(now, "mshr-fetch-mask",
			"bank %d line %#x fetch mask %#x overlaps already-fetched %#x", bank, lineAddr, mask, e.fetched)
	}
	e.fetched |= mask
}

// MSHRFill records sectors delivered by the controller for an entry.
func (c *Checker) MSHRFill(now sim.Cycle, bank int, lineAddr, mask uint64) {
	if c == nil {
		return
	}
	e, ok := c.mshr[mshrKey{bank: bank, line: lineAddr}]
	if !ok {
		c.violatef(now, "mshr-fill-unknown", "bank %d fill %#x for unallocated line %#x", bank, mask, lineAddr)
		return
	}
	if mask == 0 || mask&^(e.fetched&^e.filled) != 0 {
		c.violatef(now, "mshr-fill-mask",
			"bank %d line %#x fill mask %#x not within outstanding fetches (fetched %#x filled %#x)",
			bank, lineAddr, mask, e.fetched, e.filled)
	}
	e.filled |= mask
}

// MSHRRelease records an entry retiring; all fetched sectors must have
// filled.
func (c *Checker) MSHRRelease(now sim.Cycle, bank int, lineAddr uint64) {
	if c == nil {
		return
	}
	key := mshrKey{bank: bank, line: lineAddr}
	e, ok := c.mshr[key]
	if !ok {
		c.violatef(now, "mshr-release-unknown", "bank %d released unallocated line %#x", bank, lineAddr)
		return
	}
	if e.filled != e.fetched {
		c.violatef(now, "mshr-release-incomplete",
			"bank %d line %#x released with fetched %#x but filled %#x", bank, lineAddr, e.fetched, e.filled)
	}
	delete(c.mshr, key)
}

func (c *Checker) shadowBank(ch, bk int) *bankShadow {
	key := bankKey{ch: ch, bk: bk}
	b, ok := c.banks[key]
	if !ok {
		b = &bankShadow{row: -1}
		c.banks[key] = b
	}
	return b
}

// Submitted implements dram.Hook.
func (c *Checker) Submitted(now sim.Cycle, req mem.Request, ch, bk int, _ int64) {
	if c == nil {
		return
	}
	if req.Bytes <= 0 {
		c.violatef(now, "dram-bytes", "request %s with non-positive size", req)
	}
	c.submitted++
	c.shadowBank(ch, bk).queued++
	c.classBytes[req.Class] += uint64(req.Bytes)
	if req.Write {
		c.writeBytes += uint64(req.Bytes)
	} else {
		c.readBytes += uint64(req.Bytes)
	}
}

// Serviced implements dram.Hook: the bank must be ready, must have queued
// work, and its open-row state must match the shadow reconstruction.
func (c *Checker) Serviced(now sim.Cycle, req mem.Request, ch, bk int, row, openBefore int64, readyBefore sim.Cycle) {
	if c == nil {
		return
	}
	c.serviced++
	b := c.shadowBank(ch, bk)
	if b.queued <= 0 {
		c.violatef(now, "dram-queue", "ch %d bank %d serviced %s with empty shadow queue", ch, bk, req)
	} else {
		b.queued--
	}
	if readyBefore > now {
		c.violatef(now, "dram-busy", "ch %d bank %d dispatched while busy until %d", ch, bk, readyBefore)
	}
	if openBefore != b.row {
		c.violatef(now, "dram-row-state",
			"ch %d bank %d scheduler saw open row %d, shadow says %d", ch, bk, openBefore, b.row)
	}
	switch {
	case b.row == row:
		c.rowHits++
	case b.row < 0:
		c.rowMisses++
	default:
		c.rowConfls++
	}
	b.row = row
}

// Refreshed implements dram.Hook: refresh closes every row on the channel.
func (c *Checker) Refreshed(_ sim.Cycle, ch int) {
	if c == nil {
		return
	}
	c.refreshes++
	for key, b := range c.banks {
		if key.ch == ch {
			b.row = -1
		}
	}
}

// XbarTransfer records one crossbar message; delivery can never beat the
// fabric latency.
func (c *Checker) XbarTransfer(name string, at, deliver sim.Cycle, bytes int, latency sim.Cycle) {
	if c == nil {
		return
	}
	if bytes <= 0 {
		c.violatef(at, "xbar-bytes", "%s transfer of %d bytes", name, bytes)
	}
	if deliver < at+latency {
		c.violatef(at, "xbar-latency", "%s delivery at %d beats latency %d from %d", name, deliver, latency, at)
	}
	c.xbarBytes[name] += uint64(bytes)
}

// CacheViolation records a tag-store consistency failure reported by
// cache.CheckConsistency.
func (c *Checker) CacheViolation(now sim.Cycle, err error) {
	if c == nil || err == nil {
		return
	}
	c.violatef(now, "cache-state", "%v", err)
}

// BankDrained verifies one L2 bank is empty at end of simulation: no MSHR
// entries and no parked (MSHR-stalled) requests.
func (c *Checker) BankDrained(now sim.Cycle, bank, liveMSHRs, waiting int) {
	if c == nil {
		return
	}
	if liveMSHRs != 0 {
		c.violatef(now, "mshr-leak", "bank %d ends with %d live MSHR entries", bank, liveMSHRs)
	}
	if waiting != 0 {
		c.violatef(now, "mshr-leak", "bank %d ends with %d requests parked on MSHR backpressure", bank, waiting)
	}
	for key, e := range c.mshr {
		if key.bank == bank {
			c.violatef(now, "mshr-leak",
				"bank %d line %#x never released (fetched %#x filled %#x)", bank, key.line, e.fetched, e.filled)
		}
	}
}

// FinishSim runs the end-of-simulation drain checks: no outstanding SM
// transactions, no unanswered controller reads, no undelivered events.
func (c *Checker) FinishSim(now sim.Cycle, outstanding, pendingEvents int) {
	if c == nil {
		return
	}
	if outstanding != 0 {
		c.violatef(now, "sim-drain", "%d SM transactions still outstanding", outstanding)
	}
	if pendingEvents != 0 {
		c.violatef(now, "sim-drain", "%d engine events still queued", pendingEvents)
	}
	for tok, t := range c.tokens {
		c.violatef(now, "token-leak",
			"%s token %d (sm %d line %#x) never fully delivered; mask %#x outstanding",
			t.kind, tok, t.sm, t.line, t.remaining)
	}
	for tok, call := range c.calls {
		c.violatef(now, "scheme-done-missing",
			"ReadMiss %d for line %#x (mask %#x, class %s, issued %d) never completed",
			tok, call.line, call.mask, call.class, call.issued)
	}
}

// FinishDRAM cross-checks the checker's first-hand accounting against the
// memory system's own counters: request and refresh counts, per-class and
// read/write byte totals, row hit/miss/conflict classification, and empty
// queues.
func (c *Checker) FinishDRAM(now sim.Cycle, st *stats.Counters) {
	if c == nil {
		return
	}
	if c.submitted != c.serviced {
		c.violatef(now, "dram-drain", "%d requests submitted but %d serviced", c.submitted, c.serviced)
	}
	for key, b := range c.banks {
		if b.queued != 0 {
			c.violatef(now, "dram-drain", "ch %d bank %d shadow queue ends with %d requests", key.ch, key.bk, b.queued)
		}
	}
	check := func(name string, got, want uint64) {
		if got != want {
			c.violatef(now, "dram-stats", "counter %q is %d, checker observed %d", name, got, want)
		}
	}
	check("requests", st.Get("requests"), c.submitted)
	check("refreshes", st.Get("refreshes"), c.refreshes)
	check("bytes_read", st.Get("bytes_read"), c.readBytes)
	check("bytes_written", st.Get("bytes_written"), c.writeBytes)
	check("row_hits", st.Get("row_hits"), c.rowHits)
	check("row_misses", st.Get("row_misses"), c.rowMisses)
	check("row_conflicts", st.Get("row_conflicts"), c.rowConfls)
	for _, class := range mem.Classes() {
		check("bytes_"+class.String(), st.Get("bytes_"+class.String()), c.classBytes[class])
	}
}

// FinishXbar cross-checks one crossbar's byte counter against the hook
// stream.
func (c *Checker) FinishXbar(now sim.Cycle, name string, totalBytes uint64) {
	if c == nil {
		return
	}
	if got := c.xbarBytes[name]; got != totalBytes {
		c.violatef(now, "xbar-bytes", "%s fabric reports %d bytes, checker observed %d", name, totalBytes, got)
	}
}

// ReadSectors reports how many sectors the controller was asked to fetch
// for the given class (analytical-oracle support for the fuzz harness).
func (c *Checker) ReadSectors(class mem.Class) uint64 {
	if c == nil {
		return 0
	}
	return c.readSectors[class]
}

func popcount(m uint64) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
