package audit_test

import (
	"reflect"
	"testing"

	cachecraft "cachecraft"
	"cachecraft/internal/config"
	"cachecraft/internal/gpu"
	"cachecraft/internal/schemes"
	"cachecraft/internal/trace"
)

// fuzzConfig derives a small-but-adversarial configuration from raw fuzz
// bytes: few SMs, a short access budget, and a deliberately tight L2 MSHR
// pool so allocation stalls and the parked-request path are exercised.
// DecodeLat and ErrorRatePPM are pinned to zero so the none/ideal
// cycle-agreement oracle applies.
func fuzzConfig(seed int64, smSel uint8, accSel uint16, mshrSel uint8) config.GPU {
	cfg := config.Quick()
	cfg.NumSMs = 1 + int(smSel)%3
	cfg.AccessesPerSM = 60 + int(accSel)%240
	cfg.Seed = seed
	cfg.L2MSHRs = 2 + int(mshrSel)%4
	cfg.DecodeLat = 0
	cfg.ErrorRatePPM = 0
	return cfg
}

// FuzzSim generates random small configurations × workload seeds, runs
// every registered scheme (plus the ideal bound) under the invariant
// checker, and cross-validates the results against analytical oracles:
//
//   - any audit violation fails the input outright (RunAudited errors);
//   - none must produce zero redundancy-side DRAM traffic;
//   - inline-naive's redundancy traffic must equal its redundancy-block
//     fetch count (one per demand read miss, plus one per writeback RMW)
//     times the redundancy-block size — the closed form the paper's
//     problem statement rests on;
//   - with decode latency and error injection both zero, the ideal bound
//     must agree with the unprotected baseline cycle-for-cycle whenever
//     the workload triggers no partial-write fetches (the one cost even
//     free redundancy cannot remove);
//   - an identical input must reproduce an identical result.
func FuzzSim(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(0), uint8(0))
	f.Add(int64(42), uint8(1), uint16(100), uint8(3))
	f.Add(int64(-7), uint8(2), uint16(200), uint8(1))
	f.Add(int64(7919), uint8(5), uint16(999), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, smSel uint8, accSel uint16, mshrSel uint8) {
		cfg := fuzzConfig(seed, smSel, accSel, mshrSel)
		names := trace.Names()
		// One workload per input keeps each execution fast; the selector
		// byte rides in accSel's high bits so the fuzzer can reach all of
		// them.
		wl := names[int(accSel>>8)%len(names)]

		results := make(map[string]gpu.Result)
		for _, s := range schemes.Names() {
			res, err := cachecraft.RunAudited(cfg, wl, s)
			if err != nil {
				t.Fatalf("%s/%s: %v", wl, s, err)
			}
			results[s] = res
		}

		none := results["none"]
		for _, class := range []string{"redundancy", "rmw", "reconstruct"} {
			if none.DRAMBytes[class] != 0 {
				t.Fatalf("%s/none: %d bytes of %s traffic in the unprotected baseline",
					wl, none.DRAMBytes[class], class)
			}
		}

		naive := results["inline-naive"]
		redBlk := uint64(cfg.Geometry.RedBlockBytes)
		redReads := naive.ControllerSt.Get("red_reads_dram")
		redRMWs := naive.ControllerSt.Get("red_rmw")
		if redReads == 0 {
			t.Fatalf("%s/inline-naive: no redundancy-block reads despite demand misses", wl)
		}
		// Every RMW read is followed by exactly one redundancy-block write,
		// so redundancy-class bytes = (reads + RMW writebacks) × block size.
		if got, want := naive.DRAMBytes["redundancy"], (redReads+redRMWs)*redBlk; got != want {
			t.Fatalf("%s/inline-naive: redundancy bytes = %d, want (%d reads + %d rmws) × %d = %d",
				wl, got, redReads, redRMWs, redBlk, want)
		}
		if got, want := naive.DRAMBytes["rmw"], redRMWs*redBlk; got != want {
			t.Fatalf("%s/inline-naive: rmw bytes = %d, want %d × %d = %d",
				wl, got, redRMWs, redBlk, want)
		}

		ideal := results["ideal"]
		if ideal.Machine.Get("l2_rmw_fetches") == 0 && ideal.Cycles != none.Cycles {
			t.Fatalf("%s: ideal (free redundancy, zero decode, no rmw fetches) took %d cycles, none took %d",
				wl, ideal.Cycles, none.Cycles)
		}

		again, err := cachecraft.RunAudited(cfg, wl, "cachecraft")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results["cachecraft"], again) {
			t.Fatalf("%s/cachecraft: two runs of one input differ:\n%+v\nvs\n%+v",
				wl, results["cachecraft"], again)
		}
	})
}
