package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file implements trace recording and replay: any workload's access
// stream can be serialized to a compact binary format and replayed later,
// which is how externally-captured GPU traces (e.g. from a binary
// instrumentation tool) plug into the simulator.
//
// Format (little-endian):
//
//	magic   [8]byte  "CCTRACE1"
//	records until EOF:
//	  pc        uvarint
//	  flags     byte    (bit0 write, bit1 dependent)
//	  bytes     uvarint (per-thread access width)
//	  weight    uvarint (compute weight)
//	  nAddrs    uvarint
//	  addrs     nAddrs × uvarint (delta-encoded from previous addr in record)

var traceMagic = [8]byte{'C', 'C', 'T', 'R', 'A', 'C', 'E', '1'}

// Writer serializes accesses.
type Writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	n   int
}

// NewWriter starts a trace on w, writing the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

func (t *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(t.buf[:], v)
	_, err := t.w.Write(t.buf[:n])
	return err
}

// Write appends one access.
func (t *Writer) Write(a Access) error {
	if len(a.Addrs) == 0 {
		return fmt.Errorf("trace: access with no addresses")
	}
	if err := t.uvarint(a.PC); err != nil {
		return err
	}
	var flags byte
	if a.Write {
		flags |= 1
	}
	if a.Dependent {
		flags |= 2
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	if err := t.uvarint(uint64(a.Bytes)); err != nil {
		return err
	}
	if err := t.uvarint(uint64(a.ComputeWeight)); err != nil {
		return err
	}
	if err := t.uvarint(uint64(len(a.Addrs))); err != nil {
		return err
	}
	prev := uint64(0)
	for _, addr := range a.Addrs {
		// Zig-zag delta: threads usually ascend, but gathers may not.
		delta := int64(addr) - int64(prev)
		if err := t.uvarint(zigzag(delta)); err != nil {
			return err
		}
		prev = addr
	}
	t.n++
	return nil
}

// Count reports how many accesses have been written.
func (t *Writer) Count() int { return t.n }

// Flush drains the buffered writer.
func (t *Writer) Flush() error { return t.w.Flush() }

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Replayer is a Workload that replays a serialized trace.
type Replayer struct {
	name      string
	r         *bufio.Reader
	footprint uint64
	err       error
	addrs     [WarpSize]uint64 // scratch backing each decoded Access.Addrs
}

// NewReplayer opens a trace for replay. footprint is the logical data
// extent the trace addresses live in (needed by the machine to size the
// protected region).
func NewReplayer(name string, r io.Reader, footprint uint64) (*Replayer, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	return &Replayer{name: name, r: br, footprint: footprint}, nil
}

// Name identifies the replayed trace.
func (t *Replayer) Name() string { return t.name }

// Footprint reports the declared logical extent.
func (t *Replayer) Footprint() uint64 { return t.footprint }

// Err reports the first malformed-record error encountered (EOF is not an
// error; it ends the stream).
func (t *Replayer) Err() error { return t.err }

// Next decodes the next access.
func (t *Replayer) Next() (Access, bool) {
	if t.err != nil {
		return Access{}, false
	}
	pc, err := binary.ReadUvarint(t.r)
	if err != nil {
		if err != io.EOF {
			t.err = fmt.Errorf("trace: reading pc: %w", err)
		}
		return Access{}, false
	}
	flags, err := t.r.ReadByte()
	if err != nil {
		t.err = fmt.Errorf("trace: truncated record: %w", err)
		return Access{}, false
	}
	width, err := binary.ReadUvarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("trace: reading width: %w", err)
		return Access{}, false
	}
	weight, err := binary.ReadUvarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("trace: reading weight: %w", err)
		return Access{}, false
	}
	n, err := binary.ReadUvarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("trace: reading address count: %w", err)
		return Access{}, false
	}
	if n == 0 || n > WarpSize {
		t.err = fmt.Errorf("trace: record with %d addresses", n)
		return Access{}, false
	}
	a := Access{
		PC:            pc,
		Write:         flags&1 != 0,
		Dependent:     flags&2 != 0,
		Bytes:         int(width),
		ComputeWeight: int(weight),
		Addrs:         t.addrs[:n],
	}
	prev := uint64(0)
	for i := range a.Addrs {
		du, err := binary.ReadUvarint(t.r)
		if err != nil {
			t.err = fmt.Errorf("trace: reading address %d: %w", i, err)
			return Access{}, false
		}
		addr := uint64(int64(prev) + unzigzag(du))
		if addr >= t.footprint {
			t.err = fmt.Errorf("trace: address %#x outside footprint %#x", addr, t.footprint)
			return Access{}, false
		}
		a.Addrs[i] = addr
		prev = addr
	}
	return a, true
}

// Record drains a workload into a trace writer, returning the number of
// accesses written.
func Record(w Workload, out io.Writer) (int, error) {
	tw, err := NewWriter(out)
	if err != nil {
		return 0, err
	}
	for {
		a, ok := w.Next()
		if !ok {
			break
		}
		if err := tw.Write(a); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

var _ Workload = (*Replayer)(nil)
