package trace

import (
	"testing"
)

func params() Params { return DefaultParams(0, 4, 42) }

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("workload count = %d, want 10: %v", len(names), names)
	}
	for _, n := range names {
		w, err := Build(n, params())
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != n {
			t.Fatalf("workload %q reports name %q", n, w.Name())
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope", params()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestStreamsTerminateAtBudget(t *testing.T) {
	for _, n := range Names() {
		p := params()
		p.Accesses = 100
		w, _ := Build(n, p)
		count := 0
		for {
			_, ok := w.Next()
			if !ok {
				break
			}
			count++
			if count > p.Accesses {
				t.Fatalf("%s: emitted more than budget", n)
			}
		}
		if count != p.Accesses {
			t.Fatalf("%s: emitted %d, want %d", n, count, p.Accesses)
		}
	}
}

func TestAddressesInFootprint(t *testing.T) {
	for _, n := range Names() {
		p := params()
		p.Accesses = 500
		w, _ := Build(n, p)
		for {
			a, ok := w.Next()
			if !ok {
				break
			}
			if len(a.Addrs) == 0 || len(a.Addrs) > WarpSize {
				t.Fatalf("%s: %d thread addresses", n, len(a.Addrs))
			}
			for _, addr := range a.Addrs {
				if addr >= p.FootprintBytes {
					t.Fatalf("%s: address %#x outside footprint %#x", n, addr, p.FootprintBytes)
				}
			}
			if a.Bytes <= 0 {
				t.Fatalf("%s: non-positive access width", n)
			}
		}
	}
}

func TestDeterministicStreams(t *testing.T) {
	for _, n := range Names() {
		collect := func() []Access {
			p := params()
			p.Accesses = 200
			w, _ := Build(n, p)
			var out []Access
			for {
				a, ok := w.Next()
				if !ok {
					break
				}
				// Addrs is the stream's scratch buffer; copy to retain.
				a.Addrs = append([]uint64(nil), a.Addrs...)
				out = append(out, a)
			}
			return out
		}
		a, b := collect(), collect()
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", n)
		}
		for i := range a {
			if a[i].PC != b[i].PC || a[i].Write != b[i].Write || len(a[i].Addrs) != len(b[i].Addrs) {
				t.Fatalf("%s: access %d differs", n, i)
			}
			for j := range a[i].Addrs {
				if a[i].Addrs[j] != b[i].Addrs[j] {
					t.Fatalf("%s: access %d addr %d differs", n, i, j)
				}
			}
		}
	}
}

// TestStreamSeedNoLinearCollisions is the regression test for the old
// RNG derivation Seed*1000003 + SMID*7919, under which distinct
// (Seed, SMID) pairs landed on the same RNG stream — e.g. (7919, 0) and
// (0, 1000003) both mapped to 7919*1000003, so two supposedly independent
// experiments replayed identical randomness. The splitmix64-mixed
// derivation must separate those pairs and stay collision-free across a
// dense grid of nearby seeds and SM ids.
func TestStreamSeedNoLinearCollisions(t *testing.T) {
	if streamSeed(7919, 0) == streamSeed(0, 1000003) {
		t.Fatal("known linear-collision pair (7919,0)/(0,1000003) still collides")
	}
	seen := make(map[int64][2]int64)
	for seed := int64(-64); seed <= 64; seed++ {
		for smID := 0; smID < 128; smID++ {
			s := streamSeed(seed, smID)
			if prev, ok := seen[s]; ok {
				t.Fatalf("streamSeed collision: (%d,%d) and (%d,%d) → %d",
					prev[0], prev[1], seed, smID, s)
			}
			seen[s] = [2]int64{seed, int64(smID)}
		}
	}
	// The collision must also be visible at the workload level: the two
	// once-colliding parameter sets must now generate different streams.
	collect := func(seed int64, smID int) []uint64 {
		p := Params{SMID: smID, NumSMs: smID + 1, Seed: seed, Accesses: 50, FootprintBytes: 1 << 20}
		w, err := Build("random", p)
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		for {
			a, ok := w.Next()
			if !ok {
				break
			}
			out = append(out, a.Addrs...)
		}
		return out
	}
	a, b := collect(7919, 0), collect(0, 1000003)
	same := len(a) == len(b)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == b[i]
	}
	if same {
		t.Fatal("once-colliding parameter pairs still generate identical address streams")
	}
}

func TestSMPartitioningDiffers(t *testing.T) {
	// Different SMs must not replay identical address streams (except by
	// coincidence); check the first access differs for stream-style
	// workloads that partition by SM.
	for _, n := range []string{"stream", "scan", "gemm", "transpose"} {
		w0, _ := Build(n, DefaultParams(0, 4, 42))
		w1, _ := Build(n, DefaultParams(1, 4, 42))
		a0, _ := w0.Next()
		a1, _ := w1.Next()
		if a0.Addrs[0] == a1.Addrs[0] {
			t.Fatalf("%s: SM0 and SM1 start at the same address %#x", n, a0.Addrs[0])
		}
	}
}

func TestStreamIsCoalescedAndReadOnly(t *testing.T) {
	w, _ := Build("stream", params())
	for i := 0; i < 100; i++ {
		a, ok := w.Next()
		if !ok {
			break
		}
		if a.Write {
			t.Fatal("stream must be read-only")
		}
		for t2 := 1; t2 < len(a.Addrs); t2++ {
			if a.Addrs[t2] != a.Addrs[t2-1]+4 {
				t.Fatal("stream must be fully coalesced")
			}
		}
	}
}

func TestScanHasWrites(t *testing.T) {
	w, _ := Build("scan", params())
	writes := 0
	for i := 0; i < 100; i++ {
		a, _ := w.Next()
		if a.Write {
			writes++
		}
	}
	if writes != 50 {
		t.Fatalf("scan writes = %d/100, want half", writes)
	}
}

func TestPtrChaseDependent(t *testing.T) {
	w, _ := Build("ptrchase", params())
	a, _ := w.Next()
	if !a.Dependent {
		t.Fatal("ptrchase accesses must be dependent")
	}
	// All threads in one sector pair.
	base := a.Addrs[0] - a.Addrs[0]%32
	for _, addr := range a.Addrs {
		if addr-addr%32 != base {
			t.Fatal("ptrchase threads must hit one sector")
		}
	}
}

func TestRandomIsUncoalesced(t *testing.T) {
	w, _ := Build("random", params())
	a, _ := w.Next()
	distinct := map[uint64]bool{}
	for _, addr := range a.Addrs {
		distinct[addr-addr%128] = true
	}
	if len(distinct) < 16 {
		t.Fatalf("random access touches only %d lines", len(distinct))
	}
}

func TestTransposeWritesAreStrided(t *testing.T) {
	w, _ := Build("transpose", params())
	var wr Access
	for i := 0; i < 10; i++ {
		a, _ := w.Next()
		if a.Write {
			wr = a
			break
		}
	}
	if wr.Addrs == nil {
		t.Fatal("no write found")
	}
	stride := wr.Addrs[1] - wr.Addrs[0]
	if stride < 1024 {
		t.Fatalf("transpose write stride = %d, want a full row", stride)
	}
}

func TestGEMMReusesTiles(t *testing.T) {
	p := params()
	p.Accesses = 4000
	w, _ := Build("gemm", p)
	seen := map[uint64]int{}
	for {
		a, ok := w.Next()
		if !ok {
			break
		}
		seen[a.Addrs[0]-a.Addrs[0]%128]++
	}
	reused := 0
	for _, c := range seen {
		if c > 1 {
			reused++
		}
	}
	if reused*2 < len(seen) {
		t.Fatalf("gemm reuse too low: %d/%d lines reused", reused, len(seen))
	}
}

func TestHistogramWritesScattered(t *testing.T) {
	w, _ := Build("histogram", params())
	var wr Access
	for i := 0; i < 4; i++ {
		a, _ := w.Next()
		if a.Write {
			wr = a
			break // Addrs is scratch: stop before the next access recycles it
		}
	}
	if wr.Addrs == nil {
		t.Fatal("no write found")
	}
	distinct := map[uint64]bool{}
	for _, addr := range wr.Addrs {
		distinct[addr-addr%128] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("histogram writes touch only %d lines", len(distinct))
	}
}

func TestSpMVGathersSkewed(t *testing.T) {
	p := params()
	p.Accesses = 2000
	w, _ := Build("spmv", p)
	counts := map[uint64]int{}
	for {
		a, ok := w.Next()
		if !ok {
			break
		}
		if a.PC%16 == 2 { // gather PC
			for _, addr := range a.Addrs {
				counts[addr/128]++
			}
		}
	}
	if len(counts) == 0 {
		t.Fatal("no gathers observed")
	}
	max := 0
	total := 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	mean := float64(total) / float64(len(counts))
	if float64(max) < 4*mean {
		t.Fatalf("spmv gather distribution not skewed: max %d vs mean %.1f", max, mean)
	}
}

func TestBFSBursts(t *testing.T) {
	w, _ := Build("bfs", params())
	first, _ := w.Next()
	prevAddr := first.Addrs[0] // Addrs is scratch: keep the scalar, not the slice
	sequential := 0
	for i := 0; i < 200; i++ {
		a, _ := w.Next()
		if a.Addrs[0] == prevAddr+WarpSize*4 {
			sequential++
		}
		prevAddr = a.Addrs[0]
	}
	if sequential < 50 {
		t.Fatalf("bfs shows too little burst locality: %d/200", sequential)
	}
}
