// Package trace defines warp-level memory access streams and the synthetic
// workload generators that stand in for the CUDA benchmark suites a GPU
// simulator would normally replay. Each generator models the access
// pattern of a canonical workload class — dense streaming, tiled reuse,
// stencils, irregular gathers, pointer chasing — because those patterns
// (sector-grain locality, redundancy-block reuse, cache pressure, row
// locality) are what the protection schemes respond to.
//
// All generators are deterministic functions of (smID, numSMs, seed).
package trace

import (
	"fmt"
	"math/rand"
	"sort"
)

// WarpSize is the number of threads issuing one access together.
const WarpSize = 32

// Access is one warp-level memory instruction.
type Access struct {
	// PC identifies the static instruction (predictor index).
	PC uint64
	// Write distinguishes stores from loads.
	Write bool
	// Addrs holds the per-thread logical byte addresses (up to WarpSize).
	Addrs []uint64
	// Bytes is the per-thread access width.
	Bytes int
	// ComputeWeight is how many non-memory instructions retire with this
	// access (sets the compute:memory ratio of the workload).
	ComputeWeight int
	// Dependent marks the next access as data-dependent on this one: the
	// SM must not issue further accesses until this one completes.
	Dependent bool
}

// Workload produces a finite stream of accesses for one SM.
type Workload interface {
	// Name identifies the workload.
	Name() string
	// Footprint is the extent of the logical data space the workload
	// touches, in bytes.
	Footprint() uint64
	// Next returns the next access; ok is false when the stream ends.
	// The returned Access's Addrs slice is only valid until the following
	// Next call — generators reuse one scratch buffer per stream, so a
	// caller that retains accesses must copy the slice.
	Next() (Access, bool)
}

// Params shapes a generated workload.
type Params struct {
	// SMID and NumSMs partition the workload across cores.
	SMID   int
	NumSMs int
	// Seed makes the stream deterministic.
	Seed int64
	// Accesses is the number of warp accesses this SM issues.
	Accesses int
	// FootprintBytes bounds the logical data space.
	FootprintBytes uint64
}

// DefaultParams returns the repository-wide workload sizing: a 48 MiB
// footprint (≫ L2) and 6000 warp accesses per SM.
func DefaultParams(smID, numSMs int, seed int64) Params {
	return Params{
		SMID:           smID,
		NumSMs:         numSMs,
		Seed:           seed,
		Accesses:       6000,
		FootprintBytes: 48 << 20,
	}
}

// Builder constructs a workload for one SM.
type Builder func(p Params) Workload

var registry = map[string]Builder{
	"stream":    NewStream,
	"scan":      NewScan,
	"gemm":      NewGEMM,
	"stencil":   NewStencil,
	"transpose": NewTranspose,
	"spmv":      NewSpMV,
	"bfs":       NewBFS,
	"ptrchase":  NewPtrChase,
	"random":    NewRandom,
	"histogram": NewHistogram,
}

// Names lists the registered workloads in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named workload, or an error for unknown names.
func Build(name string, p Params) (Workload, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown workload %q (have %v)", name, Names())
	}
	return b(p), nil
}

// base carries the bookkeeping every generator shares.
type base struct {
	name      string
	footprint uint64
	emitted   int
	limit     int
	rng       *rand.Rand
	pcBase    uint64
	addrs     []uint64 // per-stream scratch backing Access.Addrs
}

func newBase(name string, p Params) base {
	return base{
		name:      name,
		footprint: p.FootprintBytes,
		limit:     p.Accesses,
		rng:       rand.New(rand.NewSource(streamSeed(p.Seed, p.SMID))),
		pcBase:    uint64(p.SMID) << 32,
	}
}

// streamSeed derives an SM-private RNG seed. A linear combination such as
// Seed*K1 + SMID*K2 is trivially collision-prone — (Seed=K2, SMID=0) and
// (Seed=0, SMID=K1) produce identical streams, silently correlating SMs
// across supposedly independent runs — so both inputs pass through a
// splitmix64-style finalizer instead.
func streamSeed(seed int64, smID int) int64 {
	h := mix64(uint64(seed))
	h = mix64(h ^ (uint64(smID)+1)*0x9e3779b97f4a7c15)
	return int64(h)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (b *base) Name() string      { return b.name }
func (b *base) Footprint() uint64 { return b.footprint }

// done reports and advances the emission budget.
func (b *base) done() bool {
	if b.emitted >= b.limit {
		return true
	}
	b.emitted++
	return false
}

// scratch returns the stream's reusable WarpSize address buffer (the
// backing store for every Access the generator emits).
func (b *base) scratch() []uint64 {
	if b.addrs == nil {
		b.addrs = make([]uint64, WarpSize)
	}
	return b.addrs
}

// coalesced builds a fully-coalesced access: thread t at start + t*width.
// The Addrs slice is the stream's scratch buffer, valid until the next
// access is generated.
func (b *base) coalesced(pc uint64, start uint64, width int, write bool, weight int) Access {
	addrs := b.scratch()
	for t := 0; t < WarpSize; t++ {
		addrs[t] = start + uint64(t*width)
	}
	return Access{PC: pc, Write: write, Addrs: addrs, Bytes: width, ComputeWeight: weight}
}

// clampSector aligns an address down to 4 bytes and into the footprint.
func clampAddr(addr, footprint uint64) uint64 {
	addr %= footprint
	return addr - addr%4
}
