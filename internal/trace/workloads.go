package trace

// The ten workload generators. Each models the memory behaviour of a
// canonical GPU benchmark class; comments note the class and the property
// that matters to memory protection.

// stream: a saxpy/memcpy-style sweep — fully coalesced sequential reads,
// maximum spatial locality, bandwidth bound. Inline-ECC redundancy enjoys
// perfect granule reuse here.
type stream struct {
	base
	cursor uint64
	stride uint64
}

// NewStream builds the streaming-read workload.
func NewStream(p Params) Workload {
	chunk := uint64(WarpSize * 4)
	return &stream{
		base:   newBase("stream", p),
		cursor: uint64(p.SMID) * chunk,
		stride: uint64(p.NumSMs) * chunk,
	}
}

// Next emits the next warp access.
func (w *stream) Next() (Access, bool) {
	if w.done() {
		return Access{}, false
	}
	a := w.coalesced(w.pcBase+1, w.cursor%w.footprint, 4, false, 4)
	w.cursor += w.stride
	return a, true
}

// scan: a prefix-sum/stream-triad pattern — sequential read plus
// sequential write to a disjoint half of the footprint. Write-heavy but
// fully coalesced, so granule-aligned writebacks dominate.
type scan struct {
	base
	cursor uint64
	stride uint64
	write  bool
}

// NewScan builds the streaming read+write workload.
func NewScan(p Params) Workload {
	chunk := uint64(WarpSize * 4)
	return &scan{
		base:   newBase("scan", p),
		cursor: uint64(p.SMID) * chunk,
		stride: uint64(p.NumSMs) * chunk,
	}
}

// Next alternates a coalesced load with a coalesced store to the upper
// half of the footprint.
func (w *scan) Next() (Access, bool) {
	if w.done() {
		return Access{}, false
	}
	half := w.footprint / 2
	var a Access
	if w.write {
		a = w.coalesced(w.pcBase+2, half+w.cursor%half, 4, true, 2)
		w.cursor += w.stride
	} else {
		a = w.coalesced(w.pcBase+1, w.cursor%half, 4, false, 2)
	}
	w.write = !w.write
	return a, true
}

// gemm: a tiled dense matrix-multiply — two tile-sized working sets
// revisited many times before moving on. High L2 reuse; the L2 captures
// both data and redundancy locality, so protection overhead is small when
// the scheme exploits caching.
type gemm struct {
	base
	tileBytes uint64
	aBase     uint64
	bBase     uint64
	posInTile uint64
	passes    int
	passesMax int
	tileIndex uint64
	numTiles  uint64
	readingA  bool
}

// NewGEMM builds the tiled-reuse workload.
func NewGEMM(p Params) Workload {
	w := &gemm{
		base:      newBase("gemm", p),
		tileBytes: 96 << 10, // 96 KiB per tile: A+B tiles fit in L2 with room
		passesMax: 8,
		readingA:  true,
	}
	w.numTiles = w.footprint / (2 * w.tileBytes)
	if w.numTiles == 0 {
		w.numTiles = 1
	}
	w.tileIndex = uint64(p.SMID) % w.numTiles
	w.setTile()
	return w
}

func (w *gemm) setTile() {
	w.aBase = (w.tileIndex % w.numTiles) * 2 * w.tileBytes
	w.bBase = w.aBase + w.tileBytes
	w.posInTile = 0
	w.passes = 0
}

// Next sweeps the A then B tile, repeating passesMax times per tile pair.
func (w *gemm) Next() (Access, bool) {
	if w.done() {
		return Access{}, false
	}
	chunk := uint64(WarpSize * 4)
	tileBase := w.aBase
	pc := w.pcBase + 1
	if !w.readingA {
		tileBase = w.bBase
		pc = w.pcBase + 2
	}
	a := w.coalesced(pc, (tileBase+w.posInTile)%w.footprint, 4, false, 12)
	w.posInTile += chunk
	if w.posInTile >= w.tileBytes {
		w.posInTile = 0
		if !w.readingA {
			w.passes++
			if w.passes >= w.passesMax {
				w.tileIndex++
				w.setTile()
			}
		}
		w.readingA = !w.readingA
	}
	return a, true
}

// stencil: a 2-D 5-point sweep — each output row reads three input rows,
// so consecutive sweeps rehit the two upper rows in cache. Moderate reuse
// with perfect coalescing.
type stencil struct {
	base
	rowBytes uint64
	numRows  uint64
	row      uint64
	col      uint64
	phase    int // 0,1,2 = read north/center/south; 3 = write
}

// NewStencil builds the 2-D stencil workload.
func NewStencil(p Params) Workload {
	w := &stencil{
		base:     newBase("stencil", p),
		rowBytes: 64 << 10, // 64 KiB rows: three rows fit in L2 slices
	}
	w.numRows = w.footprint / 2 / w.rowBytes
	if w.numRows < 3 {
		w.numRows = 3
	}
	w.row = uint64(p.SMID) % w.numRows
	return w
}

// Next reads north/center/south neighbours then writes the output cell.
func (w *stencil) Next() (Access, bool) {
	if w.done() {
		return Access{}, false
	}
	chunk := uint64(WarpSize * 4)
	in := func(r uint64) uint64 { return (r % w.numRows) * w.rowBytes }
	outBase := w.footprint / 2
	var a Access
	switch w.phase {
	case 0:
		a = w.coalesced(w.pcBase+1, in(w.row)+w.col, 4, false, 3)
	case 1:
		a = w.coalesced(w.pcBase+2, in(w.row+1)+w.col, 4, false, 3)
	case 2:
		a = w.coalesced(w.pcBase+3, in(w.row+2)+w.col, 4, false, 3)
	default:
		a = w.coalesced(w.pcBase+4, (outBase+in(w.row+1)+w.col)%w.footprint, 4, true, 3)
	}
	w.phase++
	if w.phase == 4 {
		w.phase = 0
		w.col += chunk
		if w.col >= w.rowBytes {
			w.col = 0
			w.row++
		}
	}
	return a, true
}

// transpose: row-major reads, column-major writes with a large stride —
// every store touches a different cache line and DRAM row. The write path
// (partial granules, read-modify-write under protection) dominates.
type transpose struct {
	base
	dim   uint64 // matrix dimension in elements (4B)
	i, j  uint64
	phase int
}

// NewTranspose builds the strided-write workload.
func NewTranspose(p Params) Workload {
	w := &transpose{base: newBase("transpose", p)}
	// Square matrix occupying half the footprint (src), other half dst.
	elems := w.footprint / 2 / 4
	dim := uint64(1)
	for dim*dim < elems {
		dim <<= 1
	}
	dim >>= 1
	if dim < WarpSize {
		dim = WarpSize
	}
	w.dim = dim
	w.i = uint64(p.SMID)
	return w
}

// Next alternates a coalesced row read with a scattered column write: each
// thread writes one element of a column, so the 32 addresses stride by a
// full row.
func (w *transpose) Next() (Access, bool) {
	if w.done() {
		return Access{}, false
	}
	src := func(i, j uint64) uint64 { return (i*w.dim + j) * 4 }
	dstBase := w.footprint / 2
	var a Access
	if w.phase == 0 {
		a = w.coalesced(w.pcBase+1, src(w.i%w.dim, w.j)%w.footprint, 4, false, 2)
	} else {
		addrs := w.scratch()
		for t := uint64(0); t < WarpSize; t++ {
			// dst[j+t][i] — consecutive threads hit consecutive rows.
			addrs[t] = (dstBase + src(w.j+t, w.i%w.dim)) % w.footprint
		}
		a = Access{PC: w.pcBase + 2, Write: true, Addrs: addrs, Bytes: 4, ComputeWeight: 2}
	}
	w.phase ^= 1
	if w.phase == 0 {
		w.j += WarpSize
		if w.j+WarpSize > w.dim {
			w.j = 0
			w.i += uint64(1)
		}
	}
	return a, true
}

// spmv: CSR sparse matrix-vector multiply — sequential index streams plus
// power-law gathers of x[col]. The gathers are uncoalesced and reuse-poor,
// the classic cache-averse GPU pattern.
type spmv struct {
	base
	rowCursor uint64
	phase     int
}

// NewSpMV builds the sparse-gather workload.
func NewSpMV(p Params) Workload {
	return &spmv{base: newBase("spmv", p)}
}

// Next interleaves streaming column-index reads with scattered vector
// gathers: each thread gathers x at a skewed random column.
func (w *spmv) Next() (Access, bool) {
	if w.done() {
		return Access{}, false
	}
	third := w.footprint / 3
	var a Access
	if w.phase == 0 {
		// Stream the column indices.
		a = w.coalesced(w.pcBase+1, w.rowCursor%third, 4, false, 2)
		w.rowCursor += WarpSize * 4
	} else {
		// Gather x[col]: power-law skew (u^3) concentrates on hot entries,
		// as real column distributions do.
		addrs := w.scratch()
		for t := range addrs {
			u := w.rng.Float64()
			col := uint64(u * u * u * float64(third/4))
			addrs[t] = clampAddr(third+col*4, w.footprint)
		}
		a = Access{PC: w.pcBase + 2, Addrs: addrs, Bytes: 4, ComputeWeight: 4}
	}
	w.phase ^= 1
	return a, true
}

// bfs: frontier expansion — short sequential bursts (adjacency lists) at
// random offsets. Low reuse, modest spatial locality within a burst.
type bfs struct {
	base
	burstLeft int
	cursor    uint64
}

// NewBFS builds the graph-traversal workload.
func NewBFS(p Params) Workload {
	return &bfs{base: newBase("bfs", p)}
}

// Next reads 2–8 consecutive chunks per random vertex, modelling variable
// adjacency-list lengths.
func (w *bfs) Next() (Access, bool) {
	if w.done() {
		return Access{}, false
	}
	if w.burstLeft == 0 {
		w.burstLeft = 2 + w.rng.Intn(7)
		w.cursor = clampAddr(w.rng.Uint64(), w.footprint)
		w.cursor -= w.cursor % 128
	}
	a := w.coalesced(w.pcBase+1, w.cursor%w.footprint, 4, false, 3)
	w.cursor += WarpSize * 4
	w.burstLeft--
	return a, true
}

// ptrchase: dependent random chasing — one sector at a time, each access
// blocking the next. Pure latency sensitivity; protection-added latency
// shows up 1:1.
type ptrchase struct {
	base
	cur uint64
}

// NewPtrChase builds the dependent-chase workload.
func NewPtrChase(p Params) Workload {
	w := &ptrchase{base: newBase("ptrchase", p)}
	w.cur = clampAddr(w.rng.Uint64(), w.footprint)
	return w
}

// Next emits one dependent single-sector access; all threads load the same
// node (a linked-list traversal).
func (w *ptrchase) Next() (Access, bool) {
	if w.done() {
		return Access{}, false
	}
	addrs := w.scratch()
	node := w.cur - w.cur%32
	for t := range addrs {
		addrs[t] = node + uint64(t%8)*4
	}
	w.cur = clampAddr(w.rng.Uint64(), w.footprint)
	return Access{PC: w.pcBase + 1, Addrs: addrs, Bytes: 4, ComputeWeight: 1, Dependent: true}, true
}

// random: uniform uncoalesced loads — every thread a random sector.
// Worst case for every cache and for redundancy reuse.
type random struct {
	base
}

// NewRandom builds the uniform-random workload.
func NewRandom(p Params) Workload {
	return &random{base: newBase("random", p)}
}

// Next emits 32 independent random addresses.
func (w *random) Next() (Access, bool) {
	if w.done() {
		return Access{}, false
	}
	addrs := w.scratch()
	for t := range addrs {
		addrs[t] = clampAddr(w.rng.Uint64(), w.footprint)
	}
	return Access{PC: w.pcBase + 1, Addrs: addrs, Bytes: 4, ComputeWeight: 2}, true
}

// histogram: streaming reads plus random read-modify-write updates into a
// small table — write-heavy with poor write locality; the protection
// read-modify-write path dominates.
type histogram struct {
	base
	cursor uint64
	phase  int
}

// NewHistogram builds the scattered-update workload.
func NewHistogram(p Params) Workload {
	return &histogram{base: newBase("histogram", p)}
}

// Next alternates a streaming read of input with a scattered 4B store into
// a 2 MiB bucket table.
func (w *histogram) Next() (Access, bool) {
	if w.done() {
		return Access{}, false
	}
	table := uint64(2 << 20)
	var a Access
	if w.phase == 0 {
		a = w.coalesced(w.pcBase+1, (table+w.cursor)%w.footprint, 4, false, 2)
		w.cursor += WarpSize * 4
	} else {
		addrs := w.scratch()
		for t := range addrs {
			addrs[t] = clampAddr(w.rng.Uint64()%table, w.footprint)
		}
		a = Access{PC: w.pcBase + 2, Write: true, Addrs: addrs, Bytes: 4, ComputeWeight: 2}
	}
	w.phase ^= 1
	return a, true
}
