package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	for _, name := range Names() {
		p := DefaultParams(0, 4, 9)
		p.Accesses = 150
		orig, _ := Build(name, p)

		var buf bytes.Buffer
		n, err := Record(orig, &buf)
		if err != nil {
			t.Fatalf("%s: record: %v", name, err)
		}
		if n != p.Accesses {
			t.Fatalf("%s: recorded %d", name, n)
		}

		replay, err := NewReplayer(name, &buf, p.FootprintBytes)
		if err != nil {
			t.Fatal(err)
		}
		fresh, _ := Build(name, p)
		count := 0
		for {
			want, okW := fresh.Next()
			got, okG := replay.Next()
			if okW != okG {
				t.Fatalf("%s: stream lengths differ at %d", name, count)
			}
			if !okW {
				break
			}
			if got.PC != want.PC || got.Write != want.Write ||
				got.Dependent != want.Dependent || got.Bytes != want.Bytes ||
				got.ComputeWeight != want.ComputeWeight || len(got.Addrs) != len(want.Addrs) {
				t.Fatalf("%s: access %d metadata differs: %+v vs %+v", name, count, got, want)
			}
			for i := range want.Addrs {
				if got.Addrs[i] != want.Addrs[i] {
					t.Fatalf("%s: access %d addr %d: %#x vs %#x",
						name, count, i, got.Addrs[i], want.Addrs[i])
				}
			}
			count++
		}
		if err := replay.Err(); err != nil {
			t.Fatalf("%s: replay error: %v", name, err)
		}
	}
}

func TestReplayerRejectsBadMagic(t *testing.T) {
	if _, err := NewReplayer("x", bytes.NewReader([]byte("NOTATRACE123")), 1<<20); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReplayer("x", bytes.NewReader(nil), 1<<20); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReplayerDetectsTruncation(t *testing.T) {
	p := DefaultParams(0, 1, 1)
	p.Accesses = 10
	w, _ := Build("stream", p)
	var buf bytes.Buffer
	if _, err := Record(w, &buf); err != nil {
		t.Fatal(err)
	}
	// Chop the last few bytes.
	data := buf.Bytes()[:buf.Len()-3]
	replay, err := NewReplayer("x", bytes.NewReader(data), p.FootprintBytes)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := replay.Next(); !ok {
			break
		}
	}
	if replay.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestReplayerRejectsOutOfFootprintAddresses(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Access{PC: 1, Bytes: 4, Addrs: []uint64{1 << 40}}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	replay, err := NewReplayer("x", &buf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := replay.Next(); ok {
		t.Fatal("out-of-footprint address accepted")
	}
	if replay.Err() == nil {
		t.Fatal("no error reported")
	}
}

func TestWriterRejectsEmptyAccess(t *testing.T) {
	tw, err := NewWriter(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Access{}); err == nil {
		t.Fatal("empty access accepted")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceIsCompact(t *testing.T) {
	// Delta encoding should keep coalesced accesses small: a stream access
	// (32 ascending addresses) must average well under 8 bytes/address.
	p := DefaultParams(0, 1, 1)
	p.Accesses = 1000
	w, _ := Build("stream", p)
	var buf bytes.Buffer
	if _, err := Record(w, &buf); err != nil {
		t.Fatal(err)
	}
	perAddr := float64(buf.Len()) / float64(1000*WarpSize)
	if perAddr > 2.0 {
		t.Fatalf("trace too large: %.2f bytes/address", perAddr)
	}
}

func TestReplayerAccessors(t *testing.T) {
	p := DefaultParams(0, 1, 1)
	p.Accesses = 3
	w, _ := Build("stream", p)
	var buf bytes.Buffer
	if _, err := Record(w, &buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReplayer("mytrace", &buf, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "mytrace" {
		t.Fatalf("name = %q", r.Name())
	}
	if r.Footprint() != 12345 {
		t.Fatalf("footprint = %d", r.Footprint())
	}
}

func TestWorkloadFootprintAccessor(t *testing.T) {
	p := DefaultParams(0, 1, 1)
	w, _ := Build("bfs", p)
	if w.Footprint() != p.FootprintBytes {
		t.Fatalf("footprint = %d", w.Footprint())
	}
}

// errWriter fails after n bytes, exercising writer error paths.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	if len(p) > e.n {
		p = p[:e.n]
	}
	e.n -= len(p)
	return len(p), nil
}

func TestWriterPropagatesIOErrors(t *testing.T) {
	if _, err := NewWriter(&errWriter{n: 2}); err == nil {
		// Header is buffered; the error may surface at flush instead.
		w, _ := NewWriter(&errWriter{n: 2})
		if w != nil {
			_ = w.Write(Access{PC: 1, Bytes: 4, Addrs: []uint64{0}})
			if err := w.Flush(); err == nil {
				t.Fatal("flush on a failing writer must error")
			}
		}
	}
}

func TestReplayerTruncatedMidRecordVariants(t *testing.T) {
	// Build one valid record, then truncate at several byte offsets; every
	// cut must surface an error, never a bogus access.
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Access{PC: 7, Write: true, Bytes: 4, ComputeWeight: 2,
		Addrs: []uint64{100, 200, 300}}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 9; cut < len(full); cut++ { // keep the 8-byte magic intact
		r, err := NewReplayer("x", bytes.NewReader(full[:cut]), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := r.Next(); ok {
			t.Fatalf("cut at %d yielded an access", cut)
		}
		if r.Err() == nil && cut > 9 {
			// A cut exactly at the record boundary reads as clean EOF;
			// everything shorter must error.
			if cut < len(full) {
				t.Fatalf("cut at %d silently ended", cut)
			}
		}
	}
}
