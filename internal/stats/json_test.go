package stats

import (
	"encoding/json"
	"testing"
)

func TestCountersJSONRoundTrip(t *testing.T) {
	c := NewCounters()
	c.Add("zeta", 3)
	c.Add("alpha", 1)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"alpha":1,"zeta":3}` {
		t.Fatalf("json = %s", data)
	}
	back := NewCounters()
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.Get("alpha") != 1 || back.Get("zeta") != 3 {
		t.Fatalf("round trip lost values: %s", back)
	}
	names := back.Names()
	if len(names) != 2 || names[0] != "alpha" {
		t.Fatalf("restored order: %v", names)
	}
}

func TestCountersJSONRejectsGarbage(t *testing.T) {
	c := NewCounters()
	if err := json.Unmarshal([]byte(`[1,2]`), c); err == nil {
		t.Fatal("array accepted as counters")
	}
}
