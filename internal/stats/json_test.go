package stats

import (
	"encoding/json"
	"testing"
)

func TestCountersJSONRoundTrip(t *testing.T) {
	c := NewCounters()
	c.Add("zeta", 3)
	c.Add("alpha", 1)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"zeta":3,"alpha":1}` {
		t.Fatalf("json = %s, want creation order preserved", data)
	}
	back := NewCounters()
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.Get("alpha") != 1 || back.Get("zeta") != 3 {
		t.Fatalf("round trip lost values: %s", back)
	}
	names := back.Names()
	if len(names) != 2 || names[0] != "zeta" || names[1] != "alpha" {
		t.Fatalf("round trip reordered counters: %v", names)
	}
}

// TestCountersJSONOrderSurvivesDoubleRoundTrip guards the property the
// persistent store depends on: marshal → unmarshal → marshal must be
// byte-identical, so renderers see the same counter order on a store hit
// as on a fresh simulation.
func TestCountersJSONOrderSurvivesDoubleRoundTrip(t *testing.T) {
	c := NewCounters()
	for _, name := range []string{"writes", "reads", "evictions", "appends", "misses"} {
		c.Add(name, uint64(len(name)))
	}
	first, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	back := NewCounters()
	if err := json.Unmarshal(first, back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("double round trip changed encoding:\n first: %s\nsecond: %s", first, second)
	}
	if back.String() != c.String() {
		t.Fatalf("rendering differs after round trip:\nwant %q\n got %q", c.String(), back.String())
	}
}

func TestCountersJSONRejectsGarbage(t *testing.T) {
	c := NewCounters()
	if err := json.Unmarshal([]byte(`[1,2]`), c); err == nil {
		t.Fatal("array accepted as counters")
	}
	if err := json.Unmarshal([]byte(`{"a":"x"}`), c); err == nil {
		t.Fatal("string value accepted as counter")
	}
	if err := json.Unmarshal([]byte(`{"a":-1}`), c); err == nil {
		t.Fatal("negative value accepted as counter")
	}
}

func TestCountersJSONIntoZeroValue(t *testing.T) {
	// The decoder may hand UnmarshalJSON a zero-value Counters (no
	// NewCounters); it must still work.
	var c Counters
	if err := json.Unmarshal([]byte(`{"b":2,"a":1}`), &c); err != nil {
		t.Fatal(err)
	}
	if c.Get("b") != 2 || c.Get("a") != 1 {
		t.Fatalf("values lost: %s", &c)
	}
	if names := c.Names(); len(names) != 2 || names[0] != "b" {
		t.Fatalf("order lost: %v", names)
	}
}
