// Package stats collects and renders simulation statistics: named counters,
// distributions, and the table/CSV renderers used by the benchmark harness
// to print paper-style rows.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is a set of named uint64 counters. The zero value is ready to
// use after NewCounters; use that constructor so the map exists.
type Counters struct {
	values map[string]uint64
	order  []string
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{values: make(map[string]uint64)}
}

// Add increments the named counter by delta, creating it at zero first if
// needed. Creation order is remembered for stable rendering.
func (c *Counters) Add(name string, delta uint64) {
	if _, ok := c.values[name]; !ok {
		c.order = append(c.order, name)
	}
	c.values[name] += delta
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get reports the counter's value (zero if never touched).
func (c *Counters) Get(name string) uint64 { return c.values[name] }

// Set overwrites the counter's value.
func (c *Counters) Set(name string, v uint64) {
	if _, ok := c.values[name]; !ok {
		c.order = append(c.order, name)
	}
	c.values[name] = v
}

// Names returns the counter names in creation order.
func (c *Counters) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Merge adds every counter from other into c.
func (c *Counters) Merge(other *Counters) {
	for _, name := range other.order {
		c.Add(name, other.values[name])
	}
}

// Ratio returns numerator/denominator over two counters, or 0 when the
// denominator is zero.
func (c *Counters) Ratio(num, den string) float64 {
	d := c.Get(den)
	if d == 0 {
		return 0
	}
	return float64(c.Get(num)) / float64(d)
}

// String renders the counters as "name=value" lines in creation order.
func (c *Counters) String() string {
	var b strings.Builder
	for _, name := range c.order {
		fmt.Fprintf(&b, "%s=%d\n", name, c.values[name])
	}
	return b.String()
}

// Geomean returns the geometric mean of xs, ignoring non-positive entries.
// It returns 0 when no positive entries exist.
func Geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram is a fixed-bucket histogram over uint64 samples.
type Histogram struct {
	bounds []uint64 // ascending upper bounds; final bucket is overflow
	counts []uint64
	total  uint64
	sum    uint64
	max    uint64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. A sample lands in the first bucket whose bound is >= sample; the
// implicit final bucket catches everything larger.
func NewHistogram(bounds ...uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[idx]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the average of all observed samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max reports the largest observed sample.
func (h *Histogram) Max() uint64 { return h.max }

// Buckets returns (upperBound, count) pairs; the final pair has bound
// math.MaxUint64 for the overflow bucket.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, 0, len(h.counts))
	for i, c := range h.counts {
		bound := uint64(math.MaxUint64)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		out = append(out, BucketCount{Bound: bound, Count: c})
	}
	return out
}

// BucketCount is one histogram bucket.
type BucketCount struct {
	Bound uint64
	Count uint64
}

// Percentile returns an upper bound for the p-th percentile (0..100) using
// bucket boundaries. It returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}
