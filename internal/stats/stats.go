// Package stats collects and renders simulation statistics: named counters,
// distributions, and the table/CSV renderers used by the benchmark harness
// to print paper-style rows.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is a set of named uint64 counters. The zero value is ready to
// use after NewCounters; use that constructor so the map exists.
//
// Internally values live in a dense slice indexed through a name→slot map,
// so hot paths can pre-resolve a Handle once and then update the slot with
// no map traffic at all. Registration order is remembered (and is what the
// renderers and the result store's JSON encoding iterate in), so handles
// resolve lazily on first use — pre-registering at construction would
// change the order.
type Counters struct {
	index map[string]int32
	vals  []uint64
	order []string
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{index: make(map[string]int32)}
}

// slot returns the value index for name, registering it (in creation
// order) on first touch.
func (c *Counters) slot(name string) int32 {
	if i, ok := c.index[name]; ok {
		return i
	}
	i := int32(len(c.vals))
	c.index[name] = i
	c.vals = append(c.vals, 0)
	c.order = append(c.order, name)
	return i
}

// Add increments the named counter by delta, creating it at zero first if
// needed. Creation order is remembered for stable rendering.
func (c *Counters) Add(name string, delta uint64) {
	c.vals[c.slot(name)] += delta
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get reports the counter's value (zero if never touched).
func (c *Counters) Get(name string) uint64 {
	if i, ok := c.index[name]; ok {
		return c.vals[i]
	}
	return 0
}

// Set overwrites the counter's value.
func (c *Counters) Set(name string, v uint64) {
	c.vals[c.slot(name)] = v
}

// Handle is a pre-resolved reference to one counter, for hot paths that
// bump the same counter millions of times. Resolution is deferred to the
// first Add/Inc so that taking a handle at construction does not disturb
// the counter set's creation order; after that every update is a slice
// store. A Handle must be used through a pointer (the resolved slot is
// cached in place) and is only valid for the Counters it was created from.
type Handle struct {
	c    *Counters
	name string
	slot int32 // resolved slot + 1; 0 means unresolved
}

// Handle returns a lazily-resolving handle for the named counter.
func (c *Counters) Handle(name string) Handle {
	return Handle{c: c, name: name}
}

// Add increments the handle's counter by delta.
func (h *Handle) Add(delta uint64) {
	if h.slot == 0 {
		h.slot = h.c.slot(h.name) + 1
	}
	h.c.vals[h.slot-1] += delta
}

// Inc increments the handle's counter by one.
func (h *Handle) Inc() { h.Add(1) }

// Names returns the counter names in creation order.
func (c *Counters) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Merge adds every counter from other into c.
func (c *Counters) Merge(other *Counters) {
	for i, name := range other.order {
		c.Add(name, other.vals[i])
	}
}

// Ratio returns numerator/denominator over two counters, or 0 when the
// denominator is zero.
func (c *Counters) Ratio(num, den string) float64 {
	d := c.Get(den)
	if d == 0 {
		return 0
	}
	return float64(c.Get(num)) / float64(d)
}

// String renders the counters as "name=value" lines in creation order.
func (c *Counters) String() string {
	var b strings.Builder
	for i, name := range c.order {
		fmt.Fprintf(&b, "%s=%d\n", name, c.vals[i])
	}
	return b.String()
}

// Geomean returns the geometric mean of xs, ignoring non-positive entries.
// It returns 0 when no positive entries exist.
func Geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram is a fixed-bucket histogram over uint64 samples.
type Histogram struct {
	bounds []uint64 // ascending upper bounds; final bucket is overflow
	counts []uint64
	total  uint64
	sum    uint64
	max    uint64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. A sample lands in the first bucket whose bound is >= sample; the
// implicit final bucket catches everything larger.
func NewHistogram(bounds ...uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[idx]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the average of all observed samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max reports the largest observed sample.
func (h *Histogram) Max() uint64 { return h.max }

// Buckets returns (upperBound, count) pairs; the final pair has bound
// math.MaxUint64 for the overflow bucket.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, 0, len(h.counts))
	for i, c := range h.counts {
		bound := uint64(math.MaxUint64)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		out = append(out, BucketCount{Bound: bound, Count: c})
	}
	return out
}

// BucketCount is one histogram bucket.
type BucketCount struct {
	Bound uint64
	Count uint64
}

// Percentile returns an upper bound for the p-th percentile (0..100) using
// bucket boundaries. It returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}
