package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("b", 10)
	c.Inc("a")
	if c.Get("a") != 2 || c.Get("b") != 10 {
		t.Fatalf("got a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter should read zero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestCountersMerge(t *testing.T) {
	a := NewCounters()
	a.Add("x", 1)
	a.Add("y", 2)
	b := NewCounters()
	b.Add("y", 3)
	b.Add("z", 4)
	a.Merge(b)
	if a.Get("x") != 1 || a.Get("y") != 5 || a.Get("z") != 4 {
		t.Fatalf("merge wrong: %s", a)
	}
}

func TestCountersMergeOrder(t *testing.T) {
	// Merge keeps the destination's creation order and appends only the
	// names it has never seen, in the source's order — the property the
	// obs registry snapshot relies on for stable rendering.
	a := NewCounters()
	a.Add("x", 1)
	a.Add("y", 2)
	b := NewCounters()
	b.Add("z", 3)
	b.Add("y", 4)
	b.Add("w", 5)
	a.Merge(b)
	got := a.Names()
	want := []string{"x", "y", "z", "w"}
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestCountersMergeEmptyAndSelf(t *testing.T) {
	a := NewCounters()
	a.Add("x", 2)
	a.Merge(NewCounters()) // no-op
	if a.Get("x") != 2 || len(a.Names()) != 1 {
		t.Fatalf("merge of empty changed a: %s", a)
	}
	empty := NewCounters()
	empty.Merge(a) // merge into empty copies values and order
	if empty.Get("x") != 2 || len(empty.Names()) != 1 {
		t.Fatalf("merge into empty: %s", empty)
	}
	a.Merge(a) // self-merge doubles every counter but keeps the name set
	if a.Get("x") != 4 || len(a.Names()) != 1 {
		t.Fatalf("self-merge: %s", a)
	}
}

func TestCountersRatio(t *testing.T) {
	c := NewCounters()
	c.Add("hit", 3)
	c.Add("access", 4)
	if r := c.Ratio("hit", "access"); r != 0.75 {
		t.Fatalf("ratio = %v, want 0.75", r)
	}
	if r := c.Ratio("hit", "nothing"); r != 0 {
		t.Fatalf("ratio with zero denominator = %v, want 0", r)
	}
}

func TestCountersSet(t *testing.T) {
	c := NewCounters()
	c.Set("v", 42)
	c.Set("v", 7)
	if c.Get("v") != 7 {
		t.Fatalf("set = %d, want 7", c.Get("v"))
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean(1,4) = %v, want 2", got)
	}
	if Geomean(nil) != 0 {
		t.Fatal("geomean of empty must be 0")
	}
	// Non-positive entries are ignored.
	got = Geomean([]float64{0, -3, 8, 2})
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("geomean ignoring nonpositive = %v, want 4", got)
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r) + 1 // strictly positive
			xs = append(xs, v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(xs) == 0 {
			return Geomean(xs) == 0
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty must be 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v, want 2", m)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []uint64{5, 10, 11, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	b := h.Buckets()
	if len(b) != 4 {
		t.Fatalf("bucket count = %d, want 4", len(b))
	}
	wantCounts := []uint64{2, 1, 1, 1}
	for i, bc := range b {
		if bc.Count != wantCounts[i] {
			t.Fatalf("bucket %d count = %d, want %d", i, bc.Count, wantCounts[i])
		}
	}
	if h.Max() != 5000 {
		t.Fatalf("max = %d", h.Max())
	}
	if m := h.Mean(); math.Abs(m-1105.2) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for i := 0; i < 100; i++ {
		h.Observe(uint64(i % 40))
	}
	if p := h.Percentile(1); p != 10 {
		t.Fatalf("p1 = %d, want 10", p)
	}
	if p := h.Percentile(100); p != 39 {
		t.Fatalf("p100 = %d, want max 39", p)
	}
	empty := NewHistogram(10)
	if empty.Percentile(50) != 0 {
		t.Fatal("empty histogram percentile must be 0")
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := NewHistogram(100, 10)
	h.Observe(5)
	b := h.Buckets()
	if b[0].Bound != 10 || b[0].Count != 1 {
		t.Fatalf("bounds not sorted: %+v", b)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("b")
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha  1") {
		t.Fatalf("missing aligned row:\n%s", out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
}

// TestTableAddRowPadsShortAndRejectsLong: short rows are padded with
// empty cells, but a row wider than the header panics instead of silently
// dropping cells (which would print values under the wrong columns).
func TestTableAddRowPadsShortAndRejectsLong(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.AddRow("only")
	if got := tab.rows[0]; len(got) != 2 || got[0] != "only" || got[1] != "" {
		t.Fatalf("short row not padded: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow with more cells than headers did not panic")
		}
	}()
	tab.AddRow("x", "y", "overflow")
}

func TestTableAddRowfFormatsFloats(t *testing.T) {
	tab := NewTable("", "w", "x")
	tab.AddRowf("a", 0.123456)
	if !strings.Contains(tab.String(), "0.123") {
		t.Fatalf("float not formatted:\n%s", tab.String())
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("x,y", `say "hi"`)
	var b strings.Builder
	tab.RenderCSV(&b)
	out := b.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
}
