package stats

import (
	"encoding/json"
	"sort"
)

// MarshalJSON renders the counters as a JSON object with sorted keys, so
// simulation results can be exported to external tooling.
func (c *Counters) MarshalJSON() ([]byte, error) {
	// Sorted copy for stable output.
	keys := make([]string, 0, len(c.values))
	for k := range c.values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]uint64, len(keys))
	for _, k := range keys {
		ordered[k] = c.values[k]
	}
	return json.Marshal(ordered)
}

// UnmarshalJSON restores counters from their JSON object form. Creation
// order becomes key-sorted order.
func (c *Counters) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	c.values = make(map[string]uint64, len(m))
	c.order = c.order[:0]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c.Set(k, m[k])
	}
	return nil
}
