package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// MarshalJSON renders the counters as a JSON object whose keys appear in
// creation order, so exporting and re-importing a counter set (e.g.
// through the persistent result store) preserves the order every renderer
// relies on.
func (c *Counters) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, k := range c.order {
		if i > 0 {
			b.WriteByte(',')
		}
		key, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		b.Write(key)
		b.WriteByte(':')
		fmt.Fprintf(&b, "%d", c.vals[i])
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON restores counters from their JSON object form, preserving
// the order in which keys appear in the document (which MarshalJSON made
// the creation order). A duplicate key keeps its first position and takes
// the last value, matching encoding/json's map behaviour.
func (c *Counters) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if tok != json.Delim('{') {
		return fmt.Errorf("stats: counters must be a JSON object, got %v", tok)
	}
	c.index = make(map[string]int32)
	c.vals = c.vals[:0]
	c.order = c.order[:0]
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		key, ok := tok.(string)
		if !ok {
			return fmt.Errorf("stats: non-string counter key %v", tok)
		}
		var v uint64
		if err := dec.Decode(&v); err != nil {
			return err
		}
		c.Set(key, v)
	}
	if _, err := dec.Token(); err != nil {
		return err
	}
	return nil
}
