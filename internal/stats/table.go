package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of strings and renders them with aligned columns,
// in the style of a paper table. It also knows how to emit CSV.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Shorter rows are padded with empty cells; a row
// with more cells than headers panics — silently dropping the overflow
// would hide experiment bugs (a value printed under the wrong column, or
// not at all).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("stats: AddRow given %d cells for %d columns (table %q, row %q)",
			len(cells), len(t.headers), t.title, strings.Join(cells, " | ")))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of plain values, one per column: float32/float64
// render as %.3f, everything else with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case float32:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprintf("%v", c))
		}
	}
	t.AddRow(row...)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// CSVWriter wraps a writer to request CSV output from Render: rendering
// code (the experiment harness) stays format-agnostic while callers (the
// sweep CLI's -csv flag) choose the representation.
type CSVWriter struct{ io.Writer }

// Render writes the table to w: aligned text normally, or CSV when w is a
// CSVWriter.
func (t *Table) Render(w io.Writer) {
	if c, ok := w.(CSVWriter); ok {
		if t.title != "" {
			fmt.Fprintf(c.Writer, "# %s\n", t.title)
		}
		t.RenderCSV(c.Writer)
		return
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// RenderCSV writes the table as CSV (headers first) to w. Cells containing
// commas or quotes are quoted per RFC 4180.
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.headers)
	for _, row := range t.rows {
		writeCSVRow(w, row)
	}
}

// String renders the aligned-text form of the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}
