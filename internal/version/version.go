// Package version pins the identity of the simulator for artifacts that
// outlive a process, most importantly the persistent result store: a
// stored result is only reusable if it was produced by the same module at
// the same simulation-semantics revision.
package version

// Module is the module identity baked into persistent-store fingerprints.
const Module = "cachecraft"

// SimRevision names the current revision of the simulation semantics.
// Bump it in any change that alters simulation results (timing model,
// workload generation, protection schemes, ...); doing so changes every
// store fingerprint, so stale results from older simulator logic can
// never be served as hits. Pure refactors and harness changes do not
// require a bump.
//
// History:
//
//	r4: per-SM workload RNG streams derive from a splitmix64 mix instead
//	    of the collision-prone linear form; CacheCraft's write-buffer
//	    drain flushes in address order instead of map order; zero-latency
//	    ECC decodes complete inline instead of through the event queue.
//	r3: unified telemetry release.
const SimRevision = "r4"

// String returns the combined identity, e.g. "cachecraft@r4".
func String() string { return Module + "@" + SimRevision }
