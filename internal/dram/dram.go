// Package dram models a GDDR6-like GPU memory system: multiple channels,
// banks with open-row policy, FR-FCFS-style scheduling, and a
// bandwidth-limited data bus per channel. Timing is first-order — the
// parameters that matter for the protection study are row hit vs miss cost
// and bus occupancy per burst, not the full DDR state machine.
package dram

import (
	"fmt"
	"sort"

	"cachecraft/internal/mem"
	"cachecraft/internal/obs"
	"cachecraft/internal/sim"
	"cachecraft/internal/stats"
)

// Config sizes and times the memory system. All latencies are in core
// cycles.
type Config struct {
	Channels        int
	BanksPerChannel int
	RowBytes        int
	// ChannelInterleaveBytes is the stripe width across channels.
	ChannelInterleaveBytes int

	TRCD   sim.Cycle // activate → column command
	TRP    sim.Cycle // precharge
	TCAS   sim.Cycle // column access
	TBurst sim.Cycle // data bus occupancy per 32B transfer
	TCmd   sim.Cycle // command-issue gap: one command per TCmd per channel

	// Refresh: every TREFI cycles the whole channel stalls for TRFC and
	// all rows close. TREFI of 0 disables refresh.
	TREFI sim.Cycle
	TRFC  sim.Cycle

	// SchedulerWindow is how deep FR-FCFS looks for a row hit.
	SchedulerWindow int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.BanksPerChannel <= 0 || c.RowBytes <= 0:
		return fmt.Errorf("dram: sizes must be positive: %+v", c)
	case c.ChannelInterleaveBytes <= 0:
		return fmt.Errorf("dram: channel interleave must be positive")
	case c.SchedulerWindow <= 0 || c.TCmd <= 0:
		return fmt.Errorf("dram: scheduler window and command gap must be positive")
	case c.TREFI > 0 && c.TRFC <= 0:
		return fmt.Errorf("dram: refresh enabled but TRFC is zero")
	case c.TREFI > 0 && c.TRFC >= c.TREFI:
		return fmt.Errorf("dram: TRFC %d must be below TREFI %d", c.TRFC, c.TREFI)
	}
	return nil
}

// DefaultConfig models a mid-size GDDR6 part at a 1:1 core:memory clock
// abstraction.
func DefaultConfig() Config {
	return Config{
		Channels:               8,
		BanksPerChannel:        16,
		RowBytes:               2048,
		ChannelInterleaveBytes: 256,
		TRCD:                   24,
		TRP:                    24,
		TCAS:                   24,
		TBurst:                 4,
		TCmd:                   2,
		TREFI:                  3900,
		TRFC:                   350,
		SchedulerWindow:        16,
	}
}

type pendingReq struct {
	req     mem.Request
	arrival sim.Cycle
	row     int64 // decoded once at submit; FR-FCFS scans compare it often
}

// bank holds its own FIFO request queue (with a head index so dequeues are
// O(1) and in-window promotions are O(window)).
type bank struct {
	openRow int64 // -1 when closed
	readyAt sim.Cycle
	queue   []pendingReq
	head    int
}

func (b *bank) pending() int { return len(b.queue) - b.head }

func (b *bank) push(pr pendingReq) { b.queue = append(b.queue, pr) }

// removeAt extracts the request at absolute index i (>= head), shifting
// the intervening entries to preserve arrival order.
func (b *bank) removeAt(i int) pendingReq {
	pr := b.queue[i]
	copy(b.queue[b.head+1:i+1], b.queue[b.head:i])
	b.queue[b.head] = pendingReq{}
	b.head++
	if b.head == len(b.queue) {
		// Empty: rewind so pushes reuse the slots instead of growing the
		// backing array forever.
		b.queue = b.queue[:0]
		b.head = 0
	} else if b.head > 1024 && b.head*2 > len(b.queue) {
		n := copy(b.queue, b.queue[b.head:])
		b.queue = b.queue[:n]
		b.head = 0
	}
	return pr
}

type channel struct {
	id          int
	banks       []bank
	bus         *sim.Resource
	rr          int // round-robin pointer over banks
	nextRefresh sim.Cycle

	// Scheduler arming state: one wake event is outstanding at a time;
	// re-arming earlier supersedes it via the generation counter.
	armGen  uint64
	armed   bool
	armedAt sim.Cycle
	nextCmd sim.Cycle // command-pacing: no two issues within TCmd
}

// Hook observes the memory system's scheduling decisions for the
// invariant-audit layer. Serviced reports the state the scheduler saw
// before mutating it (the open row and bank-ready cycle at pick time), so
// an observer can maintain shadow state and flag illegal transitions.
type Hook interface {
	// Submitted fires when a request enters a bank queue.
	Submitted(now sim.Cycle, req mem.Request, ch, bk int, row int64)
	// Serviced fires when the scheduler dispatches a request. openBefore
	// and readyBefore are the bank's open row and ready cycle at dispatch.
	Serviced(now sim.Cycle, req mem.Request, ch, bk int, row, openBefore int64, readyBefore sim.Cycle)
	// Refreshed fires once per refresh interval served on a channel; all
	// of the channel's rows close.
	Refreshed(now sim.Cycle, ch int)
}

// DRAM is the memory system. It is driven by the shared event engine.
type DRAM struct {
	cfg     Config
	eng     *sim.Engine
	chans   []*channel
	hook    Hook
	Stats   *stats.Counters
	LatHist *stats.Histogram

	// Pre-resolved counter handles for the per-request hot path (lazy, so
	// the Stats creation order still follows first touch). stClassBytes is
	// indexed by mem.Class and avoids building "bytes_<class>" strings on
	// every submit.
	stRequests     stats.Handle
	stBytesRead    stats.Handle
	stBytesWritten stats.Handle
	stRowHits      stats.Handle
	stRowMisses    stats.Handle
	stRowConflicts stats.Handle
	stRefreshes    stats.Handle
	stClassBytes   []stats.Handle

	// Time-resolved probe series (nil = off, one branch per request).
	// prClassBytes is indexed by mem.Class like stClassBytes.
	prClassBytes []*obs.Series
	prRowHit     *obs.Series
}

// SetHook installs a scheduling observer (nil = off, one branch per
// request).
func (d *DRAM) SetHook(h Hook) { d.hook = h }

// SetProbes attaches time-resolved probe series, a separate slot from
// the audit layer's SetHook so the two compose. classBytes is indexed by
// mem.Class (Sum mode: bytes submitted per window, per traffic class);
// rowHit observes every scheduling decision (Mean mode: 1 for a row
// hit, 0 for a miss or conflict). Either may be nil.
func (d *DRAM) SetProbes(classBytes []*obs.Series, rowHit *obs.Series) {
	d.prClassBytes = classBytes
	d.prRowHit = rowHit
}

// New builds the memory system on the given engine. It panics on an
// invalid configuration (static setup).
func New(eng *sim.Engine, cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &DRAM{
		cfg:     cfg,
		eng:     eng,
		Stats:   stats.NewCounters(),
		LatHist: stats.NewHistogram(64, 128, 256, 512, 1024, 2048),
	}
	d.stRequests = d.Stats.Handle("requests")
	d.stBytesRead = d.Stats.Handle("bytes_read")
	d.stBytesWritten = d.Stats.Handle("bytes_written")
	d.stRowHits = d.Stats.Handle("row_hits")
	d.stRowMisses = d.Stats.Handle("row_misses")
	d.stRowConflicts = d.Stats.Handle("row_conflicts")
	d.stRefreshes = d.Stats.Handle("refreshes")
	for _, cl := range mem.Classes() {
		for int(cl) >= len(d.stClassBytes) {
			d.stClassBytes = append(d.stClassBytes, stats.Handle{})
		}
		d.stClassBytes[cl] = d.Stats.Handle("bytes_" + cl.String())
	}
	for i := 0; i < cfg.Channels; i++ {
		ch := &channel{id: i, bus: sim.NewResource(fmt.Sprintf("dram-ch%d", i)), nextRefresh: cfg.TREFI}
		ch.banks = make([]bank, cfg.BanksPerChannel)
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		d.chans = append(d.chans, ch)
	}
	return d
}

// Config reports the memory configuration.
func (d *DRAM) Config() Config { return d.cfg }

// route decodes a physical address into channel, bank, and row.
func (d *DRAM) route(addr uint64) (ch, bk int, row int64) {
	stripe := addr / uint64(d.cfg.ChannelInterleaveBytes)
	ch = int(stripe % uint64(d.cfg.Channels))
	// The address space seen by one channel.
	chanAddr := stripe/uint64(d.cfg.Channels)*uint64(d.cfg.ChannelInterleaveBytes) +
		addr%uint64(d.cfg.ChannelInterleaveBytes)
	rowGlobal := chanAddr / uint64(d.cfg.RowBytes)
	bk = int(rowGlobal % uint64(d.cfg.BanksPerChannel))
	row = int64(rowGlobal / uint64(d.cfg.BanksPerChannel))
	return ch, bk, row
}

// Submit enqueues a request. The request's Done callback fires at
// completion time. Reads and writes are scheduled identically (write
// latency matters because protection read-modify-writes serialize on it).
func (d *DRAM) Submit(now sim.Cycle, req mem.Request) {
	ch, bk, row := d.route(req.Addr)
	c := d.chans[ch]
	c.banks[bk].push(pendingReq{req: req, arrival: now, row: row})
	if d.hook != nil {
		d.hook.Submitted(now, req, ch, bk, row)
	}
	d.stRequests.Inc()
	if int(req.Class) < len(d.stClassBytes) {
		d.stClassBytes[req.Class].Add(uint64(req.Bytes))
	} else {
		d.Stats.Add("bytes_"+req.Class.String(), uint64(req.Bytes))
	}
	if d.prClassBytes != nil && int(req.Class) < len(d.prClassBytes) {
		d.prClassBytes[req.Class].Add(uint64(now), float64(req.Bytes))
	}
	if req.Write {
		d.stBytesWritten.Add(uint64(req.Bytes))
	} else {
		d.stBytesRead.Add(uint64(req.Bytes))
	}
	d.arm(c, now)
}

// arm schedules the channel's next scheduling step at cycle at (or the
// command-pacing boundary if later). An earlier re-arm supersedes a later
// one.
func (d *DRAM) arm(c *channel, at sim.Cycle) {
	if at < c.nextCmd {
		at = c.nextCmd
	}
	if c.armed && c.armedAt <= at {
		return
	}
	c.armed = true
	c.armedAt = at
	c.armGen++
	d.eng.Post(at, (*armHandler)(d), uint64(uint32(c.id)), c.armGen)
}

// armHandler runs a channel's scheduling step as a pooled event: a0 is the
// channel index, a1 the arming generation (a stale generation means an
// earlier re-arm superseded this wake).
type armHandler DRAM

func (h *armHandler) OnEvent(now sim.Cycle, a0, a1 uint64) {
	d := (*DRAM)(h)
	c := d.chans[a0]
	if a1 != c.armGen {
		return // superseded by an earlier arm
	}
	c.armed = false
	d.service(c, now)
}

// QueueLen reports the total queued requests (for backpressure tests).
func (d *DRAM) QueueLen() int {
	total := 0
	for _, c := range d.chans {
		for i := range c.banks {
			total += c.banks[i].pending()
		}
	}
	return total
}

// service runs one scheduling step on a channel: pick a ready bank
// (round-robin), apply FR-FCFS within that bank (oldest row hit in the
// window, else head-of-queue), model timing, and re-arm. Busy banks are
// never dispatched early — that would serialize the data bus behind one
// bank's recovery.
func (d *DRAM) service(c *channel, now sim.Cycle) {
	d.maybeRefresh(c, now)
	bk := d.pickBank(c, now)
	if bk < 0 {
		if wake, ok := d.earliestWork(c, now); ok {
			d.arm(c, wake)
		}
		return
	}
	b := &c.banks[bk]
	idx := b.head
	for i := b.head; i < len(b.queue) && i < b.head+d.cfg.SchedulerWindow; i++ {
		if b.queue[i].row == b.openRow {
			idx = i
			break
		}
	}
	pr := b.removeAt(idx)
	row := pr.row
	if d.hook != nil {
		d.hook.Serviced(now, pr.req, c.id, bk, row, b.openRow, b.readyAt)
	}

	// Split bank occupancy from access latency: a row hit issues its CAS
	// now and the bank can take the next CAS one burst later (tCCD), while
	// the data itself appears tCAS later. Activates and precharges occupy
	// the bank for their full duration. This is what lets row-hit streams
	// saturate the data bus instead of serializing CAS behind data.
	var colIssued sim.Cycle
	rowHit := 0.0
	switch {
	case b.openRow == row:
		d.stRowHits.Inc()
		rowHit = 1
		colIssued = now
	case b.openRow < 0:
		d.stRowMisses.Inc()
		colIssued = now + d.cfg.TRCD
	default:
		d.stRowConflicts.Inc()
		colIssued = now + d.cfg.TRP + d.cfg.TRCD
	}
	if d.prRowHit != nil {
		d.prRowHit.Add(uint64(now), rowHit)
	}
	b.openRow = row

	bursts := (pr.req.Bytes + 31) / 32
	if bursts == 0 {
		bursts = 1
	}
	busDur := d.cfg.TBurst * sim.Cycle(bursts)
	b.readyAt = colIssued + busDur // next CAS may follow at tCCD (≈ burst)
	busStart := c.bus.Claim(colIssued+d.cfg.TCAS, busDur)
	finish := busStart + busDur

	d.LatHist.Observe(uint64(finish - pr.arrival))
	if done := pr.req.Done; done != nil {
		d.eng.At(finish, done)
	}

	// The next command issues after the command gap, independent of this
	// request's data phase — banks overlap their activations, which is
	// what gives DRAM its bank-level parallelism.
	c.nextCmd = now + d.cfg.TCmd
	if _, ok := d.earliestWork(c, now); ok {
		d.arm(c, c.nextCmd)
	}
}

// maybeRefresh stalls the whole channel for TRFC every TREFI cycles,
// closing all rows — the periodic tax every DRAM pays.
func (d *DRAM) maybeRefresh(c *channel, now sim.Cycle) {
	if d.cfg.TREFI == 0 {
		return
	}
	for now >= c.nextRefresh {
		end := c.nextRefresh + d.cfg.TRFC
		for i := range c.banks {
			b := &c.banks[i]
			if b.readyAt < end {
				b.readyAt = end
			}
			b.openRow = -1
		}
		c.nextRefresh += d.cfg.TREFI
		d.stRefreshes.Inc()
		if d.hook != nil {
			d.hook.Refreshed(now, c.id)
		}
	}
}

// pickBank returns a ready bank with pending work, preferring (1) a ready
// bank whose open row matches its queue window (a row hit) and (2)
// round-robin order for fairness; -1 when every pending bank is busy.
func (d *DRAM) pickBank(c *channel, now sim.Cycle) int {
	n := len(c.banks)
	fallback := -1
	for off := 0; off < n; off++ {
		bk := (c.rr + off) % n
		b := &c.banks[bk]
		if b.pending() == 0 || b.readyAt > now {
			continue
		}
		// Does this bank's window contain a row hit?
		hit := false
		for i := b.head; i < len(b.queue) && i < b.head+d.cfg.SchedulerWindow; i++ {
			if b.queue[i].row == b.openRow {
				hit = true
				break
			}
		}
		if hit {
			c.rr = (bk + 1) % n
			return bk
		}
		if fallback < 0 {
			fallback = bk
		}
	}
	if fallback >= 0 {
		c.rr = (fallback + 1) % n
	}
	return fallback
}

// earliestWork reports the earliest cycle at which any bank with pending
// work could be serviced; ok is false when no work is queued.
func (d *DRAM) earliestWork(c *channel, now sim.Cycle) (sim.Cycle, bool) {
	earliest := sim.Cycle(0)
	found := false
	for i := range c.banks {
		b := &c.banks[i]
		if b.pending() == 0 {
			continue
		}
		at := b.readyAt
		if at < now {
			at = now
		}
		if !found || at < earliest {
			earliest = at
			found = true
		}
	}
	return earliest, found
}

// Drain returns true when all channels have empty queues.
func (d *DRAM) Drain() bool {
	for _, c := range d.chans {
		for i := range c.banks {
			if c.banks[i].pending() > 0 {
				return false
			}
		}
	}
	return true
}

// BusUtilization reports per-channel data bus utilization over elapsed
// cycles, sorted by channel id.
func (d *DRAM) BusUtilization(elapsed sim.Cycle) []float64 {
	out := make([]float64, len(d.chans))
	for i, c := range d.chans {
		out[i] = c.bus.Utilization(elapsed)
	}
	sort.Float64s(out)
	return out
}

// TotalBytes reports all bytes moved, by summing read and write counters.
func (d *DRAM) TotalBytes() uint64 {
	return d.Stats.Get("bytes_read") + d.Stats.Get("bytes_written")
}
