package dram

import (
	"testing"

	"cachecraft/internal/mem"
	"cachecraft/internal/sim"
)

// TestRowHitStreamSaturatesBus checks the CAS pipelining fix: a stream of
// row hits to one bank must complete at roughly one burst per TBurst, not
// one per (TCAS+TBurst).
func TestRowHitStreamSaturatesBus(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	d := New(eng, cfg)
	const n = 64
	var last sim.Cycle
	for i := 0; i < n; i++ {
		// Sequential 32B within one 256B channel stripe, then continue in
		// the same row via the same channel's next stripes.
		addr := uint64(i%8)*32 + uint64(i/8)*uint64(cfg.ChannelInterleaveBytes)*uint64(cfg.Channels)
		d.Submit(0, mem.Request{Addr: addr, Bytes: 32,
			Done: func(now sim.Cycle) { last = now }})
	}
	eng.Run(1 << 30)
	// Ideal: n bursts at TBurst each plus initial activate+CAS. Allow 2x
	// slack for scheduling quantization.
	ideal := sim.Cycle(n)*cfg.TBurst + cfg.TRCD + cfg.TCAS
	if last > 2*ideal {
		t.Fatalf("row-hit stream took %d cycles, ideal %d — CAS not pipelined", last, ideal)
	}
	if d.Stats.Get("row_hits") < n-8 {
		t.Fatalf("row hits = %d, want nearly all of %d", d.Stats.Get("row_hits"), n)
	}
}

// TestBusyBankDoesNotBlockChannel checks the per-bank queue fix: a burst
// of conflicting requests to one bank must not delay a row hit to another
// bank.
func TestBusyBankDoesNotBlockChannel(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	d := New(eng, cfg)
	// Many row conflicts on bank 0 (same channel).
	conflictStride := uint64(cfg.RowBytes) * uint64(cfg.BanksPerChannel) * uint64(cfg.Channels)
	for i := 0; i < 32; i++ {
		d.Submit(0, mem.Request{Addr: uint64(i) * conflictStride, Bytes: 32})
	}
	// One access to bank 1 of the same channel.
	bank1 := uint64(cfg.RowBytes) * uint64(cfg.Channels)
	var doneAt sim.Cycle
	d.Submit(0, mem.Request{Addr: bank1, Bytes: 32,
		Done: func(now sim.Cycle) { doneAt = now }})
	eng.Run(1 << 30)
	// The bank-1 access should finish in roughly one cold access time, not
	// behind 32 conflicts.
	coldish := 4 * (cfg.TRP + cfg.TRCD + cfg.TCAS + cfg.TBurst)
	if doneAt > coldish {
		t.Fatalf("bank-1 access finished at %d, head-of-line blocked (budget %d)", doneAt, coldish)
	}
}

// TestRoundRobinFairness: two banks with steady row-hit streams must both
// make progress (the scheduler may not starve one behind the other).
func TestRoundRobinFairness(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	d := New(eng, cfg)
	bankStride := uint64(cfg.RowBytes) * uint64(cfg.Channels)
	var done0, done1 int
	for i := 0; i < 32; i++ {
		d.Submit(0, mem.Request{Addr: uint64(i%8) * 32, Bytes: 32,
			Done: func(sim.Cycle) { done0++ }})
		d.Submit(0, mem.Request{Addr: bankStride + uint64(i%8)*32, Bytes: 32,
			Done: func(sim.Cycle) { done1++ }})
	}
	// Run only partway: both banks must have progressed.
	eng.Run(200)
	if done0 == 0 || done1 == 0 {
		t.Fatalf("starvation: bank0 %d, bank1 %d after 200 cycles", done0, done1)
	}
	eng.Run(1 << 30)
	if done0 != 32 || done1 != 32 {
		t.Fatalf("lost requests: %d/%d", done0, done1)
	}
}

// TestBankQueueCompaction exercises the head-index compaction path.
func TestBankQueueCompaction(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	d := New(eng, cfg)
	completed := 0
	for i := 0; i < 3000; i++ {
		d.Submit(0, mem.Request{Addr: uint64(i%8) * 32, Bytes: 32,
			Done: func(sim.Cycle) { completed++ }})
	}
	eng.Run(1 << 30)
	if completed != 3000 {
		t.Fatalf("completed %d of 3000", completed)
	}
	if !d.Drain() {
		t.Fatal("queue not drained")
	}
}

// TestFRFCFSWindowPromotesRowHitWithinBank: with an open row and a
// conflicting request ahead of a hit in the same bank queue, the hit is
// served first.
func TestFRFCFSWindowPromotesRowHitWithinBank(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	d := New(eng, cfg)
	conflictStride := uint64(cfg.RowBytes) * uint64(cfg.BanksPerChannel) * uint64(cfg.Channels)
	var order []string
	mk := func(name string, addr uint64) mem.Request {
		return mem.Request{Addr: addr, Bytes: 32, Done: func(sim.Cycle) {
			order = append(order, name)
		}}
	}
	d.Submit(0, mk("open", 0))                  // opens row 0
	d.Submit(0, mk("conflict", conflictStride)) // same bank, other row
	d.Submit(0, mk("hit", 64))                  // row 0 again
	eng.Run(1 << 30)
	if len(order) != 3 {
		t.Fatalf("completed %d", len(order))
	}
	if order[1] != "hit" {
		t.Fatalf("order = %v; row hit should overtake the conflict", order)
	}
}

// TestRefreshStallsChannel: a request arriving during a refresh window
// waits for TRFC; with refresh disabled it does not.
func TestRefreshStallsChannel(t *testing.T) {
	cfg := testConfig()
	cfg.TREFI = 500
	cfg.TRFC = 300
	eng := sim.NewEngine()
	d := New(eng, cfg)
	var doneAt sim.Cycle
	// Submit just after the first refresh boundary.
	eng.At(501, func(now sim.Cycle) {
		d.Submit(now, mem.Request{Addr: 0, Bytes: 32,
			Done: func(at sim.Cycle) { doneAt = at }})
	})
	eng.Run(1 << 20)
	// Refresh at 500 blocks until 800; then the cold access follows.
	min := sim.Cycle(800)
	if doneAt < min {
		t.Fatalf("done at %d, want ≥ %d (refresh ignored)", doneAt, min)
	}
	if d.Stats.Get("refreshes") == 0 {
		t.Fatal("no refreshes counted")
	}
}

// TestRefreshClosesRows: an open row is closed by refresh, so the next
// access to it is a row miss, not a hit.
func TestRefreshClosesRows(t *testing.T) {
	cfg := testConfig()
	cfg.TREFI = 1000
	cfg.TRFC = 100
	eng := sim.NewEngine()
	d := New(eng, cfg)
	d.Submit(0, mem.Request{Addr: 0, Bytes: 32})
	eng.Run(1 << 20)
	// Re-access the same row after a refresh boundary.
	eng.At(1200, func(now sim.Cycle) {
		d.Submit(now, mem.Request{Addr: 64, Bytes: 32})
	})
	eng.Run(1 << 20)
	if d.Stats.Get("row_hits") != 0 {
		t.Fatalf("row hit across refresh: %d", d.Stats.Get("row_hits"))
	}
	if d.Stats.Get("row_misses") != 2 {
		t.Fatalf("row misses = %d, want 2", d.Stats.Get("row_misses"))
	}
}
