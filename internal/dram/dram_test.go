package dram

import (
	"testing"

	"cachecraft/internal/mem"
	"cachecraft/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Channels = 2
	cfg.BanksPerChannel = 4
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero channels accepted")
	}
	bad = DefaultConfig()
	bad.TCmd = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero command gap accepted")
	}
	bad = DefaultConfig()
	bad.ChannelInterleaveBytes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero interleave accepted")
	}
}

func run(eng *sim.Engine, d *DRAM) sim.Cycle {
	return eng.Run(1 << 30)
}

func TestSingleReadLatency(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	var doneAt sim.Cycle
	d.Submit(0, mem.Request{Addr: 0, Bytes: 32, Class: mem.Demand,
		Done: func(now sim.Cycle) { doneAt = now }})
	run(eng, d)
	// Cold bank: tRCD + tCAS + one burst.
	want := testConfig().TRCD + testConfig().TCAS + testConfig().TBurst
	if doneAt != want {
		t.Fatalf("latency = %d, want %d", doneAt, want)
	}
	if d.Stats.Get("row_misses") != 1 {
		t.Fatalf("row misses = %d", d.Stats.Get("row_misses"))
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	d := New(eng, cfg)
	var hitDone, confDone sim.Cycle
	// Same row (sequential sectors) → second access is a row hit.
	d.Submit(0, mem.Request{Addr: 0, Bytes: 32})
	d.Submit(0, mem.Request{Addr: 32, Bytes: 32,
		Done: func(now sim.Cycle) { hitDone = now }})
	run(eng, d)

	eng2 := sim.NewEngine()
	d2 := New(eng2, cfg)
	// Same bank, different row → conflict. Rows within a channel advance
	// every BanksPerChannel*RowBytes in channel-local address space; with
	// 2 channels the physical stride doubles per interleave stripe.
	conflictAddr := uint64(cfg.RowBytes) * uint64(cfg.BanksPerChannel) * uint64(cfg.Channels)
	d2.Submit(0, mem.Request{Addr: 0, Bytes: 32})
	d2.Submit(0, mem.Request{Addr: conflictAddr, Bytes: 32,
		Done: func(now sim.Cycle) { confDone = now }})
	run(eng2, d2)

	if d.Stats.Get("row_hits") != 1 {
		t.Fatalf("expected a row hit, got stats: %s", d.Stats)
	}
	if d2.Stats.Get("row_conflicts") != 1 {
		t.Fatalf("expected a row conflict, got stats: %s", d2.Stats)
	}
	if hitDone >= confDone {
		t.Fatalf("row hit (%d) must complete before conflict (%d)", hitDone, confDone)
	}
}

func TestChannelInterleavingSpreadsLoad(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	d := New(eng, cfg)
	// Consecutive 256B stripes must alternate channels: issue a read into
	// each of the first 4 stripes and verify both channels saw traffic.
	for i := 0; i < 4; i++ {
		d.Submit(0, mem.Request{Addr: uint64(i * cfg.ChannelInterleaveBytes), Bytes: 32})
	}
	run(eng, d)
	util := d.BusUtilization(eng.Now())
	if util[0] == 0 {
		t.Fatal("one channel idle: interleaving broken")
	}
}

func TestBankParallelismBeatsSerialBank(t *testing.T) {
	cfg := testConfig()
	// 8 row-miss reads to 8 different banks vs 8 row-conflict reads to one
	// bank: the former must finish much earlier.
	bankStride := uint64(cfg.RowBytes) * uint64(cfg.Channels) // next bank, same channel

	engA := sim.NewEngine()
	a := New(engA, cfg)
	var lastA sim.Cycle
	for i := 0; i < 4; i++ {
		a.Submit(0, mem.Request{Addr: uint64(i) * bankStride, Bytes: 32,
			Done: func(now sim.Cycle) { lastA = now }})
	}
	run(engA, a)

	engB := sim.NewEngine()
	b := New(engB, cfg)
	var lastB sim.Cycle
	conflictStride := bankStride * uint64(cfg.BanksPerChannel)
	for i := 0; i < 4; i++ {
		b.Submit(0, mem.Request{Addr: uint64(i) * conflictStride, Bytes: 32,
			Done: func(now sim.Cycle) { lastB = now }})
	}
	run(engB, b)

	if lastA >= lastB {
		t.Fatalf("bank-parallel %d should beat serial-bank %d", lastA, lastB)
	}
}

func TestFRFCFSPrefersOpenRow(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	d := New(eng, cfg)
	var orderDone []uint64
	mk := func(addr uint64) mem.Request {
		return mem.Request{Addr: addr, Bytes: 32, Done: func(sim.Cycle) {
			orderDone = append(orderDone, addr)
		}}
	}
	conflictAddr := uint64(cfg.RowBytes) * uint64(cfg.BanksPerChannel) * uint64(cfg.Channels)
	// First opens row 0. Then a conflicting row arrives, then a row-0 hit.
	// FR-FCFS should serve the row hit before the conflict.
	d.Submit(0, mk(0))
	d.Submit(0, mk(conflictAddr))
	d.Submit(0, mk(64))
	run(eng, d)
	if len(orderDone) != 3 {
		t.Fatalf("completed %d", len(orderDone))
	}
	if orderDone[1] != 64 {
		t.Fatalf("completion order %v: row hit should overtake conflict", orderDone)
	}
}

func TestWriteCountsBytes(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	d.Submit(0, mem.Request{Addr: 0, Bytes: 32, Write: true, Class: mem.Writeback})
	d.Submit(0, mem.Request{Addr: 256, Bytes: 32, Class: mem.Demand})
	run(eng, d)
	if d.Stats.Get("bytes_written") != 32 || d.Stats.Get("bytes_read") != 32 {
		t.Fatalf("byte accounting: %s", d.Stats)
	}
	if d.Stats.Get("bytes_writeback") != 32 || d.Stats.Get("bytes_demand") != 32 {
		t.Fatalf("class accounting: %s", d.Stats)
	}
	if d.TotalBytes() != 64 {
		t.Fatalf("total = %d", d.TotalBytes())
	}
}

func TestLargeBurstOccupiesBusLonger(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	d := New(eng, cfg)
	var small, large sim.Cycle
	d.Submit(0, mem.Request{Addr: 0, Bytes: 32, Done: func(n sim.Cycle) { small = n }})
	run(eng, d)
	eng2 := sim.NewEngine()
	d2 := New(eng2, cfg)
	d2.Submit(0, mem.Request{Addr: 0, Bytes: 128, Done: func(n sim.Cycle) { large = n }})
	run(eng2, d2)
	if large != small+3*cfg.TBurst {
		t.Fatalf("128B done at %d, 32B at %d: want 3 extra bursts", large, small)
	}
}

func TestDrainAndQueueLen(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	if !d.Drain() {
		t.Fatal("fresh DRAM should be drained")
	}
	d.Submit(0, mem.Request{Addr: 0, Bytes: 32})
	if d.Drain() {
		t.Fatal("queued request should block drain")
	}
	if d.QueueLen() != 1 {
		t.Fatalf("queue len = %d", d.QueueLen())
	}
	run(eng, d)
	if !d.Drain() {
		t.Fatal("should drain after run")
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (sim.Cycle, uint64) {
		eng := sim.NewEngine()
		d := New(eng, testConfig())
		for i := 0; i < 200; i++ {
			addr := uint64(i*937) % (1 << 20)
			addr -= addr % 32
			d.Submit(sim.Cycle(i), mem.Request{Addr: addr, Bytes: 32})
		}
		end := eng.Run(1 << 30)
		return end, d.Stats.Get("row_hits")
	}
	e1, h1 := runOnce()
	e2, h2 := runOnce()
	if e1 != e2 || h1 != h2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", e1, h1, e2, h2)
	}
}

func TestLatencyHistogramPopulated(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	for i := 0; i < 10; i++ {
		d.Submit(0, mem.Request{Addr: uint64(i * 32), Bytes: 32})
	}
	run(eng, d)
	if d.LatHist.Count() != 10 {
		t.Fatalf("histogram count = %d", d.LatHist.Count())
	}
	if d.LatHist.Mean() <= 0 {
		t.Fatal("histogram mean must be positive")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config must panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}

func TestRouteCoversAllChannelsAndBanks(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	d := New(eng, cfg)
	chans := map[int]bool{}
	banks := map[[2]int]bool{}
	for a := uint64(0); a < 1<<22; a += 256 {
		ch, bk, _ := d.route(a)
		if ch < 0 || ch >= cfg.Channels || bk < 0 || bk >= cfg.BanksPerChannel {
			t.Fatalf("route(%#x) = (%d,%d) out of range", a, ch, bk)
		}
		chans[ch] = true
		banks[[2]int{ch, bk}] = true
	}
	if len(chans) != cfg.Channels {
		t.Fatalf("only %d/%d channels reached", len(chans), cfg.Channels)
	}
	if len(banks) != cfg.Channels*cfg.BanksPerChannel {
		t.Fatalf("only %d banks reached", len(banks))
	}
}

func TestRouteDeterministic(t *testing.T) {
	cfg := testConfig()
	d := New(sim.NewEngine(), cfg)
	for a := uint64(0); a < 1<<16; a += 32 {
		c1, b1, r1 := d.route(a)
		c2, b2, r2 := d.route(a)
		if c1 != c2 || b1 != b2 || r1 != r2 {
			t.Fatalf("route(%#x) not deterministic", a)
		}
	}
}

func TestCommandPacing(t *testing.T) {
	// Two row hits to different banks of one channel cannot issue in the
	// same cycle: the second is delayed by at least TCmd.
	cfg := testConfig()
	cfg.TREFI = 0 // isolate pacing
	eng := sim.NewEngine()
	d := New(eng, cfg)
	bankStride := uint64(cfg.RowBytes) * uint64(cfg.Channels)
	var first, second sim.Cycle
	d.Submit(0, mem.Request{Addr: 0, Bytes: 32, Done: func(at sim.Cycle) { first = at }})
	d.Submit(0, mem.Request{Addr: bankStride, Bytes: 32, Done: func(at sim.Cycle) { second = at }})
	eng.Run(1 << 20)
	if second < first+cfg.TCmd {
		t.Fatalf("second done %d, first %d: command gap not enforced", second, first)
	}
}
