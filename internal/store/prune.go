package store

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// PruneStats reports what one Prune pass did.
type PruneStats struct {
	Kept         int   // records left in the store
	Removed      int   // records evicted
	KeptBytes    int64 // bytes still on disk (records only)
	RemovedBytes int64 // bytes freed
}

// Prune evicts the oldest records (by modification time) until the
// store's record bytes fit within maxBytes. It never touches in-flight
// temp files (the ".tmp-*" names Put stages writes under), so it is safe
// to run concurrently with writers; a record that disappears between scan
// and removal (a concurrent pruner, or an operator's rm) is counted as
// already gone rather than an error. maxBytes <= 0 disables pruning and
// returns the current usage.
//
// Eviction is purely a capacity measure: a pruned record is a future
// cache miss, never an error, because the simulator can regenerate it.
func (s *Store) Prune(maxBytes int64) (PruneStats, error) {
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var (
		entries []entry
		total   int64
	)
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil // racing writer/pruner; skip
			}
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), ".tmp-") || !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		entries = append(entries, entry{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	if err != nil {
		return PruneStats{}, err
	}
	st := PruneStats{Kept: len(entries), KeptBytes: total}
	if maxBytes <= 0 || total <= maxBytes {
		return st, nil
	}
	// Oldest first; ties broken by path so concurrent pruners agree on
	// the eviction order.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	for _, e := range entries {
		if st.KeptBytes <= maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
			return st, err
		}
		st.Kept--
		st.Removed++
		st.KeptBytes -= e.size
		st.RemovedBytes += e.size
	}
	return st, nil
}

// StartAutoPrune launches a background goroutine that prunes the store to
// maxBytes every interval (and once immediately), reporting evictions and
// errors through logf (nil = silent). It returns an idempotent stop
// function that halts the goroutine and waits for any in-progress pass to
// finish. maxBytes <= 0 is a no-op: the returned stop function is still
// valid.
func (s *Store) StartAutoPrune(maxBytes int64, every time.Duration, logf func(format string, args ...any)) (stop func()) {
	if maxBytes <= 0 {
		return func() {}
	}
	if every <= 0 {
		every = time.Minute
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			st, err := s.Prune(maxBytes)
			switch {
			case err != nil:
				logf("store: prune: %v", err)
			case st.Removed > 0:
				logf("store: pruned %d records (%d bytes) to stay under %d bytes",
					st.Removed, st.RemovedBytes, maxBytes)
			}
			select {
			case <-done:
				return
			case <-tick.C:
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}
