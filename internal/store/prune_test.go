package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cachecraft/internal/config"
)

// putAged stores a record and backdates its mtime so eviction order is
// deterministic regardless of filesystem timestamp granularity.
func putAged(t *testing.T, s *Store, fp string, seed uint64, age time.Duration) {
	t.Helper()
	if err := s.Put(record(fp, seed)); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(s.path(fp), when, when); err != nil {
		t.Fatal(err)
	}
}

func TestPruneEvictsOldestFirst(t *testing.T) {
	s := mustOpen(t)
	fps := []string{
		Fingerprint(config.Quick(), "stream", "none"),
		Fingerprint(config.Quick(), "scan", "none"),
		Fingerprint(config.Quick(), "stream", "cachecraft"),
	}
	// Oldest record first in fps: hour-old, minute-old, fresh.
	putAged(t, s, fps[0], 1, time.Hour)
	putAged(t, s, fps[1], 2, time.Minute)
	putAged(t, s, fps[2], 3, 0)

	full, err := s.Prune(0) // report-only
	if err != nil {
		t.Fatal(err)
	}
	if full.Kept != 3 || full.Removed != 0 || full.KeptBytes <= 0 {
		t.Fatalf("report-only pass: %+v", full)
	}

	// A budget that fits exactly the newest record must keep only it.
	info, err := os.Stat(s.path(fps[2]))
	if err != nil {
		t.Fatal(err)
	}
	one := info.Size()
	st, err := s.Prune(one)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 2 || st.Kept != 1 {
		t.Fatalf("prune to %d bytes: %+v", one, st)
	}
	if st.KeptBytes+st.RemovedBytes != full.KeptBytes {
		t.Fatalf("byte accounting: %+v vs total %d", st, full.KeptBytes)
	}
	if _, ok := s.Get(fps[0]); ok {
		t.Fatal("oldest record survived prune")
	}
	if _, ok := s.Get(fps[1]); ok {
		t.Fatal("middle record survived prune")
	}
	if _, ok := s.Get(fps[2]); !ok {
		t.Fatal("newest record was evicted")
	}
}

func TestPruneUnderBudgetRemovesNothing(t *testing.T) {
	s := mustOpen(t)
	fp := Fingerprint(config.Quick(), "stream", "none")
	putAged(t, s, fp, 9, time.Hour)
	st, err := s.Prune(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 0 || st.Kept != 1 {
		t.Fatalf("under-budget prune: %+v", st)
	}
	if _, ok := s.Get(fp); !ok {
		t.Fatal("record evicted despite fitting the budget")
	}
}

// TestPruneSparesTempFiles: in-flight writes staged under .tmp-* names
// are invisible to Prune — neither counted nor removed — so a pruner
// racing Put can never destroy a write in progress.
func TestPruneSparesTempFiles(t *testing.T) {
	s := mustOpen(t)
	fp := Fingerprint(config.Quick(), "stream", "none")
	putAged(t, s, fp, 4, time.Hour)

	tmp := filepath.Join(s.dir, ".tmp-inflight-write")
	if err := os.WriteFile(tmp, []byte(strings.Repeat("x", 4096)), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-24 * time.Hour)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}

	st, err := s.Prune(1) // far under budget: every record must go
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 0 || st.Removed != 1 {
		t.Fatalf("prune: %+v", st)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("temp file was touched by prune: %v", err)
	}
}

func TestAutoPruneEnforcesBudget(t *testing.T) {
	s := mustOpen(t)
	fps := []string{
		Fingerprint(config.Quick(), "stream", "none"),
		Fingerprint(config.Quick(), "scan", "none"),
	}
	putAged(t, s, fps[0], 1, time.Hour)
	putAged(t, s, fps[1], 2, 0)

	// The first pass runs synchronously before the ticker waits, so a
	// short poll loop is only a guard against slow filesystems.
	stop := s.StartAutoPrune(1, time.Hour, nil)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := s.Prune(0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Kept == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-prune left %d records", st.Kept)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop() // idempotence with the deferred call is part of the contract
}

func TestAutoPruneDisabled(t *testing.T) {
	s := mustOpen(t)
	fp := Fingerprint(config.Quick(), "stream", "none")
	putAged(t, s, fp, 5, time.Hour)
	stop := s.StartAutoPrune(0, time.Millisecond, nil)
	time.Sleep(20 * time.Millisecond)
	stop()
	if _, ok := s.Get(fp); !ok {
		t.Fatal("maxBytes<=0 must disable pruning entirely")
	}
}
