package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"cachecraft/internal/config"
	"cachecraft/internal/version"
)

// Fingerprint computes the canonical content address of one simulation:
// the SHA-256 of the canonical JSON encoding of (simulator identity, full
// GPU configuration, workload name, scheme name). Two processes — or two
// runs of the same process — that would execute an identical simulation
// therefore agree on the fingerprint, and any difference anywhere in the
// configuration, in the workload or scheme, or in the simulator revision
// yields a different address. docs/MODEL.md documents the
// canonicalization rules.
func Fingerprint(cfg config.GPU, workload, scheme string) string {
	return fingerprint(version.String(), cfg, workload, scheme)
}

// fingerprint is Fingerprint with the simulator identity explicit, so the
// version-sensitivity of the address is testable.
func fingerprint(simID string, cfg config.GPU, workload, scheme string) string {
	payload := struct {
		Sim      string     `json:"sim"`
		Config   config.GPU `json:"config"`
		Workload string     `json:"workload"`
		Scheme   string     `json:"scheme"`
	}{simID, cfg, workload, scheme}
	// config.GPU is a tree of exported scalar fields, so struct-field
	// declaration order makes this encoding canonical and infallible.
	b, err := json.Marshal(payload)
	if err != nil {
		panic("store: fingerprint payload not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
