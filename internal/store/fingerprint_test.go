package store

import (
	"regexp"
	"testing"

	"cachecraft/internal/config"
)

func TestFingerprintDeterministic(t *testing.T) {
	a := Fingerprint(config.Default(), "stream", "cachecraft")
	b := Fingerprint(config.Default(), "stream", "cachecraft")
	if a != b {
		t.Fatalf("fingerprint not deterministic: %s vs %s", a, b)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(a) {
		t.Fatalf("fingerprint not hex sha256: %q", a)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(config.Default(), "stream", "cachecraft")
	if Fingerprint(config.Default(), "scan", "cachecraft") == base {
		t.Fatal("workload change did not change fingerprint")
	}
	if Fingerprint(config.Default(), "stream", "none") == base {
		t.Fatal("scheme change did not change fingerprint")
	}
	cfg := config.Default()
	cfg.Seed++
	if Fingerprint(cfg, "stream", "cachecraft") == base {
		t.Fatal("config change did not change fingerprint")
	}
	cfg = config.Default()
	cfg.L2.SizeBytes *= 2
	if Fingerprint(cfg, "stream", "cachecraft") == base {
		t.Fatal("nested config change did not change fingerprint")
	}
}

// TestFingerprintIncludesSimulatorIdentity: bumping the simulator
// revision must re-address every record, so results from older simulator
// logic can never be served as hits.
func TestFingerprintIncludesSimulatorIdentity(t *testing.T) {
	cfg := config.Default()
	now := fingerprint("cachecraft@r3", cfg, "stream", "cachecraft")
	old := fingerprint("cachecraft@r2", cfg, "stream", "cachecraft")
	if now == old {
		t.Fatal("simulator revision not part of the fingerprint")
	}
}
