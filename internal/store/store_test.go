package store

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"cachecraft/internal/config"
	"cachecraft/internal/gpu"
	"cachecraft/internal/sim"
	"cachecraft/internal/stats"
	"cachecraft/internal/version"
)

// testResult builds a result with enough structure (maps, ordered
// counters, floats) to exercise the round trip.
func testResult(seed uint64) gpu.Result {
	c := stats.NewCounters()
	c.Add("zeta", seed)
	c.Add("alpha", seed+1)
	return gpu.Result{
		Workload:     "stream",
		Scheme:       "none",
		Cycles:       sim.Cycle(42_000 + seed),
		Instructions: 1_000 * seed,
		IPC:          1.0 / float64(seed+3),
		DRAMBytes:    map[string]uint64{"demand": seed * 64, "redundancy": seed * 8},
		Machine:      c,
	}
}

func mustOpen(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func record(fp string, seed uint64) Record {
	return Record{
		Fingerprint: fp,
		Sim:         version.String(),
		Workload:    "stream",
		Scheme:      "none",
		Result:      testResult(seed),
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t)
	fp := Fingerprint(config.Quick(), "stream", "none")
	rec := record(fp, 7)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(fp)
	if !ok {
		t.Fatal("freshly written record missed")
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip changed record:\nwant %+v\n got %+v", rec, got)
	}
	// Counter order must survive (renderers depend on it).
	if names := got.Result.Machine.Names(); len(names) != 2 || names[0] != "zeta" {
		t.Fatalf("counter order lost: %v", names)
	}
	// GetRaw must return the canonical encoding: re-encoding the decoded
	// record reproduces the stored bytes (the basis of stable ETags).
	raw, sum, ok := s.GetRaw(fp)
	if !ok {
		t.Fatal("GetRaw missed")
	}
	body, sum2, err := EncodeRecord(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(body) || sum != sum2 {
		t.Fatalf("stored bytes not canonical:\nstored %s\nre-enc %s", raw, body)
	}
}

// TestReopenedStoreNeverServesPartialEnvelope models the crash-recovery
// contract Put's fsync discipline exists for: whatever prefix of the
// envelope bytes reached disk before a crash — including a
// complete-looking file of the right length whose tail was lost, and the
// pathological all-zeros file a data-less journalled rename used to be
// able to leave — a fresh handle on the directory must treat the entry as
// a miss, never serve a partial record, and allow a clean rewrite.
func TestReopenedStoreNeverServesPartialEnvelope(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(config.Quick(), "stream", "none")
	rec := record(fp, 11)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(s.path(fp))
	if err != nil {
		t.Fatal(err)
	}

	// Cuts stop at len-2: the final byte is the trailing newline, which is
	// not part of the envelope — a file missing only it is still complete.
	for _, cut := range []int{0, 1, len(full) / 4, len(full) / 2, len(full) - 2} {
		if err := os.WriteFile(s.path(fp), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reopened, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := reopened.Get(fp); ok {
			t.Fatalf("reopened store served a %d/%d-byte partial envelope", cut, len(full))
		}
		if _, _, ok := reopened.GetRaw(fp); ok {
			t.Fatalf("GetRaw served a %d/%d-byte partial envelope", cut, len(full))
		}
	}
	// Right length, zeroed contents (rename journalled, data lost).
	if err := os.WriteFile(s.path(fp), make([]byte, len(full)), 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reopened.Get(fp); ok {
		t.Fatal("reopened store served a zero-filled envelope")
	}
	// The damaged entry must be rewritable.
	if err := reopened.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := reopened.Get(fp)
	if !ok || !reflect.DeepEqual(got, rec) {
		t.Fatal("rewrite after torn entry did not round-trip")
	}
}

func TestGetMissesOnAbsent(t *testing.T) {
	s := mustOpen(t)
	if _, ok := s.Get(Fingerprint(config.Quick(), "stream", "none")); ok {
		t.Fatal("empty store reported a hit")
	}
}

func TestCorruptionIsAMissNotAnError(t *testing.T) {
	fp := Fingerprint(config.Quick(), "stream", "none")
	corruptions := map[string]func(t *testing.T, path string){
		"truncated": func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bit-flipped": func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x40 // inside the body: checksum must catch it
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"garbage": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty": func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := mustOpen(t)
			if err := s.Put(record(fp, 9)); err != nil {
				t.Fatal(err)
			}
			corrupt(t, s.path(fp))
			if _, ok := s.Get(fp); ok {
				t.Fatalf("%s record served as a hit", name)
			}
			if _, _, ok := s.GetRaw(fp); ok {
				t.Fatalf("%s record served raw", name)
			}
			// The slot is still writable: a re-run heals the store.
			if err := s.Put(record(fp, 9)); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(fp); !ok {
				t.Fatal("re-written record missed")
			}
		})
	}
}

// TestRecordAtWrongAddressIsAMiss: a valid record copied to another
// fingerprint's path (e.g. a botched manual copy) must not be served.
func TestRecordAtWrongAddressIsAMiss(t *testing.T) {
	s := mustOpen(t)
	fpA := Fingerprint(config.Quick(), "stream", "none")
	fpB := Fingerprint(config.Quick(), "scan", "none")
	if err := s.Put(record(fpA, 3)); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.path(fpB)), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.path(fpA))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(fpB), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fpB); ok {
		t.Fatal("record served from a foreign address")
	}
}

// TestStaleSimRevisionIsAMiss: a record claiming a different simulator
// revision must miss even if its checksum is intact.
func TestStaleSimRevisionIsAMiss(t *testing.T) {
	s := mustOpen(t)
	fp := Fingerprint(config.Quick(), "stream", "none")
	rec := record(fp, 5)
	rec.Sim = "cachecraft@r0-ancient"
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fp); ok {
		t.Fatal("stale-revision record served as a hit")
	}
}

// TestConcurrentHandlesSameDir exercises many goroutines, each with its
// own Store handle (the in-process approximation of separate processes),
// reading and writing an overlapping key set under -race.
func TestConcurrentHandlesSameDir(t *testing.T) {
	dir := t.TempDir()
	fps := []string{
		Fingerprint(config.Quick(), "stream", "none"),
		Fingerprint(config.Quick(), "scan", "none"),
		Fingerprint(config.Quick(), "stream", "cachecraft"),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := Open(dir)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 30; i++ {
				fp := fps[(g+i)%len(fps)]
				// All writers store identical content per key, so a read
				// must be either a miss or the exact record.
				if err := s.Put(record(fp, uint64(len(fp)))); err != nil {
					errs <- err
					return
				}
				got, ok := s.Get(fp)
				if !ok {
					errs <- fmt.Errorf("goroutine %d: read-after-write miss for %s", g, fp)
					return
				}
				if got.Fingerprint != fp {
					errs <- fmt.Errorf("goroutine %d: wrong record for %s", g, fp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCrossProcessConcurrentAccess re-executes this test binary as three
// real child processes (plus this one) hammering the same store
// directory, proving the tempfile+rename protocol across process
// boundaries, not just across goroutines.
func TestCrossProcessConcurrentAccess(t *testing.T) {
	if os.Getenv("CACHECRAFT_STORE_HELPER") == "1" {
		storeHelperMain(t)
		return
	}
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot find test binary: %v", err)
	}
	dir := t.TempDir()
	const procs = 3
	cmds := make([]*exec.Cmd, procs)
	for i := range cmds {
		cmd := exec.Command(exe, "-test.run", "^TestCrossProcessConcurrentAccess$")
		cmd.Env = append(os.Environ(),
			"CACHECRAFT_STORE_HELPER=1",
			"CACHECRAFT_STORE_DIR="+dir,
			"CACHECRAFT_STORE_SEED="+strconv.Itoa(i),
		)
		cmds[i] = cmd
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
	}
	// Contend from this process too.
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	helperLoop(t, st, procs)
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("child %d failed: %v", i, err)
		}
	}
}

// storeHelperMain is the child-process body: open the shared directory
// and run the same put/get loop as the parent.
func storeHelperMain(t *testing.T) {
	st, err := Open(os.Getenv("CACHECRAFT_STORE_DIR"))
	if err != nil {
		t.Fatal(err)
	}
	seed, _ := strconv.Atoi(os.Getenv("CACHECRAFT_STORE_SEED"))
	helperLoop(t, st, seed)
}

// helperLoop writes and reads an overlapping set of fingerprints. Content
// per fingerprint is identical across all processes, so every successful
// read must decode to the expected record.
func helperLoop(t *testing.T, st *Store, seed int) {
	workloads := []string{"stream", "scan", "bfs"}
	for i := 0; i < 40; i++ {
		wl := workloads[(seed+i)%len(workloads)]
		fp := Fingerprint(config.Quick(), wl, "none")
		if err := st.Put(record(fp, uint64(len(wl)))); err != nil {
			t.Fatalf("put %s: %v", fp, err)
		}
		got, ok := st.Get(fp)
		if !ok {
			t.Fatalf("read-after-write miss for %s", fp)
		}
		if got.Fingerprint != fp || got.Result.Instructions != 1_000*uint64(len(wl)) {
			t.Fatalf("inconsistent record for %s: %+v", fp, got)
		}
	}
}
