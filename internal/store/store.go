// Package store is a content-addressed, on-disk cache of simulation
// results. Records are keyed by the canonical fingerprint of (simulator
// identity, GPU configuration, workload, scheme) — see Fingerprint — and
// written atomically (tempfile + rename in the same directory), so any
// number of processes may read and write one store directory
// concurrently. Every record carries a SHA-256 checksum of its body;
// corruption of any kind (truncation, bit flips, foreign files) is
// treated as a cache miss, never an error, because the simulator can
// always regenerate the record.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"cachecraft/internal/chaos"
	"cachecraft/internal/config"
	"cachecraft/internal/gpu"
	"cachecraft/internal/version"
)

// Record is one stored simulation result plus the identity that produced
// it. Its JSON encoding is canonical: encoding a decoded record
// reproduces the stored bytes (stats.Counters marshal in insertion
// order), which is what makes checksum-derived ETags stable across
// cold and warm servings.
type Record struct {
	Fingerprint string     `json:"fingerprint"`
	Sim         string     `json:"sim"` // version.String() at write time
	Workload    string     `json:"workload"`
	Scheme      string     `json:"scheme"`
	Result      gpu.Result `json:"result"`
}

// envelope is the on-disk framing: the record body plus its checksum.
type envelope struct {
	Sum  string          `json:"sum"` // hex SHA-256 of Body
	Body json.RawMessage `json:"body"`
}

// Store is a handle on one store directory. The zero value is not usable;
// call Open. Beyond the path a Store carries only optional resilience
// hooks (SetBreaker, SetChaos) that are configured once at setup, so
// handles are safe for concurrent use and cheap to recreate.
type Store struct {
	dir string
	brk *breaker        // nil = no circuit breaking
	inj *chaos.Injector // nil = chaos off
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetChaos attaches a fault injector to the store's disk paths
// (chaos.SiteStoreGet / SiteStorePut / SiteStoreSync). Injected errors
// are indistinguishable from real disk failures: reads miss, writes
// fail, and both feed the circuit breaker. Call before sharing the
// handle; nil (the default) is chaos off at zero cost.
func (s *Store) SetChaos(in *chaos.Injector) { s.inj = in }

// path shards records by the first fingerprint byte to keep directories
// small under large sweeps.
func (s *Store) path(fp string) string {
	shard := "xx"
	if len(fp) >= 2 {
		shard = fp[:2]
	}
	return filepath.Join(s.dir, shard, fp+".json")
}

// EncodeRecord marshals a record to its canonical body bytes and returns
// the body plus its hex SHA-256 checksum (the basis of HTTP ETags).
func EncodeRecord(rec Record) (body []byte, sum string, err error) {
	body, err = json.Marshal(rec)
	if err != nil {
		return nil, "", fmt.Errorf("store: encode %s: %w", rec.Fingerprint, err)
	}
	h := sha256.Sum256(body)
	return body, hex.EncodeToString(h[:]), nil
}

// Put writes the record under its own fingerprint, atomically and
// durably: the bytes are staged in a tempfile in the destination
// directory, fsynced, renamed into place, and the directory itself is
// fsynced. Readers never observe a partial record, concurrent writers of
// the same fingerprint harmlessly race to install identical content, and
// a crash right after Put returns cannot leave the entry half-written or
// the rename unjournalled — the store either serves the complete record
// or misses.
func (s *Store) Put(rec Record) error {
	if rec.Fingerprint == "" {
		return fmt.Errorf("store: record has no fingerprint")
	}
	body, sum, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	data, err := json.Marshal(envelope{Sum: sum, Body: body})
	if err != nil {
		return fmt.Errorf("store: envelope %s: %w", rec.Fingerprint, err)
	}
	// Only now does the disk come into play: an open breaker fast-fails
	// the write (degraded mode: recompute-without-persist), and every
	// disk outcome below feeds the breaker's consecutive-error count.
	if s.brk != nil && !s.brk.allow() {
		return fmt.Errorf("store: write %s: %w", rec.Fingerprint, ErrDegraded)
	}
	err = s.putDisk(rec.Fingerprint, data)
	if s.brk != nil {
		s.brk.record(err)
	}
	return err
}

// putDisk performs Put's disk half: tempfile, fsync, rename, directory
// fsync. Chaos hooks stand in for write and fsync failures.
func (s *Store) putDisk(fp string, data []byte) error {
	dst := s.path(fp)
	if err := s.inj.Inject(chaos.SiteStorePut, fp); err != nil {
		return fmt.Errorf("store: write %s: %w", fp, err)
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	if werr == nil {
		// Flush the contents before the rename publishes the name: without
		// this a crash can journal the rename but not the data, leaving a
		// complete-looking entry full of zeros.
		werr = s.inj.Inject(chaos.SiteStoreSync, fp)
		if werr == nil {
			werr = tmp.Sync()
		}
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp.Name(), 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), dst)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", fp, werr)
	}
	// The rename itself lives in the parent directory's metadata; fsync it
	// so the entry survives a crash after Put reports success.
	if err := syncDir(filepath.Dir(dst)); err != nil {
		return fmt.Errorf("store: write %s: %w", fp, err)
	}
	return nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// get loads, checksums, and decodes the record for fp. Any failure —
// missing file, bad framing, checksum mismatch, a record that does not
// belong at this address, or one from a different simulator revision —
// is a miss. Disk health feeds the breaker: a missing file is a healthy
// answer, a read error (EIO, injected chaos) counts toward tripping, and
// an open breaker misses without touching the disk at all.
func (s *Store) get(fp string) (Record, []byte, string, bool) {
	if s.brk != nil && !s.brk.allow() {
		return Record{}, nil, "", false
	}
	var (
		data []byte
		err  error
	)
	if err = s.inj.Inject(chaos.SiteStoreGet, fp); err == nil {
		data, err = os.ReadFile(s.path(fp))
	}
	if s.brk != nil {
		switch {
		case err == nil, errors.Is(err, fs.ErrNotExist):
			s.brk.record(nil)
		default:
			s.brk.record(err)
		}
	}
	if err != nil {
		return Record{}, nil, "", false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Record{}, nil, "", false
	}
	h := sha256.Sum256(env.Body)
	if hex.EncodeToString(h[:]) != env.Sum {
		return Record{}, nil, "", false
	}
	var rec Record
	if err := json.Unmarshal(env.Body, &rec); err != nil {
		return Record{}, nil, "", false
	}
	if rec.Fingerprint != fp || rec.Sim != version.String() {
		return Record{}, nil, "", false
	}
	return rec, env.Body, env.Sum, true
}

// Get returns the record stored under fp, or ok=false on a miss
// (including any form of corruption).
func (s *Store) Get(fp string) (Record, bool) {
	rec, _, _, ok := s.get(fp)
	return rec, ok
}

// GetRaw returns the verified record body bytes and their checksum for
// fp. The bytes are exactly what Put wrote, so serving them preserves
// byte-identity (and ETag identity) with the original encoding.
func (s *Store) GetRaw(fp string) (body []byte, sum string, ok bool) {
	_, body, sum, ok = s.get(fp)
	return body, sum, ok
}

// Lookup implements the bench.ResultStore read side: it addresses the
// store by the simulation's canonical fingerprint.
func (s *Store) Lookup(cfg config.GPU, workload, scheme string) (gpu.Result, bool) {
	rec, ok := s.Get(Fingerprint(cfg, workload, scheme))
	if !ok {
		return gpu.Result{}, false
	}
	return rec.Result, true
}

// Save implements the bench.ResultStore write side.
func (s *Store) Save(cfg config.GPU, workload, scheme string, res gpu.Result) error {
	return s.Put(Record{
		Fingerprint: Fingerprint(cfg, workload, scheme),
		Sim:         version.String(),
		Workload:    workload,
		Scheme:      scheme,
		Result:      res,
	})
}
