package store

import (
	"errors"
	"sync"
	"time"
)

// ErrDegraded reports that the store's circuit breaker is open: the disk
// has produced enough consecutive errors that the store is refusing I/O
// outright instead of hammering sick hardware. Callers already treat Put
// failures as "the result was still computed, only persistence was lost"
// and Get failures as misses, so degraded mode turns a full or dying disk
// into recompute-without-persist, never into a failed sweep.
var ErrDegraded = errors.New("store: circuit breaker open (store degraded)")

// Breaker states, exposed through Store.BreakerState and the
// cachecraft_store_breaker_state gauge.
const (
	// BreakerClosed: healthy — every operation touches the disk.
	BreakerClosed = 0
	// BreakerHalfOpen: cooling down — one probe operation is allowed
	// through; success closes the breaker, failure re-opens it.
	BreakerHalfOpen = 1
	// BreakerOpen: tripped — reads miss and writes fail instantly,
	// without disk I/O, until the cooldown elapses.
	BreakerOpen = 2
)

// breaker is a consecutive-error circuit breaker over the store's disk
// operations. It trips after threshold consecutive errors (Put failures
// and non-ENOENT read errors both count — a missing file is a healthy
// disk's answer, an EIO is not), fast-fails while open, and recovers
// through half-open probes: after cooldown one operation is let through,
// and its outcome decides between closing and re-opening.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	consecutive int
	state       int
	openedAt    time.Time
	probing     bool   // a half-open probe is in flight
	trips       uint64 // closed→open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 8
	}
	if cooldown <= 0 {
		cooldown = 3 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether an operation may touch the disk. While open it
// returns false until the cooldown elapses; the first caller after that
// becomes the half-open probe (exactly one — concurrent callers keep
// fast-failing so a thundering herd cannot pile onto a sick disk).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default: // BreakerOpen
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	}
}

// record feeds one disk operation's outcome back. disk=false outcomes
// (checksum mismatches, decode failures) are content problems, not disk
// health, and leave the breaker alone.
func (b *breaker) record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
		if err == nil {
			b.state = BreakerClosed
			b.consecutive = 0
		} else {
			b.state = BreakerOpen
			b.openedAt = time.Now()
		}
		return
	}
	if err == nil {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.state == BreakerClosed && b.consecutive >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.trips++
	}
}

// snapshot reports (state, trips) for the gauge samplers.
func (b *breaker) snapshot() (int, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Surface the pending half-open transition so the gauge doesn't show
	// "open" forever on an idle store.
	if b.state == BreakerOpen && time.Since(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen, b.trips
	}
	return b.state, b.trips
}

// SetBreaker arms a consecutive-error circuit breaker on the store:
// after threshold consecutive disk errors (Put failures, non-ENOENT read
// errors) the store goes degraded — Get misses and Put returns
// ErrDegraded without touching the disk — until a half-open probe
// succeeds after cooldown. Zero arguments select the defaults (8 errors,
// 3s cooldown). Call before sharing the handle across goroutines; a
// store without a breaker behaves exactly as before.
func (s *Store) SetBreaker(threshold int, cooldown time.Duration) {
	s.brk = newBreaker(threshold, cooldown)
}

// BreakerState reports the breaker's current state (BreakerClosed /
// BreakerHalfOpen / BreakerOpen). A store without a breaker is always
// BreakerClosed.
func (s *Store) BreakerState() int {
	if s.brk == nil {
		return BreakerClosed
	}
	st, _ := s.brk.snapshot()
	return st
}

// BreakerTrips reports how many times the breaker has tripped
// closed→open over the store's lifetime.
func (s *Store) BreakerTrips() uint64 {
	if s.brk == nil {
		return 0
	}
	_, trips := s.brk.snapshot()
	return trips
}
