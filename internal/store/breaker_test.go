package store

import (
	"errors"
	"testing"
	"time"

	"cachecraft/internal/chaos"
)

// sickStore returns a store whose first `failures` disk writes and every
// read fail through injected chaos, with a breaker armed at `threshold`.
func sickStore(t *testing.T, threshold int, cooldown time.Duration, rules ...chaos.Rule) *Store {
	t.Helper()
	s := mustOpen(t)
	s.SetBreaker(threshold, cooldown)
	s.SetChaos(chaos.New(1, rules...))
	return s
}

func TestBreakerTripsAfterConsecutivePutErrors(t *testing.T) {
	s := sickStore(t, 3, time.Hour,
		chaos.Rule{Site: chaos.SiteStorePut, Kind: chaos.KindError, P: 1})
	for i := 0; i < 3; i++ {
		if got := s.BreakerState(); got != BreakerClosed {
			t.Fatalf("op %d: state = %d, want closed", i, got)
		}
		err := s.Put(record("fp", uint64(i)))
		if !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("op %d: err = %v, want injected disk error", i, err)
		}
	}
	if got := s.BreakerState(); got != BreakerOpen {
		t.Fatalf("state after threshold errors = %d, want open", got)
	}
	if got := s.BreakerTrips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	// Open breaker: Put fast-fails with ErrDegraded (the chaos stream is
	// not consulted — no disk I/O at all), Get is a fast miss.
	if err := s.Put(record("fp", 9)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("open-breaker Put err = %v, want ErrDegraded", err)
	}
	if _, ok := s.Get("fp"); ok {
		t.Fatal("open-breaker Get hit")
	}
	if got := s.inj.InjectedTotal(); got != 3 {
		t.Fatalf("disk touched %d times, want 3 (open breaker must bypass disk)", got)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	// Errors on ops 0,1 then success then errors on 3,4: never three in a
	// row, so a threshold-3 breaker must stay closed throughout.
	s := sickStore(t, 3, time.Hour,
		chaos.Rule{Site: chaos.SiteStorePut, Kind: chaos.KindError, P: 1, Limit: 2},
		chaos.Rule{Site: chaos.SiteStorePut, Kind: chaos.KindError, P: 1, After: 3, Limit: 2})
	for i := 0; i < 6; i++ {
		_ = s.Put(record("fp", uint64(i)))
	}
	if got := s.BreakerState(); got != BreakerClosed {
		t.Fatalf("state = %d, want closed (errors were never consecutive)", got)
	}
	if got := s.BreakerTrips(); got != 0 {
		t.Fatalf("trips = %d, want 0", got)
	}
}

func TestBreakerMissingFileIsHealthy(t *testing.T) {
	s := mustOpen(t)
	s.SetBreaker(2, time.Hour)
	for i := 0; i < 50; i++ {
		if _, ok := s.Get("absent"); ok {
			t.Fatal("hit on absent fingerprint")
		}
	}
	if got := s.BreakerState(); got != BreakerClosed {
		t.Fatalf("state = %d after ENOENT misses, want closed (a missing file is a healthy disk's answer)", got)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	// Three injected write errors trip the breaker; the chaos rule's Limit
	// then exhausts, so the half-open probe hits a healthy disk and must
	// close the breaker.
	s := sickStore(t, 3, 20*time.Millisecond,
		chaos.Rule{Site: chaos.SiteStorePut, Kind: chaos.KindError, P: 1, Limit: 3})
	for i := 0; i < 3; i++ {
		_ = s.Put(record("fp", uint64(i)))
	}
	if got := s.BreakerState(); got != BreakerOpen {
		t.Fatalf("state = %d, want open", got)
	}
	time.Sleep(25 * time.Millisecond)
	if got := s.BreakerState(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %d, want half-open", got)
	}
	if err := s.Put(record("fp", 9)); err != nil {
		t.Fatalf("probe Put failed: %v", err)
	}
	if got := s.BreakerState(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %d, want closed", got)
	}
	if _, ok := s.Get("fp"); !ok {
		t.Fatal("recovered store missed the probe's record")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	s := sickStore(t, 2, 10*time.Millisecond,
		chaos.Rule{Site: chaos.SiteStorePut, Kind: chaos.KindError, P: 1})
	for i := 0; i < 2; i++ {
		_ = s.Put(record("fp", uint64(i)))
	}
	time.Sleep(15 * time.Millisecond)
	// The probe goes to disk, hits the still-sick injector, and re-opens.
	if err := s.Put(record("fp", 9)); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("probe err = %v, want injected disk error", err)
	}
	if got := s.BreakerState(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %d, want open", got)
	}
	// Failed probes do not count as fresh trips.
	if got := s.BreakerTrips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	if err := s.Put(record("fp", 10)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("post-probe Put err = %v, want ErrDegraded", err)
	}
}

func TestBreakerReadErrorsCountTooAndSyncFailures(t *testing.T) {
	s := sickStore(t, 2, time.Hour,
		chaos.Rule{Site: chaos.SiteStoreGet, Kind: chaos.KindError, P: 1, Limit: 1},
		chaos.Rule{Site: chaos.SiteStoreSync, Kind: chaos.KindError, P: 1, Limit: 1})
	if _, ok := s.Get("fp"); ok {
		t.Fatal("injected read error produced a hit")
	}
	if err := s.Put(record("fp", 1)); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("fsync-failure Put err = %v", err)
	}
	if got := s.BreakerState(); got != BreakerOpen {
		t.Fatalf("state = %d, want open (read + fsync errors both count)", got)
	}
}

func TestStoreWithoutBreakerIsUnchanged(t *testing.T) {
	s := mustOpen(t)
	if got := s.BreakerState(); got != BreakerClosed {
		t.Fatalf("breaker-less state = %d, want closed", got)
	}
	if got := s.BreakerTrips(); got != 0 {
		t.Fatalf("breaker-less trips = %d, want 0", got)
	}
	if err := s.Put(record("fp", 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("fp"); !ok {
		t.Fatal("round trip failed")
	}
}
