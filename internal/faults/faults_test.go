package faults

import (
	"reflect"
	"testing"

	"cachecraft/internal/ecc"
)

func secded(t *testing.T) ecc.SectorCodec {
	t.Helper()
	c, err := ecc.NewSECDEDSector(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func rs(t *testing.T) ecc.SectorCodec {
	t.Helper()
	c, err := ecc.NewRSSector(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSECDEDCorrectsAllSingleBitFlips(t *testing.T) {
	rep := Campaign{Codec: secded(t), Trials: 500, Seed: 1}.Run("1bit", BitFlips(1))
	if rep.Counts[Corrected] != rep.Trials {
		t.Fatalf("single-bit: %+v", rep.Counts)
	}
	if rep.SDCRate() != 0 {
		t.Fatalf("single-bit SDC rate %v", rep.SDCRate())
	}
}

func TestSECDEDDoubleBitNeverSilent(t *testing.T) {
	rep := Campaign{Codec: secded(t), Trials: 500, Seed: 2}.Run("2bit", BitFlips(2))
	// Two flips in one word: detected. Two flips in different words: both
	// corrected. Either way no SDC.
	if rep.SDCRate() != 0 {
		t.Fatalf("double-bit SDC rate %v (%+v)", rep.SDCRate(), rep.Counts)
	}
	if rep.Counts[Detected] == 0 {
		t.Fatal("expected some same-word double errors to be detected")
	}
	if rep.Counts[Corrected] == 0 {
		t.Fatal("expected some cross-word double errors to be corrected")
	}
}

func TestSECDEDChipErrorOftenEscapes(t *testing.T) {
	// A whole-byte error concentrates up to 8 flips in one 64-bit word —
	// beyond SEC-DED's design point. It must never be reported as clean
	// Corrected-with-wrong-data silently... but miscorrections are
	// expected; that is the motivation for symbol codes.
	rep := Campaign{Codec: secded(t), Trials: 2000, Seed: 3}.Run("chip", ChipError())
	if rep.Counts[Miscorrected]+rep.Counts[SilentBad] == 0 {
		t.Fatal("SEC-DED should suffer SDC under chip errors (that is the point of Table 3)")
	}
}

func TestRSChipErrorAlwaysCorrected(t *testing.T) {
	rep := Campaign{Codec: rs(t), Trials: 2000, Seed: 4}.Run("chip", ChipError())
	if rep.Counts[Corrected] != rep.Trials {
		t.Fatalf("RS(36,32) must correct any single symbol error: %+v", rep.Counts)
	}
}

func TestRSDoubleChipCorrected(t *testing.T) {
	rep := Campaign{Codec: rs(t), Trials: 1000, Seed: 5}.Run("2chip", DoubleChipError())
	// t=2: two symbol errors corrected (the occasional same-position
	// collision is a single error — also corrected).
	if rep.Counts[Corrected] != rep.Trials {
		t.Fatalf("RS(36,32) must correct double symbol errors: %+v", rep.Counts)
	}
}

func TestRSBurstWithinTwoSymbols(t *testing.T) {
	// An 8-bit burst spans at most two adjacent symbols — within t=2.
	rep := Campaign{Codec: rs(t), Trials: 1000, Seed: 6}.Run("burst8", Burst(8))
	if rep.Counts[Corrected] != rep.Trials {
		t.Fatalf("RS(36,32) must correct 8-bit bursts: %+v", rep.Counts)
	}
}

func TestReportRates(t *testing.T) {
	rep := Report{Trials: 4}
	rep.Counts[Corrected] = 2
	rep.Counts[Miscorrected] = 1
	rep.Counts[SilentBad] = 1
	if rep.Rate(Corrected) != 0.5 {
		t.Fatalf("rate = %v", rep.Rate(Corrected))
	}
	if rep.SDCRate() != 0.5 {
		t.Fatalf("sdc = %v", rep.SDCRate())
	}
	var empty Report
	if empty.Rate(Corrected) != 0 {
		t.Fatal("empty report rate must be 0")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		Corrected: "corrected", Detected: "detected",
		Miscorrected: "miscorrected", SilentBad: "silent-bad",
	} {
		if o.String() != want {
			t.Fatalf("%d renders %q", int(o), o.String())
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	a := Campaign{Codec: rs(t), Trials: 200, Seed: 7}.Run("3bit", BitFlips(3))
	b := Campaign{Codec: rs(t), Trials: 200, Seed: 7}.Run("3bit", BitFlips(3))
	if a.Counts != b.Counts {
		t.Fatalf("campaigns differ: %v vs %v", a.Counts, b.Counts)
	}
}

// taggedCodec adapts *ecc.Tagged (whose API takes an asserted tag per
// call) to the SectorCodec interface by pinning one tag value, so the
// tagged code can sit in the same injection matrix as the plain sector
// codecs. A tag mismatch or uncorrectable word both surface as Detected:
// either way the access must not consume the data.
type taggedCodec struct {
	inner *ecc.Tagged
	tag   []byte
}

func (c taggedCodec) Name() string           { return c.inner.Name() }
func (c taggedCodec) SectorBytes() int       { return c.inner.DataBytes() }
func (c taggedCodec) RedundancyBytes() int   { return c.inner.ParityBytes() }
func (c taggedCodec) Encode(s []byte) []byte { return c.inner.Encode(s, c.tag) }

func (c taggedCodec) EncodeInto(dst, s []byte) []byte {
	return c.inner.EncodeInto(dst, s, c.tag)
}

func (c taggedCodec) DecodeInto(sector, redundancy []byte) ecc.Result {
	return c.Decode(sector, redundancy)
}

func (c taggedCodec) Decode(sector, redundancy []byte) ecc.Result {
	switch c.inner.Check(sector, redundancy, c.tag) {
	case ecc.TagOK:
		return ecc.OK
	case ecc.TagOKCorrected:
		return ecc.Corrected
	default:
		return ecc.Detected
	}
}

// TestInjectorCodecMatrix runs every injector against every codec and
// checks the invariants that hold regardless of cell: outcome counts
// partition the trials, reports carry the right identity fields, and an
// identical seed replays an identical report. Codec-specific guarantees
// (which cells must be all-Corrected, which may miscorrect) are pinned by
// the dedicated tests above; this matrix is the safety net that no
// (injector, codec) pairing crashes, loses trials, or went nondeterministic.
func TestInjectorCodecMatrix(t *testing.T) {
	secdaec, err := ecc.NewSECDAECSector(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	chipkill, err := ecc.NewChipkill(32, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := ecc.NewTagged(32, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	codecs := []ecc.SectorCodec{
		secded(t),
		rs(t),
		secdaec,
		chipkill,
		taggedCodec{inner: tagged, tag: []byte{0xA5, 0x3C}},
	}
	injectors := []struct {
		name   string
		inject Injector
	}{
		{"1bit", BitFlips(1)},
		{"2bit", BitFlips(2)},
		{"burst4", Burst(4)},
		{"chip", ChipError()},
		{"2chip", DoubleChipError()},
	}
	for _, codec := range codecs {
		for _, inj := range injectors {
			t.Run(codec.Name()+"/"+inj.name, func(t *testing.T) {
				c := Campaign{Codec: codec, Trials: 300, Seed: 99}
				rep := c.Run(inj.name, inj.inject)
				if rep.Codec != codec.Name() || rep.Fault != inj.name || rep.Trials != 300 {
					t.Fatalf("report identity wrong: %+v", rep)
				}
				sum := 0
				for _, n := range rep.Counts {
					sum += n
				}
				if sum != rep.Trials {
					t.Fatalf("outcome counts %v sum to %d, want %d trials", rep.Counts, sum, rep.Trials)
				}
				if again := c.Run(inj.name, inj.inject); !reflect.DeepEqual(rep, again) {
					t.Fatalf("same seed produced different reports:\n%+v\n%+v", rep, again)
				}
			})
		}
	}
}

// TestSingleBitNeverSDC pins the floor guarantee every codec in the matrix
// shares: a single flipped bit is within each code's correction radius, so
// it must never miscorrect or pass silently — for SEC-DED that is the
// literal design point, and the symbol codes correct any one damaged symbol.
func TestSingleBitNeverSDC(t *testing.T) {
	secdaec, err := ecc.NewSECDAECSector(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range []ecc.SectorCodec{secded(t), rs(t), secdaec} {
		rep := Campaign{Codec: codec, Trials: 400, Seed: 11}.Run("1bit", BitFlips(1))
		if rep.Counts[Corrected] != rep.Trials {
			t.Fatalf("%s: single-bit flips not fully corrected: %+v", codec.Name(), rep.Counts)
		}
		if rep.Counts[Miscorrected] != 0 || rep.Counts[SilentBad] != 0 {
			t.Fatalf("%s: single-bit SDC: %+v", codec.Name(), rep.Counts)
		}
	}
}

func TestChipkillCampaignInformedAlwaysCorrects(t *testing.T) {
	c, err := ecc.NewChipkill(32, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	rep := ChipkillCampaign(c, 1000, 8)
	if rep.Informed[Corrected] != rep.Trials {
		t.Fatalf("informed decode: %+v", rep.Informed)
	}
	// Blind decoding of a dead device must essentially never correct.
	if rep.Blind[Corrected] > rep.Trials/100 {
		t.Fatalf("blind decode corrected %d/%d dead devices", rep.Blind[Corrected], rep.Trials)
	}
	if rep.Blind[Detected] == 0 {
		t.Fatal("blind decode never detected")
	}
}
