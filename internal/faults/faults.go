// Package faults runs fault-injection campaigns against the ECC codecs:
// random bit flips, adjacent-bit bursts, and whole-symbol (chip-style)
// errors, classifying each decode against ground truth. It produces the
// reliability table of the evaluation (Table 3).
package faults

import (
	"bytes"
	"fmt"
	"math/rand"

	"cachecraft/internal/ecc"
)

// Outcome classifies one injected trial against ground truth.
type Outcome int

const (
	// Corrected: the decoder fixed the error; data matches ground truth.
	Corrected Outcome = iota
	// Detected: the decoder flagged an uncorrectable error.
	Detected
	// Miscorrected: the decoder "corrected" into wrong data — silent data
	// corruption with a clean conscience.
	Miscorrected
	// SilentBad: the decoder reported OK but the data is wrong — silent
	// data corruption, the worst case.
	SilentBad
	numOutcomes
)

// String renders the outcome for tables.
func (o Outcome) String() string {
	switch o {
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	case Miscorrected:
		return "miscorrected"
	case SilentBad:
		return "silent-bad"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Report summarizes a campaign.
type Report struct {
	Codec  string
	Fault  string
	Trials int
	Counts [numOutcomes]int
}

// Rate returns the fraction of trials with the given outcome.
func (r Report) Rate(o Outcome) float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Counts[o]) / float64(r.Trials)
}

// SDCRate is the silent-data-corruption rate (miscorrected + silent-bad).
func (r Report) SDCRate() float64 {
	return r.Rate(Miscorrected) + r.Rate(SilentBad)
}

// Campaign drives injections against one sector codec.
type Campaign struct {
	Codec  ecc.SectorCodec
	Trials int
	Seed   int64
}

// Injector corrupts a (sector, redundancy) pair and reports how many bits
// it flipped.
type Injector func(rng *rand.Rand, sector, redundancy []byte)

// Run executes the campaign with the given fault model.
func (c Campaign) Run(faultName string, inject Injector) Report {
	rng := rand.New(rand.NewSource(c.Seed))
	rep := Report{Codec: c.Codec.Name(), Fault: faultName, Trials: c.Trials}
	n := c.Codec.SectorBytes()
	for trial := 0; trial < c.Trials; trial++ {
		golden := make([]byte, n)
		rng.Read(golden)
		sector := append([]byte(nil), golden...)
		red := c.Codec.Encode(sector)

		inject(rng, sector, red)

		res := c.Codec.Decode(sector, red)
		ok := bytes.Equal(sector, golden)
		switch {
		case res == ecc.Detected:
			rep.Counts[Detected]++
		case ok && (res == ecc.OK || res == ecc.Corrected):
			rep.Counts[Corrected]++
		case res == ecc.Corrected:
			rep.Counts[Miscorrected]++
		default:
			rep.Counts[SilentBad]++
		}
	}
	return rep
}

// BitFlips returns an injector flipping n distinct random bits across the
// sector and redundancy.
func BitFlips(n int) Injector {
	return func(rng *rand.Rand, sector, redundancy []byte) {
		total := len(sector)*8 + len(redundancy)*8
		seen := map[int]bool{}
		for len(seen) < n {
			seen[rng.Intn(total)] = true
		}
		for bit := range seen {
			flip(sector, redundancy, bit)
		}
	}
}

// Burst returns an injector flipping n adjacent bits starting at a random
// position (the locality pattern beam testing reports for DRAM).
func Burst(n int) Injector {
	return func(rng *rand.Rand, sector, redundancy []byte) {
		total := len(sector)*8 + len(redundancy)*8
		start := rng.Intn(total)
		for i := 0; i < n; i++ {
			flip(sector, redundancy, (start+i)%total)
		}
	}
}

// ChipError returns an injector corrupting one whole byte (symbol) to a
// random different value — the chipkill case for symbol-grain codes.
func ChipError() Injector {
	return func(rng *rand.Rand, sector, redundancy []byte) {
		pos := rng.Intn(len(sector) + len(redundancy))
		var b *byte
		if pos < len(sector) {
			b = &sector[pos]
		} else {
			b = &redundancy[pos-len(sector)]
		}
		old := *b
		for *b == old {
			*b = byte(rng.Intn(256))
		}
	}
}

// DoubleChipError corrupts two distinct bytes.
func DoubleChipError() Injector {
	single := ChipError()
	return func(rng *rand.Rand, sector, redundancy []byte) {
		single(rng, sector, redundancy)
		single(rng, sector, redundancy)
	}
}

func flip(sector, redundancy []byte, bit int) {
	if bit < len(sector)*8 {
		sector[bit/8] ^= 1 << (bit % 8)
	} else {
		bit -= len(sector) * 8
		redundancy[bit/8] ^= 1 << (bit % 8)
	}
}

// ChipkillReport compares blind decoding against identified-dead-device
// erasure decoding for a device-striped organization.
type ChipkillReport struct {
	Trials   int
	Blind    [numOutcomes]int
	Informed [numOutcomes]int
}

// ChipkillCampaign kills one random device per trial and decodes twice:
// once blind, once with the failed device identified (erasure decoding).
func ChipkillCampaign(c *ecc.Chipkill, trials int, seed int64) ChipkillReport {
	rng := rand.New(rand.NewSource(seed))
	rep := ChipkillReport{Trials: trials}
	n := c.SectorBytes()
	for trial := 0; trial < trials; trial++ {
		golden := make([]byte, n)
		rng.Read(golden)
		parity := c.Encode(golden)
		dev := rng.Intn(c.Devices())

		corrupt := func() (sector, red []byte) {
			sector = append([]byte(nil), golden...)
			red = append([]byte(nil), parity...)
			for _, p := range c.DeviceSymbols(dev) {
				var b *byte
				if p < n {
					b = &sector[p]
				} else {
					b = &red[p-n]
				}
				old := *b
				for *b == old {
					*b = byte(rng.Intn(256))
				}
			}
			return sector, red
		}

		classify := func(res ecc.Result, sector []byte) Outcome {
			ok := bytes.Equal(sector, golden)
			switch {
			case res == ecc.Detected:
				return Detected
			case ok && (res == ecc.OK || res == ecc.Corrected):
				return Corrected
			case res == ecc.Corrected:
				return Miscorrected
			default:
				return SilentBad
			}
		}

		s1, r1 := corrupt()
		rep.Blind[classify(c.Decode(s1, r1), s1)]++
		s2, r2 := corrupt()
		rep.Informed[classify(c.DecodeWithDeadDevice(s2, r2, dev), s2)]++
	}
	return rep
}
