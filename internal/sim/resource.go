package sim

// Resource models a bandwidth-limited, in-order service point such as a bus,
// a cache port, or a DRAM data pin group. Each grant occupies the resource
// for a fixed number of cycles; requests arriving while the resource is busy
// are serialized behind it.
//
// Resource implements the classic "next free time" bandwidth model: it holds
// no queue of its own, it simply answers "given that you arrive at cycle t
// and need the resource for d cycles, when does your occupancy start?".
type Resource struct {
	name     string
	nextFree Cycle
	busy     Cycle // total busy cycles, for utilization reporting
}

// NewResource returns an idle resource. The name is used only for reporting.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name reports the resource's name.
func (r *Resource) Name() string { return r.name }

// Claim reserves the resource for dur cycles starting no earlier than at.
// It returns the cycle at which the reservation actually begins.
func (r *Resource) Claim(at Cycle, dur Cycle) Cycle {
	start := at
	if r.nextFree > start {
		start = r.nextFree
	}
	r.nextFree = start + dur
	r.busy += dur
	return start
}

// NextFree reports the first cycle at which the resource is idle.
func (r *Resource) NextFree() Cycle { return r.nextFree }

// BusyCycles reports the cumulative cycles the resource has been occupied.
func (r *Resource) BusyCycles() Cycle { return r.busy }

// Utilization reports busy cycles as a fraction of the elapsed cycles.
func (r *Resource) Utilization(elapsed Cycle) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(r.busy) / float64(elapsed)
}

// ThrottledPort models an interconnect port with byte-granular bandwidth
// accounting and a fixed pipeline latency: a message occupies the port for
// exactly bytes/bytesPerCycle cycles of capacity (fractional cycles
// included, so small messages from different sources share a cycle) and is
// delivered latency cycles after its last byte.
type ThrottledPort struct {
	name       string
	bytesPerCy int
	latency    Cycle
	// nextFree is the port's next free instant, measured in *bytes* of
	// link time (cycle × bytesPerCy) to avoid per-message rounding.
	nextFree  uint64
	busyBytes uint64
}

// NewThrottledPort builds a port that moves bytesPerCycle bytes per cycle
// and adds a fixed pipeline latency to every transfer.
func NewThrottledPort(name string, bytesPerCycle int, latency Cycle) *ThrottledPort {
	p := MakeThrottledPort(name, bytesPerCycle, latency)
	return &p
}

// MakeThrottledPort is the value-typed constructor, for callers that embed
// ports in a contiguous slice instead of heap-allocating each one.
func MakeThrottledPort(name string, bytesPerCycle int, latency Cycle) ThrottledPort {
	if bytesPerCycle <= 0 {
		bytesPerCycle = 1
	}
	return ThrottledPort{
		name:       name,
		bytesPerCy: bytesPerCycle,
		latency:    latency,
	}
}

// Transfer reserves the port for a message of size bytes arriving at cycle
// at and returns the cycle at which the message is delivered.
func (p *ThrottledPort) Transfer(at Cycle, bytes int) Cycle {
	if bytes <= 0 {
		bytes = 1
	}
	byteNow := uint64(at) * uint64(p.bytesPerCy)
	start := byteNow
	if p.nextFree > start {
		start = p.nextFree
	}
	end := start + uint64(bytes)
	p.nextFree = end
	p.busyBytes += uint64(bytes)
	// Deliver on the cycle the last byte crosses, plus pipeline latency.
	deliverAt := Cycle((end + uint64(p.bytesPerCy) - 1) / uint64(p.bytesPerCy))
	return deliverAt + p.latency
}

// BusyBytes reports the cumulative bytes moved.
func (p *ThrottledPort) BusyBytes() uint64 { return p.busyBytes }

// Utilization reports moved bytes as a fraction of the port's capacity
// over elapsed cycles.
func (p *ThrottledPort) Utilization(elapsed Cycle) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(p.busyBytes) / (float64(elapsed) * float64(p.bytesPerCy))
}
