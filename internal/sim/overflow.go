package sim

// The overflow heap holds record indices for events scheduled at or beyond
// now+wheelSpan, ordered by (at, seq). It is a hand-rolled index heap so
// pushes and pops move int32 values, never boxing records through any.

func (e *Engine) overflowLess(i, j int32) bool {
	ri, rj := &e.slab[i], &e.slab[j]
	if ri.at != rj.at {
		return ri.at < rj.at
	}
	return ri.seq < rj.seq
}

func (e *Engine) overflowPush(idx int32) {
	e.overflow = append(e.overflow, idx)
	i := len(e.overflow) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !e.overflowLess(e.overflow[i], e.overflow[p]) {
			break
		}
		e.overflow[i], e.overflow[p] = e.overflow[p], e.overflow[i]
		i = p
	}
}

func (e *Engine) overflowPop() int32 {
	top := e.overflow[0]
	n := len(e.overflow) - 1
	e.overflow[0] = e.overflow[n]
	e.overflow = e.overflow[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && e.overflowLess(e.overflow[l], e.overflow[s]) {
			s = l
		}
		if r < n && e.overflowLess(e.overflow[r], e.overflow[s]) {
			s = r
		}
		if s == i {
			break
		}
		e.overflow[i], e.overflow[s] = e.overflow[s], e.overflow[i]
		i = s
	}
	return top
}
