package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func(Cycle) { order = append(order, 3) })
	e.At(10, func(Cycle) { order = append(order, 1) })
	e.At(20, func(Cycle) { order = append(order, 2) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("engine stopped at cycle %d, want 30", e.Now())
	}
}

func TestEngineBreaksTiesInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Cycle) { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated FIFO: position %d got %d", i, v)
		}
	}
}

func TestEnginePastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine()
	var ranAt Cycle
	e.At(50, func(now Cycle) {
		e.At(1, func(now Cycle) { ranAt = now }) // "1" is in the past
	})
	e.Run(100)
	if ranAt != 50 {
		t.Fatalf("past-scheduled event ran at %d, want clamped to 50", ranAt)
	}
}

func TestEngineRunHonorsLimit(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(1000, func(Cycle) { ran = true })
	e.Run(100)
	if ran {
		t.Fatal("event beyond the limit must not run")
	}
	if e.Now() != 100 {
		t.Fatalf("engine should park at the limit, got %d", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Cycle(i*10), func(Cycle) { count++ })
	}
	ok := e.RunUntil(1000, func() bool { return count >= 3 })
	if !ok {
		t.Fatal("RunUntil should have satisfied the condition")
	}
	if count != 3 {
		t.Fatalf("count = %d, want exactly 3 (stop as soon as satisfied)", count)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %d, want 30", e.Now())
	}
	if ok := e.RunUntil(1000, func() bool { return count >= 100 }); ok {
		t.Fatal("RunUntil cannot satisfy an unreachable condition")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func(now Cycle)
	recurse = func(now Cycle) {
		depth++
		if depth < 5 {
			e.After(7, recurse)
		}
	}
	e.At(0, recurse)
	e.Run(1000)
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if e.Now() != 28 {
		t.Fatalf("now = %d, want 28", e.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("bus")
	if got := r.Claim(10, 5); got != 10 {
		t.Fatalf("first claim starts at %d, want 10", got)
	}
	if got := r.Claim(10, 5); got != 15 {
		t.Fatalf("overlapping claim starts at %d, want 15", got)
	}
	if got := r.Claim(100, 5); got != 100 {
		t.Fatalf("late claim starts at %d, want 100", got)
	}
	if r.BusyCycles() != 15 {
		t.Fatalf("busy = %d, want 15", r.BusyCycles())
	}
}

func TestResourceClaimNeverStartsBeforeArrival(t *testing.T) {
	f := func(arrivals []uint16, durs []uint8) bool {
		r := NewResource("x")
		n := len(arrivals)
		if len(durs) < n {
			n = len(durs)
		}
		prevEnd := Cycle(0)
		for i := 0; i < n; i++ {
			at := Cycle(arrivals[i])
			d := Cycle(durs[i]%16) + 1
			start := r.Claim(at, d)
			if start < at {
				return false // started before arrival
			}
			if start < prevEnd {
				return false // overlapped the previous grant
			}
			prevEnd = start + d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThrottledPortBandwidth(t *testing.T) {
	p := NewThrottledPort("link", 32, 10)
	// 64 bytes at 32 B/cycle = 2 cycles of link time + 10 latency.
	if got := p.Transfer(0, 64); got != 12 {
		t.Fatalf("delivery at %d, want 12", got)
	}
	// Second transfer queues behind the first.
	if got := p.Transfer(0, 64); got != 14 {
		t.Fatalf("second delivery at %d, want 14", got)
	}
	if p.BusyBytes() != 128 {
		t.Fatalf("busy = %d bytes, want 128", p.BusyBytes())
	}
}

func TestThrottledPortSubCycleSharing(t *testing.T) {
	// Four 8-byte messages share one 32 B/cycle slot: all deliver by the
	// end of cycle 1; a fifth spills into the next cycle.
	p := NewThrottledPort("link", 32, 0)
	for i := 0; i < 4; i++ {
		if got := p.Transfer(0, 8); got != 1 {
			t.Fatalf("message %d delivered at %d, want 1", i, got)
		}
	}
	if got := p.Transfer(0, 8); got != 2 {
		t.Fatalf("fifth message delivered at %d, want 2", got)
	}
}

func TestThrottledPortZeroByteTransferStillOccupies(t *testing.T) {
	p := NewThrottledPort("link", 32, 0)
	if got := p.Transfer(0, 0); got != 1 {
		t.Fatalf("zero-byte transfer delivered at %d, want 1 (minimum byte)", got)
	}
}

func TestUtilization(t *testing.T) {
	r := NewResource("x")
	r.Claim(0, 50)
	if u := r.Utilization(100); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("utilization at 0 elapsed = %v, want 0", u)
	}
	p := NewThrottledPort("link", 32, 0)
	p.Transfer(0, 64)
	if u := p.Utilization(4); u != 0.5 {
		t.Fatalf("port utilization = %v, want 0.5", u)
	}
}

func TestStepAndPending(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue must report false")
	}
	e.After(5, func(Cycle) {})
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	if !e.Step() {
		t.Fatal("Step should run the event")
	}
	if e.Now() != 5 || e.Pending() != 0 {
		t.Fatalf("now=%d pending=%d", e.Now(), e.Pending())
	}
}

func TestEventOrderingProperty(t *testing.T) {
	// Events scheduled at arbitrary times always run in nondecreasing time
	// order, with FIFO order within a cycle.
	f := func(times []uint16) bool {
		e := NewEngine()
		type stamp struct {
			at  Cycle
			seq int
		}
		var ran []stamp
		for i, tm := range times {
			i, tm := i, tm
			e.At(Cycle(tm), func(now Cycle) {
				ran = append(ran, stamp{at: now, seq: i})
			})
		}
		e.Run(1 << 30)
		if len(ran) != len(times) {
			return false
		}
		for i := 1; i < len(ran); i++ {
			if ran[i].at < ran[i-1].at {
				return false
			}
			if ran[i].at == ran[i-1].at && ran[i].seq < ran[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRunSemantics pins Run's two deliberately different stopping
// states: parking at the limit (events remain beyond it) advances now to
// the limit, while draining the queue empty leaves now at the last event's
// cycle. The machine's end-of-run drain depends on the empty-drain case —
// it calls Run with a huge sentinel limit and then reads Now() as the true
// end of simulation.
func TestEngineRunSemantics(t *testing.T) {
	// Park: an event beyond the limit leaves now == limit.
	e := NewEngine()
	e.At(30, func(Cycle) {})
	e.At(500, func(Cycle) {})
	if got := e.Run(100); got != 100 {
		t.Fatalf("parked Run returned %d, want limit 100", got)
	}
	if e.Now() != 100 || e.Pending() != 1 {
		t.Fatalf("after park: now=%d pending=%d, want now=100 pending=1", e.Now(), e.Pending())
	}

	// Empty drain: now stays at the last event's cycle, not the limit.
	if got := e.Run(1_000_000); got != 500 {
		t.Fatalf("drained Run returned %d, want last event cycle 500", got)
	}
	if e.Now() != 500 || e.Pending() != 0 {
		t.Fatalf("after drain: now=%d pending=%d, want now=500 pending=0", e.Now(), e.Pending())
	}

	// Run on an already-empty queue does not advance time at all.
	if got := e.Run(1_000_000); got != 500 {
		t.Fatalf("empty Run returned %d, want unchanged 500", got)
	}
}
