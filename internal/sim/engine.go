// Package sim provides the discrete-event simulation core used by every
// timing model in the repository: an event queue ordered by (cycle, sequence
// number), bandwidth-limited resources, and simple latency pipes.
//
// All timing models in this repository are cycle-approximate and
// deterministic: two runs with identical inputs schedule identical event
// sequences. Determinism is guaranteed by breaking ties in event time with a
// monotonically increasing sequence number.
//
// The queue is a timing wheel over pooled, intrusively-linked event records:
// events within wheelSpan cycles of the present live in per-cycle FIFO
// buckets (so same-cycle ordering is insertion order, which equals sequence
// order), and farther events wait in a small index min-heap keyed by
// (cycle, seq). Records are recycled through a free list, so steady-state
// scheduling allocates nothing. See docs/MODEL.md "Performance notes" for
// the ordering argument.
package sim

import "math/bits"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a fixed cycle.
type Event func(now Cycle)

// Handler is the closure-free way to schedule work: Post stores the handler
// interface plus two integer arguments in a pooled event record, so hot
// paths (token delivery, bank wakeups, issue loops) schedule without
// allocating a closure per event. Implementations are typically defined on
// a named pointer type of an existing struct, so posting reuses the
// struct's existing allocation.
type Handler interface {
	// OnEvent runs at the scheduled cycle with the arguments given to Post.
	OnEvent(now Cycle, a0, a1 uint64)
}

const (
	wheelBits = 12
	// wheelSize is the number of per-cycle buckets; events scheduled within
	// wheelSpan cycles of the present go straight to their bucket.
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
	wheelSpan = Cycle(wheelSize)
	occWords  = wheelSize / 64
)

// record is one pooled event. Records live in the engine's slab and link
// into bucket FIFOs (or the free list) through next; index 0 is a reserved
// sentinel so a zero link means "end of list".
type record struct {
	at   Cycle
	seq  uint64
	a0   uint64
	a1   uint64
	fn   Event
	h    Handler
	next int32
}

// Engine owns simulated time. Components schedule callbacks with At/After
// (closures) or Post/PostAfter (pooled handler records) and the engine runs
// them in deterministic (cycle, seq) order.
type Engine struct {
	now     Cycle
	seq     uint64
	pending int

	// slab holds every event record; free heads the recycled-record list.
	slab []record
	free int32

	// The wheel: bucketHead/bucketTail[s] list the events for the single
	// pending cycle congruent to s within the window [now, now+wheelSpan);
	// occ is the bucket-occupancy bitmap used to find the next cycle.
	bucketHead [wheelSize]int32
	bucketTail [wheelSize]int32
	occ        [occWords]uint64

	// overflow holds record indices for events at or beyond now+wheelSpan,
	// as a min-heap keyed by (at, seq). Records migrate into the wheel each
	// time now advances, before any new event can be inserted for their
	// cycle — which is what keeps bucket FIFO order equal to seq order.
	overflow []int32

	stepHook   func(at Cycle)
	depthProbe func(at Cycle, pending int)
}

// SetStepHook installs an observer called once per Step with the cycle of
// the event about to run, before time advances. It exists for the
// invariant-audit layer (tick-monotonicity checking); a nil hook (the
// default) costs one predictable branch per event.
func (e *Engine) SetStepHook(fn func(at Cycle)) { e.stepHook = fn }

// SetDepthProbe installs a second per-Step observer reporting the queue
// depth after the event is dequeued. It is a separate slot from
// SetStepHook — that one is owned by the invariant-audit layer — so the
// time-resolved probe layer and -audit compose. Nil (the default) costs
// one predictable branch per event.
func (e *Engine) SetDepthProbe(fn func(at Cycle, pending int)) { e.depthProbe = fn }

// NewEngine returns an engine positioned at cycle 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports how many events are waiting to run.
func (e *Engine) Pending() int { return e.pending }

// alloc takes a record off the free list, growing the slab when empty.
func (e *Engine) alloc() int32 {
	idx := e.free
	if idx == 0 {
		if len(e.slab) == 0 {
			e.slab = append(e.slab, record{}) // index 0 is the list sentinel
		}
		e.slab = append(e.slab, record{})
		return int32(len(e.slab) - 1)
	}
	e.free = e.slab[idx].next
	return idx
}

// At schedules fn to run at cycle at. Scheduling in the past is treated as
// scheduling for the current cycle (the event still runs after all events
// already queued for that cycle, preserving causality).
func (e *Engine) At(at Cycle, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	idx := e.alloc()
	r := &e.slab[idx]
	r.at, r.seq, r.fn, r.h = at, e.seq, fn, nil
	e.enqueue(idx, at)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) {
	e.At(e.now+delay, fn)
}

// Post schedules h.OnEvent(at, a0, a1) without allocating: the handler and
// its arguments are stored in a pooled record. Past cycles clamp to now,
// exactly as in At.
func (e *Engine) Post(at Cycle, h Handler, a0, a1 uint64) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	idx := e.alloc()
	r := &e.slab[idx]
	r.at, r.seq, r.a0, r.a1, r.fn, r.h = at, e.seq, a0, a1, nil, h
	e.enqueue(idx, at)
}

// PostAfter schedules h.OnEvent delay cycles from now.
func (e *Engine) PostAfter(delay Cycle, h Handler, a0, a1 uint64) {
	e.Post(e.now+delay, h, a0, a1)
}

// enqueue routes a filled record to its bucket or to the overflow heap.
func (e *Engine) enqueue(idx int32, at Cycle) {
	e.pending++
	if at-e.now < wheelSpan {
		e.bucketAppend(idx, at)
	} else {
		e.overflowPush(idx)
	}
}

// bucketAppend puts the record at the tail of its cycle's FIFO.
func (e *Engine) bucketAppend(idx int32, at Cycle) {
	slot := int(at) & wheelMask
	e.slab[idx].next = 0
	if e.bucketHead[slot] == 0 {
		e.bucketHead[slot] = idx
		e.occ[slot>>6] |= 1 << uint(slot&63)
	} else {
		e.slab[e.bucketTail[slot]].next = idx
	}
	e.bucketTail[slot] = idx
}

// migrate moves every overflow event now inside the wheel window onto the
// wheel. It must run each time now advances (including Run's park-at-limit)
// before any event executes or is inserted under the new window: overflow
// events carry smaller sequence numbers than any future insert for the same
// cycle, so appending them first keeps bucket FIFOs in sequence order.
func (e *Engine) migrate(now Cycle) {
	horizon := now + wheelSpan
	for len(e.overflow) > 0 && e.slab[e.overflow[0]].at < horizon {
		idx := e.overflowPop()
		e.bucketAppend(idx, e.slab[idx].at)
	}
}

// nextTime reports the cycle of the earliest pending event.
func (e *Engine) nextTime() (Cycle, bool) {
	start := int(e.now) & wheelMask
	if idx := e.bucketHead[start]; idx != 0 {
		return e.slab[idx].at, true
	}
	if slot := e.nextOccupied(start); slot >= 0 {
		return e.slab[e.bucketHead[slot]].at, true
	}
	if len(e.overflow) > 0 {
		return e.slab[e.overflow[0]].at, true
	}
	return 0, false
}

// nextOccupied scans the occupancy bitmap circularly from start. Because
// every pending wheel cycle lies within one span of now, circular slot
// distance equals cycle distance, so the first occupied slot is the
// earliest pending cycle.
func (e *Engine) nextOccupied(start int) int {
	w := start >> 6
	if word := e.occ[w] >> uint(start&63); word != 0 {
		return start + bits.TrailingZeros64(word)
	}
	for i := 1; i <= occWords; i++ {
		idx := (w + i) & (occWords - 1)
		if word := e.occ[idx]; word != 0 {
			return idx<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// Step runs the single earliest event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	slot := int(e.now) & wheelMask
	idx := e.bucketHead[slot]
	if idx == 0 {
		at, ok := e.nextTime()
		if !ok {
			return false
		}
		e.migrate(at)
		slot = int(at) & wheelMask
		idx = e.bucketHead[slot]
	}
	r := &e.slab[idx]
	next := r.next
	e.bucketHead[slot] = next
	if next == 0 {
		e.bucketTail[slot] = 0
		e.occ[slot>>6] &^= 1 << uint(slot&63)
	}
	at, fn, h, a0, a1 := r.at, r.fn, r.h, r.a0, r.a1
	r.fn, r.h = nil, nil
	r.next = e.free
	e.free = idx
	e.pending--
	if e.stepHook != nil {
		e.stepHook(at)
	}
	if e.depthProbe != nil {
		e.depthProbe(at, e.pending)
	}
	e.now = at
	if h != nil {
		h.OnEvent(at, a0, a1)
	} else {
		fn(at)
	}
	return true
}

// Run drains the event queue, advancing time until nothing remains or the
// cycle limit is exceeded. It returns the cycle at which it stopped.
//
// The two stopping conditions leave now in deliberately different states:
// parking at the limit (events remain beyond it) advances now to limit,
// while draining the queue empty leaves now at the last event's cycle. The
// machine relies on the latter — its end-of-run drain calls Run with a huge
// limit, and the audit layer's end-of-simulation cycle must be the last
// real event, not the sentinel limit. TestEngineRunSemantics pins both
// behaviours.
func (e *Engine) Run(limit Cycle) Cycle {
	for {
		at, ok := e.nextTime()
		if !ok {
			break
		}
		if at > limit {
			if e.now < limit {
				e.now = limit
				e.migrate(limit)
			}
			break
		}
		e.Step()
	}
	return e.now
}

// RunUntil drains events while cond keeps returning false, subject to the
// same cycle limit as Run. It returns true if cond was satisfied.
func (e *Engine) RunUntil(limit Cycle, cond func() bool) bool {
	for !cond() {
		at, ok := e.nextTime()
		if !ok || at > limit {
			return false
		}
		e.Step()
	}
	return true
}
