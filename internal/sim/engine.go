// Package sim provides the discrete-event simulation core used by every
// timing model in the repository: an event queue ordered by (cycle, sequence
// number), bandwidth-limited resources, and simple latency pipes.
//
// All timing models in this repository are cycle-approximate and
// deterministic: two runs with identical inputs schedule identical event
// sequences. Determinism is guaranteed by breaking ties in event time with a
// monotonically increasing sequence number.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a fixed cycle.
type Event func(now Cycle)

type queuedEvent struct {
	at  Cycle
	seq uint64
	fn  Event
}

type eventHeap []queuedEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(queuedEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine owns simulated time. Components schedule callbacks with At/After
// and the engine runs them in deterministic order.
type Engine struct {
	now      Cycle
	seq      uint64
	events   eventHeap
	stepHook func(at Cycle)
}

// SetStepHook installs an observer called once per Step with the cycle of
// the event about to run, before time advances. It exists for the
// invariant-audit layer (tick-monotonicity checking); a nil hook (the
// default) costs one predictable branch per event.
func (e *Engine) SetStepHook(fn func(at Cycle)) { e.stepHook = fn }

// NewEngine returns an engine positioned at cycle 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports how many events are waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at cycle at. Scheduling in the past is treated as
// scheduling for the current cycle (the event still runs after all events
// already queued for that cycle, preserving causality).
func (e *Engine) At(at Cycle, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, queuedEvent{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) {
	e.At(e.now+delay, fn)
}

// Step runs the single earliest event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(queuedEvent)
	if e.stepHook != nil {
		e.stepHook(ev.at)
	}
	e.now = ev.at
	ev.fn(e.now)
	return true
}

// Run drains the event queue, advancing time until nothing remains or the
// cycle limit is exceeded. It returns the cycle at which it stopped.
func (e *Engine) Run(limit Cycle) Cycle {
	for len(e.events) > 0 {
		if e.events[0].at > limit {
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}

// RunUntil drains events while cond keeps returning false, subject to the
// same cycle limit as Run. It returns true if cond was satisfied.
func (e *Engine) RunUntil(limit Cycle, cond func() bool) bool {
	for !cond() {
		if len(e.events) == 0 || e.events[0].at > limit {
			return false
		}
		e.Step()
	}
	return true
}
