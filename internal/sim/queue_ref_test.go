package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEngine is the original container/heap event queue, kept here as the
// ordering oracle: the timing-wheel engine must execute any schedule in
// exactly the same (cycle, seq) order.

type refEvent struct {
	at  Cycle
	seq uint64
	fn  Event
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); ev := old[n-1]; *h = old[:n-1]; return ev }

type refEngine struct {
	now    Cycle
	seq    uint64
	events refHeap
}

func (e *refEngine) At(at Cycle, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, refEvent{at: at, seq: e.seq, fn: fn})
}

func (e *refEngine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(refEvent)
	e.now = ev.at
	ev.fn(e.now)
	return true
}

// execRecord is one observed event execution.
type execRecord struct {
	at Cycle
	id uint64
}

// spawnPlan derives, purely from an event's id and the scenario seed, the
// offsets of the events it schedules when it runs — so both engines make
// identical scheduling decisions.
func spawnPlan(seed, id uint64) []int64 {
	rng := rand.New(rand.NewSource(int64(mixRef(seed ^ id))))
	if rng.Intn(3) == 0 {
		return nil
	}
	n := 1 + rng.Intn(3)
	out := make([]int64, n)
	for i := range out {
		switch rng.Intn(5) {
		case 0:
			out[i] = 0 // same-cycle tie
		case 1:
			out[i] = -int64(1 + rng.Intn(20)) // past: clamps to now
		case 2:
			out[i] = int64(1 + rng.Intn(64)) // near future
		case 3:
			out[i] = int64(1 + rng.Intn(wheelSize-1)) // anywhere in the wheel
		default:
			out[i] = int64(wheelSize + rng.Intn(10*wheelSize)) // overflow heap
		}
	}
	return out
}

func mixRef(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// postLogger exercises the Handler/Post path on the wheel engine: a0 is the
// event id, and the handler spawns that id's plan just like the closures.
type postLogger struct {
	t *wheelDriver
}

func (p *postLogger) OnEvent(now Cycle, a0, _ uint64) { p.t.ran(now, a0) }

// wheelDriver runs a scenario on the timing-wheel engine, alternating the
// closure (At) and pooled (Post) scheduling paths by event-id parity.
type wheelDriver struct {
	eng    *Engine
	seed   uint64
	nextID uint64
	log    []execRecord
	ph     *postLogger
}

func (d *wheelDriver) schedule(at Cycle, id uint64) {
	if id%2 == 0 {
		d.eng.Post(at, d.ph, id, 0)
		return
	}
	d.eng.At(at, func(now Cycle) { d.ran(now, id) })
}

func (d *wheelDriver) ran(now Cycle, id uint64) {
	d.log = append(d.log, execRecord{at: now, id: id})
	for _, off := range spawnPlan(d.seed, id) {
		d.nextID++
		d.schedule(Cycle(int64(now)+off), d.nextID)
	}
}

// refDriver runs the same scenario on the reference heap.
type refDriver struct {
	eng    *refEngine
	seed   uint64
	nextID uint64
	log    []execRecord
}

func (d *refDriver) schedule(at Cycle, id uint64) {
	d.eng.At(at, func(now Cycle) { d.ran(now, id) })
}

func (d *refDriver) ran(now Cycle, id uint64) {
	d.log = append(d.log, execRecord{at: now, id: id})
	for _, off := range spawnPlan(d.seed, id) {
		d.nextID++
		d.schedule(Cycle(int64(now)+off), d.nextID)
	}
}

// TestQueueOrderMatchesReferenceHeap drives randomized self-expanding
// schedules — same-cycle ties, past-cycle clamps, wheel-window inserts, and
// far-future overflow events — through both queues and requires identical
// execution order. The wheel engine additionally mixes the Post path in, so
// closure and pooled events are checked against each other too.
func TestQueueOrderMatchesReferenceHeap(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		wd := &wheelDriver{eng: NewEngine(), seed: seed}
		wd.ph = &postLogger{t: wd}
		rd := &refDriver{eng: &refEngine{}, seed: seed}

		// Seed both with the same initial batch, including duplicate cycles.
		rng := rand.New(rand.NewSource(int64(seed)))
		for i := 0; i < 30; i++ {
			at := Cycle(rng.Intn(3 * wheelSize))
			wd.nextID++
			wd.schedule(at, wd.nextID)
			rd.nextID++
			rd.schedule(at, rd.nextID)
		}

		const maxEvents = 20000
		for len(wd.log) < maxEvents && wd.eng.Step() {
		}
		for len(rd.log) < maxEvents && rd.eng.Step() {
		}

		if len(wd.log) != len(rd.log) {
			t.Fatalf("seed %d: wheel ran %d events, reference ran %d", seed, len(wd.log), len(rd.log))
		}
		for i := range wd.log {
			if wd.log[i] != rd.log[i] {
				t.Fatalf("seed %d: divergence at event %d: wheel %+v, reference %+v",
					seed, i, wd.log[i], rd.log[i])
			}
		}
	}
}

// TestQueueOrderAcrossRunPark checks that parking at a limit (which advances
// now without executing anything) does not perturb ordering relative to the
// reference, including overflow events migrating across the park.
func TestQueueOrderAcrossRunPark(t *testing.T) {
	e := NewEngine()
	r := &refEngine{}
	var elog, rlog []execRecord
	for i := uint64(0); i < 200; i++ {
		at := Cycle((i * 7919) % (5 * wheelSize))
		id := i
		e.At(at, func(now Cycle) { elog = append(elog, execRecord{now, id}) })
		r.At(at, func(now Cycle) { rlog = append(rlog, execRecord{now, id}) })
	}
	// Park repeatedly at limits that land between, on, and past events.
	for _, limit := range []Cycle{100, 101, wheelSize, wheelSize + 1, 3 * wheelSize, 10 * wheelSize} {
		e.Run(limit)
		for len(r.events) > 0 && r.events[0].at <= limit {
			r.Step()
		}
		// Schedule more work relative to the parked position.
		id := uint64(1000) + uint64(limit)
		e.At(e.Now()+5, func(now Cycle) { elog = append(elog, execRecord{now, id}) })
		r.now = e.Now()
		r.At(r.now+5, func(now Cycle) { rlog = append(rlog, execRecord{now, id}) })
	}
	e.Run(1 << 40)
	for r.Step() {
	}
	if len(elog) != len(rlog) {
		t.Fatalf("wheel ran %d events, reference ran %d", len(elog), len(rlog))
	}
	for i := range elog {
		if elog[i] != rlog[i] {
			t.Fatalf("divergence at %d: wheel %+v, reference %+v", i, elog[i], rlog[i])
		}
	}
}
