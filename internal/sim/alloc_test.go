package sim

import (
	"testing"

	"cachecraft/internal/obs"
)

// countHandler is a trivial pooled-event handler for alloc accounting.
type countHandler struct{ n uint64 }

func (h *countHandler) OnEvent(_ Cycle, a0, _ uint64) { h.n += a0 }

// TestPostStepZeroAllocs pins the tentpole guarantee: once the record pool
// is warm, scheduling and running pooled handler events allocates nothing.
func TestPostStepZeroAllocs(t *testing.T) {
	e := NewEngine()
	h := &countHandler{}
	// Warm the pool and the overflow heap's backing array.
	for i := 0; i < 64; i++ {
		e.Post(e.Now()+Cycle(i%7), h, 1, 0)
		e.Post(e.Now()+2*wheelSpan, h, 1, 0)
	}
	for e.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Post(e.Now()+3, h, 1, 0)
		e.Post(e.Now()+1, h, 1, 0)
		e.Post(e.Now()+wheelSpan+100, h, 1, 0) // overflow path
		e.Step()
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Post/Step allocated %.1f times per run, want 0", allocs)
	}
	if h.n == 0 {
		t.Fatal("handler never ran")
	}
}

// TestDepthProbeZeroAllocs is the observability PR's alloc guard: the
// engine hot path must stay allocation-free both with the depth probe
// detached (the default — one nil check per Step) and with a probe
// feeding a preallocated obs.Series (the -timeline path).
func TestDepthProbeZeroAllocs(t *testing.T) {
	run := func(e *Engine, h *countHandler) float64 {
		for i := 0; i < 64; i++ {
			e.Post(e.Now()+Cycle(i%7), h, 1, 0)
		}
		for e.Step() {
		}
		return testing.AllocsPerRun(1000, func() {
			e.Post(e.Now()+3, h, 1, 0)
			e.Post(e.Now()+1, h, 1, 0)
			e.Step()
			e.Step()
		})
	}

	t.Run("off", func(t *testing.T) {
		if allocs := run(NewEngine(), &countHandler{}); allocs != 0 {
			t.Fatalf("probe-off Step allocated %.1f times per run, want 0", allocs)
		}
	})
	t.Run("on", func(t *testing.T) {
		e := NewEngine()
		p := obs.NewProbesDepth(16, 32)
		depth := p.Series("sim.queue_depth", obs.Mean)
		e.SetDepthProbe(func(at Cycle, pending int) {
			depth.Add(uint64(at), float64(pending))
		})
		if allocs := run(e, &countHandler{}); allocs != 0 {
			t.Fatalf("probe-on Step allocated %.1f times per run, want 0", allocs)
		}
		p.Flush()
		if len(p.Snapshot()) == 0 {
			t.Fatal("depth probe never observed anything")
		}
	})
}

// TestAtReusesRecords checks the closure path also recycles its event
// records (the closure itself may allocate; the queue must not add to it).
func TestAtReusesRecords(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 32; i++ {
		e.At(e.Now()+1, func(Cycle) {})
	}
	for e.Step() {
	}
	slabLen := len(e.slab)
	for i := 0; i < 10000; i++ {
		e.At(e.Now()+1, func(Cycle) {})
		e.Step()
	}
	if len(e.slab) != slabLen {
		t.Fatalf("slab grew from %d to %d records under steady-state load", slabLen, len(e.slab))
	}
}
