package gpu

import (
	"testing"

	"cachecraft/internal/protect"
	"cachecraft/internal/sim"
)

// TestBankRouterCacheSideContract exercises the machine's CacheSide
// adapter against real banks: presence, pending visibility, inserts, and
// dirty marking — the surface the protection controllers program against.
func TestBankRouterCacheSideContract(t *testing.T) {
	m := buildMachine(t, protect.NewInlineNaive)
	var side protect.CacheSide = (*bankRouter)(m)

	addr := uint64(64) // sector 2 of line 0 → bank 0
	if side.Present(addr) {
		t.Fatal("empty cache reports presence")
	}
	side.Insert(0, addr, false)
	if !side.Present(addr) {
		t.Fatal("inserted sector absent")
	}
	side.MarkDirty(addr)
	if m.banks[0].cache.DirtyMask(0) == 0 {
		t.Fatal("MarkDirty did not stick")
	}

	// Pending visibility: a miss enqueued in the bank MSHR is pending
	// until its fill arrives.
	missAddr := uint64(4096 * uint64(m.cfg.L2Banks)) // line in bank 0, different set region
	missLine := m.banks[0].cache.LineAddr(missAddr)
	if m.bankIndexFor(missLine) != 0 {
		t.Fatalf("test address routes to bank %d", m.bankIndexFor(missLine))
	}
	ti := m.allocToken()
	m.tokens[ti] = l2Token{lineAddr: missLine, remaining: 0b0001, recIdx: -1,
		respond: func(sim.Cycle, uint64) {}}
	m.banks[0].enqueueMiss(0, missLine, 0b0001, l2Target{
		sectorMask: 0b0001,
		tok:        ti,
	})
	if !side.Pending(missLine) {
		t.Fatal("in-flight miss not visible as pending")
	}
	m.eng.Run(1 << 24)
	if side.Pending(missLine) {
		t.Fatal("still pending after fill")
	}
	if !side.Present(missLine) {
		t.Fatal("filled sector absent")
	}
}

// TestRedTagRoutingConsistent: a redundancy address routes to the same
// bank as its tag-stripped form, so RedTag-space lines spread like data.
func TestRedTagRoutingConsistent(t *testing.T) {
	m := buildMachine(t, protect.NewECCCache)
	for a := uint64(0); a < 1<<16; a += 128 {
		if m.bankIndexFor(a) != m.bankIndexFor(protect.RedTag|a) {
			t.Fatalf("addr %#x routes differently with RedTag", a)
		}
	}
}

// TestInsertEvictionFlowsToControllerWriteback: inserting into a full set
// evicts; dirty victims must reach the scheme as writebacks.
func TestInsertEvictionFlowsToControllerWriteback(t *testing.T) {
	m := buildMachine(t, protect.NewNone)
	b := m.banks[0]
	cfg := b.cache.Config()
	// Fill one set beyond capacity with dirty lines. Consecutive bank-0
	// lines that share a set: stride = sets*lineBytes*banks.
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	stride := uint64(sets * cfg.LineBytes * m.cfg.L2Banks)
	before := m.dram.Stats.Get("bytes_writeback")
	for i := 0; i <= cfg.Ways; i++ {
		b.fill(0, uint64(i)*stride, 0b0001, 0b0001)
	}
	m.eng.Run(1 << 24)
	if m.dram.Stats.Get("bytes_writeback") == before {
		// Hashed sets may spread the stride; fall back to brute-force
		// filling many lines until an eviction happens.
		for i := 0; i < sets*cfg.Ways*2; i++ {
			b.fill(0, uint64(i)*uint64(cfg.LineBytes)*uint64(m.cfg.L2Banks), 0b0001, 0b0001)
		}
		m.eng.Run(1 << 24)
		if m.dram.Stats.Get("bytes_writeback") == before {
			t.Fatal("dirty evictions never reached the controller")
		}
	}
}
