package gpu

import (
	"testing"

	"cachecraft/internal/config"
	"cachecraft/internal/core"
	"cachecraft/internal/layout"
	"cachecraft/internal/protect"
	"cachecraft/internal/trace"
)

func quickCfg() config.GPU {
	cfg := config.Quick()
	cfg.AccessesPerSM = 300
	return cfg
}

func runQuick(t *testing.T, workload string, factory protect.Factory) Result {
	t.Helper()
	m, err := New(quickCfg(), workload, factory)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMachineRunsEveryWorkloadUnprotected(t *testing.T) {
	for _, wl := range trace.Names() {
		res := runQuick(t, wl, protect.NewNone)
		if res.Cycles == 0 || res.Instructions == 0 {
			t.Fatalf("%s: empty result %+v", wl, res)
		}
		if res.IPC <= 0 {
			t.Fatalf("%s: IPC = %v", wl, res.IPC)
		}
		if res.DRAMBytes["redundancy"] != 0 || res.DRAMBytes["rmw"] != 0 {
			t.Fatalf("%s: unprotected run produced protection traffic: %v", wl, res.DRAMBytes)
		}
	}
}

func TestMachineRunsEveryWorkloadUnderEverySchemeShape(t *testing.T) {
	factories := map[string]protect.Factory{
		"inline-naive": protect.NewInlineNaive,
		"ecc-cache":    protect.NewECCCache,
		"cachecraft":   core.NewFactory(core.DefaultOptions()),
	}
	for name, f := range factories {
		res := runQuick(t, "stream", f)
		if res.DRAMBytes["redundancy"] == 0 {
			t.Fatalf("%s: no redundancy traffic recorded", name)
		}
	}
}

func TestProtectionIsPerformanceTransparent(t *testing.T) {
	// Every scheme must retire the same instruction count (protection can
	// change timing, never which work completes).
	var want uint64
	for i, f := range []protect.Factory{
		protect.NewNone, protect.NewInlineNaive, protect.NewECCCache,
		core.NewFactory(core.DefaultOptions()),
	} {
		res := runQuick(t, "spmv", f)
		if i == 0 {
			want = res.Instructions
			continue
		}
		if res.Instructions != want {
			t.Fatalf("scheme %d retired %d instructions, want %d", i, res.Instructions, want)
		}
	}
}

func TestNaiveSlowerThanUnprotected(t *testing.T) {
	none := runQuick(t, "random", protect.NewNone)
	naive := runQuick(t, "random", protect.NewInlineNaive)
	if naive.Cycles <= none.Cycles {
		t.Fatalf("inline-naive (%d cycles) should be slower than none (%d)", naive.Cycles, none.Cycles)
	}
	// Redundancy traffic should be substantial for random access.
	red := naive.DRAMBytes["redundancy"]
	demand := naive.DRAMBytes["demand"]
	if red*3 < demand {
		t.Fatalf("naive redundancy bytes %d too small vs demand %d", red, demand)
	}
}

func TestCacheCraftReducesRedundancyTraffic(t *testing.T) {
	naive := runQuick(t, "stream", protect.NewInlineNaive)
	cc := runQuick(t, "stream", core.NewFactory(core.DefaultOptions()))
	if cc.DRAMBytes["redundancy"] >= naive.DRAMBytes["redundancy"] {
		t.Fatalf("cachecraft redundancy %d should be below naive %d",
			cc.DRAMBytes["redundancy"], naive.DRAMBytes["redundancy"])
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runQuick(t, "bfs", core.NewFactory(core.DefaultOptions()))
	b := runQuick(t, "bfs", core.NewFactory(core.DefaultOptions()))
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a.Cycles, a.Instructions, b.Cycles, b.Instructions)
	}
	for k, v := range a.DRAMBytes {
		if b.DRAMBytes[k] != v {
			t.Fatalf("nondeterministic traffic %s: %d vs %d", k, v, b.DRAMBytes[k])
		}
	}
}

func TestFootprintValidation(t *testing.T) {
	cfg := quickCfg()
	cfg.FootprintBytes = cfg.MemoryBytes * 2
	if _, err := New(cfg, "stream", protect.NewNone); err == nil {
		t.Fatal("oversized footprint accepted")
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	if _, err := New(quickCfg(), "nope", protect.NewNone); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCoalesce(t *testing.T) {
	a := trace.Access{
		Addrs: []uint64{0, 4, 8, 12, 16, 20, 24, 28}, // one full sector
		Bytes: 4,
	}
	reqs := Coalesce(a, 32)
	if len(reqs) != 1 {
		t.Fatalf("coalesced into %d sectors, want 1", len(reqs))
	}
	if reqs[0].ByteMask != FullByteMask {
		t.Fatalf("byte mask %#x, want full", reqs[0].ByteMask)
	}
	// Partial sector.
	b := trace.Access{Addrs: []uint64{64}, Bytes: 4}
	reqs = Coalesce(b, 32)
	if len(reqs) != 1 || reqs[0].Addr != 64 || reqs[0].ByteMask != 0x0000000f {
		t.Fatalf("partial coalesce wrong: %+v", reqs)
	}
	// Sector-spanning access.
	c := trace.Access{Addrs: []uint64{30}, Bytes: 4}
	reqs = Coalesce(c, 32)
	if len(reqs) != 2 {
		t.Fatalf("spanning access got %d sectors", len(reqs))
	}
}

func TestGroupByLine(t *testing.T) {
	reqs := []SectorReq{
		{Addr: 0, ByteMask: FullByteMask},
		{Addr: 32, ByteMask: 1},
		{Addr: 128, ByteMask: FullByteMask},
	}
	groups := groupByLine(reqs, 128, 32)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].lineAddr != 0 || groups[0].sectorMask != 0b0011 || groups[0].fullMask != 0b0001 {
		t.Fatalf("group 0 = %+v", groups[0])
	}
	if groups[1].lineAddr != 128 || groups[1].sectorMask != 0b0001 {
		t.Fatalf("group 1 = %+v", groups[1])
	}
}

func TestReconstructionFeedbackFlows(t *testing.T) {
	// transpose re-touches granule siblings with a delay, so reconstructed
	// sectors get referenced before eviction.
	res := runQuick(t, "transpose", core.NewFactory(core.DefaultOptions()))
	cs := res.ControllerSt
	if cs.Get("reconstruct_sectors") == 0 {
		t.Fatal("transpose should trigger reconstruction")
	}
	if cs.Get("reconstruct_used") == 0 {
		t.Fatal("transpose's reconstructed sectors should be used")
	}
}

func TestReconstructionMergesWithDemand(t *testing.T) {
	// stream demands granule siblings almost immediately after the miss
	// that reconstructs them: those demands must merge with the in-flight
	// reconstruction instead of duplicating the DRAM fetch.
	res := runQuick(t, "stream", core.NewFactory(core.DefaultOptions()))
	cs := res.ControllerSt
	if cs.Get("reconstruct_merged") == 0 {
		t.Fatal("stream should merge demand misses into in-flight reconstructions")
	}
}

func TestRowLocalLayoutEndToEnd(t *testing.T) {
	cfg := quickCfg()
	cfg.Layout = "row-local"
	var want uint64
	for i, s := range []protect.Factory{
		protect.NewNone, protect.NewInlineNaive, protect.NewECCCache,
		core.NewFactory(core.DefaultOptions()),
	} {
		m, err := New(cfg, "scan", s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("scheme %d under row-local: %v", i, err)
		}
		if i == 0 {
			want = res.Instructions
			continue
		}
		if res.Instructions != want {
			t.Fatalf("scheme %d retired %d, want %d", i, res.Instructions, want)
		}
	}
}

func TestGeometry1of16EndToEnd(t *testing.T) {
	cfg := quickCfg()
	cfg.Geometry = layout.Geometry1of16() // 512B granules: 4 lines each
	m, err := New(cfg, "stream", core.NewFactory(core.DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Redundancy traffic must reflect the halved ratio: red bytes well
	// under 1/8 of demand+reconstruct.
	data := res.DRAMBytes["demand"] + res.DRAMBytes["reconstruct"]
	red := res.DRAMBytes["redundancy"]
	if red == 0 || red*8 > data {
		t.Fatalf("1/16 geometry: red %d vs data %d", red, data)
	}
	if res.ControllerSt.Get("reconstruct_sectors") == 0 {
		t.Fatal("no reconstruction under 512B granules")
	}
}

func TestErrorStormEndToEnd(t *testing.T) {
	cfg := quickCfg()
	clean, err := Run2(cfg, "stream")
	if err != nil {
		t.Fatal(err)
	}
	cfg.ErrorRatePPM = 200_000 // 20% of granules
	stormy, err := Run2(cfg, "stream")
	if err != nil {
		t.Fatal(err)
	}
	if stormy.ControllerSt.Get("corrected_errors") == 0 {
		t.Fatal("no errors corrected under storm")
	}
	if stormy.Cycles <= clean.Cycles {
		t.Fatalf("storm (%d cy) should be slower than clean (%d cy)", stormy.Cycles, clean.Cycles)
	}
}

// Run2 is a test helper running cachecraft on the given config.
func Run2(cfg config.GPU, wl string) (Result, error) {
	m, err := New(cfg, wl, core.NewFactory(core.DefaultOptions()))
	if err != nil {
		return Result{}, err
	}
	return m.Run()
}
