package gpu

import (
	"sync"
	"testing"

	"cachecraft/internal/schemes"
)

// TestMachinesAreConcurrencySafe runs many independent Machine instances
// for the same (config, workload, scheme) triple in parallel and requires
// every run to reproduce the serial reference exactly. Machine instances
// share no mutable package state and workload generation is seeded per
// (seed, SMID), so this must hold — run it under -race to prove it.
func TestMachinesAreConcurrencySafe(t *testing.T) {
	factory, err := schemes.ByName("cachecraft")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workload string) Result {
		m, err := New(quickCfg(), workload, factory)
		if err != nil {
			t.Error(err)
			return Result{}
		}
		res, err := m.Run()
		if err != nil {
			t.Error(err)
			return Result{}
		}
		return res
	}

	workloads := []string{"stream", "scan", "bfs", "histogram"}
	refs := make(map[string]Result, len(workloads))
	for _, wl := range workloads {
		refs[wl] = run(wl)
	}
	if t.Failed() {
		t.FailNow()
	}

	const perWorkload = 4
	var wg sync.WaitGroup
	results := make([]Result, len(workloads)*perWorkload)
	names := make([]string, len(workloads)*perWorkload)
	for i, wl := range workloads {
		for j := 0; j < perWorkload; j++ {
			wg.Add(1)
			go func(slot int, wl string) {
				defer wg.Done()
				results[slot] = run(wl)
				names[slot] = wl
			}(i*perWorkload+j, wl)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, res := range results {
		ref := refs[names[i]]
		if res.Cycles != ref.Cycles || res.Instructions != ref.Instructions {
			t.Fatalf("%s: concurrent run diverged: cycles %d/%d, instructions %d/%d",
				names[i], res.Cycles, ref.Cycles, res.Instructions, ref.Instructions)
		}
		for class, bytes := range ref.DRAMBytes {
			if res.DRAMBytes[class] != bytes {
				t.Fatalf("%s: concurrent run diverged on DRAM %s bytes: %d vs %d",
					names[i], class, res.DRAMBytes[class], bytes)
			}
		}
	}
}
