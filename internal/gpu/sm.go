package gpu

import (
	"cachecraft/internal/cache"
	"cachecraft/internal/sim"
	"cachecraft/internal/trace"
)

// smAccess tracks one in-flight warp access: it retires when all its
// sector requests have completed. Accesses are pooled in the SM's slab and
// referenced by slot index from tokens and L1 waiter chains.
type smAccess struct {
	instrs    uint64
	remaining int32
	dependent bool
}

// l1Waiter is one pooled node in a sector's L1 miss-merge chain. Index 0
// of the waiter slab is a reserved sentinel, so a zero link ends a chain.
type l1Waiter struct {
	rec  int32
	next int32
}

// SM models one streaming multiprocessor's memory front end: it issues
// warp accesses from its workload, filters loads through a private
// sectored L1, and tracks outstanding accesses against an occupancy limit.
type SM struct {
	id int
	m  *Machine
	wl trace.Workload

	l1      *cache.Cache
	l1mshr  map[uint64]int32 // sector address → waiter-chain head
	pending int              // in-flight accesses

	blocked        bool // a dependent access is outstanding
	finished       bool
	issueScheduled bool

	instrRetired uint64
	accessesDone uint64

	// Pools and per-issue scratch (reused, never escaping an issue).
	accs    []smAccess
	accFree []int32
	waiters []l1Waiter
	wFree   int32

	reqScratch   []SectorReq
	groupScratch []lineGroup
}

func newSM(id int, m *Machine, wl trace.Workload) *SM {
	cfg := m.cfg.L1
	return &SM{
		id:      id,
		m:       m,
		wl:      wl,
		l1:      cache.New(cfg),
		l1mshr:  make(map[uint64]int32),
		waiters: make([]l1Waiter, 1), // slot 0 is the chain sentinel
	}
}

func (s *SM) allocAcc() int32 {
	if n := len(s.accFree); n > 0 {
		idx := s.accFree[n-1]
		s.accFree = s.accFree[:n-1]
		return idx
	}
	s.accs = append(s.accs, smAccess{})
	return int32(len(s.accs) - 1)
}

func (s *SM) freeAcc(idx int32) { s.accFree = append(s.accFree, idx) }

func (s *SM) allocWaiter(rec int32) int32 {
	idx := s.wFree
	if idx == 0 {
		s.waiters = append(s.waiters, l1Waiter{rec: rec})
		return int32(len(s.waiters) - 1)
	}
	s.wFree = s.waiters[idx].next
	s.waiters[idx] = l1Waiter{rec: rec}
	return idx
}

func (s *SM) freeWaiter(idx int32) {
	s.waiters[idx].next = s.wFree
	s.wFree = idx
}

// start arms the SM's issue loop.
func (s *SM) start() { s.scheduleIssue(0) }

// issueHandler runs the SM's issue loop as a pooled event.
type issueHandler SM

func (h *issueHandler) OnEvent(now sim.Cycle, _, _ uint64) {
	s := (*SM)(h)
	s.issueScheduled = false
	s.tryIssue(now)
}

// l1HitHandler completes a0's access record by a1 sectors after the L1
// hit latency.
type l1HitHandler SM

func (h *l1HitHandler) OnEvent(now sim.Cycle, a0, a1 uint64) {
	(*SM)(h).completeSectorsIdx(now, int32(a0), int(a1))
}

// scheduleIssue arms one issue event at the given cycle (idempotent while
// one is already armed).
func (s *SM) scheduleIssue(at sim.Cycle) {
	if s.issueScheduled || s.finished {
		return
	}
	s.issueScheduled = true
	s.m.eng.Post(at, (*issueHandler)(s), 0, 0)
}

// tryIssue issues the next warp access if occupancy and dependences allow.
func (s *SM) tryIssue(now sim.Cycle) {
	if s.finished || s.blocked {
		return
	}
	if s.pending >= s.m.cfg.MaxOutstanding {
		return // re-armed on completion
	}
	a, ok := s.wl.Next()
	if !ok {
		s.finished = true
		s.m.smFinished(now)
		return
	}
	s.issue(now, a)
	// Pace the next issue by the access's compute weight: heavier compute
	// between memory operations means more latency tolerance.
	gap := sim.Cycle(1 + a.ComputeWeight/4)
	s.scheduleIssue(now + gap)
}

// issue splits the access into sector requests and routes them.
func (s *SM) issue(now sim.Cycle, a trace.Access) {
	s.reqScratch = coalesceInto(s.reqScratch[:0], a, s.m.cfg.L1.SectorBytes)
	reqs := s.reqScratch
	ri := s.allocAcc()
	s.accs[ri] = smAccess{
		remaining: int32(len(reqs)),
		instrs:    uint64(1 + a.ComputeWeight),
		dependent: a.Dependent,
	}
	s.pending++
	if a.Dependent {
		s.blocked = true
	}
	s.m.stSectorReqs.Add(uint64(len(reqs)))
	if s.m.prIssue != nil {
		s.m.prIssue.Add(uint64(now), float64(len(reqs)))
	}

	s.groupScratch = groupByLineInto(s.groupScratch[:0], reqs, s.m.cfg.L1.LineBytes, s.m.cfg.L1.SectorBytes)
	groups := s.groupScratch
	if a.Write {
		for i := range groups {
			s.m.sendStore(now, s.id, groups[i], ri)
		}
		return
	}
	for i := range groups {
		s.issueLoadGroup(now, ri, groups[i])
	}
}

// issueLoadGroup filters one line's sectors through the L1 and sends the
// misses to the L2.
func (s *SM) issueLoadGroup(now sim.Cycle, ri int32, g lineGroup) {
	spl := s.l1.SectorsPerLine()
	var sendMask uint64
	for i := 0; i < spl; i++ {
		if g.sectorMask&(1<<i) == 0 {
			continue
		}
		sa := g.lineAddr + uint64(i*s.m.cfg.L1.SectorBytes)
		if s.l1.Access(sa, false) == cache.Hit {
			s.m.stL1Hits.Inc()
			s.m.eng.Post(now+s.m.cfg.L1Latency, (*l1HitHandler)(s), uint64(ri), 1)
			continue
		}
		s.m.stL1Misses.Inc()
		if head, ok := s.l1mshr[sa]; ok {
			// Merge with the in-flight fetch, appending at the chain tail
			// so wake order stays arrival order.
			tail := head
			for s.waiters[tail].next != 0 {
				tail = s.waiters[tail].next
			}
			s.waiters[tail].next = s.allocWaiter(ri)
			continue
		}
		s.l1mshr[sa] = s.allocWaiter(ri)
		sendMask |= 1 << i
	}
	if sendMask == 0 {
		return
	}
	s.m.sendRead(now, s.id, g.lineAddr, sendMask)
}

// onLoadResponse fills the L1 and wakes every access waiting on the
// returned sectors.
func (s *SM) onLoadResponse(now sim.Cycle, lineAddr uint64, mask uint64) {
	var ev cache.Eviction
	if s.l1.FillInto(lineAddr, mask, 0, &ev) && ev.DirtyMask != 0 {
		// The L1 is write-through; dirty evictions cannot happen.
		panic("gpu: dirty eviction from a write-through L1")
	}
	for i := 0; i < s.l1.SectorsPerLine(); i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		sa := lineAddr + uint64(i*s.m.cfg.L1.SectorBytes)
		n, ok := s.l1mshr[sa]
		if !ok {
			continue
		}
		delete(s.l1mshr, sa)
		for n != 0 {
			w := s.waiters[n]
			s.freeWaiter(n)
			s.completeSectorsIdx(now, w.rec, 1)
			n = w.next
		}
	}
}

func popcount(m uint64) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

// completeSectorsIdx retires n sector completions of one pooled access,
// retiring the access itself (and recycling its slot) when the count
// reaches zero.
func (s *SM) completeSectorsIdx(now sim.Cycle, ri int32, n int) {
	rec := &s.accs[ri]
	rec.remaining -= int32(n)
	if rec.remaining > 0 {
		return
	}
	if rec.remaining < 0 {
		panic("gpu: access completed more sectors than issued")
	}
	s.pending--
	s.instrRetired += rec.instrs
	s.accessesDone++
	dep := rec.dependent
	s.freeAcc(ri)
	if dep {
		s.blocked = false
	}
	s.m.accessRetired(now)
	s.scheduleIssue(now + 1)
}
