package gpu

import (
	"cachecraft/internal/cache"
	"cachecraft/internal/sim"
	"cachecraft/internal/trace"
)

// smAccess tracks one in-flight warp access: it retires when all its
// sector requests have completed.
type smAccess struct {
	remaining int
	instrs    uint64
	dependent bool
}

// SM models one streaming multiprocessor's memory front end: it issues
// warp accesses from its workload, filters loads through a private
// sectored L1, and tracks outstanding accesses against an occupancy limit.
type SM struct {
	id int
	m  *Machine
	wl trace.Workload

	l1      *cache.Cache
	l1mshr  map[uint64][]*smAccess // sector address → waiting accesses
	pending int                    // in-flight accesses

	blocked        bool // a dependent access is outstanding
	finished       bool
	issueScheduled bool

	instrRetired uint64
	accessesDone uint64
}

func newSM(id int, m *Machine, wl trace.Workload) *SM {
	cfg := m.cfg.L1
	return &SM{
		id:     id,
		m:      m,
		wl:     wl,
		l1:     cache.New(cfg),
		l1mshr: make(map[uint64][]*smAccess),
	}
}

// start arms the SM's issue loop.
func (s *SM) start() { s.scheduleIssue(0) }

// scheduleIssue arms one issue event at the given cycle (idempotent while
// one is already armed).
func (s *SM) scheduleIssue(at sim.Cycle) {
	if s.issueScheduled || s.finished {
		return
	}
	s.issueScheduled = true
	s.m.eng.At(at, func(now sim.Cycle) {
		s.issueScheduled = false
		s.tryIssue(now)
	})
}

// tryIssue issues the next warp access if occupancy and dependences allow.
func (s *SM) tryIssue(now sim.Cycle) {
	if s.finished || s.blocked {
		return
	}
	if s.pending >= s.m.cfg.MaxOutstanding {
		return // re-armed on completion
	}
	a, ok := s.wl.Next()
	if !ok {
		s.finished = true
		s.m.smFinished(now)
		return
	}
	s.issue(now, a)
	// Pace the next issue by the access's compute weight: heavier compute
	// between memory operations means more latency tolerance.
	gap := sim.Cycle(1 + a.ComputeWeight/4)
	s.scheduleIssue(now + gap)
}

// issue splits the access into sector requests and routes them.
func (s *SM) issue(now sim.Cycle, a trace.Access) {
	reqs := Coalesce(a, s.m.cfg.L1.SectorBytes)
	rec := &smAccess{
		remaining: len(reqs),
		instrs:    uint64(1 + a.ComputeWeight),
		dependent: a.Dependent,
	}
	s.pending++
	if a.Dependent {
		s.blocked = true
	}
	s.m.stats.Add("sector_requests", uint64(len(reqs)))

	groups := groupByLine(reqs, s.m.cfg.L1.LineBytes, s.m.cfg.L1.SectorBytes)
	if a.Write {
		for _, g := range groups {
			s.m.sendStore(now, s.id, g, func(at sim.Cycle, mask uint64) {
				s.completeSectors(at, rec, popcountMask(mask))
			})
		}
		return
	}
	for _, g := range groups {
		s.issueLoadGroup(now, rec, g)
	}
}

// issueLoadGroup filters one line's sectors through the L1 and sends the
// misses to the L2.
func (s *SM) issueLoadGroup(now sim.Cycle, rec *smAccess, g lineGroup) {
	spl := s.l1.SectorsPerLine()
	var sendMask uint64
	for i := 0; i < spl; i++ {
		if g.sectorMask&(1<<i) == 0 {
			continue
		}
		sa := g.lineAddr + uint64(i*s.m.cfg.L1.SectorBytes)
		if s.l1.Access(sa, false) == cache.Hit {
			s.m.stats.Inc("l1_hits")
			s.m.eng.At(now+s.m.cfg.L1Latency, func(at sim.Cycle) {
				s.completeSectors(at, rec, 1)
			})
			continue
		}
		s.m.stats.Inc("l1_misses")
		if waiters, ok := s.l1mshr[sa]; ok {
			// Merge with the in-flight fetch.
			s.l1mshr[sa] = append(waiters, rec)
			continue
		}
		s.l1mshr[sa] = []*smAccess{rec}
		sendMask |= 1 << i
	}
	if sendMask == 0 {
		return
	}
	line := g.lineAddr
	s.m.sendRead(now, s.id, line, sendMask, func(at sim.Cycle, got uint64) {
		s.onLoadResponse(at, line, got)
	})
}

// onLoadResponse fills the L1 and wakes every access waiting on the
// returned sectors.
func (s *SM) onLoadResponse(now sim.Cycle, lineAddr uint64, mask uint64) {
	if ev := s.l1.Fill(lineAddr, mask, 0); ev != nil && ev.DirtyMask != 0 {
		// The L1 is write-through; dirty evictions cannot happen.
		panic("gpu: dirty eviction from a write-through L1")
	}
	for i := 0; i < s.l1.SectorsPerLine(); i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		sa := lineAddr + uint64(i*s.m.cfg.L1.SectorBytes)
		waiters := s.l1mshr[sa]
		delete(s.l1mshr, sa)
		for _, rec := range waiters {
			s.completeSectors(now, rec, 1)
		}
	}
}

// completeSectors retires n sector completions of one access, retiring the
// access itself when the count reaches zero.
func popcountMask(m uint64) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

func (s *SM) completeSectors(now sim.Cycle, rec *smAccess, n int) {
	rec.remaining -= n
	if rec.remaining > 0 {
		return
	}
	if rec.remaining < 0 {
		panic("gpu: access completed more sectors than issued")
	}
	s.pending--
	s.instrRetired += rec.instrs
	s.accessesDone++
	if rec.dependent {
		s.blocked = false
	}
	s.m.accessRetired(now)
	s.scheduleIssue(now + 1)
}
