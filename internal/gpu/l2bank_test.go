package gpu

import (
	"testing"

	"cachecraft/internal/core"
	"cachecraft/internal/protect"
	"cachecraft/internal/sim"
)

// buildMachine wires a machine without running it, for bank-level tests.
func buildMachine(t *testing.T, scheme protect.Factory) *Machine {
	t.Helper()
	cfg := quickCfg()
	m, err := New(cfg, "stream", scheme)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBankReadHitRespondsWithoutController(t *testing.T) {
	m := buildMachine(t, protect.NewNone)
	b := m.banks[0]
	lineAddr := uint64(0) // line 0 routes to bank 0
	b.fill(0, lineAddr, 0b1111, 0)

	var gotMask uint64
	b.HandleRead(0, lineAddr, 0b0011, func(now sim.Cycle, mask uint64) {
		gotMask |= mask
	})
	m.eng.Run(1 << 20)
	if gotMask != 0b0011 {
		t.Fatalf("hit response mask = %#b", gotMask)
	}
	if m.envStats.Get("red_reads_dram") != 0 {
		t.Fatal("hit must not reach the controller")
	}
}

func TestBankMissSplitsHitAndMissBatches(t *testing.T) {
	m := buildMachine(t, protect.NewNone)
	b := m.banks[0]
	b.fill(0, 0, 0b0001, 0)

	var batches []uint64
	b.HandleRead(0, 0, 0b0011, func(now sim.Cycle, mask uint64) {
		batches = append(batches, mask)
	})
	m.eng.Run(1 << 20)
	if len(batches) != 2 {
		t.Fatalf("batches = %v, want hit then miss", batches)
	}
	if batches[0] != 0b0001 || batches[1] != 0b0010 {
		t.Fatalf("batches = %#b,%#b", batches[0], batches[1])
	}
	if b.cache.Probe(32) == 0 {
		t.Fatal("missing sector not filled after controller response")
	}
}

func TestBankMergesConcurrentMisses(t *testing.T) {
	m := buildMachine(t, protect.NewInlineNaive)
	b := m.banks[0]
	responses := 0
	for i := 0; i < 3; i++ {
		b.HandleRead(0, 0, 0b0001, func(sim.Cycle, uint64) { responses++ })
	}
	m.eng.Run(1 << 20)
	if responses != 3 {
		t.Fatalf("responses = %d", responses)
	}
	// One demand fetch, one redundancy fetch — the merges added nothing.
	if got := m.dram.Stats.Get("bytes_demand"); got != 32 {
		t.Fatalf("demand bytes = %d, want 32 (merged)", got)
	}
}

func TestBankStoreFullCoverageAllocatesWithoutFetch(t *testing.T) {
	m := buildMachine(t, protect.NewInlineNaive)
	b := m.banks[0]
	acked := uint64(0)
	b.HandleStore(0, 0, 0b0001, 0b0001, func(now sim.Cycle, mask uint64) { acked |= mask })
	m.eng.Run(1 << 20)
	if acked != 0b0001 {
		t.Fatalf("ack mask = %#b", acked)
	}
	if m.dram.Stats.Get("bytes_read") != 0 {
		t.Fatal("full-coverage store must not read DRAM")
	}
	if b.cache.DirtyMask(0) != 0b0001 {
		t.Fatal("stored sector not dirty")
	}
}

func TestBankStorePartialCoverageFetchesUnderECC(t *testing.T) {
	m := buildMachine(t, protect.NewInlineNaive)
	b := m.banks[0]
	acked := uint64(0)
	b.HandleStore(0, 0, 0b0001, 0, func(now sim.Cycle, mask uint64) { acked |= mask })
	m.eng.Run(1 << 20)
	if acked != 0b0001 {
		t.Fatalf("ack mask = %#b", acked)
	}
	if m.stats.Get("l2_rmw_fetches") != 1 {
		t.Fatalf("rmw fetches = %d", m.stats.Get("l2_rmw_fetches"))
	}
	if m.dram.Stats.Get("bytes_rmw")+m.dram.Stats.Get("bytes_demand") == 0 {
		t.Fatal("partial store fetched nothing")
	}
	if b.cache.DirtyMask(0) != 0b0001 {
		t.Fatal("fetched sector not marked dirty after store")
	}
}

func TestBankStorePartialCoverageNoFetchUnprotected(t *testing.T) {
	m := buildMachine(t, protect.NewNone)
	b := m.banks[0]
	b.HandleStore(0, 0, 0b0001, 0, func(sim.Cycle, uint64) {})
	m.eng.Run(1 << 20)
	if m.dram.Stats.Get("bytes_read") != 0 {
		t.Fatal("unprotected partial store must not read (byte-masked write)")
	}
	if m.stats.Get("l2_store_allocs") != 1 {
		t.Fatal("store should allocate in place")
	}
}

func TestBankMSHRBackpressureParksAndReplays(t *testing.T) {
	cfg := quickCfg()
	cfg.L2MSHRs = 2
	m, err := New(cfg, "stream", protect.NewInlineNaive)
	if err != nil {
		t.Fatal(err)
	}
	b := m.banks[0]
	responded := 0
	// Issue misses on more distinct lines than MSHR entries (lines that
	// route to bank 0: line numbers ≡ 0 mod numBanks).
	stride := uint64(cfg.L2.LineBytes * cfg.L2Banks)
	for i := 0; i < 6; i++ {
		b.HandleRead(0, uint64(i)*stride, 0b0001, func(sim.Cycle, uint64) { responded++ })
	}
	m.eng.Run(1 << 24)
	if responded != 6 {
		t.Fatalf("responded = %d of 6", responded)
	}
	if m.stats.Get("l2_mshr_stalls") == 0 {
		t.Fatal("no backpressure recorded despite tiny MSHR file")
	}
}

func TestReconScoreboardAgesOutAsWaste(t *testing.T) {
	m := buildMachine(t, core.NewFactory(core.DefaultOptions()))
	b := m.banks[0]
	stride := uint64(m.cfg.L2.LineBytes * m.cfg.L2Banks)
	b.InsertReconstructed(0, 64) // sector in bank 0, never referenced
	// Age the scoreboard past the horizon with unrelated fills.
	for i := uint64(1); i <= reconHorizon+2; i++ {
		b.fill(0, i*stride, 0b0001, 0)
	}
	if m.envStats.Get("reconstruct_wasted") != 1 {
		t.Fatalf("wasted = %d, want 1 (aged out)", m.envStats.Get("reconstruct_wasted"))
	}
	if b.reconPending[64] {
		t.Fatal("aged entry still pending")
	}
}

func TestReconUseBeforeAgingCountsUsed(t *testing.T) {
	m := buildMachine(t, core.NewFactory(core.DefaultOptions()))
	b := m.banks[0]
	b.InsertReconstructed(0, 32)
	b.HandleRead(0, 0, 0b0010, func(sim.Cycle, uint64) {}) // sector 32 = bit 1
	m.eng.Run(1 << 20)
	if m.envStats.Get("reconstruct_used") != 1 {
		t.Fatalf("used = %d, want 1", m.envStats.Get("reconstruct_used"))
	}
}

func TestRedTagLinesFlowThroughRealBanks(t *testing.T) {
	// End-to-end ecc-cache on real banks: dirty redundancy lines inserted
	// via the CacheSide must eventually write back with RedTag handling.
	cfg := quickCfg()
	cfg.AccessesPerSM = 400
	m, err := New(cfg, "histogram", protect.NewECCCache)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ControllerSt.Get("red_writebacks") == 0 {
		t.Fatal("no redundancy writebacks: RedTag eviction path never exercised")
	}
}

func TestDrainLeavesNoDirtyState(t *testing.T) {
	cfg := quickCfg()
	cfg.AccessesPerSM = 400
	m, err := New(cfg, "scan", core.NewFactory(core.DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, b := range m.banks {
		b.cache.Walk(func(lineAddr uint64, _, dmask uint64) {
			if dmask != 0 {
				t.Fatalf("dirty line %#x survived drain", lineAddr)
			}
		})
	}
}
