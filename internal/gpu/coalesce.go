// Package gpu models the GPU front end — warp coalescing, SM issue and
// outstanding-access tracking, the banked sectored L2 — and wires the full
// machine together: SMs, interconnect, L2, protection controller, DRAM.
package gpu

import (
	"sort"

	"cachecraft/internal/trace"
)

// SectorReq is one coalesced sector touched by a warp access, with the
// byte coverage the warp's threads provide (full coverage lets a store
// skip fetch-on-write).
type SectorReq struct {
	Addr     uint64 // sector-aligned
	ByteMask uint32 // bit i = byte i of the sector written/read
}

// FullByteMask is the coverage mask of a completely-written 32B sector.
const FullByteMask = ^uint32(0)

// Coalesce merges a warp access's per-thread addresses into unique sector
// requests, ordered by address. Threads writing the same bytes coalesce;
// accesses spanning sector boundaries contribute to both sectors.
func Coalesce(a trace.Access, sectorBytes int) []SectorReq {
	masks := make(map[uint64]uint32)
	for _, addr := range a.Addrs {
		for b := 0; b < a.Bytes; b++ {
			byteAddr := addr + uint64(b)
			sector := byteAddr - byteAddr%uint64(sectorBytes)
			masks[sector] |= 1 << (byteAddr % uint64(sectorBytes))
		}
	}
	out := make([]SectorReq, 0, len(masks))
	for sector, mask := range masks {
		out = append(out, SectorReq{Addr: sector, ByteMask: mask})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// lineGroup collects the sectors of one access that fall in the same
// cache line.
type lineGroup struct {
	lineAddr   uint64
	sectorMask uint64 // within the line
	fullMask   uint64 // sectors completely covered by the warp's bytes
}

// groupByLine partitions sector requests into per-line groups, ordered by
// line address.
func groupByLine(reqs []SectorReq, lineBytes, sectorBytes int) []lineGroup {
	byLine := make(map[uint64]*lineGroup)
	for _, r := range reqs {
		la := r.Addr - r.Addr%uint64(lineBytes)
		g, ok := byLine[la]
		if !ok {
			g = &lineGroup{lineAddr: la}
			byLine[la] = g
		}
		idx := (r.Addr % uint64(lineBytes)) / uint64(sectorBytes)
		g.sectorMask |= 1 << idx
		if r.ByteMask == FullByteMask {
			g.fullMask |= 1 << idx
		}
	}
	out := make([]lineGroup, 0, len(byLine))
	for _, g := range byLine {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lineAddr < out[j].lineAddr })
	return out
}
