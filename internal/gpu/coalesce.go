// Package gpu models the GPU front end — warp coalescing, SM issue and
// outstanding-access tracking, the banked sectored L2 — and wires the full
// machine together: SMs, interconnect, L2, protection controller, DRAM.
package gpu

import (
	"cachecraft/internal/trace"
)

// SectorReq is one coalesced sector touched by a warp access, with the
// byte coverage the warp's threads provide (full coverage lets a store
// skip fetch-on-write).
type SectorReq struct {
	Addr     uint64 // sector-aligned
	ByteMask uint32 // bit i = byte i of the sector written/read
}

// FullByteMask is the coverage mask of a completely-written 32B sector.
const FullByteMask = ^uint32(0)

// Coalesce merges a warp access's per-thread addresses into unique sector
// requests, ordered by address. Threads writing the same bytes coalesce;
// accesses spanning sector boundaries contribute to both sectors.
func Coalesce(a trace.Access, sectorBytes int) []SectorReq {
	return coalesceInto(make([]SectorReq, 0, 8), a, sectorBytes)
}

// coalesceInto is Coalesce appending into a reused buffer (pass dst[:0]).
// Each thread's byte range [addr, addr+Bytes) is split at sector
// boundaries and merged into the address-sorted request list — the warp's
// requests stay small, so an insertion into the sorted slice beats the
// map-then-sort it replaces and allocates nothing.
func coalesceInto(dst []SectorReq, a trace.Access, sectorBytes int) []SectorReq {
	sb := uint64(sectorBytes)
	for _, addr := range a.Addrs {
		end := addr + uint64(a.Bytes)
		for addr < end {
			sector := addr - addr%sb
			hi := sector + sb
			if hi > end {
				hi = end
			}
			lo := addr - sector
			mask := uint32((uint64(1)<<(hi-addr) - 1) << lo)
			dst = mergeReq(dst, sector, mask)
			addr = hi
		}
	}
	return dst
}

// mergeReq unions mask into the entry for sector, inserting in address
// order when the sector is new.
func mergeReq(dst []SectorReq, sector uint64, mask uint32) []SectorReq {
	lo, hi := 0, len(dst)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if dst[mid].Addr < sector {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(dst) && dst[lo].Addr == sector {
		dst[lo].ByteMask |= mask
		return dst
	}
	dst = append(dst, SectorReq{})
	copy(dst[lo+1:], dst[lo:])
	dst[lo] = SectorReq{Addr: sector, ByteMask: mask}
	return dst
}

// lineGroup collects the sectors of one access that fall in the same
// cache line.
type lineGroup struct {
	lineAddr   uint64
	sectorMask uint64 // within the line
	fullMask   uint64 // sectors completely covered by the warp's bytes
}

// groupByLine partitions sector requests into per-line groups. Requests
// sorted by address (Coalesce's output order) yield groups ordered by line
// address.
func groupByLine(reqs []SectorReq, lineBytes, sectorBytes int) []lineGroup {
	return groupByLineInto(make([]lineGroup, 0, 4), reqs, lineBytes, sectorBytes)
}

// groupByLineInto is groupByLine appending into a reused buffer (pass
// dst[:0]). Address-sorted requests put each line's sectors in one
// contiguous run, so grouping is a single linear pass.
func groupByLineInto(dst []lineGroup, reqs []SectorReq, lineBytes, sectorBytes int) []lineGroup {
	for _, r := range reqs {
		la := r.Addr - r.Addr%uint64(lineBytes)
		idx := (r.Addr % uint64(lineBytes)) / uint64(sectorBytes)
		if n := len(dst); n == 0 || dst[n-1].lineAddr != la {
			dst = append(dst, lineGroup{lineAddr: la})
		}
		g := &dst[len(dst)-1]
		g.sectorMask |= 1 << idx
		if r.ByteMask == FullByteMask {
			g.fullMask |= 1 << idx
		}
	}
	return dst
}
