package gpu

import (
	"context"
	"fmt"

	"cachecraft/internal/audit"
	"cachecraft/internal/config"
	"cachecraft/internal/dram"
	"cachecraft/internal/layout"
	"cachecraft/internal/mem"
	"cachecraft/internal/obs"
	"cachecraft/internal/protect"
	"cachecraft/internal/sim"
	"cachecraft/internal/stats"
	"cachecraft/internal/trace"
	"cachecraft/internal/xbar"
)

// Aliases keep the bank code free of direct mem imports in signatures.
const (
	memClassDemand = mem.Demand
	memClassRMW    = mem.RMW
)

// Machine is the wired GPU: SMs, interconnect, banked L2, protection
// controller, DRAM.
type Machine struct {
	cfg      config.GPU
	eng      *sim.Engine
	mapper   layout.Mapper
	dram     *dram.DRAM
	banks    []*L2Bank
	sms      []*SM
	scheme   protect.Scheme
	stats    *stats.Counters
	envStats *stats.Counters

	reqNet  *xbar.Crossbar // SMs → L2 banks
	respNet *xbar.Crossbar // L2 banks → SMs

	// Pooled SM→L2 transaction tokens (see tokens.go).
	tokens  []l2Token
	tokFree int32

	// Pre-resolved machine-counter handles for the per-sector hot path;
	// lazy resolution keeps the counter set's first-touch creation order.
	stSectorReqs  stats.Handle
	stL1Hits      stats.Handle
	stL1Misses    stats.Handle
	stL2Hits      stats.Handle
	stL2Misses    stats.Handle
	stStoreHits   stats.Handle
	stStoreAllocs stats.Handle
	stRMWFetches  stats.Handle
	stMSHRStalls  stats.Handle

	smsDone     int
	outstanding int
	perfCycles  sim.Cycle

	tr    *obs.Tracer     // optional stage tracing (nil = off)
	trCtx context.Context // parent span context for Run's stage spans

	audit *audit.Checker // invariant checker (nil = off)

	// Time-resolved probe layer (nil = off, one branch per probe point).
	// Shared series are safe to feed from every bank: the engine runs
	// events in cycle order, so observations arrive cycle-monotone.
	probes      *obs.Probes
	prIssue     *obs.Series // Sum: sector requests issued per window
	prMSHR      *obs.Series // Mean: bank MSHR occupancy at alloc/release
	prReconFill *obs.Series // Sum: reconstructed-line sector fills
	prReconHit  *obs.Series // Mean: 1 per reconstructed sector used, 0 wasted
}

// Result summarizes one simulation run.
type Result struct {
	Workload     string
	Scheme       string
	Cycles       sim.Cycle
	Instructions uint64
	IPC          float64

	DRAMBytes      map[string]uint64
	DRAMRowHits    uint64
	DRAMRowMisses  uint64
	DRAMRowConfl   uint64
	L1HitRate      float64
	L2HitRate      float64
	AvgMemLatency  float64
	Machine        *stats.Counters
	ControllerSt   *stats.Counters
	L2Stats        *stats.Counters
	DRAMStats      *stats.Counters
	BusUtilization float64
}

// WorkloadSource supplies one workload instance per SM (used for trace
// replay and custom workloads; named workloads go through New).
type WorkloadSource func(smID, numSMs int) (trace.Workload, error)

// New builds a machine for one (config, named-workload, scheme)
// combination.
func New(cfg config.GPU, workload string, factory protect.Factory) (*Machine, error) {
	return NewFromSource(cfg, func(smID, numSMs int) (trace.Workload, error) {
		return trace.Build(workload, trace.Params{
			SMID:           smID,
			NumSMs:         numSMs,
			Seed:           cfg.Seed,
			Accesses:       cfg.AccessesPerSM,
			FootprintBytes: cfg.FootprintBytes,
		})
	}, factory)
}

// NewFromSource builds a machine whose SMs draw from caller-supplied
// workloads (e.g. replayed traces). Each workload's footprint must fit the
// configured protected region.
func NewFromSource(cfg config.GPU, src WorkloadSource, factory protect.Factory) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mapper, err := cfg.BuildMapper()
	if err != nil {
		return nil, err
	}
	if cfg.FootprintBytes > mapper.ProtectedBytes() {
		return nil, fmt.Errorf("gpu: footprint %d exceeds protected capacity %d",
			cfg.FootprintBytes, mapper.ProtectedBytes())
	}

	m := &Machine{
		cfg:    cfg,
		eng:    sim.NewEngine(),
		mapper: mapper,
		stats:  stats.NewCounters(),
	}
	m.stSectorReqs = m.stats.Handle("sector_requests")
	m.stL1Hits = m.stats.Handle("l1_hits")
	m.stL1Misses = m.stats.Handle("l1_misses")
	m.stL2Hits = m.stats.Handle("l2_hits")
	m.stL2Misses = m.stats.Handle("l2_misses")
	m.stStoreHits = m.stats.Handle("l2_store_hits")
	m.stStoreAllocs = m.stats.Handle("l2_store_allocs")
	m.stRMWFetches = m.stats.Handle("l2_rmw_fetches")
	m.stMSHRStalls = m.stats.Handle("l2_mshr_stalls")
	m.dram = dram.New(m.eng, cfg.DRAM)
	m.reqNet = xbar.New("xbar-req", xbar.Config{
		Sources:                cfg.NumSMs,
		Destinations:           cfg.L2Banks,
		PortBytesPerCycle:      cfg.XbarPortBytesPerCycle,
		BisectionBytesPerCycle: cfg.XbarReqBytesPerCycle,
		Latency:                cfg.XbarLatency,
	})
	m.respNet = xbar.New("xbar-resp", xbar.Config{
		Sources:                cfg.L2Banks,
		Destinations:           cfg.NumSMs,
		PortBytesPerCycle:      cfg.XbarPortBytesPerCycle,
		BisectionBytesPerCycle: cfg.XbarRespBytesPerCycle,
		Latency:                cfg.XbarLatency,
	})

	for i := 0; i < cfg.L2Banks; i++ {
		m.banks = append(m.banks, newL2Bank(m, i))
	}
	m.envStats = stats.NewCounters()
	env := &protect.Env{
		Eng:          m.eng,
		DRAM:         m.dram,
		Map:          mapper,
		L2:           (*bankRouter)(m),
		Stats:        m.envStats,
		DecodeLat:    cfg.DecodeLat,
		ErrorRatePPM: cfg.ErrorRatePPM,
		ErrorPenalty: cfg.ErrorPenalty,
	}
	m.scheme = factory(env)

	for i := 0; i < cfg.NumSMs; i++ {
		wl, err := src(i, cfg.NumSMs)
		if err != nil {
			return nil, err
		}
		if wl.Footprint() > mapper.ProtectedBytes() {
			return nil, fmt.Errorf("gpu: SM %d workload footprint %d exceeds protected capacity %d",
				i, wl.Footprint(), mapper.ProtectedBytes())
		}
		m.sms = append(m.sms, newSM(i, m, wl))
	}
	return m, nil
}

// bankRouter adapts the machine's bank array to protect.CacheSide by
// routing on the (tag-stripped) line address.
type bankRouter Machine

func (r *bankRouter) bank(addr uint64) *L2Bank {
	m := (*Machine)(r)
	return m.bankFor(addr)
}

// Present reports sector validity.
func (r *bankRouter) Present(addr uint64) bool { return r.bank(addr).Present(addr) }

// Pending reports in-flight fetches.
func (r *bankRouter) Pending(addr uint64) bool { return r.bank(addr).Pending(addr) }

// Insert places a sector.
func (r *bankRouter) Insert(now sim.Cycle, addr uint64, dirty bool) {
	r.bank(addr).Insert(now, addr, dirty)
}

// InsertReconstructed places a tracked clean sector.
func (r *bankRouter) InsertReconstructed(now sim.Cycle, addr uint64) {
	r.bank(addr).InsertReconstructed(now, addr)
}

// MarkDirty marks a present sector dirty.
func (r *bankRouter) MarkDirty(addr uint64) { r.bank(addr).MarkDirty(addr) }

// bankIndexFor selects the bank index for an address (RedTag stripped
// first so redundancy spreads the same way data does).
func (m *Machine) bankIndexFor(addr uint64) int {
	lineNum := (addr &^ protect.RedTag) / uint64(m.cfg.L2.LineBytes)
	return int(lineNum % uint64(len(m.banks)))
}

func (m *Machine) bankFor(addr uint64) *L2Bank {
	return m.banks[m.bankIndexFor(addr)]
}

// reconFeedback forwards reconstruction usage to an observing scheme.
func (m *Machine) reconFeedback(addr uint64, used bool) {
	if m.prReconHit != nil {
		v := 0.0
		if used {
			v = 1
		}
		m.prReconHit.Add(uint64(m.eng.Now()), v)
	}
	if ro, ok := m.scheme.(protect.ReconstructionObserver); ok {
		ro.ReconstructedUse(addr, used)
	}
}

// SetProbes attaches the time-resolved probe layer: every hot component
// registers its tracks in p and feeds them synchronously at its own
// probe points. Must be called before Run. Probes never schedule engine
// events (see protect.Env.FinishDecode for why that would perturb
// same-cycle ordering), so attaching them cannot change simulated
// timing or results — only observe them. Composes with EnableAudit in
// either order: the probe layer uses its own hook slots, and both
// scheme wrappers preserve ReconstructionObserver. Calling it again is
// a no-op.
func (m *Machine) SetProbes(p *obs.Probes) {
	if p == nil || m.probes != nil {
		return
	}
	m.probes = p
	m.prIssue = p.Series("sm.issue", obs.Sum)
	m.prMSHR = p.Series("l2.mshr_occupancy", obs.Mean)
	m.prReconFill = p.Series("l2.recon_fills", obs.Sum)
	m.prReconHit = p.Series("l2.recon_hit_rate", obs.Mean)

	now := func() uint64 { return uint64(m.eng.Now()) }
	l2Fills := p.Series("l2.fills", obs.Sum)
	for i, b := range m.banks {
		b.cache.SetProbes(now, p.Series(fmt.Sprintf("l2.bank%d.hit_rate", i), obs.Mean), l2Fills)
	}

	maxClass := 0
	for _, c := range mem.Classes() {
		if int(c) > maxClass {
			maxClass = int(c)
		}
	}
	classBytes := make([]*obs.Series, maxClass+1)
	for _, c := range mem.Classes() {
		classBytes[c] = p.Series("dram.bytes."+c.String(), obs.Sum)
	}
	m.dram.SetProbes(classBytes, p.Series("dram.row_hit_rate", obs.Mean))

	m.reqNet.SetProbe(p.Series("xbar.req.bytes", obs.Sum))
	m.respNet.SetProbe(p.Series("xbar.resp.bytes", obs.Sum))

	depth := p.Series("sim.queue_depth", obs.Mean)
	m.eng.SetDepthProbe(func(at sim.Cycle, pending int) {
		depth.Add(uint64(at), float64(pending))
	})

	// The wrapper preserves ReconstructionObserver, so reconFeedback's
	// type assertion on m.scheme keeps working for CacheCraft.
	m.scheme = protect.WrapProbed(m.scheme, p.Series("protect.join_latency", obs.Mean))
}

// Probes reports the attached probe set (nil when probes are off).
func (m *Machine) Probes() *obs.Probes { return m.probes }

// EnableAudit arms the invariant checker on every layer of the machine:
// engine step ordering, SM↔L2 transaction tokens, L2 MSHR pairing, the
// protection controller's read/writeback protocol, crossbar byte and
// latency accounting, and DRAM scheduling legality. It must be called
// before Run and returns the checker so callers can inspect violations
// even when Run fails for an unrelated reason. Calling it again returns
// the already-armed checker.
func (m *Machine) EnableAudit() *audit.Checker {
	if m.audit != nil {
		return m.audit
	}
	c := audit.NewChecker()
	m.audit = c
	c.SetMSHRCapacity(m.cfg.L2MSHRs)
	m.eng.SetStepHook(c.EngineStep)
	m.dram.SetHook(c)
	reqLat := m.reqNet.Latency()
	m.reqNet.SetHook(func(at, deliver sim.Cycle, src, dst, bytes int) {
		c.XbarTransfer("req", at, deliver, bytes, reqLat)
	})
	respLat := m.respNet.Latency()
	m.respNet.SetHook(func(at, deliver sim.Cycle, src, dst, bytes int) {
		c.XbarTransfer("resp", at, deliver, bytes, respLat)
	})
	// The wrapper preserves ReconstructionObserver, so reconFeedback's type
	// assertion on m.scheme keeps working for CacheCraft.
	m.scheme = protect.WrapAudited(m.scheme, c)
	return c
}

// Audit reports the armed checker (nil when auditing is off).
func (m *Machine) Audit() *audit.Checker { return m.audit }

// sendRead models the SM→L2 request hop and the L2→SM data hop for a line
// read; the issuing SM's onLoadResponse fires once per delivered sector
// batch via the token path (see tokens.go).
func (m *Machine) sendRead(now sim.Cycle, smID int, lineAddr uint64, mask uint64) {
	m.outstanding++
	var tok uint64
	if m.audit != nil {
		tok = m.audit.ReadIssued(now, smID, lineAddr, mask)
	}
	ti := m.allocToken()
	m.tokens[ti] = l2Token{
		lineAddr:  lineAddr,
		remaining: mask,
		audTok:    tok,
		smID:      int32(smID),
		recIdx:    -1,
	}
	bankIdx := m.bankIndexFor(lineAddr)
	arrive := m.reqNet.Transfer(now, smID, bankIdx, 16)
	m.banks[bankIdx].scheduleRead(arrive, lineAddr, mask, ti)
}

// sendStore models the SM→L2 store hop (header + data) and the ack hop;
// the owning access record (recIdx) is completed per acknowledged sector
// batch via the token path.
func (m *Machine) sendStore(now sim.Cycle, smID int, g lineGroup, recIdx int32) {
	m.outstanding++
	var tok uint64
	if m.audit != nil {
		tok = m.audit.StoreIssued(now, smID, g.lineAddr, g.sectorMask)
	}
	ti := m.allocToken()
	m.tokens[ti] = l2Token{
		lineAddr:  g.lineAddr,
		remaining: g.sectorMask,
		audTok:    tok,
		smID:      int32(smID),
		recIdx:    recIdx,
		write:     true,
	}
	bytes := 16 + popcount(g.sectorMask)*m.cfg.L2.SectorBytes
	bankIdx := m.bankIndexFor(g.lineAddr)
	arrive := m.reqNet.Transfer(now, smID, bankIdx, bytes)
	m.banks[bankIdx].scheduleStore(arrive, g.lineAddr, g.sectorMask, g.fullMask, ti)
}

// smFinished records an SM exhausting its workload.
func (m *Machine) smFinished(sim.Cycle) { m.smsDone++ }

// accessRetired notes forward progress (used for the performance endpoint).
func (m *Machine) accessRetired(now sim.Cycle) {
	m.perfCycles = now
}

// SetTracer attaches span tracing for Run's top-level stages (execute,
// drain), parented to the span carried by ctx. A nil tracer disables
// tracing; the simulator's inner loop is never instrumented either way,
// so the event-by-event hot path is unaffected.
func (m *Machine) SetTracer(ctx context.Context, tr *obs.Tracer) {
	m.tr = tr
	m.trCtx = ctx
}

// Run executes the simulation to completion and returns the results.
func (m *Machine) Run() (Result, error) {
	ctx := m.trCtx
	if ctx == nil {
		ctx = context.Background()
	}
	for _, s := range m.sms {
		s.start()
	}
	limit := m.cfg.MaxCycles
	_, exec := m.tr.Start(ctx, "sim.execute", obs.Int("sms", len(m.sms)))
	finished := m.eng.RunUntil(limit, func() bool {
		return m.smsDone == len(m.sms) && m.outstanding == 0
	})
	if !finished {
		exec.SetAttr(obs.Bool("converged", false))
		exec.End()
		return Result{}, fmt.Errorf("gpu: simulation did not converge within %d cycles (done %d/%d SMs, %d outstanding)",
			limit, m.smsDone, len(m.sms), m.outstanding)
	}
	perfEnd := m.perfCycles
	if perfEnd == 0 {
		perfEnd = m.eng.Now()
	}
	exec.SetAttr(obs.Uint64("cycles", uint64(perfEnd)))
	exec.End()
	// Snapshot bandwidth utilization before the drain adds its traffic.
	busUtil := stats.Mean(m.dram.BusUtilization(perfEnd))

	// Drain: flush dirty cache state through the controller first (so its
	// write path can still coalesce), then the controller's own buffers,
	// then let DRAM empty.
	_, drain := m.tr.Start(ctx, "sim.drain")
	for _, b := range m.banks {
		b.flushDirty(m.eng.Now(), m.scheme)
	}
	m.scheme.Drain(m.eng.Now())
	m.eng.Run(limit + 10_000_000)
	if !m.dram.Drain() {
		drain.End()
		return Result{}, fmt.Errorf("gpu: DRAM failed to drain")
	}
	drain.End()

	if m.audit != nil {
		end := m.eng.Now()
		for _, b := range m.banks {
			m.audit.BankDrained(end, b.id, len(b.mshr), b.waitingCount())
			m.audit.CacheViolation(end, b.cache.CheckConsistency())
		}
		m.audit.FinishSim(end, m.outstanding, m.eng.Pending())
		m.audit.FinishDRAM(end, m.dram.Stats)
		m.audit.FinishXbar(end, "req", m.reqNet.TotalBytes())
		m.audit.FinishXbar(end, "resp", m.respNet.TotalBytes())
		if err := m.audit.Err(); err != nil {
			return Result{}, err
		}
	}

	var instrs uint64
	for _, s := range m.sms {
		instrs += s.instrRetired
	}
	res := Result{
		Cycles:       perfEnd,
		Instructions: instrs,
		Machine:      m.stats,
		ControllerSt: m.controllerStats(),
		DRAMStats:    m.dram.Stats,
		L2Stats:      m.l2Stats(),
	}
	if perfEnd > 0 {
		res.IPC = float64(instrs) / float64(perfEnd)
	}
	res.DRAMBytes = make(map[string]uint64)
	for _, c := range mem.Classes() {
		res.DRAMBytes[c.String()] = m.dram.Stats.Get("bytes_" + c.String())
	}
	res.DRAMRowHits = m.dram.Stats.Get("row_hits")
	res.DRAMRowMisses = m.dram.Stats.Get("row_misses")
	res.DRAMRowConfl = m.dram.Stats.Get("row_conflicts")
	res.L1HitRate = safeRate(m.stats.Get("l1_hits"), m.stats.Get("l1_hits")+m.stats.Get("l1_misses"))
	res.L2HitRate = safeRate(m.stats.Get("l2_hits"), m.stats.Get("l2_hits")+m.stats.Get("l2_misses"))
	res.AvgMemLatency = m.dram.LatHist.Mean()
	res.BusUtilization = busUtil
	return res, nil
}

// controllerStats exposes the scheme's counters (the Env's counter set is
// shared with the scheme).
func (m *Machine) controllerStats() *stats.Counters { return m.envStats }

func safeRate(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// l2Stats merges the per-bank cache counters.
func (m *Machine) l2Stats() *stats.Counters {
	out := stats.NewCounters()
	for _, b := range m.banks {
		out.Merge(b.cache.Stats)
	}
	return out
}
