package gpu

import (
	"testing"

	"cachecraft/internal/protect"
	"cachecraft/internal/trace"
)

// scripted is a hand-built workload for SM behaviour tests.
type scripted struct {
	accesses []trace.Access
	pos      int
}

func (s *scripted) Name() string      { return "scripted" }
func (s *scripted) Footprint() uint64 { return 1 << 20 }
func (s *scripted) Next() (trace.Access, bool) {
	if s.pos >= len(s.accesses) {
		return trace.Access{}, false
	}
	a := s.accesses[s.pos]
	s.pos++
	return a, true
}

func runScripted(t *testing.T, accesses []trace.Access) (*Machine, Result) {
	t.Helper()
	cfg := quickCfg()
	cfg.NumSMs = 1
	m, err := NewFromSource(cfg, func(int, int) (trace.Workload, error) {
		return &scripted{accesses: accesses}, nil
	}, protect.NewNone)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func coalescedLoad(addr uint64, weight int) trace.Access {
	addrs := make([]uint64, trace.WarpSize)
	for i := range addrs {
		addrs[i] = addr + uint64(i*4)
	}
	return trace.Access{PC: 1, Addrs: addrs, Bytes: 4, ComputeWeight: weight}
}

func TestSMRetiresAllInstructions(t *testing.T) {
	var accs []trace.Access
	wantInstr := uint64(0)
	for i := 0; i < 50; i++ {
		a := coalescedLoad(uint64(i*128), 3)
		accs = append(accs, a)
		wantInstr += 1 + 3
	}
	_, res := runScripted(t, accs)
	if res.Instructions != wantInstr {
		t.Fatalf("instructions = %d, want %d", res.Instructions, wantInstr)
	}
}

func TestDependentAccessesSerialize(t *testing.T) {
	// 8 dependent single-sector loads to distinct lines must take ~8 full
	// round trips; 8 independent ones overlap.
	mk := func(dep bool) []trace.Access {
		var out []trace.Access
		for i := 0; i < 8; i++ {
			a := trace.Access{
				PC:        1,
				Addrs:     []uint64{uint64(i * 4096)},
				Bytes:     4,
				Dependent: dep,
			}
			out = append(out, a)
		}
		return out
	}
	_, dep := runScripted(t, mk(true))
	_, indep := runScripted(t, mk(false))
	if dep.Cycles < indep.Cycles*3 {
		t.Fatalf("dependent chain (%d cy) should be far slower than independent (%d cy)",
			dep.Cycles, indep.Cycles)
	}
}

func TestL1CapturesReuse(t *testing.T) {
	// The same line loaded repeatedly: first access misses, later accesses
	// hit in the L1 after the fill returns.
	var accs []trace.Access
	for i := 0; i < 40; i++ {
		accs = append(accs, coalescedLoad(0, 0))
	}
	m, _ := runScripted(t, accs)
	if m.stats.Get("l1_hits") == 0 {
		t.Fatal("no L1 hits on a hot line")
	}
	// The L2 should have seen the line far fewer than 40 times.
	if m.stats.Get("l2_misses") > 8 {
		t.Fatalf("L2 misses = %d; L1 and its MSHR should have absorbed the reuse",
			m.stats.Get("l2_misses"))
	}
}

func TestComputeWeightPacesIssue(t *testing.T) {
	// Heavier compute weight spaces out issues: with plenty of memory
	// slack the heavy version must take at least the extra issue gap.
	light := make([]trace.Access, 100)
	heavy := make([]trace.Access, 100)
	for i := range light {
		light[i] = coalescedLoad(uint64(i*128), 0)
		heavy[i] = coalescedLoad(uint64(i*128), 16) // gap 1+16/4 = 5
	}
	_, l := runScripted(t, light)
	_, h := runScripted(t, heavy)
	if h.Cycles <= l.Cycles {
		t.Fatalf("heavy compute (%d cy) should take longer than light (%d cy)",
			h.Cycles, l.Cycles)
	}
}

func TestOccupancyLimitBoundsOutstanding(t *testing.T) {
	cfg := quickCfg()
	cfg.NumSMs = 1
	cfg.MaxOutstanding = 2
	var accs []trace.Access
	for i := 0; i < 30; i++ {
		accs = append(accs, coalescedLoad(uint64(i*4096), 0))
	}
	m, err := NewFromSource(cfg, func(int, int) (trace.Workload, error) {
		return &scripted{accesses: accs}, nil
	}, protect.NewNone)
	if err != nil {
		t.Fatal(err)
	}
	resLow, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxOutstanding = 24
	m2, _ := NewFromSource(cfg, func(int, int) (trace.Workload, error) {
		return &scripted{accesses: accs}, nil
	}, protect.NewNone)
	resHigh, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resHigh.Cycles >= resLow.Cycles {
		t.Fatalf("more occupancy (%d cy) should beat less (%d cy)",
			resHigh.Cycles, resLow.Cycles)
	}
}

func TestSectorSpanningAccessCompletes(t *testing.T) {
	// A thread access straddling a sector boundary produces two sector
	// requests; the access must still retire exactly once.
	a := trace.Access{PC: 1, Addrs: []uint64{30}, Bytes: 4}
	_, res := runScripted(t, []trace.Access{a})
	if res.Instructions != 1 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
}
