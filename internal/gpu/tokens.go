package gpu

import "cachecraft/internal/sim"

// l2Token tracks one SM→L2 transaction (a line read or store) from issue
// through its last delivered sector batch. Tokens live in the machine's
// pooled slab so the request/response path schedules no closures: the bank
// responds with a token index, and deliverHandler routes the batch back to
// the owning SM. Index 0 is a reserved sentinel.
type l2Token struct {
	lineAddr  uint64
	remaining uint64 // sectors not yet delivered
	audTok    uint64 // audit-layer transaction token
	smID      int32
	recIdx    int32 // owning smAccess slot for stores; -1 otherwise
	write     bool
	// respond, when set, bypasses the response network and delivery
	// bookkeeping: it is the direct-callback path used by the public
	// HandleRead/HandleStore bank API (unit tests drive banks in
	// isolation, with no SMs attached).
	respond func(now sim.Cycle, mask uint64)
	next    int32
}

func (m *Machine) allocToken() int32 {
	idx := m.tokFree
	if idx == 0 {
		if len(m.tokens) == 0 {
			m.tokens = append(m.tokens, l2Token{})
		}
		m.tokens = append(m.tokens, l2Token{})
		return int32(len(m.tokens) - 1)
	}
	m.tokFree = m.tokens[idx].next
	return idx
}

func (m *Machine) freeToken(idx int32) {
	t := &m.tokens[idx]
	t.respond = nil
	t.next = m.tokFree
	m.tokFree = idx
}

// respondToken is the bank's response path: it charges the L2→SM data hop
// and schedules the delivery, or invokes a direct-callback token in place.
// Banks may respond more than once per token, each time with a disjoint
// sector mask; the masks union to the requested mask.
func (m *Machine) respondToken(at sim.Cycle, ti int32, got uint64) {
	t := &m.tokens[ti]
	if t.respond != nil {
		respond := t.respond
		t.remaining &^= got
		if t.remaining == 0 {
			m.freeToken(ti)
		}
		respond(at, got)
		return
	}
	bankIdx := m.bankIndexFor(t.lineAddr)
	bytes := 8 // store ack
	if !t.write {
		bytes = popcount(got) * m.cfg.L2.SectorBytes
	}
	deliver := m.respNet.Transfer(at, bankIdx, int(t.smID), bytes)
	m.eng.Post(deliver, (*deliverHandler)(m), uint64(uint32(ti)), got)
}

// deliverHandler completes one delivered sector batch at the SM: audit
// bookkeeping, outstanding accounting, then the SM's load-response or
// store-completion path. The token is recycled on its last batch.
type deliverHandler Machine

func (h *deliverHandler) OnEvent(dn sim.Cycle, a0, a1 uint64) {
	m := (*Machine)(h)
	ti := int32(uint32(a0))
	got := a1
	t := &m.tokens[ti]
	if m.audit != nil {
		m.audit.Delivered(dn, t.audTok, got)
	}
	t.remaining &^= got
	last := t.remaining == 0
	if last {
		m.outstanding--
	}
	smID, recIdx, write, lineAddr := t.smID, t.recIdx, t.write, t.lineAddr
	if last {
		m.freeToken(ti)
	}
	s := m.sms[smID]
	if write {
		s.completeSectorsIdx(dn, recIdx, popcount(got))
	} else {
		s.onLoadResponse(dn, lineAddr, got)
	}
}
