package gpu

import (
	"cachecraft/internal/cache"
	"cachecraft/internal/protect"
	"cachecraft/internal/sim"
)

// l2Target is one requester waiting on an L2 miss entry.
type l2Target struct {
	sectorMask uint64 // the sectors this requester needs from the line
	write      bool   // fetch-on-write: mark dirty and ack the store
	respond    func(now sim.Cycle, mask uint64)
}

// l2Entry is one outstanding line miss (the bank's MSHR entry).
type l2Entry struct {
	pending uint64 // sectors requested from the protection controller
	filled  uint64
	targets []l2Target
}

// L2Bank is one bank of the shared sectored L2. Demand requests arrive
// from the interconnect; misses go to the protection controller, which
// fills sectors back (possibly more than demanded, for reconstruction).
type L2Bank struct {
	m     *Machine
	id    int
	cache *cache.Cache
	mshr  map[uint64]*l2Entry

	// waiting parks requests that arrived while the MSHR file was full.
	waiting []func(sim.Cycle)

	// reconPending tracks reconstructed sectors not yet referenced, for
	// predictor feedback; the scoreboard ages entries by the bank's total
	// fill count — a reconstructed sector unused after reconHorizon
	// subsequent fills counts as waste even if it still sits in the cache,
	// because it has had ample opportunity to be referenced.
	reconPending map[uint64]bool
	reconFIFO    []reconEntry
	fillTick     uint64
}

type reconEntry struct {
	addr uint64
	tick uint64
}

// reconHorizon is the scoreboard age limit in bank fills (≈ two full
// replacements of a 2048-line bank).
const reconHorizon = 4096

func newL2Bank(m *Machine, id int) *L2Bank {
	cfg := m.cfg.L2
	cfg.Name = "l2"
	cfg.SizeBytes /= m.cfg.L2Banks
	return &L2Bank{
		m:            m,
		id:           id,
		cache:        cache.New(cfg),
		mshr:         make(map[uint64]*l2Entry),
		reconPending: make(map[uint64]bool),
	}
}

// sectorAddrs expands a line mask into sector addresses.
func (b *L2Bank) sectorAddrs(lineAddr uint64, mask uint64) []uint64 {
	out := make([]uint64, 0, b.cache.SectorsPerLine())
	for i := 0; i < b.cache.SectorsPerLine(); i++ {
		if mask&(1<<i) != 0 {
			out = append(out, lineAddr+uint64(i*b.m.cfg.L2.SectorBytes))
		}
	}
	return out
}

// noteUse clears reconstruction-pending state on a referenced sector and
// reports the use to the scheme.
func (b *L2Bank) noteUse(addr uint64) {
	if b.reconPending[addr] {
		delete(b.reconPending, addr)
		b.m.reconFeedback(addr, true)
	}
}

// noteEviction reports unused reconstructed sectors of an evicted line.
func (b *L2Bank) noteEviction(ev *cache.Eviction) {
	if ev == nil {
		return
	}
	for _, sa := range b.sectorAddrs(ev.LineAddr, ev.ValidMask) {
		if b.reconPending[sa] {
			delete(b.reconPending, sa)
			b.m.reconFeedback(sa, false)
		}
	}
}

// fill inserts sectors and routes any dirty victim to the controller.
func (b *L2Bank) fill(now sim.Cycle, lineAddr uint64, mask, dirtyMask uint64) {
	ev := b.cache.Fill(lineAddr, mask, dirtyMask)
	b.noteEviction(ev)
	if ev != nil && ev.DirtyMask != 0 {
		b.m.scheme.Writeback(now, ev.LineAddr, ev.DirtyMask)
	}
	b.fillTick++
	b.ageScoreboard()
}

// ageScoreboard retires reconstruction-tracking entries past the horizon,
// reporting still-unused ones as waste.
func (b *L2Bank) ageScoreboard() {
	for len(b.reconFIFO) > 0 && b.reconFIFO[0].tick+reconHorizon < b.fillTick {
		old := b.reconFIFO[0]
		b.reconFIFO = b.reconFIFO[1:]
		if b.reconPending[old.addr] {
			delete(b.reconPending, old.addr)
			b.m.reconFeedback(old.addr, false)
		}
	}
}

// HandleRead services a demand-read line request after the L2 tag latency.
// respond may fire more than once, each time with a disjoint sector mask;
// the masks union to the requested mask.
func (b *L2Bank) HandleRead(now sim.Cycle, lineAddr uint64, mask uint64,
	respond func(now sim.Cycle, mask uint64)) {
	b.m.eng.At(now+b.m.cfg.L2Latency, func(at sim.Cycle) {
		b.read(at, lineAddr, mask, respond)
	})
}

// mshrFull reports whether a new line entry cannot be allocated.
func (b *L2Bank) mshrFull(lineAddr uint64) bool {
	if _, ok := b.mshr[lineAddr]; ok {
		return false // merging into an existing entry is always allowed
	}
	return len(b.mshr) >= b.m.cfg.L2MSHRs
}

// enqueueWaiter parks a request until MSHR space frees up (credit-style
// backpressure toward the interconnect).
func (b *L2Bank) enqueueWaiter(w func(sim.Cycle)) {
	b.m.stats.Inc("l2_mshr_stalls")
	b.waiting = append(b.waiting, w)
}

// pump replays parked requests while entry space is available.
func (b *L2Bank) pump(now sim.Cycle) {
	for len(b.waiting) > 0 && len(b.mshr) < b.m.cfg.L2MSHRs {
		w := b.waiting[0]
		b.waiting = b.waiting[1:]
		w(now)
	}
}

func (b *L2Bank) read(now sim.Cycle, lineAddr uint64, mask uint64,
	respond func(now sim.Cycle, mask uint64)) {
	if b.mshrFull(lineAddr) {
		b.enqueueWaiter(func(at sim.Cycle) { b.read(at, lineAddr, mask, respond) })
		return
	}
	var missMask, hitMask uint64
	for i := 0; i < b.cache.SectorsPerLine(); i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		sa := lineAddr + uint64(i*b.m.cfg.L2.SectorBytes)
		if b.cache.Access(sa, false) == cache.Hit {
			b.noteUse(sa)
			hitMask |= 1 << i
		} else {
			missMask |= 1 << i
		}
	}
	if hitMask != 0 {
		b.m.stats.Add("l2_hits", uint64(popcount(hitMask)))
		respond(now, hitMask)
	}
	if missMask == 0 {
		return
	}
	b.m.stats.Add("l2_misses", uint64(popcount(missMask)))
	b.enqueueMiss(now, lineAddr, missMask, l2Target{
		sectorMask: missMask,
		respond:    respond,
	})
}

// HandleStore services a store line request after the L2 tag latency.
// fullMask marks sectors whose bytes the warp fully covers. respond may
// fire more than once with disjoint acknowledged sector masks.
func (b *L2Bank) HandleStore(now sim.Cycle, lineAddr uint64, mask, fullMask uint64,
	respond func(now sim.Cycle, mask uint64)) {
	b.m.eng.At(now+b.m.cfg.L2Latency, func(at sim.Cycle) {
		b.store(at, lineAddr, mask, fullMask, respond)
	})
}

func (b *L2Bank) store(now sim.Cycle, lineAddr uint64, mask, fullMask uint64,
	respond func(now sim.Cycle, mask uint64)) {
	if b.mshrFull(lineAddr) {
		b.enqueueWaiter(func(at sim.Cycle) { b.store(at, lineAddr, mask, fullMask, respond) })
		return
	}
	var ackMask, fetchMask uint64
	for i := 0; i < b.cache.SectorsPerLine(); i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		sa := lineAddr + uint64(i*b.m.cfg.L2.SectorBytes)
		bit := uint64(1) << i
		switch {
		case b.cache.Access(sa, true) == cache.Hit:
			// Dirty bit set by the access; the write is absorbed.
			b.m.stats.Inc("l2_store_hits")
			b.noteUse(sa)
			ackMask |= bit
		case fullMask&bit != 0 || !b.m.scheme.NeedsRMWFetch():
			// Full coverage (or byte-maskable DRAM): allocate in place
			// without fetching the old contents.
			b.m.stats.Inc("l2_store_allocs")
			b.fill(now, lineAddr, bit, bit)
			ackMask |= bit
		default:
			// Partial-sector store under ECC: fetch-before-write.
			b.m.stats.Inc("l2_rmw_fetches")
			fetchMask |= bit
		}
	}
	if ackMask != 0 {
		respond(now, ackMask)
	}
	if fetchMask == 0 {
		return
	}
	b.enqueueMiss(now, lineAddr, fetchMask, l2Target{
		sectorMask: fetchMask,
		write:      true,
		respond:    respond,
	})
}

// enqueueMiss merges the target into the line's MSHR entry, asking the
// controller for any sectors not already in flight.
func (b *L2Bank) enqueueMiss(now sim.Cycle, lineAddr uint64, mask uint64, t l2Target) {
	e, ok := b.mshr[lineAddr]
	if !ok {
		e = &l2Entry{}
		b.mshr[lineAddr] = e
		if b.m.audit != nil {
			b.m.audit.MSHRAlloc(now, b.id, lineAddr, len(b.mshr))
		}
	}
	e.targets = append(e.targets, t)
	fetch := mask &^ e.pending
	e.pending |= mask
	if fetch == 0 {
		return
	}
	if b.m.audit != nil {
		b.m.audit.MSHRFetch(now, b.id, lineAddr, fetch)
	}
	class := memClassDemand
	if t.write {
		class = memClassRMW
	}
	b.m.scheme.ReadMiss(now, lineAddr, fetch, class, func(at sim.Cycle) {
		b.onFill(at, lineAddr, fetch)
	})
}

// onFill receives sectors from the controller, fills the cache, and
// retires the entry when everything pending has arrived.
func (b *L2Bank) onFill(now sim.Cycle, lineAddr uint64, mask uint64) {
	e, ok := b.mshr[lineAddr]
	if !ok {
		panic("gpu: L2 fill with no MSHR entry")
	}
	if b.m.audit != nil {
		b.m.audit.MSHRFill(now, b.id, lineAddr, mask)
	}
	b.fill(now, lineAddr, mask, 0)
	e.filled |= mask
	if e.filled != e.pending {
		return
	}
	if b.m.audit != nil {
		b.m.audit.MSHRRelease(now, b.id, lineAddr)
	}
	delete(b.mshr, lineAddr)
	b.pump(now)
	for _, t := range e.targets {
		if t.write {
			for _, sa := range b.sectorAddrs(lineAddr, t.sectorMask) {
				// The fetched sector absorbs the store's bytes.
				if b.cache.Probe(sa) == cache.Hit {
					b.cache.MarkDirty(sa)
				} else {
					// The line was evicted between fill and retire (same
					// cycle adversarial case): re-allocate dirty.
					b.fill(now, lineAddr, b.cache.SectorMask(sa), b.cache.SectorMask(sa))
				}
			}
		}
		t.respond(now, t.sectorMask)
	}
}

// Present reports sector validity (CacheSide).
func (b *L2Bank) Present(addr uint64) bool { return b.cache.Probe(addr) == cache.Hit }

// Pending reports whether the sector is already being fetched (CacheSide).
func (b *L2Bank) Pending(addr uint64) bool {
	lineAddr := b.cache.LineAddr(addr)
	e, ok := b.mshr[lineAddr]
	return ok && e.pending&b.cache.SectorMask(addr) != 0
}

// Insert places a sector into the bank (CacheSide).
func (b *L2Bank) Insert(now sim.Cycle, addr uint64, dirty bool) {
	lineAddr := b.cache.LineAddr(addr)
	mask := b.cache.SectorMask(addr)
	var dmask uint64
	if dirty {
		dmask = mask
	}
	b.fill(now, lineAddr, mask, dmask)
}

// InsertReconstructed places a clean reconstructed sector and arms usage
// tracking (CacheSide).
func (b *L2Bank) InsertReconstructed(now sim.Cycle, addr uint64) {
	b.Insert(now, addr, false)
	// Only track it if the insert survived (it may have been evicted by
	// its own fill in a pathological set-conflict case).
	if b.cache.Probe(addr) != cache.Hit {
		return
	}
	b.reconPending[addr] = true
	b.reconFIFO = append(b.reconFIFO, reconEntry{addr: addr, tick: b.fillTick})
}

// MarkDirty marks a present sector dirty (CacheSide).
func (b *L2Bank) MarkDirty(addr uint64) { b.cache.MarkDirty(addr) }

// flushDirty writes back every dirty line at end of simulation, cleaning
// the flushed sectors.
func (b *L2Bank) flushDirty(now sim.Cycle, scheme protect.Scheme) {
	b.cache.Walk(func(lineAddr uint64, vmask, dmask uint64) {
		if dmask == 0 {
			return
		}
		scheme.Writeback(now, lineAddr, dmask)
		for _, sa := range b.sectorAddrs(lineAddr, dmask) {
			b.cache.CleanSector(sa)
		}
	})
}

func popcount(m uint64) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
