package gpu

import (
	"cachecraft/internal/cache"
	"cachecraft/internal/protect"
	"cachecraft/internal/sim"
)

// l2Target is one requester waiting on an L2 miss entry, identified by its
// pooled transaction token.
type l2Target struct {
	sectorMask uint64 // the sectors this requester needs from the line
	tok        int32
	write      bool // fetch-on-write: mark dirty and ack the store
}

// l2Entry is one outstanding line miss (the bank's MSHR entry). Entries
// live in the bank's pooled slab and are referenced by slot index; a
// recycled entry keeps its targets slice's capacity.
type l2Entry struct {
	pending uint64 // sectors requested from the protection controller
	filled  uint64
	targets []l2Target
}

// l2Op is one scheduled bank operation: a read or store that has crossed
// the interconnect and is waiting out the tag latency, or that sits parked
// behind a full MSHR file. Ops are pooled and travel through the event
// queue by slot index.
type l2Op struct {
	lineAddr uint64
	mask     uint64
	fullMask uint64
	tok      int32
	write    bool
}

// L2Bank is one bank of the shared sectored L2. Demand requests arrive
// from the interconnect; misses go to the protection controller, which
// fills sectors back (possibly more than demanded, for reconstruction).
type L2Bank struct {
	m     *Machine
	id    int
	cache *cache.Cache

	mshr    map[uint64]int32 // line address → entry slot
	entries []l2Entry
	entFree []int32
	ops     []l2Op
	opFree  []int32

	// waiting parks op slots that arrived while the MSHR file was full;
	// whead is the consumed prefix, compacted once it dominates the slice
	// so the queue's backing array cannot grow without bound.
	waiting []int32
	whead   int

	// reconPending tracks reconstructed sectors not yet referenced, for
	// predictor feedback; the scoreboard ages entries by the bank's total
	// fill count — a reconstructed sector unused after reconHorizon
	// subsequent fills counts as waste even if it still sits in the cache,
	// because it has had ample opportunity to be referenced.
	reconPending map[uint64]bool
	reconFIFO    []reconEntry
	rfHead       int
	fillTick     uint64
}

type reconEntry struct {
	addr uint64
	tick uint64
}

// reconHorizon is the scoreboard age limit in bank fills (≈ two full
// replacements of a 2048-line bank).
const reconHorizon = 4096

func newL2Bank(m *Machine, id int) *L2Bank {
	cfg := m.cfg.L2
	cfg.Name = "l2"
	cfg.SizeBytes /= m.cfg.L2Banks
	return &L2Bank{
		m:            m,
		id:           id,
		cache:        cache.New(cfg),
		mshr:         make(map[uint64]int32),
		reconPending: make(map[uint64]bool),
	}
}

func (b *L2Bank) allocEntry() int32 {
	if n := len(b.entFree); n > 0 {
		ei := b.entFree[n-1]
		b.entFree = b.entFree[:n-1]
		e := &b.entries[ei]
		e.pending, e.filled = 0, 0
		e.targets = e.targets[:0]
		return ei
	}
	b.entries = append(b.entries, l2Entry{})
	return int32(len(b.entries) - 1)
}

func (b *L2Bank) freeEntry(ei int32) { b.entFree = append(b.entFree, ei) }

func (b *L2Bank) allocOp() int32 {
	if n := len(b.opFree); n > 0 {
		oi := b.opFree[n-1]
		b.opFree = b.opFree[:n-1]
		return oi
	}
	b.ops = append(b.ops, l2Op{})
	return int32(len(b.ops) - 1)
}

func (b *L2Bank) freeOp(oi int32) { b.opFree = append(b.opFree, oi) }

// waitingCount reports how many requests sit parked behind the MSHR file.
func (b *L2Bank) waitingCount() int { return len(b.waiting) - b.whead }

// noteUse clears reconstruction-pending state on a referenced sector and
// reports the use to the scheme.
func (b *L2Bank) noteUse(addr uint64) {
	if b.reconPending[addr] {
		delete(b.reconPending, addr)
		b.m.reconFeedback(addr, true)
	}
}

// noteEviction reports unused reconstructed sectors of an evicted line.
func (b *L2Bank) noteEviction(lineAddr uint64, validMask uint64) {
	spl := b.cache.SectorsPerLine()
	for i := 0; i < spl; i++ {
		if validMask&(1<<i) == 0 {
			continue
		}
		sa := lineAddr + uint64(i*b.m.cfg.L2.SectorBytes)
		if b.reconPending[sa] {
			delete(b.reconPending, sa)
			b.m.reconFeedback(sa, false)
		}
	}
}

// fill inserts sectors and routes any dirty victim to the controller.
func (b *L2Bank) fill(now sim.Cycle, lineAddr uint64, mask, dirtyMask uint64) {
	var ev cache.Eviction
	if b.cache.FillInto(lineAddr, mask, dirtyMask, &ev) {
		b.noteEviction(ev.LineAddr, ev.ValidMask)
		if ev.DirtyMask != 0 {
			b.m.scheme.Writeback(now, ev.LineAddr, ev.DirtyMask)
		}
	}
	b.fillTick++
	b.ageScoreboard()
}

// ageScoreboard retires reconstruction-tracking entries past the horizon,
// reporting still-unused ones as waste.
func (b *L2Bank) ageScoreboard() {
	for b.rfHead < len(b.reconFIFO) && b.reconFIFO[b.rfHead].tick+reconHorizon < b.fillTick {
		old := b.reconFIFO[b.rfHead]
		b.rfHead++
		if b.reconPending[old.addr] {
			delete(b.reconPending, old.addr)
			b.m.reconFeedback(old.addr, false)
		}
	}
	if b.rfHead == len(b.reconFIFO) {
		b.reconFIFO = b.reconFIFO[:0]
		b.rfHead = 0
	} else if b.rfHead >= 1024 && b.rfHead*2 >= len(b.reconFIFO) {
		n := copy(b.reconFIFO, b.reconFIFO[b.rfHead:])
		b.reconFIFO = b.reconFIFO[:n]
		b.rfHead = 0
	}
}

// bankOpHandler dispatches a pooled bank op (a0) after the tag latency.
type bankOpHandler L2Bank

func (h *bankOpHandler) OnEvent(now sim.Cycle, a0, _ uint64) {
	(*L2Bank)(h).exec(now, int32(uint32(a0)))
}

// scheduleRead queues a demand-read line request behind the L2 tag latency,
// responding through the token.
func (b *L2Bank) scheduleRead(now sim.Cycle, lineAddr uint64, mask uint64, tok int32) {
	oi := b.allocOp()
	b.ops[oi] = l2Op{lineAddr: lineAddr, mask: mask, tok: tok}
	b.m.eng.Post(now+b.m.cfg.L2Latency, (*bankOpHandler)(b), uint64(uint32(oi)), 0)
}

// scheduleStore queues a store line request behind the L2 tag latency.
// fullMask marks sectors whose bytes the warp fully covers.
func (b *L2Bank) scheduleStore(now sim.Cycle, lineAddr uint64, mask, fullMask uint64, tok int32) {
	oi := b.allocOp()
	b.ops[oi] = l2Op{lineAddr: lineAddr, mask: mask, fullMask: fullMask, tok: tok, write: true}
	b.m.eng.Post(now+b.m.cfg.L2Latency, (*bankOpHandler)(b), uint64(uint32(oi)), 0)
}

// HandleRead services a demand-read line request after the L2 tag latency.
// respond may fire more than once, each time with a disjoint sector mask;
// the masks union to the requested mask. It is the bank's public API (the
// machine's SMs use the pooled token path directly).
func (b *L2Bank) HandleRead(now sim.Cycle, lineAddr uint64, mask uint64,
	respond func(now sim.Cycle, mask uint64)) {
	ti := b.m.allocToken()
	b.m.tokens[ti] = l2Token{lineAddr: lineAddr, remaining: mask, recIdx: -1, respond: respond}
	b.scheduleRead(now, lineAddr, mask, ti)
}

// HandleStore services a store line request after the L2 tag latency.
// fullMask marks sectors whose bytes the warp fully covers. respond may
// fire more than once with disjoint acknowledged sector masks.
func (b *L2Bank) HandleStore(now sim.Cycle, lineAddr uint64, mask, fullMask uint64,
	respond func(now sim.Cycle, mask uint64)) {
	ti := b.m.allocToken()
	b.m.tokens[ti] = l2Token{lineAddr: lineAddr, remaining: mask, recIdx: -1, write: true, respond: respond}
	b.scheduleStore(now, lineAddr, mask, fullMask, ti)
}

// mshrFull reports whether a new line entry cannot be allocated.
func (b *L2Bank) mshrFull(lineAddr uint64) bool {
	if _, ok := b.mshr[lineAddr]; ok {
		return false // merging into an existing entry is always allowed
	}
	return len(b.mshr) >= b.m.cfg.L2MSHRs
}

// exec runs one bank op, parking it (credit-style backpressure toward the
// interconnect) while the MSHR file is full.
func (b *L2Bank) exec(now sim.Cycle, oi int32) {
	op := b.ops[oi]
	if b.mshrFull(op.lineAddr) {
		b.m.stMSHRStalls.Inc()
		b.waiting = append(b.waiting, oi)
		return
	}
	b.freeOp(oi)
	if op.write {
		b.store(now, op)
	} else {
		b.read(now, op)
	}
}

// pump replays parked requests while entry space is available.
func (b *L2Bank) pump(now sim.Cycle) {
	for b.whead < len(b.waiting) && len(b.mshr) < b.m.cfg.L2MSHRs {
		oi := b.waiting[b.whead]
		b.whead++
		if b.whead == len(b.waiting) {
			b.waiting = b.waiting[:0]
			b.whead = 0
		} else if b.whead >= 1024 && b.whead*2 >= len(b.waiting) {
			n := copy(b.waiting, b.waiting[b.whead:])
			b.waiting = b.waiting[:n]
			b.whead = 0
		}
		b.exec(now, oi)
	}
}

func (b *L2Bank) read(now sim.Cycle, op l2Op) {
	spl := b.cache.SectorsPerLine()
	var missMask, hitMask uint64
	for i := 0; i < spl; i++ {
		if op.mask&(1<<i) == 0 {
			continue
		}
		sa := op.lineAddr + uint64(i*b.m.cfg.L2.SectorBytes)
		if b.cache.Access(sa, false) == cache.Hit {
			b.noteUse(sa)
			hitMask |= 1 << i
		} else {
			missMask |= 1 << i
		}
	}
	if hitMask != 0 {
		b.m.stL2Hits.Add(uint64(popcount(hitMask)))
		b.m.respondToken(now, op.tok, hitMask)
	}
	if missMask == 0 {
		return
	}
	b.m.stL2Misses.Add(uint64(popcount(missMask)))
	b.enqueueMiss(now, op.lineAddr, missMask, l2Target{
		sectorMask: missMask,
		tok:        op.tok,
	})
}

func (b *L2Bank) store(now sim.Cycle, op l2Op) {
	spl := b.cache.SectorsPerLine()
	var ackMask, fetchMask uint64
	for i := 0; i < spl; i++ {
		if op.mask&(1<<i) == 0 {
			continue
		}
		sa := op.lineAddr + uint64(i*b.m.cfg.L2.SectorBytes)
		bit := uint64(1) << i
		switch {
		case b.cache.Access(sa, true) == cache.Hit:
			// Dirty bit set by the access; the write is absorbed.
			b.m.stStoreHits.Inc()
			b.noteUse(sa)
			ackMask |= bit
		case op.fullMask&bit != 0 || !b.m.scheme.NeedsRMWFetch():
			// Full coverage (or byte-maskable DRAM): allocate in place
			// without fetching the old contents.
			b.m.stStoreAllocs.Inc()
			b.fill(now, op.lineAddr, bit, bit)
			ackMask |= bit
		default:
			// Partial-sector store under ECC: fetch-before-write.
			b.m.stRMWFetches.Inc()
			fetchMask |= bit
		}
	}
	if ackMask != 0 {
		b.m.respondToken(now, op.tok, ackMask)
	}
	if fetchMask == 0 {
		return
	}
	b.enqueueMiss(now, op.lineAddr, fetchMask, l2Target{
		sectorMask: fetchMask,
		tok:        op.tok,
		write:      true,
	})
}

// enqueueMiss merges the target into the line's MSHR entry, asking the
// controller for any sectors not already in flight.
func (b *L2Bank) enqueueMiss(now sim.Cycle, lineAddr uint64, mask uint64, t l2Target) {
	ei, ok := b.mshr[lineAddr]
	if !ok {
		ei = b.allocEntry()
		b.mshr[lineAddr] = ei
		if b.m.audit != nil {
			b.m.audit.MSHRAlloc(now, b.id, lineAddr, len(b.mshr))
		}
		if b.m.prMSHR != nil {
			b.m.prMSHR.Add(uint64(now), float64(len(b.mshr)))
		}
	}
	e := &b.entries[ei]
	e.targets = append(e.targets, t)
	fetch := mask &^ e.pending
	e.pending |= mask
	if fetch == 0 {
		return
	}
	if b.m.audit != nil {
		b.m.audit.MSHRFetch(now, b.id, lineAddr, fetch)
	}
	class := memClassDemand
	if t.write {
		class = memClassRMW
	}
	b.m.scheme.ReadMiss(now, lineAddr, fetch, class, func(at sim.Cycle) {
		b.onFill(at, lineAddr, fetch)
	})
}

// onFill receives sectors from the controller, fills the cache, and
// retires the entry when everything pending has arrived.
func (b *L2Bank) onFill(now sim.Cycle, lineAddr uint64, mask uint64) {
	ei, ok := b.mshr[lineAddr]
	if !ok {
		panic("gpu: L2 fill with no MSHR entry")
	}
	if b.m.audit != nil {
		b.m.audit.MSHRFill(now, b.id, lineAddr, mask)
	}
	b.fill(now, lineAddr, mask, 0)
	b.entries[ei].filled |= mask
	if b.entries[ei].filled != b.entries[ei].pending {
		return
	}
	if b.m.audit != nil {
		b.m.audit.MSHRRelease(now, b.id, lineAddr)
	}
	delete(b.mshr, lineAddr)
	if b.m.prMSHR != nil {
		b.m.prMSHR.Add(uint64(now), float64(len(b.mshr)))
	}
	b.pump(now)
	// pump can replay parked ops whose misses grow the entry slab, so
	// re-index entries[ei] each pass instead of holding a pointer across
	// it; the slot itself stays ours until freed below (its map entry is
	// gone, so nothing merges into it).
	for i := 0; i < len(b.entries[ei].targets); i++ {
		t := b.entries[ei].targets[i]
		if t.write {
			spl := b.cache.SectorsPerLine()
			for j := 0; j < spl; j++ {
				if t.sectorMask&(1<<j) == 0 {
					continue
				}
				sa := lineAddr + uint64(j*b.m.cfg.L2.SectorBytes)
				// The fetched sector absorbs the store's bytes.
				if b.cache.Probe(sa) == cache.Hit {
					b.cache.MarkDirty(sa)
				} else {
					// The line was evicted between fill and retire (same
					// cycle adversarial case): re-allocate dirty.
					b.fill(now, lineAddr, b.cache.SectorMask(sa), b.cache.SectorMask(sa))
				}
			}
		}
		b.m.respondToken(now, t.tok, t.sectorMask)
	}
	b.freeEntry(ei)
}

// Present reports sector validity (CacheSide).
func (b *L2Bank) Present(addr uint64) bool { return b.cache.Probe(addr) == cache.Hit }

// Pending reports whether the sector is already being fetched (CacheSide).
func (b *L2Bank) Pending(addr uint64) bool {
	lineAddr := b.cache.LineAddr(addr)
	ei, ok := b.mshr[lineAddr]
	return ok && b.entries[ei].pending&b.cache.SectorMask(addr) != 0
}

// Insert places a sector into the bank (CacheSide).
func (b *L2Bank) Insert(now sim.Cycle, addr uint64, dirty bool) {
	lineAddr := b.cache.LineAddr(addr)
	mask := b.cache.SectorMask(addr)
	var dmask uint64
	if dirty {
		dmask = mask
	}
	b.fill(now, lineAddr, mask, dmask)
}

// InsertReconstructed places a clean reconstructed sector and arms usage
// tracking (CacheSide).
func (b *L2Bank) InsertReconstructed(now sim.Cycle, addr uint64) {
	b.Insert(now, addr, false)
	// Only track it if the insert survived (it may have been evicted by
	// its own fill in a pathological set-conflict case).
	if b.cache.Probe(addr) != cache.Hit {
		return
	}
	if b.m.prReconFill != nil {
		b.m.prReconFill.Add(uint64(now), 1)
	}
	b.reconPending[addr] = true
	b.reconFIFO = append(b.reconFIFO, reconEntry{addr: addr, tick: b.fillTick})
}

// MarkDirty marks a present sector dirty (CacheSide).
func (b *L2Bank) MarkDirty(addr uint64) { b.cache.MarkDirty(addr) }

// flushDirty writes back every dirty line at end of simulation, cleaning
// the flushed sectors.
func (b *L2Bank) flushDirty(now sim.Cycle, scheme protect.Scheme) {
	b.cache.Walk(func(lineAddr uint64, vmask, dmask uint64) {
		if dmask == 0 {
			return
		}
		scheme.Writeback(now, lineAddr, dmask)
		spl := b.cache.SectorsPerLine()
		for i := 0; i < spl; i++ {
			if dmask&(1<<i) != 0 {
				b.cache.CleanSector(lineAddr + uint64(i*b.m.cfg.L2.SectorBytes))
			}
		}
	})
}
