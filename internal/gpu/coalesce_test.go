package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cachecraft/internal/trace"
)

// Property: coalescing covers exactly the bytes the threads touch — no
// byte lost, no byte invented — and sectors are unique and sorted.
func TestCoalescePropertyCoverage(t *testing.T) {
	f := func(seed int64, nThreads uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nThreads%32) + 1
		a := trace.Access{Bytes: []int{1, 2, 4, 8}[rng.Intn(4)]}
		for i := 0; i < n; i++ {
			a.Addrs = append(a.Addrs, uint64(rng.Intn(1<<16)))
		}
		reqs := Coalesce(a, 32)

		// Ground truth byte set.
		want := map[uint64]bool{}
		for _, addr := range a.Addrs {
			for b := 0; b < a.Bytes; b++ {
				want[addr+uint64(b)] = true
			}
		}
		got := map[uint64]bool{}
		var prev uint64
		for i, r := range reqs {
			if r.Addr%32 != 0 {
				return false // misaligned sector
			}
			if i > 0 && r.Addr <= prev {
				return false // not strictly ascending
			}
			prev = r.Addr
			for b := 0; b < 32; b++ {
				if r.ByteMask&(1<<b) != 0 {
					got[r.Addr+uint64(b)] = true
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for b := range want {
			if !got[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: groupByLine partitions the sectors exactly (mask union per
// line matches, full mask ⊆ sector mask).
func TestGroupByLineProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var reqs []SectorReq
		seen := map[uint64]bool{}
		for i := 0; i < rng.Intn(20)+1; i++ {
			addr := uint64(rng.Intn(64)) * 32
			if seen[addr] {
				continue
			}
			seen[addr] = true
			mask := uint32(rng.Uint32())
			if rng.Intn(3) == 0 {
				mask = FullByteMask
			}
			reqs = append(reqs, SectorReq{Addr: addr, ByteMask: mask})
		}
		groups := groupByLine(reqs, 128, 32)
		counted := 0
		for _, g := range groups {
			if g.lineAddr%128 != 0 {
				return false
			}
			if g.fullMask&^g.sectorMask != 0 {
				return false // full sectors must be requested sectors
			}
			counted += popcount(g.sectorMask)
		}
		return counted == len(reqs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
