package bench

import (
	"bytes"
	"strings"
	"testing"

	"cachecraft/internal/config"
	"cachecraft/internal/core"
)

func quickBase() config.GPU {
	cfg := config.Quick()
	cfg.AccessesPerSM = 300
	return cfg
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(quickBase())
	s := Spec{CfgID: "base", Workload: "stream", Variant: "none"}
	a, err := r.Result(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Result(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatal("memoized result differs")
	}
	if r.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", r.Runs())
	}
}

func TestRunnerUnknownSpecRejected(t *testing.T) {
	r := NewRunner(quickBase())
	if _, err := r.Result(Spec{CfgID: "nope", Workload: "stream", Variant: "none"}); err == nil {
		t.Fatal("unknown config accepted")
	}
	if _, err := r.Result(Spec{CfgID: "base", Workload: "stream", Variant: "nope"}); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := r.Result(Spec{CfgID: "base", Workload: "nope", Variant: "none"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunnerVariantsAndConfigs(t *testing.T) {
	r := NewRunner(quickBase())
	opt := core.DefaultOptions()
	opt.UseRC = false
	r.AddCacheCraftVariant("cc-test", opt)
	cfg := quickBase()
	cfg.L2.SizeBytes *= 2
	r.AddConfig("big-l2", cfg)
	if _, err := r.Result(Spec{CfgID: "big-l2", Workload: "stream", Variant: "cc-test"}); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("experiment count = %d, want 16", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("ByID(%q) failed", e.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestEveryExperimentRunsOnQuickConfig smoke-runs each experiment end to
// end on the scaled-down configuration and sanity-checks its output.
func TestEveryExperimentRunsOnQuickConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	r := NewRunner(quickBase())
	for _, e := range All() {
		var buf bytes.Buffer
		if err := e.Run(r, quickBase(), &buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out := buf.String()
		if len(out) < 100 {
			t.Fatalf("%s: suspiciously short output:\n%s", e.ID, out)
		}
		if !strings.Contains(out, "==") {
			t.Fatalf("%s: missing table header:\n%s", e.ID, out)
		}
	}
	t.Logf("total distinct simulations: %d", r.Runs())
}

func TestFig4ContainsGeomeanAndAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner(quickBase())
	var buf bytes.Buffer
	if err := fig4(r, quickBase(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"geomean", "stream", "random", "cachecraft"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3IsSimulationFree(t *testing.T) {
	r := NewRunner(quickBase())
	var buf bytes.Buffer
	if err := table3(r, quickBase(), &buf); err != nil {
		t.Fatal(err)
	}
	if r.Runs() != 0 {
		t.Fatal("table3 must not run timing simulations")
	}
	out := buf.String()
	for _, want := range []string{"secded-72/64", "rs-36/32", "rs-34/32", "1 chip"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table3 missing %q:\n%s", want, out)
		}
	}
}

func TestTotalDRAMBytes(t *testing.T) {
	r := NewRunner(quickBase())
	res, err := r.Result(Spec{CfgID: "base", Workload: "scan", Variant: "inline-naive"})
	if err != nil {
		t.Fatal(err)
	}
	if TotalDRAMBytes(res) == 0 {
		t.Fatal("no traffic accounted")
	}
	var sum uint64
	for _, v := range res.DRAMBytes {
		sum += v
	}
	if TotalDRAMBytes(res) != sum {
		t.Fatal("TotalDRAMBytes mismatch")
	}
}
