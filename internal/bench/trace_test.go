package bench

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"testing"

	"cachecraft/internal/config"
	"cachecraft/internal/gpu"
	"cachecraft/internal/obs"
)

// memStore is a trivial in-memory ResultStore for tracing tests.
type memStore struct {
	m map[string]gpu.Result
}

func newMemStore() *memStore { return &memStore{m: make(map[string]gpu.Result)} }

func (s *memStore) key(wl, sc string) string { return wl + "/" + sc }

func (s *memStore) Lookup(_ config.GPU, wl, sc string) (gpu.Result, bool) {
	r, ok := s.m[s.key(wl, sc)]
	return r, ok
}

func (s *memStore) Save(_ config.GPU, wl, sc string, r gpu.Result) error {
	s.m[s.key(wl, sc)] = r
	return nil
}

func collectSpans(t *testing.T, buf *bytes.Buffer) []obs.SpanData {
	t.Helper()
	var out []obs.SpanData
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var d obs.SpanData
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		out = append(out, d)
	}
	return out
}

// TestRunnerEmitsCellSpans: an executed cell produces a root "cell" span
// with store-lookup, queue-wait, simulate, and persist children whose
// durations are consistent with the root's, and the simulate span carries
// the machine's top-level stage children.
func TestRunnerEmitsCellSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(obs.NewNDJSONExporter(&buf))
	r := NewRunner(quickBase())
	r.SetStore(newMemStore())
	r.SetTracer(tr)

	if _, err := r.Result(Spec{CfgID: "base", Workload: "stream", Variant: "none"}); err != nil {
		t.Fatal(err)
	}
	spans := collectSpans(t, &buf)
	byName := map[string]obs.SpanData{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	cell, ok := byName["cell"]
	if !ok {
		t.Fatalf("no cell span in %v", spans)
	}
	if cell.Attrs["workload"] != "stream" || cell.Attrs["scheme"] != "none" ||
		cell.Attrs["config"] != "base" || cell.Attrs["outcome"] != "run" {
		t.Fatalf("cell attrs = %v", cell.Attrs)
	}
	var childSum int64
	for _, name := range []string{"store-lookup", "queue-wait", "simulate", "persist"} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("missing %q child; got %v", name, spans)
		}
		if sp.Parent != cell.Span || sp.Trace != cell.Trace {
			t.Fatalf("%q not parented to cell: %+v vs cell %+v", name, sp, cell)
		}
		if sp.Dur < 0 || sp.Dur > cell.Dur {
			t.Fatalf("%q duration %dus exceeds cell %dus", name, sp.Dur, cell.Dur)
		}
		childSum += sp.Dur
	}
	// The four phases partition the cell's work, so their durations must
	// sum to no more than the root span's.
	if childSum > cell.Dur {
		t.Fatalf("children sum to %dus > cell %dus", childSum, cell.Dur)
	}
	for _, stage := range []string{"sim.execute", "sim.drain"} {
		sp, ok := byName[stage]
		if !ok {
			t.Fatalf("missing machine stage span %q", stage)
		}
		if sp.Parent != byName["simulate"].Span {
			t.Fatalf("%q not parented to simulate", stage)
		}
		if sp.Dur > byName["simulate"].Dur {
			t.Fatalf("%q duration %dus exceeds simulate %dus", stage, sp.Dur, byName["simulate"].Dur)
		}
	}
}

// TestStoreHitCellSpan: a warm cell's trace shows the store hit and no
// simulate/persist children.
func TestStoreHitCellSpan(t *testing.T) {
	st := newMemStore()
	warmup := NewRunner(quickBase())
	warmup.SetStore(st)
	spec := Spec{CfgID: "base", Workload: "stream", Variant: "none"}
	if _, err := warmup.Result(spec); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	r := NewRunner(quickBase())
	r.SetStore(st)
	r.SetTracer(obs.NewTracer(obs.NewNDJSONExporter(&buf)))
	if _, err := r.Result(spec); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	var cell obs.SpanData
	for _, sp := range collectSpans(t, &buf) {
		names[sp.Name] = true
		if sp.Name == "cell" {
			cell = sp
		}
	}
	if !names["store-lookup"] || names["simulate"] || names["persist"] || names["queue-wait"] {
		t.Fatalf("store-hit cell has wrong children: %v", names)
	}
	if cell.Attrs["outcome"] != "store-hit" {
		t.Fatalf("cell outcome = %v, want store-hit", cell.Attrs["outcome"])
	}
}

// TestMemoHitEmitsNoSpans: replayed results must not re-trace.
func TestMemoHitEmitsNoSpans(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(quickBase())
	r.SetTracer(obs.NewTracer(obs.NewNDJSONExporter(&buf)))
	spec := Spec{CfgID: "base", Workload: "stream", Variant: "none"}
	if _, err := r.Result(spec); err != nil {
		t.Fatal(err)
	}
	before := len(collectSpans(t, &buf))
	if _, err := r.Result(spec); err != nil {
		t.Fatal(err)
	}
	if after := len(collectSpans(t, &buf)); after != before {
		t.Fatalf("memo hit emitted %d new spans", after-before)
	}
}

// TestStartedFinishedAccounting: every ResultCtx call is counted once in
// Started and once in Finished, whatever its outcome.
func TestStartedFinishedAccounting(t *testing.T) {
	r := NewRunner(quickBase())
	specs := specGrid([]string{"base"}, []string{"stream", "scan"}, []string{"none"})
	if err := r.Prefetch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Result(specs[0]); err != nil { // memo hit
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.ResultCtx(ctx, Spec{CfgID: "base", Workload: "bfs", Variant: "none"}); err == nil {
		t.Fatal("cancelled call succeeded")
	}
	st := r.Stats()
	if st.Started != 4 || st.Finished != 4 {
		t.Fatalf("started/finished = %d/%d, want 4/4 (%+v)", st.Started, st.Finished, st)
	}
}

// BenchmarkMemoHit measures the replay path with tracing off — the
// baseline for the "tracing off costs nothing" guarantee.
func BenchmarkMemoHit(b *testing.B) { benchMemoHit(b, nil) }

// BenchmarkMemoHitTracerAttached measures the same path with a tracer
// attached; memo hits emit no spans, so the two should be within noise.
func BenchmarkMemoHitTracerAttached(b *testing.B) {
	benchMemoHit(b, obs.NewTracer(obs.NewNDJSONExporter(io.Discard)))
}

func benchMemoHit(b *testing.B, tr *obs.Tracer) {
	r := NewRunner(quickBase())
	r.SetTracer(tr)
	spec := Spec{CfgID: "base", Workload: "stream", Variant: "none"}
	if _, err := r.Result(spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Result(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateQuick measures one full (tiny) simulation through the
// runner with tracing off; compare against a -trace run to bound overhead.
func BenchmarkSimulateQuick(b *testing.B) {
	cfg := quickBase()
	cfg.AccessesPerSM = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRunner(cfg)
		if _, err := r.Result(Spec{CfgID: "base", Workload: "stream", Variant: "none"}); err != nil {
			b.Fatal(err)
		}
	}
}
