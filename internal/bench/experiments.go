package bench

import (
	"context"
	"fmt"
	"io"

	"cachecraft/internal/cache"
	"cachecraft/internal/config"
	"cachecraft/internal/core"
	"cachecraft/internal/ecc"
	"cachecraft/internal/energy"
	"cachecraft/internal/faults"
	"cachecraft/internal/layout"
	"cachecraft/internal/stats"
	"cachecraft/internal/trace"
)

// Experiment regenerates one table or figure of the evaluation.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner, base config.GPU, w io.Writer) error
}

// RepWorkloads is the representative subset used by the expensive sweeps
// (one streaming, one read-write streaming, one irregular-read, one
// write-heavy workload). EXPERIMENTS.md documents the choice.
func RepWorkloads() []string { return []string{"stream", "scan", "bfs", "histogram"} }

// AblationWorkloads drops the two most expensive workloads (random,
// transpose) from the per-variant ablation sweep; they appear in the main
// figures.
func AblationWorkloads() []string {
	return []string{"stream", "scan", "gemm", "stencil", "bfs", "spmv", "histogram", "ptrchase"}
}

// All lists the experiments in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Simulated GPU configuration", Run: table1},
		{ID: "table2", Title: "Workload characterization", Run: table2},
		{ID: "fig4", Title: "Performance under memory protection (normalized to no-ECC)", Run: fig4},
		{ID: "fig5", Title: "DRAM traffic breakdown", Run: fig5},
		{ID: "fig6", Title: "Redundancy-access coverage (CacheCraft)", Run: fig6},
		{ID: "fig7", Title: "Reconstruction usefulness and predictor behaviour", Run: fig7},
		{ID: "fig8", Title: "Sensitivity: RC and L2 capacity", Run: fig8},
		{ID: "fig9", Title: "Ablation: R / RC / P / W", Run: fig9},
		{ID: "fig10", Title: "Memory-system energy (normalized to no-ECC)", Run: fig10},
		{ID: "fig11", Title: "Protection geometry and layout sweep", Run: fig11},
		{ID: "fig12", Title: "Write handling: redundancy RMW elimination", Run: fig12},
		{ID: "table3", Title: "Codec reliability under injected faults", Run: table3},
		{ID: "fig13", Title: "Extension: L2 replacement policy (LRU vs SRRIP)", Run: fig13},
		{ID: "fig14", Title: "Extension: seed stability of the headline result", Run: fig14},
		{ID: "fig15", Title: "Extension: sensitivity to correctable-error storms", Run: fig15},
		{ID: "fig16", Title: "Extension: headroom vs an ideal (free-redundancy) controller", Run: fig16},
	}
}

// specGrid builds the cross product of configs × workloads × variants in
// deterministic (row-major) order, for fanning out through
// Runner.Prefetch before an experiment collects its rows serially.
func specGrid(cfgIDs, workloads, variants []string) []Spec {
	out := make([]Spec, 0, len(cfgIDs)*len(workloads)*len(variants))
	for _, c := range cfgIDs {
		for _, wl := range workloads {
			for _, v := range variants {
				out = append(out, Spec{CfgID: c, Workload: wl, Variant: v})
			}
		}
	}
	return out
}

// prefetch fans an experiment's full spec set out across the runner's
// worker pool; the experiment's subsequent Result calls are then memo
// hits, so its rendered output is independent of execution order.
func prefetch(r *Runner, specs ...[]Spec) error {
	var all []Spec
	for _, s := range specs {
		all = append(all, s...)
	}
	return r.Prefetch(context.Background(), all)
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// --- Table 1 ---------------------------------------------------------------

func table1(r *Runner, base config.GPU, w io.Writer) error {
	t := stats.NewTable("Table 1: simulated GPU configuration", "component", "value")
	t.AddRow("SMs", fmt.Sprintf("%d, ≤%d warp accesses in flight each", base.NumSMs, base.MaxOutstanding))
	t.AddRow("L1 (per SM)", fmt.Sprintf("%dKiB %d-way, %dB lines / %dB sectors, write-through",
		base.L1.SizeBytes>>10, base.L1.Ways, base.L1.LineBytes, base.L1.SectorBytes))
	t.AddRow("Interconnect", fmt.Sprintf("crossbar, %dB/cy ports, %dB/cy bisection per direction, %d-cycle latency",
		base.XbarPortBytesPerCycle, base.XbarReqBytesPerCycle, base.XbarLatency))
	t.AddRow("L2 (shared)", fmt.Sprintf("%dMiB %d-way, %d banks, sectored, %d MSHRs/bank, hashed sets",
		base.L2.SizeBytes>>20, base.L2.Ways, base.L2Banks, base.L2MSHRs))
	t.AddRow("DRAM", fmt.Sprintf("%d channels × %d banks, %dB rows, tRCD/tRP/tCAS=%d/%d/%d, burst %d cy/32B",
		base.DRAM.Channels, base.DRAM.BanksPerChannel, base.DRAM.RowBytes,
		base.DRAM.TRCD, base.DRAM.TRP, base.DRAM.TCAS, base.DRAM.TBurst))
	t.AddRow("Memory", fmt.Sprintf("%dMiB, inline-ECC layout %q", base.MemoryBytes>>20, base.Layout))
	t.AddRow("Protection", fmt.Sprintf("%dB granule / %dB redundancy block (ratio %.4g), decode %d cy",
		base.Geometry.GranuleBytes, base.Geometry.RedBlockBytes,
		base.Geometry.RedundancyRatio(), base.DecodeLat))
	t.AddRow("Workloads", fmt.Sprintf("%d accesses/SM, %dMiB footprint, seed %d",
		base.AccessesPerSM, base.FootprintBytes>>20, base.Seed))
	t.Render(w)
	return nil
}

// --- Table 2 ---------------------------------------------------------------

func table2(r *Runner, base config.GPU, w io.Writer) error {
	t := stats.NewTable("Table 2: workload characterization (unprotected baseline)",
		"workload", "IPC", "L1 hit", "L2 hit", "row hit", "DRAM MB", "rd:wr")
	if err := prefetch(r, specGrid([]string{"base"}, trace.Names(), []string{"none"})); err != nil {
		return err
	}
	for _, wl := range trace.Names() {
		res, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "none"})
		if err != nil {
			return err
		}
		rowTotal := res.DRAMRowHits + res.DRAMRowMisses + res.DRAMRowConfl
		rowHit := 0.0
		if rowTotal > 0 {
			rowHit = float64(res.DRAMRowHits) / float64(rowTotal)
		}
		rd := res.DRAMStats.Get("bytes_read")
		wr := res.DRAMStats.Get("bytes_written")
		ratio := "∞"
		if wr > 0 {
			ratio = fmt.Sprintf("%.1f", float64(rd)/float64(wr))
		}
		t.AddRow(wl,
			fmt.Sprintf("%.2f", res.IPC),
			fmt.Sprintf("%.2f", res.L1HitRate),
			fmt.Sprintf("%.2f", res.L2HitRate),
			fmt.Sprintf("%.2f", rowHit),
			fmt.Sprintf("%.1f", float64(TotalDRAMBytes(res))/1e6),
			ratio)
	}
	t.Render(w)
	return nil
}

// --- Fig. 4 ----------------------------------------------------------------

func fig4(r *Runner, base config.GPU, w io.Writer) error {
	t := stats.NewTable("Fig. 4: performance normalized to no-ECC (higher is better)",
		"workload", "none", "inline-naive", "ecc-cache", "cachecraft")
	if err := prefetch(r, specGrid([]string{"base"}, trace.Names(), StandardSchemes())); err != nil {
		return err
	}
	gm := map[string][]float64{}
	for _, wl := range trace.Names() {
		baseRes, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "none"})
		if err != nil {
			return err
		}
		row := []string{wl}
		for _, s := range StandardSchemes() {
			res, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: s})
			if err != nil {
				return err
			}
			sp := float64(baseRes.Cycles) / float64(res.Cycles)
			gm[s] = append(gm[s], sp)
			row = append(row, fmt.Sprintf("%.3f", sp))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for _, s := range StandardSchemes() {
		row = append(row, fmt.Sprintf("%.3f", stats.Geomean(gm[s])))
	}
	t.AddRow(row...)
	t.Render(w)
	return nil
}

// --- Fig. 5 ----------------------------------------------------------------

func fig5(r *Runner, base config.GPU, w io.Writer) error {
	t := stats.NewTable("Fig. 5: DRAM traffic by class, normalized to the no-ECC total",
		"workload", "scheme", "demand", "redundancy", "writeback", "rmw", "reconstruct", "total")
	if err := prefetch(r, specGrid([]string{"base"}, trace.Names(), StandardSchemes())); err != nil {
		return err
	}
	for _, wl := range trace.Names() {
		baseRes, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "none"})
		if err != nil {
			return err
		}
		norm := float64(TotalDRAMBytes(baseRes))
		if norm == 0 {
			norm = 1
		}
		for _, s := range StandardSchemes() {
			res, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: s})
			if err != nil {
				return err
			}
			row := []string{wl, s}
			for _, class := range []string{"demand", "redundancy", "writeback", "rmw", "reconstruct"} {
				row = append(row, fmt.Sprintf("%.3f", float64(res.DRAMBytes[class])/norm))
			}
			row = append(row, fmt.Sprintf("%.3f", float64(TotalDRAMBytes(res))/norm))
			t.AddRow(row...)
		}
	}
	t.Render(w)
	return nil
}

// --- Fig. 6 ----------------------------------------------------------------

func fig6(r *Runner, base config.GPU, w io.Writer) error {
	t := stats.NewTable("Fig. 6: where CacheCraft redundancy lookups are served",
		"workload", "RC hit", "wbuf fwd", "merged in-flight", "DRAM", "lookups")
	if err := prefetch(r, specGrid([]string{"base"}, trace.Names(), []string{"cachecraft"})); err != nil {
		return err
	}
	for _, wl := range trace.Names() {
		res, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "cachecraft"})
		if err != nil {
			return err
		}
		cs := res.ControllerSt
		rc := cs.Get("red_rc_hits")
		fwd := cs.Get("red_wbuf_fwd")
		merged := cs.Get("red_merged")
		dram := cs.Get("red_reads_dram")
		total := rc + fwd + merged + dram
		frac := func(x uint64) string {
			if total == 0 {
				return "0.000"
			}
			return fmt.Sprintf("%.3f", float64(x)/float64(total))
		}
		t.AddRow(wl, frac(rc), frac(fwd), frac(merged), frac(dram), fmt.Sprintf("%d", total))
	}
	t.Render(w)
	return nil
}

// --- Fig. 7 ----------------------------------------------------------------

func fig7(r *Runner, base config.GPU, w io.Writer) error {
	t := stats.NewTable("Fig. 7: reconstruction usefulness (fractions of reconstructed sectors)",
		"workload", "issued", "merged w/ demand", "used later", "wasted", "useful frac")
	if err := prefetch(r, specGrid([]string{"base"}, trace.Names(), []string{"cachecraft"})); err != nil {
		return err
	}
	for _, wl := range trace.Names() {
		res, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "cachecraft"})
		if err != nil {
			return err
		}
		cs := res.ControllerSt
		issued := cs.Get("reconstruct_sectors")
		merged := cs.Get("reconstruct_merged")
		used := cs.Get("reconstruct_used")
		wasted := cs.Get("reconstruct_wasted")
		useful := 0.0
		if issued > 0 {
			useful = float64(merged+used) / float64(issued)
		}
		t.AddRow(wl,
			fmt.Sprintf("%d", issued),
			fmt.Sprintf("%d", merged),
			fmt.Sprintf("%d", used),
			fmt.Sprintf("%d", wasted),
			fmt.Sprintf("%.3f", useful))
	}
	t.Render(w)
	return nil
}

// --- Fig. 8 ----------------------------------------------------------------

func fig8(r *Runner, base config.GPU, w io.Writer) error {
	// RC capacity sweep (CacheCraft option variants).
	rcSizes := []int{16 << 10, 64 << 10, 256 << 10}
	rcVariants := []string{"none"}
	for _, sz := range rcSizes {
		opt := core.DefaultOptions()
		opt.RCSizeBytes = sz
		name := fmt.Sprintf("cc-rc%dk", sz>>10)
		r.AddCacheCraftVariant(name, opt)
		rcVariants = append(rcVariants, name)
	}
	if err := prefetch(r, specGrid([]string{"base"}, RepWorkloads(), rcVariants)); err != nil {
		return err
	}
	t := stats.NewTable("Fig. 8a: CacheCraft speedup vs no-ECC, RC capacity sweep",
		"workload", "RC 16K", "RC 64K", "RC 256K")
	for _, wl := range RepWorkloads() {
		baseRes, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "none"})
		if err != nil {
			return err
		}
		row := []string{wl}
		for _, sz := range rcSizes {
			res, err := r.Result(Spec{CfgID: "base", Workload: wl,
				Variant: fmt.Sprintf("cc-rc%dk", sz>>10)})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", float64(baseRes.Cycles)/float64(res.Cycles)))
		}
		t.AddRow(row...)
	}
	t.Render(w)

	// L2 capacity sweep (config variants; normalize to none at same L2).
	l2Sizes := []int{base.L2.SizeBytes / 2, base.L2.SizeBytes, base.L2.SizeBytes * 2}
	l2IDs := make([]string, 0, len(l2Sizes))
	for _, sz := range l2Sizes {
		cfg := base
		cfg.L2.SizeBytes = sz
		id := fmt.Sprintf("l2-%dm", sz>>20)
		r.AddConfig(id, cfg)
		l2IDs = append(l2IDs, id)
	}
	if err := prefetch(r, specGrid(l2IDs, RepWorkloads(), []string{"none", "cachecraft"})); err != nil {
		return err
	}
	t2 := stats.NewTable("Fig. 8b: CacheCraft speedup vs no-ECC, L2 capacity sweep",
		"workload",
		fmt.Sprintf("L2 %dMiB", l2Sizes[0]>>20),
		fmt.Sprintf("L2 %dMiB", l2Sizes[1]>>20),
		fmt.Sprintf("L2 %dMiB", l2Sizes[2]>>20))
	for _, wl := range RepWorkloads() {
		row := []string{wl}
		for _, sz := range l2Sizes {
			id := fmt.Sprintf("l2-%dm", sz>>20)
			baseRes, err := r.Result(Spec{CfgID: id, Workload: wl, Variant: "none"})
			if err != nil {
				return err
			}
			res, err := r.Result(Spec{CfgID: id, Workload: wl, Variant: "cachecraft"})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", float64(baseRes.Cycles)/float64(res.Cycles)))
		}
		t2.AddRow(row...)
	}
	t2.Render(w)
	return nil
}

// --- Fig. 9 ----------------------------------------------------------------

// AblationVariants returns the named CacheCraft variants with one
// mechanism disabled each.
func AblationVariants() map[string]core.Options {
	full := core.DefaultOptions()
	noR := full
	noR.Reconstruct = false
	noRC := full
	noRC.UseRC = false
	noP := full
	noP.Predictor = false
	noW := full
	noW.WBuf = false
	return map[string]core.Options{
		"cc-noR":  noR,
		"cc-noRC": noRC,
		"cc-noP":  noP,
		"cc-noW":  noW,
	}
}

func fig9(r *Runner, base config.GPU, w io.Writer) error {
	variants := AblationVariants()
	for name, opt := range variants {
		r.AddCacheCraftVariant(name, opt)
	}
	order := append([]string{"cachecraft"}, sortedKeys(variants)...)
	if err := prefetch(r,
		specGrid([]string{"base"}, AblationWorkloads(), append([]string{"none"}, order...))); err != nil {
		return err
	}
	t := stats.NewTable("Fig. 9: ablation — speedup vs no-ECC with one mechanism disabled",
		append([]string{"workload"}, order...)...)
	gm := map[string][]float64{}
	for _, wl := range AblationWorkloads() {
		baseRes, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "none"})
		if err != nil {
			return err
		}
		row := []string{wl}
		for _, v := range order {
			res, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: v})
			if err != nil {
				return err
			}
			sp := float64(baseRes.Cycles) / float64(res.Cycles)
			gm[v] = append(gm[v], sp)
			row = append(row, fmt.Sprintf("%.3f", sp))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for _, v := range order {
		row = append(row, fmt.Sprintf("%.3f", stats.Geomean(gm[v])))
	}
	t.AddRow(row...)
	t.Render(w)
	return nil
}

// --- Fig. 10 ---------------------------------------------------------------

func fig10(r *Runner, base config.GPU, w io.Writer) error {
	model := energy.Default()
	t := stats.NewTable("Fig. 10: memory-system dynamic energy normalized to no-ECC",
		"workload", "none", "inline-naive", "ecc-cache", "cachecraft")
	if err := prefetch(r, specGrid([]string{"base"}, trace.Names(), StandardSchemes())); err != nil {
		return err
	}
	for _, wl := range trace.Names() {
		baseRes, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "none"})
		if err != nil {
			return err
		}
		norm := model.Evaluate(baseRes).Total()
		row := []string{wl}
		for _, s := range StandardSchemes() {
			res, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: s})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", model.Evaluate(res).Total()/norm))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	return nil
}

// --- Fig. 11 ---------------------------------------------------------------

func fig11(r *Runner, base config.GPU, w io.Writer) error {
	type geoCase struct {
		id   string
		geo  layout.Geometry
		lay  string
		desc string
	}
	cases := []geoCase{
		{"geo-8-lin", layout.DefaultGeometry(), "linear", "1/8 linear"},
		{"geo-16-lin", layout.Geometry1of16(), "linear", "1/16 linear"},
		{"geo-8-row", layout.DefaultGeometry(), "row-local", "1/8 row-local"},
		{"geo-16-row", layout.Geometry1of16(), "row-local", "1/16 row-local"},
	}
	geoIDs := make([]string, 0, len(cases))
	for _, c := range cases {
		cfg := base
		cfg.Geometry = c.geo
		cfg.Layout = c.lay
		r.AddConfig(c.id, cfg)
		geoIDs = append(geoIDs, c.id)
	}
	if err := prefetch(r, specGrid(geoIDs, RepWorkloads(), []string{"none", "cachecraft"})); err != nil {
		return err
	}
	t := stats.NewTable("Fig. 11: protection geometry/layout sweep — CacheCraft speedup vs no-ECC (same geometry)",
		"workload", cases[0].desc, cases[1].desc, cases[2].desc, cases[3].desc)
	for _, wl := range RepWorkloads() {
		row := []string{wl}
		for _, c := range cases {
			baseRes, err := r.Result(Spec{CfgID: c.id, Workload: wl, Variant: "none"})
			if err != nil {
				return err
			}
			res, err := r.Result(Spec{CfgID: c.id, Workload: wl, Variant: "cachecraft"})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", float64(baseRes.Cycles)/float64(res.Cycles)))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	return nil
}

// --- Fig. 12 ---------------------------------------------------------------

func fig12(r *Runner, base config.GPU, w io.Writer) error {
	r.AddCacheCraftVariant("cc-noW", AblationVariants()["cc-noW"])
	writeHeavy := []string{"scan", "histogram", "transpose", "stencil"}
	if err := prefetch(r, specGrid([]string{"base"}, writeHeavy,
		[]string{"inline-naive", "ecc-cache", "cc-noW", "cachecraft"})); err != nil {
		return err
	}
	t := stats.NewTable("Fig. 12: redundancy read-modify-writes per 1k data writebacks",
		"workload", "inline-naive", "ecc-cache", "cachecraft-noW", "cachecraft", "cc blind writes")
	for _, wl := range writeHeavy {
		row := []string{wl}
		var ccBlind uint64
		for _, v := range []string{"inline-naive", "ecc-cache", "cc-noW", "cachecraft"} {
			res, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: v})
			if err != nil {
				return err
			}
			wbBytes := res.DRAMBytes["writeback"]
			wbEvents := wbBytes / 32
			// Count RMW reads from traffic bytes so deferred RMWs (the
			// ecc-cache write-allocate fetches) are included.
			rmw := res.DRAMBytes["rmw"] / 32
			rate := 0.0
			if wbEvents > 0 {
				rate = float64(rmw) / float64(wbEvents) * 1000
			}
			row = append(row, fmt.Sprintf("%.0f", rate))
			if v == "cachecraft" {
				ccBlind = res.ControllerSt.Get("red_blind_writes")
			}
		}
		row = append(row, fmt.Sprintf("%d", ccBlind))
		t.AddRow(row...)
	}
	t.Render(w)
	return nil
}

// --- Table 3 ---------------------------------------------------------------

func table3(r *Runner, base config.GPU, w io.Writer) error {
	secded, err := ecc.NewSECDEDSector(32, 64)
	if err != nil {
		return err
	}
	rs36, err := ecc.NewRSSector(32, 4)
	if err != nil {
		return err
	}
	rs34, err := ecc.NewRSSector(32, 2)
	if err != nil {
		return err
	}
	injectors := []struct {
		name string
		inj  faults.Injector
	}{
		{"1 bit", faults.BitFlips(1)},
		{"2 bits", faults.BitFlips(2)},
		{"4-bit burst", faults.Burst(4)},
		{"1 chip (byte)", faults.ChipError()},
		{"2 chips", faults.DoubleChipError()},
	}
	t := stats.NewTable("Table 3: codec reliability (10k injections each; rates)",
		"codec", "fault", "corrected", "detected", "SDC")
	for _, codec := range []ecc.SectorCodec{secded, rs36, rs34} {
		for _, in := range injectors {
			rep := faults.Campaign{Codec: codec, Trials: 10000, Seed: 99}.Run(in.name, in.inj)
			t.AddRow(codec.Name(), in.name,
				fmt.Sprintf("%.4f", rep.Rate(faults.Corrected)),
				fmt.Sprintf("%.4f", rep.Rate(faults.Detected)),
				fmt.Sprintf("%.4f", rep.SDCRate()))
		}
	}
	t.Render(w)
	return nil
}

// --- Fig. 13 (extension) ----------------------------------------------------

func fig13(r *Runner, base config.GPU, w io.Writer) error {
	srrip := base
	srrip.L2.Repl = cache.SRRIP
	r.AddConfig("l2-srrip", srrip)
	if err := prefetch(r, specGrid([]string{"base", "l2-srrip"}, RepWorkloads(),
		[]string{"none", "cachecraft"})); err != nil {
		return err
	}
	t := stats.NewTable("Fig. 13 (extension): L2 replacement policy — speedup vs no-ECC at same policy",
		"workload", "LRU none", "LRU cachecraft", "SRRIP none", "SRRIP cachecraft")
	for _, wl := range RepWorkloads() {
		row := []string{wl}
		for _, cfgID := range []string{"base", "l2-srrip"} {
			baseRes, err := r.Result(Spec{CfgID: cfgID, Workload: wl, Variant: "none"})
			if err != nil {
				return err
			}
			ccRes, err := r.Result(Spec{CfgID: cfgID, Workload: wl, Variant: "cachecraft"})
			if err != nil {
				return err
			}
			row = append(row, "1.000",
				fmt.Sprintf("%.3f", float64(baseRes.Cycles)/float64(ccRes.Cycles)))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	return nil
}

// --- Fig. 14 (extension) ----------------------------------------------------

func fig14(r *Runner, base config.GPU, w io.Writer) error {
	seeds := []int64{base.Seed, base.Seed + 1, base.Seed + 2}
	for _, seed := range seeds[1:] {
		cfg := base
		cfg.Seed = seed
		r.AddConfig(fmt.Sprintf("seed-%d", seed), cfg)
	}
	cfgID := func(seed int64) string {
		if seed == base.Seed {
			return "base"
		}
		return fmt.Sprintf("seed-%d", seed)
	}
	seedIDs := make([]string, 0, len(seeds))
	for _, seed := range seeds {
		seedIDs = append(seedIDs, cfgID(seed))
	}
	if err := prefetch(r, specGrid(seedIDs, []string{"stream", "bfs", "histogram"},
		[]string{"none", "cachecraft"})); err != nil {
		return err
	}
	t := stats.NewTable("Fig. 14 (extension): CacheCraft speedup vs no-ECC across workload seeds",
		"workload", "seed A", "seed B", "seed C", "spread")
	for _, wl := range []string{"stream", "bfs", "histogram"} {
		row := []string{wl}
		lo, hi := 0.0, 0.0
		for i, seed := range seeds {
			id := cfgID(seed)
			baseRes, err := r.Result(Spec{CfgID: id, Workload: wl, Variant: "none"})
			if err != nil {
				return err
			}
			ccRes, err := r.Result(Spec{CfgID: id, Workload: wl, Variant: "cachecraft"})
			if err != nil {
				return err
			}
			sp := float64(baseRes.Cycles) / float64(ccRes.Cycles)
			if i == 0 || sp < lo {
				lo = sp
			}
			if i == 0 || sp > hi {
				hi = sp
			}
			row = append(row, fmt.Sprintf("%.3f", sp))
		}
		row = append(row, fmt.Sprintf("%.3f", hi-lo))
		t.AddRow(row...)
	}
	t.Render(w)
	return nil
}

// --- Fig. 15 (extension) ----------------------------------------------------

func fig15(r *Runner, base config.GPU, w io.Writer) error {
	rates := []int{0, 1000, 10000, 100000}
	for _, ppm := range rates[1:] {
		cfg := base
		cfg.ErrorRatePPM = ppm
		r.AddConfig(fmt.Sprintf("err-%dppm", ppm), cfg)
	}
	cfgID := func(ppm int) string {
		if ppm == 0 {
			return "base"
		}
		return fmt.Sprintf("err-%dppm", ppm)
	}
	errIDs := make([]string, 0, len(rates))
	for _, ppm := range rates {
		errIDs = append(errIDs, cfgID(ppm))
	}
	if err := prefetch(r,
		specGrid([]string{"base"}, RepWorkloads(), []string{"none"}),
		specGrid(errIDs, RepWorkloads(), []string{"cachecraft"})); err != nil {
		return err
	}
	t := stats.NewTable("Fig. 15 (extension): CacheCraft speedup vs error-free no-ECC under correctable-error storms",
		"workload", "0 ppm", "1k ppm", "10k ppm", "100k ppm", "scrubs @100k")
	for _, wl := range RepWorkloads() {
		baseRes, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "none"})
		if err != nil {
			return err
		}
		row := []string{wl}
		var scrubs uint64
		for _, ppm := range rates {
			res, err := r.Result(Spec{CfgID: cfgID(ppm), Workload: wl, Variant: "cachecraft"})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", float64(baseRes.Cycles)/float64(res.Cycles)))
			if ppm == rates[len(rates)-1] {
				scrubs = res.ControllerSt.Get("scrub_writes")
			}
		}
		row = append(row, fmt.Sprintf("%d", scrubs))
		t.AddRow(row...)
	}
	t.Render(w)
	return nil
}

// --- Fig. 16 (extension) ----------------------------------------------------

func fig16(r *Runner, base config.GPU, w io.Writer) error {
	t := stats.NewTable("Fig. 16 (extension): speedup vs no-ECC — CacheCraft against the free-redundancy bound",
		"workload", "cachecraft", "ideal", "headroom left", "floor cost (1-ideal)")
	if err := prefetch(r, specGrid([]string{"base"}, trace.Names(),
		[]string{"none", "cachecraft", "ideal"})); err != nil {
		return err
	}
	for _, wl := range trace.Names() {
		baseRes, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "none"})
		if err != nil {
			return err
		}
		cc, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "cachecraft"})
		if err != nil {
			return err
		}
		id, err := r.Result(Spec{CfgID: "base", Workload: wl, Variant: "ideal"})
		if err != nil {
			return err
		}
		ccSp := float64(baseRes.Cycles) / float64(cc.Cycles)
		idSp := float64(baseRes.Cycles) / float64(id.Cycles)
		t.AddRow(wl,
			fmt.Sprintf("%.3f", ccSp),
			fmt.Sprintf("%.3f", idSp),
			fmt.Sprintf("%.3f", idSp-ccSp),
			fmt.Sprintf("%.3f", 1-idSp))
	}
	t.Render(w)
	return nil
}
