package bench

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"cachecraft/internal/config"
	"cachecraft/internal/gpu"
	"cachecraft/internal/store"
)

// TestWarmStoreRerunPerformsZeroSimulations is the headline property of
// the persistent store: a fresh runner (a "new process") re-running an
// unchanged grid against a warm store must answer everything from disk,
// with identical results.
func TestWarmStoreRerunPerformsZeroSimulations(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := specGrid([]string{"base"}, []string{"stream", "scan"}, []string{"none", "cachecraft"})

	cold := NewRunner(quickBase())
	cold.SetStore(st)
	if err := cold.Prefetch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	cs := cold.Stats()
	if cs.Runs != len(specs) || cs.StoreMisses != len(specs) || cs.StoreHits != 0 {
		t.Fatalf("cold stats off: %+v", cs)
	}
	if cs.StoreErrors != 0 {
		t.Fatalf("cold run failed to persist: %+v", cs)
	}

	warm := NewRunner(quickBase())
	warm.SetStore(st)
	if err := warm.Prefetch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	ws := warm.Stats()
	if ws.Runs != 0 {
		t.Fatalf("warm re-run simulated: %+v", ws)
	}
	if ws.StoreHits != len(specs) {
		t.Fatalf("warm re-run missed the store: %+v", ws)
	}
	for _, s := range specs {
		a, err := cold.Result(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := warm.Result(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: store round trip changed the result:\ncold %+v\nwarm %+v", s, a, b)
		}
	}
}

// TestWarmStoreOutputByteIdentical renders an experiment cold (simulating
// and persisting) and again warm (store only) and requires byte-identical
// output: the -store analogue of the -j determinism guarantee.
func TestWarmStoreOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("renders a full experiment twice")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	render := func() (string, Stats) {
		r := NewRunner(quickBase())
		r.SetStore(st)
		var buf bytes.Buffer
		if err := fig4(r, quickBase(), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), r.Stats()
	}
	coldOut, coldStats := render()
	warmOut, warmStats := render()
	if coldStats.Runs == 0 {
		t.Fatal("cold render simulated nothing; test is vacuous")
	}
	if warmStats.Runs != 0 {
		t.Fatalf("warm render simulated: %+v", warmStats)
	}
	if coldOut != warmOut {
		t.Fatalf("warm output differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", coldOut, warmOut)
	}
}

// TestAddConfigChangesStoreAddress: the store is keyed by configuration
// content, so a different config under the same id must miss rather than
// replay the old config's result.
func TestAddConfigChangesStoreAddress(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(quickBase())
	r.SetStore(st)
	small := quickBase()
	small.AccessesPerSM = 200
	r.AddConfig("sweep", small)
	s := Spec{CfgID: "sweep", Workload: "stream", Variant: "none"}
	a, err := r.Result(s)
	if err != nil {
		t.Fatal(err)
	}
	big := quickBase()
	big.AccessesPerSM = 400
	r.AddConfig("sweep", big)
	b, err := r.Result(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats().StoreHits != 0 {
		t.Fatalf("changed config hit the store: %+v", r.Stats())
	}
	if b.Instructions <= a.Instructions {
		t.Fatal("stale stored result served for a changed config")
	}
}

// stubStore lets the runner-side accounting be tested without disk.
type stubStore struct {
	mu      sync.Mutex
	results map[string]gpu.Result
	saveErr error
	saves   int
}

func (s *stubStore) key(cfg config.GPU, wl, sc string) string { return store.Fingerprint(cfg, wl, sc) }

func (s *stubStore) Lookup(cfg config.GPU, wl, sc string) (gpu.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.results[s.key(cfg, wl, sc)]
	return res, ok
}

func (s *stubStore) Save(cfg config.GPU, wl, sc string, res gpu.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saves++
	if s.saveErr != nil {
		return s.saveErr
	}
	if s.results == nil {
		s.results = make(map[string]gpu.Result)
	}
	s.results[s.key(cfg, wl, sc)] = res
	return nil
}

// TestStoreSaveFailureIsCountedNotFatal: a dark store (full disk) must
// not fail callers, but must be visible in Stats.
func TestStoreSaveFailureIsCountedNotFatal(t *testing.T) {
	st := &stubStore{saveErr: errors.New("disk full")}
	r := NewRunner(quickBase())
	r.SetStore(st)
	s := Spec{CfgID: "base", Workload: "stream", Variant: "none"}
	if _, err := r.Result(s); err != nil {
		t.Fatalf("save failure surfaced to caller: %v", err)
	}
	got := r.Stats()
	if got.Runs != 1 || got.StoreErrors != 1 {
		t.Fatalf("stats = %+v, want 1 run and 1 store error", got)
	}
}

// TestStatsMemoHitsAndDedups: repeated sequential requests are memo hits;
// concurrent requests for one spec split into one run and n-1 hits or
// dedups (which bucket depends on timing, but the sum is exact).
func TestStatsMemoHitsAndDedups(t *testing.T) {
	r := NewRunner(quickBase())
	s := Spec{CfgID: "base", Workload: "stream", Variant: "none"}
	if _, err := r.Result(s); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Result(s); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats(); got.Runs != 1 || got.MemoHits != 1 || got.Dedups != 0 {
		t.Fatalf("sequential stats = %+v, want 1 run, 1 memo hit", got)
	}

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Result(Spec{CfgID: "base", Workload: "scan", Variant: "none"}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got := r.Stats()
	if got.Runs != 2 {
		t.Fatalf("concurrent stats = %+v, want 2 runs total", got)
	}
	if got.MemoHits+got.Dedups != 1+(n-1) {
		t.Fatalf("stats = %+v, want memo hits + dedups = %d", got, 1+(n-1))
	}
}

// TestStoreHitSkipsWorkerSlots: store hits must not consume simulation
// slots — a warm grid completes even with a 1-worker pool and never
// touches Save.
func TestStoreHitSkipsWorkerSlots(t *testing.T) {
	seed := &stubStore{}
	warmup := NewRunner(quickBase())
	warmup.SetStore(seed)
	specs := specGrid([]string{"base"}, []string{"stream", "scan"}, []string{"none"})
	if err := warmup.Prefetch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	savesAfterWarmup := seed.saves

	r := NewRunner(quickBase())
	r.SetStore(seed)
	r.SetWorkers(1)
	if err := r.Prefetch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	got := r.Stats()
	if got.Runs != 0 || got.StoreHits != len(specs) {
		t.Fatalf("stats = %+v, want all store hits", got)
	}
	if seed.saves != savesAfterWarmup {
		t.Fatal("store hits re-saved records")
	}
}
