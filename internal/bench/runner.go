// Package bench defines the evaluation harness: one experiment per table
// and figure of the paper-style evaluation, all driven through a
// memoizing runner so that figures sharing the same simulations (e.g. the
// performance figure and the traffic-breakdown figure) pay for each run
// once.
package bench

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"

	"cachecraft/internal/config"
	"cachecraft/internal/core"
	"cachecraft/internal/gpu"
	"cachecraft/internal/obs"
	"cachecraft/internal/protect"
	"cachecraft/internal/schemes"
)

// Spec names one simulation: a configuration (identified by CfgID because
// config.GPU is not comparable), a workload, and a scheme variant.
type Spec struct {
	CfgID    string
	Workload string
	Variant  string
}

// call is one in-flight or completed simulation (singleflight slot).
// Waiters block on done; res/err are immutable once done is closed.
type call struct {
	done chan struct{}
	res  gpu.Result
	err  error
}

// errAbandoned marks a call whose leader was cancelled before the
// simulation started; waiters observing it retry with their own context.
var errAbandoned = errors.New("bench: in-flight simulation abandoned")

// ResultStore is the persistence hook beneath the runner: a durable
// result cache consulted after the in-memory memo misses and populated
// after each successful simulation (check store → singleflight →
// simulate → persist). *store.Store implements it; tests may substitute
// stubs. Implementations must be safe for concurrent use and must treat
// any unreadable or stale entry as a miss.
type ResultStore interface {
	Lookup(cfg config.GPU, workload, scheme string) (gpu.Result, bool)
	Save(cfg config.GPU, workload, scheme string, res gpu.Result) error
}

// Remote is the distributed-execution hook beneath the runner: a backend
// (typically a cluster coordinator, see internal/cluster) that
// materializes a cell on another machine. It is consulted after the memo
// and the persistent store both miss, and only for cells it declares
// expressible via Can — custom scheme variants registered as in-process
// factories cannot travel over the wire and always simulate locally.
// A remote failure falls back to local simulation, so attaching a remote
// never changes results, only where they are computed. Implementations
// must be safe for concurrent use.
type Remote interface {
	// Can reports whether the backend can materialize the given
	// (workload, scheme) pair. Configurations always travel (they are
	// shipped in full), so expressibility depends only on the names.
	Can(workload, scheme string) bool
	// Run materializes one cell remotely.
	Run(ctx context.Context, cfg config.GPU, workload, scheme string) (gpu.Result, error)
}

// Stats is a snapshot of the runner's accounting.
type Stats struct {
	Runs         int // simulations actually executed (successfully)
	MemoHits     int // requests answered from the in-memory memo
	Dedups       int // requests that piggybacked on an in-flight simulation
	StoreHits    int // requests answered from the persistent store
	StoreMisses  int // persistent-store lookups that missed
	StoreErrors  int // failed persist attempts (results still returned)
	RemoteHits   int // requests materialized by the remote backend
	RemoteErrors int // remote attempts that failed and fell back to local
	Started      int // ResultCtx calls begun (cells requested)
	Finished     int // ResultCtx calls returned, any outcome
}

// Runner executes simulations on demand, memoizes results, and bounds
// concurrent execution with a worker-slot semaphore. Concurrent requests
// for the same Spec are deduplicated (singleflight): the first request
// runs the simulation while the rest block on the in-flight call and
// share its result, so a parallel fan-out never races or duplicates work.
// With SetStore, results additionally persist across processes: a miss in
// the memo falls through to the store before simulating, and every fresh
// simulation is written back, so a warm re-run performs zero simulations.
type Runner struct {
	mu      sync.Mutex
	memo    map[Spec]*call
	configs map[string]config.GPU
	facts   map[string]protect.Factory
	store   ResultStore   // optional durable tier (nil = disabled)
	remote  Remote        // optional distributed tier (nil = disabled)
	tracer  *obs.Tracer   // optional span tracing (nil = off, zero cost)
	audit   bool          // run simulations under the invariant checker
	prWin   uint64        // probe sampling window (0 = probes off)
	prSink  ProbeSink     // receives each executed simulation's probes
	stat    Stats         // counters; stat.Runs mirrors Runs()
	slots   chan struct{} // bounded worker slots
}

// NewRunner builds a runner seeded with the base configuration under id
// "base" and the four standard scheme variants. The worker pool defaults
// to runtime.NumCPU() concurrent simulations; see SetWorkers.
func NewRunner(base config.GPU) *Runner {
	r := &Runner{
		memo:    make(map[Spec]*call),
		configs: map[string]config.GPU{"base": base},
		facts:   make(map[string]protect.Factory),
		slots:   make(chan struct{}, runtime.NumCPU()),
	}
	for _, s := range schemes.Names() {
		f, err := schemes.ByName(s)
		if err != nil {
			panic(err) // statically impossible: Names() lists registered schemes
		}
		r.facts[s] = f
	}
	return r
}

// SetWorkers bounds the number of simulations executing at once (n < 1 is
// clamped to 1). Call it before fanning work out; simulations already in
// flight keep the slot they hold.
func (r *Runner) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.slots = make(chan struct{}, n)
}

// Workers reports the current worker-pool bound.
func (r *Runner) Workers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return cap(r.slots)
}

// SetStore attaches a durable result store beneath the memo (nil detaches
// it). Attach it before fanning work out; in-flight simulations persist
// only if the store was attached when they were requested.
func (r *Runner) SetStore(s ResultStore) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = s
}

// SetRemote attaches a distributed-execution backend beneath the memo and
// store (nil detaches it). Cells the backend can express are fetched from
// it instead of simulating locally; inexpressible cells and remote
// failures simulate locally as before, so results are identical either
// way. Attach it before fanning work out; in-flight cells use whatever
// was attached when they were requested.
func (r *Runner) SetRemote(rem Remote) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.remote = rem
}

// SetTracer attaches span tracing to the runner (nil detaches it). Each
// simulation that actually executes emits a "cell" span with store-lookup,
// queue-wait, simulate, and persist children; memo hits and singleflight
// waiters emit nothing. With no tracer the hot path pays only nil checks.
func (r *Runner) SetTracer(t *obs.Tracer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer = t
}

// ProbeSink receives the probe set of one executed simulation, after
// the run finished and the probes were flushed. Sinks run on the
// simulation's goroutine and must be safe for concurrent use when the
// runner fans out (obs.Timeline.AddCell qualifies).
type ProbeSink func(s Spec, p *obs.Probes)

// SetProbes attaches the time-resolved probe layer to every subsequent
// simulation that actually executes: each run gets a fresh obs.Probes
// sampling at the given window, and sink receives it after the run
// succeeds. Memo, store, and remote hits carry no probes — like span
// tracing, probes describe work this process performed. Probes observe
// without scheduling engine events, so results (and the sweep's stdout)
// are byte-identical with probes on or off. A nil sink (or zero window)
// detaches the layer.
func (r *Runner) SetProbes(window uint64, sink ProbeSink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sink == nil || window == 0 {
		r.prWin, r.prSink = 0, nil
		return
	}
	r.prWin, r.prSink = window, sink
}

// SetAudit runs every subsequent simulation under the invariant-audit
// layer (internal/audit): a run that violates a simulation invariant
// fails with an audit error instead of returning a result. Auditing
// changes no simulated timing — results are identical either way — so
// memoized and stored results remain valid when toggling it. Store hits
// and memo hits are served without re-simulating and are therefore not
// re-audited.
func (r *Runner) SetAudit(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.audit = on
}

// Stats returns a snapshot of the runner's accounting: executed
// simulations, memo hits, singleflight dedups, and store traffic.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stat
}

// AddConfig registers a configuration variant (sensitivity sweeps).
// Re-registering an id with a different configuration invalidates every
// memoized result keyed by that id, so later Result calls simulate the
// new configuration instead of silently replaying the old one.
// Re-registering the identical configuration keeps the memo intact.
func (r *Runner) AddConfig(id string, cfg config.GPU) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.configs[id]; ok && !reflect.DeepEqual(old, cfg) {
		for s := range r.memo {
			if s.CfgID == id {
				delete(r.memo, s)
			}
		}
	}
	r.configs[id] = cfg
}

// AddVariant registers a scheme variant (ablations) under the given name.
// Factories are not comparable, so unlike AddConfig this cannot detect a
// semantically different re-registration; register distinct variants
// under distinct names.
func (r *Runner) AddVariant(name string, f protect.Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.facts[name] = f
}

// AddCacheCraftVariant registers a CacheCraft ablation variant.
func (r *Runner) AddCacheCraftVariant(name string, opt core.Options) {
	r.AddVariant(name, schemes.CacheCraftWith(opt))
}

// Result runs (or replays) one simulation.
func (r *Runner) Result(s Spec) (gpu.Result, error) {
	return r.ResultCtx(context.Background(), s)
}

// ResultCtx runs (or replays) one simulation, honouring ctx while waiting
// for a worker slot or for another goroutine's in-flight run of the same
// Spec. A simulation that has already started is never interrupted: its
// result stays useful for the memo even if this caller gives up.
func (r *Runner) ResultCtx(ctx context.Context, s Spec) (gpu.Result, error) {
	r.mu.Lock()
	r.stat.Started++
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.stat.Finished++
		r.mu.Unlock()
	}()
	for {
		r.mu.Lock()
		if c, ok := r.memo[s]; ok {
			select {
			case <-c.done:
				r.stat.MemoHits++
			default:
				r.stat.Dedups++
			}
			r.mu.Unlock()
			select {
			case <-c.done:
				if errors.Is(c.err, errAbandoned) {
					continue // leader was cancelled before running; retry
				}
				return c.res, c.err
			case <-ctx.Done():
				return gpu.Result{}, ctx.Err()
			}
		}
		cfg, okC := r.configs[s.CfgID]
		f, okF := r.facts[s.Variant]
		if !okC {
			r.mu.Unlock()
			return gpu.Result{}, fmt.Errorf("bench: unknown config %q", s.CfgID)
		}
		if !okF {
			r.mu.Unlock()
			return gpu.Result{}, fmt.Errorf("bench: unknown variant %q", s.Variant)
		}
		c := &call{done: make(chan struct{})}
		r.memo[s] = c
		st := r.store
		rem := r.remote
		slots := r.slots
		tr := r.tracer
		aud := r.audit
		prWin, prSink := r.prWin, r.prSink
		r.mu.Unlock()
		return r.lead(ctx, s, c, cfg, f, st, rem, slots, tr, aud, prWin, prSink)
	}
}

// lead is the singleflight leader's path: consult the store, wait for a
// worker slot, simulate, persist. When a tracer is attached it wraps the
// whole cell in a span with one child per phase, so a trace shows exactly
// where a cell's wall time went.
func (r *Runner) lead(ctx context.Context, s Spec, c *call, cfg config.GPU,
	f protect.Factory, st ResultStore, rem Remote, slots chan struct{}, tr *obs.Tracer, aud bool,
	prWin uint64, prSink ProbeSink) (gpu.Result, error) {
	ctx, cell := tr.Start(ctx, "cell",
		obs.String("config", s.CfgID),
		obs.String("workload", s.Workload),
		obs.String("scheme", s.Variant))
	defer cell.End()

	// Durable tier: a store hit satisfies the call (and everyone
	// singleflighted onto it) without consuming a worker slot.
	if st != nil {
		_, lk := tr.Start(ctx, "store-lookup")
		res, ok := st.Lookup(cfg, s.Workload, s.Variant)
		lk.SetAttr(obs.Bool("hit", ok))
		lk.End()
		if ok {
			r.mu.Lock()
			r.stat.StoreHits++
			r.mu.Unlock()
			cell.SetAttr(obs.String("outcome", "store-hit"))
			r.finish(s, c, res, nil, false)
			return res, nil
		}
		r.mu.Lock()
		r.stat.StoreMisses++
		r.mu.Unlock()
	}

	// Distributed tier: an expressible cell is fetched from the remote
	// backend — like a store hit, it satisfies the call (and everyone
	// singleflighted onto it) without consuming a local worker slot. The
	// fetched result is persisted locally so the next cold process skips
	// both the simulation and the network. A remote failure is recorded
	// and the cell falls through to local simulation.
	if rem != nil && rem.Can(s.Workload, s.Variant) {
		_, rs := tr.Start(ctx, "remote")
		res, err := rem.Run(ctx, cfg, s.Workload, s.Variant)
		rs.SetAttr(obs.Bool("ok", err == nil))
		rs.End()
		if err == nil {
			r.mu.Lock()
			r.stat.RemoteHits++
			r.mu.Unlock()
			if st != nil {
				if perr := st.Save(cfg, s.Workload, s.Variant, res); perr != nil {
					r.mu.Lock()
					r.stat.StoreErrors++
					r.mu.Unlock()
				}
			}
			cell.SetAttr(obs.String("outcome", "remote"))
			r.finish(s, c, res, nil, false)
			return res, nil
		}
		if ctx.Err() != nil {
			cell.SetAttr(obs.String("outcome", "abandoned"))
			r.finish(s, c, gpu.Result{}, errAbandoned, false)
			return gpu.Result{}, ctx.Err()
		}
		r.mu.Lock()
		r.stat.RemoteErrors++
		r.mu.Unlock()
	}

	// Check cancellation before racing for a slot: with both a free
	// slot and a done context ready, select would choose arbitrarily.
	if err := ctx.Err(); err != nil {
		cell.SetAttr(obs.String("outcome", "abandoned"))
		r.finish(s, c, gpu.Result{}, errAbandoned, false)
		return gpu.Result{}, err
	}
	_, qw := tr.Start(ctx, "queue-wait")
	select {
	case slots <- struct{}{}:
		qw.End()
	case <-ctx.Done():
		qw.SetAttr(obs.Bool("cancelled", true))
		qw.End()
		cell.SetAttr(obs.String("outcome", "abandoned"))
		r.finish(s, c, gpu.Result{}, errAbandoned, false)
		return gpu.Result{}, ctx.Err()
	}
	simCtx, sim := tr.Start(ctx, "simulate")
	res, err := simulate(simCtx, cfg, f, s, tr, aud, prWin, prSink)
	sim.SetAttr(obs.Bool("ok", err == nil))
	sim.End()
	<-slots
	if err == nil && st != nil {
		// Persist best-effort: a full disk must not fail the caller,
		// but it is counted so operators can see the store is dark.
		_, ps := tr.Start(ctx, "persist")
		perr := st.Save(cfg, s.Workload, s.Variant, res)
		ps.SetAttr(obs.Bool("ok", perr == nil))
		ps.End()
		if perr != nil {
			r.mu.Lock()
			r.stat.StoreErrors++
			r.mu.Unlock()
		}
	}
	cell.SetAttr(obs.String("outcome", outcomeOf(err)))
	r.finish(s, c, res, err, true)
	return res, err
}

func outcomeOf(err error) string {
	if err != nil {
		return "error"
	}
	return "run"
}

// finish publishes a call's outcome. Failed or abandoned calls are
// removed from the memo (if still current) so a later request retries.
// ran distinguishes an executed simulation from a store hit, which
// completes the call without counting as a run.
func (r *Runner) finish(s Spec, c *call, res gpu.Result, err error, ran bool) {
	r.mu.Lock()
	c.res, c.err = res, err
	if err != nil {
		if r.memo[s] == c {
			delete(r.memo, s)
		}
	} else if ran {
		r.stat.Runs++
	}
	r.mu.Unlock()
	close(c.done)
}

// simulate executes one simulation from scratch. With a tracer attached,
// the machine emits spans for its top-level stages (execute, drain) as
// children of the caller's simulate span.
func simulate(ctx context.Context, cfg config.GPU, f protect.Factory, s Spec, tr *obs.Tracer, aud bool,
	prWin uint64, prSink ProbeSink) (gpu.Result, error) {
	m, err := gpu.New(cfg, s.Workload, f)
	if err != nil {
		return gpu.Result{}, err
	}
	m.SetTracer(ctx, tr)
	var probes *obs.Probes
	if prSink != nil {
		probes = obs.NewProbes(prWin)
		m.SetProbes(probes)
	}
	if aud {
		m.EnableAudit()
	}
	res, err := m.Run()
	if err != nil {
		return gpu.Result{}, fmt.Errorf("bench: %s/%s/%s: %w", s.CfgID, s.Workload, s.Variant, err)
	}
	if prSink != nil {
		probes.Flush()
		prSink(s, probes)
	}
	res.Workload = s.Workload
	res.Scheme = s.Variant
	return res, nil
}

// Prefetch fans the given specs out across the worker pool and blocks
// until every one has completed. Duplicate specs (and specs another
// caller is already running) collapse onto a single simulation. The
// first failure cancels the batch's still-queued work and is returned;
// completed results stay memoized either way, so subsequent Result calls
// for the survivors are cache hits.
func (r *Runner) Prefetch(ctx context.Context, specs []Spec) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for _, s := range specs {
		wg.Add(1)
		go func(s Spec) {
			defer wg.Done()
			if _, err := r.ResultCtx(ctx, s); err != nil && !errors.Is(err, context.Canceled) {
				errOnce.Do(func() {
					firstErr = err
					cancel()
				})
			}
		}(s)
	}
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// MustResult is Result for experiment code where configuration and
// variants are statically registered; it panics on error.
func (r *Runner) MustResult(s Spec) gpu.Result {
	res, err := r.Result(s)
	if err != nil {
		panic(err)
	}
	return res
}

// Runs reports how many distinct simulations have completed successfully.
// Store hits do not count: they answer requests without simulating.
func (r *Runner) Runs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stat.Runs
}

// StandardSchemes lists the four evaluation schemes in order.
func StandardSchemes() []string { return schemes.All() }

// TotalDRAMBytes sums a result's traffic classes.
func TotalDRAMBytes(res gpu.Result) uint64 {
	var total uint64
	for _, v := range res.DRAMBytes {
		total += v
	}
	return total
}

// sortedKeys returns map keys in sorted order (deterministic rendering).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
