// Package bench defines the evaluation harness: one experiment per table
// and figure of the paper-style evaluation, all driven through a
// memoizing runner so that figures sharing the same simulations (e.g. the
// performance figure and the traffic-breakdown figure) pay for each run
// once.
package bench

import (
	"fmt"
	"sort"
	"sync"

	"cachecraft/internal/config"
	"cachecraft/internal/core"
	"cachecraft/internal/gpu"
	"cachecraft/internal/protect"
	"cachecraft/internal/schemes"
)

// Spec names one simulation: a configuration (identified by CfgID because
// config.GPU is not comparable), a workload, and a scheme variant.
type Spec struct {
	CfgID    string
	Workload string
	Variant  string
}

// Runner executes simulations on demand and memoizes results.
type Runner struct {
	mu      sync.Mutex
	memo    map[Spec]gpu.Result
	configs map[string]config.GPU
	facts   map[string]protect.Factory
}

// NewRunner builds a runner seeded with the base configuration under id
// "base" and the four standard scheme variants.
func NewRunner(base config.GPU) *Runner {
	r := &Runner{
		memo:    make(map[Spec]gpu.Result),
		configs: map[string]config.GPU{"base": base},
		facts:   make(map[string]protect.Factory),
	}
	for _, s := range schemes.Names() {
		f, err := schemes.ByName(s)
		if err != nil {
			panic(err) // statically impossible: Names() lists registered schemes
		}
		r.facts[s] = f
	}
	return r
}

// AddConfig registers a configuration variant (sensitivity sweeps).
func (r *Runner) AddConfig(id string, cfg config.GPU) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.configs[id] = cfg
}

// AddVariant registers a scheme variant (ablations) under the given name.
func (r *Runner) AddVariant(name string, f protect.Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.facts[name] = f
}

// AddCacheCraftVariant registers a CacheCraft ablation variant.
func (r *Runner) AddCacheCraftVariant(name string, opt core.Options) {
	r.AddVariant(name, schemes.CacheCraftWith(opt))
}

// Result runs (or replays) one simulation.
func (r *Runner) Result(s Spec) (gpu.Result, error) {
	r.mu.Lock()
	if res, ok := r.memo[s]; ok {
		r.mu.Unlock()
		return res, nil
	}
	cfg, okC := r.configs[s.CfgID]
	f, okF := r.facts[s.Variant]
	r.mu.Unlock()
	if !okC {
		return gpu.Result{}, fmt.Errorf("bench: unknown config %q", s.CfgID)
	}
	if !okF {
		return gpu.Result{}, fmt.Errorf("bench: unknown variant %q", s.Variant)
	}
	m, err := gpu.New(cfg, s.Workload, f)
	if err != nil {
		return gpu.Result{}, err
	}
	res, err := m.Run()
	if err != nil {
		return gpu.Result{}, fmt.Errorf("bench: %s/%s/%s: %w", s.CfgID, s.Workload, s.Variant, err)
	}
	res.Workload = s.Workload
	res.Scheme = s.Variant
	r.mu.Lock()
	r.memo[s] = res
	r.mu.Unlock()
	return res, nil
}

// MustResult is Result for experiment code where configuration and
// variants are statically registered; it panics on error.
func (r *Runner) MustResult(s Spec) gpu.Result {
	res, err := r.Result(s)
	if err != nil {
		panic(err)
	}
	return res
}

// Runs reports how many distinct simulations have been executed.
func (r *Runner) Runs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.memo)
}

// StandardSchemes lists the four evaluation schemes in order.
func StandardSchemes() []string { return schemes.All() }

// TotalDRAMBytes sums a result's traffic classes.
func TotalDRAMBytes(res gpu.Result) uint64 {
	var total uint64
	for _, v := range res.DRAMBytes {
		total += v
	}
	return total
}

// sortedKeys returns map keys in sorted order (deterministic rendering).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
