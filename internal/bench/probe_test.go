package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"cachecraft/internal/obs"
)

// TestProbesDoNotChangeOutput is the PR's stdout contract: the same
// experiment renders byte-identical output with probes off, probes on,
// and probes on with a timeline collecting cells — probe data flows only
// through the sink, never into the rendered tables.
func TestProbesDoNotChangeOutput(t *testing.T) {
	base := quickBase()
	exp, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}

	render := func(attach func(*Runner)) []byte {
		r := NewRunner(base)
		r.SetWorkers(4)
		if attach != nil {
			attach(r)
		}
		var buf bytes.Buffer
		if err := exp.Run(r, base, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	off := render(nil)
	var sunk int
	var mu sync.Mutex
	on := render(func(r *Runner) {
		r.SetProbes(500, func(s Spec, p *obs.Probes) {
			mu.Lock()
			sunk++
			mu.Unlock()
		})
	})
	tl := obs.NewTimeline()
	timed := render(func(r *Runner) {
		r.SetProbes(500, func(s Spec, p *obs.Probes) {
			tl.AddCell(s.CfgID+"/"+s.Workload+"/"+s.Variant, p)
		})
	})

	if !bytes.Equal(off, on) {
		t.Fatalf("probes-on output differs from probes-off:\n--- off ---\n%s\n--- on ---\n%s", off, on)
	}
	if !bytes.Equal(off, timed) {
		t.Fatal("timeline-collecting output differs from probes-off")
	}
	if sunk == 0 {
		t.Fatal("probe sink never received a cell")
	}
	cells := tl.Cells()
	if len(cells) != sunk {
		t.Fatalf("timeline holds %d cells, sink saw %d", len(cells), sunk)
	}

	// Every executed cell carries the catalog's core tracks, flushed and
	// non-empty; the NDJSON export of those cells must round-trip.
	names := map[string]bool{}
	for _, cell := range cells {
		if len(cell.Series) == 0 {
			t.Fatalf("cell %s has no probe tracks", cell.Label)
		}
		for _, sd := range cell.Series {
			names[sd.Name] = true
			if len(sd.Samples) == 0 {
				t.Fatalf("cell %s track %s is empty after flush", cell.Label, sd.Name)
			}
		}
	}
	for _, want := range []string{
		"sm.issue", "l2.mshr_occupancy", "dram.bytes.demand",
		"dram.row_hit_rate", "xbar.req.bytes", "sim.queue_depth",
	} {
		if !names[want] {
			t.Fatalf("no cell carried track %q; tracks seen: %v", want, names)
		}
	}
	var buf bytes.Buffer
	if err := tl.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ReadNDJSON(&buf); err != nil {
		t.Fatalf("timeline NDJSON does not round-trip: %v", err)
	}
}

// TestProbeSinkSkipsUnexecutedResults: memo and store hits re-serve
// results without simulating, so they must not invoke the sink — probes
// exist only for simulations that actually ran.
func TestProbeSinkSkipsUnexecutedResults(t *testing.T) {
	r := NewRunner(quickBase())
	var specs []string
	r.SetProbes(500, func(s Spec, p *obs.Probes) {
		specs = append(specs, s.Workload+"/"+s.Variant)
		if len(p.Snapshot()) == 0 {
			t.Errorf("sink got an empty probe set for %s", s.Workload)
		}
	})
	spec := Spec{CfgID: "base", Workload: "stream", Variant: "none"}
	if _, err := r.Result(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Result(spec); err != nil { // memo hit
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0] != "stream/none" {
		t.Fatalf("sink calls = %v, want exactly one for the executed run", specs)
	}
	if r.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", r.Runs())
	}
}

// TestProbeResultsMatchUnprobed: attaching probes must not perturb
// simulated timing — cycles and traffic are identical with and without.
func TestProbeResultsMatchUnprobed(t *testing.T) {
	spec := Spec{CfgID: "base", Workload: "spmv", Variant: "cachecraft"}
	plain := NewRunner(quickBase())
	a, err := plain.Result(spec)
	if err != nil {
		t.Fatal(err)
	}
	probed := NewRunner(quickBase())
	probed.SetProbes(250, func(Spec, *obs.Probes) {})
	b, err := probed.Result(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatalf("probes changed the simulation: %d/%d cycles, %d/%d instructions",
			a.Cycles, b.Cycles, a.Instructions, b.Instructions)
	}
	if !strings.EqualFold(a.Scheme, b.Scheme) {
		t.Fatalf("scheme mismatch: %s vs %s", a.Scheme, b.Scheme)
	}
}
