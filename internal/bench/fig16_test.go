package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig16RunsQuick(t *testing.T) {
	r := NewRunner(quickBase())
	var buf bytes.Buffer
	e, err := ByID("fig16")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(r, quickBase(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ideal") {
		t.Fatalf("fig16 output:\n%s", buf.String())
	}
}
