package bench

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"cachecraft/internal/gpu"
)

// TestConcurrentSameSpecSingleflight: N goroutines requesting the same
// Spec must execute exactly one simulation, and every caller must observe
// the identical result.
func TestConcurrentSameSpecSingleflight(t *testing.T) {
	r := NewRunner(quickBase())
	r.SetWorkers(4)
	s := Spec{CfgID: "base", Workload: "stream", Variant: "none"}

	const n = 16
	results := make([]gpu.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Result(s)
		}(i)
	}
	wg.Wait()

	if r.Runs() != 1 {
		t.Fatalf("runs = %d, want exactly 1 simulation for %d concurrent requests", r.Runs(), n)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i].Cycles != results[0].Cycles ||
			results[i].Instructions != results[0].Instructions ||
			results[i].IPC != results[0].IPC {
			t.Fatalf("goroutine %d observed a different result: %+v vs %+v",
				i, results[i], results[0])
		}
	}
}

// TestPrefetchFansOutAndMemoizes: a Prefetch batch (with duplicates) runs
// each distinct spec once; subsequent Result calls are memo hits.
func TestPrefetchFansOutAndMemoizes(t *testing.T) {
	r := NewRunner(quickBase())
	r.SetWorkers(4)
	specs := specGrid([]string{"base"}, []string{"stream", "scan"}, []string{"none", "cachecraft"})
	specs = append(specs, specs...) // duplicates must collapse
	if err := r.Prefetch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if r.Runs() != 4 {
		t.Fatalf("runs = %d, want 4 distinct simulations", r.Runs())
	}
	if _, err := r.Result(specs[0]); err != nil {
		t.Fatal(err)
	}
	if r.Runs() != 4 {
		t.Fatalf("Result after Prefetch re-ran a simulation: runs = %d", r.Runs())
	}
}

// TestPrefetchPropagatesFirstError: a bad spec in the batch surfaces as an
// error instead of being swallowed, and good specs stay retrievable.
func TestPrefetchPropagatesFirstError(t *testing.T) {
	r := NewRunner(quickBase())
	specs := []Spec{
		{CfgID: "base", Workload: "stream", Variant: "none"},
		{CfgID: "base", Workload: "no-such-workload", Variant: "none"},
	}
	if err := r.Prefetch(context.Background(), specs); err == nil {
		t.Fatal("Prefetch with an unknown workload reported no error")
	}
	if _, err := r.Result(specs[0]); err != nil {
		t.Fatalf("good spec unavailable after failed batch: %v", err)
	}
}

// TestResultCtxCancellation: a cancelled context aborts work that has not
// started, and the spec remains runnable afterwards.
func TestResultCtxCancellation(t *testing.T) {
	r := NewRunner(quickBase())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Spec{CfgID: "base", Workload: "stream", Variant: "none"}
	if _, err := r.ResultCtx(ctx, s); err == nil {
		t.Fatal("cancelled context produced a result")
	}
	if r.Runs() != 0 {
		t.Fatalf("cancelled request still simulated: runs = %d", r.Runs())
	}
	if _, err := r.Result(s); err != nil {
		t.Fatalf("spec unrunnable after cancellation: %v", err)
	}
	if r.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", r.Runs())
	}
}

// TestAddConfigInvalidatesStaleMemo: re-registering a config id with a
// different configuration must not serve simulations of the old one.
func TestAddConfigInvalidatesStaleMemo(t *testing.T) {
	r := NewRunner(quickBase())
	small := quickBase()
	small.AccessesPerSM = 200
	r.AddConfig("sweep", small)
	s := Spec{CfgID: "sweep", Workload: "stream", Variant: "none"}
	a, err := r.Result(s)
	if err != nil {
		t.Fatal(err)
	}

	big := quickBase()
	big.AccessesPerSM = 400
	r.AddConfig("sweep", big)
	b, err := r.Result(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Runs() != 2 {
		t.Fatalf("runs = %d, want 2 (memo must be invalidated)", r.Runs())
	}
	if b.Instructions <= a.Instructions {
		t.Fatalf("stale result served: %d instructions before, %d after doubling the workload",
			a.Instructions, b.Instructions)
	}

	// Re-registering the identical config keeps the memo.
	r.AddConfig("sweep", big)
	if _, err := r.Result(s); err != nil {
		t.Fatal(err)
	}
	if r.Runs() != 2 {
		t.Fatalf("identical re-register invalidated the memo: runs = %d", r.Runs())
	}
}

func TestSetWorkersClampsAndReports(t *testing.T) {
	r := NewRunner(quickBase())
	r.SetWorkers(0)
	if r.Workers() != 1 {
		t.Fatalf("workers = %d, want clamp to 1", r.Workers())
	}
	r.SetWorkers(7)
	if r.Workers() != 7 {
		t.Fatalf("workers = %d, want 7", r.Workers())
	}
}

// TestParallelSweepMatchesSerial renders every experiment through a
// serial (1 worker) runner and a parallel (8 worker) runner and requires
// byte-identical output: the determinism guarantee behind -j.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep comparison is slow")
	}
	render := func(workers int) string {
		r := NewRunner(quickBase())
		r.SetWorkers(workers)
		var buf bytes.Buffer
		for _, e := range All() {
			if err := e.Run(r, quickBase(), &buf); err != nil {
				t.Fatalf("workers=%d %s: %v", workers, e.ID, err)
			}
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("parallel sweep output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}
