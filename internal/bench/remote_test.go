package bench

import (
	"context"
	"errors"
	"sync"
	"testing"

	"cachecraft/internal/config"
	"cachecraft/internal/gpu"
)

// stubRemote scripts the Remote interface: which cells it claims to
// handle, and whether fetches succeed.
type stubRemote struct {
	mu    sync.Mutex
	can   func(workload, scheme string) bool
	fail  error
	calls int
}

func (s *stubRemote) Can(workload, scheme string) bool {
	if s.can == nil {
		return true
	}
	return s.can(workload, scheme)
}

func (s *stubRemote) Run(ctx context.Context, cfg config.GPU, workload, scheme string) (gpu.Result, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	if s.fail != nil {
		return gpu.Result{}, s.fail
	}
	// A recognizably synthetic result: remote answers are trusted as-is,
	// so the runner must hand back exactly these bytes.
	return gpu.Result{Workload: workload, Scheme: scheme, Cycles: 424242}, nil
}

func (s *stubRemote) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func TestRemoteTierSatisfiesCalls(t *testing.T) {
	r := NewRunner(quickBase())
	rem := &stubRemote{}
	r.SetRemote(rem)
	s := Spec{CfgID: "base", Workload: "stream", Variant: "none"}
	res, err := r.Result(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 424242 {
		t.Fatalf("result did not come from the remote: %+v", res)
	}
	st := r.Stats()
	if st.RemoteHits != 1 || st.Runs != 0 {
		t.Fatalf("stats = %+v, want 1 remote hit and 0 local runs", st)
	}
	// The memo still dedups: a second call never re-fetches.
	if _, err := r.Result(s); err != nil {
		t.Fatal(err)
	}
	if rem.count() != 1 {
		t.Fatalf("remote fetched %d times, want 1", rem.count())
	}
	if st := r.Stats(); st.MemoHits != 1 {
		t.Fatalf("stats = %+v, want a memo hit", st)
	}
}

func TestRemoteFailureFallsBackToLocal(t *testing.T) {
	r := NewRunner(quickBase())
	rem := &stubRemote{fail: errors.New("coordinator on fire")}
	r.SetRemote(rem)
	res, err := r.Result(Spec{CfgID: "base", Workload: "stream", Variant: "none"})
	if err != nil {
		t.Fatalf("remote failure must not fail the call: %v", err)
	}
	if res.Cycles == 0 || res.Cycles == 424242 {
		t.Fatalf("fallback did not simulate locally: %+v", res)
	}
	st := r.Stats()
	if st.RemoteErrors != 1 || st.Runs != 1 || st.RemoteHits != 0 {
		t.Fatalf("stats = %+v, want 1 remote error and 1 local run", st)
	}
}

// TestRemoteSkipsInexpressibleCells: cells the remote disclaims — custom
// in-process variants — run locally without a remote attempt, so -remote
// stays transparent for ablation experiments.
func TestRemoteSkipsInexpressibleCells(t *testing.T) {
	r := NewRunner(quickBase())
	rem := &stubRemote{can: func(workload, scheme string) bool { return false }}
	r.SetRemote(rem)
	if _, err := r.Result(Spec{CfgID: "base", Workload: "stream", Variant: "none"}); err != nil {
		t.Fatal(err)
	}
	if rem.count() != 0 {
		t.Fatal("remote consulted for a cell it disclaimed")
	}
	st := r.Stats()
	if st.Runs != 1 || st.RemoteHits != 0 || st.RemoteErrors != 0 {
		t.Fatalf("stats = %+v, want exactly 1 local run", st)
	}
}

// TestRemoteResultsPersistLocally: a remote hit lands in the local store,
// so the next cold process needs neither the network nor the simulator.
func TestRemoteResultsPersistLocally(t *testing.T) {
	r := NewRunner(quickBase())
	st := &stubStore{}
	r.SetStore(st)
	r.SetRemote(&stubRemote{})
	if _, err := r.Result(Spec{CfgID: "base", Workload: "stream", Variant: "none"}); err != nil {
		t.Fatal(err)
	}
	if res, ok := st.Lookup(quickBase(), "stream", "none"); !ok || res.Cycles != 424242 {
		t.Fatalf("remote result not persisted: ok=%v res=%+v", ok, res)
	}
}
