package bench

import (
	"cachecraft/internal/obs"
	"cachecraft/internal/store"
)

// RegisterRunnerMetrics exposes a runner's accounting on reg through
// sampling collectors (CounterFunc reads Stats at render time, so the
// exposition can never drift from the runner's own counts). The family
// names are shared by every process that embeds a runner —
// cachecraft-serve's /metrics and cachecraft-worker's -debug-addr
// listener report identical families, and the coordinator re-exports the
// worker's copies per worker — so dashboards need one query per family
// regardless of where the simulation ran.
func RegisterRunnerMetrics(reg *obs.Registry, r *Runner) {
	stat := func(pick func(Stats) int) func() uint64 {
		return func() uint64 {
			v := pick(r.Stats())
			if v < 0 {
				return 0
			}
			return uint64(v)
		}
	}
	reg.CounterFunc("cachecraft_sim_runs_total",
		"Simulations actually executed by the runner.",
		stat(func(s Stats) int { return s.Runs }))
	reg.CounterFunc("cachecraft_memo_hits_total",
		"Requests answered from the runner's in-memory memo.",
		stat(func(s Stats) int { return s.MemoHits }))
	reg.CounterFunc("cachecraft_singleflight_dedups_total",
		"Requests that piggybacked on an in-flight simulation.",
		stat(func(s Stats) int { return s.Dedups }))
	reg.CounterFunc("cachecraft_store_hits_total",
		"Runner lookups answered from the persistent result store.",
		stat(func(s Stats) int { return s.StoreHits }))
	reg.CounterFunc("cachecraft_store_misses_total",
		"Runner lookups that missed the persistent result store.",
		stat(func(s Stats) int { return s.StoreMisses }))
	reg.CounterFunc("cachecraft_store_put_errors_total",
		"Failed attempts to persist a result (the result was still returned).",
		stat(func(s Stats) int { return s.StoreErrors }))
	reg.CounterFunc("cachecraft_remote_hits_total",
		"Runner lookups materialized by the remote cluster backend.",
		stat(func(s Stats) int { return s.RemoteHits }))
}

// RegisterStoreMetrics exposes a store's circuit-breaker health on reg.
// The state gauge samples the breaker at render time (0 closed, 1
// half-open, 2 open), so the exposition and the store's actual behavior
// cannot drift; every process that mounts a store (serve, worker, sweep
// coordinator) registers the same families.
func RegisterStoreMetrics(reg *obs.Registry, st *store.Store) {
	reg.GaugeFunc("cachecraft_store_breaker_state",
		"Result-store circuit breaker state: 0 closed (healthy), 1 half-open (probing), 2 open (degraded: recompute-without-persist).",
		func() float64 { return float64(st.BreakerState()) })
	reg.CounterFunc("cachecraft_store_breaker_trips_total",
		"Times the store's circuit breaker tripped closed->open after consecutive disk errors.",
		st.BreakerTrips)
}
