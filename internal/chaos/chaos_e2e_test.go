// End-to-end chaos harness: the acceptance tests for the fault-injection
// layer. Each test stands up the real stack (serve + coordinator +
// workers, or runner + store) with an armed injector and pins the
// system-level recovery contract — above all that sweep output stays
// byte-identical to a fault-free run, because every recovery mechanism
// (lease re-dispatch, store degradation, retry budgets) falls back to
// the deterministic simulator.
package chaos_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cachecraft/internal/bench"
	"cachecraft/internal/chaos"
	"cachecraft/internal/cluster"
	"cachecraft/internal/config"
	"cachecraft/internal/obs"
	"cachecraft/internal/serve"
	"cachecraft/internal/store"
)

// quickBase mirrors the cluster e2e suite: the scaled-down config with
// enough accesses that scheme differences show up in results.
func quickBase() config.GPU {
	b := config.Quick()
	b.AccessesPerSM = 300
	return b
}

func newChaosCluster(t *testing.T, base config.GPU, copt cluster.Options) (*httptest.Server, *obs.Registry) {
	t.Helper()
	copt.Base = base
	if copt.Registry == nil {
		copt.Registry = obs.NewRegistry()
	}
	co := cluster.New(copt)
	t.Cleanup(func() { co.Close() })
	srv := serve.New(serve.Options{
		Base:        base,
		MaxInFlight: 4,
		MaxQueue:    8,
		Registry:    copt.Registry,
		Coordinator: co,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, copt.Registry
}

func startChaosWorker(t *testing.T, url, name string, inj *chaos.Injector) {
	t.Helper()
	r := bench.NewRunner(config.Default())
	r.SetWorkers(2)
	// Batch of 1: a chaos crash abandons the whole lease, so single-cell
	// leases keep a poisoned cell's crashes from charging crash-like
	// failures to innocent co-leased cells (which could quarantine them).
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		Coordinator: url,
		Name:        name,
		Runner:      r,
		Batch:       1,
		PollMax:     30 * time.Millisecond,
		Chaos:       inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Errorf("worker %s did not stop", name)
		}
	})
}

// runExperiment renders the fig4 experiment through the given runner and
// returns its exact stdout bytes.
func runExperiment(t *testing.T, r *bench.Runner, base config.GPU) []byte {
	t.Helper()
	exp, err := bench.ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := exp.Run(r, base, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepByteIdenticalUnderRandomizedFaults is the harness's headline
// guarantee: a full experiment run through a cluster whose workers
// crash, report errors, stall, and drop uploads at seed-derived random
// points produces output byte-identical to a fault-free local run —
// for every seed. Failures cost retries and wall time, never answers.
func TestSweepByteIdenticalUnderRandomizedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed cluster runs are slow")
	}
	base := quickBase()
	lr := bench.NewRunner(base)
	lr.SetWorkers(4)
	want := runExperiment(t, lr, base)

	for _, seed := range []uint64{1, 7, 42, 1009, 31337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ts, _ := newChaosCluster(t, base, cluster.Options{
				LeaseTTL:    150 * time.Millisecond,
				MaxAttempts: 20,
			})
			// Two workers with independent fault streams derived from the
			// test seed: crashes (abandon the lease entirely), reported
			// errors, upload partitions, and execution latency. Limits
			// bound each burst so the sweep always drains.
			mkInj := func(s uint64) *chaos.Injector {
				return chaos.New(s,
					chaos.Rule{Site: chaos.SiteWorkerExec, Kind: chaos.KindCrash, P: 0.2, Limit: 3},
					chaos.Rule{Site: chaos.SiteWorkerExec, Kind: chaos.KindError, P: 0.2, Limit: 4},
					chaos.Rule{Site: chaos.SiteWorkerExec, Kind: chaos.KindLatency, P: 0.3, Delay: 3 * time.Millisecond},
					chaos.Rule{Site: chaos.SiteWorkerComplete, Kind: chaos.KindPartition, P: 0.25, Limit: 4},
					chaos.Rule{Site: chaos.SiteWorkerHeartbeat, Kind: chaos.KindError, P: 0.2, Limit: 6},
				)
			}
			injs := []*chaos.Injector{mkInj(seed), mkInj(seed ^ 0xdeadbeef)}
			startChaosWorker(t, ts.URL, "cw1", injs[0])
			startChaosWorker(t, ts.URL, "cw2", injs[1])

			client := cluster.NewClient(ts.URL)
			if err := client.Ping(context.Background()); err != nil {
				t.Fatal(err)
			}
			rr := bench.NewRunner(base)
			rr.SetWorkers(4)
			rr.SetRemote(client)
			got := runExperiment(t, rr, base)

			if !bytes.Equal(want, got) {
				t.Fatalf("seed %d: chaos run output differs from fault-free run:\n--- want ---\n%s\n--- got ---\n%s",
					seed, want, got)
			}
			var fired uint64
			for _, in := range injs {
				fired += in.InjectedTotal()
			}
			t.Logf("seed %d: %d faults injected, output byte-identical", seed, fired)
		})
	}
}

// TestPoisonCellQuarantinedEndToEnd poisons one specific cell — every
// worker that leases it dies — and checks the full quarantine surface:
// the sweep stream's error line and trailer, /v1/cluster/status's
// quarantined rows with per-worker failure history, and the
// cachecraft_cells_quarantined_total metric. The healthy cell in the
// same sweep still completes.
func TestPoisonCellQuarantinedEndToEnd(t *testing.T) {
	base := quickBase()
	poison := cluster.NewCell(base, "stream", "cachecraft")
	// The TTL must comfortably exceed heartbeat round-trip time even
	// under the race detector, or a slow heartbeat forges a crash-like
	// failure on the healthy cell.
	ts, reg := newChaosCluster(t, base, cluster.Options{
		LeaseTTL:        300 * time.Millisecond,
		MaxAttempts:     30,
		QuarantineAfter: 2,
	})
	die := chaos.Rule{Site: chaos.SiteWorkerExec, Kind: chaos.KindCrash, P: 1, Match: poison.Fingerprint}
	startChaosWorker(t, ts.URL, "pw1", chaos.New(1, die))
	startChaosWorker(t, ts.URL, "pw2", chaos.New(2, die))

	resp, err := http.Post(ts.URL+"/v1/cluster/sweep", "application/json",
		strings.NewReader(`{"workloads":["stream"],"schemes":["none","cachecraft"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var (
		records  int
		errLine  string
		trailerQ = -1
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Done        bool   `json:"done"`
			Quarantined int    `json:"quarantined"`
			Scheme      string `json:"scheme"`
			Error       string `json:"error"`
			Fingerprint string `json:"fingerprint"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Done:
			trailerQ = line.Quarantined
		case line.Error != "":
			errLine = line.Error
		case line.Fingerprint != "":
			records++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if records != 1 {
		t.Fatalf("healthy cell records = %d, want 1", records)
	}
	if !strings.Contains(errLine, "quarantined") {
		t.Fatalf("poison cell error %q does not mention quarantine", errLine)
	}
	if trailerQ != 1 {
		t.Fatalf("trailer quarantined = %d, want 1", trailerQ)
	}

	sresp, err := http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st cluster.StatusResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.QuarantinedCells != 1 || len(st.Quarantined) != 1 {
		t.Fatalf("status quarantined = %d rows %d, want 1/1", st.QuarantinedCells, len(st.Quarantined))
	}
	q := st.Quarantined[0]
	if q.Fingerprint != poison.Fingerprint || q.Workload != "stream" || q.Scheme != "cachecraft" {
		t.Fatalf("quarantined row = %+v", q)
	}
	workers := map[string]bool{}
	for _, h := range q.History {
		name, _, ok := strings.Cut(h, ":")
		if !ok {
			t.Fatalf("history line %q not worker: cause", h)
		}
		workers[name] = true
	}
	if len(workers) < 2 {
		t.Fatalf("history %v names %d workers, want >= 2 (distinct-worker rule)", q.History, len(workers))
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "cachecraft_cells_quarantined_total 1") {
		t.Fatalf("metrics missing quarantine count:\n%s", sb.String())
	}
}

// TestServeChaosFaultsOneEndpoint checks the serve.request site: a rule
// matched to one path 503s (or delays) that path only, leaving the rest
// of the API — and /healthz in particular — untouched.
func TestServeChaosFaultsOneEndpoint(t *testing.T) {
	srv := serve.New(serve.Options{
		Base:        quickBase(),
		MaxInFlight: 2,
		Chaos: chaos.New(3,
			chaos.Rule{Site: chaos.SiteServeRequest, Kind: chaos.KindError, P: 1, Match: "/v1/simulate"}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
		strings.NewReader(`{"workload":"stream","scheme":"none"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted endpoint returned %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d under targeted chaos, want 200", hresp.StatusCode)
	}
}

// TestSickDiskDegradesStoreNotSweep pins the circuit-breaker contract at
// the sweep level: with a store whose every write fails (ENOSPC stand-in)
// the breaker opens after its threshold and the sweep finishes entirely
// on the simulator — stdout byte-identical to a storeless run, no error
// surfaced to the user at all.
func TestSickDiskDegradesStoreNotSweep(t *testing.T) {
	base := quickBase()
	plain := bench.NewRunner(base)
	plain.SetWorkers(4)
	want := runExperiment(t, plain, base)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetBreaker(3, time.Hour)
	st.SetChaos(chaos.New(9,
		chaos.Rule{Site: chaos.SiteStorePut, Kind: chaos.KindError, P: 1}))
	r := bench.NewRunner(base)
	r.SetWorkers(4)
	r.SetStore(st)
	got := runExperiment(t, r, base)

	if !bytes.Equal(want, got) {
		t.Fatalf("sick-disk run output differs from storeless run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if s := st.BreakerState(); s != store.BreakerOpen {
		t.Fatalf("breaker state = %d after an all-errors disk, want open (%d)", s, store.BreakerOpen)
	}
}

// TestCorruptionBurstRecomputesEverything is the sick-disk satellite: a
// warm store suffers a corruption burst (every envelope has bytes
// flipped), and the next run treats every cell as a miss, recomputes,
// and produces byte-identical output — corruption is never an error,
// only lost warmth.
func TestCorruptionBurstRecomputesEverything(t *testing.T) {
	base := quickBase()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := bench.NewRunner(base)
	cold.SetWorkers(4)
	cold.SetStore(st)
	want := runExperiment(t, cold, base)
	if cold.Stats().Runs == 0 {
		t.Fatal("cold run simulated nothing")
	}

	// Flip one byte in the middle of every stored envelope.
	corrupted := 0
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		raw[len(raw)/2] ^= 0x5a
		corrupted++
		return os.WriteFile(path, raw, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("no envelopes on disk to corrupt")
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := bench.NewRunner(base)
	warm.SetWorkers(4)
	warm.SetStore(st2)
	got := runExperiment(t, warm, base)
	if !bytes.Equal(want, got) {
		t.Fatalf("post-corruption output differs:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	stats := warm.Stats()
	if stats.StoreHits != 0 {
		t.Fatalf("%d store hits from a fully corrupted store", stats.StoreHits)
	}
	if stats.Runs == 0 {
		t.Fatal("nothing recomputed after the corruption burst")
	}
}
