package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec builds an Injector from the compact flag form the binaries
// accept (cachecraft-serve -chaos, cachecraft-worker -chaos):
//
//	seed=7;store.put:error:0.2;worker.exec:crash:0.05;serve.request:latency:0.5,delay=5ms
//
// Semicolons separate items. One optional item is "seed=N" (default 1);
// every other item is a rule:
//
//	SITE:KIND:P[,key=value...]
//
// with KIND one of error, latency, crash, partition, P a probability in
// [0,1], and optional comma-separated modifiers delay=DURATION (latency
// rules), match=SUBSTRING, after=N, and limit=N. An empty spec returns a
// nil injector — chaos off.
func ParseSpec(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var (
		seed  uint64 = 1
		rules []Rule
	)
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if v, ok := strings.CutPrefix(item, "seed="); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %v", v, err)
			}
			seed = n
			continue
		}
		r, err := parseRule(item)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("chaos: spec %q arms no rules", spec)
	}
	return New(seed, rules...), nil
}

func parseRule(item string) (Rule, error) {
	head, mods, _ := strings.Cut(item, ",")
	parts := strings.Split(head, ":")
	if len(parts) != 3 {
		return Rule{}, fmt.Errorf("chaos: rule %q is not SITE:KIND:P", item)
	}
	r := Rule{Site: Site(parts[0])}
	switch parts[1] {
	case "error":
		r.Kind = KindError
	case "latency":
		r.Kind = KindLatency
	case "crash":
		r.Kind = KindCrash
	case "partition":
		r.Kind = KindPartition
	default:
		return Rule{}, fmt.Errorf("chaos: rule %q: unknown kind %q", item, parts[1])
	}
	p, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || p < 0 || p > 1 {
		return Rule{}, fmt.Errorf("chaos: rule %q: probability %q not in [0,1]", item, parts[2])
	}
	r.P = p
	if mods != "" {
		for _, mod := range strings.Split(mods, ",") {
			k, v, ok := strings.Cut(mod, "=")
			if !ok {
				return Rule{}, fmt.Errorf("chaos: rule %q: modifier %q is not key=value", item, mod)
			}
			switch k {
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil {
					return Rule{}, fmt.Errorf("chaos: rule %q: bad delay: %v", item, err)
				}
				r.Delay = d
			case "match":
				r.Match = v
			case "after":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return Rule{}, fmt.Errorf("chaos: rule %q: bad after %q", item, v)
				}
				r.After = n
			case "limit":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return Rule{}, fmt.Errorf("chaos: rule %q: bad limit %q", item, v)
				}
				r.Limit = n
			default:
				return Rule{}, fmt.Errorf("chaos: rule %q: unknown modifier %q", item, k)
			}
		}
	}
	if r.Kind == KindLatency && r.Delay <= 0 {
		return Rule{}, fmt.Errorf("chaos: rule %q: latency rules need delay=", item)
	}
	return r, nil
}
