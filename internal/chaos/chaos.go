// Package chaos is a deterministic, seed-driven fault-injection layer
// for the distributed/service tier: the cluster-layer analogue of
// internal/audit's invariant checker. Components expose nil-check hook
// points (internal/store Put/Get/fsync, internal/cluster worker RPCs and
// cell execution, internal/serve's request path); an Injector attached to
// those points decides — from per-site pseudo-random streams derived from
// one seed — whether each operation proceeds, fails with an injected
// error, stalls for an injected latency, is cut off as if the network
// partitioned, or crashes the surrounding component the way SIGKILL
// would.
//
// The contract mirrors the audit layer's: chaos off (a nil *Injector)
// costs one branch and zero allocations on every hook, so the hooks can
// stay compiled into production paths; chaos on exercises exactly the
// recovery machinery — lease expiry, retry budgets, quarantine, store
// circuit breaking, journal replay — that real fleets need. Faults are
// injected, but outcomes must not change: the chaos harness
// (chaos_e2e_test.go) asserts that a sweep under randomized fault seeds
// produces results byte-identical to a fault-free run.
//
// Determinism is per (seed, site, rule): each site draws from its own
// splitmix64 stream, so adding a rule at one site never perturbs the
// decisions at another. Concurrent callers of one site interleave their
// draws in goroutine-schedule order, so the exact operations faulted may
// vary run to run — what is deterministic is the fault mix, and what must
// be invariant is the result.
package chaos

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Site names one hook point. The constants below are the sites wired
// through the repository; an Injector ignores rules for sites it never
// sees, so the set can grow without coordination.
type Site string

const (
	// SiteStoreGet guards internal/store reads (a fault is a read error,
	// which the store treats as a miss and its breaker counts as disk
	// sickness).
	SiteStoreGet Site = "store.get"
	// SiteStorePut guards internal/store writes (ENOSPC/EIO stand-ins).
	SiteStorePut Site = "store.put"
	// SiteStoreSync guards the store's fsync steps specifically.
	SiteStoreSync Site = "store.sync"
	// SiteWorkerLease guards the worker's lease polls (partition: the
	// coordinator is unreachable).
	SiteWorkerLease Site = "worker.lease"
	// SiteWorkerHeartbeat guards the worker's heartbeat posts.
	SiteWorkerHeartbeat Site = "worker.heartbeat"
	// SiteWorkerComplete guards the worker's result-upload posts.
	SiteWorkerComplete Site = "worker.complete"
	// SiteWorkerExec guards cell execution on the worker. An error fault
	// makes the cell report failure; a crash fault makes the worker
	// abandon the whole lease silently — no completes, no heartbeats —
	// exactly as if the process had been SIGKILLed mid-lease.
	SiteWorkerExec Site = "worker.exec"
	// SiteServeRequest guards the HTTP serving layer's request path (a
	// fault is a 503 before the handler runs, or added latency).
	SiteServeRequest Site = "serve.request"
	// SiteJournalAppend guards coordinator sweep-journal appends.
	SiteJournalAppend Site = "journal.append"
)

// Kind is the species of an injected fault.
type Kind int

const (
	// KindError fails the operation with an injected error.
	KindError Kind = iota
	// KindLatency delays the operation, then lets it proceed.
	KindLatency
	// KindCrash kills the surrounding component (site-defined: a worker
	// abandons its lease; other sites treat it as KindError).
	KindCrash
	// KindPartition fails the operation as if the network were cut. It
	// behaves like KindError with a connection-flavored error, so
	// injectors can tell "the disk said no" from "the wire is gone".
	KindPartition
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindCrash:
		return "crash"
	case KindPartition:
		return "partition"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrInjected is the sentinel every injected error wraps; recovery code
// must treat it exactly like the real failure it stands in for, and tests
// assert with errors.Is that a surfaced failure was chaos's doing.
var ErrInjected = errors.New("chaos: injected fault")

// Rule arms one fault at one site.
type Rule struct {
	// Site is the hook point this rule fires at.
	Site Site
	// Kind is the fault species (default KindError).
	Kind Kind
	// P is the per-operation probability in [0, 1].
	P float64
	// Match, when non-empty, restricts the rule to operations whose key
	// (fingerprint, endpoint, path — site-defined) contains it. This is
	// how a test poisons one specific cell.
	Match string
	// After skips the rule's first After matching operations, so faults
	// can start mid-run.
	After int
	// Limit caps how many times the rule may fire (0 = unlimited), so a
	// burst can end.
	Limit int
	// Delay is the injected latency for KindLatency rules.
	Delay time.Duration
}

// Decision is the outcome of consulting the injector for one operation.
// The zero Decision means "proceed untouched". Delay, when non-zero, is
// applied before Err/Crash take effect, mirroring a slow-then-dead disk
// or link.
type Decision struct {
	Delay time.Duration
	Err   error
	Crash bool
}

// Sleep blocks for the decision's injected latency, if any.
func (d Decision) Sleep() {
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
}

// rule is a Rule armed inside an Injector, with its precomputed error
// (so firing never allocates beyond the site's bookkeeping) and its
// firing counters.
type rule struct {
	Rule
	err   error
	seen  int // matching operations observed
	fired int // faults injected
}

// siteState is one site's deterministic stream plus its armed rules.
type siteState struct {
	mu    sync.Mutex
	rng   uint64
	rules []*rule
	hits  uint64 // faults injected at this site
}

// Injector holds armed rules and per-site randomness. The nil *Injector
// is a valid, always-off injector: every method short-circuits, so hook
// points need no separate enabled flag.
type Injector struct {
	seed  uint64
	mu    sync.Mutex
	sites map[Site]*siteState
}

// New builds an injector from a seed and a rule set. The same seed and
// rules reproduce the same per-site decision streams.
func New(seed uint64, rules ...Rule) *Injector {
	in := &Injector{seed: seed, sites: make(map[Site]*siteState)}
	for _, r := range rules {
		st := in.sites[r.Site]
		if st == nil {
			st = &siteState{rng: mix64(seed ^ hashSite(r.Site))}
			in.sites[r.Site] = st
		}
		st.rules = append(st.rules, &rule{Rule: r, err: buildErr(r)})
	}
	return in
}

// Seed reports the seed the injector was built with.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

func buildErr(r Rule) error {
	switch r.Kind {
	case KindPartition:
		return fmt.Errorf("chaos: connection severed at %s: %w", r.Site, ErrInjected)
	case KindCrash:
		return fmt.Errorf("chaos: crash at %s: %w", r.Site, ErrInjected)
	default:
		return fmt.Errorf("chaos: i/o error at %s: %w", r.Site, ErrInjected)
	}
}

// Fault consults the injector for one operation at site. key names the
// operation (a fingerprint, an endpoint — site-defined) for Rule.Match;
// "" matches only unrestricted rules. A nil injector, an unknown site,
// and a losing draw all return the zero Decision. The caller applies the
// decision: Sleep() first, then honour Err/Crash.
func (in *Injector) Fault(site Site, key string) Decision {
	if in == nil {
		return Decision{}
	}
	st := in.sites[site] // sites map is immutable after New
	if st == nil {
		return Decision{}
	}
	var d Decision
	st.mu.Lock()
	for _, r := range st.rules {
		if r.Match != "" && !strings.Contains(key, r.Match) {
			continue
		}
		r.seen++
		// One draw per rule per matching operation, fired or not: the
		// stream position depends only on how many operations this site
		// has seen, never on which earlier rules fired.
		st.rng = mix64(st.rng + 0x9e3779b97f4a7c15)
		if r.seen <= r.After {
			continue
		}
		if r.Limit > 0 && r.fired >= r.Limit {
			continue
		}
		if float64(st.rng>>11)/(1<<53) >= r.P {
			continue
		}
		r.fired++
		st.hits++
		switch r.Kind {
		case KindLatency:
			if d.Delay < r.Delay {
				d.Delay = r.Delay
			}
			continue // latency composes with a later error rule
		case KindCrash:
			d.Crash = true
			d.Err = r.err
		default:
			d.Err = r.err
		}
		break // first terminal fault wins
	}
	st.mu.Unlock()
	return d
}

// Inject is the one-call form for sites that cannot crash: it applies the
// decision's latency and returns its error (nil when the operation should
// proceed).
func (in *Injector) Inject(site Site, key string) error {
	if in == nil {
		return nil
	}
	d := in.Fault(site, key)
	d.Sleep()
	return d.Err
}

// Stats reports how many faults have been injected at each site (sites
// that never fired are absent). Nil-safe.
func (in *Injector) Stats() map[Site]uint64 {
	if in == nil {
		return nil
	}
	out := make(map[Site]uint64, len(in.sites))
	for site, st := range in.sites {
		st.mu.Lock()
		if st.hits > 0 {
			out[site] = st.hits
		}
		st.mu.Unlock()
	}
	return out
}

// InjectedTotal reports the total faults injected across all sites —
// the value behind the cachecraft_chaos_injected_total collector.
// Nil-safe.
func (in *Injector) InjectedTotal() uint64 {
	if in == nil {
		return 0
	}
	var total uint64
	for _, st := range in.sites {
		st.mu.Lock()
		total += st.hits
		st.mu.Unlock()
	}
	return total
}

// mix64 is the splitmix64 finalizer — the same mixer the trace layer uses
// for stream seeding, chosen there for collision resistance.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashSite folds a site name into the seed mix (FNV-1a).
func hashSite(s Site) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
