package chaos

import (
	"errors"
	"testing"
	"time"
)

// drawKinds runs n operations at site and reports which ones faulted —
// the decision stream a seed must reproduce exactly.
func drawKinds(in *Injector, site Site, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		d := in.Fault(site, "key")
		out[i] = d.Err != nil || d.Crash || d.Delay > 0
	}
	return out
}

func TestSameSeedSameStream(t *testing.T) {
	rules := []Rule{
		{Site: SiteStorePut, Kind: KindError, P: 0.3},
		{Site: SiteWorkerExec, Kind: KindCrash, P: 0.2},
	}
	a := New(42, rules...)
	b := New(42, rules...)
	for _, site := range []Site{SiteStorePut, SiteWorkerExec} {
		ka, kb := drawKinds(a, site, 500), drawKinds(b, site, 500)
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("site %s op %d: streams diverge under one seed", site, i)
			}
		}
	}
	// A different seed produces a different stream (a fresh injector for
	// the reference: a's stream position is already past 500).
	ka, kc := drawKinds(New(42, rules...), SiteStorePut, 500), drawKinds(New(43, rules...), SiteStorePut, 500)
	diff := 0
	for i := range ka {
		if ka[i] != kc[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 42 and 43 produced identical 500-op streams")
	}
}

func TestSitesAreIndependentStreams(t *testing.T) {
	rules := []Rule{
		{Site: SiteStorePut, Kind: KindError, P: 0.5},
		{Site: SiteStoreGet, Kind: KindError, P: 0.5},
	}
	// Interleaving draws at another site must not shift this site's
	// stream: chaos at the store cannot change what the worker sees.
	plain := New(7, rules...)
	ref := drawKinds(plain, SiteStorePut, 200)
	mixed := New(7, rules...)
	got := make([]bool, 0, 200)
	for i := 0; i < 200; i++ {
		mixed.Fault(SiteStoreGet, "noise")
		d := mixed.Fault(SiteStorePut, "key")
		got = append(got, d.Err != nil)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("op %d: store.get draws perturbed store.put's stream", i)
		}
	}
}

func TestProbabilityBounds(t *testing.T) {
	never := New(1, Rule{Site: SiteStorePut, Kind: KindError, P: 0})
	for i := 0; i < 1000; i++ {
		if err := never.Inject(SiteStorePut, ""); err != nil {
			t.Fatalf("p=0 injected a fault on op %d", i)
		}
	}
	always := New(1, Rule{Site: SiteStorePut, Kind: KindError, P: 1})
	for i := 0; i < 1000; i++ {
		if err := always.Inject(SiteStorePut, ""); !errors.Is(err, ErrInjected) {
			t.Fatalf("p=1 let op %d through (err=%v)", i, err)
		}
	}
	if got := always.InjectedTotal(); got != 1000 {
		t.Fatalf("InjectedTotal = %d, want 1000", got)
	}
	if got := always.Stats()[SiteStorePut]; got != 1000 {
		t.Fatalf("Stats[store.put] = %d, want 1000", got)
	}
}

func TestAfterAndLimitShapeTheSchedule(t *testing.T) {
	in := New(1, Rule{Site: SiteStorePut, Kind: KindError, P: 1, After: 10, Limit: 5})
	fired := 0
	for i := 0; i < 100; i++ {
		err := in.Inject(SiteStorePut, "")
		if err != nil {
			fired++
			if i < 10 {
				t.Fatalf("rule fired on op %d despite After=10", i)
			}
		}
	}
	if fired != 5 {
		t.Fatalf("rule fired %d times, want Limit=5", fired)
	}
}

func TestMatchRestrictsToKeys(t *testing.T) {
	in := New(1, Rule{Site: SiteWorkerExec, Kind: KindCrash, P: 1, Match: "poison"})
	if d := in.Fault(SiteWorkerExec, "healthy-cell"); d.Crash || d.Err != nil {
		t.Fatalf("rule fired on a non-matching key: %+v", d)
	}
	d := in.Fault(SiteWorkerExec, "cell-poison-1")
	if !d.Crash || !errors.Is(d.Err, ErrInjected) {
		t.Fatalf("matching key did not crash: %+v", d)
	}
}

func TestLatencyComposesWithError(t *testing.T) {
	in := New(1,
		Rule{Site: SiteServeRequest, Kind: KindLatency, P: 1, Delay: time.Millisecond},
		Rule{Site: SiteServeRequest, Kind: KindError, P: 1})
	d := in.Fault(SiteServeRequest, "")
	if d.Delay != time.Millisecond {
		t.Fatalf("delay = %v, want 1ms", d.Delay)
	}
	if !errors.Is(d.Err, ErrInjected) {
		t.Fatalf("error rule did not fire after latency rule: %+v", d)
	}
}

func TestNilInjectorIsOff(t *testing.T) {
	var in *Injector
	if err := in.Inject(SiteStorePut, "x"); err != nil {
		t.Fatal(err)
	}
	if d := in.Fault(SiteWorkerExec, "x"); d != (Decision{}) {
		t.Fatalf("nil injector decided %+v", d)
	}
	if in.Stats() != nil || in.InjectedTotal() != 0 || in.Seed() != 0 {
		t.Fatal("nil injector reported state")
	}
}

// TestChaosOffZeroAllocs pins the hook contract the acceptance criteria
// name: with chaos off (nil injector) and with an injector that has no
// rules for the site, consulting a hook allocates nothing — the
// production hot paths pay one branch, not garbage. Run by the CI
// alloc-guard step (-run 'ZeroAllocs', without -race).
func TestChaosOffZeroAllocs(t *testing.T) {
	var off *Injector
	if n := testing.AllocsPerRun(1000, func() {
		if off.Inject(SiteStorePut, "fingerprint") != nil {
			t.Fatal("nil injector injected")
		}
		_ = off.Fault(SiteWorkerExec, "fingerprint")
	}); n != 0 {
		t.Fatalf("nil-injector hook allocates %.1f/op, want 0", n)
	}
	foreign := New(1, Rule{Site: SiteStorePut, Kind: KindError, P: 1})
	if n := testing.AllocsPerRun(1000, func() {
		_ = foreign.Fault(SiteWorkerExec, "fingerprint") // no rules here
	}); n != 0 {
		t.Fatalf("rule-less site hook allocates %.1f/op, want 0", n)
	}
	// Even a live, losing draw stays allocation-free.
	quiet := New(1, Rule{Site: SiteStorePut, Kind: KindError, P: 0})
	if n := testing.AllocsPerRun(1000, func() {
		_ = quiet.Fault(SiteStorePut, "fingerprint")
	}); n != 0 {
		t.Fatalf("losing draw allocates %.1f/op, want 0", n)
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("seed=9;store.put:error:0.25;worker.exec:crash:0.1,match=abc,after=2,limit=3;serve.request:latency:1,delay=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 9 {
		t.Fatalf("seed = %d, want 9", in.Seed())
	}
	d := in.Fault(SiteServeRequest, "")
	if d.Delay != 2*time.Millisecond || d.Err != nil {
		t.Fatalf("latency rule decision: %+v", d)
	}

	if in, err := ParseSpec(""); err != nil || in != nil {
		t.Fatalf("empty spec: (%v, %v), want (nil, nil)", in, err)
	}
	for _, bad := range []string{
		"store.put",                    // not SITE:KIND:P
		"store.put:explode:0.5",        // unknown kind
		"store.put:error:1.5",          // probability out of range
		"store.put:error:0.5,zap=1",    // unknown modifier
		"serve.request:latency:0.5",    // latency without delay
		"seed=x;store.put:error:0.5",   // bad seed
		"seed=5",                       // no rules
		"store.put:error:0.5,after=-1", // negative after
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
