package cachecraft_test

import (
	"fmt"

	"cachecraft"
)

// ExampleRun simulates one workload under one protection scheme.
func ExampleRun() {
	cfg := cachecraft.QuickConfig()
	cfg.AccessesPerSM = 200

	res, err := cachecraft.Run(cfg, "stream", "inline-naive")
	if err != nil {
		panic(err)
	}
	// The naive controller re-fetches the 32B redundancy block for each of
	// the granule's two lines: twice the storage ratio of 1/8. (The
	// caching schemes get this down to 0.125 and below.)
	ratio := float64(res.DRAMBytes["redundancy"]) / float64(res.DRAMBytes["demand"])
	fmt.Printf("redundancy/demand = %.3f\n", ratio)
	// Output:
	// redundancy/demand = 0.250
}

// ExampleRunCacheCraft runs an ablated CacheCraft configuration.
func ExampleRunCacheCraft() {
	cfg := cachecraft.QuickConfig()
	cfg.AccessesPerSM = 200

	opt := cachecraft.DefaultOptions()
	opt.Reconstruct = false // ablate mechanism R

	res, err := cachecraft.RunCacheCraft(cfg, "stream", opt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("reconstructed sectors: %d\n", res.ControllerSt.Get("reconstruct_sectors"))
	// Output:
	// reconstructed sectors: 0
}

// ExampleNewTaggedCodec demonstrates zero-storage memory tagging.
func ExampleNewTaggedCodec() {
	codec, err := cachecraft.NewTaggedCodec(32, 4, 1)
	if err != nil {
		panic(err)
	}
	data := make([]byte, 32)
	parity := codec.Encode(data, []byte{0x7}) // tag 0x7, never stored

	fmt.Println(codec.Check(data, parity, []byte{0x7}))
	fmt.Println(codec.Check(data, parity, []byte{0x8}))
	// Output:
	// tag-ok
	// tag-mismatch
}

// ExampleNewRS3632 shows symbol-grain correction.
func ExampleNewRS3632() {
	codec, err := cachecraft.NewRS3632()
	if err != nil {
		panic(err)
	}
	sector := []byte("an entire DRAM burst of data!!!!")[:32]
	red := codec.Encode(sector)

	sector[5] ^= 0xff // a whole corrupted byte
	fmt.Println(codec.Decode(sector, red))
	fmt.Println(string(sector[:8]))
	// Output:
	// corrected
	// an entir
}

// ExampleWorkloads lists the synthetic workload suite.
func ExampleWorkloads() {
	for _, w := range cachecraft.Workloads() {
		fmt.Println(w)
	}
	// Output:
	// bfs
	// gemm
	// histogram
	// ptrchase
	// random
	// scan
	// spmv
	// stencil
	// stream
	// transpose
}
