// Micro-benchmarks for the substrate hot paths: codec throughput, cache
// lookup cost, DRAM scheduling, and end-to-end simulation rate. These are
// conventional testing.B benchmarks (per-op timing), unlike the
// experiment harness in bench_test.go.
package cachecraft

import (
	"math/rand"
	"testing"

	"cachecraft/internal/cache"
	"cachecraft/internal/config"
	"cachecraft/internal/dram"
	"cachecraft/internal/ecc"
	"cachecraft/internal/gpu"
	"cachecraft/internal/mem"
	"cachecraft/internal/protect"
	"cachecraft/internal/sim"
	"cachecraft/internal/trace"
)

// benchHandler is a minimal typed handler for event-scheduling benchmarks.
type benchHandler struct{ n uint64 }

func (h *benchHandler) OnEvent(_ sim.Cycle, a0, _ uint64) { h.n += a0 }

// BenchmarkEngineSchedulePost measures the pooled typed-handler scheduling
// path: one Post + one Step per op, zero allocations in steady state.
func BenchmarkEngineSchedulePost(b *testing.B) {
	eng := sim.NewEngine()
	h := &benchHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Post(eng.Now()+sim.Cycle(i%5), h, 1, 0)
		eng.Step()
	}
}

// BenchmarkEngineScheduleClosure measures the legacy closure path (At) for
// comparison; the closure itself allocates even though the queue record is
// pooled.
func BenchmarkEngineScheduleClosure(b *testing.B) {
	eng := sim.NewEngine()
	var n uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.At(eng.Now()+sim.Cycle(i%5), func(sim.Cycle) { n++ })
		eng.Step()
	}
}

func BenchmarkSECDEDEncode32B(b *testing.B) {
	codec, err := ecc.NewSECDEDSector(32, 64)
	if err != nil {
		b.Fatal(err)
	}
	sector := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(sector)
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codec.Encode(sector)
	}
}

func BenchmarkSECDEDDecodeClean(b *testing.B) {
	codec, err := ecc.NewSECDEDSector(32, 64)
	if err != nil {
		b.Fatal(err)
	}
	sector := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(sector)
	red := codec.Encode(sector)
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codec.Decode(sector, red)
	}
}

func BenchmarkSECDEDEncodeInto32B(b *testing.B) {
	codec, err := ecc.NewSECDEDSector(32, 64)
	if err != nil {
		b.Fatal(err)
	}
	sector := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(sector)
	dst := make([]byte, 0, codec.RedundancyBytes())
	b.SetBytes(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = codec.EncodeInto(dst[:0], sector)
	}
}

func BenchmarkRSEncode32B(b *testing.B) {
	codec, err := ecc.NewRSSector(32, 4)
	if err != nil {
		b.Fatal(err)
	}
	sector := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(sector)
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codec.Encode(sector)
	}
}

func BenchmarkRSEncodeInto32B(b *testing.B) {
	codec, err := ecc.NewRSSector(32, 4)
	if err != nil {
		b.Fatal(err)
	}
	sector := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(sector)
	dst := make([]byte, 0, codec.RedundancyBytes())
	b.SetBytes(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = codec.EncodeInto(dst[:0], sector)
	}
}

func BenchmarkRSDecodeClean(b *testing.B) {
	codec, err := ecc.NewRSSector(32, 4)
	if err != nil {
		b.Fatal(err)
	}
	sector := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(sector)
	red := codec.Encode(sector)
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codec.Decode(sector, red)
	}
}

func BenchmarkRSDecodeTwoErrors(b *testing.B) {
	codec, err := ecc.NewRSSector(32, 4)
	if err != nil {
		b.Fatal(err)
	}
	golden := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(golden)
	red := codec.Encode(golden)
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sector := append([]byte(nil), golden...)
		parity := append([]byte(nil), red...)
		sector[3] ^= 0x41
		sector[17] ^= 0x9c
		b.StartTimer()
		if res := codec.Decode(sector, parity); res != ecc.Corrected {
			b.Fatalf("decode = %v", res)
		}
	}
}

func BenchmarkTaggedCheck(b *testing.B) {
	codec, err := ecc.NewTagged(32, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(data)
	tag := []byte{0xa}
	parity := codec.Encode(data, tag)
	b.SetBytes(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codec.Check(data, parity, tag)
	}
}

func BenchmarkCacheAccessHit(b *testing.B) {
	c := cache.New(cache.Config{
		Name: "bench", SizeBytes: 1 << 20, Ways: 16,
		LineBytes: 128, SectorBytes: 32, HashSets: true,
	})
	for a := uint64(0); a < 1<<20; a += 128 {
		c.Fill(a, 0b1111, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*32)%(1<<20), false)
	}
}

func BenchmarkCacheFillEvict(b *testing.B) {
	c := cache.New(cache.Config{
		Name: "bench", SizeBytes: 256 << 10, Ways: 16,
		LineBytes: 128, SectorBytes: 32, HashSets: true,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*128, 0b1111, 0b0001)
	}
}

func BenchmarkDRAMRandomAccess(b *testing.B) {
	eng := sim.NewEngine()
	d := dram.New(eng, dram.DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(rng.Intn(1<<26)) &^ 31
		d.Submit(eng.Now(), mem.Request{Addr: addr, Bytes: 32, Class: mem.Demand})
		if i%64 == 0 {
			eng.Run(1 << 62)
		}
	}
	eng.Run(1 << 62)
}

func BenchmarkCoalesce(b *testing.B) {
	w, err := trace.Build("random", trace.DefaultParams(0, 4, 1))
	if err != nil {
		b.Fatal(err)
	}
	a, _ := w.Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpu.Coalesce(a, 32)
	}
}

// BenchmarkEndToEndSimulation measures simulator throughput (warp accesses
// simulated per second) on the quick configuration. accesses/sec is the
// headline simulation-rate number tracked in BENCH_sim.json.
func BenchmarkEndToEndSimulation(b *testing.B) {
	cfg := config.Quick()
	cfg.AccessesPerSM = 300
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := gpu.New(cfg, "scan", protect.NewInlineNaive)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perRun := float64(cfg.NumSMs * cfg.AccessesPerSM)
	b.ReportMetric(perRun, "accesses/op")
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(perRun*float64(b.N)/s, "accesses/sec")
	}
}
