package cachecraft

import (
	"bytes"
	"testing"
)

// TestReplayMatchesDirectRun: replaying a recorded workload must produce
// exactly the same simulation results as running the generator directly.
func TestReplayMatchesDirectRun(t *testing.T) {
	cfg := quickCfg()

	direct, err := Run(cfg, "scan", "cachecraft")
	if err != nil {
		t.Fatal(err)
	}

	// Record each SM's stream.
	recorded := make([]*bytes.Buffer, cfg.NumSMs)
	for sm := 0; sm < cfg.NumSMs; sm++ {
		w, err := BuildWorkload("scan", sm, cfg.NumSMs, cfg.Seed,
			cfg.AccessesPerSM, cfg.FootprintBytes)
		if err != nil {
			t.Fatal(err)
		}
		recorded[sm] = &bytes.Buffer{}
		if _, err := RecordTrace(w, recorded[sm]); err != nil {
			t.Fatal(err)
		}
	}

	replayed, err := RunCustom(cfg, "cachecraft", func(smID, numSMs int) (Workload, error) {
		return NewTraceReplayer("scan-replay", bytes.NewReader(recorded[smID].Bytes()),
			cfg.FootprintBytes)
	})
	if err != nil {
		t.Fatal(err)
	}

	if replayed.Cycles != direct.Cycles {
		t.Fatalf("cycles differ: replay %d vs direct %d", replayed.Cycles, direct.Cycles)
	}
	if replayed.Instructions != direct.Instructions {
		t.Fatalf("instructions differ: %d vs %d", replayed.Instructions, direct.Instructions)
	}
	for k, v := range direct.DRAMBytes {
		if replayed.DRAMBytes[k] != v {
			t.Fatalf("traffic %s differs: %d vs %d", k, replayed.DRAMBytes[k], v)
		}
	}
}

func TestRunCustomValidatesFootprint(t *testing.T) {
	cfg := quickCfg()
	_, err := RunCustom(cfg, "none", func(smID, numSMs int) (Workload, error) {
		w, err := BuildWorkload("stream", smID, numSMs, 1, 10, cfg.MemoryBytes*4)
		return w, err
	})
	if err == nil {
		t.Fatal("oversized custom footprint accepted")
	}
}

func TestRunCustomUnknownScheme(t *testing.T) {
	if _, err := RunCustom(quickCfg(), "nope", nil); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
