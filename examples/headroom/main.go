// Headroom analysis: bound what any redundancy-side mechanism could ever
// achieve by comparing CacheCraft against the "ideal" controller (free
// redundancy — an infinite zero-latency redundancy cache), and show where
// the remaining protection cost actually lives.
//
//	go run ./examples/headroom
package main

import (
	"fmt"
	"log"
)

import "cachecraft"

func main() {
	cfg := cachecraft.QuickConfig()

	fmt.Println("speedup vs no-ECC (quick config; run DefaultConfig for real numbers)")
	fmt.Printf("%-10s %-10s %-8s %-14s %s\n",
		"workload", "cachecraft", "ideal", "headroom", "where the cost lives")

	for _, wl := range []string{"stream", "bfs", "histogram", "transpose"} {
		none, err := cachecraft.Run(cfg, wl, "none")
		if err != nil {
			log.Fatal(err)
		}
		cc, err := cachecraft.Run(cfg, wl, "cachecraft")
		if err != nil {
			log.Fatal(err)
		}
		ideal, err := cachecraft.Run(cfg, wl, "ideal")
		if err != nil {
			log.Fatal(err)
		}
		ccSp := float64(none.Cycles) / float64(cc.Cycles)
		idSp := float64(none.Cycles) / float64(ideal.Cycles)

		verdict := "redundancy traffic (headroom for better caching)"
		if idSp-ccSp < 0.02 {
			verdict = "fetch-on-write / decode floor (no redundancy fix helps)"
		}
		fmt.Printf("%-10s %-10.3f %-8.3f %-14.3f %s\n", wl, ccSp, idSp, idSp-ccSp, verdict)
	}

	fmt.Println("\nideal pays only the decode latency and ECC's fetch-before-partial-write;")
	fmt.Println("the gap to it is the open opportunity, the gap from 1.0 is the floor.")
}
