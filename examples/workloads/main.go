// Workload study: compare how a regular tiled kernel (gemm) and an
// irregular graph traversal (bfs) respond to memory protection, and sweep
// CacheCraft's redundancy-cache capacity on the workload where it matters.
//
//	go run ./examples/workloads
package main

import (
	"fmt"
	"log"

	"cachecraft"
)

func main() {
	cfg := cachecraft.QuickConfig()

	fmt.Println("=== regular (gemm) vs irregular (bfs) under protection ===")
	for _, wl := range []string{"gemm", "bfs"} {
		var baseline float64
		fmt.Printf("\n%s:\n", wl)
		for _, scheme := range cachecraft.Schemes() {
			res, err := cachecraft.Run(cfg, wl, scheme)
			if err != nil {
				log.Fatal(err)
			}
			if scheme == "none" {
				baseline = float64(res.Cycles)
			}
			fmt.Printf("  %-13s perf vs no-ECC %.3f   redundancy bytes %8d   L2 hit %.2f\n",
				scheme, baseline/float64(res.Cycles),
				res.DRAMBytes["redundancy"], res.L2HitRate)
		}
	}

	fmt.Println("\n=== CacheCraft RC capacity sweep on histogram (write-heavy) ===")
	noneRes, err := cachecraft.Run(cfg, "histogram", "none")
	if err != nil {
		log.Fatal(err)
	}
	for _, kb := range []int{16, 64, 256} {
		opt := cachecraft.DefaultOptions()
		opt.RCSizeBytes = kb << 10
		res, err := cachecraft.RunCacheCraft(cfg, "histogram", opt)
		if err != nil {
			log.Fatal(err)
		}
		rcHits := res.ControllerSt.Get("red_rc_hits") + res.ControllerSt.Get("red_wb_rc_hits")
		lookups := rcHits + res.ControllerSt.Get("red_reads_dram") + res.ControllerSt.Get("red_rmw")
		hitRate := 0.0
		if lookups > 0 {
			hitRate = float64(rcHits) / float64(lookups)
		}
		fmt.Printf("  RC %4d KiB: perf vs no-ECC %.3f   RC hit rate %.2f\n",
			kb, float64(noneRes.Cycles)/float64(res.Cycles), hitRate)
	}
}
