// Quickstart: simulate one workload under all four protection schemes and
// print the headline comparison — how much performance each scheme gives
// back relative to an unprotected GPU.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cachecraft"
)

func main() {
	cfg := cachecraft.QuickConfig() // scaled-down; swap for DefaultConfig() for real numbers
	const workload = "scan"

	fmt.Printf("workload %q on a %d-SM GPU, %d MiB footprint\n\n",
		workload, cfg.NumSMs, cfg.FootprintBytes>>20)

	var baseline float64
	for _, scheme := range cachecraft.Schemes() {
		res, err := cachecraft.Run(cfg, workload, scheme)
		if err != nil {
			log.Fatal(err)
		}
		if scheme == "none" {
			baseline = float64(res.Cycles)
		}
		speedup := baseline / float64(res.Cycles)
		extra := float64(res.DRAMBytes["redundancy"]+res.DRAMBytes["rmw"]) /
			float64(res.DRAMBytes["demand"]+res.DRAMBytes["writeback"]+1)
		fmt.Printf("%-13s perf vs no-ECC: %.3f   IPC: %6.2f   protection traffic overhead: %5.1f%%\n",
			scheme, speedup, res.IPC, extra*100)
	}

	fmt.Println("\ninline-naive pays two DRAM accesses per miss; ecc-cache recovers")
	fmt.Println("redundancy locality through the L2; cachecraft reconstructs cache")
	fmt.Println("contents from the protection traffic itself.")
}
