// Memory-safety demo: Implicit-Memory-Tagging-style use of the tagged ECC
// codec. A tiny allocator colors each allocation with a tag; every access
// asserts the pointer's tag, and the ECC machinery — with zero extra
// storage — detects use-after-free and buffer overflows into
// differently-tagged memory.
//
//	go run ./examples/memsafety
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cachecraft"
)

const blockBytes = 32

// taggedHeap is a toy allocator over tagged-ECC-protected blocks.
type taggedHeap struct {
	codec  *cachecraft.TaggedCodec
	data   [][]byte
	parity [][]byte
	tags   []byte // current tag of each block (allocator-side bookkeeping)
	rng    *rand.Rand
}

func newHeap(blocks int) *taggedHeap {
	codec, err := cachecraft.NewTaggedCodec(blockBytes, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	h := &taggedHeap{codec: codec, rng: rand.New(rand.NewSource(7))}
	for i := 0; i < blocks; i++ {
		d := make([]byte, blockBytes)
		h.data = append(h.data, d)
		h.tags = append(h.tags, 0)
		h.parity = append(h.parity, codec.Encode(d, []byte{0}))
	}
	return h
}

// alloc colors a block with a fresh tag and returns (block, tag) — the
// "pointer" carries the tag, as in ARM MTE or IMT.
func (h *taggedHeap) alloc(block int) byte {
	tag := byte(h.rng.Intn(255) + 1) // never reuse tag 0 (the free color)
	h.tags[block] = tag
	h.parity[block] = h.codec.Encode(h.data[block], []byte{tag})
	return tag
}

// free recolors the block so stale pointers no longer match.
func (h *taggedHeap) free(block int) {
	h.tags[block] = 0
	h.parity[block] = h.codec.Encode(h.data[block], []byte{0})
}

// load checks the access with the pointer's asserted tag.
func (h *taggedHeap) load(block int, assertedTag byte) cachecraft.TagResult {
	return h.codec.Check(h.data[block], h.parity[block], []byte{assertedTag})
}

// store writes data under the pointer's tag (and re-encodes).
func (h *taggedHeap) store(block int, assertedTag byte, val []byte) cachecraft.TagResult {
	res := h.codec.Check(h.data[block], h.parity[block], []byte{assertedTag})
	if res == cachecraft.TagOK || res == cachecraft.TagOKCorrected {
		copy(h.data[block], val)
		h.parity[block] = h.codec.Encode(h.data[block], []byte{assertedTag})
	}
	return res
}

func main() {
	h := newHeap(4)

	fmt.Println("== allocate two objects ==")
	p0 := h.alloc(0)
	p1 := h.alloc(1)
	fmt.Printf("obj A → block 0, pointer tag %#02x\n", p0)
	fmt.Printf("obj B → block 1, pointer tag %#02x\n", p1)

	fmt.Println("\n== legitimate accesses ==")
	val := make([]byte, blockBytes)
	copy(val, "hello, protected world")
	fmt.Printf("store A: %v\n", h.store(0, p0, val))
	fmt.Printf("load  A: %v\n", h.load(0, p0))
	fmt.Printf("load  B: %v\n", h.load(1, p1))

	fmt.Println("\n== overflow: pointer A used on block 1 (B's memory) ==")
	fmt.Printf("load  B via A's tag: %v\n", h.load(1, p0))

	fmt.Println("\n== use-after-free ==")
	h.free(0)
	fmt.Printf("load A after free:   %v\n", h.load(0, p0))

	fmt.Println("\n== a radiation bit flip under a valid pointer ==")
	p2 := h.alloc(2)
	h.data[2][5] ^= 0x10
	fmt.Printf("load with bit error: %v (data repaired by ECC)\n", h.load(2, p2))

	fmt.Println("\nAll of this detection used ZERO extra storage: the tag lives")
	fmt.Println("inside the ECC code space (Alias-Free Tagged ECC / IMT).")
}
