// Fault-injection demo: compare how the bit-grain SEC-DED organization
// and the symbol-grain Reed–Solomon organizations hold up under the fault
// patterns GPU DRAM actually produces (random bit flips, bursts, and
// whole-chip errors).
//
//	go run ./examples/faultinject
package main

import (
	"fmt"
	"log"
	"os"

	"cachecraft"
	"cachecraft/internal/ecc"
	"cachecraft/internal/faults"
	"cachecraft/internal/stats"
)

func main() {
	secded, err := cachecraft.NewSECDED6472()
	if err != nil {
		log.Fatal(err)
	}
	rs36, err := cachecraft.NewRS3632()
	if err != nil {
		log.Fatal(err)
	}

	const trials = 20000
	injectors := []struct {
		name string
		inj  faults.Injector
	}{
		{"single bit", faults.BitFlips(1)},
		{"double bit", faults.BitFlips(2)},
		{"4-bit burst", faults.Burst(4)},
		{"chip (whole byte)", faults.ChipError()},
		{"two chips", faults.DoubleChipError()},
	}

	t := stats.NewTable(fmt.Sprintf("reliability under %d injections per cell", trials),
		"fault", "secded corrected", "secded SDC", "rs36 corrected", "rs36 SDC")
	for _, in := range injectors {
		a := faults.Campaign{Codec: secded.(ecc.SectorCodec), Trials: trials, Seed: 11}.Run(in.name, in.inj)
		b := faults.Campaign{Codec: rs36.(ecc.SectorCodec), Trials: trials, Seed: 11}.Run(in.name, in.inj)
		t.AddRow(in.name,
			fmt.Sprintf("%.4f", a.Rate(faults.Corrected)),
			fmt.Sprintf("%.4f", a.SDCRate()),
			fmt.Sprintf("%.4f", b.Rate(faults.Corrected)),
			fmt.Sprintf("%.4f", b.SDCRate()))
	}
	t.Render(os.Stdout)

	fmt.Println("\nBoth codecs store the same 4 redundancy bytes per 32B sector.")
	fmt.Println("The symbol-grain RS(36,32) turns whole-chip failures from silent")
	fmt.Println("corruption into guaranteed correction — the reason GPU memory")
	fmt.Println("codes moved to symbol organizations.")
}
