package cachecraft

import "cachecraft/internal/ecc"

// The ECC codec surface: real bit-level encoders/decoders for the codes
// the protection schemes assume. These operate on actual bytes and are
// exercised by the reliability evaluation (Table 3) and the memory-safety
// example.

// CodecResult classifies a decode outcome (ok / corrected / detected).
type CodecResult = ecc.Result

// Decode outcomes.
const (
	CodecOK        = ecc.OK
	CodecCorrected = ecc.Corrected
	CodecDetected  = ecc.Detected
)

// SectorCodec protects a fixed-size sector with fixed-size redundancy.
type SectorCodec = ecc.SectorCodec

// NewSECDED6472 builds the classic (72,64) SEC-DED organization over 32B
// sectors: 4 interleaved codewords, 4 redundancy bytes per sector (1/8).
func NewSECDED6472() (SectorCodec, error) { return ecc.NewSECDEDSector(32, 64) }

// NewRS3632 builds the RS(36,32) symbol-grain organization: 4 parity bytes
// per 32B sector (1/8), correcting any two byte errors.
func NewRS3632() (SectorCodec, error) { return ecc.NewRSSector(32, 4) }

// NewRS3432 builds the RS(34,32) organization: 2 parity bytes per 32B
// sector (1/16), correcting any single byte error.
func NewRS3432() (SectorCodec, error) { return ecc.NewRSSector(32, 2) }

// NewSECDAEC6472 builds the SEC-DAEC organization over 32B sectors:
// adjacent-double-bit correction at SEC-DED-class redundancy (8 check
// bits per 64-bit word), matching the clustered fault patterns GPU DRAM
// beam studies report.
func NewSECDAEC6472() (SectorCodec, error) { return ecc.NewSECDAECSector(32, 64) }

// ChipkillCodec is the device-striped Reed–Solomon organization: a whole
// identified-dead device is recoverable via erasure decoding.
type ChipkillCodec = ecc.Chipkill

// NewChipkill builds the device-striped RS(36,32) organization over 9
// devices; DecodeWithDeadDevice on the returned codec recovers a whole
// identified-dead device via erasure decoding.
func NewChipkill() (*ChipkillCodec, error) { return ecc.NewChipkill(32, 4, 9) }

// TaggedCodec is the Alias-Free Tagged ECC variant: a memory-safety tag is
// embedded in the code space at zero storage cost (Implicit Memory Tagging
// style).
type TaggedCodec = ecc.Tagged

// Tag-check outcomes.
type TagResult = ecc.TagResult

// Tag-check outcome values.
const (
	TagOK            = ecc.TagOK
	TagOKCorrected   = ecc.TagOKCorrected
	TagMismatch      = ecc.TagMismatch
	TagUncorrectable = ecc.TagUncorrectable
)

// NewTaggedCodec builds a tagged codec over dataLen-byte blocks with
// paritySyms stored parity bytes and tagSyms virtual tag bytes.
func NewTaggedCodec(dataLen, paritySyms, tagSyms int) (*TaggedCodec, error) {
	return ecc.NewTagged(dataLen, paritySyms, tagSyms)
}
