#!/usr/bin/env bash
# chaos_e2e.sh — crash-recovery drill with real processes: a coordinator
# running with a sweep journal (and deliberately WITHOUT -store, so the
# journal alone carries recovery), chaos-injected workers, and a SIGKILL
# of the coordinator mid-sweep. The drill asserts:
#
#   1. the in-flight sweep survives the coordinator's death (the client
#      falls back to local simulation) with byte-identical stdout;
#   2. a coordinator restarted on the same -journal replays the cells it
#      finished before dying (cachecraft_journal_replayed_cells_total > 0,
#      a possibly-torn journal tail notwithstanding);
#   3. a fresh sweep against the restarted coordinator is byte-identical
#      to the local reference run.
#
# Worker faults are seed-randomized per invocation (the seed is printed
# and saved, so any failure replays exactly). Logs and the journal land
# in ./chaos-artifacts/ for CI upload.
#
# Usage:
#   scripts/chaos_e2e.sh               # fig4 grid
#   RUN=all scripts/chaos_e2e.sh       # the full evaluation grid
#   CHAOS_SEED=7 scripts/chaos_e2e.sh  # replay a specific fault schedule
set -euo pipefail
cd "$(dirname "$0")/.."

run="${RUN:-fig4}"
seed="${CHAOS_SEED:-$((RANDOM * 32768 + RANDOM))}"
work="$(mktemp -d)"
artifacts="chaos-artifacts"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  mkdir -p "$artifacts"
  cp "$work"/*.log "$work"/journal.ndjson "$artifacts/" 2>/dev/null || true
  echo "$seed" >"$artifacts/chaos-seed"
  rm -rf "$work"
}
trap cleanup EXIT

echo "== chaos seed: $seed ==" >&2
echo "== building binaries ==" >&2
go build -o "$work/bin/" ./cmd/cachecraft-serve ./cmd/cachecraft-worker ./cmd/cachecraft-sweep

port=$((20000 + $$ % 20000))
url="http://127.0.0.1:$port"
journal="$work/journal.ndjson"
worker_chaos="seed=$seed;worker.exec:crash:0.1,limit=2;worker.exec:latency:0.2,delay=5ms;worker.complete:partition:0.15,limit=3"

echo "== local reference run ==" >&2
"$work/bin/cachecraft-sweep" -run "$run" -quick >"$work/local.out" 2>"$work/local.err"

start_coordinator() { # start_coordinator <logname>
  "$work/bin/cachecraft-serve" -addr "127.0.0.1:$port" -coordinator \
    -journal "$journal" -quick -lease-ttl 2s -quiet \
    >"$work/$1.log" 2>&1 &
  coord_pid=$!
  pids+=("$coord_pid")
  for _ in $(seq 1 100); do
    if curl -sf "$url/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: coordinator never became healthy on $url" >&2
  cat "$work/$1.log" >&2 || true
  exit 1
}

start_worker() { # start_worker <name>
  "$work/bin/cachecraft-worker" -coordinator "$url" -name "$1" -quiet \
    -chaos "$worker_chaos" \
    >"$work/$1.log" 2>&1 &
  pids+=("$!")
}

echo "== round 1: kill -9 the coordinator mid-sweep ==" >&2
start_coordinator serve-r1
start_worker chaos-w1
start_worker chaos-w2

"$work/bin/cachecraft-sweep" -run "$run" -quick -remote "$url" \
  >"$work/remote-r1.out" 2>"$work/remote-r1.err" &
sweep_pid=$!
pids+=("$sweep_pid")

# Wait until at least one finished cell has been journaled, then murder
# the coordinator. Killing before any entry exists would make the replay
# assertion vacuous.
journaled=no
for _ in $(seq 1 200); do
  if [ -s "$journal" ]; then
    journaled=yes
    break
  fi
  sleep 0.1
done
if [ "$journaled" != yes ]; then
  echo "FAIL: journal still empty after 20s of sweeping" >&2
  exit 1
fi
kill -9 "$coord_pid"
echo "coordinator killed with $(wc -l <"$journal") journal entries on disk" >&2

# The sweep must still finish — the client recovers cells the dead
# coordinator never delivered by simulating them locally — and stdout
# must not betray any of that.
wait "$sweep_pid"
if ! diff -u "$work/local.out" "$work/remote-r1.out" >&2; then
  echo "FAIL: round 1 stdout differs from local run after coordinator death" >&2
  exit 1
fi
echo "round 1: OK (sweep survived coordinator SIGKILL, stdout byte-identical)" >&2

echo "== round 2: restart on the same journal ==" >&2
start_coordinator serve-r2
start_worker chaos-w3

replayed="$(curl -sf "$url/metrics" | grep '^cachecraft_journal_replayed_cells_total ' | awk '{print $2}')"
if [ -z "$replayed" ] || [ "$replayed" = 0 ]; then
  echo "FAIL: restarted coordinator replayed no journal entries" >&2
  curl -sf "$url/metrics" | grep cachecraft_journal >&2 || true
  exit 1
fi
echo "restarted coordinator replayed $replayed cells from the journal" >&2

"$work/bin/cachecraft-sweep" -run "$run" -quick -remote "$url" \
  >"$work/remote-r2.out" 2>"$work/remote-r2.err"
if ! diff -u "$work/local.out" "$work/remote-r2.out" >&2; then
  echo "FAIL: round 2 stdout differs from local run after journal replay" >&2
  exit 1
fi
echo "round 2: OK (journal replay, stdout byte-identical)" >&2
echo "chaos e2e: all rounds passed (seed=$seed)" >&2
