#!/usr/bin/env bash
# bench.sh — run the substrate micro-benchmarks and record the results in
# BENCH_sim.json, preserving the file's frozen baseline section so the
# before/after perf trajectory stays in one committed document.
#
# Usage:
#   scripts/bench.sh                 # full run (default -benchtime=1s)
#   scripts/bench.sh -compare        # diff a fresh run against the committed
#                                    # BENCH_sim.json instead of rewriting it;
#                                    # exits non-zero if the end-to-end
#                                    # simulation regressed by more than 15%
#   BENCHTIME=1x scripts/bench.sh    # smoke run (one iteration per bench)
#   OUT=/tmp/b.json scripts/bench.sh # write elsewhere
set -euo pipefail
cd "$(dirname "$0")/.."

mode=record
if [ "${1:-}" = -compare ]; then
  mode=compare
fi

benchtime="${BENCHTIME:-1s}"
out="${OUT:-BENCH_sim.json}"

# The tracked set: event scheduling, codecs, cache, DRAM, coalescing, and
# the end-to-end simulation rate. The Fig16 sweep benchmark is excluded —
# it is an experiment, not a substrate microbenchmark.
pattern='^(BenchmarkEngineSchedule|BenchmarkSECDED|BenchmarkRS|BenchmarkTaggedCheck|BenchmarkCache|BenchmarkDRAM|BenchmarkCoalesce|BenchmarkEndToEndSimulation)'

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$raw" >&2

if [ "$mode" = compare ]; then
  # Diff against the committed numbers without touching the file. The
  # end-to-end simulation rate gates the exit code; everything else is
  # reported for context.
  go run ./scripts/benchjson -compare "$out" < "$raw"
else
  go run ./scripts/benchjson -prev "$out" < "$raw" > "$out.tmp"
  mv "$out.tmp" "$out"
  echo "wrote $out" >&2
fi
