#!/usr/bin/env bash
# bench.sh — run the substrate micro-benchmarks and record the results in
# BENCH_sim.json, preserving the file's frozen baseline section so the
# before/after perf trajectory stays in one committed document.
#
# Usage:
#   scripts/bench.sh                 # full run (default -benchtime=1s)
#   BENCHTIME=1x scripts/bench.sh    # smoke run (one iteration per bench)
#   OUT=/tmp/b.json scripts/bench.sh # write elsewhere
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
out="${OUT:-BENCH_sim.json}"

# The tracked set: event scheduling, codecs, cache, DRAM, coalescing, and
# the end-to-end simulation rate. The Fig16 sweep benchmark is excluded —
# it is an experiment, not a substrate microbenchmark.
pattern='^(BenchmarkEngineSchedule|BenchmarkSECDED|BenchmarkRS|BenchmarkTaggedCheck|BenchmarkCache|BenchmarkDRAM|BenchmarkCoalesce|BenchmarkEndToEndSimulation)'

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$raw" >&2

go run ./scripts/benchjson -prev "$out" < "$raw" > "$out.tmp"
mv "$out.tmp" "$out"
echo "wrote $out" >&2
