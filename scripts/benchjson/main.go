// Command benchjson converts `go test -bench` output on stdin into the
// repository's BENCH_sim.json document. If an existing document is given
// with -prev, its "baseline" section (and note) is carried forward, so the
// file keeps the before/after pair: the frozen pre-optimization numbers
// and the freshly measured ones.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one benchmark's measurements.
type Entry struct {
	// Name is the benchmark name without the Benchmark prefix and -P
	// GOMAXPROCS suffix.
	Name string `json:"name"`
	// Runs is b.N, the iteration count the timing is averaged over.
	Runs int64 `json:"runs"`
	// Metrics maps unit → value per op, e.g. "ns/op", "allocs/op".
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the BENCH_sim.json layout.
type Doc struct {
	Schema   string  `json:"schema"`
	Note     string  `json:"note,omitempty"`
	Go       string  `json:"go"`
	Arch     string  `json:"arch"`
	Baseline []Entry `json:"baseline,omitempty"`
	Current  []Entry `json:"current"`
}

func main() {
	prev := flag.String("prev", "", "existing BENCH_sim.json whose baseline section is preserved")
	flag.Parse()

	doc := Doc{
		Schema: "cachecraft-bench/v1",
		Go:     runtime.Version(),
		Arch:   runtime.GOOS + "/" + runtime.GOARCH,
	}
	if *prev != "" {
		if raw, err := os.ReadFile(*prev); err == nil {
			var old Doc
			if err := json.Unmarshal(raw, &old); err == nil {
				doc.Baseline = old.Baseline
				doc.Note = old.Note
			}
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		e, ok := parseLine(sc.Text())
		if ok {
			doc.Current = append(doc.Current, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// parseLine decodes one `go test -bench` result line:
//
//	BenchmarkName-8   1234   56.7 ns/op   3.2 MB/s   8 B/op   0 allocs/op
//
// Everything after the iteration count is (value, unit) pairs.
func parseLine(line string) (Entry, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Entry{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return Entry{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[f[i+1]] = v
	}
	return e, len(e.Metrics) > 0
}
